// Command campaignd runs declarative campaigns (internal/campaign) across
// multiple worker processes sharing one results directory, using the results
// store's lease-based shard-claim protocol for per-record exactly-once
// execution. Any worker can be SIGKILLed mid-run: survivors take over its
// expired leases and the campaign resumes exactly where the checkpoints say,
// exporting results byte-identical to a single-process `figures run
// -campaign` run.
//
// Modes:
//
//	campaignd run    -campaign <name|spec.json> -results DIR -workers N
//	                 one campaign, N local worker processes, wait, export
//	campaignd serve  -addr :8377 -results DIR -workers N
//	                 HTTP service: POST specs, stream NDJSON progress
//	campaignd submit -server URL -campaign <name|spec.json>
//	                 submit to a running server and follow its events
//	campaignd work   (internal) one worker process, spawned by run/serve
//
// Examples:
//
//	campaignd run -campaign smoke -quick -workers 2 -results results/c
//	campaignd serve -addr :8377 -results results/pool -workers 4
//	campaignd submit -server http://localhost:8377 -campaign fig5 -seeds 5
//	curl -N http://localhost:8377/api/campaigns/fig5-1/events
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/exec"
	"strings"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/campaignd"
	"flexvc/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "run":
		return runCmd(args[1:])
	case "serve":
		return serveCmd(args[1:])
	case "submit":
		return submitCmd(args[1:])
	case "work":
		return workCmd(args[1:])
	case "help", "-h", "-help", "--help":
		return usage()
	}
	return fmt.Errorf("unknown mode %q (want run, serve, submit or work)", args[0])
}

func usage() error {
	fmt.Println("usage: campaignd {run | serve | submit | work} [flags]")
	fmt.Println("  run    execute one campaign across N local worker processes and export")
	fmt.Println("  serve  HTTP campaign service over a shared results pool")
	fmt.Println("  submit send a campaign to a running server and follow its progress")
	fmt.Println("  work   (internal) one worker process of a sharded run")
	return nil
}

// newLogger builds the stderr slog logger the -log-level flag selects; an
// empty or "off" level disables structured logging entirely (stdout stays
// reserved for NDJSON events in work mode either way).
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "off":
		return nil, nil
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, error or off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// gitRevision mirrors the figures CLI's default revision stamp, so exports
// produced by campaignd and by `figures run` are byte-identical when both
// run from the same checkout.
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("campaignd run", flag.ContinueOnError)
	var (
		campaignF  = fs.String("campaign", "", "campaign spec: a JSON file or an embedded spec name (see `figures list`)")
		resDir     = fs.String("results", "", "shared results directory (required)")
		workers    = fs.Int("workers", 2, "worker processes to fan replications across")
		scale      = fs.String("scale", "", "system scale override (campaign specs may set their own default)")
		seeds      = fs.Int("seeds", 0, "replications per point override")
		quick      = fs.Bool("quick", false, "trim sweeps for a fast smoke run")
		simW       = fs.Int("sim-workers", 0, "per-worker simulation concurrency (0 = GOMAXPROCS/workers)")
		leaseTTL   = fs.Duration("lease-ttl", 0, "shard-claim lease expiry (0 = 60s); takeover latency for dead workers")
		poll       = fs.Duration("poll", 0, "claim poll interval (0 = 50ms)")
		killAfter  = fs.Int("kill-after", 0, "chaos hook: SIGKILL one worker once this many records exist (0 = off)")
		revision   = fs.String("revision", "", "source revision to stamp into the results (default: git rev-parse)")
		quiet      = fs.Bool("quiet", false, "suppress per-event progress output")
		metricsOut = fs.String("metrics-out", "", "write the coordinator's pooled metrics snapshot to this JSON file")
		logLevel   = fs.String("log-level", "", "structured log level on stderr: debug, info, warn, error (default off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resDir == "" || *campaignF == "" {
		return fmt.Errorf("run: need -campaign and -results")
	}
	log, err := newLogger(*logLevel)
	if err != nil {
		return err
	}
	spec, err := campaign.Resolve(*campaignF)
	if err != nil {
		return err
	}
	rev := *revision
	if rev == "" {
		rev = gitRevision()
	}
	reg := obs.NewRegistry()
	co := &campaignd.Coordinator{
		Spec:                spec,
		ResultsDir:          *resDir,
		Workers:             *workers,
		Scale:               *scale,
		Seeds:               *seeds,
		Quick:               *quick,
		SimWorkersPerWorker: *simW,
		LeaseTTL:            *leaseTTL,
		Poll:                *poll,
		Revision:            rev,
		KillAfterRecords:    *killAfter,
		Metrics:             reg,
		Logger:              log,
	}
	if !*quiet {
		var lastPrint time.Time
		co.OnEvent = func(ev campaignd.Event) {
			if ev.Type == "progress" && ev.Done != ev.Total && time.Since(lastPrint) < time.Second {
				return
			}
			lastPrint = time.Now()
			fmt.Fprintln(os.Stderr, campaignd.FormatEvent(ev))
		}
	}
	start := time.Now()
	path, err := co.Run()
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := obs.WriteSnapshotFile(reg, *metricsOut); err != nil {
			return fmt.Errorf("run: metrics snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot %s\n", *metricsOut)
	}
	fmt.Printf("%s: completed across %d workers in %s -> %s\n",
		spec.Name, *workers, time.Since(start).Round(time.Millisecond), path)
	return nil
}

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("campaignd serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8377", "listen address")
		resDir   = fs.String("results", "", "shared results pool directory (required)")
		workers  = fs.Int("workers", 2, "default worker processes per campaign (overridable per submission)")
		leaseTTL = fs.Duration("lease-ttl", 0, "shard-claim lease expiry (0 = 60s)")
		poll     = fs.Duration("poll", 0, "claim poll interval (0 = 50ms)")
		revision = fs.String("revision", "", "source revision to stamp into results (default: git rev-parse)")
		pprofF   = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profiling; leave off in shared deployments)")
		logLevel = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error or off")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resDir == "" {
		return fmt.Errorf("serve: missing -results directory")
	}
	log, err := newLogger(*logLevel)
	if err != nil {
		return err
	}
	rev := *revision
	if rev == "" {
		rev = gitRevision()
	}
	s := &campaignd.Server{
		ResultsRoot:    *resDir,
		DefaultWorkers: *workers,
		LeaseTTL:       *leaseTTL,
		Poll:           *poll,
		Revision:       rev,
		Metrics:        obs.NewRegistry(),
		Logger:         log,
	}
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	if *pprofF {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Fprintf(os.Stderr, "campaignd: serving on %s (results pool %s, %d workers/campaign, pprof %v)\n", *addr, *resDir, *workers, *pprofF)
	return http.ListenAndServe(*addr, mux)
}

func submitCmd(args []string) error {
	fs := flag.NewFlagSet("campaignd submit", flag.ContinueOnError)
	var (
		server    = fs.String("server", "http://localhost:8377", "campaignd server URL")
		campaignF = fs.String("campaign", "", "campaign spec: a JSON file or an embedded spec name")
		workers   = fs.Int("workers", 0, "worker processes (0 = server default)")
		scale     = fs.String("scale", "", "system scale override")
		seeds     = fs.Int("seeds", 0, "replications per point override")
		quick     = fs.Bool("quick", false, "trim sweeps for a fast smoke run")
		quiet     = fs.Bool("quiet", false, "suppress per-event progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *campaignF == "" {
		return fmt.Errorf("submit: missing -campaign")
	}
	q := url.Values{}
	if *workers > 0 {
		q.Set("workers", fmt.Sprint(*workers))
	}
	if *scale != "" {
		q.Set("scale", *scale)
	}
	if *seeds > 0 {
		q.Set("seeds", fmt.Sprint(*seeds))
	}
	if *quick {
		q.Set("quick", "1")
	}
	// A name that is not an existing file submits the embedded spec by name;
	// a file submits its JSON body.
	var body []byte
	builtin := ""
	if _, err := os.Stat(*campaignF); err == nil {
		if body, err = os.ReadFile(*campaignF); err != nil {
			return err
		}
	} else {
		builtin = *campaignF
	}
	id, err := campaignd.Submit(*server, body, builtin, q)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted %s\n", id)
	var lastPrint time.Time
	onEvent := func(ev campaignd.Event) {
		if *quiet {
			return
		}
		if ev.Type == "progress" && ev.Done != ev.Total && time.Since(lastPrint) < time.Second {
			return
		}
		lastPrint = time.Now()
		fmt.Fprintln(os.Stderr, campaignd.FormatEvent(ev))
	}
	export, err := campaignd.Follow(*server, id, onEvent)
	if err != nil {
		return err
	}
	fmt.Printf("%s done -> %s\n", id, export)
	return nil
}

func workCmd(args []string) error {
	fs := flag.NewFlagSet("campaignd work", flag.ContinueOnError)
	var (
		specPath   = fs.String("spec", "", "campaign spec JSON file (required)")
		resDir     = fs.String("results", "", "shared results directory (required)")
		owner      = fs.String("owner", "", "worker name for leases and events")
		scale      = fs.String("scale", "", "system scale override")
		seeds      = fs.Int("seeds", 0, "replications per point override")
		quick      = fs.Bool("quick", false, "trim sweeps for a fast smoke run")
		simW       = fs.Int("sim-workers", 0, "simulation concurrency (0 = GOMAXPROCS)")
		leaseTTL   = fs.Duration("lease-ttl", 0, "shard-claim lease expiry (0 = 60s)")
		poll       = fs.Duration("poll", 0, "claim poll interval (0 = 50ms)")
		metricsOut = fs.String("metrics-out", "", "write this worker's metrics snapshot to this JSON file")
		logLevel   = fs.String("log-level", "", "structured log level on stderr: debug, info, warn, error (default off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" || *resDir == "" {
		return fmt.Errorf("work: need -spec and -results")
	}
	log, err := newLogger(*logLevel)
	if err != nil {
		return err
	}
	return campaignd.RunWorker(campaignd.WorkerConfig{
		SpecPath:   *specPath,
		ResultsDir: *resDir,
		Owner:      *owner,
		Scale:      *scale,
		Seeds:      *seeds,
		Quick:      *quick,
		SimWorkers: *simW,
		LeaseTTL:   *leaseTTL,
		Poll:       *poll,
		Events:     os.Stdout,
		MetricsOut: *metricsOut,
		Logger:     log,
	})
}
