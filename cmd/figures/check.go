package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"flexvc/internal/obs"
	"flexvc/internal/sim"
	"flexvc/internal/sweep"
	"flexvc/internal/verify"
)

// checkCmd is the one-command reproducibility verification: `figures check
// [id|all]` re-runs every recorded experiment named by the experiments
// manifest and byte-compares the fresh export and rendered report against the
// committed artefacts (internal/verify). It exits non-zero on any FAIL, so CI
// collapses the bespoke per-experiment diff jobs into this single gate.
func checkCmd(args []string) error {
	fs := flag.NewFlagSet("figures check", flag.ContinueOnError)
	var (
		manifestF  = fs.String("manifest", "experiments/manifest.json", "experiments manifest to verify against")
		workDir    = fs.String("work", "", "keep per-entry scratch results under this directory (default: private temp dir, removed)")
		maxWall    = fs.Duration("max-wall", 0, "skip the re-run of entries whose approx_wall_s exceeds this (digests still verified); 0 re-runs everything")
		workers    = fs.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
		shards     = fs.Int("shards", 0, "network shards per re-run replication: 1 serial, 0 auto, N explicit (recorded artefacts must reproduce byte-identically at any value)")
		update     = fs.Bool("update", false, "re-pin the manifest digests from the committed artefacts and rewrite the manifest (no re-run)")
		jsonOut    = fs.Bool("json", false, "emit the structured per-entry results as JSON on stdout")
		verbose    = fs.Bool("v", false, "stream re-run progress to stderr")
		corrupt    = fs.String("corrupt-fresh", "", "negative-path self-test: flip one byte of the freshly produced 'export' or 'report' before comparing (must FAIL)")
		metricsOut = fs.String("metrics-out", "", "instrument the re-runs and write the pooled metrics snapshot to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := verify.LoadManifest(*manifestF)
	if err != nil {
		return err
	}
	if *update {
		if err := m.UpdateDigests(); err != nil {
			return err
		}
		if err := m.Write(*manifestF); err != nil {
			return err
		}
		fmt.Printf("re-pinned digests for %d entries in %s\n", len(m.Entries), *manifestF)
		return nil
	}
	if *corrupt != "" && *corrupt != "export" && *corrupt != "report" {
		return fmt.Errorf("check: -corrupt-fresh %q, want 'export' or 'report'", *corrupt)
	}
	if *workers > 0 {
		sim.SetWorkerBudget(*workers)
	}

	ids := fs.Args()
	// The -max-wall skip estimate assumes the effective worker count: the
	// explicit -workers value, or the default budget (GOMAXPROCS) when unset.
	// ApproxWallS in the manifest is a serial measurement, so dividing keeps
	// the budget comparison honest for parallel re-runs.
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	opts := verify.Options{WorkDir: *workDir, MaxWall: *maxWall, CorruptFresh: *corrupt, Shards: *shards, Workers: effWorkers}
	if *metricsOut != "" {
		opts.Metrics = obs.NewRegistry()
	}
	if *verbose {
		var lastPrint time.Time
		opts.Progress = func(p sweep.Progress) {
			if p.Done != p.Total && time.Since(lastPrint) < time.Second {
				return
			}
			lastPrint = time.Now()
			fmt.Fprintf(os.Stderr, "check %s [%s] %d/%d replications elapsed %s eta %s\n",
				p.Experiment, p.Section, p.Done, p.Total,
				p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
		}
	}
	rs, err := verify.Check(m, ids, opts)
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := obs.WriteSnapshotFile(opts.Metrics, *metricsOut); err != nil {
			return fmt.Errorf("check: metrics snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot %s\n", *metricsOut)
	}
	if *jsonOut {
		b, err := json.MarshalIndent(rs, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	} else {
		for _, r := range rs {
			fmt.Println(r.Summary())
		}
	}
	var failed []string
	for _, r := range rs {
		if r.Status == verify.Fail {
			failed = append(failed, r.ID)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("check: %d of %d entries FAILED: %s", len(failed), len(rs), strings.Join(failed, ", "))
	}
	return nil
}
