package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexvc/internal/campaign"
	"flexvc/internal/results"
	"flexvc/internal/sweep"
	"flexvc/internal/verify"
)

// recordSmoke runs the embedded smoke campaign (quick, ~0.2s) into a fresh
// results directory and returns the directory and export path — the cheapest
// way to get a real renderable export for CLI tests.
func recordSmoke(t *testing.T, dir string) string {
	t.Helper()
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetRevision("testrev")
	spec, err := campaign.Builtin("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(spec, sweep.Options{Quick: true, Results: store}); err != nil {
		t.Fatal(err)
	}
	path, err := store.WriteExport(spec.Name, spec.ReportTitle())
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// recordedTree builds a manifest-described experiments tree around a smoke
// recording, digests pinned — the fixture the `figures check` CLI tests
// corrupt.
func recordedTree(t *testing.T) (manifestPath, exportPath, reportPath string) {
	t.Helper()
	dir := t.TempDir()
	rec := filepath.Join(dir, "smoke-rec")
	if err := os.MkdirAll(rec, 0o755); err != nil {
		t.Fatal(err)
	}
	src := recordSmoke(t, filepath.Join(dir, "recording"))
	export, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	exportPath = filepath.Join(rec, "smoke.results.json")
	if err := os.WriteFile(exportPath, export, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := results.LoadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	text, err := sweep.RenderResultsMarkdown(f)
	if err != nil {
		t.Fatal(err)
	}
	reportPath = filepath.Join(rec, "report.md")
	if err := os.WriteFile(reportPath, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	m := &verify.Manifest{
		Schema: verify.ManifestSchema,
		Entries: []verify.Entry{{
			ID: "smoke", Kind: "campaign", Campaign: "smoke", Quick: true,
			Export:      verify.FileRef{Path: "smoke-rec/smoke.results.json"},
			Report:      verify.FileRef{Path: "smoke-rec/report.md"},
			ApproxWallS: 1,
		}},
	}
	m.SetDir(dir)
	if err := m.UpdateDigests(); err != nil {
		t.Fatal(err)
	}
	manifestPath = filepath.Join(dir, "manifest.json")
	if err := m.Write(manifestPath); err != nil {
		t.Fatal(err)
	}
	return manifestPath, exportPath, reportPath
}

func TestExpandIDs(t *testing.T) {
	all, err := expandIDs("all")
	if err != nil || len(all) != len(sweep.IDs()) {
		t.Fatalf("expandIDs(all) = %v, %v", all, err)
	}
	if _, err := expandIDs(""); err == nil {
		t.Error("empty -exp accepted")
	}
	if _, err := expandIDs("fig99"); err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Errorf("unknown experiment: err %v should name it", err)
	}
	if _, err := expandIDs("fig5,fig7,fig5"); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate id accepted (err=%v)", err)
	}
	got, err := expandIDs("fig7,fig5")
	if err != nil || len(got) != 2 || got[0] != "fig7" || got[1] != "fig5" {
		t.Errorf("expandIDs should keep the user's order: %v, %v", got, err)
	}
}

// TestExpandRenderIDsAll locks discovery semantics: union of the registry and
// the directory's exports, sorted (deterministic), with directory exports that
// shadow a registry id counted once.
func TestExpandRenderIDsAll(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"zcustom.results.json", "acustom.results.json", "fig5.results.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := expandRenderIDs("all", dir)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string{"acustom", "zcustom"}, sweep.IDs()...)
	counts := map[string]int{}
	for _, id := range ids {
		counts[id]++
	}
	for _, id := range want {
		if counts[id] != 1 {
			t.Errorf("id %q appears %d times, want once", id, counts[id])
		}
	}
	if len(ids) != len(want) {
		t.Errorf("discovered %d ids, want %d (%v)", len(ids), len(want), ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("discovery order not sorted: %v", ids)
		}
	}
	// A second pass must agree exactly — discovery is deterministic.
	again, err := expandRenderIDs("all", dir)
	if err != nil || strings.Join(ids, ",") != strings.Join(again, ",") {
		t.Errorf("discovery not stable: %v vs %v (err %v)", ids, again, err)
	}

	if _, err := expandRenderIDs("smoke,smoke", dir); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate render id accepted (err=%v)", err)
	}
}

// TestRenderAllSkipsUnreadableExports: with -exp all, a torn write and a
// foreign-schema file in the results directory must not sink the render of the
// valid export.
func TestRenderAllSkipsUnreadableExports(t *testing.T) {
	dir := t.TempDir()
	recordSmoke(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "torn.results.json"), []byte(`{"schema":2,"experi`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "foreign.results.json"), []byte(`{"schema":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "reports")
	if err := run([]string{"render", "-exp", "all", "-results", dir, "-out", out}); err != nil {
		t.Fatalf("render -exp all: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "smoke.md")); err != nil {
		t.Fatalf("valid export not rendered: %v", err)
	}
	for _, bad := range []string{"torn.md", "foreign.md"} {
		if _, err := os.Stat(filepath.Join(out, bad)); err == nil {
			t.Errorf("unreadable export %s produced a report", bad)
		}
	}
	// Single-id render of the torn file must surface the error instead.
	if err := run([]string{"render", "-exp", "torn", "-results", dir}); err == nil {
		t.Error("single-id render of a torn export should fail loudly")
	}
}

// TestCheckCLIPassesOnFaithfulTree is the CLI positive path for `figures
// check all`.
func TestCheckCLIPassesOnFaithfulTree(t *testing.T) {
	manifest, _, _ := recordedTree(t)
	if err := run([]string{"check", "-manifest", manifest, "all"}); err != nil {
		t.Fatalf("figures check all on a faithful tree: %v", err)
	}
}

// TestCheckCLICatchesCorruptExport is the acceptance-mandated negative path:
// one flipped byte in a committed export makes `figures check` return a
// non-nil error (exit 1 in main) naming the entry.
func TestCheckCLICatchesCorruptExport(t *testing.T) {
	manifest, export, _ := recordedTree(t)
	b, err := os.ReadFile(export)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(export, b, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"check", "-manifest", manifest, "all"})
	if err == nil {
		t.Fatal("corrupted export passed `figures check`")
	}
	if !strings.Contains(err.Error(), "FAILED") || !strings.Contains(err.Error(), "smoke") {
		t.Fatalf("error %q should count failures and name the entry", err)
	}
}

// TestCheckCLICatchesStaleReport: a report edited and re-pinned (digests
// intact) still fails the re-run comparison.
func TestCheckCLICatchesStaleReport(t *testing.T) {
	manifest, _, report := recordedTree(t)
	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(b), "|", "!", 1)
	if stale == string(b) {
		t.Fatal("report has no table to stale")
	}
	if err := os.WriteFile(report, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", "-manifest", manifest, "-update"}); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"check", "-manifest", manifest, "all"})
	if err == nil || !strings.Contains(err.Error(), "smoke") {
		t.Fatalf("stale report passed `figures check` (err=%v)", err)
	}
}

// TestCheckCLICorruptFreshSelfTest: the -corrupt-fresh self-test must fail a
// faithful tree (proving the comparator bites) and reject unknown targets.
func TestCheckCLICorruptFreshSelfTest(t *testing.T) {
	manifest, _, _ := recordedTree(t)
	if err := run([]string{"check", "-manifest", manifest, "-corrupt-fresh", "export", "all"}); err == nil {
		t.Error("-corrupt-fresh export did not fail a faithful tree")
	}
	err := run([]string{"check", "-manifest", manifest, "-corrupt-fresh", "bogus", "all"})
	if err == nil || !strings.Contains(err.Error(), "corrupt-fresh") {
		t.Errorf("-corrupt-fresh bogus accepted (err=%v)", err)
	}
}

// TestCheckCLIUnknownEntry: asking for an id the manifest does not record is a
// harness error listing what exists.
func TestCheckCLIUnknownEntry(t *testing.T) {
	manifest, _, _ := recordedTree(t)
	err := run([]string{"check", "-manifest", manifest, "nope"})
	if err == nil || !strings.Contains(err.Error(), "smoke") {
		t.Fatalf("unknown entry error should list available ids (err=%v)", err)
	}
}
