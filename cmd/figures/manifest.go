package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/obs"
	"flexvc/internal/results"
	"flexvc/internal/sim"
	"flexvc/internal/sweep"
	"flexvc/internal/verify"
)

// This file is the bridge from `figures run` to the reproducibility gate:
// recording an experiment is only half the job — until it has a manifest
// entry, `figures check` does not guard it. manifestAppend does the
// registration in one step (render the report, pin digests, append the
// entry), and manifestHint nags when a recording lands under the manifest
// directory without one.

// manifestAppend registers a freshly recorded experiment in the experiments
// manifest: it renders report.md next to the export, pins sha256 digests of
// both artefacts, appends a new entry and rewrites the manifest file. The
// entry id is the results directory's base name (the layout convention the
// manifest documents), and the registration fails if that id is already
// taken — updating an existing recording is `figures check -update`'s job.
func manifestAppend(manifestPath, id string, spec *campaign.Campaign, campaignArg, experiment, exportPath, scale string, seeds int, quick bool, simWall time.Duration, metrics *obs.Snapshot, notes string) error {
	m, err := verify.LoadManifest(manifestPath)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		// First entry ever: start a fresh manifest next to nothing.
		m = &verify.Manifest{Schema: verify.ManifestSchema}
		m.SetDir(filepath.Dir(manifestPath))
	}
	if _, ok := m.Entry(id); ok {
		return fmt.Errorf("manifest %s already has an entry %q; to refresh its artefacts re-run into its directory and re-pin with `figures check -update`", manifestPath, id)
	}

	exportRel, err := manifestRel(m.Dir(), exportPath)
	if err != nil {
		return fmt.Errorf("-manifest-add pins artefact paths relative to %s, so the results directory must live under it (e.g. -results %s): %w",
			m.Dir(), filepath.Join(m.Dir(), id), err)
	}

	// The report is rendered from the export exactly the way `figures check`
	// re-renders it, so the committed pair starts out byte-consistent.
	f, err := results.LoadFile(exportPath)
	if err != nil {
		return err
	}
	text, err := sweep.RenderResultsMarkdown(f)
	if err != nil {
		return fmt.Errorf("rendering %s: %w", exportPath, err)
	}
	reportPath := filepath.Join(filepath.Dir(exportPath), "report.md")
	if err := os.WriteFile(reportPath, []byte(text), 0o644); err != nil {
		return err
	}
	reportRel, err := manifestRel(m.Dir(), reportPath)
	if err != nil {
		return err
	}

	e := verify.Entry{
		ID:    id,
		Quick: quick,
		// ApproxWallS budgets the re-run against `figures check -max-wall`;
		// the store's summed per-replication wall time approximates the
		// one-core cost even when this run restored checkpoints or ran
		// replications in parallel.
		ApproxWallS: math.Ceil(simWall.Seconds()),
		Notes:       notes,
	}
	// A metrics snapshot (figures run -metrics-out) carries this machine's
	// measured per-replication wall, which beats the store's summed walls when
	// the recording restored checkpoints made on different hardware: the
	// stored walls are then stale provenance, the snapshot is a fresh
	// measurement (see DESIGN.md, "Observability").
	if w, ok := metricsApproxWall(metrics); ok {
		e.ApproxWallS = w
	}
	if spec != nil {
		e.Kind = "campaign"
		if e.Campaign, err = campaignRef(m.Dir(), campaignArg); err != nil {
			return err
		}
		// Campaign entries leave scale/seeds zero to follow the spec's
		// defaults; pin them only when flags overrode those defaults.
		e.Scale, e.Seeds = scale, seeds
	} else {
		e.Kind = "experiment"
		e.Experiment = experiment
		e.Scale, e.Seeds = scale, seeds
	}
	e.Export.Path = exportRel
	if e.Export.SHA256, err = results.DigestFile(exportPath); err != nil {
		return err
	}
	e.Report.Path = reportRel
	if e.Report.SHA256, err = results.DigestFile(reportPath); err != nil {
		return err
	}

	m.Entries = append(m.Entries, e)
	if err := m.Validate(); err != nil {
		return fmt.Errorf("refusing to write an invalid manifest: %w", err)
	}
	if err := m.Write(manifestPath); err != nil {
		return err
	}
	fmt.Printf("%s: registered entry %q (approx re-run wall %.0fs); `figures check %s` now guards it\n",
		manifestPath, id, e.ApproxWallS, id)
	return nil
}

// metricsApproxWall extrapolates an entry's one-core re-run cost from a run's
// metrics snapshot: the measured mean fresh-replication wall times the total
// record count (fresh + restored). It reports false when the snapshot holds
// no fresh replications — with nothing simulated on this machine there is no
// measurement to extrapolate from, and the store's summed walls stand.
func metricsApproxWall(snap *obs.Snapshot) (float64, bool) {
	if snap == nil {
		return 0, false
	}
	fresh := snap.Counters[sweep.MetricReplicationsSimulated]
	restored := snap.Counters[sweep.MetricReplicationsRestored]
	wallNS := snap.Histograms[sim.MetricReplicationWall].Sum
	if fresh <= 0 || wallNS <= 0 {
		return 0, false
	}
	mean := float64(wallNS) / float64(fresh)
	return math.Ceil(mean * float64(fresh+restored) / float64(time.Second)), true
}

// campaignRef turns the -campaign argument into the manifest's campaign
// reference: a spec file becomes a path relative to the manifest directory
// (where the verifier resolves it), an embedded spec name passes through.
func campaignRef(manifestDir, arg string) (string, error) {
	fi, err := os.Stat(arg)
	if err != nil || !fi.Mode().IsRegular() {
		return arg, nil // embedded spec name
	}
	rel, err := manifestRel(manifestDir, arg)
	if err != nil {
		return "", fmt.Errorf("the campaign spec must live under %s so the manifest entry can find it (copy it next to the recorded artefacts): %w", manifestDir, err)
	}
	return rel, nil
}

// manifestRel resolves path relative to the manifest directory, rejecting
// anything that escapes it — manifest references must stay relocatable.
func manifestRel(manifestDir, path string) (string, error) {
	absDir, err := filepath.Abs(manifestDir)
	if err != nil {
		return "", err
	}
	absPath, err := filepath.Abs(path)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(absDir, absPath)
	if err != nil {
		return "", err
	}
	if rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("%s is outside the manifest directory %s", path, manifestDir)
	}
	return filepath.ToSlash(rel), nil
}

// manifestHint prints a reminder when an export was just recorded under the
// manifest's directory but no entry references it: the recording exists, but
// nothing guards its reproducibility until it is registered.
func manifestHint(manifestPath, exportPath string) {
	rel, err := manifestRel(filepath.Dir(manifestPath), exportPath)
	if err != nil {
		return // outside experiments/: scratch results need no entry
	}
	if m, err := verify.LoadManifest(manifestPath); err == nil {
		for _, e := range m.Entries {
			if e.Export.Path == rel {
				return
			}
		}
	} else if !os.IsNotExist(err) {
		return
	}
	fmt.Fprintf(os.Stderr, "note: %s is recorded under %s but has no manifest entry — re-run with -manifest-add to register it so `figures check` guards its reproducibility\n",
		rel, filepath.Dir(manifestPath))
}
