// Command figures regenerates the tables and figures of the FlexVC paper's
// evaluation section (Tables I-IV, Figures 5-11).
//
// It has two halves, connected by machine-readable results files
// (internal/results): `run` simulates into a results directory, checkpointing
// every completed replication so an interrupted sweep resumes where it
// stopped, and `render` turns the recorded results into reports — including
// the paper-vs-measured tables of EXPERIMENTS.md — without re-simulating.
//
// Beyond the built-in experiments, `run` and `render` accept declarative
// campaign specs (internal/campaign): a JSON file — or the name of an
// embedded spec, see `figures list` — describing base settings, variant axes,
// loads, seeds, scale and optional scenarios. Campaign runs checkpoint,
// resume, export and render exactly like built-in figures.
//
// A third mode, `check`, is the reproducibility gate: it reads the
// experiments manifest (experiments/manifest.json), re-runs each recorded
// experiment or campaign into a scratch results directory, and byte-compares
// the fresh export and rendered report against the committed artefacts
// (internal/verify). Any divergence — a corrupted recording, a simulator
// behaviour change, a renderer change — exits non-zero with the first
// diverging line.
//
// Examples:
//
//	figures list
//	figures run -exp fig5 -scale small -seeds 5 -results results/
//	figures run -exp all -scale medium -seeds 5 -results results/   # resumable
//	figures run -campaign experiments/pb-policies-transient/campaign.json -results results/
//	figures render -exp fig5 -results results/ -out fig5.md
//	figures render -campaign pb-policies-transient -results results/
//	figures render -exp fig5 -results results/ -format text
//	figures check all                      # verify every recorded experiment
//	figures check transient-small          # verify one manifest entry
//	figures check -max-wall 10s all        # digests always; re-run only cheap entries
//
// The legacy one-shot mode (simulate and print, nothing recorded) is kept for
// quick looks:
//
//	figures -exp table3
//	figures -exp fig5 -scale small -seeds 3
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/obs"
	"flexvc/internal/results"
	"flexvc/internal/sim"
	"flexvc/internal/stats"
	"flexvc/internal/sweep"
)

// errorBoundNote is printed alongside every simulated paper-vs-measured
// table so EXPERIMENTS.md can cite the precision of the latency columns.
func errorBoundNote() string {
	return fmt.Sprintf(
		"latency percentiles are read from a fixed-size histogram: at most %.2f%% relative error vs the exact samples (exact below 128 cycles; mean latencies are exact sums)",
		100*stats.PercentileErrorBound)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "list":
			return listCmd()
		case "run":
			return runCmd(args[1:])
		case "render":
			return renderCmd(args[1:])
		case "check":
			return checkCmd(args[1:])
		case "help", "-h", "-help", "--help":
			fmt.Println("usage: figures {list | run | render | check} [flags]   (or legacy: figures -exp ... )")
			fmt.Println("  run    simulate into a checkpointed results directory (resumable);")
			fmt.Println("         -exp runs built-in experiments, -campaign runs a JSON campaign spec")
			fmt.Println("  render turn recorded results into reports without re-simulating")
			fmt.Println("  check  re-run the recorded experiments of experiments/manifest.json and")
			fmt.Println("         byte-compare exports + reports against the committed artefacts;")
			fmt.Println("         exits non-zero on any mismatch (figures check [id|all])")
			return nil
		}
	}
	return legacyCmd(args)
}

func listCmd() error {
	reg := sweep.Registry()
	for _, id := range sweep.IDs() {
		kind := "simulated"
		if reg[id].Analytic {
			kind = "analytic"
		}
		fmt.Printf("  %-8s %-9s %s\n", id, kind, reg[id].Title)
	}
	fmt.Println("campaign specs (run with `figures run -campaign <name|spec.json>`):")
	for _, name := range campaign.BuiltinNames() {
		c, err := campaign.Builtin(name)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s %-9s %s\n", name, "campaign", c.ReportTitle())
	}
	return nil
}

// expandIDs resolves the -exp flag value ("fig5", "fig5,fig7" or "all").
func expandIDs(exp string) ([]string, error) {
	if exp == "" {
		return nil, fmt.Errorf("missing -exp (use `figures list` to see the available experiments)")
	}
	if exp == "all" {
		return sweep.IDs(), nil
	}
	ids := strings.Split(exp, ",")
	reg := sweep.Registry()
	seen := map[string]bool{}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			return nil, fmt.Errorf("unknown experiment %q (use `figures list`)", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("experiment %q listed twice in -exp", id)
		}
		seen[id] = true
	}
	return ids, nil
}

// expandRenderIDs resolves the -exp flag for `figures render`. Unlike the run
// path, ids need not be registry experiments — campaign results render from
// their exports alone — so named ids pass through unchecked (a missing
// results file surfaces the error), and "all" renders everything recorded in
// the directory plus any registry experiment (so missing built-in files keep
// their skip-silently semantics).
func expandRenderIDs(exp, resDir string) ([]string, error) {
	if exp == "" {
		return nil, fmt.Errorf("missing -exp (use `figures list` to see the available experiments)")
	}
	if exp != "all" {
		ids := strings.Split(exp, ",")
		seen := map[string]bool{}
		for _, id := range ids {
			if seen[id] {
				return nil, fmt.Errorf("experiment %q listed twice in -exp", id)
			}
			seen[id] = true
		}
		return ids, nil
	}
	ids := sweep.IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	matches, err := filepath.Glob(filepath.Join(resDir, "*.results.json"))
	if err != nil {
		return nil, err
	}
	for _, m := range matches {
		id := strings.TrimSuffix(filepath.Base(m), ".results.json")
		if !have[id] {
			have[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// gitRevision best-effort resolves the source revision results are stamped
// with; an explicit -revision flag overrides it.
func gitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// --- figures run -----------------------------------------------------------

func runCmd(args []string) error {
	fs := flag.NewFlagSet("figures run", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "", "experiments to run: comma-separated IDs or 'all'")
		campaignF  = fs.String("campaign", "", "campaign spec to run: a JSON file or an embedded spec name (see `figures list`)")
		scale      = fs.String("scale", "", "system scale: small, medium or paper (campaign specs may set their own default)")
		seeds      = fs.Int("seeds", 0, "independent replications per point (the paper uses 5; campaign specs may set their own default)")
		parallel   = fs.Int("parallel", 0, "cap on sweep points in flight (0 = unbounded; a memory guard)")
		workers    = fs.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
		shards     = fs.Int("shards", 0, "network shards per replication: 1 serial, 0 auto, N explicit (bit-identical at any value)")
		quick      = fs.Bool("quick", false, "trim sweeps for a fast smoke run")
		resDir     = fs.String("results", "", "results directory (required): checkpoints + exported results JSON")
		revision   = fs.String("revision", "", "source revision to stamp into the results (default: git rev-parse)")
		manAdd     = fs.Bool("manifest-add", false, "after recording, render report.md next to the export and register a digest-pinned entry in -manifest (entry id = the results directory name)")
		manifestF  = fs.String("manifest", "experiments/manifest.json", "experiments manifest -manifest-add appends to (recordings under its directory without an entry get a reminder)")
		notes      = fs.String("notes", "", "free-form provenance to record in the manifest entry (with -manifest-add)")
		metricsOut = fs.String("metrics-out", "", "instrument the run and write the metrics snapshot to this JSON file (exports stay byte-identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resDir == "" {
		return fmt.Errorf("run: missing -results directory")
	}
	if (*exp == "") == (*campaignF == "") {
		return fmt.Errorf("run: need exactly one of -exp or -campaign")
	}
	var spec *campaign.Campaign
	var ids []string
	var err error
	if *campaignF != "" {
		if spec, err = campaign.Resolve(*campaignF); err != nil {
			return err
		}
		ids = []string{spec.Name}
	} else if ids, err = expandIDs(*exp); err != nil {
		return err
	}
	store, err := results.Open(*resDir)
	if err != nil {
		return err
	}
	rev := *revision
	if rev == "" {
		rev = gitRevision()
	}
	if rev != "" {
		store.SetRevision(rev)
	}
	if *workers > 0 {
		sim.SetWorkerBudget(*workers)
	}
	var metrics *obs.Registry
	if *metricsOut != "" {
		metrics = obs.NewRegistry()
		store.SetMetrics(metrics)
	}
	if prior := store.Len(); prior > 0 {
		fmt.Fprintf(os.Stderr, "resuming: %d replications already recorded in %s\n", prior, *resDir)
	}

	reg := sweep.Registry()
	if *manAdd {
		// A manifest entry pins one recording: one id, one export, one report.
		if len(ids) != 1 {
			return fmt.Errorf("run: -manifest-add registers exactly one recorded experiment per entry; run %d experiments separately", len(ids))
		}
		if spec == nil && reg[ids[0]].Analytic {
			return fmt.Errorf("run: %s is analytic — nothing is recorded, so there is nothing to register", ids[0])
		}
	}
	for _, id := range ids {
		if spec == nil && reg[id].Analytic {
			fmt.Fprintf(os.Stderr, "%s: analytic (nothing to simulate or record); render it with `figures -exp %s`\n", id, id)
			continue
		}
		start := time.Now()
		var lastPrint time.Time
		var final sweep.Progress
		// Defaults match the pre-campaign flag defaults; campaign specs may
		// carry their own scale/seeds, which campaign.Run applies when the
		// flags are unset.
		expScale, expSeeds := *scale, *seeds
		if spec == nil {
			if expScale == "" {
				expScale = "small"
			}
			if expSeeds <= 0 {
				expSeeds = 1
			}
		}
		opts := sweep.Options{
			Scale:       expScale,
			Seeds:       expSeeds,
			Parallelism: *parallel,
			Quick:       *quick,
			Shards:      *shards,
			Results:     store,
			Metrics:     metrics,
			Progress: func(p sweep.Progress) {
				final = p
				if p.Summary {
					fmt.Fprintf(os.Stderr, "%s summary: %d replications (%d restored, %d simulated) in %s, %.1f records/s\n",
						id, p.Done, p.Skipped, p.Done-p.Skipped,
						p.Elapsed.Round(time.Millisecond), p.RecordsPerSec)
					return
				}
				if p.Done != p.Total && time.Since(lastPrint) < time.Second {
					return
				}
				lastPrint = time.Now()
				fmt.Fprintf(os.Stderr, "%s [%s] %d/%d replications (%d restored) elapsed %s eta %s\n",
					id, p.Section, p.Done, p.Total, p.Skipped,
					p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
			},
		}
		title := ""
		if spec != nil {
			title = spec.ReportTitle()
			_, err = campaign.Run(spec, opts)
		} else {
			title = reg[id].Title
			_, err = sweep.Run(id, opts)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		path, err := store.WriteExport(id, title)
		if err != nil {
			return fmt.Errorf("%s: exporting results: %w", id, err)
		}
		fmt.Printf("%s: %d replications (%d restored from checkpoints) in %s -> %s\n",
			id, final.Done, final.Skipped, time.Since(start).Round(time.Millisecond), path)
		if *manAdd {
			entryID := filepath.Base(filepath.Clean(*resDir))
			var snap *obs.Snapshot
			if metrics != nil {
				snap = metrics.Snapshot()
			}
			if err := manifestAppend(*manifestF, entryID, spec, *campaignF, id, path, expScale, expSeeds, *quick, store.WallTotal(), snap, *notes); err != nil {
				return fmt.Errorf("%s: -manifest-add: %w", id, err)
			}
		} else {
			manifestHint(*manifestF, path)
		}
	}
	if metrics != nil {
		if err := obs.WriteSnapshotFile(metrics, *metricsOut); err != nil {
			return fmt.Errorf("run: metrics snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot %s\n", *metricsOut)
	}
	fmt.Printf("results directory %s now holds %d replications (%s of simulation)\n",
		*resDir, store.Len(), store.WallTotal().Round(time.Second))
	return nil
}

// --- figures render --------------------------------------------------------

func renderCmd(args []string) error {
	fs := flag.NewFlagSet("figures render", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "", "experiments to render: comma-separated IDs (built-in or campaign names) or 'all'")
		campaignF = fs.String("campaign", "", "campaign spec whose recorded results to render (a JSON file or embedded spec name)")
		resDir    = fs.String("results", "", "results directory holding <exp>.results.json exports")
		out       = fs.String("out", "", "output file (single experiment) or directory (with -exp all); default stdout")
		format    = fs.String("format", "markdown", "output format: markdown or text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resDir == "" {
		return fmt.Errorf("render: missing -results directory")
	}
	if (*exp == "") == (*campaignF == "") {
		return fmt.Errorf("render: need exactly one of -exp or -campaign")
	}
	var ids []string
	if *campaignF != "" {
		spec, err := campaign.Resolve(*campaignF)
		if err != nil {
			return err
		}
		ids = []string{spec.Name}
	} else {
		var err error
		if ids, err = expandRenderIDs(*exp, *resDir); err != nil {
			return err
		}
	}
	reg := sweep.Registry()
	multi := len(ids) > 1
	rendered := 0
	for _, id := range ids {
		if reg[id].Analytic {
			if !multi {
				return fmt.Errorf("%s is analytic: regenerate it directly with `figures -exp %s`", id, id)
			}
			continue
		}
		path := filepath.Join(*resDir, id+".results.json")
		f, err := results.LoadFile(path)
		if err != nil {
			if multi {
				// Not every experiment has been run into this directory, and
				// one unreadable export (torn write, foreign schema) must not
				// sink the render of every valid one.
				if !os.IsNotExist(err) {
					fmt.Fprintf(os.Stderr, "render: skipping %s: %v\n", id, err)
				}
				continue
			}
			return err
		}
		var text string
		switch *format {
		case "markdown", "md":
			text, err = sweep.RenderResultsMarkdown(f)
		case "text", "txt":
			var rep *sweep.Report
			rep, err = sweep.ReportFromResults(f)
			if err == nil {
				rep.Notes = append(rep.Notes, errorBoundNote())
				text = rep.Render()
			}
		default:
			return fmt.Errorf("render: unknown format %q (want markdown or text)", *format)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := emit(*out, id, *format, text, multi); err != nil {
			return err
		}
		rendered++
	}
	if rendered == 0 {
		return fmt.Errorf("render: no results files for %q under %s (run `figures run` first)", *exp, *resDir)
	}
	return nil
}

// emit writes one rendered report to stdout, a file, or a directory.
func emit(out, id, format, text string, multi bool) error {
	if out == "" {
		fmt.Println(text)
		return nil
	}
	path := out
	if multi {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		ext := ".md"
		if format == "text" || format == "txt" {
			ext = ".txt"
		}
		path = filepath.Join(out, id+ext)
	}
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// --- legacy one-shot mode --------------------------------------------------

func legacyCmd(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		exp      = fs.String("exp", "", "experiment to run (table1..table4, fig5..fig11, or 'all')")
		scale    = fs.String("scale", "small", "system scale: small, medium or paper")
		seeds    = fs.Int("seeds", 1, "independent replications per point (the paper uses 5)")
		parallel = fs.Int("parallel", 0, "cap on sweep points in flight (0 = unbounded; a memory guard)")
		workers  = fs.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
		shards   = fs.Int("shards", 0, "network shards per replication: 1 serial, 0 auto, N explicit (bit-identical at any value)")
		quick    = fs.Bool("quick", false, "trim sweeps for a fast smoke run")
		out      = fs.String("out", "", "directory to write one report file per experiment (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		return listCmd()
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (use `figures list` to see the available experiments)")
	}

	if *workers > 0 {
		sim.SetWorkerBudget(*workers)
	}
	opts := sweep.Options{Scale: *scale, Seeds: *seeds, Parallelism: *parallel, Quick: *quick, Shards: *shards}
	ids := []string{*exp}
	if *exp == "all" {
		ids = sweep.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := sweep.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		// Analytic tables carry no measured latencies; every simulated
		// report cites the histogram error bound.
		if !sweep.Registry()[id].Analytic {
			rep.Notes = append(rep.Notes, errorBoundNote())
		}
		text := rep.Render() + fmt.Sprintf("\n(generated in %s)\n", time.Since(start).Round(time.Millisecond))
		if *out == "" {
			fmt.Println(text)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*out, id+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, time.Since(start).Round(time.Millisecond))
	}
	if *exp == "all" && *out != "" {
		fmt.Printf("all %d experiments written to %s\n", len(ids), *out)
	}
	return nil
}
