// Command figures regenerates the tables and figures of the FlexVC paper's
// evaluation section (Tables I-IV, Figures 5-11) as plain-text reports.
//
// Examples:
//
//	figures -list
//	figures -exp table3
//	figures -exp fig5 -scale small -seeds 3
//	figures -exp all -quick -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"flexvc/internal/sim"
	"flexvc/internal/stats"
	"flexvc/internal/sweep"
)

// errorBoundNote is printed alongside every simulated paper-vs-measured
// table so EXPERIMENTS.md can cite the precision of the latency columns.
func errorBoundNote() string {
	return fmt.Sprintf(
		"latency percentiles are read from a fixed-size histogram: at most %.2f%% relative error vs the exact samples (exact below 128 cycles; mean latencies are exact sums)",
		100*stats.PercentileErrorBound)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		exp      = fs.String("exp", "", "experiment to run (table1..table4, fig5..fig11, or 'all')")
		scale    = fs.String("scale", "small", "system scale: small, medium or paper")
		seeds    = fs.Int("seeds", 1, "independent replications per point (the paper uses 5)")
		parallel = fs.Int("parallel", 0, "cap on sweep points in flight (0 = unbounded; a memory guard)")
		workers  = fs.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
		quick    = fs.Bool("quick", false, "trim sweeps for a fast smoke run")
		out      = fs.String("out", "", "directory to write one report file per experiment (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		reg := sweep.Registry()
		for _, id := range sweep.IDs() {
			fmt.Printf("  %-8s %s\n", id, reg[id].Title)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (use -list to see the available experiments)")
	}

	if *workers > 0 {
		sim.SetWorkerBudget(*workers)
	}
	opts := sweep.Options{Scale: *scale, Seeds: *seeds, Parallelism: *parallel, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = sweep.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := sweep.Run(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		// Analytic tables carry no measured latencies; every simulated
		// report cites the histogram error bound.
		if !sweep.Registry()[id].Analytic {
			rep.Notes = append(rep.Notes, errorBoundNote())
		}
		text := rep.Render() + fmt.Sprintf("\n(generated in %s)\n", time.Since(start).Round(time.Millisecond))
		if *out == "" {
			fmt.Println(text)
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*out, id+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, time.Since(start).Round(time.Millisecond))
	}
	if *exp == "all" && *out != "" {
		fmt.Printf("all %d experiments written to %s\n", len(ids), *out)
	}
	return nil
}
