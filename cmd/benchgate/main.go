// Command benchgate is the CI benchmark-regression gate: it parses `go test
// -bench` output from stdin, reduces each benchmark to its best (minimum)
// ns/op and allocs/op across the -count repetitions, and compares them
// against a committed baseline.
//
// The gate fails when a benchmark's best ns/op exceeds the baseline by more
// than the tolerance (default 25%, recorded in the baseline file), or when
// allocs/op increases at all — allocation counts are deterministic, so any
// increase is a real regression, while wall-time carries scheduler noise that
// taking the minimum of ≥3 runs plus the tolerance absorbs.
//
// Usage:
//
//	go test -run xxx -bench <pat> -benchmem -count 3 ./... | benchgate -baseline BENCH_baseline.json
//	go test -run xxx -bench <pat> -benchmem -count 5 ./... | benchgate -baseline BENCH_baseline.json -update
//
// (or `make bench-check` / `make bench-baseline`, which pin the benchmark
// set). -update rewrites the baseline from the measured input; commit the
// refreshed file together with the change that justifies it.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or rewrite with -update)")
		update       = fs.Bool("update", false, "rewrite the baseline from the measured input instead of checking")
		tolerance    = fs.Float64("tolerance", 0, "ns/op tolerance in percent (0 = use the baseline file's, default 25)")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	measured, err := ParseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}

	if *update {
		base := NewBaseline(measured, *tolerance)
		if err := base.Write(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %s with %d benchmarks (tolerance %.0f%% on ns/op)\n",
			*baselinePath, len(base.Benchmarks), base.TolerancePct)
		return
	}

	base, err := LoadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	report := Check(base, measured, *tolerance)
	fmt.Print(report.String())
	if report.Failed() {
		os.Exit(1)
	}
}
