package main

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: flexvc
BenchmarkSmokeSweep-8   	       1	 31000000 ns/op	  120000 B/op	    1500 allocs/op	         0.456 accepted-load
BenchmarkSmokeSweep-8   	       1	 30000000 ns/op	  120000 B/op	    1500 allocs/op	         0.456 accepted-load
BenchmarkSmokeSweep-8   	       1	 33000000 ns/op	  121000 B/op	    1501 allocs/op	         0.456 accepted-load
BenchmarkAllowedVCs-8   	20000000	        55.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkAllowedVCs-8   	20000000	        54.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkAllowedVCs-8   	20000000	        56.1 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	flexvc	3.2s
`

func parse(t *testing.T, out string) map[string]Stat {
	t.Helper()
	m, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchTakesMinAcrossCount(t *testing.T) {
	m := parse(t, sampleOutput)
	smoke, ok := m["BenchmarkSmokeSweep"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", m)
	}
	if smoke.NsPerOp != 30000000 || smoke.AllocsPerOp != 1500 || smoke.Runs != 3 {
		t.Fatalf("wrong reduction: %+v", smoke)
	}
	if vcs := m["BenchmarkAllowedVCs"]; vcs.NsPerOp != 54.0 || vcs.AllocsPerOp != 0 {
		t.Fatalf("wrong reduction: %+v", vcs)
	}
}

func TestGatePassesAtBaseline(t *testing.T) {
	m := parse(t, sampleOutput)
	base := NewBaseline(m, 0)
	rep := Check(base, m, 0)
	if rep.Failed() {
		t.Fatalf("gate failed against its own baseline:\n%s", rep)
	}
	if len(rep.Passed) != 2 {
		t.Fatalf("expected 2 passing rows: %+v", rep)
	}
}

// TestGateFailsOnArtificiallySlowedBenchmark is the demonstration required by
// the acceptance criteria: slow one benchmark past the tolerance and the gate
// must fail, naming the offending row.
func TestGateFailsOnArtificiallySlowedBenchmark(t *testing.T) {
	base := NewBaseline(parse(t, sampleOutput), 0)
	slowed := strings.ReplaceAll(sampleOutput, " 31000000 ns/op", " 44000000 ns/op")
	slowed = strings.ReplaceAll(slowed, " 30000000 ns/op", " 43000000 ns/op")
	slowed = strings.ReplaceAll(slowed, " 33000000 ns/op", " 45000000 ns/op")
	rep := Check(base, parse(t, slowed), 0)
	if !rep.Failed() {
		t.Fatal("43ms vs a 30ms baseline (+43%) passed a 25% gate")
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "BenchmarkSmokeSweep") {
		t.Fatalf("offending row not named: %+v", rep.Regressions)
	}
	if !strings.Contains(rep.String(), "FAIL BenchmarkSmokeSweep") {
		t.Fatalf("report does not print the offending row:\n%s", rep)
	}
}

func TestGateToleratesNoiseWithinTolerance(t *testing.T) {
	base := NewBaseline(parse(t, sampleOutput), 0)
	noisy := strings.ReplaceAll(sampleOutput, " 30000000 ns/op", " 36000000 ns/op") // +20% < 25%
	if rep := Check(base, parse(t, noisy), 0); rep.Failed() {
		t.Fatalf("+20%% noise failed a 25%% gate:\n%s", rep)
	}
}

func TestGateFailsOnAnyAllocIncrease(t *testing.T) {
	base := NewBaseline(parse(t, sampleOutput), 0)
	leaky := strings.ReplaceAll(sampleOutput, "    1500 allocs/op", "    1501 allocs/op")
	rep := Check(base, parse(t, leaky), 0)
	if !rep.Failed() || !strings.Contains(rep.Regressions[0], "allocs/op 1501 > baseline 1500") {
		t.Fatalf("single-alloc regression not caught:\n%s", rep)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := NewBaseline(parse(t, sampleOutput), 0)
	only := parse(t, sampleOutput)
	delete(only, "BenchmarkSmokeSweep")
	rep := Check(base, only, 0)
	if !rep.Failed() || len(rep.Missing) != 1 {
		t.Fatalf("missing benchmark not caught: %+v", rep)
	}
}

func TestGateReportsUntrackedBenchmarks(t *testing.T) {
	base := NewBaseline(parse(t, sampleOutput), 0)
	extra := sampleOutput + "BenchmarkBrandNew-8   	 100	 1000 ns/op	 0 B/op	 0 allocs/op\n"
	rep := Check(base, parse(t, extra), 0)
	if rep.Failed() || len(rep.Untracked) != 1 || rep.Untracked[0] != "BenchmarkBrandNew" {
		t.Fatalf("untracked benchmark handling wrong: %+v", rep)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	base := NewBaseline(parse(t, sampleOutput), 30)
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TolerancePct != 30 || len(back.Benchmarks) != 2 {
		t.Fatalf("baseline round-trip wrong: %+v", back)
	}
	if rep := Check(back, parse(t, sampleOutput), 0); rep.Failed() {
		t.Fatalf("round-tripped baseline fails its own input:\n%s", rep)
	}
}
