package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Stat is the reduced measurement of one benchmark: the best observation
// across the -count repetitions on stdin. AllocsPerOp is -1 when the run was
// missing -benchmem.
type Stat struct {
	NsPerOp     float64
	AllocsPerOp int64
	Runs        int
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkSmokeSweep-8   38   30212345 ns/op   1234 B/op   56 allocs/op
//
// The -8 suffix is GOMAXPROCS and varies across machines, so it is stripped
// from the key.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// ParseBench reduces `go test -bench` output to per-benchmark best stats.
func ParseBench(r io.Reader) (map[string]Stat, error) {
	out := map[string]Stat{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		ns, allocs := -1.0, int64(-1)
		// The tail is (value, unit) pairs: ns/op, B/op, allocs/op plus any
		// b.ReportMetric extras.
		for i := 0; i+1 < len(rest); i += 2 {
			val, unit := rest[i], rest[i+1]
			switch unit {
			case "ns/op":
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad ns/op %q for %s", val, name)
				}
				ns = v
			case "allocs/op":
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("benchgate: bad allocs/op %q for %s", val, name)
				}
				allocs = v
			}
		}
		if ns < 0 {
			continue
		}
		st, seen := out[name]
		if !seen {
			out[name] = Stat{NsPerOp: ns, AllocsPerOp: allocs, Runs: 1}
			continue
		}
		if ns < st.NsPerOp {
			st.NsPerOp = ns
		}
		if allocs >= 0 && (st.AllocsPerOp < 0 || allocs < st.AllocsPerOp) {
			st.AllocsPerOp = allocs
		}
		st.Runs++
		out[name] = st
	}
	return out, sc.Err()
}

// Baseline is the committed reference (BENCH_baseline.json).
type Baseline struct {
	Schema       int                      `json:"schema"`
	Command      string                   `json:"command,omitempty"`
	TolerancePct float64                  `json:"tolerance_pct"`
	Benchmarks   map[string]BaselineEntry `json:"benchmarks"`
}

// BaselineEntry is the reference numbers of one benchmark.
type BaselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

const baselineSchema = 1

// defaultTolerancePct is the documented ns/op tolerance: generous enough for
// shared-runner noise once the minimum of ≥3 repetitions is taken, tight
// enough to catch a real slowdown of the simulator hot path.
const defaultTolerancePct = 25

// NewBaseline builds a baseline from measured stats.
func NewBaseline(measured map[string]Stat, tolerance float64) *Baseline {
	if tolerance <= 0 {
		tolerance = defaultTolerancePct
	}
	b := &Baseline{
		Schema:       baselineSchema,
		Command:      "make bench-baseline (see Makefile)",
		TolerancePct: tolerance,
		Benchmarks:   map[string]BaselineEntry{},
	}
	for name, st := range measured {
		b.Benchmarks[name] = BaselineEntry{NsPerOp: st.NsPerOp, AllocsPerOp: st.AllocsPerOp}
	}
	return b
}

// Write writes the baseline with stable key order.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ") // maps marshal key-sorted
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if b.Schema != baselineSchema {
		return nil, fmt.Errorf("benchgate: %s: schema v%d, this build reads v%d", path, b.Schema, baselineSchema)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: %s: empty baseline", path)
	}
	return &b, nil
}

// Report is the outcome of one gate check.
type Report struct {
	TolerancePct float64
	Regressions  []string // offending rows, human-readable
	Missing      []string // in the baseline but absent from the input
	Untracked    []string // measured but not in the baseline
	Passed       []string
}

// Failed reports whether the gate should fail the build.
func (r *Report) Failed() bool { return len(r.Regressions) > 0 || len(r.Missing) > 0 }

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchgate: %d benchmarks checked, tolerance %.0f%% on ns/op, any allocs/op increase fails\n",
		len(r.Passed)+len(r.Regressions), r.TolerancePct)
	for _, row := range r.Passed {
		fmt.Fprintf(&b, "  ok   %s\n", row)
	}
	for _, row := range r.Untracked {
		fmt.Fprintf(&b, "  new  %s (not in baseline; refresh with `make bench-baseline` to track it)\n", row)
	}
	for _, row := range r.Missing {
		fmt.Fprintf(&b, "  FAIL %s: in the baseline but not measured (benchmark removed or renamed? refresh the baseline intentionally)\n", row)
	}
	for _, row := range r.Regressions {
		fmt.Fprintf(&b, "  FAIL %s\n", row)
	}
	if r.Failed() {
		b.WriteString("benchgate: REGRESSION — if intentional, refresh the baseline with `make bench-baseline` and commit it\n")
	} else {
		b.WriteString("benchgate: OK\n")
	}
	return b.String()
}

// Check compares measured stats against the baseline. A tolerance > 0
// overrides the baseline file's.
func Check(base *Baseline, measured map[string]Stat, tolerance float64) *Report {
	tol := base.TolerancePct
	if tolerance > 0 {
		tol = tolerance
	}
	if tol <= 0 {
		tol = defaultTolerancePct
	}
	rep := &Report{TolerancePct: tol}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ref := base.Benchmarks[name]
		st, ok := measured[name]
		if !ok {
			rep.Missing = append(rep.Missing, name)
			continue
		}
		var bad []string
		if limit := ref.NsPerOp * (1 + tol/100); st.NsPerOp > limit {
			bad = append(bad, fmt.Sprintf("ns/op %.0f > %.0f (baseline %.0f +%.0f%%)", st.NsPerOp, limit, ref.NsPerOp, tol))
		}
		if ref.AllocsPerOp >= 0 && st.AllocsPerOp > ref.AllocsPerOp {
			bad = append(bad, fmt.Sprintf("allocs/op %d > baseline %d", st.AllocsPerOp, ref.AllocsPerOp))
		}
		if len(bad) > 0 {
			rep.Regressions = append(rep.Regressions, fmt.Sprintf("%s: %s", name, strings.Join(bad, "; ")))
		} else {
			rep.Passed = append(rep.Passed, fmt.Sprintf("%s: ns/op %.0f (baseline %.0f), allocs/op %d (baseline %d)",
				name, st.NsPerOp, ref.NsPerOp, st.AllocsPerOp, ref.AllocsPerOp))
		}
	}
	measuredNames := make([]string, 0, len(measured))
	for name := range measured {
		if _, ok := base.Benchmarks[name]; !ok {
			measuredNames = append(measuredNames, name)
		}
	}
	sort.Strings(measuredNames)
	rep.Untracked = measuredNames
	return rep
}
