// Command flexvcsim runs a single cycle-accurate simulation of a low-diameter
// network with a chosen buffer-management scheme (baseline fixed-order VCs,
// FlexVC or FlexVC-minCred), routing algorithm and traffic pattern, and
// prints the measured latency and throughput.
//
// Examples:
//
//	flexvcsim -scale small -traffic un -routing min -policy flexvc -vcs 4/2 -load 0.7
//	flexvcsim -scale small -traffic adv -routing pb -policy flexvc -mincred \
//	          -reqvcs 4/2 -repvcs 2/1 -reactive -load 0.3 -seeds 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flexvc/internal/buffer"
	"flexvc/internal/campaign"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/obs"
	"flexvc/internal/results"
	"flexvc/internal/routing"
	"flexvc/internal/scenario"
	"flexvc/internal/sim"
	"flexvc/internal/stats"
	"flexvc/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexvcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexvcsim", flag.ContinueOnError)
	var (
		scale      = fs.String("scale", "", "system scale: tiny, small (default), medium or paper (campaign specs may set their own default)")
		traffic    = fs.String("traffic", "un", "traffic pattern: un, adv or bursty-un")
		reactive   = fs.Bool("reactive", false, "enable request-reply traffic")
		routingF   = fs.String("routing", "min", "routing: min, val, par or pb")
		sensing    = fs.String("sensing", "per-vc", "PB congestion sensing: per-port or per-vc")
		policy     = fs.String("policy", "baseline", "VC management: baseline or flexvc")
		minCred    = fs.Bool("mincred", false, "enable FlexVC-minCred credit accounting")
		vcs        = fs.String("vcs", "2/1", "VCs as local/global (single-class traffic)")
		reqVCs     = fs.String("reqvcs", "", "request VCs as local/global (reactive traffic)")
		repVCs     = fs.String("repvcs", "", "reply VCs as local/global (reactive traffic)")
		selFn      = fs.String("select", "jsq", "FlexVC VC selection: jsq, highest, lowest or random")
		bufOrg     = fs.String("buffers", "static", "buffer organisation: static or damq")
		damqPriv   = fs.Float64("damq-private", 0.75, "DAMQ private fraction per VC")
		load       = fs.Float64("load", 0.5, "offered load in phits/node/cycle")
		scenF      = fs.String("scenario", "", "JSON scenario file: a phased workload that overrides -traffic/-load and reports windowed transient telemetry")
		campF      = fs.String("campaign", "", "campaign spec (JSON file or embedded name): run one of its variants instead of building a config from flags")
		campSec    = fs.String("section", "", "campaign section title (default: the first section)")
		campVar    = fs.String("variant", "", "campaign variant label (required with -campaign; pass an empty spec to list)")
		seeds      = fs.Int("seeds", 1, "number of independent replications to average")
		speedup    = fs.Int("speedup", 0, "router speedup override (0 keeps the scale default)")
		seed       = fs.Int64("seed", 1, "base random seed")
		workers    = fs.Int("workers", 0, "concurrent replication workers (0 = GOMAXPROCS)")
		shards     = fs.Int("shards", 0, "network shards per replication: 1 serial, 0 auto, N explicit (bit-identical at any value)")
		tableMB    = fs.Int("route-table-mb", 0, "memory budget for precomputed route tables in MiB (0 = default, negative disables)")
		out        = fs.String("out", "", "write the result as machine-readable JSON (internal/results schema) to this file")
		metricsOut = fs.String("metrics-out", "", "instrument the run and write the metrics snapshot (phase walls, shard balance) to this JSON file")
		verbose    = fs.Bool("v", false, "print per-replication results")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg config.Config
	var err error
	effScale := *scale
	if effScale == "" {
		effScale = "small"
	}
	if *campF != "" {
		// The spec defines the configuration; flags that would silently be
		// overwritten by the variant's settings are rejected instead of
		// ignored. Only -scale, -load, -seed(s), -speedup, -route-table-mb,
		// -workers, -shards, -out and -v compose with -campaign.
		haveLoad := false
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "load":
				haveLoad = true
			case "traffic", "reactive", "routing", "sensing", "policy", "mincred",
				"vcs", "reqvcs", "repvcs", "select", "buffers", "damq-private", "scenario":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return fmt.Errorf("-campaign selects the configuration from the spec; drop %s (or run without -campaign)", strings.Join(conflict, ", "))
		}
		if cfg, effScale, err = campaignConfig(*campF, *campSec, *campVar, *scale, haveLoad, *load); err != nil {
			return err
		}
		cfg.Seed = *seed
	} else {
		if cfg, err = buildConfig(*scale); err != nil {
			return err
		}
		if cfg.Traffic, err = config.ParseTrafficKind(*traffic); err != nil {
			return err
		}
		cfg.Reactive = *reactive
		cfg.Load = *load
		cfg.Seed = *seed
		if *scenF != "" {
			sc, err := scenario.Load(*scenF)
			if err != nil {
				return err
			}
			cfg.Scenario = sc
			// The scenario carries per-phase loads; report its peak as the
			// configured offered load.
			cfg.Load = sc.MaxLoad()
		}
		if cfg.Routing, err = routing.ParseKind(*routingF); err != nil {
			return err
		}
		if cfg.Sensing, err = routing.ParseSensing(*sensing); err != nil {
			return err
		}
		if cfg.Scheme, err = buildScheme(*policy, *minCred, *vcs, *reqVCs, *repVCs, *selFn, *reactive); err != nil {
			return err
		}
		if cfg.BufferOrg, err = buffer.ParseOrganization(*bufOrg); err != nil {
			return err
		}
		if cfg.BufferOrg == buffer.DAMQ {
			cfg.DAMQPrivateFraction = *damqPriv
		}
	}
	if *tableMB != 0 {
		cfg.RouteTableBytes = *tableMB << 20
	}
	if *speedup > 0 {
		cfg.Speedup = *speedup
	}
	cfg.Shards = *shards
	if *metricsOut != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	if *workers > 0 {
		sim.SetWorkerBudget(*workers)
	}
	fmt.Println("configuration:", cfg.Describe())
	agg, runs, err := sim.RunAveraged(cfg, *seeds)
	if err != nil {
		return err
	}
	if *verbose {
		for i, r := range runs {
			fmt.Printf("  run %d: %v\n", i, r)
		}
	}
	fmt.Printf("result: %v\n", agg)
	fmt.Printf("  accepted load : %.4f phits/node/cycle\n", agg.AcceptedLoad)
	fmt.Printf("  avg latency   : %.1f cycles (network-only %.1f)\n", agg.AvgLatency, agg.AvgNetLatency)
	fmt.Printf("  p50/p95/p99   : %.1f / %.1f / %.1f cycles (histogram, ≤%.2f%% rel. error)\n",
		agg.P50, agg.P95, agg.P99, 100*stats.PercentileErrorBound)
	fmt.Printf("  avg hops      : %.2f, minimally routed %.1f%%\n", agg.AvgHops, 100*agg.MinimalFraction)
	if agg.Deadlock {
		fmt.Println("  WARNING: the deadlock watchdog aborted at least one replication")
	}
	if agg.Series != nil {
		fmt.Print(sweep.RenderTransientText([]sweep.Series{{
			Label:  "aggregate of " + fmt.Sprint(*seeds) + " seed(s)",
			Points: []sweep.Point{{Load: cfg.Load, Result: agg}},
		}}))
	}
	if *out != "" {
		if err := results.WriteSinglePoint(*out, cfg, effScale, agg, runs); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		fmt.Printf("  wrote %s\n", *out)
	}
	if *metricsOut != "" {
		if err := obs.WriteSnapshotFile(cfg.Metrics, *metricsOut); err != nil {
			return fmt.Errorf("writing %s: %w", *metricsOut, err)
		}
		fmt.Printf("  wrote metrics snapshot %s\n", *metricsOut)
	}
	return nil
}

func buildConfig(scale string) (config.Config, error) {
	return config.AtScale(scale)
}

// campaignConfig builds the configuration of one variant of a campaign spec:
// the scale's base config, the section's scenario, and the variant's layered
// settings — exactly what a `figures run -campaign` sweep would simulate for
// that variant, which makes flexvcsim the single-point debugging tool for
// campaigns. It returns the effective scale name alongside the config.
func campaignConfig(arg, sectionTitle, variantLabel, scale string, haveLoad bool, load float64) (config.Config, string, error) {
	fail := func(err error) (config.Config, string, error) { return config.Config{}, "", err }
	c, err := campaign.Resolve(arg)
	if err != nil {
		return fail(err)
	}
	sections, err := c.Compile()
	if err != nil {
		return fail(err)
	}
	sec := &sections[0]
	if sectionTitle != "" {
		sec = nil
		titles := make([]string, len(sections))
		for i := range sections {
			titles[i] = sections[i].Title
			if sections[i].Title == sectionTitle {
				sec = &sections[i]
			}
		}
		if sec == nil {
			return fail(fmt.Errorf("campaign %s has no section %q (sections: %s)", c.Name, sectionTitle, strings.Join(titles, " | ")))
		}
	}
	var v *sweep.Variant
	labels := make([]string, len(sec.Variants))
	for i := range sec.Variants {
		labels[i] = sec.Variants[i].Label
		if labels[i] == variantLabel {
			v = &sec.Variants[i]
		}
	}
	if v == nil {
		return fail(fmt.Errorf("campaign %s section %q: pick a variant with -variant (variants: %s)", c.Name, sec.Title, strings.Join(labels, " | ")))
	}
	if scale == "" {
		scale = c.Scale
	}
	cfg, err := config.AtScale(scale)
	if err != nil {
		return fail(err)
	}
	cfg.Scenario = sec.Scenario
	v.Apply(&cfg)
	switch {
	case haveLoad:
		cfg.Load = load
	case sec.Scenario != nil:
		cfg.Load = sec.Scenario.MaxLoad()
	default:
		cfg.Load = sec.Loads[0]
	}
	if scale == "" {
		scale = "small"
	}
	return cfg, scale, nil
}

func buildScheme(policy string, minCred bool, vcs, reqVCs, repVCs, selFn string, reactive bool) (core.Scheme, error) {
	var s core.Scheme
	var err error
	if s.Policy, err = core.ParsePolicy(policy); err != nil {
		return s, err
	}
	s.MinCred = minCred
	if s.Selection, err = core.ParseSelectionFn(selFn); err != nil {
		return s, err
	}

	if reactive {
		if reqVCs == "" || repVCs == "" {
			// Default to mirroring the single-class spec per subpath.
			reqVCs, repVCs = vcs, vcs
		}
		req, err := core.ParseSubpathVCs(reqVCs)
		if err != nil {
			return s, err
		}
		rep, err := core.ParseSubpathVCs(repVCs)
		if err != nil {
			return s, err
		}
		s.VCs = core.VCConfig{Request: req, Reply: rep}
		return s, nil
	}
	req, err := core.ParseSubpathVCs(vcs)
	if err != nil {
		return s, err
	}
	s.VCs = core.VCConfig{Request: req}
	return s, nil
}
