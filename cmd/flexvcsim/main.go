// Command flexvcsim runs a single cycle-accurate simulation of a low-diameter
// network with a chosen buffer-management scheme (baseline fixed-order VCs,
// FlexVC or FlexVC-minCred), routing algorithm and traffic pattern, and
// prints the measured latency and throughput.
//
// Examples:
//
//	flexvcsim -scale small -traffic un -routing min -policy flexvc -vcs 4/2 -load 0.7
//	flexvcsim -scale small -traffic adv -routing pb -policy flexvc -mincred \
//	          -reqvcs 4/2 -repvcs 2/1 -reactive -load 0.3 -seeds 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/results"
	"flexvc/internal/routing"
	"flexvc/internal/scenario"
	"flexvc/internal/sim"
	"flexvc/internal/stats"
	"flexvc/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flexvcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flexvcsim", flag.ContinueOnError)
	var (
		scale    = fs.String("scale", "small", "system scale: small, medium or paper")
		traffic  = fs.String("traffic", "un", "traffic pattern: un, adv or bursty-un")
		reactive = fs.Bool("reactive", false, "enable request-reply traffic")
		routingF = fs.String("routing", "min", "routing: min, val, par or pb")
		sensing  = fs.String("sensing", "per-vc", "PB congestion sensing: per-port or per-vc")
		policy   = fs.String("policy", "baseline", "VC management: baseline or flexvc")
		minCred  = fs.Bool("mincred", false, "enable FlexVC-minCred credit accounting")
		vcs      = fs.String("vcs", "2/1", "VCs as local/global (single-class traffic)")
		reqVCs   = fs.String("reqvcs", "", "request VCs as local/global (reactive traffic)")
		repVCs   = fs.String("repvcs", "", "reply VCs as local/global (reactive traffic)")
		selFn    = fs.String("select", "jsq", "FlexVC VC selection: jsq, highest, lowest or random")
		bufOrg   = fs.String("buffers", "static", "buffer organisation: static or damq")
		damqPriv = fs.Float64("damq-private", 0.75, "DAMQ private fraction per VC")
		load     = fs.Float64("load", 0.5, "offered load in phits/node/cycle")
		scenF    = fs.String("scenario", "", "JSON scenario file: a phased workload that overrides -traffic/-load and reports windowed transient telemetry")
		seeds    = fs.Int("seeds", 1, "number of independent replications to average")
		speedup  = fs.Int("speedup", 0, "router speedup override (0 keeps the scale default)")
		seed     = fs.Int64("seed", 1, "base random seed")
		workers  = fs.Int("workers", 0, "concurrent replication workers (0 = GOMAXPROCS)")
		tableMB  = fs.Int("route-table-mb", 0, "memory budget for precomputed route tables in MiB (0 = default, negative disables)")
		out      = fs.String("out", "", "write the result as machine-readable JSON (internal/results schema) to this file")
		verbose  = fs.Bool("v", false, "print per-replication results")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := buildConfig(*scale)
	if err != nil {
		return err
	}
	cfg.Traffic = config.TrafficKind(normalizeTraffic(*traffic))
	cfg.Reactive = *reactive
	cfg.Load = *load
	cfg.Seed = *seed
	if *scenF != "" {
		sc, err := scenario.Load(*scenF)
		if err != nil {
			return err
		}
		cfg.Scenario = sc
		// The scenario carries per-phase loads; report its peak as the
		// configured offered load.
		cfg.Load = sc.MaxLoad()
	}
	if *tableMB != 0 {
		cfg.RouteTableBytes = *tableMB << 20
	}
	if *speedup > 0 {
		cfg.Speedup = *speedup
	}

	if cfg.Routing, err = routing.ParseKind(*routingF); err != nil {
		return err
	}
	if cfg.Sensing, err = routing.ParseSensing(*sensing); err != nil {
		return err
	}
	if cfg.Scheme, err = buildScheme(*policy, *minCred, *vcs, *reqVCs, *repVCs, *selFn, *reactive); err != nil {
		return err
	}
	switch *bufOrg {
	case "static":
		cfg.BufferOrg = buffer.Static
	case "damq":
		cfg.BufferOrg = buffer.DAMQ
		cfg.DAMQPrivateFraction = *damqPriv
	default:
		return fmt.Errorf("unknown buffer organisation %q", *bufOrg)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	if *workers > 0 {
		sim.SetWorkerBudget(*workers)
	}
	fmt.Println("configuration:", cfg.Describe())
	agg, runs, err := sim.RunAveraged(cfg, *seeds)
	if err != nil {
		return err
	}
	if *verbose {
		for i, r := range runs {
			fmt.Printf("  run %d: %v\n", i, r)
		}
	}
	fmt.Printf("result: %v\n", agg)
	fmt.Printf("  accepted load : %.4f phits/node/cycle\n", agg.AcceptedLoad)
	fmt.Printf("  avg latency   : %.1f cycles (network-only %.1f)\n", agg.AvgLatency, agg.AvgNetLatency)
	fmt.Printf("  p50/p95/p99   : %.1f / %.1f / %.1f cycles (histogram, ≤%.2f%% rel. error)\n",
		agg.P50, agg.P95, agg.P99, 100*stats.PercentileErrorBound)
	fmt.Printf("  avg hops      : %.2f, minimally routed %.1f%%\n", agg.AvgHops, 100*agg.MinimalFraction)
	if agg.Deadlock {
		fmt.Println("  WARNING: the deadlock watchdog aborted at least one replication")
	}
	if agg.Series != nil {
		fmt.Print(sweep.RenderTransientText([]sweep.Series{{
			Label:  "aggregate of " + fmt.Sprint(*seeds) + " seed(s)",
			Points: []sweep.Point{{Load: cfg.Load, Result: agg}},
		}}))
	}
	if *out != "" {
		if err := results.WriteSinglePoint(*out, cfg, *scale, agg, runs); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		fmt.Printf("  wrote %s\n", *out)
	}
	return nil
}

func buildConfig(scale string) (config.Config, error) {
	switch scale {
	case "small":
		return config.Small(), nil
	case "medium":
		return config.Medium(), nil
	case "paper", "full":
		return config.Paper(), nil
	case "tiny":
		return config.Tiny(), nil
	default:
		return config.Config{}, fmt.Errorf("unknown scale %q", scale)
	}
}

func normalizeTraffic(t string) string {
	switch t {
	case "un", "uniform":
		return string(config.TrafficUniform)
	case "adv", "adversarial":
		return string(config.TrafficAdversarial)
	case "bursty", "bursty-un", "bursty-uniform":
		return string(config.TrafficBursty)
	case "bitrev", "bit-reverse":
		return string(config.TrafficBitReverse)
	case "hotspot", "group-hotspot":
		return string(config.TrafficGroupHotspot)
	default:
		return t
	}
}

// parseVCs parses "local/global" into a SubpathVCs.
func parseVCs(s string) (core.SubpathVCs, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return core.SubpathVCs{}, fmt.Errorf("VC spec %q must be local/global, e.g. 4/2", s)
	}
	l, err := strconv.Atoi(parts[0])
	if err != nil {
		return core.SubpathVCs{}, err
	}
	g, err := strconv.Atoi(parts[1])
	if err != nil {
		return core.SubpathVCs{}, err
	}
	return core.SubpathVCs{Local: l, Global: g}, nil
}

func buildScheme(policy string, minCred bool, vcs, reqVCs, repVCs, selFn string, reactive bool) (core.Scheme, error) {
	var s core.Scheme
	switch policy {
	case "baseline", "base":
		s.Policy = core.Baseline
	case "flexvc", "flex":
		s.Policy = core.FlexVC
	default:
		return s, fmt.Errorf("unknown policy %q", policy)
	}
	s.MinCred = minCred
	fn, err := core.ParseSelectionFn(selFn)
	if err != nil {
		return s, err
	}
	s.Selection = fn

	if reactive {
		if reqVCs == "" || repVCs == "" {
			// Default to mirroring the single-class spec per subpath.
			reqVCs, repVCs = vcs, vcs
		}
		req, err := parseVCs(reqVCs)
		if err != nil {
			return s, err
		}
		rep, err := parseVCs(repVCs)
		if err != nil {
			return s, err
		}
		s.VCs = core.VCConfig{Request: req, Reply: rep}
		return s, nil
	}
	req, err := parseVCs(vcs)
	if err != nil {
		return s, err
	}
	s.VCs = core.VCConfig{Request: req}
	return s, nil
}
