package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// This file is the permutation/hotspot destination library feeding the
// scenario engine: the classic bit-permutation patterns (transpose,
// bit-reverse, perfect shuffle) and a group hotspot. Unlike UN/ADV these
// patterns concentrate load on specific source-destination pairs or regions,
// which is what makes adaptive routing earn (or lose) its keep when a phased
// scenario switches onto them.

// DefaultHotspotFraction is the fraction of group-hotspot traffic aimed at
// the hot group when Params.HotspotFraction is left zero.
const DefaultHotspotFraction = 0.25

// permBits returns the width in bits of the permutation domain for n nodes:
// the largest b with 2^b <= n. Bit permutations are only defined on
// power-of-two domains; nodes with indices >= 2^b (at most half of them) fall
// back to uniform destinations so every node still offers load.
func permBits(n int) uint {
	return uint(bits.Len64(uint64(n))) - 1
}

// permDestination lifts a bit permutation over b-bit indices into a
// destinationFn. Sources outside the 2^b domain draw uniform destinations;
// fixed points of the permutation step to the next node in the domain so no
// packet is addressed to its own source.
func permDestination(topo topology.Topology, perm func(i uint64, b uint) uint64) destinationFn {
	b := permBits(topo.NumNodes())
	size := uint64(1) << b
	uni := uniformDestination(topo)
	return func(rng *rand.Rand, src packet.NodeID) packet.NodeID {
		if uint64(src) >= size {
			return uni(rng, src)
		}
		d := perm(uint64(src), b) & (size - 1)
		if d == uint64(src) {
			d = (d + 1) % size
		}
		return packet.NodeID(d)
	}
}

// transposePerm rotates the b-bit index by b/2: the matrix-transpose
// permutation (node (i,j) of a 2^(b/2) x 2^(b/2) grid sends to node (j,i);
// for odd b the rotation uses floor(b/2)).
func transposePerm(i uint64, b uint) uint64 {
	h := b / 2
	return i>>h | i<<(b-h)
}

// bitReversePerm reverses the b-bit index.
func bitReversePerm(i uint64, b uint) uint64 {
	return bits.Reverse64(i) >> (64 - b)
}

// shufflePerm rotates the b-bit index left by one: the perfect-shuffle
// permutation.
func shufflePerm(i uint64, b uint) uint64 {
	return i<<1 | i>>(b-1)
}

// groupHotspotDestination sends a configurable fraction of the traffic to a
// uniformly drawn node of one hot group; the rest is uniform over the whole
// network. On flat topologies (a single group) the nodes of one router form
// the hot set, mirroring the adversarial degeneration.
func groupHotspotDestination(topo topology.Topology, fraction float64, hotGroup int) (destinationFn, error) {
	if fraction == 0 {
		fraction = DefaultHotspotFraction
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: group-hotspot fraction %.3f outside [0,1]", fraction)
	}
	n := topo.NumNodes()
	groups := topo.NumGroups()
	hotBase, hotCount := 0, 0
	if groups > 1 {
		if hotGroup < 0 || hotGroup >= groups {
			return nil, fmt.Errorf("traffic: group-hotspot group %d outside [0,%d)", hotGroup, groups)
		}
		hotCount = n / groups
		hotBase = hotGroup * hotCount
	} else {
		// Flat diameter-2 network: the "group" is a router.
		if hotGroup < 0 || hotGroup >= topo.NumRouters() {
			return nil, fmt.Errorf("traffic: group-hotspot router %d outside [0,%d)", hotGroup, topo.NumRouters())
		}
		hotCount = topo.NodesPerRouter()
		hotBase = int(topo.NodeAt(packet.RouterID(hotGroup), 0))
	}
	uni := uniformDestination(topo)
	return func(rng *rand.Rand, src packet.NodeID) packet.NodeID {
		if rng.Float64() >= fraction {
			return uni(rng, src)
		}
		d := packet.NodeID(hotBase + rng.Intn(hotCount))
		if d == src {
			// The source sits in the hot set; fall back to uniform so the
			// packet is never self-addressed.
			return uni(rng, src)
		}
		return d
	}, nil
}
