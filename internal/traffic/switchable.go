package traffic

import (
	"fmt"
	"math"
	"strings"

	"flexvc/internal/packet"
)

// PhaseSpec describes one phase of a Switchable generator: a base pattern at
// a fixed load for a fixed number of cycles. Zero-valued optional parameters
// (AvgBurstLength, HotspotFraction) inherit the Switchable's Params.
type PhaseSpec struct {
	// Pattern is the traffic pattern name (see CanonicalPattern).
	Pattern string
	// Load is the phase's offered load in phits/node/cycle (the load at the
	// phase's first cycle when LoadEnd is set).
	Load float64
	// LoadEnd, when non-nil, linearly ramps the offered load from Load at
	// the phase's first cycle to LoadEnd at its last (see Params.LoadAt).
	LoadEnd *float64
	// Cycles is the phase duration.
	Cycles int64
	// AvgBurstLength overrides Params.AvgBurstLength for this phase (0
	// inherits; bursty phases only).
	AvgBurstLength float64
	// HotspotFraction overrides Params.HotspotFraction for this phase (0
	// inherits; group-hotspot phases only).
	HotspotFraction float64
	// HotspotGroup is the hot group of a group-hotspot phase.
	HotspotGroup int
}

// Switchable composes a sequence of base generators into one phased workload:
// phase boundaries are cycle counts, and at each boundary generation switches
// to the next phase's pattern and load. Every phase owns independent per-node
// PRNG streams derived deterministically from (seed, phase index), so the
// packet stream of a scenario is reproducible and the stream of phase k does
// not depend on how earlier phases consumed randomness.
//
// Switchable is an open-loop source; wrap it with NewReactive for
// request-reply scenarios. After the last phase ends the last generator keeps
// running (scenario-driven simulations stop at the scenario's total length,
// so this only matters to callers that run longer on purpose).
type Switchable struct {
	phases []switchPhase
	store  *packet.Store
	cur    int
	ids    idAllocator
}

type switchPhase struct {
	spec  PhaseSpec
	until int64 // first cycle NOT in this phase
	gen   Generator
}

// phaseSeed derives the PRNG seed of one phase; nodeRNG's splitmix-style
// scrambling decorrelates the resulting per-node streams across phases.
func phaseSeed(base int64, phase int) int64 {
	return base + int64(phase+1)*15485863
}

// NewSwitchable builds a phased generator. Every phase is validated (known
// pattern, load in [0,1], positive duration) and instantiated up front, so a
// bad scenario fails at construction with a per-phase error instead of
// mid-simulation.
func NewSwitchable(params Params, phases []PhaseSpec) (*Switchable, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("traffic: switchable needs at least one phase")
	}
	s := &Switchable{phases: make([]switchPhase, 0, len(phases)), store: params.Store}
	var until int64
	for i, ph := range phases {
		if ph.Cycles <= 0 {
			return nil, fmt.Errorf("traffic: phase %d (%s): cycles must be positive, got %d", i, ph.Pattern, ph.Cycles)
		}
		if ph.Load < 0 || ph.Load > 1 {
			return nil, fmt.Errorf("traffic: phase %d (%s): load %.3f outside [0,1]", i, ph.Pattern, ph.Load)
		}
		if ph.LoadEnd != nil && (math.IsNaN(*ph.LoadEnd) || *ph.LoadEnd < 0 || *ph.LoadEnd > 1) {
			return nil, fmt.Errorf("traffic: phase %d (%s): load_end %.3f outside [0,1]", i, ph.Pattern, *ph.LoadEnd)
		}
		p := params
		p.Load = ph.Load
		if ph.LoadEnd != nil && *ph.LoadEnd != ph.Load {
			end := *ph.LoadEnd
			p.LoadEnd = &end
			p.RampStart = until
			p.RampCycles = ph.Cycles
		}
		p.Seed = phaseSeed(params.Seed, i)
		if ph.AvgBurstLength != 0 {
			p.AvgBurstLength = ph.AvgBurstLength
		}
		if ph.HotspotFraction != 0 {
			p.HotspotFraction = ph.HotspotFraction
		}
		p.HotspotGroup = ph.HotspotGroup
		g, err := New(ph.Pattern, p, false)
		if err != nil {
			return nil, fmt.Errorf("traffic: phase %d: %w", i, err)
		}
		until += ph.Cycles
		s.phases = append(s.phases, switchPhase{spec: ph, until: until, gen: g})
	}
	return s, nil
}

// Name implements Generator.
func (s *Switchable) Name() string {
	names := make([]string, len(s.phases))
	for i, ph := range s.phases {
		names[i] = ph.gen.Name()
	}
	return "phased[" + strings.Join(names, ",") + "]"
}

// Generate implements Generator: it delegates to the phase covering `now`.
// Packet IDs are re-allocated from one shared counter so they stay unique
// across phases.
func (s *Switchable) Generate(now int64, node packet.NodeID) packet.Ref {
	for s.cur+1 < len(s.phases) && now >= s.phases[s.cur].until {
		s.cur++
	}
	ref := s.phases[s.cur].gen.Generate(now, node)
	if ref != packet.NilRef {
		s.store.Hdr(ref).ID = s.ids.alloc()
	}
	return ref
}

// Delivered implements Generator (all base phases are open-loop no-ops).
func (s *Switchable) Delivered(now int64, ref packet.Ref) {
	s.phases[s.cur].gen.Delivered(now, ref)
}

// PendingReplies implements Generator.
func (s *Switchable) PendingReplies(packet.NodeID) packet.Ref { return packet.NilRef }
