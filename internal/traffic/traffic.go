// Package traffic implements the synthetic traffic patterns of the FlexVC
// evaluation: uniform random (UN), adversarial (ADV, destination in the next
// group) and bursty uniform (BURSTY-UN, a two-state Markov ON/OFF source),
// plus the reactive request-reply variants in which destinations answer every
// request with a reply to its source.
//
// Generators are deterministic given their seed: every node owns an
// independent PRNG stream so results are reproducible and independent of the
// iteration order of the simulator.
package traffic

import (
	"fmt"
	"math/rand"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// Generator produces the packets a node offers to the network. Packets live
// in the Params.Store arena; generators hand out Refs, never pointers.
type Generator interface {
	// Name identifies the pattern.
	Name() string
	// Generate is called once per node per cycle and returns a freshly
	// allocated packet or NilRef. The returned packet has its endpoints,
	// size, class and generation time filled in.
	Generate(now int64, node packet.NodeID) packet.Ref
	// Delivered notifies the generator that a packet reached its
	// destination (reactive patterns respond by scheduling a reply).
	Delivered(now int64, ref packet.Ref)
	// PendingReplies returns packets the destination nodes owe to the
	// network for the given node (reply traffic); the simulator drains this
	// queue with priority over new requests. It returns NilRef when empty.
	PendingReplies(node packet.NodeID) packet.Ref
}

// Params collects what every generator needs.
type Params struct {
	// Topo is the simulated topology (destination selection needs group
	// structure for adversarial traffic).
	Topo topology.Topology
	// Load is the offered load in phits/node/cycle (the load at cycle
	// RampStart when LoadEnd is set).
	Load float64
	// LoadEnd, when non-nil, linearly ramps the offered load from Load at
	// cycle RampStart to *LoadEnd at cycle RampStart+RampCycles; generation
	// before and after the ramp window uses the nearest endpoint. Scenario
	// load-ramp phases (internal/scenario) set these three fields.
	LoadEnd *float64
	// RampStart is the first cycle of the load ramp (LoadEnd != nil only).
	RampStart int64
	// RampCycles is the ramp duration in cycles (LoadEnd != nil only).
	RampCycles int64
	// PacketSize is the packet size in phits.
	PacketSize int
	// Seed seeds the per-node PRNG streams.
	Seed int64
	// AvgBurstLength is the mean burst length in packets (BURSTY-UN only).
	// It must be >= 1; New rejects smaller values instead of clamping.
	AvgBurstLength float64
	// HotspotFraction is the fraction of group-hotspot traffic aimed at the
	// hot group (0 selects DefaultHotspotFraction).
	HotspotFraction float64
	// HotspotGroup is the group concentrated on by group-hotspot traffic (a
	// router index on flat topologies).
	HotspotGroup int
	// Store is the packet arena new packets are allocated from. The network
	// owns it; freed slots recycle so steady-state generation allocates
	// nothing per packet.
	Store *packet.Store
}

// packetRate returns the per-cycle packet generation probability that yields
// the requested load.
func (p Params) packetRate() float64 {
	if p.PacketSize <= 0 {
		return 0
	}
	r := p.Load / float64(p.PacketSize)
	if r > 1 {
		r = 1
	}
	return r
}

// Ramped reports whether the params describe a load ramp.
func (p Params) Ramped() bool { return p.LoadEnd != nil && p.RampCycles > 0 }

// LoadAt returns the offered load at the given cycle: Load when the params
// are not ramped, otherwise the linear interpolation between Load and LoadEnd
// across the ramp window, clamped to the endpoints outside it.
func (p Params) LoadAt(now int64) float64 {
	if !p.Ramped() {
		return p.Load
	}
	frac := float64(now-p.RampStart) / float64(p.RampCycles)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return p.Load + (*p.LoadEnd-p.Load)*frac
}

// rateAt returns the per-cycle packet generation probability at the given
// cycle, honouring a load ramp.
func (p Params) rateAt(now int64) float64 {
	q := p
	q.Load = p.LoadAt(now)
	return q.packetRate()
}

// nodeRNG builds a deterministic PRNG for one node.
func nodeRNG(seed int64, node packet.NodeID) *rand.Rand {
	// SplitMix-style seed scrambling keeps neighbouring node streams
	// decorrelated.
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(node)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return rand.New(rand.NewSource(int64(z)))
}

// idAllocator hands out unique packet IDs.
type idAllocator struct{ next uint64 }

func (a *idAllocator) alloc() uint64 {
	a.next++
	return a.next
}

// destinationFn picks the destination for a new packet from a node.
type destinationFn func(rng *rand.Rand, src packet.NodeID) packet.NodeID

// uniformDestination draws any node except the source.
func uniformDestination(topo topology.Topology) destinationFn {
	n := topo.NumNodes()
	return func(rng *rand.Rand, src packet.NodeID) packet.NodeID {
		d := packet.NodeID(rng.Intn(n - 1))
		if d >= src {
			d++
		}
		return d
	}
}

// adversarialDestination draws a random node of the following group (ADV+1).
// On flat topologies (a single group) it degenerates to a fixed offset
// pattern that similarly concentrates load.
func adversarialDestination(topo topology.Topology) destinationFn {
	n := topo.NumNodes()
	groups := topo.NumGroups()
	if groups <= 1 {
		// Flat diameter-2 network: send to the "next router" so all traffic
		// from a router shares one link, the analogous worst case.
		perRouter := topo.NodesPerRouter()
		return func(rng *rand.Rand, src packet.NodeID) packet.NodeID {
			srcRouter := topo.RouterOfNode(src)
			dstRouter := (int(srcRouter) + 1) % topo.NumRouters()
			return topo.NodeAt(packet.RouterID(dstRouter), rng.Intn(perRouter))
		}
	}
	nodesPerGroup := n / groups
	return func(rng *rand.Rand, src packet.NodeID) packet.NodeID {
		srcGroup := topo.GroupOf(topo.RouterOfNode(src))
		dstGroup := (srcGroup + 1) % groups
		return packet.NodeID(dstGroup*nodesPerGroup + rng.Intn(nodesPerGroup))
	}
}

// fillEndpoints completes the router fields of a freshly allocated packet.
func fillEndpoints(topo topology.Topology, h *packet.Header) {
	h.SrcRouter = topo.RouterOfNode(h.Src)
	h.DstRouter = topo.RouterOfNode(h.Dst)
}

// Kind names the implemented patterns.
const (
	NameUniform      = "uniform"
	NameAdversarial  = "adversarial"
	NameBursty       = "bursty-uniform"
	NameTranspose    = "transpose"
	NameBitReverse   = "bit-reverse"
	NameShuffle      = "shuffle"
	NameGroupHotspot = "group-hotspot"
)

// CanonicalPattern resolves a pattern name or alias to its canonical name.
// It lets spec layers (internal/scenario, internal/config) validate pattern
// names without instantiating a generator.
func CanonicalPattern(pattern string) (string, bool) {
	switch pattern {
	case NameUniform, "un":
		return NameUniform, true
	case NameAdversarial, "adv":
		return NameAdversarial, true
	case NameBursty, "bursty-un", "bursty":
		return NameBursty, true
	case NameTranspose:
		return NameTranspose, true
	case NameBitReverse, "bitrev":
		return NameBitReverse, true
	case NameShuffle:
		return NameShuffle, true
	case NameGroupHotspot, "hotspot":
		return NameGroupHotspot, true
	default:
		return "", false
	}
}

// New builds the generator named by pattern (see CanonicalPattern for the
// accepted names and aliases), optionally wrapped for reactive request-reply
// traffic. Invalid parameters are rejected with an error, never clamped.
func New(pattern string, params Params, reactive bool) (Generator, error) {
	name, ok := CanonicalPattern(pattern)
	if !ok {
		return nil, fmt.Errorf("traffic: unknown pattern %q", pattern)
	}
	var g Generator
	switch name {
	case NameUniform:
		g = NewBernoulli(NameUniform, params, uniformDestination(params.Topo))
	case NameAdversarial:
		g = NewBernoulli(NameAdversarial, params, adversarialDestination(params.Topo))
	case NameBursty:
		b, err := NewBursty(params)
		if err != nil {
			return nil, err
		}
		g = b
	case NameTranspose:
		g = NewBernoulli(NameTranspose, params, permDestination(params.Topo, transposePerm))
	case NameBitReverse:
		g = NewBernoulli(NameBitReverse, params, permDestination(params.Topo, bitReversePerm))
	case NameShuffle:
		g = NewBernoulli(NameShuffle, params, permDestination(params.Topo, shufflePerm))
	case NameGroupHotspot:
		dest, err := groupHotspotDestination(params.Topo, params.HotspotFraction, params.HotspotGroup)
		if err != nil {
			return nil, err
		}
		g = NewBernoulli(NameGroupHotspot, params, dest)
	}
	if reactive {
		g = NewReactive(g, params)
	}
	return g, nil
}
