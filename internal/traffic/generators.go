package traffic

import (
	"fmt"
	"math/rand"

	"flexvc/internal/packet"
)

// Bernoulli is a memoryless source: every cycle each node generates a packet
// with probability load/packetSize, with the destination drawn by the
// configured destination function. It implements the UN and ADV patterns.
type Bernoulli struct {
	name   string
	params Params
	dest   destinationFn
	rate   float64
	ramp   rampCache

	rngs []*rand.Rand
	ids  idAllocator
}

// rampCache memoizes a ramped phase's per-cycle generation parameter: the
// value depends only on the cycle, while Generate runs once per node per
// cycle, so recomputing the interpolation per call would put float divisions
// on the hot path for nothing. Generators are per-replication (never shared
// across goroutines), so the cache needs no synchronisation.
type rampCache struct {
	now int64
	val float64
	ok  bool
}

// NewBernoulli builds a Bernoulli source with the given destination function.
func NewBernoulli(name string, params Params, dest destinationFn) *Bernoulli {
	g := &Bernoulli{name: name, params: params, dest: dest, rate: params.packetRate()}
	g.rngs = make([]*rand.Rand, params.Topo.NumNodes())
	for i := range g.rngs {
		g.rngs[i] = nodeRNG(params.Seed, packet.NodeID(i))
	}
	return g
}

// Name implements Generator.
func (g *Bernoulli) Name() string { return g.name }

// Generate implements Generator.
func (g *Bernoulli) Generate(now int64, node packet.NodeID) packet.Ref {
	rng := g.rngs[node]
	rate := g.rate
	if g.params.Ramped() {
		if !g.ramp.ok || g.ramp.now != now {
			g.ramp.val, g.ramp.now, g.ramp.ok = g.params.rateAt(now), now, true
		}
		rate = g.ramp.val
	}
	if rng.Float64() >= rate {
		return packet.NilRef
	}
	dst := g.dest(rng, node)
	ref := g.params.Store.Alloc(g.ids.alloc(), node, dst, g.params.PacketSize, packet.Request, now)
	fillEndpoints(g.params.Topo, g.params.Store.Hdr(ref))
	return ref
}

// Delivered implements Generator (no reaction for open-loop patterns).
func (g *Bernoulli) Delivered(int64, packet.Ref) {}

// PendingReplies implements Generator.
func (g *Bernoulli) PendingReplies(packet.NodeID) packet.Ref { return packet.NilRef }

// Bursty is the BURSTY-UN pattern: a two-state Markov ON/OFF process per node
// (Adas '97), found representative of data-centre traffic (Benson et al.).
// While ON, the node generates back-to-back packets (one packet every
// PacketSize cycles, i.e. one phit per cycle) toward a destination fixed for
// the duration of the burst; while OFF it stays silent. Transition
// probabilities are derived from the requested average load and burst length.
type Bursty struct {
	params Params
	dest   destinationFn

	// pOffToOn is the per-cycle probability of starting a burst; pEnd is
	// the per-packet probability of ending it (1/avgBurstLength).
	pOffToOn float64
	pEnd     float64
	ramp     rampCache

	rngs  []*rand.Rand
	state []burstState
	ids   idAllocator
}

type burstState struct {
	on        bool
	dst       packet.NodeID
	nextStart int64 // next cycle a packet may start (paces 1 phit/cycle)
}

// NewBursty builds a BURSTY-UN generator. AvgBurstLength must be at least
// one packet: a shorter "burst" is not expressible by the ON/OFF chain, so it
// is rejected instead of being silently clamped (config.Validate surfaces the
// same error before a simulation is assembled).
func NewBursty(params Params) (*Bursty, error) {
	burst := params.AvgBurstLength
	if burst < 1 {
		return nil, fmt.Errorf("traffic: bursty-uniform needs AvgBurstLength >= 1 packet, got %g", burst)
	}
	g := &Bursty{params: params, dest: uniformDestination(params.Topo)}
	g.pEnd = 1 / burst
	g.pOffToOn = burstyOffToOn(params.Load, burst, params.PacketSize)
	g.rngs = make([]*rand.Rand, params.Topo.NumNodes())
	g.state = make([]burstState, params.Topo.NumNodes())
	for i := range g.rngs {
		g.rngs[i] = nodeRNG(params.Seed, packet.NodeID(i))
	}
	return g, nil
}

// burstyOffToOn derives the per-cycle OFF->ON probability that makes the
// two-state chain spend a `load` fraction of time ON. The ON state emits 1
// phit/cycle, so the fraction of time spent ON must equal the load; mean ON
// duration is burst*packetSize cycles, and the chain is solved for the
// OFF->ON probability.
func burstyOffToOn(load, burst float64, packetSize int) float64 {
	if load >= 1 {
		load = 0.999999
	}
	meanOn := burst * float64(packetSize)
	meanOff := meanOn * (1 - load) / load
	if meanOff < 1 {
		meanOff = 1
	}
	p := 1 / meanOff
	if load <= 0 {
		p = 0
	}
	return p
}

// Name implements Generator.
func (g *Bursty) Name() string { return NameBursty }

// Generate implements Generator.
func (g *Bursty) Generate(now int64, node packet.NodeID) packet.Ref {
	rng := g.rngs[node]
	st := &g.state[node]
	if !st.on {
		pOn := g.pOffToOn
		if g.params.Ramped() {
			// Load ramps modulate how often bursts start; burst shape
			// (length, 1 phit/cycle pacing) is load-independent.
			if !g.ramp.ok || g.ramp.now != now {
				g.ramp.val = burstyOffToOn(g.params.LoadAt(now), g.params.AvgBurstLength, g.params.PacketSize)
				g.ramp.now, g.ramp.ok = now, true
			}
			pOn = g.ramp.val
		}
		if rng.Float64() >= pOn {
			return packet.NilRef
		}
		st.on = true
		st.dst = g.dest(rng, node)
		st.nextStart = now
	}
	if now < st.nextStart {
		return packet.NilRef
	}
	ref := g.params.Store.Alloc(g.ids.alloc(), node, st.dst, g.params.PacketSize, packet.Request, now)
	fillEndpoints(g.params.Topo, g.params.Store.Hdr(ref))
	st.nextStart = now + int64(g.params.PacketSize)
	if rng.Float64() < g.pEnd {
		st.on = false
	}
	return ref
}

// Delivered implements Generator.
func (g *Bursty) Delivered(int64, packet.Ref) {}

// PendingReplies implements Generator.
func (g *Bursty) PendingReplies(packet.NodeID) packet.Ref { return packet.NilRef }

// Reactive wraps a base pattern with request-reply semantics: requests are
// generated by the base pattern, and every delivered request causes its
// destination node to enqueue a reply of the same size back to the source.
// Replies take priority over new requests at the node (the simulator drains
// PendingReplies first), which models the consumption assumption: nodes
// always sink requests and the replies they owe are buffered at the NIC.
type Reactive struct {
	base    Generator
	params  Params
	pending [][]packet.Ref
	ids     idAllocator
}

// NewReactive wraps a generator with request-reply semantics.
func NewReactive(base Generator, params Params) *Reactive {
	return &Reactive{
		base:    base,
		params:  params,
		pending: make([][]packet.Ref, params.Topo.NumNodes()),
	}
}

// Name implements Generator.
func (g *Reactive) Name() string { return g.base.Name() + "+reply" }

// Generate implements Generator: new requests come from the base pattern.
func (g *Reactive) Generate(now int64, node packet.NodeID) packet.Ref {
	return g.base.Generate(now, node)
}

// Delivered implements Generator: a delivered request queues a reply at the
// destination node; delivered replies close the transaction.
func (g *Reactive) Delivered(now int64, ref packet.Ref) {
	g.base.Delivered(now, ref)
	store := g.params.Store
	// Copy the request's endpoints before allocating: Alloc may grow the
	// arrays and invalidate the header pointer.
	h := *store.Hdr(ref)
	if h.Class != packet.Request {
		return
	}
	reply := store.Alloc(g.ids.alloc()|replyIDBit, h.Dst, h.Src, int(h.Size), packet.Reply, now)
	store.SetReplyTo(reply, ref)
	fillEndpoints(g.params.Topo, store.Hdr(reply))
	g.pending[h.Dst] = append(g.pending[h.Dst], reply)
}

// replyIDBit keeps reply IDs disjoint from request IDs.
const replyIDBit = uint64(1) << 63

// PendingReplies implements Generator: it pops one owed reply for the node.
func (g *Reactive) PendingReplies(node packet.NodeID) packet.Ref {
	q := g.pending[node]
	if len(q) == 0 {
		return packet.NilRef
	}
	p := q[0]
	g.pending[node] = q[1:]
	return p
}

// PendingReplyCount returns the number of replies node still owes, used by
// tests and the deadlock watchdog.
func (g *Reactive) PendingReplyCount(node packet.NodeID) int { return len(g.pending[node]) }
