package traffic

import (
	"math"
	"testing"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

func testTopo(t *testing.T) topology.Topology {
	t.Helper()
	d, err := topology.NewDragonfly(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func params(t *testing.T, load float64) Params {
	return Params{Topo: testTopo(t), Load: load, PacketSize: 8, Seed: 3, AvgBurstLength: 5, Store: packet.NewStore()}
}

// TestUniformLoadAndDestinations checks the offered load accuracy and the
// destination distribution of the UN pattern.
func TestUniformLoadAndDestinations(t *testing.T) {
	p := params(t, 0.5)
	g, err := New("uniform", p, false)
	if err != nil {
		t.Fatal(err)
	}
	cycles := int64(20000)
	counts := make([]int, p.Topo.NumNodes())
	generated := 0
	for now := int64(0); now < cycles; now++ {
		for n := 0; n < p.Topo.NumNodes(); n++ {
			pkt := g.Generate(now, packet.NodeID(n))
			if pkt == packet.NilRef {
				continue
			}
			generated++
			h := p.Store.Hdr(pkt)
			if h.Dst == h.Src {
				t.Fatal("uniform traffic must not pick the source as destination")
			}
			if h.Class != packet.Request || h.Size != 8 || p.Store.Times(pkt).Gen != now {
				t.Fatal("malformed packet")
			}
			if h.SrcRouter != p.Topo.RouterOfNode(h.Src) || h.DstRouter != p.Topo.RouterOfNode(h.Dst) {
				t.Fatal("router endpoints not filled")
			}
			counts[h.Dst]++
		}
	}
	offered := float64(generated) * 8 / float64(cycles) / float64(p.Topo.NumNodes())
	if math.Abs(offered-0.5) > 0.02 {
		t.Errorf("offered load %.3f, want about 0.5", offered)
	}
	// Destination distribution should be roughly uniform.
	mean := float64(generated) / float64(len(counts))
	for n, c := range counts {
		if float64(c) < 0.5*mean || float64(c) > 1.5*mean {
			t.Errorf("node %d received %d packets, mean is %.0f", n, c, mean)
		}
	}
}

// TestAdversarialDestinations checks that ADV sends every packet to the next
// group.
func TestAdversarialDestinations(t *testing.T) {
	p := params(t, 0.3)
	df := p.Topo.(*topology.Dragonfly)
	g, err := New("adv", p, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for now := int64(0); now < 2000; now++ {
		for n := 0; n < p.Topo.NumNodes(); n++ {
			pkt := g.Generate(now, packet.NodeID(n))
			if pkt == packet.NilRef {
				continue
			}
			seen++
			h := p.Store.Hdr(pkt)
			srcGroup := df.GroupOf(h.SrcRouter)
			dstGroup := df.GroupOf(h.DstRouter)
			if dstGroup != (srcGroup+1)%df.NumGroups() {
				t.Fatalf("packet from group %d went to group %d, want %d", srcGroup, dstGroup, (srcGroup+1)%df.NumGroups())
			}
		}
	}
	if seen == 0 {
		t.Fatal("no adversarial packets generated")
	}
}

// TestBurstyLoadAndBurstLength checks the BURSTY-UN model: offered load close
// to the target and mean burst length close to the configured value, with the
// destination held constant within a burst.
func TestBurstyLoadAndBurstLength(t *testing.T) {
	p := params(t, 0.4)
	g, err := NewBursty(p)
	if err != nil {
		t.Fatal(err)
	}
	cycles := int64(60000)
	generated := 0
	// Track burst statistics for node 0.
	var bursts []int
	cur := 0
	var lastDst packet.NodeID = -1
	lastGen := int64(-100)
	for now := int64(0); now < cycles; now++ {
		for n := 0; n < p.Topo.NumNodes(); n++ {
			pkt := g.Generate(now, packet.NodeID(n))
			if pkt == packet.NilRef {
				continue
			}
			generated++
			if n != 0 {
				continue
			}
			pktDst := p.Store.Hdr(pkt).Dst
			if now-lastGen > int64(p.PacketSize) {
				// A gap larger than the back-to-back spacing means a new burst.
				if cur > 0 {
					bursts = append(bursts, cur)
				}
				cur = 0
				lastDst = -1
			}
			if lastDst >= 0 && pktDst != lastDst {
				if cur > 0 {
					bursts = append(bursts, cur)
				}
				cur = 0
			}
			lastDst = pktDst
			lastGen = now
			cur++
		}
	}
	offered := float64(generated) * 8 / float64(cycles) / float64(p.Topo.NumNodes())
	if math.Abs(offered-0.4) > 0.05 {
		t.Errorf("bursty offered load %.3f, want about 0.4", offered)
	}
	if len(bursts) < 20 {
		t.Fatalf("too few bursts observed: %d", len(bursts))
	}
	sum := 0
	for _, b := range bursts {
		sum += b
	}
	meanBurst := float64(sum) / float64(len(bursts))
	if meanBurst < 3 || meanBurst > 8 {
		t.Errorf("mean burst length %.1f packets, want about 5", meanBurst)
	}
}

// TestReactiveReplies checks that delivered requests produce exactly one
// reply back to the source, drained with priority.
func TestReactiveReplies(t *testing.T) {
	p := params(t, 0.2)
	g, err := New("uniform", p, true)
	if err != nil {
		t.Fatal(err)
	}
	req := p.Store.Alloc(7, 3, 11, 8, packet.Request, 0)
	fillEndpoints(p.Topo, p.Store.Hdr(req))
	g.Delivered(100, req)

	if g.PendingReplies(packet.NodeID(3)) != packet.NilRef {
		t.Fatal("the reply is owed by the request's destination, not its source")
	}
	reply := g.PendingReplies(packet.NodeID(11))
	if reply == packet.NilRef {
		t.Fatal("destination owes a reply")
	}
	h := p.Store.Hdr(reply)
	if h.Class != packet.Reply || h.Src != 11 || h.Dst != 3 || h.Size != 8 {
		t.Fatalf("malformed reply: %v", p.Store.Describe(reply))
	}
	if p.Store.ReplyTo(reply) != req {
		t.Fatal("reply should reference its request")
	}
	if g.PendingReplies(packet.NodeID(11)) != packet.NilRef {
		t.Fatal("only one reply per request")
	}
	// Delivered replies do not generate further traffic.
	g.Delivered(200, reply)
	if g.PendingReplies(packet.NodeID(3)) != packet.NilRef {
		t.Fatal("replies must not trigger replies")
	}
}

// TestGeneratorDeterminism checks that two generators with the same seed
// produce identical traffic.
func TestGeneratorDeterminism(t *testing.T) {
	p := params(t, 0.6)
	for _, name := range []string{"uniform", "adversarial", "bursty-uniform"} {
		a, _ := New(name, p, false)
		b, _ := New(name, p, false)
		for now := int64(0); now < 500; now++ {
			for n := 0; n < p.Topo.NumNodes(); n++ {
				pa := a.Generate(now, packet.NodeID(n))
				pb := b.Generate(now, packet.NodeID(n))
				if (pa == packet.NilRef) != (pb == packet.NilRef) {
					t.Fatalf("%s: generation mismatch at cycle %d node %d", name, now, n)
				}
				if pa != packet.NilRef && p.Store.Hdr(pa).Dst != p.Store.Hdr(pb).Dst {
					t.Fatalf("%s: destination mismatch at cycle %d node %d", name, now, n)
				}
			}
		}
	}
}

func TestUnknownPattern(t *testing.T) {
	if _, err := New("nope", params(t, 0.1), false); err == nil {
		t.Error("expected an error for an unknown pattern")
	}
}

// TestZeroLoad checks that a zero-load generator stays silent.
func TestZeroLoad(t *testing.T) {
	p := params(t, 0)
	for _, name := range []string{"uniform", "bursty-uniform"} {
		g, _ := New(name, p, false)
		for now := int64(0); now < 1000; now++ {
			for n := 0; n < p.Topo.NumNodes(); n++ {
				if g.Generate(now, packet.NodeID(n)) != packet.NilRef {
					t.Fatalf("%s generated traffic at zero load", name)
				}
			}
		}
	}
}
