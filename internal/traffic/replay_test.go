package traffic

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// streamBytes drives a generator for the given number of cycles and encodes
// every generated packet as fixed-width binary (cycle, node, src, dst, size,
// class), so two streams can be compared byte for byte.
func streamBytes(t *testing.T, st *packet.Store, g Generator, nodes int, cycles int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	for now := int64(0); now < cycles; now++ {
		for n := 0; n < nodes; n++ {
			p := g.Generate(now, packet.NodeID(n))
			if p == packet.NilRef {
				continue
			}
			h := st.Hdr(p)
			for _, v := range []int64{now, int64(n), int64(h.Src), int64(h.Dst), int64(h.Size), int64(h.Class)} {
				if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return buf.Bytes()
}

// TestBurstyReplayByteIdentical locks the determinism contract of the bursty
// generator down to the byte level: same seed, same packet stream.
func TestBurstyReplayByteIdentical(t *testing.T) {
	p := params(t, 0.35)
	nodes := p.Topo.NumNodes()
	build := func() Generator {
		g, err := NewBursty(p)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a := streamBytes(t, p.Store, build(), nodes, 5000)
	b := streamBytes(t, p.Store, build(), nodes, 5000)
	if len(a) == 0 {
		t.Fatal("bursty generator produced no packets")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two bursty generators with the same seed produced different packet streams")
	}
	q := p
	q.Seed++
	c := streamBytes(t, q.Store, mustBursty(t, q), nodes, 5000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical bursty packet streams")
	}
}

func mustBursty(t *testing.T, p Params) *Bursty {
	t.Helper()
	g, err := NewBursty(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBurstyRejectsShortBursts(t *testing.T) {
	p := params(t, 0.4)
	p.AvgBurstLength = 0.5
	if _, err := NewBursty(p); err == nil || !strings.Contains(err.Error(), "AvgBurstLength") {
		t.Fatalf("NewBursty accepted AvgBurstLength 0.5 (err=%v), want a clear error", err)
	}
	if _, err := New("bursty-un", p, false); err == nil {
		t.Fatal("New accepted a bursty pattern with AvgBurstLength < 1")
	}
}

// testPhases is a three-phase scenario exercising a pattern switch, a load
// switch and a permutation phase.
func testPhases() []PhaseSpec {
	return []PhaseSpec{
		{Pattern: "uniform", Load: 0.4, Cycles: 600},
		{Pattern: "adversarial", Load: 0.2, Cycles: 400},
		{Pattern: "transpose", Load: 0.6, Cycles: 500},
	}
}

// TestSwitchableReplayByteIdentical is the Switchable counterpart of the
// bursty replay test: same seed, byte-identical phased packet stream.
func TestSwitchableReplayByteIdentical(t *testing.T) {
	p := params(t, 0)
	nodes := p.Topo.NumNodes()
	build := func(seed int64) Generator {
		q := p
		q.Seed = seed
		g, err := NewSwitchable(q, testPhases())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a := streamBytes(t, p.Store, build(3), nodes, 1500)
	b := streamBytes(t, p.Store, build(3), nodes, 1500)
	if len(a) == 0 {
		t.Fatal("switchable generator produced no packets")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two switchable generators with the same seed produced different packet streams")
	}
	if c := streamBytes(t, p.Store, build(4), nodes, 1500); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical phased packet streams")
	}
}

// rampPhases is a scenario with a linear load ramp in the middle phase.
func rampPhases() []PhaseSpec {
	end := 0.8
	return []PhaseSpec{
		{Pattern: "uniform", Load: 0.1, Cycles: 500},
		{Pattern: "uniform", Load: 0.1, LoadEnd: &end, Cycles: 1000},
		{Pattern: "uniform", Load: 0.8, Cycles: 500},
	}
}

// TestRampReplayByteIdentical locks the load-ramp determinism contract down
// to the byte level: same seed, byte-identical ramped packet stream.
func TestRampReplayByteIdentical(t *testing.T) {
	p := params(t, 0)
	nodes := p.Topo.NumNodes()
	build := func(seed int64) Generator {
		q := p
		q.Seed = seed
		g, err := NewSwitchable(q, rampPhases())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a := streamBytes(t, p.Store, build(7), nodes, 2000)
	b := streamBytes(t, p.Store, build(7), nodes, 2000)
	if len(a) == 0 {
		t.Fatal("ramped generator produced no packets")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two ramped generators with the same seed produced different packet streams")
	}
	if c := streamBytes(t, p.Store, build(8), nodes, 2000); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical ramped packet streams")
	}
}

// TestRampInterpolatesLoad checks that a ramped phase actually modulates the
// generation rate: the first half of the ramp must produce markedly fewer
// packets than the second, and the endpoints must agree with constant-load
// phases at the endpoint loads.
func TestRampInterpolatesLoad(t *testing.T) {
	p := params(t, 0)
	nodes := p.Topo.NumNodes()
	g, err := NewSwitchable(p, rampPhases())
	if err != nil {
		t.Fatal(err)
	}
	count := func(g Generator, from, to int64) int {
		c := 0
		for now := from; now < to; now++ {
			for n := 0; n < nodes; n++ {
				if g.Generate(now, packet.NodeID(n)) != packet.NilRef {
					c++
				}
			}
		}
		return c
	}
	_ = count(g, 0, 500) // drain the pre-ramp phase
	firstHalf := count(g, 500, 1000)
	secondHalf := count(g, 1000, 1500)
	if firstHalf == 0 || secondHalf == 0 {
		t.Fatalf("ramp halves generated %d and %d packets, want both positive", firstHalf, secondHalf)
	}
	// Mean load is 0.275 over the first half and 0.625 over the second
	// (ratio ≈ 2.3); demand at least 1.5x to stay far from noise.
	if float64(secondHalf) < 1.5*float64(firstHalf) {
		t.Errorf("ramp second half generated %d packets vs %d in the first, want a clear increase", secondHalf, firstHalf)
	}
}

// TestBurstyRampModulatesBurstStarts checks the ramped bursty chain: ramping
// the load up makes bursts start more often.
func TestBurstyRampModulatesBurstStarts(t *testing.T) {
	p := params(t, 0)
	p.AvgBurstLength = 3
	nodes := p.Topo.NumNodes()
	end := 0.9
	g, err := NewSwitchable(p, []PhaseSpec{
		{Pattern: "bursty-un", Load: 0.05, LoadEnd: &end, Cycles: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	first, second := 0, 0
	for now := int64(0); now < 4000; now++ {
		for n := 0; n < nodes; n++ {
			if g.Generate(now, packet.NodeID(n)) != packet.NilRef {
				if now < 2000 {
					first++
				} else {
					second++
				}
			}
		}
	}
	if first == 0 || second == 0 {
		t.Fatalf("bursty ramp halves generated %d and %d packets, want both positive", first, second)
	}
	if float64(second) < 1.5*float64(first) {
		t.Errorf("bursty ramp second half generated %d packets vs %d in the first, want a clear increase", second, first)
	}
}

func TestSwitchableRejectsBadRamp(t *testing.T) {
	p := params(t, 0)
	for _, bad := range []float64{-0.1, 1.5, math.NaN()} {
		bad := bad
		phases := []PhaseSpec{{Pattern: "uniform", Load: 0.5, LoadEnd: &bad, Cycles: 10}}
		if _, err := NewSwitchable(p, phases); err == nil || !strings.Contains(err.Error(), "load_end") {
			t.Errorf("load_end %v: err=%v, want a load_end error", bad, err)
		}
	}
}

// TestSwitchablePhaseBoundaries checks that the active pattern changes
// exactly at the configured cycle boundaries and that packet IDs stay unique
// across phases.
func TestSwitchablePhaseBoundaries(t *testing.T) {
	p := params(t, 0)
	df := p.Topo.(*topology.Dragonfly)
	g, err := NewSwitchable(p, testPhases())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	perPhase := [3]int{}
	for now := int64(0); now < 1500; now++ {
		phase := 0
		switch {
		case now >= 1000:
			phase = 2
		case now >= 600:
			phase = 1
		}
		for n := 0; n < p.Topo.NumNodes(); n++ {
			pkt := g.Generate(now, packet.NodeID(n))
			if pkt == packet.NilRef {
				continue
			}
			h := p.Store.Hdr(pkt)
			if seen[h.ID] {
				t.Fatalf("duplicate packet ID %d across phases", h.ID)
			}
			seen[h.ID] = true
			perPhase[phase]++
			if phase == 1 {
				src, dst := df.GroupOf(h.SrcRouter), df.GroupOf(h.DstRouter)
				if dst != (src+1)%df.NumGroups() {
					t.Fatalf("cycle %d: adversarial phase sent group %d -> %d", now, src, dst)
				}
			}
		}
	}
	for i, c := range perPhase {
		if c == 0 {
			t.Fatalf("phase %d generated no packets", i)
		}
	}
}

func TestSwitchableRejectsBadPhases(t *testing.T) {
	p := params(t, 0)
	cases := []struct {
		name   string
		phases []PhaseSpec
		want   string
	}{
		{"empty", nil, "at least one phase"},
		{"zero cycles", []PhaseSpec{{Pattern: "uniform", Load: 0.5}}, "cycles"},
		{"bad load", []PhaseSpec{{Pattern: "uniform", Load: 1.5, Cycles: 10}}, "load"},
		{"unknown pattern", []PhaseSpec{{Pattern: "nope", Load: 0.5, Cycles: 10}}, "unknown pattern"},
		{"bad burst", []PhaseSpec{{Pattern: "bursty-un", Load: 0.5, Cycles: 10, AvgBurstLength: 0.2}}, "AvgBurstLength"},
	}
	for _, tc := range cases {
		if _, err := NewSwitchable(p, tc.phases); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want it to mention %q", tc.name, err, tc.want)
		}
	}
}

// TestPermutationDestinations checks the structural properties of the
// permutation library: deterministic destinations forming a near-permutation
// on the power-of-two domain, never self-addressed, out-of-domain sources
// falling back to uniform.
func TestPermutationDestinations(t *testing.T) {
	p := params(t, 0.9)
	n := p.Topo.NumNodes()
	size := 1 << permBits(n) // 64 of the 72 nodes
	for _, name := range []string{"transpose", "bit-reverse", "shuffle"} {
		g, err := New(name, p, false)
		if err != nil {
			t.Fatal(err)
		}
		dst := make(map[packet.NodeID]packet.NodeID)
		for now := int64(0); now < 200; now++ {
			for node := 0; node < n; node++ {
				pkt := g.Generate(now, packet.NodeID(node))
				if pkt == packet.NilRef {
					continue
				}
				h := p.Store.Hdr(pkt)
				if h.Dst == h.Src {
					t.Fatalf("%s: self-addressed packet from node %d", name, node)
				}
				if prev, ok := dst[h.Src]; ok && int(h.Src) < size && prev != h.Dst {
					t.Fatalf("%s: in-domain node %d sent to both %d and %d", name, h.Src, prev, h.Dst)
				}
				dst[h.Src] = h.Dst
			}
		}
		// In-domain destinations must be nearly a permutation: fixed-point
		// remapping can merge a handful of targets, but the bulk must be
		// distinct (a broken permutation collapses onto few destinations).
		targets := map[packet.NodeID]bool{}
		inDomain := 0
		for src, d := range dst {
			if int(src) < size {
				inDomain++
				targets[d] = true
			}
		}
		if inDomain < size/2 {
			t.Fatalf("%s: only %d in-domain sources generated (load 0.9, 200 cycles)", name, inDomain)
		}
		if len(targets) < inDomain*3/4 {
			t.Errorf("%s: %d in-domain sources map onto only %d destinations", name, inDomain, len(targets))
		}
	}
}

// TestBitPermutations pins the three bit permutations on small known cases.
func TestBitPermutations(t *testing.T) {
	if got := transposePerm(0b000011, 6); got != 0b011000 {
		t.Errorf("transpose(000011) = %06b, want 011000", got)
	}
	if got := bitReversePerm(0b000011, 6) & 63; got != 0b110000 {
		t.Errorf("bitrev(000011) = %06b, want 110000", got)
	}
	if got := shufflePerm(0b100001, 6) & 63; got != 0b000011 {
		t.Errorf("shuffle(100001) = %06b, want 000011", got)
	}
}

// TestGroupHotspotConcentration checks that the configured fraction of
// traffic lands in the hot group and the rest stays roughly uniform.
func TestGroupHotspotConcentration(t *testing.T) {
	p := params(t, 0.8)
	p.HotspotFraction = 0.5
	p.HotspotGroup = 2
	df := p.Topo.(*topology.Dragonfly)
	g, err := New("group-hotspot", p, false)
	if err != nil {
		t.Fatal(err)
	}
	perGroup := make([]int, df.NumGroups())
	total := 0
	for now := int64(0); now < 4000; now++ {
		for n := 0; n < p.Topo.NumNodes(); n++ {
			pkt := g.Generate(now, packet.NodeID(n))
			if pkt == packet.NilRef {
				continue
			}
			h := p.Store.Hdr(pkt)
			if h.Dst == h.Src {
				t.Fatal("group-hotspot generated a self-addressed packet")
			}
			perGroup[df.GroupOf(h.DstRouter)]++
			total++
		}
	}
	hot := float64(perGroup[2]) / float64(total)
	// 50% targeted + ~1/9 of the uniform half ≈ 0.556.
	if hot < 0.45 || hot < 2*float64(perGroup[0])/float64(total) {
		t.Errorf("hot group received %.1f%% of traffic (per-group counts %v)", 100*hot, perGroup)
	}
}

func TestGroupHotspotRejectsBadParams(t *testing.T) {
	p := params(t, 0.5)
	p.HotspotFraction = 1.5
	if _, err := New("group-hotspot", p, false); err == nil {
		t.Error("accepted hotspot fraction > 1")
	}
	p.HotspotFraction = 0.5
	p.HotspotGroup = 99
	if _, err := New("group-hotspot", p, false); err == nil {
		t.Error("accepted out-of-range hotspot group")
	}
}

func TestCanonicalPattern(t *testing.T) {
	for alias, want := range map[string]string{
		"un": NameUniform, "adv": NameAdversarial, "bursty": NameBursty,
		"bitrev": NameBitReverse, "hotspot": NameGroupHotspot,
		"transpose": NameTranspose, "shuffle": NameShuffle,
	} {
		got, ok := CanonicalPattern(alias)
		if !ok || got != want {
			t.Errorf("CanonicalPattern(%q) = %q,%v want %q", alias, got, ok, want)
		}
	}
	if _, ok := CanonicalPattern("nope"); ok {
		t.Error("CanonicalPattern accepted an unknown name")
	}
}
