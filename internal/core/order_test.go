package core

import (
	"math/rand"
	"testing"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// TestInterleaveCoversEveryVC checks that the canonical ordering assigns a
// distinct rank to every VC of every kind, for a wide range of shapes
// (including more globals than locals and single-kind configurations).
func TestInterleaveCoversEveryVC(t *testing.T) {
	for vl := 0; vl <= 8; vl++ {
		for vg := 0; vg <= 6; vg++ {
			seq := interleave(vl, vg)
			if len(seq) != vl+vg {
				t.Fatalf("interleave(%d,%d) has %d slots, want %d", vl, vg, len(seq), vl+vg)
			}
			locals, globals := 0, 0
			for _, k := range seq {
				if k == topology.Global {
					globals++
				} else {
					locals++
				}
			}
			if locals != vl || globals != vg {
				t.Fatalf("interleave(%d,%d) placed %d locals and %d globals", vl, vg, locals, globals)
			}
			if vg > 0 && vl > 0 && seq[len(seq)-1] != topology.Local {
				t.Errorf("interleave(%d,%d) should end with a local slot (the final hop of a reference path): %v", vl, vg, seq)
			}
		}
	}
}

// TestInterleaveMinimalBlocksEmbed checks that when the local count is twice
// the global count (the Valiant-capable shapes), the ordering embeds the
// concatenation of that many minimal l-g-l blocks — the property the VAL and
// request+reply reference paths rely on.
func TestInterleaveMinimalBlocksEmbed(t *testing.T) {
	// Sequences are capped at MaxPathLen hops, so test up to two blocks
	// (the Valiant case); larger VC sets are covered by the monotonicity
	// property below.
	for vg := 1; vg <= 2; vg++ {
		cfg := SingleClass(2*vg, vg)
		o := buildOrderTable(cfg, packet.Request)
		var seq topology.PathSeq
		for b := 0; b < vg; b++ {
			seq = seq.Concat(topology.SeqOf(topology.Local, topology.Global, topology.Local))
		}
		hi, ok := o.highestFeasible(seq)
		if !ok || hi != 0 {
			t.Errorf("%d minimal blocks should embed into %s starting at l0, got (%d,%v)", vg, cfg, hi, ok)
		}
	}
}

// TestHighestFeasibleMonotoneInVCs is a property test: adding VCs never makes
// a previously feasible sequence infeasible, and never lowers the highest
// feasible index.
func TestHighestFeasibleMonotoneInVCs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kinds := []topology.PortKind{topology.Local, topology.Global}
	for trial := 0; trial < 2000; trial++ {
		vl := 1 + rng.Intn(5)
		vg := 1 + rng.Intn(3)
		var seq topology.PathSeq
		for i, n := 0, 1+rng.Intn(6); i < n; i++ {
			seq.Push(kinds[rng.Intn(2)])
		}
		small := buildOrderTable(SingleClass(vl, vg), packet.Request)
		big := buildOrderTable(SingleClass(vl+1, vg+1), packet.Request)
		hiS, okS := small.highestFeasible(seq)
		hiB, okB := big.highestFeasible(seq)
		if okS && !okB {
			t.Fatalf("seq %v feasible with %d/%d but not with %d/%d", seq, vl, vg, vl+1, vg+1)
		}
		if okS && okB && hiB < hiS {
			t.Fatalf("seq %v: highest feasible dropped from %d to %d when adding VCs", seq, hiS, hiB)
		}
	}
}

// TestRankHelpers covers lowestIndexAtOrAboveRank and highestBelow edge cases.
func TestRankHelpers(t *testing.T) {
	o := buildOrderTable(SingleClass(2, 1), packet.Request) // order: l0 g0 l1
	if o.rank(topology.Local, 0) != 0 || o.rank(topology.Global, 0) != 1 || o.rank(topology.Local, 1) != 2 {
		t.Fatalf("unexpected ranks: %+v", o)
	}
	if got := o.lowestIndexAtOrAboveRank(topology.Local, 1); got != 1 {
		t.Errorf("lowest local at rank>=1 should be l1, got %d", got)
	}
	if got := o.lowestIndexAtOrAboveRank(topology.Global, 2); got != 1 {
		t.Errorf("no global at rank>=2: expected the count (1), got %d", got)
	}
	if got := o.highestBelow(topology.Local, 2); got != 0 {
		t.Errorf("highest local below rank 2 should be l0, got %d", got)
	}
	if got := o.highestBelow(topology.Global, 1); got != -1 {
		t.Errorf("no global below rank 1: expected -1, got %d", got)
	}
	if _, ok := o.highestFeasible(topology.PathSeq{}); ok {
		t.Error("empty sequences are not feasible routes")
	}
}

// TestReplyOrderingFollowsRequests checks that every reply-subsequence VC
// ranks after every request-subsequence VC of the same kind.
func TestReplyOrderingFollowsRequests(t *testing.T) {
	cfg := TwoClass(3, 2, 2, 1)
	o := buildOrderTable(cfg, packet.Reply)
	maxReqLocal := o.rank(topology.Local, cfg.Request.Local-1)
	for i := cfg.Request.Local; i < cfg.TotalOf(topology.Local); i++ {
		if o.rank(topology.Local, i) <= maxReqLocal {
			t.Errorf("reply local VC %d ranks before the request subsequence", i)
		}
	}
	maxReqGlobal := o.rank(topology.Global, cfg.Request.Global-1)
	for i := cfg.Request.Global; i < cfg.TotalOf(topology.Global); i++ {
		if o.rank(topology.Global, i) <= maxReqGlobal {
			t.Errorf("reply global VC %d ranks before the request subsequence", i)
		}
	}
}
