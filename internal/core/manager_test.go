package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// TestBaselinePositionalAssignment checks the fixed-order VC of the baseline
// policy for the canonical Dragonfly cases (the l0-g1-l2 notation).
func TestBaselinePositionalAssignment(t *testing.T) {
	L, G := topology.Local, topology.Global
	mgr := NewManager(Scheme{Policy: Baseline, VCs: SingleClass(4, 2), Selection: JSQ})
	cases := []struct {
		name string
		ctx  HopContext
		want int
	}{
		{"source-group local hop", HopContext{Class: packet.Request, Kind: L, RefPosition: topology.HopCount{Local: 0}}, 0},
		{"destination-group local hop", HopContext{Class: packet.Request, Kind: L, RefPosition: topology.HopCount{Local: 1}}, 1},
		{"first global hop", HopContext{Class: packet.Request, Kind: G, RefPosition: topology.HopCount{Global: 0}}, 0},
		{"second global hop", HopContext{Class: packet.Request, Kind: G, RefPosition: topology.HopCount{Global: 1}}, 1},
		{"valiant dest-group local hop", HopContext{Class: packet.Request, Kind: L, RefPosition: topology.HopCount{Local: 3}}, 3},
	}
	for _, c := range cases {
		r := mgr.AllowedVCs(c.ctx)
		if r.Empty() || r.Lo != r.Hi || r.Lo != c.want {
			t.Errorf("%s: got range [%d,%d], want exactly VC %d", c.name, r.Lo, r.Hi, c.want)
		}
	}
	// Positions beyond the configured VCs are forbidden.
	r := mgr.AllowedVCs(HopContext{Class: packet.Request, Kind: L, RefPosition: topology.HopCount{Local: 4}})
	if !r.Empty() {
		t.Error("position beyond the VC count must be forbidden")
	}
}

// TestBaselineReplyOffset checks that reply packets are confined to the reply
// subsequence under the baseline policy.
func TestBaselineReplyOffset(t *testing.T) {
	mgr := NewManager(Scheme{Policy: Baseline, VCs: TwoClass(2, 1, 2, 1), Selection: JSQ})
	r := mgr.AllowedVCs(HopContext{Class: packet.Reply, Kind: topology.Local, RefPosition: topology.HopCount{Local: 1}})
	if r.Lo != 3 || r.Hi != 3 {
		t.Errorf("reply dest-group hop should use VC 3 (offset 2 + position 1), got [%d,%d]", r.Lo, r.Hi)
	}
	g := mgr.AllowedVCs(HopContext{Class: packet.Reply, Kind: topology.Global, RefPosition: topology.HopCount{Global: 0}})
	if g.Lo != 1 || g.Hi != 1 {
		t.Errorf("reply global hop should use VC 1, got [%d,%d]", g.Lo, g.Hi)
	}
}

// TestFlexVCRangesDragonflyMIN checks the allowed ranges of FlexVC with the
// minimal 2/1 VC set, including the case that broke the naive per-kind rule
// (a source-group hop of an l-g path must not use the last local VC, because
// the global hop still needs a later slot).
func TestFlexVCRangesDragonflyMIN(t *testing.T) {
	L, G := topology.Local, topology.Global
	mgr := NewManager(Scheme{Policy: FlexVC, VCs: SingleClass(2, 1), Selection: JSQ})

	// Source-group hop of a full l-g-l path.
	r := mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: L, InputKind: topology.Terminal, InputVC: -1,
		PlannedAfter: topology.SeqOf(G, L), EscapeAfter: topology.SeqOf(G, L),
	})
	if r.Lo != 0 || r.Hi != 0 || !r.Safe {
		t.Errorf("l-g-l source hop: got [%d,%d] safe=%v, want exactly VC0 safe", r.Lo, r.Hi, r.Safe)
	}

	// Source-group hop of an l-g path (no destination-group hop): still VC0
	// only, because the global hop needs a slot after the local one.
	r = mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: L, InputKind: topology.Terminal, InputVC: -1,
		PlannedAfter: topology.SeqOf(G), EscapeAfter: topology.SeqOf(G),
	})
	if r.Lo != 0 || r.Hi != 0 {
		t.Errorf("l-g source hop: got [%d,%d], want exactly VC0", r.Lo, r.Hi)
	}

	// Destination-group hop: both local VCs allowed.
	r = mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: L, InputKind: G, InputVC: 0,
		PlannedAfter: topology.PathSeq{}, EscapeAfter: topology.PathSeq{},
	})
	if r.Lo != 0 || r.Hi != 1 || !r.Safe {
		t.Errorf("destination hop: got [%d,%d] safe=%v, want [0,1] safe", r.Lo, r.Hi, r.Safe)
	}

	// Global hop: single global VC.
	r = mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: G, InputKind: L, InputVC: 0,
		PlannedAfter: topology.SeqOf(L), EscapeAfter: topology.SeqOf(L),
	})
	if r.Lo != 0 || r.Hi != 0 {
		t.Errorf("global hop: got [%d,%d], want exactly VC0", r.Lo, r.Hi)
	}
}

// TestFlexVCExploitsExtraVCs checks that FlexVC lets minimal traffic use the
// VCs provisioned for Valiant routing (4/2), which the baseline cannot.
func TestFlexVCExploitsExtraVCs(t *testing.T) {
	L, G := topology.Local, topology.Global
	mgr := NewManager(Scheme{Policy: FlexVC, VCs: SingleClass(4, 2), Selection: JSQ})

	src := mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: L, InputKind: topology.Terminal, InputVC: -1,
		PlannedAfter: topology.SeqOf(G, L), EscapeAfter: topology.SeqOf(G, L),
	})
	if src.Lo != 0 || src.Hi != 2 {
		t.Errorf("MIN source hop over 4/2: got [%d,%d], want [0,2]", src.Lo, src.Hi)
	}
	glob := mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: G, InputKind: L, InputVC: 0,
		PlannedAfter: topology.SeqOf(L), EscapeAfter: topology.SeqOf(L),
	})
	if glob.Lo != 0 || glob.Hi != 1 {
		t.Errorf("MIN global hop over 4/2: got [%d,%d], want [0,1]", glob.Lo, glob.Hi)
	}
	dst := mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: L, InputKind: G, InputVC: 1,
		PlannedAfter: topology.PathSeq{}, EscapeAfter: topology.PathSeq{},
	})
	if dst.Lo != 0 || dst.Hi != 3 {
		t.Errorf("MIN destination hop over 4/2: got [%d,%d], want [0,3]", dst.Lo, dst.Hi)
	}
}

// TestFlexVCOpportunisticValiant checks the 3/2 configuration of Section
// III-C: Valiant paths are not safe but every hop remains feasible
// opportunistically.
func TestFlexVCOpportunisticValiant(t *testing.T) {
	L, G := topology.Local, topology.Global
	mgr := NewManager(Scheme{Policy: FlexVC, VCs: SingleClass(3, 2), Selection: JSQ})

	// First hop of a Valiant path (planned l-g-l-l-g-l does not fit) with a
	// minimal escape of l-g-l: allowed, not safe.
	r := mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: L, InputKind: topology.Terminal, InputVC: -1,
		PlannedAfter: topology.SeqOf(G, L, L, G, L), EscapeAfter: topology.SeqOf(G, L),
	})
	if r.Empty() || r.Safe {
		t.Errorf("first Valiant hop over 3/2 should be opportunistic and feasible, got %+v", r)
	}
	// A packet already sitting in the last local VC cannot take a hop that
	// still needs a global slot afterwards.
	r = mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: L, InputKind: L, InputVC: 2,
		PlannedAfter: topology.SeqOf(G, L, L, G, L), EscapeAfter: topology.SeqOf(G, L),
	})
	if !r.Empty() {
		t.Errorf("opportunistic hop from the last local VC with a global escape must be forbidden, got %+v", r)
	}
}

// TestFlexVCRequestReplySharing checks that replies may dip into request VCs
// while requests stay inside their own subsequence.
func TestFlexVCRequestReplySharing(t *testing.T) {
	L, G := topology.Local, topology.Global
	mgr := NewManager(Scheme{Policy: FlexVC, VCs: TwoClass(4, 2, 2, 1), Selection: JSQ})

	// Reply on a minimal destination-group hop: any of the 6 local VCs.
	rep := mgr.AllowedVCs(HopContext{
		Class: packet.Reply, Kind: L, InputKind: G, InputVC: 2,
		PlannedAfter: topology.PathSeq{}, EscapeAfter: topology.PathSeq{},
	})
	if rep.Lo != 0 || rep.Hi != 5 {
		t.Errorf("reply destination hop: got [%d,%d], want [0,5]", rep.Lo, rep.Hi)
	}
	// Reply on a Valiant path (6 hops): does not fit the reply subsequence,
	// fits the concatenated sequence opportunistically.
	repVal := mgr.AllowedVCs(HopContext{
		Class: packet.Reply, Kind: L, InputKind: topology.Terminal, InputVC: -1,
		PlannedAfter: topology.SeqOf(G, L, L, G, L), EscapeAfter: topology.SeqOf(G, L),
	})
	if repVal.Empty() {
		t.Error("reply Valiant hop over 4/2+2/1 should be feasible via request VCs")
	}
	// Request on the same hop must stay within the request subsequence
	// (4 local VCs): safe because 4/2 holds a Valiant path.
	req := mgr.AllowedVCs(HopContext{
		Class: packet.Request, Kind: L, InputKind: topology.Terminal, InputVC: -1,
		PlannedAfter: topology.SeqOf(G, L, L, G, L), EscapeAfter: topology.SeqOf(G, L),
	})
	if req.Empty() || req.Hi > 3 {
		t.Errorf("request Valiant hop must stay in request VCs, got [%d,%d]", req.Lo, req.Hi)
	}
}

// TestAllowedVCsNeverExceedClassTop is a property test: for random contexts,
// the returned range stays within the class-visible VC indices and Lo <= Hi
// whenever non-empty.
func TestAllowedVCsNeverExceedClassTop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfgs := []VCConfig{
		SingleClass(2, 1), SingleClass(3, 2), SingleClass(4, 2), SingleClass(8, 4),
		TwoClass(2, 1, 2, 1), TwoClass(4, 2, 2, 1), TwoClass(3, 2, 3, 2),
	}
	kinds := []topology.PortKind{topology.Local, topology.Global}
	randSeq := func() topology.PathSeq {
		var s topology.PathSeq
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			s.Push(kinds[rng.Intn(2)])
		}
		return s
	}
	f := func() bool {
		cfg := cfgs[rng.Intn(len(cfgs))]
		policy := Policy(rng.Intn(2))
		class := packet.Class(rng.Intn(2))
		if !cfg.HasReply() {
			class = packet.Request
		}
		mgr := NewManager(Scheme{Policy: policy, VCs: cfg, Selection: JSQ})
		kind := kinds[rng.Intn(2)]
		inKind := kinds[rng.Intn(2)]
		ctx := HopContext{
			Class:        class,
			Kind:         kind,
			InputKind:    inKind,
			InputVC:      rng.Intn(cfg.ClassTop(class, inKind)+1) - 1,
			RefPosition:  topology.HopCount{Local: rng.Intn(6), Global: rng.Intn(3)},
			PlannedAfter: randSeq(),
			EscapeAfter:  randSeq(),
		}
		r := mgr.AllowedVCs(ctx)
		if r.Empty() {
			return true
		}
		top := cfg.ClassTop(class, kind)
		return r.Lo >= 0 && r.Lo <= r.Hi && r.Hi < top
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestVCRangeHelpers covers the small VCRange helpers.
func TestVCRangeHelpers(t *testing.T) {
	r := VCRange{Lo: 1, Hi: 3}
	if r.Empty() || r.Width() != 3 || !r.Contains(2) || r.Contains(0) || r.Contains(4) {
		t.Error("VCRange helpers broken")
	}
	e := VCRange{Lo: 1, Hi: 0}
	if !e.Empty() || e.Width() != 0 || e.Contains(0) {
		t.Error("empty VCRange helpers broken")
	}
}

// TestTerminalHop checks that consumption hops are always allowed.
func TestTerminalHop(t *testing.T) {
	mgr := NewManager(Scheme{Policy: FlexVC, VCs: SingleClass(2, 1), Selection: JSQ})
	r := mgr.AllowedVCs(HopContext{Class: packet.Request, Kind: topology.Terminal})
	if r.Empty() || !r.Safe {
		t.Error("terminal hops must always be allowed")
	}
}
