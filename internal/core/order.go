package core

import (
	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// orderTable is the canonical ordering of the VCs visible to one message
// class: every local and global VC index is assigned a rank such that a route
// is deadlock-free when each of its hops uses a VC of its kind whose rank is
// strictly greater than the rank of the previously used VC.
//
// The ordering follows the paper's reference paths: VCs are laid out as the
// request subsequence followed by the reply subsequence, and within each
// subsequence locals and globals are interleaved to match the longest
// reference path the subsequence can hold (l0-g1-l2 for 2/1, l0-g1-l2-l3-g4-l5
// for 4/2, l0-g1-l2-g3-l4 for 3/2, l0-l1-g2-... for 5/2, and so on); VCs
// beyond the reference are placed at the start, as the paper prescribes for
// additional VCs.
type orderTable struct {
	rankLocal  []int
	rankGlobal []int
}

// rank returns the rank of VC index i of the given kind.
func (o *orderTable) rank(kind topology.PortKind, i int) int {
	if kind == topology.Global {
		return o.rankGlobal[i]
	}
	return o.rankLocal[i]
}

// count returns the number of VCs of the given kind covered by the table.
func (o *orderTable) count(kind topology.PortKind) int {
	if kind == topology.Global {
		return len(o.rankGlobal)
	}
	return len(o.rankLocal)
}

// interleave lays out vl local and vg global VC slots of one subsequence in
// canonical order and returns the sequence of kinds, front to back.
//
// The layout places one local slot after every global slot (the arrival hop
// into a group), up to two local slots between consecutive globals when
// enough locals are available (the two in-group hops of a Valiant path at the
// intermediate group), one local before the first global when possible, and
// any remaining locals at the very front (the paper's "additional VCs are
// inserted at the start of the reference path").
func interleave(vl, vg int) []topology.PortKind {
	if vg == 0 {
		seq := make([]topology.PortKind, vl)
		for i := range seq {
			seq[i] = topology.Local
		}
		return seq
	}
	// gaps[0] is the front gap, gaps[i] (1..vg-1) sit between global i-1 and
	// global i, gaps[vg] is the back gap.
	gaps := make([]int, vg+1)
	remaining := vl
	give := func(idx, n int) {
		if remaining <= 0 || n <= 0 {
			return
		}
		if n > remaining {
			n = remaining
		}
		gaps[idx] += n
		remaining -= n
	}
	// 1. One local after the last global (the final hop of a reference path).
	give(vg, 1)
	// 2. One local in each between-gap, nearest the back first.
	for i := vg - 1; i >= 1 && remaining > 0; i-- {
		give(i, 1)
	}
	// 3. One local before the first global.
	give(0, 1)
	// 4. A second local in each between-gap (Valiant intermediate groups).
	for i := vg - 1; i >= 1 && remaining > 0; i-- {
		give(i, 1)
	}
	// 5. Everything left goes to the front (additional VCs).
	give(0, remaining)

	seq := make([]topology.PortKind, 0, vl+vg)
	for g := 0; g <= vg; g++ {
		for k := 0; k < gaps[g]; k++ {
			seq = append(seq, topology.Local)
		}
		if g < vg {
			seq = append(seq, topology.Global)
		}
	}
	return seq
}

// buildOrderTable computes the canonical ranks of every VC visible to a
// message class under cfg: the request subsequence (always visible) followed
// by, for replies, the reply subsequence.
func buildOrderTable(cfg VCConfig, class packet.Class) orderTable {
	seq := interleave(cfg.Request.Local, cfg.Request.Global)
	if class == packet.Reply {
		seq = append(seq, interleave(cfg.Reply.Local, cfg.Reply.Global)...)
	}
	o := orderTable{
		rankLocal:  make([]int, 0, cfg.ClassTop(class, topology.Local)),
		rankGlobal: make([]int, 0, cfg.ClassTop(class, topology.Global)),
	}
	for rank, kind := range seq {
		if kind == topology.Global {
			o.rankGlobal = append(o.rankGlobal, rank)
		} else {
			o.rankLocal = append(o.rankLocal, rank)
		}
	}
	return o
}

// highestFeasible returns the highest VC index usable by the first hop of seq
// such that the whole sequence (first hop included) can be embedded in the
// canonical order at strictly increasing ranks. It returns (-1, false) when
// no embedding exists. Because ranks increase with the VC index within a
// kind, any lower VC index for the first hop admits the same embedding of the
// remaining hops, so [0, highestFeasible] (intersected with any lower bound)
// is exactly the feasible range.
func (o *orderTable) highestFeasible(seq topology.PathSeq) (int, bool) {
	if seq.Len() == 0 {
		return -1, false
	}
	// Walk the sequence backwards, keeping the highest usable rank for each
	// hop; the first hop's resulting index is the answer.
	limit := int(^uint(0) >> 1) // max int
	idx := -1
	for i := seq.Len() - 1; i >= 0; i-- {
		kind := seq.At(i)
		idx = o.highestBelow(kind, limit)
		if idx < 0 {
			return -1, false
		}
		limit = o.rank(kind, idx)
	}
	return idx, true
}

// highestBelow returns the highest VC index of the given kind whose rank is
// strictly below limit, or -1.
func (o *orderTable) highestBelow(kind topology.PortKind, limit int) int {
	ranks := o.rankLocal
	if kind == topology.Global {
		ranks = o.rankGlobal
	}
	for i := len(ranks) - 1; i >= 0; i-- {
		if ranks[i] < limit {
			return i
		}
	}
	return -1
}

// lowestIndexAtOrAboveRank returns the lowest VC index of the given kind with
// rank >= minRank, or the VC count when none exists.
func (o *orderTable) lowestIndexAtOrAboveRank(kind topology.PortKind, minRank int) int {
	ranks := o.rankLocal
	if kind == topology.Global {
		ranks = o.rankGlobal
	}
	for i := 0; i < len(ranks); i++ {
		if ranks[i] >= minRank {
			return i
		}
	}
	return len(ranks)
}
