package core

import (
	"fmt"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// Scheme bundles everything the forwarding path needs to know about VC
// management: the policy (baseline or FlexVC), the VC arrangement, the VC
// selection function and whether minCred credit accounting is enabled.
type Scheme struct {
	// Policy selects baseline fixed-order assignment or FlexVC.
	Policy Policy
	// VCs is the VC arrangement (request and optional reply subsequences).
	VCs VCConfig
	// Selection is the VC selection function used by FlexVC when several
	// VCs are allowed (ignored by the baseline, which allows exactly one).
	Selection SelectionFn
	// MinCred enables FlexVC-minCred: credits of minimally and
	// non-minimally routed packets are accounted separately so congestion
	// sensing for adaptive routing can look at minimal credits only.
	MinCred bool
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	name := s.Policy.String()
	if s.MinCred {
		name += "-minCred"
	}
	return fmt.Sprintf("%s %s %s", name, s.VCs, s.Selection)
}

// HopContext describes one candidate hop of a packet, as seen by the router
// that is about to forward it. All hop counts are per link kind.
type HopContext struct {
	// Class is the packet's message class.
	Class packet.Class
	// Kind is the link kind of the output port under consideration.
	Kind topology.PortKind
	// InputKind is the link kind of the buffer the packet currently
	// occupies (Terminal when the packet sits in an injection queue).
	InputKind topology.PortKind
	// InputVC is the VC index the packet currently occupies within its
	// input port, or -1 when the packet sits in an injection queue.
	InputVC int
	// RefPosition is the position of this hop in the reference path of the
	// packet's route, per link kind: how many reference slots of each kind
	// precede it (e.g. the destination-group local hop of a Dragonfly
	// minimal path is local position 1 even when the source-group hop was
	// skipped). The baseline fixed-order policy uses it directly as the VC
	// index; it is computed by the routing layer, which knows the path
	// semantics (see routing.BaselinePosition).
	RefPosition topology.HopCount
	// PlannedAfter is the hop-kind sequence remaining on the packet's
	// currently planned route after this hop is taken.
	PlannedAfter topology.PathSeq
	// EscapeAfter is the hop-kind sequence of the shortest (minimal) path
	// from the next router to the packet's destination — the escape path
	// after this hop.
	EscapeAfter topology.PathSeq
}

// VCRange is the result of a VC-management decision for one hop: packets may
// use any VC index in [Lo, Hi] of the downstream input port.
type VCRange struct {
	Lo, Hi int
	// Safe reports whether the hop is a safe hop (the planned route fits
	// entirely in increasing VCs); otherwise the hop is opportunistic and
	// must only be taken when the chosen downstream VC can hold the whole
	// packet, with the minimal path as escape.
	Safe bool
}

// Empty reports whether the range allows no VC at all (the hop is forbidden
// under the current configuration).
func (r VCRange) Empty() bool { return r.Hi < r.Lo }

// Width returns the number of VCs in the range.
func (r VCRange) Width() int {
	if r.Empty() {
		return 0
	}
	return r.Hi - r.Lo + 1
}

// Contains reports whether vc lies inside the range.
func (r VCRange) Contains(vc int) bool { return vc >= r.Lo && vc <= r.Hi && !r.Empty() }

// baselineVC implements the fixed-order positional assignment of
// distance-based deadlock avoidance: the VC index of a hop is its position in
// the reference path of the packet's route (the paper's l0-g1-l2 notation),
// supplied by the routing layer in RefPosition. Shorter paths that skip
// reference hops keep the positions of the hops they do take, which is what
// keeps the fixed order deadlock-free.
func (s Scheme) baselineVC(ctx HopContext) VCRange {
	offset := s.VCs.ClassOffset(ctx.Class, ctx.Kind)
	count := s.VCs.ClassCount(ctx.Class, ctx.Kind)
	idx := ctx.RefPosition.Of(ctx.Kind)
	if idx < 0 || idx >= count {
		// The planned route is longer than the subsequence supports: the
		// hop is forbidden. Routing must not have chosen this path.
		return VCRange{Lo: 1, Hi: 0}
	}
	vc := offset + idx
	return VCRange{Lo: vc, Hi: vc, Safe: true}
}

// escapeOtherKindsFit checks that the escape path's hops of kinds other than
// the current hop's kind fit within their VC sequences.
func escapeOtherKindsFit(cfg VCConfig, class packet.Class, kind topology.PortKind, escape topology.HopCount) bool {
	for _, k := range []topology.PortKind{topology.Local, topology.Global} {
		if k == kind {
			continue
		}
		if escape.Of(k) > cfg.ClassTop(class, k) {
			return false
		}
	}
	return true
}

// BaselineInjectionVC returns the VC a freshly injected packet of the given
// class would use on its first hop of the given kind under the baseline
// policy. It is a convenience for congestion sensing (PB per-VC looks at the
// first VC of each global port).
func (s Scheme) BaselineInjectionVC(class packet.Class, kind topology.PortKind) int {
	return s.VCs.ClassOffset(class, kind)
}
