package core

import (
	"testing"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// TestTableI checks Table I of the paper cell by cell: allowed paths using
// FlexVC in a generic diameter-2 network with 2-5 VCs.
func TestTableI(t *testing.T) {
	want := [][]string{
		{"safe", "safe", "safe", "safe"},    // MIN
		{"X", "opport.", "safe", "safe"},    // VAL
		{"X", "opport.", "opport.", "safe"}, // PAR
	}
	checkTable(t, TableI(), want)
}

// TestTableII checks Table II: request-reply protocol deadlock avoidance in a
// generic diameter-2 network (cells show the request-path classification).
func TestTableII(t *testing.T) {
	want := [][]string{
		{"safe", "safe", "safe", "safe", "safe"},
		{"X", "opport.", "opport.", "safe", "safe"},
		{"X", "opport.", "opport.", "opport.", "safe"},
	}
	checkTable(t, TableII(), want)
}

// TestTableIII checks Table III: a diameter-3 Dragonfly with local/global
// link-type restrictions.
func TestTableIII(t *testing.T) {
	want := [][]string{
		{"safe", "safe", "safe", "safe", "safe", "safe"},
		{"X", "X", "X", "opport.", "safe", "safe"},
		{"X", "X", "X", "opport.", "opport.", "safe"},
	}
	checkTable(t, TableIII(), want)
}

// TestTableIV checks Table IV: the Dragonfly with protocol deadlock
// avoidance; cells show request / reply classifications.
func TestTableIV(t *testing.T) {
	want := [][]string{
		{"safe", "safe", "safe", "safe"},
		{"X / opport.", "opport.", "safe", "safe"},
		{"X / opport.", "opport.", "opport.", "safe"},
	}
	checkTable(t, TableIV(), want)
}

func checkTable(t *testing.T, table Table, want [][]string) {
	t.Helper()
	if len(table.Cells) != len(want) {
		t.Fatalf("%s: %d rows, want %d", table.Title, len(table.Cells), len(want))
	}
	for i, row := range want {
		if len(table.Cells[i]) != len(row) {
			t.Fatalf("%s row %s: %d columns, want %d", table.Title, table.RowLabels[i], len(table.Cells[i]), len(row))
		}
		for j, cell := range row {
			if table.Cells[i][j] != cell {
				t.Errorf("%s [%s, %s] = %q, want %q",
					table.Title, table.RowLabels[i], table.ColLabels[j], table.Cells[i][j], cell)
			}
		}
	}
	if r := table.Render(); len(r) == 0 {
		t.Error("empty table rendering")
	}
}

// TestClassifyAgainstManager cross-checks the count-based Classify used for
// the tables against the ordering-based ClassifySeq used by the forwarding
// path, over every configuration that appears in the tables.
//
// The two are not identical by design: Classify reproduces the paper's table
// semantics (a route is "opportunistic" if the mechanism stays deadlock-free
// while attempting it), whereas ClassifySeq walks the worst-case reference
// path under the per-hop rule the simulator enforces, where an opportunistic
// continuation may be denied hop by hop (the packet then reverts to its
// escape path). ClassifySeq may therefore be more conservative. What must
// never happen is a strong contradiction: one classifier reporting a route
// fully Safe while the other reports it Forbidden.
func TestClassifyAgainstManager(t *testing.T) {
	type tc struct {
		topo topology.Topology
		cfgs []VCConfig
	}
	df, _ := topology.NewDragonfly(1, 2, 1)
	fb, _ := topology.NewFlattenedButterfly2D(2, 1)
	cases := []tc{
		{fb, []VCConfig{SingleClass(2, 0), SingleClass(3, 0), SingleClass(4, 0), SingleClass(5, 0),
			TwoClass(2, 0, 2, 0), TwoClass(3, 0, 2, 0), TwoClass(4, 0, 4, 0)}},
		{df, []VCConfig{SingleClass(2, 1), SingleClass(3, 1), SingleClass(2, 2), SingleClass(3, 2),
			SingleClass(4, 2), SingleClass(5, 2), TwoClass(2, 1, 2, 1), TwoClass(3, 2, 2, 1),
			TwoClass(4, 2, 4, 2), TwoClass(5, 2, 5, 2)}},
	}
	for _, c := range cases {
		for _, cfg := range c.cfgs {
			for _, mode := range RoutingModes {
				ref := Reference(c.topo, mode)
				for _, class := range []packet.Class{packet.Request, packet.Reply} {
					counts := Classify(cfg, class, ref)
					mgr := NewManager(Scheme{Policy: FlexVC, VCs: cfg, Selection: JSQ})
					ordered := mgr.ClassifySeq(class, ref)
					if (counts == Safe && ordered == Forbidden) || (counts == Forbidden && ordered == Safe) {
						t.Errorf("%s %v %v class %v: contradictory classifications Classify=%v ClassifySeq=%v",
							c.topo.Name(), cfg, mode, class, counts, ordered)
					}
					if counts != ordered {
						t.Logf("note: %s %v %v class %v: count-based %v vs order-based %v",
							c.topo.Name(), cfg, mode, class, counts, ordered)
					}
				}
			}
		}
	}
}

// TestReferencePaths checks the reference builder against the paper's path
// shapes.
func TestReferencePaths(t *testing.T) {
	df, _ := topology.NewDragonfly(1, 2, 1)
	fb, _ := topology.NewFlattenedButterfly2D(2, 1)

	if hops := Reference(df, ModeMIN).Hops(); hops != (topology.HopCount{Local: 2, Global: 1}) {
		t.Errorf("dragonfly MIN reference hops = %+v", hops)
	}
	if hops := Reference(df, ModeVAL).Hops(); hops != (topology.HopCount{Local: 4, Global: 2}) {
		t.Errorf("dragonfly VAL reference hops = %+v", hops)
	}
	if hops := Reference(df, ModePAR).Hops(); hops != (topology.HopCount{Local: 5, Global: 2}) {
		t.Errorf("dragonfly PAR reference hops = %+v", hops)
	}
	if hops := Reference(fb, ModeVAL).Hops(); hops != (topology.HopCount{Local: 4}) {
		t.Errorf("fbfly VAL reference hops = %+v", hops)
	}
	ref := Reference(df, ModeVAL)
	if ref.Len() != len(ref.EscapeAfter) {
		t.Fatal("escape list length mismatch")
	}
	// The escape after the last hop is empty; escapes never exceed the
	// diameter.
	last := ref.EscapeAfter[ref.Len()-1]
	if last.Total() != 0 {
		t.Errorf("escape after the final hop should be empty, got %+v", last)
	}
	for i, esc := range ref.EscapeAfter {
		if esc.Local > 2 || esc.Global > 1 {
			t.Errorf("escape %d exceeds the diameter: %+v", i, esc)
		}
	}
}

func TestRouteClassString(t *testing.T) {
	if Safe.String() != "safe" || Opportunistic.String() != "opport." || Forbidden.String() != "X" {
		t.Error("RouteClass.String broken")
	}
	if ModeMIN.String() != "MIN" || ModeVAL.String() != "VAL" || ModePAR.String() != "PAR" {
		t.Error("RoutingMode.String broken")
	}
}
