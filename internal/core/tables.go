package core

import (
	"fmt"
	"strings"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// Table is a rendered analytic table in the style of the paper's Tables I-IV:
// rows are routing modes, columns are VC configurations, and every cell holds
// the route classification.
type Table struct {
	Title      string
	ColLabels  []string
	RowLabels  []string
	Cells      [][]string
	ConfigsCol []VCConfig
}

// Render returns a plain-text rendering of the table.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-10s", "Routing")
	for _, c := range t.ColLabels {
		fmt.Fprintf(&b, " %-14s", c)
	}
	b.WriteByte('\n')
	for i, row := range t.RowLabels {
		fmt.Fprintf(&b, "%-10s", row)
		for _, cell := range t.Cells[i] {
			fmt.Fprintf(&b, " %-14s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// cell formats the classification of a route for one or two message classes,
// collapsing identical classifications the way the paper does ("X / opport."
// when requests are forbidden but replies remain opportunistic).
func cell(req RouteClass, rep *RouteClass) string {
	if rep == nil || *rep == req {
		return req.String()
	}
	return fmt.Sprintf("%s / %s", req, *rep)
}

// buildTable classifies every routing mode under every configuration.
func buildTable(title string, topo topology.Topology, cols []string, cfgs []VCConfig, twoClass bool) Table {
	t := Table{Title: title, ColLabels: cols, ConfigsCol: cfgs}
	for _, mode := range RoutingModes {
		t.RowLabels = append(t.RowLabels, mode.String())
		ref := Reference(topo, mode)
		row := make([]string, 0, len(cfgs))
		for _, cfg := range cfgs {
			req := Classify(cfg, packet.Request, ref)
			if !twoClass {
				row = append(row, cell(req, nil))
				continue
			}
			rep := Classify(cfg, packet.Reply, ref)
			row = append(row, cell(req, &rep))
		}
		t.Cells = append(t.Cells, row)
	}
	return t
}

// genericDiameter2 returns a minimal instance of a generic diameter-2 network
// (a 2x2 flattened butterfly) used only for its diameter in table building.
func genericDiameter2() topology.Topology {
	f, err := topology.NewFlattenedButterfly2D(2, 1)
	if err != nil {
		panic(err)
	}
	return f
}

// smallDragonfly returns a minimal dragonfly instance used only for its
// diameter and link-type structure in table building.
func smallDragonfly() topology.Topology {
	d, err := topology.NewDragonfly(1, 2, 1)
	if err != nil {
		panic(err)
	}
	return d
}

// TableI reproduces Table I of the paper: allowed paths using FlexVC in a
// generic diameter-2 network, for 2-5 VCs and a single message class.
func TableI() Table {
	var cols []string
	var cfgs []VCConfig
	for v := 2; v <= 5; v++ {
		cols = append(cols, fmt.Sprintf("%d VCs", v))
		cfgs = append(cfgs, SingleClass(v, 0))
	}
	return buildTable("Table I: FlexVC paths in a generic diameter-2 network", genericDiameter2(), cols, cfgs, false)
}

// TableII reproduces Table II: the same network with request-reply protocol
// deadlock avoidance. Cells show the request-path classification (the
// binding constraint, as in the paper).
func TableII() Table {
	splits := [][2]int{{2, 2}, {3, 2}, {3, 3}, {4, 4}, {5, 5}}
	var cols []string
	var cfgs []VCConfig
	for _, s := range splits {
		cols = append(cols, fmt.Sprintf("%d+%d=%d", s[0], s[1], s[0]+s[1]))
		cfgs = append(cfgs, TwoClass(s[0], 0, s[1], 0))
	}
	return buildTable("Table II: FlexVC with protocol deadlock, generic diameter-2 network", genericDiameter2(), cols, cfgs, false)
}

// TableIII reproduces Table III: FlexVC in a diameter-3 Dragonfly with
// local/global link-type restrictions, single message class.
func TableIII() Table {
	splits := []SubpathVCs{{2, 1}, {3, 1}, {2, 2}, {3, 2}, {4, 2}, {5, 2}}
	var cols []string
	var cfgs []VCConfig
	for _, s := range splits {
		cols = append(cols, s.String())
		cfgs = append(cfgs, VCConfig{Request: s})
	}
	return buildTable("Table III: FlexVC in a Dragonfly (local/global VCs)", smallDragonfly(), cols, cfgs, false)
}

// TableIV reproduces Table IV: FlexVC in a Dragonfly with protocol deadlock.
// Cells show "request / reply" classifications when they differ.
func TableIV() Table {
	type split struct {
		label    string
		req, rep SubpathVCs
	}
	splits := []split{
		{"2x(2/1)=4/2", SubpathVCs{2, 1}, SubpathVCs{2, 1}},
		{"3/2+2/1=5/3", SubpathVCs{3, 2}, SubpathVCs{2, 1}},
		{"2x(4/2)=8/4", SubpathVCs{4, 2}, SubpathVCs{4, 2}},
		{"2x(5/2)=10/4", SubpathVCs{5, 2}, SubpathVCs{5, 2}},
	}
	var cols []string
	var cfgs []VCConfig
	for _, s := range splits {
		cols = append(cols, s.label)
		cfgs = append(cfgs, VCConfig{Request: s.req, Reply: s.rep})
	}
	return buildTable("Table IV: FlexVC with protocol deadlock in a Dragonfly", smallDragonfly(), cols, cfgs, true)
}
