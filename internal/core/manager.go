package core

import (
	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// Manager is the runtime form of a Scheme: it carries the precomputed
// canonical VC orderings the FlexVC rules need and answers the per-hop
// allowed-VC queries of the forwarding path. A Manager is immutable and safe
// for concurrent use by multiple routers.
type Manager struct {
	scheme Scheme
	orders [packet.NumClasses]orderTable
}

// NewManager precomputes the canonical orderings for a scheme.
func NewManager(s Scheme) *Manager {
	m := &Manager{scheme: s}
	for c := 0; c < packet.NumClasses; c++ {
		m.orders[c] = buildOrderTable(s.VCs, packet.Class(c))
	}
	return m
}

// Scheme returns the configuration the manager was built from.
func (m *Manager) Scheme() Scheme { return m.scheme }

// order returns the canonical ordering visible to a class.
func (m *Manager) order(class packet.Class) *orderTable { return &m.orders[class] }

// AllowedVCs computes the VC indices a packet may use at the downstream input
// port for the hop described by ctx.
//
// Baseline: exactly one VC — the hop's position in the reference path of the
// packet's route (ctx.RefPosition), offset into the class's subsequence.
//
// FlexVC: every VC from a lower bound up to the highest index from which the
// remaining route still embeds into the canonical VC ordering at strictly
// increasing ranks. Safe hops embed the planned route (so the packet's own
// path is its escape); opportunistic hops embed the minimal escape path and
// must additionally not move the packet to a rank below its current buffer.
func (m *Manager) AllowedVCs(ctx HopContext) VCRange {
	if ctx.Kind == topology.Terminal {
		return VCRange{Lo: 0, Hi: 0, Safe: true}
	}
	if m.scheme.Policy == Baseline {
		return m.scheme.baselineVC(ctx)
	}
	return m.flexVC(ctx)
}

// flexVC implements the FlexVC rule on top of the canonical ordering.
func (m *Manager) flexVC(ctx HopContext) VCRange {
	ord := m.order(ctx.Class)
	if ord.count(ctx.Kind) == 0 {
		return VCRange{Lo: 1, Hi: 0}
	}
	// curRank is the rank of the buffer the packet currently occupies
	// (-1 while it still sits in an injection queue).
	curRank := -1
	if ctx.InputKind != topology.Terminal && ctx.InputVC >= 0 && ctx.InputVC < ord.count(ctx.InputKind) {
		curRank = ord.rank(ctx.InputKind, ctx.InputVC)
	}

	// Safe: the planned route (this hop included) embeds into the ordering
	// at ranks strictly above the packet's current buffer, so the planned
	// continuation itself is a valid escape and the packet may simply wait
	// for it when blocked.
	plannedSeq := ctx.PlannedAfter.Prepend(ctx.Kind)
	if hi, ok := ord.highestFeasible(plannedSeq); ok && ord.rank(ctx.Kind, hi) > curRank {
		return VCRange{Lo: 0, Hi: hi, Safe: true}
	}

	// Opportunistic: the escape path from the next buffer must embed, and
	// the next buffer must not sit at a lower rank than the current one.
	// The router must be prepared to fall back to the escape (minimal) path
	// when such a hop is blocked.
	escapeSeq := ctx.EscapeAfter.Prepend(ctx.Kind)
	hi, ok := ord.highestFeasible(escapeSeq)
	if !ok {
		return VCRange{Lo: 1, Hi: 0}
	}
	lo := 0
	if curRank >= 0 {
		lo = ord.lowestIndexAtOrAboveRank(ctx.Kind, curRank)
	}
	if hi < lo {
		return VCRange{Lo: 1, Hi: 0}
	}
	return VCRange{Lo: lo, Hi: hi, Safe: false}
}

// ClassifySeq classifies a full route (given as its hop-kind sequence with
// the worst-case escape sequence after every hop) for a message class, using
// the same embedding rules as the forwarding path. It is the
// ordering-faithful counterpart of Classify and is used by tests to
// cross-check the two.
func (m *Manager) ClassifySeq(class packet.Class, ref ReferencePath) RouteClass {
	ord := m.order(class)
	// Safe: the whole reference path embeds.
	var full topology.PathSeq
	for _, k := range ref.Kinds {
		full.Push(k)
	}
	if _, ok := ord.highestFeasible(full); ok {
		return Safe
	}
	// Opportunistic: walk the path; at every hop the escape (plus the hop
	// itself) must embed at ranks at or above the current buffer's rank.
	curRank := -1
	for i, kind := range ref.Kinds {
		seq := escapeSeqFor(ref, i)
		hi, ok := ord.highestFeasible(seq)
		if !ok {
			return Forbidden
		}
		lo := 0
		if curRank >= 0 {
			lo = ord.lowestIndexAtOrAboveRank(kind, curRank)
		}
		if hi < lo {
			return Forbidden
		}
		curRank = ord.rank(kind, lo)
	}
	return Opportunistic
}

// escapeSeqFor builds the hop-kind sequence "this hop + worst-case escape"
// for hop i of a reference path. Escapes in ReferencePath are stored as
// counts; the worst-case interleaving of a minimal escape is local hops
// first, then the global hop, then the remaining local hop (l-g-l order).
func escapeSeqFor(ref ReferencePath, i int) topology.PathSeq {
	var seq topology.PathSeq
	seq.Push(ref.Kinds[i])
	esc := ref.EscapeAfter[i]
	localsBefore := esc.Local - min(esc.Local, esc.Global)
	for k := 0; k < localsBefore; k++ {
		seq.Push(topology.Local)
	}
	for g := 0; g < esc.Global; g++ {
		seq.Push(topology.Global)
		if esc.Local > localsBefore {
			seq.Push(topology.Local)
			localsBefore++
		}
	}
	return seq
}
