package core

import "fmt"

// SelectionFn identifies the VC selection function FlexVC uses to pick one VC
// among the allowed range (Section VI-A of the paper).
type SelectionFn uint8

const (
	// JSQ (Join the Shortest Queue) picks the allowed VC with the most free
	// space, balancing utilisation. It is the paper's default.
	JSQ SelectionFn = iota
	// HighestVC picks the highest-index allowed VC with room.
	HighestVC
	// LowestVC picks the lowest-index allowed VC with room.
	LowestVC
	// RandomVC picks uniformly at random among allowed VCs with room.
	RandomVC
)

// SelectionFns lists every selection function, in a stable order, for sweeps.
var SelectionFns = []SelectionFn{JSQ, HighestVC, LowestVC, RandomVC}

// String implements fmt.Stringer.
func (f SelectionFn) String() string {
	switch f {
	case JSQ:
		return "jsq"
	case HighestVC:
		return "highest"
	case LowestVC:
		return "lowest"
	case RandomVC:
		return "random"
	default:
		return fmt.Sprintf("selection(%d)", uint8(f))
	}
}

// ParseSelectionFn parses the string form produced by String.
func ParseSelectionFn(s string) (SelectionFn, error) {
	for _, f := range SelectionFns {
		if f.String() == s {
			return f, nil
		}
	}
	return JSQ, fmt.Errorf("unknown VC selection function %q", s)
}

// VCCandidate describes one VC of the downstream port as seen by the VC
// selector: its index and the free space (in phits) the sender currently has
// credits for.
type VCCandidate struct {
	VC   int
	Free int
}

// randSource is the minimal interface the random selection function needs;
// *rand.Rand and the simulator's deterministic PRNG both satisfy it.
type randSource interface {
	Intn(n int) int
}

// Select picks one VC among candidates that can hold a packet of `size`
// phits, according to the selection function. It returns the chosen VC and
// true, or -1 and false when no candidate has room. Candidates must be sorted
// by ascending VC index (ties in JSQ are broken toward the lower index, which
// keeps the choice deterministic).
func (f SelectionFn) Select(candidates []VCCandidate, size int, rng randSource) (int, bool) {
	switch f {
	case JSQ:
		best, bestFree := -1, -1
		for _, c := range candidates {
			if c.Free >= size && c.Free > bestFree {
				best, bestFree = c.VC, c.Free
			}
		}
		return best, best >= 0
	case HighestVC:
		for i := len(candidates) - 1; i >= 0; i-- {
			if candidates[i].Free >= size {
				return candidates[i].VC, true
			}
		}
		return -1, false
	case LowestVC:
		for _, c := range candidates {
			if c.Free >= size {
				return c.VC, true
			}
		}
		return -1, false
	case RandomVC:
		eligible := make([]int, 0, len(candidates))
		for _, c := range candidates {
			if c.Free >= size {
				eligible = append(eligible, c.VC)
			}
		}
		if len(eligible) == 0 {
			return -1, false
		}
		if rng == nil {
			return eligible[0], true
		}
		return eligible[rng.Intn(len(eligible))], true
	default:
		return -1, false
	}
}
