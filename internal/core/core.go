// Package core implements the paper's primary contribution: FlexVC, a
// flexible virtual-channel management mechanism for distance-based deadlock
// avoidance in low-diameter networks, together with the baseline fixed-order
// VC assignment it is compared against and the FlexVC-minCred congestion
// sensing variant.
//
// The package is purely combinatorial: it decides, for a packet about to take
// a hop, which VC indices of the downstream input port it may use, and it
// classifies whole routes as safe, opportunistic or forbidden for a given VC
// arrangement (reproducing Tables I-IV of the paper). The cycle-level
// machinery that uses these decisions lives in internal/router and
// internal/sim.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// Policy selects the VC management mechanism.
type Policy uint8

const (
	// Baseline is the classic distance-based deadlock avoidance: hop i of
	// the reference path uses exactly VC i (per link kind, per message
	// class). Extra VCs beyond the reference path cannot be exploited.
	Baseline Policy = iota
	// FlexVC relaxes the order: any VC from 0 up to a per-hop maximum may
	// be used, the maximum being determined by the remaining safe or escape
	// path so that an increasing escape sequence always exists.
	FlexVC
)

// Policies lists every VC-management policy, in a stable order, for sweeps
// and exhaustive round-trip tests.
var Policies = []Policy{Baseline, FlexVC}

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Baseline {
		return "baseline"
	}
	return "flexvc"
}

// ParsePolicy parses the textual form produced by String ("baseline" or
// "flexvc"). It is the fail-fast inverse spec layers (internal/campaign,
// cmd/flexvcsim) rely on: unknown names error instead of defaulting.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "baseline", "base":
		return Baseline, nil
	case "flexvc", "flex":
		return FlexVC, nil
	}
	return Baseline, fmt.Errorf("unknown VC management policy %q (want baseline or flexvc)", s)
}

// SubpathVCs is the VC count per link kind for one message class, written
// "local/global" in the paper (e.g. 4/2).
type SubpathVCs struct {
	Local  int
	Global int
}

// Of returns the VC count for a link kind.
func (s SubpathVCs) Of(k topology.PortKind) int {
	if k == topology.Global {
		return s.Global
	}
	return s.Local
}

// AtLeast reports whether s has at least as many VCs of every kind as o.
func (s SubpathVCs) AtLeast(o SubpathVCs) bool {
	return s.Local >= o.Local && s.Global >= o.Global
}

// Add returns the element-wise sum.
func (s SubpathVCs) Add(o SubpathVCs) SubpathVCs {
	return SubpathVCs{Local: s.Local + o.Local, Global: s.Global + o.Global}
}

// String implements fmt.Stringer using the paper's "L/G" notation.
func (s SubpathVCs) String() string { return fmt.Sprintf("%d/%d", s.Local, s.Global) }

// ParseSubpathVCs parses the "local/global" notation produced by String,
// e.g. "4/2". Counts must be non-negative integers.
func ParseSubpathVCs(s string) (SubpathVCs, error) {
	lo, gl, ok := strings.Cut(s, "/")
	if !ok {
		return SubpathVCs{}, fmt.Errorf("VC spec %q must be local/global, e.g. 4/2", s)
	}
	l, errL := strconv.Atoi(lo)
	g, errG := strconv.Atoi(gl)
	if errL != nil || errG != nil {
		return SubpathVCs{}, fmt.Errorf("VC spec %q must be local/global with integer counts, e.g. 4/2", s)
	}
	if l < 0 || g < 0 {
		return SubpathVCs{}, fmt.Errorf("VC spec %q: counts must be non-negative", s)
	}
	return SubpathVCs{Local: l, Global: g}, nil
}

// FromHopCount converts a hop count into the VC requirement it implies.
func FromHopCount(h topology.HopCount) SubpathVCs {
	return SubpathVCs{Local: h.Local, Global: h.Global}
}

// VCConfig is the complete VC arrangement of a network: the request
// subsequence followed by the reply subsequence (empty when the workload has
// a single message class). Within each link kind, request VCs occupy the
// lower indices and reply VCs the higher indices, so replies may
// opportunistically dip into request VCs while requests never block replies'
// dedicated buffers.
type VCConfig struct {
	Request SubpathVCs
	Reply   SubpathVCs
}

// SingleClass builds a configuration without a reply subsequence.
func SingleClass(local, global int) VCConfig {
	return VCConfig{Request: SubpathVCs{Local: local, Global: global}}
}

// TwoClass builds a request+reply configuration.
func TwoClass(reqLocal, reqGlobal, repLocal, repGlobal int) VCConfig {
	return VCConfig{
		Request: SubpathVCs{Local: reqLocal, Global: reqGlobal},
		Reply:   SubpathVCs{Local: repLocal, Global: repGlobal},
	}
}

// HasReply reports whether a reply subsequence is configured.
func (c VCConfig) HasReply() bool { return c.Reply.Local > 0 || c.Reply.Global > 0 }

// Total returns the total VC count (request + reply) per link kind.
func (c VCConfig) Total() SubpathVCs { return c.Request.Add(c.Reply) }

// TotalOf returns the total VC count for one link kind.
func (c VCConfig) TotalOf(k topology.PortKind) int { return c.Total().Of(k) }

// ClassOffset returns the first VC index of a message class for a link kind.
func (c VCConfig) ClassOffset(class packet.Class, k topology.PortKind) int {
	if class == packet.Reply {
		return c.Request.Of(k)
	}
	return 0
}

// ClassCount returns the number of VCs dedicated to a message class for a
// link kind.
func (c VCConfig) ClassCount(class packet.Class, k topology.PortKind) int {
	if class == packet.Reply {
		return c.Reply.Of(k)
	}
	return c.Request.Of(k)
}

// ClassTop returns one past the highest VC index a packet of the given class
// may ever use for a link kind: requests are confined to the request
// subsequence, replies may use the whole sequence.
func (c VCConfig) ClassTop(class packet.Class, k topology.PortKind) int {
	if class == packet.Reply {
		return c.TotalOf(k)
	}
	return c.Request.Of(k)
}

// String implements fmt.Stringer using the paper's notation, e.g.
// "6/4 (4/3+2/1)" for two-class configurations or "4/2" for single-class.
func (c VCConfig) String() string {
	if !c.HasReply() {
		return c.Request.String()
	}
	t := c.Total()
	return fmt.Sprintf("%s (%s+%s)", t.String(), c.Request.String(), c.Reply.String())
}

// ParseVCConfig parses a VC arrangement: "4/2" (single class), "4/2+2/1"
// (request+reply subsequences) or the full display form produced by String,
// "6/3 (4/2+2/1)", whose leading total is cross-checked against the
// subsequences. Parse(String(c)) round-trips losslessly for every valid c.
func ParseVCConfig(s string) (VCConfig, error) {
	body := strings.TrimSpace(s)
	// Display form: "total (req+rep)".
	if open := strings.IndexByte(body, '('); open >= 0 {
		if !strings.HasSuffix(body, ")") {
			return VCConfig{}, fmt.Errorf("VC arrangement %q: unbalanced parenthesis", s)
		}
		totalStr := strings.TrimSpace(body[:open])
		body = body[open+1 : len(body)-1]
		total, err := ParseSubpathVCs(totalStr)
		if err != nil {
			return VCConfig{}, fmt.Errorf("VC arrangement %q: %w", s, err)
		}
		c, err := ParseVCConfig(body)
		if err != nil {
			return VCConfig{}, err
		}
		if c.Total() != total {
			return VCConfig{}, fmt.Errorf("VC arrangement %q: stated total %s does not match subsequences summing to %s", s, total, c.Total())
		}
		return c, nil
	}
	req, rep, twoClass := strings.Cut(body, "+")
	c := VCConfig{}
	var err error
	if c.Request, err = ParseSubpathVCs(strings.TrimSpace(req)); err != nil {
		return VCConfig{}, fmt.Errorf("VC arrangement %q: request subsequence: %w", s, err)
	}
	if twoClass {
		if c.Reply, err = ParseSubpathVCs(strings.TrimSpace(rep)); err != nil {
			return VCConfig{}, fmt.Errorf("VC arrangement %q: reply subsequence: %w", s, err)
		}
	}
	return c, nil
}

// Validate checks the configuration is usable on a topology for a given
// maximum route: at the very least, minimal routing must be safe for every
// message class within its own subsequence.
func (c VCConfig) Validate(diameter topology.HopCount, twoClasses bool) error {
	need := FromHopCount(diameter)
	if !c.Request.AtLeast(need) {
		return fmt.Errorf("vcconfig %s: request subsequence %s cannot hold a safe minimal path (%s needed)",
			c, c.Request, need)
	}
	if twoClasses && !c.Reply.AtLeast(need) {
		return fmt.Errorf("vcconfig %s: reply subsequence %s cannot hold a safe minimal path (%s needed)",
			c, c.Reply, need)
	}
	if !twoClasses && c.HasReply() {
		return fmt.Errorf("vcconfig %s: reply VCs configured but the workload has a single message class", c)
	}
	return nil
}
