package core

import (
	"fmt"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// RouteClass classifies a whole route under a VC configuration.
type RouteClass uint8

const (
	// Forbidden routes cannot be used: some hop has no VC that preserves a
	// safe escape path.
	Forbidden RouteClass = iota
	// Opportunistic routes are allowed hop by hop, but some hops rely on an
	// escape path rather than the planned route fitting in increasing VCs.
	Opportunistic
	// Safe routes fit entirely in strictly increasing VCs of the class's
	// own subsequence.
	Safe
)

// String implements fmt.Stringer, matching the paper's table entries.
func (c RouteClass) String() string {
	switch c {
	case Safe:
		return "safe"
	case Opportunistic:
		return "opport."
	default:
		return "X"
	}
}

// ReferencePath is the worst-case hop sequence of a routing mode on a
// topology, with the worst-case escape path length after every hop. It is
// the input to route classification (Tables I-IV) and is also used by tests
// to cross-check the per-hop AllowedVCs decisions.
type ReferencePath struct {
	// Kinds is the link kind of every hop, in order.
	Kinds []topology.PortKind
	// EscapeAfter[i] is the worst-case minimal path (per link kind) from
	// the router reached after hop i to the final destination.
	EscapeAfter []topology.HopCount
}

// Hops returns the hop count of the reference path, per link kind.
func (r ReferencePath) Hops() topology.HopCount {
	var hc topology.HopCount
	for _, k := range r.Kinds {
		if k == topology.Global {
			hc.Global++
		} else {
			hc.Local++
		}
	}
	return hc
}

// Len returns the number of hops.
func (r ReferencePath) Len() int { return len(r.Kinds) }

// Classify determines whether a route described by ref is safe, opportunistic
// or forbidden for packets of the given class under configuration cfg, using
// the FlexVC rules. The baseline policy only supports safe routes, so a
// Baseline scheme should treat anything below Safe as unusable.
func Classify(cfg VCConfig, class packet.Class, ref ReferencePath) RouteClass {
	if len(ref.Kinds) != len(ref.EscapeAfter) {
		panic(fmt.Sprintf("core: reference path with %d hops but %d escapes", len(ref.Kinds), len(ref.EscapeAfter)))
	}
	// Safe: the whole path fits in the class's own subsequence.
	need := FromHopCount(ref.Hops())
	own := SubpathVCs{
		Local:  cfg.ClassCount(class, topology.Local),
		Global: cfg.ClassCount(class, topology.Global),
	}
	if own.AtLeast(need) {
		return Safe
	}
	// Otherwise walk the path hop by hop, choosing the lowest feasible VC at
	// every hop (which maximises feasibility of later hops), and check that
	// every hop admits at least one VC with a valid escape.
	last := map[topology.PortKind]int{topology.Local: -1, topology.Global: -1}
	for i, kind := range ref.Kinds {
		escape := ref.EscapeAfter[i]
		top := cfg.ClassTop(class, kind)
		hi := top - 1 - escape.Of(kind)
		if !escapeOtherKindsFit(cfg, class, kind, escape) {
			return Forbidden
		}
		lo := 0
		if last[kind] > lo {
			lo = last[kind]
		}
		if hi < lo {
			return Forbidden
		}
		last[kind] = lo
	}
	return Opportunistic
}

// RoutingMode enumerates the routing mechanisms whose VC requirements the
// paper tabulates.
type RoutingMode uint8

const (
	// ModeMIN is minimal routing.
	ModeMIN RoutingMode = iota
	// ModeVAL is Valiant (node) routing: minimal to a random intermediate
	// router, then minimal to the destination.
	ModeVAL
	// ModePAR is Progressive Adaptive Routing: one minimal hop, then
	// possibly a switch to a Valiant path.
	ModePAR
)

// String implements fmt.Stringer.
func (m RoutingMode) String() string {
	switch m {
	case ModeMIN:
		return "MIN"
	case ModeVAL:
		return "VAL"
	default:
		return "PAR"
	}
}

// RoutingModes lists the tabulated routing modes in paper order.
var RoutingModes = []RoutingMode{ModeMIN, ModeVAL, ModePAR}

// Reference builds the worst-case reference path of a routing mode on a
// topology, including the worst-case escape after every hop.
//
// For topologies without link-type restrictions (all links Local, e.g. the
// generic diameter-2 network) the reference path is simply `diameter` local
// hops for MIN, twice that for VAL and one extra hop for PAR, and the escape
// after every hop is bounded by the diameter (or less near the destination).
//
// For the Dragonfly, minimal paths follow l-g-l and Valiant paths
// l-g-l-l-g-l; escapes are bounded by the l-g-l minimal path until the
// destination group is reached.
func Reference(topo topology.Topology, mode RoutingMode) ReferencePath {
	diam := topo.Diameter()
	switch mode {
	case ModeMIN:
		return buildReference(minimalKinds(diam), diam)
	case ModeVAL:
		kinds := append(minimalKinds(diam), minimalKinds(diam)...)
		return buildReference(kinds, diam)
	default: // ModePAR: one extra minimal (local) hop before the Valiant path.
		kinds := make([]topology.PortKind, 0, 1+2*diam.Total())
		kinds = append(kinds, topology.Local)
		kinds = append(kinds, minimalKinds(diam)...)
		kinds = append(kinds, minimalKinds(diam)...)
		return buildReference(kinds, diam)
	}
}

// minimalKinds expands a diameter hop count into the canonical ordered kind
// sequence of a minimal path. Hierarchical networks interleave local and
// global hops as l...-g-l... (one local hop before each global hop, remaining
// local hops at the end), which matches l-g-l for the Dragonfly and plain
// l-l for flat diameter-2 networks.
func minimalKinds(diam topology.HopCount) []topology.PortKind {
	kinds := make([]topology.PortKind, 0, diam.Total())
	local := diam.Local
	for g := 0; g < diam.Global; g++ {
		if local > 0 {
			kinds = append(kinds, topology.Local)
			local--
		}
		kinds = append(kinds, topology.Global)
	}
	for ; local > 0; local-- {
		kinds = append(kinds, topology.Local)
	}
	return kinds
}

// buildReference computes worst-case escapes for every hop of a kind
// sequence: the escape after hop i is the minimal path from that point, which
// in the worst case is the full diameter until the final minimal-path suffix
// begins, and the remaining suffix afterwards.
func buildReference(kinds []topology.PortKind, diam topology.HopCount) ReferencePath {
	n := len(kinds)
	escapes := make([]topology.HopCount, n)
	// The last diam.Total() hops of the path are the final approach: after
	// hop i in that suffix, the remaining suffix is exactly the escape.
	suffixStart := n - diamTotalKinds(kinds, diam)
	for i := 0; i < n; i++ {
		if i >= suffixStart {
			escapes[i] = countKinds(kinds[i+1:])
		} else {
			escapes[i] = diam
		}
	}
	return ReferencePath{Kinds: kinds, EscapeAfter: escapes}
}

// diamTotalKinds returns the length of the final minimal approach of the kind
// sequence (at most the diameter).
func diamTotalKinds(kinds []topology.PortKind, diam topology.HopCount) int {
	t := diam.Total()
	if t > len(kinds) {
		return len(kinds)
	}
	return t
}

// countKinds tallies a kind sequence into a hop count.
func countKinds(kinds []topology.PortKind) topology.HopCount {
	var hc topology.HopCount
	for _, k := range kinds {
		if k == topology.Global {
			hc.Global++
		} else {
			hc.Local++
		}
	}
	return hc
}
