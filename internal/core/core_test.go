package core

import (
	"testing"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

func TestVCConfigBasics(t *testing.T) {
	c := TwoClass(3, 2, 2, 1)
	if c.Total() != (SubpathVCs{Local: 5, Global: 3}) {
		t.Fatalf("Total = %v", c.Total())
	}
	if c.ClassOffset(packet.Request, topology.Local) != 0 || c.ClassOffset(packet.Reply, topology.Local) != 3 {
		t.Fatal("ClassOffset broken")
	}
	if c.ClassCount(packet.Reply, topology.Global) != 1 {
		t.Fatal("ClassCount broken")
	}
	if c.ClassTop(packet.Request, topology.Local) != 3 || c.ClassTop(packet.Reply, topology.Local) != 5 {
		t.Fatal("ClassTop broken")
	}
	if !c.HasReply() || SingleClass(2, 1).HasReply() {
		t.Fatal("HasReply broken")
	}
	if got := c.String(); got != "5/3 (3/2+2/1)" {
		t.Fatalf("String = %q", got)
	}
	if got := SingleClass(4, 2).String(); got != "4/2" {
		t.Fatalf("String = %q", got)
	}
}

func TestVCConfigValidate(t *testing.T) {
	diam := topology.HopCount{Local: 2, Global: 1}
	if err := SingleClass(2, 1).Validate(diam, false); err != nil {
		t.Errorf("2/1 should be valid for MIN: %v", err)
	}
	if err := SingleClass(1, 1).Validate(diam, false); err == nil {
		t.Error("1/1 cannot hold a safe minimal path")
	}
	if err := TwoClass(2, 1, 2, 1).Validate(diam, true); err != nil {
		t.Errorf("2/1+2/1 should be valid: %v", err)
	}
	if err := TwoClass(2, 1, 1, 1).Validate(diam, true); err == nil {
		t.Error("reply subsequence 1/1 cannot hold a safe minimal path")
	}
	if err := TwoClass(2, 1, 2, 1).Validate(diam, false); err == nil {
		t.Error("reply VCs configured without reactive traffic should be rejected")
	}
}

// TestInterleaveMatchesPaperReferences checks the canonical orderings against
// the reference paths spelled out in the paper.
func TestInterleaveMatchesPaperReferences(t *testing.T) {
	L, G := topology.Local, topology.Global
	cases := []struct {
		vl, vg int
		want   []topology.PortKind
	}{
		{2, 1, []topology.PortKind{L, G, L}},                            // l0-g1-l2 (MIN)
		{3, 2, []topology.PortKind{L, G, L, G, L}},                      // l0-g1-l2-g3-l4 (Section III-C)
		{4, 2, []topology.PortKind{L, G, L, L, G, L}},                   // l0-g1-l2-l3-g4-l5 (VAL)
		{5, 2, []topology.PortKind{L, L, G, L, L, G, L}},                // l0-l1-g2-l3-l4-g5-l6 (PAR)
		{8, 4, []topology.PortKind{L, G, L, L, G, L, L, G, L, L, G, L}}, // four MIN blocks
		{3, 0, []topology.PortKind{L, L, L}},                            // flat network
	}
	for _, c := range cases {
		got := interleave(c.vl, c.vg)
		if len(got) != len(c.want) {
			t.Fatalf("interleave(%d,%d) length %d, want %d", c.vl, c.vg, len(got), len(c.want))
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("interleave(%d,%d)[%d] = %v, want %v (%v)", c.vl, c.vg, i, got[i], c.want[i], got)
				break
			}
		}
	}
}

// TestOrderTableRanksIncrease checks that within each kind, ranks strictly
// increase with the VC index, and that reply VCs rank after request VCs.
func TestOrderTableRanksIncrease(t *testing.T) {
	cfgs := []VCConfig{SingleClass(2, 1), SingleClass(8, 4), TwoClass(4, 2, 2, 1), TwoClass(3, 2, 3, 2)}
	for _, cfg := range cfgs {
		for _, class := range []packet.Class{packet.Request, packet.Reply} {
			o := buildOrderTable(cfg, class)
			for _, kind := range []topology.PortKind{topology.Local, topology.Global} {
				prev := -1
				for i := 0; i < o.count(kind); i++ {
					r := o.rank(kind, i)
					if r <= prev {
						t.Fatalf("cfg %v class %v kind %v: rank not increasing at index %d", cfg, class, kind, i)
					}
					prev = r
				}
			}
		}
		// Reply visibility: the reply table covers request + reply VCs.
		rep := buildOrderTable(cfg, packet.Reply)
		if rep.count(topology.Local) != cfg.TotalOf(topology.Local) {
			t.Fatalf("cfg %v: reply order covers %d local VCs, want %d", cfg, rep.count(topology.Local), cfg.TotalOf(topology.Local))
		}
		req := buildOrderTable(cfg, packet.Request)
		if req.count(topology.Local) != cfg.ClassTop(packet.Request, topology.Local) {
			t.Fatalf("cfg %v: request order covers %d local VCs", cfg, req.count(topology.Local))
		}
	}
}

// seqEmbeds is an independent checker: does seq embed into the order at
// strictly increasing ranks with the first hop at VC index `first`?
func seqEmbeds(o *orderTable, seq topology.PathSeq, first int) bool {
	if seq.Len() == 0 || first >= o.count(seq.At(0)) {
		return false
	}
	rank := o.rank(seq.At(0), first)
	for i := 1; i < seq.Len(); i++ {
		idx := o.lowestIndexAtOrAboveRank(seq.At(i), rank+1)
		if idx >= o.count(seq.At(i)) {
			return false
		}
		rank = o.rank(seq.At(i), idx)
	}
	return true
}

// TestHighestFeasible checks hand-computed cases and the monotonicity
// property (every index at or below the returned one also embeds).
func TestHighestFeasible(t *testing.T) {
	L, G := topology.Local, topology.Global
	cases := []struct {
		cfg   VCConfig
		class packet.Class
		seq   topology.PathSeq
		want  int
		ok    bool
	}{
		// MIN with 2/1: the full l-g-l path must start at l0.
		{SingleClass(2, 1), packet.Request, topology.SeqOf(L, G, L), 0, true},
		// An l-g path (no destination-group hop) must also start at l0,
		// because the global hop needs a slot after it.
		{SingleClass(2, 1), packet.Request, topology.SeqOf(L, G), 0, true},
		// The final local hop may use l0 or l2 (index 1).
		{SingleClass(2, 1), packet.Request, topology.SeqOf(L), 1, true},
		// A lone global hop uses the only global VC.
		{SingleClass(2, 1), packet.Request, topology.SeqOf(G), 0, true},
		// A g-l suffix fits with the global at index 0.
		{SingleClass(2, 1), packet.Request, topology.SeqOf(G, L), 0, true},
		// Valiant path needs 4/2: with 2/1 it cannot start anywhere.
		{SingleClass(2, 1), packet.Request, topology.SeqOf(L, G, L, L, G, L), -1, false},
		// With 4/2 the Valiant path is safe starting at l0.
		{SingleClass(4, 2), packet.Request, topology.SeqOf(L, G, L, L, G, L), 0, true},
		// With 4/2, a minimal l-g-l path may start as high as local index 2.
		{SingleClass(4, 2), packet.Request, topology.SeqOf(L, G, L), 2, true},
		// Replies see the concatenated sequence: a minimal reply path over
		// 2/1+2/1 may start at local index 2 (the first reply VC).
		{TwoClass(2, 1, 2, 1), packet.Reply, topology.SeqOf(L, G, L), 2, true},
		// Requests are confined to the request subsequence.
		{TwoClass(2, 1, 2, 1), packet.Request, topology.SeqOf(L, G, L), 0, true},
		// A reply Valiant path over 2/1+2/1 dips into request VCs
		// opportunistically and starts at l0.
		{TwoClass(2, 1, 2, 1), packet.Reply, topology.SeqOf(L, G, L, L, G, L), 0, true},
		// A request Valiant path over 2/1+2/1 is impossible.
		{TwoClass(2, 1, 2, 1), packet.Request, topology.SeqOf(L, G, L, L, G, L), -1, false},
	}
	for _, c := range cases {
		o := buildOrderTable(c.cfg, c.class)
		got, ok := o.highestFeasible(c.seq)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("cfg %v class %v seq %v: highestFeasible = (%d,%v), want (%d,%v)",
				c.cfg, c.class, c.seq, got, ok, c.want, c.ok)
			continue
		}
		if ok {
			for j := 0; j <= got; j++ {
				if !seqEmbeds(&o, c.seq, j) {
					t.Errorf("cfg %v seq %v: index %d <= hi %d does not embed", c.cfg, c.seq, j, got)
				}
			}
			if got+1 < o.count(c.seq.At(0)) && seqEmbeds(&o, c.seq, got+1) {
				t.Errorf("cfg %v seq %v: index %d above hi embeds, hi not maximal", c.cfg, c.seq, got+1)
			}
		}
	}
}

func TestSelectionFunctions(t *testing.T) {
	cands := []VCCandidate{{VC: 0, Free: 8}, {VC: 1, Free: 16}, {VC: 2, Free: 4}, {VC: 3, Free: 16}}
	if vc, ok := JSQ.Select(cands, 8, nil); !ok || vc != 1 {
		t.Errorf("JSQ picked %d (ties break to the lowest index)", vc)
	}
	if vc, ok := HighestVC.Select(cands, 8, nil); !ok || vc != 3 {
		t.Errorf("HighestVC picked %d", vc)
	}
	if vc, ok := LowestVC.Select(cands, 8, nil); !ok || vc != 0 {
		t.Errorf("LowestVC picked %d", vc)
	}
	if vc, ok := RandomVC.Select(cands, 8, nil); !ok || vc == 2 {
		t.Errorf("RandomVC picked %d (without an rng it must pick the first eligible)", vc)
	}
	if _, ok := JSQ.Select(cands, 32, nil); ok {
		t.Error("selection should fail when nothing fits")
	}
	if _, ok := JSQ.Select(nil, 8, nil); ok {
		t.Error("selection over no candidates should fail")
	}
	for _, fn := range SelectionFns {
		parsed, err := ParseSelectionFn(fn.String())
		if err != nil || parsed != fn {
			t.Errorf("ParseSelectionFn round-trip failed for %v", fn)
		}
	}
	if _, err := ParseSelectionFn("bogus"); err == nil {
		t.Error("expected error for unknown selection function")
	}
}

func TestSchemeString(t *testing.T) {
	s := Scheme{Policy: FlexVC, VCs: TwoClass(4, 2, 2, 1), Selection: JSQ, MinCred: true}
	if got := s.String(); got != "flexvc-minCred 6/3 (4/2+2/1) jsq" {
		t.Errorf("Scheme.String = %q", got)
	}
	if Baseline.String() != "baseline" || FlexVC.String() != "flexvc" {
		t.Error("Policy.String broken")
	}
}
