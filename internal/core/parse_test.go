package core

import (
	"strings"
	"testing"
)

// TestPolicyRoundTrip exhaustively round-trips every VC-management policy
// through its textual form, so a renamed String() cannot silently diverge
// from ParsePolicy.
func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	for alias, want := range map[string]Policy{"base": Baseline, "flex": FlexVC} {
		if got, err := ParsePolicy(alias); err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("ParsePolicy(bogus) err = %v, want an error naming the input", err)
	}
}

// TestSubpathVCsRoundTrip round-trips the "L/G" notation and checks that
// malformed specs fail with actionable messages.
func TestSubpathVCsRoundTrip(t *testing.T) {
	for _, v := range []SubpathVCs{{0, 0}, {2, 1}, {4, 2}, {8, 4}, {10, 6}} {
		got, err := ParseSubpathVCs(v.String())
		if err != nil || got != v {
			t.Errorf("ParseSubpathVCs(%q) = %v, %v; want %v", v.String(), got, err, v)
		}
	}
	for _, bad := range []string{"", "4", "4/2/1", "a/2", "4/b", "-1/2", "4/-2", "4/2x"} {
		if _, err := ParseSubpathVCs(bad); err == nil {
			t.Errorf("ParseSubpathVCs(%q) should fail", bad)
		} else if !strings.Contains(err.Error(), bad) {
			t.Errorf("ParseSubpathVCs(%q) error %q should quote the input", bad, err)
		}
	}
}

// TestVCConfigRoundTrip exhaustively round-trips single- and two-class VC
// arrangements through both the short and the display notation.
func TestVCConfigRoundTrip(t *testing.T) {
	configs := []VCConfig{
		SingleClass(2, 1),
		SingleClass(4, 2),
		SingleClass(8, 4),
		TwoClass(2, 1, 2, 1),
		TwoClass(4, 2, 2, 1),
		TwoClass(4, 3, 2, 1),
		TwoClass(5, 3, 5, 3),
	}
	for _, c := range configs {
		got, err := ParseVCConfig(c.String())
		if err != nil || got != c {
			t.Errorf("ParseVCConfig(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
	// Short two-class notation without the total prefix.
	if got, err := ParseVCConfig("4/2+2/1"); err != nil || got != TwoClass(4, 2, 2, 1) {
		t.Errorf("ParseVCConfig(4/2+2/1) = %v, %v", got, err)
	}
	cases := map[string]string{
		"":                "local/global",
		"6/3 (4/2+2/1":    "unbalanced",
		"7/3 (4/2+2/1)":   "total",
		"4/2+":            "reply",
		"x/2+2/1":         "request",
		"6/3 (4/2+2/1) x": "unbalanced",
	}
	for bad, want := range cases {
		if _, err := ParseVCConfig(bad); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("ParseVCConfig(%q) err = %v, want it to mention %q", bad, err, want)
		}
	}
}
