// Package routing implements the routing mechanisms evaluated in the FlexVC
// paper: oblivious minimal (MIN) and Valiant (VAL) routing, in-transit
// Progressive Adaptive Routing (PAR) and the Piggyback (PB) source-adaptive
// mechanism with per-port and per-VC congestion sensing, optionally restricted
// to minimal credits (FlexVC-minCred).
//
// A routing algorithm decides, for the packet at the head of an input VC,
// which output port it should request next, updating the packet's route state
// (minimal vs Valiant, current phase, intermediate router). The virtual
// channel used on that hop is decided separately by the VC management scheme
// in internal/core.
package routing

import (
	"fmt"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// Kind enumerates the implemented routing algorithms.
type Kind uint8

const (
	// MIN routes every packet minimally.
	MIN Kind = iota
	// VAL routes every packet through a uniformly random intermediate
	// router (Valiant-node randomisation).
	VAL
	// PAR is Progressive Adaptive Routing: packets start minimally and may
	// divert to a Valiant path after the first local hop if congestion is
	// detected in transit.
	PAR
	// PB is the Piggyback source-adaptive mechanism: the source router
	// chooses between the minimal and a Valiant path using piggybacked
	// remote saturation information plus a local credit comparison.
	PB
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case MIN:
		return "min"
	case VAL:
		return "val"
	case PAR:
		return "par"
	case PB:
		return "pb"
	default:
		return fmt.Sprintf("routing(%d)", uint8(k))
	}
}

// Kinds lists every routing algorithm, in a stable order, for sweeps and
// exhaustive round-trip tests.
var Kinds = []Kind{MIN, VAL, PAR, PB}

// ParseKind parses the textual form produced by String.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return MIN, fmt.Errorf("unknown routing algorithm %q (want min, val, par or pb)", s)
}

// Nonminimal reports whether the algorithm can produce non-minimal routes and
// therefore needs VCs provisioned for Valiant paths.
func (k Kind) Nonminimal() bool { return k != MIN }

// Sensing selects how Piggyback measures the occupancy of a global port when
// deciding whether it is saturated, and how the local credit comparison is
// performed.
type Sensing uint8

const (
	// SensePerPort sums the occupancy of every VC of the port.
	SensePerPort Sensing = iota
	// SensePerVC considers only the first VC a packet would use on that
	// port (VC0 of the relevant subsequence).
	SensePerVC
)

// String implements fmt.Stringer.
func (s Sensing) String() string {
	if s == SensePerVC {
		return "per-vc"
	}
	return "per-port"
}

// Sensings lists every sensing mode, in a stable order, for exhaustive
// round-trip tests.
var Sensings = []Sensing{SensePerPort, SensePerVC}

// ParseSensing parses the textual form produced by String.
func ParseSensing(v string) (Sensing, error) {
	switch v {
	case "per-port", "perport", "port":
		return SensePerPort, nil
	case "per-vc", "pervc", "vc":
		return SensePerVC, nil
	}
	return SensePerPort, fmt.Errorf("unknown sensing mode %q (want per-port or per-vc)", v)
}

// RandSource is the subset of math/rand the algorithms need; the simulator
// provides a deterministic per-router source.
type RandSource interface {
	Intn(n int) int
	Float64() float64
}

// Probe gives routing algorithms visibility into buffer occupancies for
// congestion sensing. It is implemented by the simulator.
type Probe interface {
	// OutputOccupancy returns the committed occupancy, in phits, of the
	// downstream input buffer reached through output port `port` of router
	// r, as seen by r's credit counters. With vc >= 0 only that VC is
	// considered; vc < 0 sums every VC. With minOnly, only space committed
	// by minimally routed packets is counted (FlexVC-minCred).
	OutputOccupancy(r packet.RouterID, port int, vc int, minOnly bool) int
	// OutputCapacity returns the total capacity, in phits, of that
	// downstream input buffer (vc semantics as above).
	OutputCapacity(r packet.RouterID, port int, vc int) int
}

// Decision is the result of a routing query for one packet at one router.
type Decision struct {
	// OutPort is the output port the packet should request.
	OutPort int
	// Deliver is true when the packet has reached its destination router
	// and should be consumed through a terminal port.
	Deliver bool
}

// Algorithm is the interface shared by all routing mechanisms.
type Algorithm interface {
	// Kind returns the algorithm identifier.
	Kind() Kind
	// Route returns the routing decision at router cur for the packet with
	// the given header, updating its route state (Valiant decisions, phase
	// transitions) in place. rng is the per-router deterministic random
	// source.
	Route(cur packet.RouterID, hdr *packet.Header, rt *packet.RouteState, rng RandSource) Decision
	// MaxPlannedHops returns the worst-case hop count the algorithm can
	// plan, used to validate VC configurations.
	MaxPlannedHops() topology.HopCount
}

// PlannedRemaining returns the hop-kind sequence remaining on the packet's
// currently planned route from router `from` (exclusive) to its destination
// router `dst`: through the Valiant intermediate while in the first phase,
// directly otherwise.
func PlannedRemaining(topo topology.Topology, from packet.RouterID, rt *packet.RouteState, dst packet.RouterID) topology.PathSeq {
	if rt.Kind == packet.Nonminimal && rt.Phase == packet.PhaseToIntermediate {
		a := topology.MinimalSeq(topo, from, rt.Intermediate)
		b := topology.MinimalSeq(topo, rt.Intermediate, dst)
		return a.Concat(b)
	}
	return topology.MinimalSeq(topo, from, dst)
}

// EscapeRemaining returns the hop-kind sequence of the minimal (escape) path
// from router `from` to the packet's destination router `dst`.
func EscapeRemaining(topo topology.Topology, from, dst packet.RouterID) topology.PathSeq {
	return topology.MinimalSeq(topo, from, dst)
}

// BaselinePosition returns the position of the packet's next hop within the
// reference path of its route, per link kind — the input the baseline
// (fixed-order) VC assignment needs. Positions follow the paper's notation:
//
//   - Dragonfly minimal paths l0-g1-l2: the local position is 0 in the source
//     group and 1 in the destination group (i.e. the number of global hops
//     already taken), and the global position is the number of global hops
//     taken. Skipped hops keep the positions of the remaining hops.
//   - Dragonfly Valiant paths l0-g1-l2-l3-g4-l5: local hops taken after the
//     Valiant intermediate router has been passed shift one extra position.
//   - PAR-diverted packets shift local positions by the local hops taken
//     before the diversion (the l0-l1-g2-... reference).
//   - Flat topologies (all links Local, no skippable hops that could break
//     the order) simply use the number of hops of that kind already taken.
func BaselinePosition(topo topology.Topology, rt *packet.RouteState) topology.HopCount {
	if _, hierarchical := topo.(*topology.Dragonfly); !hierarchical {
		return topology.HopCount{Local: int(rt.LocalHops), Global: int(rt.GlobalHops)}
	}
	pos := topology.HopCount{Local: int(rt.GlobalHops), Global: int(rt.GlobalHops)}
	if rt.Kind == packet.Nonminimal {
		if rt.Phase == packet.PhaseToDestination {
			pos.Local++
		}
		if rt.DivertPrefixLocal > 0 {
			pos.Local += int(rt.DivertPrefixLocal)
		}
	}
	return pos
}

// currentTarget returns the router the packet is currently heading to
// minimally: the Valiant intermediate during the first phase, the destination
// otherwise. It also performs the phase transition once the intermediate has
// been reached.
func currentTarget(cur packet.RouterID, rt *packet.RouteState, dst packet.RouterID) packet.RouterID {
	if rt.Kind == packet.Nonminimal && rt.Phase == packet.PhaseToIntermediate {
		if cur == rt.Intermediate {
			rt.Phase = packet.PhaseToDestination
		} else {
			return rt.Intermediate
		}
	}
	return dst
}

// routeToward resolves the next minimal hop toward the packet's current
// target, or delivery when the destination router has been reached.
func routeToward(topo topology.Topology, cur packet.RouterID, rt *packet.RouteState, dst packet.RouterID) Decision {
	target := currentTarget(cur, rt, dst)
	if cur == dst && target == dst {
		return Decision{OutPort: -1, Deliver: true}
	}
	return Decision{OutPort: topo.NextMinimalPort(cur, target)}
}
