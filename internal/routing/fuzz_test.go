package routing

import (
	"math/rand"
	"testing"

	"flexvc/internal/core"
	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// FuzzPathValidity fuzzes the routing algorithms end to end on a walked
// path: for a fuzzed Dragonfly geometry, source/destination pair and
// algorithm, the route must deliver within the algorithm's declared
// worst-case hop count, every hop must leave through a non-terminal port,
// and a sufficiently provisioned VC scheme must offer a non-empty VC range
// at every hop (for FlexVC and, on safe reference paths, for the baseline).
func FuzzPathValidity(f *testing.F) {
	f.Add(uint8(1), uint32(0), uint32(1), int64(1), uint8(0))
	f.Add(uint8(2), uint32(3), uint32(29), int64(42), uint8(1))
	f.Add(uint8(3), uint32(100), uint32(7), int64(7), uint8(2))
	f.Add(uint8(2), uint32(11), uint32(11), int64(99), uint8(1))
	f.Fuzz(func(t *testing.T, h uint8, srcSel, dstSel uint32, seed int64, algSel uint8) {
		hh := 1 + int(h)%3
		topo, err := topology.NewDragonfly(hh, 2*hh, hh)
		if err != nil {
			t.Skip()
		}

		var alg Algorithm
		switch algSel % 3 {
		case 0:
			alg = NewMinimal(topo)
		case 1:
			alg = NewValiant(topo)
		default:
			// PAR without congestion (zero occupancy probes) degenerates to
			// MIN, but still exercises its commit state machine.
			alg = NewProgressive(topo, zeroProbe{}, PARConfig{ThresholdPhits: 1})
		}

		n := topo.NumRouters()
		src := packet.RouterID(int(srcSel) % n)
		dst := packet.RouterID(int(dstSel) % n)
		srcNode := topo.NodeAt(src, 0)
		dstNode := topo.NodeAt(dst, 0)

		pkt := &testPkt{}
		pkt.ID, pkt.Src, pkt.Dst, pkt.Size, pkt.Class = 1, srcNode, dstNode, 8, packet.Request
		pkt.Route.Reset()
		pkt.SrcRouter = src
		pkt.DstRouter = dst

		// A VC arrangement that holds the worst-case planned path of any of
		// the fuzzed algorithms (PAR's Valiant path plus one local hop).
		need := alg.MaxPlannedHops()
		vcs := core.SingleClass(need.Local, need.Global)
		flex := core.NewManager(core.Scheme{Policy: core.FlexVC, VCs: vcs, Selection: core.JSQ})
		base := core.NewManager(core.Scheme{Policy: core.Baseline, VCs: vcs, Selection: core.JSQ})

		rng := rand.New(rand.NewSource(seed))
		maxHops := need.Total()
		cur := src
		lastKind := topology.Terminal // the packet starts in an injection queue
		for hop := 0; ; hop++ {
			if hop > maxHops {
				t.Fatalf("%v route %d->%d exceeded MaxPlannedHops %+v (route state %+v)",
					alg.Kind(), src, dst, need, pkt.Route)
			}
			dec := alg.Route(cur, &pkt.Header, &pkt.Route, rng)
			if dec.Deliver {
				if cur != dst {
					t.Fatalf("%v delivered at router %d, destination is %d", alg.Kind(), cur, dst)
				}
				break
			}
			port := dec.OutPort
			if port < 0 || port >= topo.Radix() || topo.PortKind(cur, port) == topology.Terminal {
				t.Fatalf("%v proposed invalid port %d at router %d (dst %d)", alg.Kind(), port, cur, dst)
			}
			kind := topo.PortKind(cur, port)
			next, _ := topo.Neighbor(cur, port)

			// The per-hop VC range must never be empty for a scheme
			// provisioned for the algorithm's worst case.
			ctx := core.HopContext{
				Class:        pkt.Class,
				Kind:         kind,
				InputKind:    topology.Terminal,
				InputVC:      -1,
				RefPosition:  BaselinePosition(topo, &pkt.Route),
				PlannedAfter: PlannedRemaining(topo, next, &pkt.Route, pkt.DstRouter),
				EscapeAfter:  EscapeRemaining(topo, next, pkt.DstRouter),
			}
			if hop > 0 {
				ctx.InputKind = lastKind
				ctx.InputVC = int(pkt.Route.InputVC)
			}
			fr := flex.AllowedVCs(ctx)
			if fr.Empty() {
				t.Fatalf("%v: empty FlexVC range at hop %d of %d->%d (ctx %+v, route %+v)",
					alg.Kind(), hop, src, dst, ctx, pkt.Route)
			}
			br := base.AllowedVCs(ctx)
			if br.Empty() {
				t.Fatalf("%v: empty baseline range at hop %d of %d->%d (refpos %+v, route %+v)",
					alg.Kind(), hop, src, dst, ctx.RefPosition, pkt.Route)
			}
			if fr.Lo < 0 || fr.Hi >= vcs.TotalOf(kind) || br.Hi >= vcs.TotalOf(kind) {
				t.Fatalf("VC range outside the configured arrangement: flex %+v base %+v", fr, br)
			}

			// Advance the packet the way the router's grant path would.
			pkt.Route.InputVC = int32(fr.Lo)
			if kind == topology.Global {
				pkt.Route.GlobalHops++
			} else {
				pkt.Route.LocalHops++
			}
			pkt.Route.Hops++
			lastKind = kind
			cur = next
		}
	})
}

// zeroProbe reports empty buffers everywhere, so PAR never diverts.
type zeroProbe struct{}

func (zeroProbe) OutputOccupancy(packet.RouterID, int, int, bool) int { return 0 }
func (zeroProbe) OutputCapacity(packet.RouterID, int, int) int        { return 64 }
