package routing

import (
	"fmt"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// PBConfig collects the Piggyback parameters.
type PBConfig struct {
	// Sensing selects per-port or per-VC occupancy measurement.
	Sensing Sensing
	// MinCredOnly restricts occupancy measurements to credits of minimally
	// routed packets (FlexVC-minCred).
	MinCredOnly bool
	// ThresholdPhits is the offset of the UGAL-style local credit
	// comparison, in phits (the paper uses T=3 packets).
	ThresholdPhits int
	// SaturationNum/SaturationDen define the saturation rule: a global port
	// is saturated when occupancy·Den > average·Num (the paper marks ports
	// with 50% more occupancy than the average, i.e. 3/2).
	SaturationNum, SaturationDen int
	// MinSaturationPhits is a floor below which a port is never considered
	// saturated, suppressing noise at very low loads.
	MinSaturationPhits int
	// UpdateInterval is the number of cycles between publications of the
	// piggybacked saturation bits, modelling their propagation delay to the
	// other routers of the group.
	UpdateInterval int64
	// ClassVC maps each message class to the global-port VC index used by
	// per-VC sensing (the first VC of the class's subsequence).
	ClassVC [packet.NumClasses]int
}

// DefaultPBConfig returns the paper's Piggyback parameters for a given packet
// size and saturation-information propagation delay.
func DefaultPBConfig(packetSize int, updateInterval int64) PBConfig {
	return PBConfig{
		Sensing:            SensePerVC,
		ThresholdPhits:     3 * packetSize,
		SaturationNum:      3,
		SaturationDen:      2,
		MinSaturationPhits: packetSize,
		UpdateInterval:     updateInterval,
	}
}

// PBManager maintains the piggybacked saturation state of every global port
// of a Dragonfly network. Each router marks a global port as saturated when
// its occupancy exceeds the configured fraction of the router's average
// global-port occupancy; the bits become visible to the rest of the group
// after UpdateInterval cycles.
type PBManager struct {
	topo  *topology.Dragonfly
	probe Probe
	cfg   PBConfig

	numClasses int
	// computed and visible are indexed [class][router*H + globalPortIndex].
	computed [][]bool
	visible  [][]bool
	lastPub  int64
	// occ is reusable scratch for the per-router occupancy snapshot taken
	// every cycle in Update.
	occ []int
}

// NewPBManager builds the saturation-state manager. numClasses is 1 for
// single-class workloads and 2 for request-reply workloads.
func NewPBManager(topo *topology.Dragonfly, probe Probe, cfg PBConfig, numClasses int) *PBManager {
	if numClasses < 1 || numClasses > packet.NumClasses {
		panic(fmt.Sprintf("routing: invalid class count %d", numClasses))
	}
	n := topo.NumRouters() * topo.H
	m := &PBManager{topo: topo, probe: probe, cfg: cfg, numClasses: numClasses, lastPub: -1}
	m.computed = make([][]bool, numClasses)
	m.visible = make([][]bool, numClasses)
	m.occ = make([]int, topo.H)
	for c := 0; c < numClasses; c++ {
		m.computed[c] = make([]bool, n)
		m.visible[c] = make([]bool, n)
	}
	return m
}

// senseVC returns the VC argument for the probe according to the sensing
// mode and message class.
func (m *PBManager) senseVC(class packet.Class) int {
	if m.cfg.Sensing == SensePerPort {
		return -1
	}
	return m.cfg.ClassVC[class]
}

// Update recomputes the saturation bits and publishes them when the update
// interval has elapsed. The simulator calls it once per cycle.
func (m *PBManager) Update(now int64) {
	h := m.topo.H
	first := m.topo.FirstGlobalPort()
	for c := 0; c < m.numClasses; c++ {
		class := packet.Class(c)
		vc := m.senseVC(class)
		for r := 0; r < m.topo.NumRouters(); r++ {
			rid := packet.RouterID(r)
			sum := 0
			occ := m.occ
			for g := 0; g < h; g++ {
				occ[g] = m.probe.OutputOccupancy(rid, first+g, vc, m.cfg.MinCredOnly)
				sum += occ[g]
			}
			for g := 0; g < h; g++ {
				sat := occ[g] >= m.cfg.MinSaturationPhits &&
					occ[g]*m.cfg.SaturationDen*h > m.cfg.SaturationNum*sum
				m.computed[c][r*h+g] = sat
			}
		}
	}
	if m.cfg.UpdateInterval <= 0 || m.lastPub < 0 || now-m.lastPub >= m.cfg.UpdateInterval {
		for c := 0; c < m.numClasses; c++ {
			copy(m.visible[c], m.computed[c])
		}
		m.lastPub = now
	}
}

// Saturated reports the visible saturation state of global port index g
// (0-based within the router's global ports) of router r, for packets of the
// given class.
func (m *PBManager) Saturated(class packet.Class, r packet.RouterID, g int) bool {
	c := int(class)
	if c >= m.numClasses {
		c = 0
	}
	return m.visible[c][int(r)*m.topo.H+g]
}

// MinimalGlobalSaturated reports whether the global link on the minimal path
// from srcGroup to dstGroup is currently marked saturated for the class.
func (m *PBManager) MinimalGlobalSaturated(class packet.Class, srcGroup, dstGroup int) bool {
	router, port, ok := m.topo.MinimalGlobalLink(srcGroup, dstGroup)
	if !ok {
		return false
	}
	return m.Saturated(class, router, port-m.topo.FirstGlobalPort())
}

// Piggyback implements the PB source-adaptive routing mechanism on a
// Dragonfly: at injection the source router chooses between the minimal path
// and a Valiant path based on the piggybacked saturation state of the minimal
// global link and a local credit comparison between the two candidate first
// hops.
type Piggyback struct {
	topo    *topology.Dragonfly
	probe   Probe
	manager *PBManager
	cfg     PBConfig
}

// NewPiggyback builds a PB routing algorithm backed by the given saturation
// manager (which must have been built with the same configuration).
func NewPiggyback(topo *topology.Dragonfly, probe Probe, manager *PBManager, cfg PBConfig) *Piggyback {
	return &Piggyback{topo: topo, probe: probe, manager: manager, cfg: cfg}
}

// Kind implements Algorithm.
func (p *Piggyback) Kind() Kind { return PB }

// MaxPlannedHops implements Algorithm.
func (p *Piggyback) MaxPlannedHops() topology.HopCount { return p.topo.MaxValiantHops() }

// Manager exposes the saturation-state manager so the simulator can drive its
// per-cycle updates.
func (p *Piggyback) Manager() *PBManager { return p.manager }

// Route implements Algorithm.
func (p *Piggyback) Route(cur packet.RouterID, hdr *packet.Header, rt *packet.RouteState, rng RandSource) Decision {
	if !rt.AdaptiveDecided && cur == hdr.SrcRouter {
		rt.AdaptiveDecided = true
		if p.shouldMisroute(cur, hdr, rng) {
			rt.Kind = packet.Nonminimal
			rt.Phase = packet.PhaseToIntermediate
			rt.Intermediate = RandomIntermediate(p.topo, rng)
		} else {
			rt.Kind = packet.Minimal
			rt.Phase = packet.PhaseToDestination
		}
	}
	return routeToward(p.topo, cur, rt, hdr.DstRouter)
}

// shouldMisroute applies the PB decision rule at injection.
func (p *Piggyback) shouldMisroute(cur packet.RouterID, hdr *packet.Header, rng RandSource) bool {
	srcGroup := p.topo.GroupOf(cur)
	dstGroup := p.topo.GroupOf(hdr.DstRouter)
	if srcGroup == dstGroup {
		// Intra-group traffic is always sent minimally.
		return false
	}
	if p.manager.MinimalGlobalSaturated(hdr.Class, srcGroup, dstGroup) {
		return true
	}
	// Local credit comparison between the first hop of the minimal path and
	// the first hop of a candidate Valiant path (UGAL-style, weighted by
	// path length).
	candidate := RandomIntermediate(p.topo, rng)
	minPort := p.topo.NextMinimalPort(cur, hdr.DstRouter)
	valTarget := candidate
	if valTarget == cur {
		valTarget = hdr.DstRouter
	}
	valPort := p.topo.NextMinimalPort(cur, valTarget)
	if minPort < 0 || valPort < 0 {
		return false
	}
	vc := p.manager.senseVC(hdr.Class)
	qMin := p.probe.OutputOccupancy(cur, minPort, vc, p.cfg.MinCredOnly)
	qVal := p.probe.OutputOccupancy(cur, valPort, vc, p.cfg.MinCredOnly)
	lenMin := p.topo.MinimalHops(cur, hdr.DstRouter).Total()
	lenVal := p.topo.MinimalHops(cur, candidate).Total() + p.topo.MinimalHops(candidate, hdr.DstRouter).Total()
	if lenVal == 0 {
		return false
	}
	return qMin*lenMin > qVal*lenVal+p.cfg.ThresholdPhits
}
