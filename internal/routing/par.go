package routing

import (
	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// PARConfig collects the Progressive Adaptive Routing parameters.
type PARConfig struct {
	// ThresholdPhits is the offset of the local credit comparison in phits.
	ThresholdPhits int
	// Sensing selects per-port or per-VC occupancy measurement for the
	// local comparison.
	Sensing Sensing
	// MinCredOnly restricts measurements to minimal credits.
	MinCredOnly bool
	// ClassVC maps message classes to the VC index used by per-VC sensing.
	ClassVC [packet.NumClasses]int
}

// Progressive implements PAR (Progressive Adaptive Routing): packets start on
// the minimal path and the misrouting decision is re-evaluated at every
// router of the source group until the packet either diverts to a Valiant
// path or takes its global hop. Re-evaluating after a local hop lets the
// packet observe the congestion of the global link directly, at the cost of
// one extra local hop on diverted paths (hence the 5/2 VC requirement for
// safe paths).
type Progressive struct {
	topo  topology.Topology
	probe Probe
	cfg   PARConfig
}

// NewProgressive builds a PAR algorithm.
func NewProgressive(topo topology.Topology, probe Probe, cfg PARConfig) *Progressive {
	return &Progressive{topo: topo, probe: probe, cfg: cfg}
}

// Kind implements Algorithm.
func (p *Progressive) Kind() Kind { return PAR }

// MaxPlannedHops implements Algorithm. PAR paths add one local hop to the
// Valiant worst case.
func (p *Progressive) MaxPlannedHops() topology.HopCount {
	hc := p.topo.MaxValiantHops()
	hc.Local++
	return hc
}

// Route implements Algorithm.
func (p *Progressive) Route(cur packet.RouterID, hdr *packet.Header, rt *packet.RouteState, rng RandSource) Decision {
	if !rt.AdaptiveDecided {
		inSourceGroup := p.topo.GroupOf(cur) == p.topo.GroupOf(hdr.SrcRouter)
		switch {
		case !inSourceGroup:
			// The packet left the source group minimally: commit to MIN.
			rt.AdaptiveDecided = true
		case p.shouldDivert(cur, hdr):
			rt.AdaptiveDecided = true
			rt.Kind = packet.Nonminimal
			rt.Phase = packet.PhaseToIntermediate
			rt.Intermediate = RandomIntermediate(p.topo, rng)
			rt.DivertPrefixLocal = rt.LocalHops
		case rt.Hops >= 1:
			// Already took an in-group hop without diverting: commit to MIN
			// rather than wandering inside the source group.
			rt.AdaptiveDecided = true
		}
	}
	return routeToward(p.topo, cur, rt, hdr.DstRouter)
}

// shouldDivert compares the congestion of the next minimal hop against the
// configured threshold. Unlike PB there is no remote information: only the
// local occupancy of the candidate output port is observed.
func (p *Progressive) shouldDivert(cur packet.RouterID, hdr *packet.Header) bool {
	if cur == hdr.DstRouter {
		return false
	}
	minPort := p.topo.NextMinimalPort(cur, hdr.DstRouter)
	if minPort < 0 {
		return false
	}
	vc := -1
	if p.cfg.Sensing == SensePerVC {
		vc = p.cfg.ClassVC[hdr.Class]
	}
	occ := p.probe.OutputOccupancy(cur, minPort, vc, p.cfg.MinCredOnly)
	capacity := p.probe.OutputCapacity(cur, minPort, vc)
	if capacity <= 0 {
		return false
	}
	// Divert when the minimal next hop is more than half full and above the
	// threshold; this keeps PAR conservative under uniform traffic while
	// reacting to the saturated global links adversarial traffic creates.
	return occ > p.cfg.ThresholdPhits && 2*occ > capacity
}
