package routing

import (
	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// Minimal routes every packet along a minimal path.
type Minimal struct {
	topo topology.Topology
}

// NewMinimal builds a minimal-routing algorithm for the topology.
func NewMinimal(topo topology.Topology) *Minimal { return &Minimal{topo: topo} }

// Kind implements Algorithm.
func (m *Minimal) Kind() Kind { return MIN }

// MaxPlannedHops implements Algorithm.
func (m *Minimal) MaxPlannedHops() topology.HopCount { return m.topo.Diameter() }

// Route implements Algorithm.
func (m *Minimal) Route(cur packet.RouterID, hdr *packet.Header, rt *packet.RouteState, _ RandSource) Decision {
	rt.Kind = packet.Minimal
	rt.Phase = packet.PhaseToDestination
	return routeToward(m.topo, cur, rt, hdr.DstRouter)
}

// Valiant routes every packet minimally to a uniformly random intermediate
// router (Valiant-node randomisation, "real" Valiant in the paper's
// terminology) and then minimally to the destination. It makes adversarial
// traffic uniform at the cost of doubling the path length.
type Valiant struct {
	topo topology.Topology
}

// NewValiant builds a Valiant-routing algorithm for the topology.
func NewValiant(topo topology.Topology) *Valiant { return &Valiant{topo: topo} }

// Kind implements Algorithm.
func (v *Valiant) Kind() Kind { return VAL }

// MaxPlannedHops implements Algorithm.
func (v *Valiant) MaxPlannedHops() topology.HopCount { return v.topo.MaxValiantHops() }

// Route implements Algorithm.
func (v *Valiant) Route(cur packet.RouterID, hdr *packet.Header, rt *packet.RouteState, rng RandSource) Decision {
	if !rt.AdaptiveDecided {
		rt.AdaptiveDecided = true
		rt.Kind = packet.Nonminimal
		rt.Phase = packet.PhaseToIntermediate
		rt.Intermediate = RandomIntermediate(v.topo, rng)
	}
	return routeToward(v.topo, cur, rt, hdr.DstRouter)
}

// RandomIntermediate draws a uniformly random intermediate router for Valiant
// routing.
func RandomIntermediate(topo topology.Topology, rng RandSource) packet.RouterID {
	return packet.RouterID(rng.Intn(topo.NumRouters()))
}
