package routing

import (
	"math/rand"
	"testing"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

func testDF(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.NewDragonfly(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fakeProbe is a configurable congestion oracle for unit tests.
type fakeProbe struct {
	occ map[[2]int]int // (router, port) -> phits
	cap int
}

func (f *fakeProbe) OutputOccupancy(r packet.RouterID, port int, vc int, minOnly bool) int {
	return f.occ[[2]int{int(r), port}]
}
func (f *fakeProbe) OutputCapacity(r packet.RouterID, port int, vc int) int {
	if f.cap == 0 {
		return 64
	}
	return f.cap
}

// testPkt pairs a header with its route state the way the store keeps them in
// parallel arrays, so routing tests can walk a standalone packet.
type testPkt struct {
	packet.Header
	Route packet.RouteState
}

// walk routes a packet hop by hop until delivery, returning the sequence of
// port kinds traversed. It fails the test if the route does not converge.
func walk(t *testing.T, topo topology.Topology, alg Algorithm, pkt *testPkt, rng RandSource) []topology.PortKind {
	t.Helper()
	var kinds []topology.PortKind
	cur := pkt.SrcRouter
	for hops := 0; ; hops++ {
		if hops > 16 {
			t.Fatalf("route %d->%d did not converge", pkt.Src, pkt.Dst)
		}
		dec := alg.Route(cur, &pkt.Header, &pkt.Route, rng)
		if dec.Deliver {
			return kinds
		}
		kind := topo.PortKind(cur, dec.OutPort)
		kinds = append(kinds, kind)
		switch kind {
		case topology.Local:
			pkt.Route.LocalHops++
		case topology.Global:
			pkt.Route.GlobalHops++
		}
		pkt.Route.Hops++
		cur, _ = topo.Neighbor(cur, dec.OutPort)
	}
}

func newPacket(topo topology.Topology, src, dst packet.NodeID) *testPkt {
	p := &testPkt{}
	p.ID, p.Src, p.Dst, p.Size, p.Class = 1, src, dst, 8, packet.Request
	p.Route.Reset()
	p.SrcRouter = topo.RouterOfNode(src)
	p.DstRouter = topo.RouterOfNode(dst)
	return p
}

// TestMinimalRouteLengths checks MIN routing against MinimalHops for every
// pair of a small dragonfly.
func TestMinimalRouteLengths(t *testing.T) {
	topo := testDF(t)
	alg := NewMinimal(topo)
	rng := rand.New(rand.NewSource(1))
	for src := 0; src < topo.NumNodes(); src += 3 {
		for dst := 0; dst < topo.NumNodes(); dst += 5 {
			if src == dst {
				continue
			}
			pkt := newPacket(topo, packet.NodeID(src), packet.NodeID(dst))
			kinds := walk(t, topo, alg, pkt, rng)
			want := topo.MinimalHops(pkt.SrcRouter, pkt.DstRouter).Total()
			if len(kinds) != want {
				t.Fatalf("MIN route %d->%d took %d hops, want %d", src, dst, len(kinds), want)
			}
			if pkt.Route.Kind != packet.Minimal {
				t.Fatal("MIN must mark packets as minimally routed")
			}
		}
	}
	if alg.Kind() != MIN || alg.MaxPlannedHops() != topo.Diameter() {
		t.Error("MIN metadata broken")
	}
}

// TestValiantRouteShape checks that Valiant routes visit the chosen
// intermediate router and never exceed twice the diameter.
func TestValiantRouteShape(t *testing.T) {
	topo := testDF(t)
	alg := NewValiant(topo)
	rng := rand.New(rand.NewSource(2))
	maxHops := topo.MaxValiantHops().Total()
	nonminimal := 0
	for i := 0; i < 300; i++ {
		src := packet.NodeID(rng.Intn(topo.NumNodes()))
		dst := packet.NodeID(rng.Intn(topo.NumNodes()))
		if src == dst {
			continue
		}
		pkt := newPacket(topo, src, dst)
		kinds := walk(t, topo, alg, pkt, rng)
		if len(kinds) > maxHops {
			t.Fatalf("VAL route %d->%d took %d hops, max is %d", src, dst, len(kinds), maxHops)
		}
		if pkt.Route.Kind != packet.Nonminimal {
			t.Fatal("VAL must mark packets as non-minimally routed")
		}
		if pkt.Route.Phase != packet.PhaseToDestination {
			t.Fatal("delivered packets must have completed the intermediate phase")
		}
		if len(kinds) > topo.MinimalHops(pkt.SrcRouter, pkt.DstRouter).Total() {
			nonminimal++
		}
	}
	if nonminimal == 0 {
		t.Error("Valiant routing never took a longer-than-minimal path across 300 packets")
	}
	if alg.Kind() != VAL {
		t.Error("VAL metadata broken")
	}
}

// TestBaselinePositionDragonfly checks the positional VC indices used by the
// baseline policy for minimal and Valiant packets.
func TestBaselinePositionDragonfly(t *testing.T) {
	topo := testDF(t)
	pkt := newPacket(topo, 0, packet.NodeID(topo.NumNodes()-1))

	// Minimal packet in its source group.
	pkt.Route.Kind = packet.Minimal
	if pos := BaselinePosition(topo, &pkt.Route); pos.Local != 0 || pos.Global != 0 {
		t.Errorf("source-group minimal position = %+v", pos)
	}
	// After the global hop.
	pkt.Route.GlobalHops = 1
	if pos := BaselinePosition(topo, &pkt.Route); pos.Local != 1 || pos.Global != 1 {
		t.Errorf("dest-group minimal position = %+v", pos)
	}
	// Valiant packet, second phase in the intermediate group.
	pkt.Route.Kind = packet.Nonminimal
	pkt.Route.Phase = packet.PhaseToDestination
	pkt.Route.GlobalHops = 1
	if pos := BaselinePosition(topo, &pkt.Route); pos.Local != 2 {
		t.Errorf("post-intermediate Valiant local position = %+v", pos)
	}
	// Destination group of a Valiant path.
	pkt.Route.GlobalHops = 2
	if pos := BaselinePosition(topo, &pkt.Route); pos.Local != 3 || pos.Global != 2 {
		t.Errorf("dest-group Valiant position = %+v", pos)
	}
	// PAR-diverted packets shift by the pre-diversion local hops.
	pkt.Route.GlobalHops = 0
	pkt.Route.Phase = packet.PhaseToIntermediate
	pkt.Route.DivertPrefixLocal = 1
	if pos := BaselinePosition(topo, &pkt.Route); pos.Local != 1 {
		t.Errorf("PAR-diverted source-group position = %+v", pos)
	}

	// Flat topologies just count hops.
	fb, _ := topology.NewFlattenedButterfly2D(3, 1)
	fpkt := newPacket(fb, 0, 5)
	fpkt.Route.LocalHops = 1
	if pos := BaselinePosition(fb, &fpkt.Route); pos.Local != 1 {
		t.Errorf("flat position = %+v", pos)
	}
}

// TestPBManagerSaturation checks the saturation marking rule against a fake
// probe.
func TestPBManagerSaturation(t *testing.T) {
	topo := testDF(t)
	probe := &fakeProbe{occ: map[[2]int]int{}}
	cfg := DefaultPBConfig(8, 0)
	cfg.Sensing = SensePerPort
	m := NewPBManager(topo, probe, cfg, 1)

	first := topo.FirstGlobalPort()
	// Router 0: one global port far above the router's average.
	probe.occ[[2]int{0, first}] = 64
	probe.occ[[2]int{0, first + 1}] = 8
	// Router 1: balanced occupancy, nothing saturated.
	probe.occ[[2]int{1, first}] = 32
	probe.occ[[2]int{1, first + 1}] = 32
	m.Update(0)

	if !m.Saturated(packet.Request, 0, 0) {
		t.Error("router 0 global port 0 should be saturated (64 vs average 36)")
	}
	if m.Saturated(packet.Request, 0, 1) {
		t.Error("router 0 global port 1 should not be saturated")
	}
	if m.Saturated(packet.Request, 1, 0) || m.Saturated(packet.Request, 1, 1) {
		t.Error("balanced ports should not be saturated")
	}
	// Below the noise floor nothing is saturated even if unbalanced.
	probe.occ[[2]int{0, first}] = 4
	probe.occ[[2]int{0, first + 1}] = 0
	m.Update(1)
	if m.Saturated(packet.Request, 0, 0) {
		t.Error("occupancy below one packet should never mark saturation")
	}
}

// TestPBManagerPublicationDelay checks that saturation bits only become
// visible at the configured interval.
func TestPBManagerPublicationDelay(t *testing.T) {
	topo := testDF(t)
	probe := &fakeProbe{occ: map[[2]int]int{}}
	cfg := DefaultPBConfig(8, 10)
	m := NewPBManager(topo, probe, cfg, 1)
	first := topo.FirstGlobalPort()

	m.Update(0) // publishes the all-clear state
	probe.occ[[2]int{0, first}] = 64
	m.Update(1)
	if m.Saturated(packet.Request, 0, 0) {
		t.Error("saturation must not be visible before the publication interval")
	}
	m.Update(11)
	if !m.Saturated(packet.Request, 0, 0) {
		t.Error("saturation should be visible after the publication interval")
	}
}

// TestPiggybackDecision checks that PB diverts exactly when the minimal
// global link is marked saturated or the local comparison favours Valiant.
func TestPiggybackDecision(t *testing.T) {
	topo := testDF(t)
	probe := &fakeProbe{occ: map[[2]int]int{}}
	cfg := DefaultPBConfig(8, 0)
	cfg.Sensing = SensePerPort
	m := NewPBManager(topo, probe, cfg, 1)
	pb := NewPiggyback(topo, probe, m, cfg)
	rng := rand.New(rand.NewSource(3))

	// Destination in another group, nothing congested: route minimally.
	dst := topo.NodeAt(topo.RouterInGroup(2, 1), 0)
	pkt := newPacket(topo, 0, dst)
	m.Update(0)
	dec := pb.Route(pkt.SrcRouter, &pkt.Header, &pkt.Route, rng)
	if pkt.Route.Kind != packet.Minimal {
		t.Fatalf("uncongested PB decision should be minimal, got %v", pkt.Route.Kind)
	}
	if dec.Deliver {
		t.Fatal("packet cannot be delivered at the source router")
	}

	// Saturate the minimal global link and re-decide with a fresh packet.
	gr, gp, _ := topo.MinimalGlobalLink(0, 2)
	probe.occ[[2]int{int(gr), gp}] = 128
	// Give the router a second, idle global port so the average stays low.
	m.Update(0)
	pkt2 := newPacket(topo, 0, dst)
	pb.Route(pkt2.SrcRouter, &pkt2.Header, &pkt2.Route, rng)
	if pkt2.Route.Kind != packet.Nonminimal {
		t.Fatal("PB should divert when the minimal global link is saturated")
	}

	// Intra-group traffic is always minimal.
	pkt3 := newPacket(topo, 0, topo.NodeAt(3, 0))
	pb.Route(pkt3.SrcRouter, &pkt3.Header, &pkt3.Route, rng)
	if pkt3.Route.Kind != packet.Minimal {
		t.Fatal("intra-group traffic must stay minimal")
	}
	if pb.Kind() != PB || pb.Manager() != m {
		t.Error("PB metadata broken")
	}
}

// TestProgressiveDiverts checks that PAR diverts when the minimal next hop is
// congested and stays minimal otherwise.
func TestProgressiveDiverts(t *testing.T) {
	topo := testDF(t)
	probe := &fakeProbe{occ: map[[2]int]int{}, cap: 64}
	alg := NewProgressive(topo, probe, PARConfig{ThresholdPhits: 24, Sensing: SensePerPort})
	rng := rand.New(rand.NewSource(4))

	dst := topo.NodeAt(topo.RouterInGroup(3, 0), 0)
	pkt := newPacket(topo, 0, dst)
	alg.Route(pkt.SrcRouter, &pkt.Header, &pkt.Route, rng)
	if pkt.Route.Kind != packet.Minimal {
		t.Fatal("PAR should start minimal when uncongested")
	}

	// Congest the minimal first hop of a fresh packet beyond half capacity.
	minPort := topo.NextMinimalPort(0, topo.RouterOfNode(dst))
	probe.occ[[2]int{0, minPort}] = 48
	pkt2 := newPacket(topo, 0, dst)
	alg.Route(pkt2.SrcRouter, &pkt2.Header, &pkt2.Route, rng)
	if pkt2.Route.Kind != packet.Nonminimal {
		t.Fatal("PAR should divert when the minimal next hop is congested")
	}
	if pkt2.Route.DivertPrefixLocal != 0 {
		t.Fatal("diversion at the source router has no local prefix")
	}
	if alg.Kind() != PAR || alg.MaxPlannedHops().Local != topo.MaxValiantHops().Local+1 {
		t.Error("PAR metadata broken")
	}
}

func TestParseHelpers(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind round trip failed for %v", k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("expected error for unknown routing kind")
	}
	for _, s := range Sensings {
		got, err := ParseSensing(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSensing round trip failed for %v", s)
		}
	}
	if _, err := ParseSensing("bogus"); err == nil {
		t.Error("expected error for unknown sensing mode")
	}
	if MIN.Nonminimal() || !VAL.Nonminimal() || !PB.Nonminimal() {
		t.Error("Nonminimal broken")
	}
}
