package obs

import (
	"testing"
	"time"
)

// The disabled-path benchmarks are gated in BENCH_baseline.json: the whole
// point of the nil-registry design is that instrumented hot paths cost one
// pointer compare and zero allocations when metrics are off, and these
// benches fail the bench gate if a refactor regresses that.

func BenchmarkObsCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsHistogramDisabled(b *testing.B) {
	var r *Registry
	h := r.Histogram("h_ns")
	var start time.Time // nil Since must not even read the clock
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Since(start)
	}
}

func BenchmarkObsCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("c_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("h_ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkObsGaugeSetMaxEnabled(b *testing.B) {
	g := NewRegistry().Gauge("hwm")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.SetMax(int64(i & 1023))
	}
}
