package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsFullyDisabled locks the zero-impact contract's first half:
// every operation on a nil registry (and the nil metric handles it returns)
// must be a silent no-op, because the disabled path in sim/sweep/campaignd is
// exactly "the pointer is nil".
func TestNilRegistryIsFullyDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil handles: %v %v %v", c, g, h)
	}
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter Value = %d", c.Value())
	}
	g.Set(7)
	g.SetMax(9)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge Value = %d", g.Value())
	}
	h.Observe(3)
	h.Since(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram Count=%d Sum=%d", h.Count(), h.Sum())
	}
	r.Func("f", func() float64 { return 1 })
	r.SetValue("v", 2)
	if err := r.Merge(&Snapshot{Counters: map[string]int64{"c": 1}}); err != nil {
		t.Fatalf("nil Merge: %v", err)
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 || len(s.Values) != 0 {
		t.Fatalf("nil Snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WritePrometheus wrote %q err %v", buf.String(), err)
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flexvc_test_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("flexvc_test_total") != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("flexvc_test_gauge")
	g.Set(10)
	g.SetMax(7) // lower: must not move
	if g.Value() != 10 {
		t.Fatalf("SetMax(7) lowered gauge to %d", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Fatalf("SetMax(12) -> %d", g.Value())
	}
	g.Add(-2)
	if g.Value() != 10 {
		t.Fatalf("Add(-2) -> %d", g.Value())
	}
	if r.Gauge("flexvc_test_gauge") != g {
		t.Fatal("same name returned a different gauge")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name returned a different histogram")
	}
}

// TestBucketLayout checks the histogram's bucket math: every sample lands in
// a bucket whose inclusive upper bound is >= the sample, bucket upper bounds
// are strictly increasing, and the relative width above the exact region is
// at most 1/16.
func TestBucketLayout(t *testing.T) {
	samples := []int64{0, 1, 31, 32, 33, 100, 127, 128, 1000, 1 << 20, 1 << 40, math.MaxInt64}
	for _, v := range samples {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if up := bucketUpper(i); up < v {
			t.Fatalf("bucketUpper(%d)=%d < sample %d", i, up, v)
		}
		if i > 0 {
			if lo := bucketUpper(i - 1); lo >= v {
				t.Fatalf("sample %d not above previous bucket bound %d", v, lo)
			}
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative sample bucket = %d, want 0", bucketIndex(-5))
	}
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, up, prev)
		}
		prev = up
		if i >= histSubCount {
			lower := bucketUpper(i-1) + 1
			if width := up - lower + 1; float64(width)/float64(lower) > 1.0/float64(histHalf) {
				t.Fatalf("bucket %d relative width %d/%d exceeds 1/%d", i, width, lower, histHalf)
			}
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flexvc_test_ns")
	for _, v := range []int64{1, 1, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 5052 {
		t.Fatalf("Count=%d Sum=%d, want 4/5052", h.Count(), h.Sum())
	}
	hs := r.Snapshot().Histograms["flexvc_test_ns"]
	if hs.Count != 4 || hs.Sum != 5052 || hs.SubBits != histSubBits {
		t.Fatalf("snapshot %+v", hs)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b[1]
	}
	if total != 4 {
		t.Fatalf("bucket sum %d != 4", total)
	}
	for i := 1; i < len(hs.Buckets); i++ {
		if hs.Buckets[i][0] <= hs.Buckets[i-1][0] {
			t.Fatalf("snapshot buckets not ascending: %v", hs.Buckets)
		}
	}
}

// TestSnapshotDeterministic locks the JSON encoding: two marshals of the same
// state are byte-identical (the -metrics-out files feed byte-level diffing in
// tests and CI).
func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"b_total", "a_total", "z_total"} {
		r.Counter(n).Add(3)
	}
	r.Gauge("g1").Set(4)
	r.Histogram("h_ns").Observe(99)
	r.Func("ratio", func() float64 { return 1.5 })
	b1, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("snapshot encoding not deterministic:\n%s\n%s", b1, b2)
	}
}

// TestMergePoolsMetrics: merging worker snapshots must behave like the pooled
// run — counters and histogram buckets add, gauges keep the max.
func TestMergePoolsMetrics(t *testing.T) {
	w1, w2 := NewRegistry(), NewRegistry()
	w1.Counter("c_total").Add(3)
	w2.Counter("c_total").Add(4)
	w1.Gauge("hwm").Set(10)
	w2.Gauge("hwm").Set(25)
	w1.Histogram("h_ns").Observe(100)
	w2.Histogram("h_ns").Observe(100)
	w2.Histogram("h_ns").Observe(1 << 30)
	w1.SetValue(`rate{worker="w1"}`, 120.5)
	w2.SetValue(`rate{worker="w2"}`, 99.5)
	w1.SetValue("shared", 3)
	w2.SetValue("shared", 8)

	agg := NewRegistry()
	if err := agg.Merge(w1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := agg.Merge(w2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if v := agg.Counter("c_total").Value(); v != 7 {
		t.Fatalf("merged counter = %d, want 7", v)
	}
	if v := agg.Gauge("hwm").Value(); v != 25 {
		t.Fatalf("merged gauge = %d, want 25", v)
	}
	h := agg.Histogram("h_ns")
	if h.Count() != 3 || h.Sum() != 200+1<<30 {
		t.Fatalf("merged histogram Count=%d Sum=%d", h.Count(), h.Sum())
	}
	vals := agg.Snapshot().Values
	if vals[`rate{worker="w1"}`] != 120.5 || vals[`rate{worker="w2"}`] != 99.5 {
		t.Fatalf("labeled static values lost in merge: %v", vals)
	}
	if vals["shared"] != 8 {
		t.Fatalf("shared static value = %v, want max 8", vals["shared"])
	}
}

// TestSetValueSnapshot: static values appear next to Func gauges, and a Func
// registered under the same name wins at collection.
func TestSetValueSnapshot(t *testing.T) {
	r := NewRegistry()
	r.SetValue("static", 4.5)
	r.SetValue("both", 1)
	r.Func("both", func() float64 { return 2 })
	vals := r.Snapshot().Values
	if vals["static"] != 4.5 {
		t.Fatalf("static value = %v, want 4.5", vals["static"])
	}
	if vals["both"] != 2 {
		t.Fatalf("func did not win over static: %v", vals["both"])
	}
}

func TestMergeRejectsCorruptSnapshots(t *testing.T) {
	cases := []Snapshot{
		{Histograms: map[string]HistogramSnapshot{"h": {SubBits: 99, Count: 1, Buckets: [][2]int64{{0, 1}}}}},
		{Histograms: map[string]HistogramSnapshot{"h": {SubBits: histSubBits, Count: 1, Buckets: [][2]int64{{-1, 1}}}}},
		{Histograms: map[string]HistogramSnapshot{"h": {SubBits: histSubBits, Count: 1, Buckets: [][2]int64{{histBuckets, 1}}}}},
		{Histograms: map[string]HistogramSnapshot{"h": {SubBits: histSubBits, Count: 1, Buckets: [][2]int64{{0, -1}}}}},
		{Histograms: map[string]HistogramSnapshot{"h": {SubBits: histSubBits, Count: 5, Buckets: [][2]int64{{0, 1}}}}},
	}
	for i, s := range cases {
		if err := NewRegistry().Merge(&s); err == nil {
			t.Fatalf("case %d: corrupt snapshot merged without error", i)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`flexvc_sim_shard_busy_ns_total{shard="1"}`).Add(10)
	r.Counter(`flexvc_sim_shard_busy_ns_total{shard="0"}`).Add(20)
	r.Gauge("flexvc_sim_event_wheel_depth_hwm").Set(42)
	r.Func("flexvc_sim_shard_imbalance_ratio", func() float64 { return 2.0 })
	h := r.Histogram("flexvc_results_put_latency_ns")
	h.Observe(10)
	h.Observe(10)
	h.Observe(1 << 20)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE flexvc_sim_shard_busy_ns_total counter\n",
		`flexvc_sim_shard_busy_ns_total{shard="0"} 20` + "\n",
		`flexvc_sim_shard_busy_ns_total{shard="1"} 10` + "\n",
		"# TYPE flexvc_sim_event_wheel_depth_hwm gauge\n",
		"flexvc_sim_event_wheel_depth_hwm 42\n",
		"flexvc_sim_shard_imbalance_ratio 2\n",
		"# TYPE flexvc_results_put_latency_ns histogram\n",
		`flexvc_results_put_latency_ns_bucket{le="10"} 2` + "\n",
		`flexvc_results_put_latency_ns_bucket{le="+Inf"} 3` + "\n",
		"flexvc_results_put_latency_ns_sum 1048596\n",
		"flexvc_results_put_latency_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Labeled series of one family sort together under one TYPE line.
	if strings.Count(out, "# TYPE flexvc_sim_shard_busy_ns_total") != 1 {
		t.Fatalf("family TYPE line not deduplicated:\n%s", out)
	}
	// Byte-determinism across scrapes of unchanged metrics.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("prometheus exposition not deterministic")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(11)
	r.Histogram("h_ns").Observe(500)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteSnapshotFile(r, path); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["c_total"] != 11 || s.Histograms["h_ns"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
	// A nil registry still writes a (valid, empty) snapshot file.
	if err := WriteSnapshotFile(nil, path); err != nil {
		t.Fatal(err)
	}
	if s, err = ReadSnapshotFile(path); err != nil || len(s.Counters) != 0 {
		t.Fatalf("nil-registry snapshot: %+v err %v", s, err)
	}
	if _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("reading a missing snapshot did not error")
	}
}

// TestConcurrentAccess hammers one registry from many goroutines; run with
// -race this verifies the atomics carry the whole synchronization burden.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("hwm")
			h := r.Histogram("h_ns")
			for j := int64(0); j < 1000; j++ {
				c.Inc()
				g.SetMax(id*1000 + j)
				h.Observe(j)
			}
		}(int64(i))
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	if v := r.Counter("c_total").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("hwm").Value(); v != 7999 {
		t.Fatalf("gauge hwm = %d, want 7999", v)
	}
	if v := r.Histogram("h_ns").Count(); v != 8000 {
		t.Fatalf("histogram count = %d, want 8000", v)
	}
}
