// Package obs is the dependency-free observability layer: a metrics registry
// of atomic counters, gauges and fixed-bucket timing histograms with
// Prometheus-text and JSON exposition.
//
// The design contract is that instrumentation must never perturb simulated
// state. Two properties enforce it:
//
//   - A disabled registry is a nil pointer. Every method on Registry, Counter,
//     Gauge and Histogram is nil-receiver-safe, so the hot path guards cost a
//     single pointer comparison and the disabled path allocates nothing.
//   - An enabled registry only *observes*: it holds no simulated state, it is
//     excluded from config fingerprints, checkpoints and exports
//     (config.Config carries it under `json:"-"`), and the sweep tests
//     byte-compare metrics-on vs metrics-off exports to lock the contract.
//
// Metric names follow the Prometheus convention (`flexvc_<layer>_<what>_<unit>`,
// labels baked into the name string, e.g. `flexvc_sim_shard_busy_ns_total{shard="3"}`).
// Names are formatted once at registration, never on the hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the current value (a high-water
// mark). No-op on a nil receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add adjusts the gauge by d (may be negative). No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: the same HDR-style log-linear scheme as
// internal/stats.Histogram, shrunk for nanosecond timings — values below 32
// are exact, every power-of-two octave above is split into 16 linear
// sub-buckets (relative bucket width ≤ 1/16), and the 59 octaves cover the
// full non-negative int64 range with no clamping.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32: exact region, one bucket per value
	histHalf     = histSubCount / 2 // sub-buckets per octave above the exact region
	histOctaves  = 58               // covers every positive int64 (bits.Len64 <= 63)
	histBuckets  = histSubCount + histOctaves*histHalf
)

// bucketIndex maps a sample to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubCount {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - histSubBits // 1..58
	return histSubCount + (shift-1)*histHalf + int(v>>uint(shift)) - histHalf
}

// bucketUpper returns the largest value mapping to bucket i (its inclusive
// upper bound, the Prometheus `le` boundary).
func bucketUpper(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	shift := (i-histSubCount)/histHalf + 1
	sub := (i-histSubCount)%histHalf + histHalf
	u := (uint64(sub)+1)<<uint(shift) - 1
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// Histogram is a fixed-bucket timing histogram safe for concurrent Observe.
// Samples are int64 (by convention nanoseconds, suffix the name `_ns`).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Since records the nanoseconds elapsed from start. No-op on a nil receiver
// (and then does not even read the clock).
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of recorded samples (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all recorded samples (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. A nil *Registry is the disabled state: every method
// no-ops (returning nil metric handles, which themselves no-op), so callers
// thread one pointer through the stack and never branch on an "enabled" flag.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
	values   map[string]float64
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
		values:   map[string]float64{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil on
// a nil registry (a nil *Counter is itself a no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Func registers a derived gauge evaluated at collection time (Snapshot /
// WritePrometheus) — e.g. a ratio computed from other metrics. Re-registering
// a name replaces the callback. No-op on a nil registry.
func (r *Registry) Func(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// SetValue records a static derived float value under name (e.g. an
// end-of-run rate the producer computed once). It appears in snapshots next
// to the Func gauges; a Func registered under the same name wins at
// collection. Unlike Func values, static values survive Merge (maximum
// semantics, like gauges) — give each producer a distinguishing label so
// cross-process aggregation keeps every series. No-op on a nil registry.
func (r *Registry) SetValue(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.values[name] = v
}

// HistogramSnapshot is the serialized form of one histogram: sparse ascending
// (bucket index, count) pairs plus the running count and sum. The bucket
// layout is pinned by SubBits so decoding a foreign layout fails loudly.
type HistogramSnapshot struct {
	SubBits int        `json:"sub_bits"`
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, serializable to JSON. Maps
// marshal with sorted keys, so the encoding is deterministic for fixed metric
// values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Values     map[string]float64           `json:"values,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every metric. Func gauges are
// evaluated outside the registry lock (they may read other metrics). Returns
// an empty snapshot on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			hs := HistogramSnapshot{SubBits: histSubBits, Count: h.Count(), Sum: h.Sum()}
			for i := range h.counts {
				if c := h.counts[i].Load(); c != 0 {
					hs.Buckets = append(hs.Buckets, [2]int64{int64(i), c})
				}
			}
			s.Histograms[n] = hs
		}
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for n, fn := range r.funcs {
		funcs[n] = fn
	}
	if len(r.values) > 0 {
		s.Values = make(map[string]float64, len(r.values)+len(funcs))
		for n, v := range r.values {
			s.Values[n] = v
		}
	}
	r.mu.Unlock()
	if len(funcs) > 0 {
		if s.Values == nil {
			s.Values = make(map[string]float64, len(funcs))
		}
		for n, fn := range funcs {
			s.Values[n] = fn()
		}
	}
	return s
}

// Merge folds a snapshot into the registry: counters and histogram buckets
// add, gauges and static values take the maximum (the high-water
// interpretation — the only one that aggregates meaningfully across
// processes; give per-producer series distinguishing labels to keep them
// apart). This is how campaignd's coordinator and server aggregate the
// snapshots their worker processes report. No-op on a nil registry or
// snapshot.
func (r *Registry) Merge(s *Snapshot) error {
	if r == nil || s == nil {
		return nil
	}
	for n, v := range s.Counters {
		r.Counter(n).Add(v)
	}
	for n, v := range s.Gauges {
		r.Gauge(n).SetMax(v)
	}
	r.mu.Lock()
	for n, v := range s.Values {
		if cur, ok := r.values[n]; !ok || v > cur {
			r.values[n] = v
		}
	}
	r.mu.Unlock()
	for n, hs := range s.Histograms {
		if hs.SubBits != histSubBits {
			return fmt.Errorf("obs: histogram %q bucket layout sub_bits=%d, this build uses %d", n, hs.SubBits, histSubBits)
		}
		h := r.Histogram(n)
		var sum, cnt int64
		for _, b := range hs.Buckets {
			i, c := b[0], b[1]
			if i < 0 || i >= histBuckets {
				return fmt.Errorf("obs: histogram %q bucket index %d outside [0,%d)", n, i, histBuckets)
			}
			if c < 0 {
				return fmt.Errorf("obs: histogram %q bucket %d has negative count %d", n, i, c)
			}
			h.counts[i].Add(c)
			cnt += c
		}
		if cnt != hs.Count {
			return fmt.Errorf("obs: histogram %q count %d does not match bucket sum %d", n, hs.Count, cnt)
		}
		sum = hs.Sum
		h.count.Add(hs.Count)
		h.sum.Add(sum)
	}
	return nil
}

// WriteJSON writes the indented JSON snapshot, the `-metrics-out` file
// format.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// splitName separates a metric name into its family (the part before any
// `{label}` suffix) and the label body (without braces, empty if none).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, derived Func values (as gauges)
// and histograms with cumulative `le` buckets. Output is sorted by family
// then series so repeated scrapes of unchanged metrics are byte-identical.
// Writes nothing on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()

	type series struct{ name, text string }
	families := map[string]string{} // family -> TYPE
	var all []series

	add := func(name, typ, text string) {
		fam, _ := splitName(name)
		families[fam] = typ
		all = append(all, series{name, text})
	}
	for n, v := range s.Counters {
		add(n, "counter", fmt.Sprintf("%s %d\n", n, v))
	}
	for n, v := range s.Gauges {
		add(n, "gauge", fmt.Sprintf("%s %d\n", n, v))
	}
	for n, v := range s.Values {
		add(n, "gauge", fmt.Sprintf("%s %g\n", n, v))
	}
	for n, hs := range s.Histograms {
		fam, labels := splitName(n)
		var sb strings.Builder
		var cum int64
		for _, b := range hs.Buckets {
			cum += b[1]
			le := fmt.Sprintf("le=\"%d\"", bucketUpper(int(b[0])))
			if labels != "" {
				le = labels + "," + le
			}
			fmt.Fprintf(&sb, "%s_bucket{%s} %d\n", fam, le, cum)
		}
		inf := `le="+Inf"`
		if labels != "" {
			inf = labels + "," + inf
		}
		fmt.Fprintf(&sb, "%s_bucket{%s} %d\n", fam, inf, hs.Count)
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&sb, "%s_sum%s %d\n", fam, suffix, hs.Sum)
		fmt.Fprintf(&sb, "%s_count%s %d\n", fam, suffix, hs.Count)
		families[fam] = "histogram"
		all = append(all, series{n, sb.String()})
	}

	sort.Slice(all, func(i, j int) bool {
		fi, _ := splitName(all[i].name)
		fj, _ := splitName(all[j].name)
		if fi != fj {
			return fi < fj
		}
		return all[i].name < all[j].name
	})
	lastFam := ""
	for _, se := range all {
		fam, _ := splitName(se.name)
		if fam != lastFam {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, families[fam]); err != nil {
				return err
			}
			lastFam = fam
		}
		if _, err := io.WriteString(w, se.text); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshotFile writes the JSON snapshot to path (0644). A convenience
// for the `-metrics-out` flags; no-op (writing an empty snapshot) is still
// performed on a nil registry so the output file always exists when the flag
// was given.
func WriteSnapshotFile(r *Registry, path string) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSnapshotFile loads a JSON snapshot written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("obs: parsing snapshot %s: %w", path, err)
	}
	return &s, nil
}
