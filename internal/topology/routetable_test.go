package topology

import (
	"math/rand"
	"testing"

	"flexvc/internal/packet"
)

// tableTopologies returns matching (fresh, precomputed) topology pairs for
// every supported topology shape and experiment scale. The fresh instance
// answers every query on the fly; the precomputed one through its tables.
func tableTopologies(t *testing.T) []struct {
	name         string
	plain, fast  Topology
	wantPair     bool
	groupedPlain *Dragonfly
	groupedFast  *Dragonfly
} {
	t.Helper()
	var out []struct {
		name         string
		plain, fast  Topology
		wantPair     bool
		groupedPlain *Dragonfly
		groupedFast  *Dragonfly
	}
	dfly := func(name string, p, a, h, budget int, wantPair bool) {
		plain, err := NewDragonfly(p, a, h)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewDragonfly(p, a, h)
		if err != nil {
			t.Fatal(err)
		}
		if got := fast.PrecomputeTables(budget); got != wantPair {
			t.Fatalf("%s: PrecomputeTables(%d) = %v, want %v", name, budget, got, wantPair)
		}
		out = append(out, struct {
			name         string
			plain, fast  Topology
			wantPair     bool
			groupedPlain *Dragonfly
			groupedFast  *Dragonfly
		}{name, plain, fast, wantPair, plain, fast})
	}
	fbfly := func(name string, k, p, budget int, wantPair bool) {
		plain, err := NewFlattenedButterfly2D(k, p)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewFlattenedButterfly2D(k, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := fast.PrecomputeTables(budget); got != wantPair {
			t.Fatalf("%s: PrecomputeTables(%d) = %v, want %v", name, budget, got, wantPair)
		}
		out = append(out, struct {
			name         string
			plain, fast  Topology
			wantPair     bool
			groupedPlain *Dragonfly
			groupedFast  *Dragonfly
		}{name, plain, fast, wantPair, nil, nil})
	}

	dfly("dragonfly-tiny", 1, 2, 1, 0, true)
	dfly("dragonfly-small", 2, 4, 2, 0, true)
	dfly("dragonfly-medium", 4, 8, 4, 0, true)
	// Gated: a 1-byte budget rejects the pair tables, so only the per-port
	// tables are active and pair queries fall back to the on-the-fly path.
	dfly("dragonfly-small-gated", 2, 4, 2, 1, false)
	fbfly("fbfly-4x4", 4, 2, 0, true)
	fbfly("fbfly-8x8", 8, 8, 0, true)
	fbfly("fbfly-gated", 4, 2, 1, false)
	return out
}

// TestRouteTableEquivalence is the table-vs-on-the-fly equivalence property:
// for every topology shape and scale, every routing query answered through
// the precomputed tables must be bit-identical to the on-the-fly computation.
// Pairs are checked exhaustively below 100 routers and by random sampling
// above.
func TestRouteTableEquivalence(t *testing.T) {
	for _, tc := range tableTopologies(t) {
		t.Run(tc.name, func(t *testing.T) {
			plain, fast := tc.plain, tc.fast
			n := plain.NumRouters()
			rng := rand.New(rand.NewSource(7))

			pairs := make([][2]packet.RouterID, 0, n*n)
			if n <= 100 {
				for from := 0; from < n; from++ {
					for to := 0; to < n; to++ {
						pairs = append(pairs, [2]packet.RouterID{packet.RouterID(from), packet.RouterID(to)})
					}
				}
			} else {
				for i := 0; i < 20000; i++ {
					pairs = append(pairs, [2]packet.RouterID{
						packet.RouterID(rng.Intn(n)), packet.RouterID(rng.Intn(n)),
					})
				}
			}

			for _, pr := range pairs {
				from, to := pr[0], pr[1]
				if got, want := fast.NextMinimalPort(from, to), plain.NextMinimalPort(from, to); got != want {
					t.Fatalf("NextMinimalPort(%d,%d) = %d, want %d", from, to, got, want)
				}
				if got, want := fast.MinimalHops(from, to), plain.MinimalHops(from, to); got != want {
					t.Fatalf("MinimalHops(%d,%d) = %+v, want %+v", from, to, got, want)
				}
				if got, want := MinimalSeq(fast, from, to), MinimalSeq(plain, from, to); got != want {
					t.Fatalf("MinimalSeq(%d,%d) differs", from, to)
				}
			}

			for r := 0; r < n; r++ {
				rid := packet.RouterID(r)
				for p := 0; p < plain.Radix(); p++ {
					if got, want := fast.PortKind(rid, p), plain.PortKind(rid, p); got != want {
						t.Fatalf("PortKind(%d,%d) = %v, want %v", r, p, got, want)
					}
					if plain.PortKind(rid, p) == Terminal {
						continue
					}
					gr, gp := fast.Neighbor(rid, p)
					wr, wp := plain.Neighbor(rid, p)
					if gr != wr || gp != wp {
						t.Fatalf("Neighbor(%d,%d) = (%d,%d), want (%d,%d)", r, p, gr, gp, wr, wp)
					}
				}
			}

			if tc.groupedPlain != nil {
				g := tc.groupedPlain.NumGroups()
				for fg := 0; fg < g; fg++ {
					for tg := 0; tg < g; tg++ {
						gr, gp, gok := tc.groupedFast.MinimalGlobalLink(fg, tg)
						wr, wp, wok := tc.groupedPlain.MinimalGlobalLink(fg, tg)
						if gr != wr || gp != wp || gok != wok {
							t.Fatalf("MinimalGlobalLink(%d,%d) = (%d,%d,%v), want (%d,%d,%v)",
								fg, tg, gr, gp, gok, wr, wp, wok)
						}
					}
				}
			}

			if err := Validate(fast); err != nil {
				t.Fatalf("precomputed topology fails validation: %v", err)
			}
		})
	}
}

// TestRouteTableMemoryGate pins the gate arithmetic: the paper-scale
// Dragonfly must be rejected by the default budget while small and medium
// scales are admitted, and re-running PrecomputeTables with a different
// budget installs or removes the pair tables accordingly.
func TestRouteTableMemoryGate(t *testing.T) {
	paper, err := NewBalancedDragonfly(8) // 2,064 routers
	if err != nil {
		t.Fatal(err)
	}
	if paper.PrecomputeTables(0) {
		t.Fatalf("paper-scale pair tables (%d routers) must not fit the default budget", paper.NumRouters())
	}
	if paper.tables == nil || paper.tables.nbrRouter == nil {
		t.Fatal("per-port tables must be built even when the pair tables are gated")
	}
	// A budget large enough for the pair tables admits them.
	need := paper.NumRouters() * paper.NumRouters() * pairEntryBytes
	if !paper.PrecomputeTables(need) {
		t.Fatalf("budget of %d bytes should admit the pair tables", need)
	}
	// A negative budget disables precomputation entirely (the
	// config.RouteTableBytes convention), removing installed tables.
	if paper.PrecomputeTables(-1) {
		t.Fatal("negative budget must not install pair tables")
	}
	if paper.tables != nil {
		t.Fatal("negative budget must remove previously installed tables")
	}

	small, err := NewDragonfly(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !small.PrecomputeTables(0) {
		t.Fatal("small-scale pair tables must fit the default budget")
	}
	medium, err := NewDragonfly(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !medium.PrecomputeTables(0) {
		t.Fatal("medium-scale pair tables must fit the default budget")
	}
}
