package topology

import (
	"fmt"

	"flexvc/internal/packet"
)

// validate performs structural sanity checks shared by all topologies.
func validate(t Topology) error {
	if t.NumRouters() <= 0 || t.NumNodes() <= 0 {
		return fmt.Errorf("%s: empty topology", t.Name())
	}
	if t.NumNodes() != t.NumRouters()*t.NodesPerRouter() {
		return fmt.Errorf("%s: node count %d does not match routers(%d) x nodes/router(%d)",
			t.Name(), t.NumNodes(), t.NumRouters(), t.NodesPerRouter())
	}
	if err := validateTerminals(t); err != nil {
		return err
	}
	if err := validateLinks(t); err != nil {
		return err
	}
	return validateMinimalRouting(t)
}

// validateTerminals checks the node <-> router <-> terminal-port mapping.
func validateTerminals(t Topology) error {
	for r := 0; r < t.NumRouters(); r++ {
		rid := packet.RouterID(r)
		for i := 0; i < t.NodesPerRouter(); i++ {
			n := t.NodeAt(rid, i)
			if int(n) < 0 || int(n) >= t.NumNodes() {
				return fmt.Errorf("%s: router %d node slot %d maps to out-of-range node %d", t.Name(), r, i, n)
			}
			if t.RouterOfNode(n) != rid {
				return fmt.Errorf("%s: node %d maps back to router %d, expected %d", t.Name(), n, t.RouterOfNode(n), rid)
			}
			p := t.TerminalPort(rid, n)
			if p < 0 || p >= t.Radix() || t.PortKind(rid, p) != Terminal {
				return fmt.Errorf("%s: node %d terminal port %d of router %d is not a terminal port", t.Name(), n, p, r)
			}
		}
	}
	return nil
}

// validateLinks checks that every non-terminal link is symmetric.
func validateLinks(t Topology) error {
	for r := 0; r < t.NumRouters(); r++ {
		rid := packet.RouterID(r)
		for p := 0; p < t.Radix(); p++ {
			if t.PortKind(rid, p) == Terminal {
				continue
			}
			nr, np := t.Neighbor(rid, p)
			if int(nr) < 0 || int(nr) >= t.NumRouters() {
				return fmt.Errorf("%s: router %d port %d connects to out-of-range router %d", t.Name(), r, p, nr)
			}
			if nr == rid {
				return fmt.Errorf("%s: router %d port %d is a self-loop", t.Name(), r, p)
			}
			if np < 0 || np >= t.Radix() || t.PortKind(nr, np) == Terminal {
				return fmt.Errorf("%s: router %d port %d arrives at invalid port %d of router %d", t.Name(), r, p, np, nr)
			}
			br, bp := t.Neighbor(nr, np)
			if br != rid || bp != p {
				return fmt.Errorf("%s: link asymmetry: %d:%d -> %d:%d -> %d:%d", t.Name(), r, p, nr, np, br, bp)
			}
			if t.PortKind(rid, p) != t.PortKind(nr, np) {
				return fmt.Errorf("%s: link kind mismatch between %d:%d (%s) and %d:%d (%s)",
					t.Name(), r, p, t.PortKind(rid, p), nr, np, t.PortKind(nr, np))
			}
		}
	}
	return nil
}

// validateMinimalRouting follows NextMinimalPort from every router toward a
// sample of destinations and checks that it converges within the diameter,
// with hop counts consistent with MinimalHops.
func validateMinimalRouting(t Topology) error {
	diam := t.Diameter().Total()
	n := t.NumRouters()
	// For large networks, sample destinations to keep validation cheap.
	step := 1
	if n > 64 {
		step = n / 64
	}
	for src := 0; src < n; src += step {
		for dst := 0; dst < n; dst += step {
			if err := checkMinimalPath(t, packet.RouterID(src), packet.RouterID(dst), diam); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkMinimalPath(t Topology, src, dst packet.RouterID, diam int) error {
	want := t.MinimalHops(src, dst)
	cur := src
	var got HopCount
	for steps := 0; cur != dst; steps++ {
		if steps > diam {
			return fmt.Errorf("%s: minimal route %d->%d did not converge within diameter %d", t.Name(), src, dst, diam)
		}
		p := t.NextMinimalPort(cur, dst)
		if p < 0 {
			return fmt.Errorf("%s: NextMinimalPort(%d,%d) returned -1 before reaching destination", t.Name(), cur, dst)
		}
		switch t.PortKind(cur, p) {
		case Local:
			got.Local++
		case Global:
			got.Global++
		default:
			return fmt.Errorf("%s: minimal route %d->%d selected terminal port %d", t.Name(), src, dst, p)
		}
		cur, _ = t.Neighbor(cur, p)
	}
	if got != want {
		return fmt.Errorf("%s: minimal route %d->%d took %+v hops, MinimalHops reports %+v", t.Name(), src, dst, got, want)
	}
	if got.Total() > diam {
		return fmt.Errorf("%s: minimal route %d->%d longer than diameter", t.Name(), src, dst)
	}
	return nil
}
