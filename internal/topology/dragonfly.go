package topology

import (
	"fmt"

	"flexvc/internal/packet"
)

// Dragonfly is the canonical dragonfly topology of Kim et al. (ISCA 2008) as
// used in the FlexVC evaluation: groups of A routers connected as a complete
// graph by local links, and groups connected as a complete graph by global
// links. Each router attaches P computing nodes and owns H global links.
//
// With the balanced configuration A = 2H = 2P the network has A·H+1 groups.
// The paper's configuration is P=8, A=16, H=8 (31-port routers, 129 groups,
// 2,064 routers, 16,512 nodes); scaled-down instances with the same structure
// are used for tests and benches.
//
// Port layout of every router (radix = P + A-1 + H):
//
//	[0, P)            terminal (injection/consumption) ports, one per node
//	[P, P+A-1)        local ports, one per other router in the group
//	[P+A-1, radix)    global ports
//
// Global wiring ("consecutive" arrangement): each group owns A·H global
// channels numbered gc = pos·H + j where pos is the router position within
// the group and j its global port index. Channel gc of group G connects to
// group D = gc if gc < G, else gc+1 (skipping G itself). The reverse channel
// in D is G if G < D, else G-1. This yields exactly one global link between
// every pair of groups.
type Dragonfly struct {
	// P is the number of nodes per router, A the number of routers per
	// group and H the number of global links per router.
	P, A, H int

	numGroups  int
	numRouters int
	numNodes   int
	radix      int

	// tables holds the precomputed route tables once PrecomputeTables has
	// run; nil means every query is computed on the fly. See routetable.go.
	tables *routeTables
}

// NewDragonfly builds a dragonfly with p nodes per router, a routers per
// group and h global links per router. The number of groups is the maximum
// a·h+1 so the global graph is complete.
func NewDragonfly(p, a, h int) (*Dragonfly, error) {
	if p < 1 || a < 1 || h < 1 {
		return nil, fmt.Errorf("dragonfly: parameters must be positive, got p=%d a=%d h=%d", p, a, h)
	}
	d := &Dragonfly{P: p, A: a, H: h}
	d.numGroups = a*h + 1
	d.numRouters = d.numGroups * a
	d.numNodes = d.numRouters * p
	d.radix = p + (a - 1) + h
	return d, nil
}

// NewBalancedDragonfly builds a balanced dragonfly (a = 2h, p = h) from the
// global-link count h. h=8 reproduces the paper's system.
func NewBalancedDragonfly(h int) (*Dragonfly, error) {
	return NewDragonfly(h, 2*h, h)
}

// Name implements Topology.
func (d *Dragonfly) Name() string {
	return fmt.Sprintf("dragonfly(p=%d,a=%d,h=%d,groups=%d)", d.P, d.A, d.H, d.numGroups)
}

// NumRouters implements Topology.
func (d *Dragonfly) NumRouters() int { return d.numRouters }

// NumNodes implements Topology.
func (d *Dragonfly) NumNodes() int { return d.numNodes }

// NodesPerRouter implements Topology.
func (d *Dragonfly) NodesPerRouter() int { return d.P }

// Radix implements Topology.
func (d *Dragonfly) Radix() int { return d.radix }

// NumGroups implements Topology.
func (d *Dragonfly) NumGroups() int { return d.numGroups }

// GroupOf implements Topology.
func (d *Dragonfly) GroupOf(r packet.RouterID) int { return int(r) / d.A }

// PosInGroup returns the position of a router within its group.
func (d *Dragonfly) PosInGroup(r packet.RouterID) int { return int(r) % d.A }

// RouterInGroup returns the router at position pos of group g.
func (d *Dragonfly) RouterInGroup(g, pos int) packet.RouterID {
	return packet.RouterID(g*d.A + pos)
}

// RouterOfNode implements Topology.
func (d *Dragonfly) RouterOfNode(n packet.NodeID) packet.RouterID {
	return packet.RouterID(int(n) / d.P)
}

// NodeAt implements Topology.
func (d *Dragonfly) NodeAt(r packet.RouterID, i int) packet.NodeID {
	return packet.NodeID(int(r)*d.P + i)
}

// TerminalPort implements Topology.
func (d *Dragonfly) TerminalPort(r packet.RouterID, n packet.NodeID) int {
	return int(n) - int(r)*d.P
}

// Port-layout helpers.

// FirstLocalPort returns the index of the first local port.
func (d *Dragonfly) FirstLocalPort() int { return d.P }

// FirstGlobalPort returns the index of the first global port.
func (d *Dragonfly) FirstGlobalPort() int { return d.P + d.A - 1 }

// PortKind implements Topology.
func (d *Dragonfly) PortKind(_ packet.RouterID, p int) PortKind {
	switch {
	case p < d.P:
		return Terminal
	case p < d.P+d.A-1:
		return Local
	default:
		return Global
	}
}

// LocalPortTo returns the local port of router `from` that connects to router
// `to`, which must be a different router of the same group.
func (d *Dragonfly) LocalPortTo(from, to packet.RouterID) int {
	fp, tp := d.PosInGroup(from), d.PosInGroup(to)
	// Local port k of a router at position fp connects to the router at
	// position k if k < fp, else k+1 (skipping itself).
	if tp < fp {
		return d.FirstLocalPort() + tp
	}
	return d.FirstLocalPort() + tp - 1
}

// localNeighborPos returns the in-group position reached through local port
// index li (0-based within the local port range) of a router at position pos.
func (d *Dragonfly) localNeighborPos(pos, li int) int {
	if li < pos {
		return li
	}
	return li + 1
}

// globalChannelToGroup returns the global channel index (0..A·H-1) of group g
// that connects to group dg.
func (d *Dragonfly) globalChannelToGroup(g, dg int) int {
	if dg < g {
		return dg
	}
	return dg - 1
}

// groupOfGlobalChannel returns the destination group of channel gc of group g.
func (d *Dragonfly) groupOfGlobalChannel(g, gc int) int {
	if gc < g {
		return gc
	}
	return gc + 1
}

// GlobalPortToGroup returns, for a source group g and destination group dg,
// the router (by position in g) owning the global link to dg and the global
// port index on that router.
func (d *Dragonfly) GlobalPortToGroup(g, dg int) (pos, port int) {
	gc := d.globalChannelToGroup(g, dg)
	pos = gc / d.H
	port = d.FirstGlobalPort() + gc%d.H
	return pos, port
}

// Neighbor implements Topology.
func (d *Dragonfly) Neighbor(r packet.RouterID, p int) (packet.RouterID, int) {
	if t := d.tables; t != nil && p >= d.P {
		return t.neighbor(r, p)
	}
	g := d.GroupOf(r)
	pos := d.PosInGroup(r)
	switch d.PortKind(r, p) {
	case Local:
		li := p - d.FirstLocalPort()
		npos := d.localNeighborPos(pos, li)
		nr := d.RouterInGroup(g, npos)
		return nr, d.LocalPortTo(nr, r)
	case Global:
		gc := pos*d.H + (p - d.FirstGlobalPort())
		dg := d.groupOfGlobalChannel(g, gc)
		// Reverse channel in the destination group.
		rgc := d.globalChannelToGroup(dg, g)
		npos := rgc / d.H
		nport := d.FirstGlobalPort() + rgc%d.H
		return d.RouterInGroup(dg, npos), nport
	default:
		panic(fmt.Sprintf("dragonfly: Neighbor called on terminal port %d of router %d", p, r))
	}
}

// MinimalHops implements Topology. "Minimal" here is the hierarchical
// dragonfly minimal routing used by real systems and by the paper: an
// optional local hop in the source group to reach the router owning the
// global link to the destination group, the global hop, and an optional
// local hop in the destination group (l-g-l). Occasionally the raw graph
// distance is shorter (two global hops through a third group), but such
// paths are not used by MIN routing and are treated as non-minimal.
func (d *Dragonfly) MinimalHops(from, to packet.RouterID) HopCount {
	if t := d.tables; t != nil && t.minHops != nil {
		return unpackHops(t.minHops[int(from)*t.n+int(to)])
	}
	if from == to {
		return HopCount{}
	}
	fg, tg := d.GroupOf(from), d.GroupOf(to)
	if fg == tg {
		return HopCount{Local: 1}
	}
	var hc HopCount
	hc.Global = 1
	srcPos, _ := d.GlobalPortToGroup(fg, tg)
	if srcPos != d.PosInGroup(from) {
		hc.Local++
	}
	dstPos, _ := d.GlobalPortToGroup(tg, fg)
	if dstPos != d.PosInGroup(to) {
		hc.Local++
	}
	return hc
}

// NextMinimalPort implements Topology.
func (d *Dragonfly) NextMinimalPort(from, to packet.RouterID) int {
	if t := d.tables; t != nil && t.minPort != nil {
		return int(t.minPort[int(from)*t.n+int(to)])
	}
	if from == to {
		return -1
	}
	fg, tg := d.GroupOf(from), d.GroupOf(to)
	if fg == tg {
		return d.LocalPortTo(from, to)
	}
	srcPos, gport := d.GlobalPortToGroup(fg, tg)
	if srcPos == d.PosInGroup(from) {
		return gport
	}
	return d.LocalPortTo(from, d.RouterInGroup(fg, srcPos))
}

// Diameter implements Topology: l-g-l, i.e. 2 local hops and 1 global hop.
func (d *Dragonfly) Diameter() HopCount {
	hc := HopCount{}
	if d.A > 1 {
		hc.Local = 2
	}
	if d.numGroups > 1 {
		hc.Global = 1
	}
	return hc
}

// MaxValiantHops implements Topology: the concatenation of two minimal
// paths, l-g-l-l-g-l (4 local, 2 global hops in the worst case).
func (d *Dragonfly) MaxValiantHops() HopCount {
	dm := d.Diameter()
	return dm.Add(dm)
}

// MinimalGlobalLink returns, for a packet in group `fromGroup` destined to
// group `toGroup`, the router owning the minimal-path global link and the
// global port index on that router. ok is false when both groups coincide.
// Source-adaptive routing (Piggyback) uses this to look up the remotely
// sensed saturation state of the minimal global link.
func (d *Dragonfly) MinimalGlobalLink(fromGroup, toGroup int) (router packet.RouterID, port int, ok bool) {
	if t := d.tables; t != nil && t.glRouter != nil {
		i := fromGroup*d.numGroups + toGroup
		return packet.RouterID(t.glRouter[i]), int(t.glPort[i]), fromGroup != toGroup
	}
	if fromGroup == toGroup {
		return packet.InvalidRouter, -1, false
	}
	pos, p := d.GlobalPortToGroup(fromGroup, toGroup)
	return d.RouterInGroup(fromGroup, pos), p, true
}
