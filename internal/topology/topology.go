// Package topology defines the network topologies used in the FlexVC
// evaluation: the diameter-3 Dragonfly (the paper's evaluation platform) and
// a generic diameter-2 network (a 2-D Flattened Butterfly) used for the
// analytic tables and additional examples.
//
// A topology describes routers, the nodes attached to them, the port layout
// of every router and the wiring between ports. It also answers the minimal
// routing queries the routing algorithms need (how many local/global hops
// remain, which port leads minimally toward a destination), so the routing
// and deadlock-avoidance layers stay topology-agnostic.
package topology

import "flexvc/internal/packet"

// PortKind classifies router ports. Deadlock avoidance in networks with
// link-type restrictions (such as the Dragonfly) assigns separate VC
// sequences to local and global links.
type PortKind uint8

const (
	// Terminal ports connect routers to computing nodes (injection on the
	// way in, consumption on the way out).
	Terminal PortKind = iota
	// Local ports connect routers within a group (Dragonfly) or within a
	// dimension (Flattened Butterfly). Topologies without link-type
	// restrictions use Local for every router-to-router link.
	Local
	// Global ports connect different groups in hierarchical topologies.
	Global
)

// String implements fmt.Stringer.
func (k PortKind) String() string {
	switch k {
	case Terminal:
		return "terminal"
	case Local:
		return "local"
	case Global:
		return "global"
	default:
		return "unknown"
	}
}

// NumLinkKinds is the number of router-to-router link kinds (Local, Global).
const NumLinkKinds = 2

// HopCount carries the number of hops of each link kind in a (sub)path.
type HopCount struct {
	Local  int
	Global int
}

// Add returns the element-wise sum of two hop counts.
func (h HopCount) Add(o HopCount) HopCount {
	return HopCount{Local: h.Local + o.Local, Global: h.Global + o.Global}
}

// Total returns the total number of hops.
func (h HopCount) Total() int { return h.Local + h.Global }

// Of returns the count for the given link kind.
func (h HopCount) Of(k PortKind) int {
	if k == Global {
		return h.Global
	}
	return h.Local
}

// Max returns the element-wise maximum of two hop counts.
func (h HopCount) Max(o HopCount) HopCount {
	m := h
	if o.Local > m.Local {
		m.Local = o.Local
	}
	if o.Global > m.Global {
		m.Global = o.Global
	}
	return m
}

// Topology is the interface the simulator, routing algorithms and the FlexVC
// policy engine use to query the network structure.
type Topology interface {
	// Name returns a short human-readable identifier.
	Name() string

	// NumRouters returns the number of routers in the network.
	NumRouters() int
	// NumNodes returns the number of computing nodes.
	NumNodes() int
	// NodesPerRouter returns the number of nodes attached to each router.
	NodesPerRouter() int
	// Radix returns the number of ports per router (terminal + local + global).
	Radix() int

	// RouterOfNode returns the router a node attaches to.
	RouterOfNode(n packet.NodeID) packet.RouterID
	// NodeAt returns the i-th node attached to router r.
	NodeAt(r packet.RouterID, i int) packet.NodeID
	// TerminalPort returns the port of router r that connects to node n.
	TerminalPort(r packet.RouterID, n packet.NodeID) int

	// PortKind classifies port p of router r.
	PortKind(r packet.RouterID, p int) PortKind
	// Neighbor returns the router reached through port p of router r, and
	// the input port on that router the link arrives at. It must only be
	// called for Local or Global ports.
	Neighbor(r packet.RouterID, p int) (packet.RouterID, int)

	// GroupOf returns the group index of a router (0 for flat topologies).
	GroupOf(r packet.RouterID) int
	// NumGroups returns the number of groups (1 for flat topologies).
	NumGroups() int

	// MinimalHops returns the number of local and global hops on a minimal
	// path between two routers.
	MinimalHops(from, to packet.RouterID) HopCount
	// NextMinimalPort returns a port of `from` that lies on a minimal path
	// toward `to`. It returns -1 when from == to.
	NextMinimalPort(from, to packet.RouterID) int
	// Diameter returns the worst-case minimal hop count, split by link kind.
	Diameter() HopCount
	// MaxValiantHops returns the worst-case hop count of a Valiant path
	// (minimal to a random intermediate router, then minimal to the
	// destination), split by link kind.
	MaxValiantHops() HopCount
}

// Validate runs structural consistency checks on a topology and returns the
// first problem found, or nil. It verifies that links are symmetric, that
// terminal ports map back to their nodes, and that minimal routing converges.
func Validate(t Topology) error {
	return validate(t)
}
