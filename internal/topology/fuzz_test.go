package topology

import (
	"testing"

	"flexvc/internal/packet"
)

// fuzzCheckTopology runs the structural invariants shared by the fuzz
// targets on one topology instance: node/router/port round trips, link
// symmetry and minimal-path validity for the selected (node, port) probe.
func fuzzCheckTopology(t *testing.T, topo Topology, nodeSel uint32, portSel uint8) {
	t.Helper()
	n := topo.NumNodes()
	if n == 0 {
		return
	}
	node := packet.NodeID(int(nodeSel) % n)

	// Node <-> router <-> terminal-port round trip.
	r := topo.RouterOfNode(node)
	if r < 0 || int(r) >= topo.NumRouters() {
		t.Fatalf("RouterOfNode(%d) = %d out of range", node, r)
	}
	tp := topo.TerminalPort(r, node)
	if tp < 0 || tp >= topo.Radix() || topo.PortKind(r, tp) != Terminal {
		t.Fatalf("TerminalPort(%d,%d) = %d is not a terminal port", r, node, tp)
	}
	found := false
	for i := 0; i < topo.NodesPerRouter(); i++ {
		if topo.NodeAt(r, i) == node {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("node %d not listed by its router %d", node, r)
	}

	// Link symmetry: following a link and its reverse returns home, and both
	// endpoints agree on the link kind.
	p := int(portSel) % topo.Radix()
	if topo.PortKind(r, p) != Terminal {
		nr, np := topo.Neighbor(r, p)
		if nr == r {
			t.Fatalf("router %d port %d links to itself", r, p)
		}
		if topo.PortKind(nr, np) != topo.PortKind(r, p) {
			t.Fatalf("link kind asymmetric between (%d,%d) and (%d,%d)", r, p, nr, np)
		}
		br, bp := topo.Neighbor(nr, np)
		if br != r || bp != p {
			t.Fatalf("link not symmetric: (%d,%d) -> (%d,%d) -> (%d,%d)", r, p, nr, np, br, bp)
		}
	}

	// Minimal routing from this router to the router of another fuzzed node:
	// the walk must terminate within the declared hop count, and the hop-kind
	// sequence must match MinimalSeq.
	dst := topo.RouterOfNode(packet.NodeID((int(nodeSel) * 7919) % n))
	want := topo.MinimalHops(r, dst)
	seq := MinimalSeq(topo, r, dst)
	cur := r
	var walked HopCount
	for hop := 0; cur != dst; hop++ {
		if hop >= want.Total() {
			t.Fatalf("minimal walk %d->%d exceeds MinimalHops %+v", r, dst, want)
		}
		port := topo.NextMinimalPort(cur, dst)
		if port < 0 || topo.PortKind(cur, port) == Terminal {
			t.Fatalf("NextMinimalPort(%d,%d) = %d invalid", cur, dst, port)
		}
		kind := topo.PortKind(cur, port)
		if seq.At(walked.Total()) != kind {
			t.Fatalf("hop %d of %d->%d is %v, MinimalSeq says %v", walked.Total(), r, dst, kind, seq.At(walked.Total()))
		}
		if kind == Global {
			walked.Global++
		} else {
			walked.Local++
		}
		cur, _ = topo.Neighbor(cur, port)
	}
	if walked != want {
		t.Fatalf("minimal walk %d->%d took %+v hops, MinimalHops says %+v", r, dst, walked, want)
	}
	if seq.Len() != want.Total() {
		t.Fatalf("MinimalSeq length %d != MinimalHops total %d", seq.Len(), want.Total())
	}
}

// FuzzDragonflyIDs fuzzes the Dragonfly coordinate arithmetic: group/position
// round trips, node/port round trips, link symmetry and minimal-path
// validity, with and without precomputed tables (both must agree).
func FuzzDragonflyIDs(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(1), uint32(0), uint8(0))
	f.Add(uint8(2), uint8(4), uint8(2), uint32(17), uint8(3))
	f.Add(uint8(4), uint8(8), uint8(4), uint32(9001), uint8(11))
	f.Add(uint8(3), uint8(5), uint8(2), uint32(123456), uint8(250))
	f.Fuzz(func(t *testing.T, p, a, h uint8, nodeSel uint32, portSel uint8) {
		// Bound the geometry so a fuzzed instance stays small.
		pp, aa, hh := 1+int(p)%6, 1+int(a)%8, 1+int(h)%6
		plain, err := NewDragonfly(pp, aa, hh)
		if err != nil {
			t.Skip()
		}
		// Group/position round trip for the fuzzed router.
		r := packet.RouterID(int(nodeSel) % plain.NumRouters())
		if plain.RouterInGroup(plain.GroupOf(r), plain.PosInGroup(r)) != r {
			t.Fatalf("group/position round trip broken for router %d", r)
		}
		fuzzCheckTopology(t, plain, nodeSel, portSel)

		fast, err := NewDragonfly(pp, aa, hh)
		if err != nil {
			t.Fatal(err)
		}
		fast.PrecomputeTables(0)
		fuzzCheckTopology(t, fast, nodeSel, portSel)
	})
}

// FuzzFlattenedButterflyIDs is the flattened-butterfly counterpart.
func FuzzFlattenedButterflyIDs(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint32(0), uint8(0))
	f.Add(uint8(4), uint8(2), uint32(31), uint8(5))
	f.Add(uint8(8), uint8(8), uint32(512), uint8(200))
	f.Fuzz(func(t *testing.T, k, p uint8, nodeSel uint32, portSel uint8) {
		kk, pp := 2+int(k)%8, 1+int(p)%8
		plain, err := NewFlattenedButterfly2D(kk, pp)
		if err != nil {
			t.Skip()
		}
		r := packet.RouterID(int(nodeSel) % plain.NumRouters())
		row, col := plain.RowCol(r)
		if plain.RouterAt(row, col) != r {
			t.Fatalf("row/col round trip broken for router %d", r)
		}
		fuzzCheckTopology(t, plain, nodeSel, portSel)

		fast, err := NewFlattenedButterfly2D(kk, pp)
		if err != nil {
			t.Fatal(err)
		}
		fast.PrecomputeTables(0)
		fuzzCheckTopology(t, fast, nodeSel, portSel)
	})
}
