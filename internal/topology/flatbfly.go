package topology

import (
	"fmt"

	"flexvc/internal/packet"
)

// FlattenedButterfly2D is a two-dimensional Flattened Butterfly: K×K routers,
// each connected to every other router in its row and in its column. It is a
// diameter-2 network without topology-imposed link-type restrictions when
// adaptive (either-dimension-first) routing is allowed, so it serves as the
// "generic diameter-2 network" of the paper's Figures 1, 3 and 4 and
// Tables I and II. All router-to-router links are classified as Local.
//
// Port layout of every router (radix = P + 2·(K-1)):
//
//	[0, P)                    terminal ports
//	[P, P+K-1)                row links (same row, other columns)
//	[P+K-1, P+2(K-1))         column links (same column, other rows)
type FlattenedButterfly2D struct {
	// K is the routers per dimension, P the nodes per router.
	K, P int

	numRouters int
	numNodes   int
	radix      int

	// tables holds the precomputed route tables once PrecomputeTables has
	// run; nil means every query is computed on the fly. See routetable.go.
	tables *routeTables
}

// NewFlattenedButterfly2D builds a K×K flattened butterfly with p nodes per
// router.
func NewFlattenedButterfly2D(k, p int) (*FlattenedButterfly2D, error) {
	if k < 2 || p < 1 {
		return nil, fmt.Errorf("flattened butterfly: need k>=2 and p>=1, got k=%d p=%d", k, p)
	}
	f := &FlattenedButterfly2D{K: k, P: p}
	f.numRouters = k * k
	f.numNodes = f.numRouters * p
	f.radix = p + 2*(k-1)
	return f, nil
}

// Name implements Topology.
func (f *FlattenedButterfly2D) Name() string {
	return fmt.Sprintf("fbfly2d(k=%d,p=%d)", f.K, f.P)
}

// NumRouters implements Topology.
func (f *FlattenedButterfly2D) NumRouters() int { return f.numRouters }

// NumNodes implements Topology.
func (f *FlattenedButterfly2D) NumNodes() int { return f.numNodes }

// NodesPerRouter implements Topology.
func (f *FlattenedButterfly2D) NodesPerRouter() int { return f.P }

// Radix implements Topology.
func (f *FlattenedButterfly2D) Radix() int { return f.radix }

// NumGroups implements Topology. The flattened butterfly is flat: one group.
func (f *FlattenedButterfly2D) NumGroups() int { return 1 }

// GroupOf implements Topology.
func (f *FlattenedButterfly2D) GroupOf(packet.RouterID) int { return 0 }

// RowCol returns the row and column of a router.
func (f *FlattenedButterfly2D) RowCol(r packet.RouterID) (row, col int) {
	return int(r) / f.K, int(r) % f.K
}

// RouterAt returns the router at the given row and column.
func (f *FlattenedButterfly2D) RouterAt(row, col int) packet.RouterID {
	return packet.RouterID(row*f.K + col)
}

// RouterOfNode implements Topology.
func (f *FlattenedButterfly2D) RouterOfNode(n packet.NodeID) packet.RouterID {
	return packet.RouterID(int(n) / f.P)
}

// NodeAt implements Topology.
func (f *FlattenedButterfly2D) NodeAt(r packet.RouterID, i int) packet.NodeID {
	return packet.NodeID(int(r)*f.P + i)
}

// TerminalPort implements Topology.
func (f *FlattenedButterfly2D) TerminalPort(r packet.RouterID, n packet.NodeID) int {
	return int(n) - int(r)*f.P
}

// PortKind implements Topology. Row and column links are both Local: the
// flattened butterfly with adaptive routing has no link-type restriction.
func (f *FlattenedButterfly2D) PortKind(_ packet.RouterID, p int) PortKind {
	if p < f.P {
		return Terminal
	}
	return Local
}

// firstRowPort and firstColPort delimit the two link ranges.
func (f *FlattenedButterfly2D) firstRowPort() int { return f.P }
func (f *FlattenedButterfly2D) firstColPort() int { return f.P + f.K - 1 }

// rowPortTo returns the port of `from` connecting to the router in the same
// row at column tc.
func (f *FlattenedButterfly2D) rowPortTo(fromCol, tc int) int {
	if tc < fromCol {
		return f.firstRowPort() + tc
	}
	return f.firstRowPort() + tc - 1
}

// colPortTo returns the port of `from` connecting to the router in the same
// column at row tr.
func (f *FlattenedButterfly2D) colPortTo(fromRow, tr int) int {
	if tr < fromRow {
		return f.firstColPort() + tr
	}
	return f.firstColPort() + tr - 1
}

// Neighbor implements Topology.
func (f *FlattenedButterfly2D) Neighbor(r packet.RouterID, p int) (packet.RouterID, int) {
	if t := f.tables; t != nil && p >= f.P {
		return t.neighbor(r, p)
	}
	row, col := f.RowCol(r)
	switch {
	case p < f.P:
		panic(fmt.Sprintf("fbfly2d: Neighbor called on terminal port %d of router %d", p, r))
	case p < f.firstColPort(): // row link
		i := p - f.firstRowPort()
		tc := i
		if i >= col {
			tc = i + 1
		}
		nr := f.RouterAt(row, tc)
		return nr, f.rowPortTo(tc, col)
	default: // column link
		i := p - f.firstColPort()
		tr := i
		if i >= row {
			tr = i + 1
		}
		nr := f.RouterAt(tr, col)
		return nr, f.colPortTo(tr, row)
	}
}

// MinimalHops implements Topology. Minimal paths correct the row and the
// column, in either order: 0, 1 or 2 hops.
func (f *FlattenedButterfly2D) MinimalHops(from, to packet.RouterID) HopCount {
	if t := f.tables; t != nil && t.minHops != nil {
		return unpackHops(t.minHops[int(from)*t.n+int(to)])
	}
	fr, fc := f.RowCol(from)
	tr, tc := f.RowCol(to)
	n := 0
	if fr != tr {
		n++
	}
	if fc != tc {
		n++
	}
	return HopCount{Local: n}
}

// NextMinimalPort implements Topology. When both coordinates differ, the row
// is corrected first (a deterministic but arbitrary choice; adaptive variants
// may override it).
func (f *FlattenedButterfly2D) NextMinimalPort(from, to packet.RouterID) int {
	if t := f.tables; t != nil && t.minPort != nil {
		return int(t.minPort[int(from)*t.n+int(to)])
	}
	fr, fc := f.RowCol(from)
	tr, tc := f.RowCol(to)
	switch {
	case fr == tr && fc == tc:
		return -1
	case fc != tc:
		return f.rowPortTo(fc, tc)
	default:
		return f.colPortTo(fr, tr)
	}
}

// Diameter implements Topology.
func (f *FlattenedButterfly2D) Diameter() HopCount { return HopCount{Local: 2} }

// MaxValiantHops implements Topology: two concatenated minimal paths.
func (f *FlattenedButterfly2D) MaxValiantHops() HopCount { return HopCount{Local: 4} }
