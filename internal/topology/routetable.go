package topology

import "flexvc/internal/packet"

// This file implements the precomputed routing-table subsystem: at network
// construction, the answers to the routing queries on the forwarding hot path
// (NextMinimalPort, MinimalHops, MinimalPathSeq, Neighbor, and for the
// Dragonfly MinimalGlobalLink) are computed once into flat arrays indexed by
// router ID, so the per-packet cost becomes a single table load instead of a
// chain of divisions and branches.
//
// Tables come in two size classes:
//
//   - Per-port tables (link neighbors) are O(routers x radix) and always
//     built when precomputation is enabled: even at the paper's full scale
//     they are a few hundred kilobytes.
//   - Per-pair tables (minimal port, hop counts, path-kind sequence) are
//     O(routers^2) and memory-gated: they are only built when their estimated
//     size fits the configured budget, and every query transparently falls
//     back to the on-the-fly computation otherwise. This keeps "paper"-scale
//     networks (2,064 routers, ~50 MB of pair tables) usable on the default
//     budget while small and medium instances get the full speedup.
//
// Correctness contract: a table answer must be bit-identical to the on-the-fly
// answer. The builder guarantees this by construction (it fills the tables by
// calling the very methods it later shortcuts, before installing them), and
// the equivalence tests in routetable_test.go verify it query by query.

// DefaultTableBudget is the default memory gate for the per-pair route tables,
// in bytes. It comfortably admits the "small" and "medium" experiment scales
// and rejects the full paper-scale system, whose pair tables would cost tens
// of megabytes per replication (replications each own their topology, so the
// cost would be multiplied by the worker budget).
const DefaultTableBudget = 16 << 20

// pairEntryBytes is the estimated per-(src,dst) table cost: 2 bytes of
// minimal port, 1 packed byte of hop counts and one packed PathSeq.
const pairEntryBytes = 2 + 1 + MaxPathLen + 1

// Precomputer is implemented by topologies that can precompute their routing
// tables. PrecomputeTables follows the config.RouteTableBytes convention
// verbatim: a negative budget disables precomputation entirely (any
// previously installed tables are removed), 0 selects DefaultTableBudget,
// and a positive value is the budget in bytes for the per-pair tables (the
// small per-port tables are always built when precomputation is enabled).
// It reports whether the per-pair tables were installed. The simulator calls
// it once per network construction.
type Precomputer interface {
	PrecomputeTables(budgetBytes int) bool
}

// routeTables holds the precomputed answers for one topology instance. A nil
// *routeTables (or a nil pair-table slice inside it) means "compute on the
// fly"; methods must check before indexing.
type routeTables struct {
	n     int // routers
	radix int

	// Per-port tables, indexed [router*radix + port]. nbrRouter is -1 for
	// terminal ports (the fast paths only consult them for link ports).
	nbrRouter []int32
	nbrPort   []int16

	// Per-pair tables, indexed [from*n + to]; nil when the memory gate
	// rejected them. minPort is -1 on the diagonal (from == to). minHops
	// packs the local count in the low nibble and the global count in the
	// high nibble. minSeq stores the full minimal path-kind sequence.
	minPort []int16
	minHops []uint8
	minSeq  []PathSeq

	// Dragonfly group-link table, indexed [fromGroup*groups + toGroup]:
	// the router owning the minimal global link between two groups and its
	// global port (-1 on the diagonal). Used by the Piggyback saturation
	// lookups. Nil for flat topologies.
	glRouter []int32
	glPort   []int16
}

// pairTablesFit reports whether the per-pair tables of an n-router topology
// fit the byte budget.
func pairTablesFit(n, budgetBytes int) bool {
	if budgetBytes <= 0 {
		budgetBytes = DefaultTableBudget
	}
	return n*n <= budgetBytes/pairEntryBytes
}

// packHops packs a minimal-path hop count into one byte. Minimal paths of the
// supported topologies have at most MaxPathLen hops per kind, far below the
// nibble limit of 15.
func packHops(h HopCount) uint8 {
	return uint8(h.Local) | uint8(h.Global)<<4
}

// unpackHops is the inverse of packHops.
func unpackHops(b uint8) HopCount {
	return HopCount{Local: int(b & 0xF), Global: int(b >> 4)}
}

// buildRouteTables fills the tables for a topology by querying its on-the-fly
// methods. It must be called before the tables are installed on the topology
// (the topology's methods shortcut through the installed tables).
func buildRouteTables(t Topology, budgetBytes int) *routeTables {
	n, radix := t.NumRouters(), t.Radix()
	rt := &routeTables{n: n, radix: radix}

	rt.nbrRouter = make([]int32, n*radix)
	rt.nbrPort = make([]int16, n*radix)
	for r := 0; r < n; r++ {
		rid := packet.RouterID(r)
		for p := 0; p < radix; p++ {
			i := r*radix + p
			if t.PortKind(rid, p) == Terminal {
				rt.nbrRouter[i] = -1
				rt.nbrPort[i] = -1
				continue
			}
			nr, np := t.Neighbor(rid, p)
			rt.nbrRouter[i] = int32(nr)
			rt.nbrPort[i] = int16(np)
		}
	}

	if !pairTablesFit(n, budgetBytes) {
		return rt
	}
	rt.minPort = make([]int16, n*n)
	rt.minHops = make([]uint8, n*n)
	rt.minSeq = make([]PathSeq, n*n)
	for from := 0; from < n; from++ {
		f := packet.RouterID(from)
		row := from * n
		for to := 0; to < n; to++ {
			rt.minPort[row+to] = int16(t.NextMinimalPort(f, packet.RouterID(to)))
			rt.minHops[row+to] = packHops(t.MinimalHops(f, packet.RouterID(to)))
			rt.minSeq[row+to] = MinimalSeq(t, f, packet.RouterID(to))
		}
	}
	return rt
}

// neighbor answers Topology.Neighbor from the per-port table.
func (rt *routeTables) neighbor(r packet.RouterID, p int) (packet.RouterID, int) {
	i := int(r)*rt.radix + p
	return packet.RouterID(rt.nbrRouter[i]), int(rt.nbrPort[i])
}

// PrecomputeTables implements Precomputer for the Dragonfly. In addition to
// the generic tables it builds the group-to-group minimal global link table
// used by the Piggyback congestion lookups (O(groups^2), always built).
func (d *Dragonfly) PrecomputeTables(budgetBytes int) bool {
	d.tables = nil // compute on the fly while building (and stay nil if disabled)
	if budgetBytes < 0 {
		return false
	}
	rt := buildRouteTables(d, budgetBytes)

	g := d.numGroups
	rt.glRouter = make([]int32, g*g)
	rt.glPort = make([]int16, g*g)
	for fg := 0; fg < g; fg++ {
		for tg := 0; tg < g; tg++ {
			i := fg*g + tg
			if fg == tg {
				rt.glRouter[i] = int32(packet.InvalidRouter)
				rt.glPort[i] = -1
				continue
			}
			router, port, _ := d.MinimalGlobalLink(fg, tg)
			rt.glRouter[i] = int32(router)
			rt.glPort[i] = int16(port)
		}
	}
	d.tables = rt
	return rt.minPort != nil
}

// PrecomputeTables implements Precomputer for the flattened butterfly.
func (f *FlattenedButterfly2D) PrecomputeTables(budgetBytes int) bool {
	f.tables = nil // compute on the fly while building (and stay nil if disabled)
	if budgetBytes < 0 {
		return false
	}
	rt := buildRouteTables(f, budgetBytes)
	f.tables = rt
	return rt.minPort != nil
}
