package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexvc/internal/packet"
)

func mustDragonfly(t *testing.T, p, a, h int) *Dragonfly {
	t.Helper()
	d, err := NewDragonfly(p, a, h)
	if err != nil {
		t.Fatalf("NewDragonfly(%d,%d,%d): %v", p, a, h, err)
	}
	return d
}

func mustFB(t *testing.T, k, p int) *FlattenedButterfly2D {
	t.Helper()
	f, err := NewFlattenedButterfly2D(k, p)
	if err != nil {
		t.Fatalf("NewFlattenedButterfly2D(%d,%d): %v", k, p, err)
	}
	return f
}

func TestDragonflyCounts(t *testing.T) {
	cases := []struct {
		p, a, h                    int
		groups, routers, nodes, rx int
	}{
		{1, 2, 1, 3, 6, 6, 3},
		{2, 4, 2, 9, 36, 72, 7},
		{4, 8, 4, 33, 264, 1056, 15},
		{8, 16, 8, 129, 2064, 16512, 31},
	}
	for _, c := range cases {
		d := mustDragonfly(t, c.p, c.a, c.h)
		if d.NumGroups() != c.groups || d.NumRouters() != c.routers || d.NumNodes() != c.nodes || d.Radix() != c.rx {
			t.Errorf("dragonfly(%d,%d,%d): got groups=%d routers=%d nodes=%d radix=%d, want %d/%d/%d/%d",
				c.p, c.a, c.h, d.NumGroups(), d.NumRouters(), d.NumNodes(), d.Radix(),
				c.groups, c.routers, c.nodes, c.rx)
		}
	}
}

func TestDragonflyInvalidParams(t *testing.T) {
	if _, err := NewDragonfly(0, 4, 2); err == nil {
		t.Error("expected error for p=0")
	}
	if _, err := NewDragonfly(2, 0, 2); err == nil {
		t.Error("expected error for a=0")
	}
	if _, err := NewDragonfly(2, 4, 0); err == nil {
		t.Error("expected error for h=0")
	}
}

func TestDragonflyValidate(t *testing.T) {
	for _, h := range []int{1, 2, 3} {
		d := mustDragonfly(t, h, 2*h, h)
		if err := Validate(d); err != nil {
			t.Errorf("balanced dragonfly h=%d: %v", h, err)
		}
	}
	// Unbalanced instances must also be structurally valid.
	if err := Validate(mustDragonfly(t, 1, 3, 2)); err != nil {
		t.Errorf("dragonfly(1,3,2): %v", err)
	}
	if err := Validate(mustDragonfly(t, 2, 2, 3)); err != nil {
		t.Errorf("dragonfly(2,2,3): %v", err)
	}
}

func TestFlattenedButterflyValidate(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		if err := Validate(mustFB(t, k, 2)); err != nil {
			t.Errorf("fbfly k=%d: %v", k, err)
		}
	}
	if _, err := NewFlattenedButterfly2D(1, 2); err == nil {
		t.Error("expected error for k=1")
	}
}

// TestDragonflyGlobalLinkCoverage checks that there is exactly one global
// link between every pair of groups.
func TestDragonflyGlobalLinkCoverage(t *testing.T) {
	d := mustDragonfly(t, 2, 4, 2)
	seen := map[[2]int]int{}
	for r := 0; r < d.NumRouters(); r++ {
		rid := packet.RouterID(r)
		for p := d.FirstGlobalPort(); p < d.Radix(); p++ {
			nr, _ := d.Neighbor(rid, p)
			g1, g2 := d.GroupOf(rid), d.GroupOf(nr)
			if g1 == g2 {
				t.Fatalf("global port %d of router %d stays inside group %d", p, r, g1)
			}
			key := [2]int{min(g1, g2), max(g1, g2)}
			seen[key]++
		}
	}
	pairs := d.NumGroups() * (d.NumGroups() - 1) / 2
	if len(seen) != pairs {
		t.Fatalf("global links cover %d group pairs, want %d", len(seen), pairs)
	}
	for key, count := range seen {
		if count != 2 { // each undirected link seen once from each side
			t.Errorf("group pair %v has %d directed global channels, want 2", key, count)
		}
	}
}

// TestDragonflyLocalCompleteGraph checks that local ports connect every pair
// of routers within a group exactly once.
func TestDragonflyLocalCompleteGraph(t *testing.T) {
	d := mustDragonfly(t, 1, 4, 1)
	for g := 0; g < d.NumGroups(); g++ {
		for i := 0; i < d.A; i++ {
			for j := 0; j < d.A; j++ {
				if i == j {
					continue
				}
				from, to := d.RouterInGroup(g, i), d.RouterInGroup(g, j)
				port := d.LocalPortTo(from, to)
				nr, back := d.Neighbor(from, port)
				if nr != to {
					t.Fatalf("LocalPortTo(%d,%d)=%d reaches %d", from, to, port, nr)
				}
				if br, _ := d.Neighbor(to, back); br != from {
					t.Fatalf("local link %d<->%d not symmetric", from, to)
				}
			}
		}
	}
}

// TestDragonflyMinimalGlobalLink checks that the advertised minimal global
// link indeed connects the two groups.
func TestDragonflyMinimalGlobalLink(t *testing.T) {
	d := mustDragonfly(t, 2, 4, 2)
	for g1 := 0; g1 < d.NumGroups(); g1++ {
		for g2 := 0; g2 < d.NumGroups(); g2++ {
			r, p, ok := d.MinimalGlobalLink(g1, g2)
			if g1 == g2 {
				if ok {
					t.Fatalf("MinimalGlobalLink(%d,%d) should not exist", g1, g2)
				}
				continue
			}
			if !ok {
				t.Fatalf("MinimalGlobalLink(%d,%d) missing", g1, g2)
			}
			if d.GroupOf(r) != g1 || d.PortKind(r, p) != Global {
				t.Fatalf("MinimalGlobalLink(%d,%d) = router %d port %d: wrong group or kind", g1, g2, r, p)
			}
			nr, _ := d.Neighbor(r, p)
			if d.GroupOf(nr) != g2 {
				t.Fatalf("MinimalGlobalLink(%d,%d) lands in group %d", g1, g2, d.GroupOf(nr))
			}
		}
	}
}

// bfsDistance computes router-to-router distance by breadth-first search,
// the ground truth for MinimalHops totals.
func bfsDistance(topo Topology, from packet.RouterID) []int {
	dist := make([]int, topo.NumRouters())
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []packet.RouterID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for p := 0; p < topo.Radix(); p++ {
			if topo.PortKind(cur, p) == Terminal {
				continue
			}
			nr, _ := topo.Neighbor(cur, p)
			if dist[nr] < 0 {
				dist[nr] = dist[cur] + 1
				queue = append(queue, nr)
			}
		}
	}
	return dist
}

// TestMinimalHopsMatchesBFS cross-checks the closed-form minimal distances
// against graph search. On the flattened butterfly the two coincide exactly;
// on the dragonfly MinimalHops is the hierarchical l-g-l route, which is
// never shorter than the graph distance and never longer than the diameter.
func TestMinimalHopsMatchesBFS(t *testing.T) {
	fb := mustFB(t, 3, 1)
	for src := 0; src < fb.NumRouters(); src++ {
		dist := bfsDistance(fb, packet.RouterID(src))
		for dst := 0; dst < fb.NumRouters(); dst++ {
			got := fb.MinimalHops(packet.RouterID(src), packet.RouterID(dst)).Total()
			if got != dist[dst] {
				t.Fatalf("%s: MinimalHops(%d,%d)=%d, BFS says %d", fb.Name(), src, dst, got, dist[dst])
			}
		}
	}
	for _, d := range []*Dragonfly{mustDragonfly(t, 1, 4, 2), mustDragonfly(t, 2, 2, 1)} {
		diam := d.Diameter().Total()
		for src := 0; src < d.NumRouters(); src++ {
			dist := bfsDistance(d, packet.RouterID(src))
			for dst := 0; dst < d.NumRouters(); dst++ {
				got := d.MinimalHops(packet.RouterID(src), packet.RouterID(dst)).Total()
				if got < dist[dst] || got > diam {
					t.Fatalf("%s: hierarchical MinimalHops(%d,%d)=%d outside [graph distance %d, diameter %d]",
						d.Name(), src, dst, got, dist[dst], diam)
				}
			}
		}
	}
}

// TestMinimalPathSeqConsistent checks that the fast kind-sequence builders
// agree with walking NextMinimalPort, and with MinimalHops counts.
func TestMinimalPathSeqConsistent(t *testing.T) {
	topos := []Topology{mustDragonfly(t, 2, 4, 2), mustFB(t, 3, 2)}
	rng := rand.New(rand.NewSource(7))
	for _, topo := range topos {
		for i := 0; i < 500; i++ {
			src := packet.RouterID(rng.Intn(topo.NumRouters()))
			dst := packet.RouterID(rng.Intn(topo.NumRouters()))
			fast := MinimalSeq(topo, src, dst)
			slow := MinimalPathSeq(topo, src, dst)
			if fast.Len() != slow.Len() {
				t.Fatalf("%s: seq length mismatch %d vs %d for %d->%d", topo.Name(), fast.Len(), slow.Len(), src, dst)
			}
			for j := 0; j < fast.Len(); j++ {
				if fast.At(j) != slow.At(j) {
					t.Fatalf("%s: seq kind mismatch at %d for %d->%d", topo.Name(), j, src, dst)
				}
			}
			if fast.Counts() != topo.MinimalHops(src, dst) {
				t.Fatalf("%s: seq counts %+v != MinimalHops %+v for %d->%d",
					topo.Name(), fast.Counts(), topo.MinimalHops(src, dst), src, dst)
			}
		}
	}
}

// TestDragonflyMinimalWithinDiameter is a property test: minimal hops never
// exceed the diameter and are symmetric in total length.
func TestDragonflyMinimalWithinDiameter(t *testing.T) {
	d := mustDragonfly(t, 2, 6, 3)
	diam := d.Diameter()
	f := func(a, b uint16) bool {
		src := packet.RouterID(int(a) % d.NumRouters())
		dst := packet.RouterID(int(b) % d.NumRouters())
		hc := d.MinimalHops(src, dst)
		rev := d.MinimalHops(dst, src)
		return hc.Local <= diam.Local && hc.Global <= diam.Global &&
			hc.Total() == rev.Total() &&
			(src != dst || hc.Total() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestHopCountHelpers covers the small arithmetic helpers.
func TestHopCountHelpers(t *testing.T) {
	a := HopCount{Local: 2, Global: 1}
	b := HopCount{Local: 1, Global: 3}
	if a.Add(b) != (HopCount{Local: 3, Global: 4}) {
		t.Error("Add broken")
	}
	if a.Max(b) != (HopCount{Local: 2, Global: 3}) {
		t.Error("Max broken")
	}
	if a.Total() != 3 || a.Of(Local) != 2 || a.Of(Global) != 1 {
		t.Error("Total/Of broken")
	}
}

// TestPathSeq covers the sequence value type.
func TestPathSeq(t *testing.T) {
	s := SeqOf(Local, Global, Local)
	if s.Len() != 3 || s.At(1) != Global {
		t.Fatal("SeqOf broken")
	}
	if s.Counts() != (HopCount{Local: 2, Global: 1}) {
		t.Fatal("Counts broken")
	}
	c := s.Concat(SeqOf(Global))
	if c.Len() != 4 || c.At(3) != Global {
		t.Fatal("Concat broken")
	}
	p := s.Prepend(Global)
	if p.Len() != 4 || p.At(0) != Global || p.At(1) != Local {
		t.Fatal("Prepend broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on overflow")
		}
	}()
	over := PathSeq{}
	for i := 0; i <= MaxPathLen; i++ {
		over.Push(Local)
	}
}

// TestTerminalPortRoundTrip checks node <-> terminal port mapping on both
// topologies.
func TestTerminalPortRoundTrip(t *testing.T) {
	topos := []Topology{mustDragonfly(t, 3, 4, 2), mustFB(t, 3, 3)}
	for _, topo := range topos {
		for n := 0; n < topo.NumNodes(); n++ {
			node := packet.NodeID(n)
			r := topo.RouterOfNode(node)
			p := topo.TerminalPort(r, node)
			if topo.PortKind(r, p) != Terminal {
				t.Fatalf("%s: node %d terminal port %d is not terminal", topo.Name(), n, p)
			}
		}
	}
}

// TestPortKindString covers the stringers.
func TestPortKindString(t *testing.T) {
	if Terminal.String() != "terminal" || Local.String() != "local" || Global.String() != "global" {
		t.Error("PortKind.String broken")
	}
	if PortKind(99).String() != "unknown" {
		t.Error("unknown PortKind should stringify to unknown")
	}
}
