package topology

import "flexvc/internal/packet"

// MaxPathLen is the maximum number of hops of any supported route (a PAR
// path: one extra local hop plus two concatenated minimal paths of a
// diameter-3 network).
const MaxPathLen = 8

// PathSeq is the ordered sequence of link kinds of a (partial) route. It is a
// small fixed-size value type so the forwarding hot path can build and pass
// sequences without heap allocation.
type PathSeq struct {
	kinds [MaxPathLen]PortKind
	n     uint8
}

// Push appends a hop kind; it panics if the sequence would exceed MaxPathLen
// (which would indicate a routing bug).
func (s *PathSeq) Push(k PortKind) {
	if int(s.n) >= MaxPathLen {
		panic("topology: path sequence overflow")
	}
	s.kinds[s.n] = k
	s.n++
}

// Len returns the number of hops in the sequence.
func (s PathSeq) Len() int { return int(s.n) }

// At returns the kind of the i-th hop.
func (s PathSeq) At(i int) PortKind { return s.kinds[i] }

// Counts tallies the sequence into a hop count.
func (s PathSeq) Counts() HopCount {
	var hc HopCount
	for i := 0; i < int(s.n); i++ {
		if s.kinds[i] == Global {
			hc.Global++
		} else {
			hc.Local++
		}
	}
	return hc
}

// Concat returns the concatenation s followed by o.
func (s PathSeq) Concat(o PathSeq) PathSeq {
	r := s
	for i := 0; i < o.Len(); i++ {
		r.Push(o.At(i))
	}
	return r
}

// Prepend returns the sequence with one hop of kind k inserted at the front.
func (s PathSeq) Prepend(k PortKind) PathSeq {
	var r PathSeq
	r.Push(k)
	return r.Concat(s)
}

// SeqOf builds a PathSeq from explicit kinds (convenience for tests).
func SeqOf(kinds ...PortKind) PathSeq {
	var s PathSeq
	for _, k := range kinds {
		s.Push(k)
	}
	return s
}

// MinimalPathSeq returns the ordered kind sequence of a minimal path between
// two routers of a topology. It complements Topology.MinimalHops (which only
// returns counts) for the callers that need the exact interleaving of local
// and global hops, such as FlexVC's escape-path feasibility check.
func MinimalPathSeq(t Topology, from, to packet.RouterID) PathSeq {
	var s PathSeq
	cur := from
	for cur != to {
		p := t.NextMinimalPort(cur, to)
		if p < 0 {
			break
		}
		s.Push(t.PortKind(cur, p))
		cur, _ = t.Neighbor(cur, p)
	}
	return s
}

// dragonflyMinimalSeq builds the l-g-l style sequence without walking links.
func (d *Dragonfly) MinimalPathSeq(from, to packet.RouterID) PathSeq {
	if t := d.tables; t != nil && t.minSeq != nil {
		return t.minSeq[int(from)*t.n+int(to)]
	}
	var s PathSeq
	if from == to {
		return s
	}
	fg, tg := d.GroupOf(from), d.GroupOf(to)
	if fg == tg {
		s.Push(Local)
		return s
	}
	srcPos, _ := d.GlobalPortToGroup(fg, tg)
	if srcPos != d.PosInGroup(from) {
		s.Push(Local)
	}
	s.Push(Global)
	dstPos, _ := d.GlobalPortToGroup(tg, fg)
	if dstPos != d.PosInGroup(to) {
		s.Push(Local)
	}
	return s
}

// MinimalPathSeq builds the flat (all-Local) sequence of a flattened
// butterfly minimal path.
func (f *FlattenedButterfly2D) MinimalPathSeq(from, to packet.RouterID) PathSeq {
	if t := f.tables; t != nil && t.minSeq != nil {
		return t.minSeq[int(from)*t.n+int(to)]
	}
	var s PathSeq
	for i := 0; i < f.MinimalHops(from, to).Local; i++ {
		s.Push(Local)
	}
	return s
}

// PathSequencer is implemented by topologies that can produce minimal path
// kind sequences directly (without walking NextMinimalPort link by link).
type PathSequencer interface {
	MinimalPathSeq(from, to packet.RouterID) PathSeq
}

// MinimalSeq returns the minimal path kind sequence, using the topology's
// fast implementation when available.
func MinimalSeq(t Topology, from, to packet.RouterID) PathSeq {
	if ps, ok := t.(PathSequencer); ok {
		return ps.MinimalPathSeq(from, to)
	}
	return MinimalPathSeq(t, from, to)
}
