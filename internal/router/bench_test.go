package router

import (
	"testing"

	"flexvc/internal/buffer"
	"flexvc/internal/core"
	"flexvc/internal/packet"
	"flexvc/internal/routing"
	"flexvc/internal/topology"
)

// benchEnv is an environment with infinite downstream capacity: arrivals and
// credits are resolved immediately, so the router under benchmark never
// blocks on flow control and every Step measures real allocation work.
type benchEnv struct {
	downstream []*buffer.InputBuffer // by output port, nil for terminal
}

func (e *benchEnv) DownstreamInput(r packet.RouterID, port int) *buffer.InputBuffer {
	return e.downstream[port]
}

func (e *benchEnv) ScheduleArrival(delay int64, to packet.RouterID, port, vc int, ref packet.Ref, kind packet.RouteKind) {
}

func (e *benchEnv) ScheduleCredit(delay int64, buf *buffer.InputBuffer, vc, size int, kind packet.RouteKind) {
	buf.ReleaseCredit(vc, size, kind)
}

func (e *benchEnv) ScheduleDelivery(delay int64, ref packet.Ref) {}

func buildBenchRouter(b *testing.B) (*Router, *benchEnv, *topology.Dragonfly, *packet.Store) {
	b.Helper()
	topo, err := topology.NewDragonfly(2, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	store := packet.NewStore()
	scheme := core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
	rt, err := New(0, topo, scheme, routing.NewMinimal(topo), testParams(1, store), 7)
	if err != nil {
		b.Fatal(err)
	}
	env := &benchEnv{downstream: make([]*buffer.InputBuffer, topo.Radix())}
	for p := 0; p < topo.Radix(); p++ {
		kind := topo.PortKind(0, p)
		if kind == topology.Terminal {
			continue
		}
		env.downstream[p] = buffer.NewInputBuffer(buffer.StaticConfig(scheme.VCs.TotalOf(kind), 1<<20))
	}
	rt.SetEnv(env)
	return rt, env, topo, store
}

// drainDownstream releases every committed phit of the synthetic downstream
// buffers so the router never stalls on credits between refills.
func drainDownstream(env *benchEnv) {
	for _, d := range env.downstream {
		if d == nil {
			continue
		}
		for vc := 0; vc < d.NumVCs(); vc++ {
			if c := d.CommittedOf(vc); c > 0 {
				d.ReleaseCredit(vc, c, packet.Minimal)
			}
		}
	}
}

// BenchmarkRouterStepBusy measures Router.Step with traffic flowing: the
// injection VCs are topped up with forwardable packets whenever they drain.
func BenchmarkRouterStepBusy(b *testing.B) {
	rt, env, topo, store := buildBenchRouter(b)
	dst := topo.NodeAt(topo.RouterInGroup(1, 0), 0)
	refill := func(now int64) {
		inj := rt.Input(0)
		for vc := 0; vc < inj.NumVCs(); vc++ {
			for inj.FreeFor(vc) >= 8 && inj.QueueLen(vc) < 4 {
				ref := store.Alloc(1, topo.NodeAt(0, 0), dst, 8, packet.Request, now)
				hdr := store.Hdr(ref)
				hdr.SrcRouter = 0
				hdr.DstRouter = topo.RouterOfNode(dst)
				inj.Reserve(vc, int(hdr.Size), packet.Minimal)
				rt.EnqueueArrival(0, vc, ref, now, packet.Minimal)
			}
		}
	}
	refill(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i)
		rt.Step(now)
		if rt.ResidentPackets() == 0 {
			b.StopTimer()
			drainDownstream(env)
			refill(now)
			b.StartTimer()
		}
	}
}

// BenchmarkVCActivity measures the incremental activity-list update on the
// enqueue/dequeue path: port membership churn in the sorted live-port list
// (binary insert and remove) plus the per-port VC occupancy mask. This is the
// bookkeeping the simulator pays per packet movement in exchange for the
// proposal pass iterating live VCs only; the gate pins it allocation-free.
func BenchmarkVCActivity(b *testing.B) {
	rt, _, topo, _ := buildBenchRouter(b)
	// Churn across several ports so inserts and removes hit different
	// positions of the sorted list, not just the tail.
	var ports [4]int
	idx := 0
	for p := 0; p < topo.Radix() && idx < len(ports); p += 2 {
		ports[idx] = p
		idx++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ports[i&3]
		rt.noteEnqueue(p, i&1)
		rt.noteDequeue(p, i&1)
	}
}

// BenchmarkRouterStepIdle measures Step on a router with no resident packets:
// the pure scan overhead the simulator pays for every idle router each cycle.
func BenchmarkRouterStepIdle(b *testing.B) {
	rt, _, _, _ := buildBenchRouter(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Step(int64(i))
	}
}
