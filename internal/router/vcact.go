package router

import "fmt"

// portList is a dense, ascending-sorted set of port indices with O(log n)
// lookup and O(n) shift on update (cheap at router radix, ≤ ~36 ports).
// Iterating it visits exactly the member ports in the same order a full
// 0..numPorts scan would — ascending — which is what keeps activity-driven
// allocation and transmission bit-identical to the probing formulation:
// grant order, and with it the event-wheel append order, follows the port
// iteration order.
type portList struct {
	ports []int32
	in    []bool
}

func newPortList(n int) portList {
	return portList{ports: make([]int32, 0, n), in: make([]bool, n)}
}

// add inserts a port, keeping the list sorted; adding a member is a no-op.
func (l *portList) add(p int) {
	if l.in[p] {
		return
	}
	l.in[p] = true
	i := l.search(p)
	l.ports = append(l.ports, 0)
	copy(l.ports[i+1:], l.ports[i:])
	l.ports[i] = int32(p)
}

// remove deletes a port; removing a non-member is a no-op.
func (l *portList) remove(p int) {
	if !l.in[p] {
		return
	}
	l.in[p] = false
	i := l.search(p)
	copy(l.ports[i:], l.ports[i+1:])
	l.ports = l.ports[:len(l.ports)-1]
}

// search returns the insertion index of p (binary search).
func (l *portList) search(p int) int {
	lo, hi := 0, len(l.ports)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.ports[mid] < int32(p) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AuditActivity cross-checks the router's incremental activity lists against
// a brute-force scan of every input VC and output/ejection buffer. It is the
// invariant the lists must uphold for activity-driven stepping to be
// equivalent to probing everything; tests and the fuzz target call it after
// every mutation (the simulator never does — it is O(ports × VCs)).
func (r *Router) AuditActivity() error {
	livePrev := int32(-1)
	li := 0
	for p := 0; p < r.numPorts; p++ {
		in := r.inputs[p]
		resident := 0
		var mask uint64
		for vc := 0; vc < in.NumVCs(); vc++ {
			n := in.QueueLen(vc)
			resident += n
			if n > 0 && vc < 64 {
				mask |= 1 << uint(vc)
			}
		}
		if int(r.inCount[p]) != resident {
			return fmt.Errorf("router %d port %d: inCount=%d, brute-force resident=%d", r.id, p, r.inCount[p], resident)
		}
		if r.vcMaskOK[p] && r.vcMask[p] != mask {
			return fmt.Errorf("router %d port %d: vcMask=%#x, brute-force=%#x", r.id, p, r.vcMask[p], mask)
		}
		wantLive := resident > 0
		if r.liveIn.in[p] != wantLive {
			return fmt.Errorf("router %d port %d: liveIn membership=%v, want %v", r.id, p, r.liveIn.in[p], wantLive)
		}
		if wantLive {
			if li >= len(r.liveIn.ports) || r.liveIn.ports[li] != int32(p) {
				return fmt.Errorf("router %d: liveIn list %v missing or misplacing port %d", r.id, r.liveIn.ports, p)
			}
			if r.liveIn.ports[li] <= livePrev {
				return fmt.Errorf("router %d: liveIn list %v not strictly ascending", r.id, r.liveIn.ports)
			}
			livePrev = r.liveIn.ports[li]
			li++
		}
	}
	if li != len(r.liveIn.ports) {
		return fmt.Errorf("router %d: liveIn list %v has %d extra entries", r.id, r.liveIn.ports, len(r.liveIn.ports)-li)
	}
	// The xmit list may conservatively hold ports that already drained (they
	// are pruned lazily by the next transmit pass), but it must be sorted,
	// consistent with its membership flags, and cover every staged packet.
	xi := 0
	for p := 0; p < r.numPorts; p++ {
		staged := 0
		if r.outputs[p] != nil {
			staged = r.outputs[p].Len()
		}
		for _, e := range r.eject[p] {
			staged += e.Len()
		}
		if staged > 0 && !r.xmit.in[p] {
			return fmt.Errorf("router %d port %d: %d staged packets but not in xmit list", r.id, p, staged)
		}
		if r.xmit.in[p] {
			if xi >= len(r.xmit.ports) || r.xmit.ports[xi] != int32(p) {
				return fmt.Errorf("router %d: xmit list %v inconsistent with membership at port %d", r.id, r.xmit.ports, p)
			}
			xi++
		}
	}
	if xi != len(r.xmit.ports) {
		return fmt.Errorf("router %d: xmit list %v has %d extra entries", r.id, r.xmit.ports, len(r.xmit.ports)-xi)
	}
	return nil
}
