package router

import (
	"testing"

	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// FuzzVCActivity drives a router through arbitrary interleavings of the three
// operations that mutate VC occupancy — enqueue (injection and link arrivals),
// step (dequeues and credit consumption) and downstream credit release — and
// after every operation asserts the incremental activity lists against the
// brute-force scan (AuditActivity). This is the differential check backing
// the activity-list optimisation: the lists must track buffer state exactly,
// under every interleaving, not just the ones the simulator happens to emit.
func FuzzVCActivity(f *testing.F) {
	f.Add([]byte{0, 2, 1, 2, 3, 0, 0, 2, 2, 2, 1, 3, 2, 2})
	f.Add([]byte{1, 1, 1, 2, 2, 2, 2, 3, 1, 2})
	f.Add([]byte{0, 4, 8, 12, 2, 2, 2, 2, 2, 2, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		rt, env, topo, store := buildRouter(t)
		store.EnablePoison()

		// The non-terminal input ports a fuzzed arrival may land on.
		var linkPorts []int
		for p := 0; p < topo.Radix(); p++ {
			if topo.PortKind(0, p) != topology.Terminal {
				linkPorts = append(linkPorts, p)
			}
		}
		// Deliveries and departures free no slots here (the fake env retains
		// the refs), so cap the packet population to keep iterations bounded.
		const maxPackets = 64
		var id uint64
		now := int64(0)
		enqueue := func(port, vc int) {
			if id >= maxPackets {
				return
			}
			inb := rt.Input(port)
			vc %= inb.NumVCs()
			if !inb.Reserve(vc, 8, packet.Minimal) {
				return
			}
			id++
			// Alternate local and remote destinations so both the ejection
			// and the forwarding paths run.
			dst := topo.NodeAt(0, int(id)%2)
			if id%3 == 0 {
				dst = topo.NodeAt(topo.RouterInGroup(1, int(id)%4), 0)
			}
			ref := store.Alloc(id, topo.NodeAt(0, 0), dst, 8, packet.Request, now)
			hdr := store.Hdr(ref)
			hdr.SrcRouter = 0
			hdr.DstRouter = topo.RouterOfNode(dst)
			if port != 0 {
				store.Route(ref).InputVC = int32(vc)
			}
			rt.EnqueueArrival(port, vc, ref, now, packet.Minimal)
		}
		for i, op := range ops {
			arg := int(op) >> 2
			switch op % 4 {
			case 0: // inject on the terminal port
				enqueue(0, arg)
			case 1: // arrival on a link port
				if len(linkPorts) > 0 {
					enqueue(linkPorts[arg%len(linkPorts)], arg/len(linkPorts))
				}
			case 2: // advance one cycle
				rt.Step(now)
				now++
			case 3: // downstream drains: return every committed credit
				for _, d := range env.downstream {
					for vc := 0; vc < d.NumVCs(); vc++ {
						if c := d.CommittedOf(vc); c > 0 {
							d.ReleaseCredit(vc, c, packet.Minimal)
						}
					}
				}
			}
			if err := rt.AuditActivity(); err != nil {
				t.Fatalf("op %d (byte %d): %v", i, op, err)
			}
		}
	})
}
