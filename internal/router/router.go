// Package router models a combined input-output buffered, Virtual
// Cut-Through router with credit-based flow control, an iterative input-first
// separable allocator and an optional internal frequency speedup, as used in
// the FlexVC evaluation (FOGSim's router model).
//
// A router owns the input buffers of its ports (including the injection
// buffers of its terminal ports), a small output buffer per port and per-class
// ejection buffers for its terminal ports. Each cycle it runs `speedup`
// allocation iterations that move packets from input VCs to output buffers
// (consuming credits of the downstream input buffer) and then drains every
// output buffer onto its link at one phit per cycle.
package router

import (
	"fmt"
	"math/bits"
	"math/rand"

	"flexvc/internal/buffer"
	"flexvc/internal/core"
	"flexvc/internal/packet"
	"flexvc/internal/routing"
	"flexvc/internal/topology"
)

// Params collects the microarchitectural parameters of a router.
type Params struct {
	// Speedup is the number of allocation iterations per link cycle.
	Speedup int
	// Pipeline is the router pipeline latency in cycles, applied to every
	// packet between arrival and visibility to the allocator.
	Pipeline int
	// OutputBufPhits is the capacity of each output staging buffer.
	OutputBufPhits int
	// InjectionQueues is the number of injection VCs per terminal port.
	InjectionQueues int
	// NumClasses is the number of message classes (1, or 2 for
	// request-reply workloads); terminal ports expose one ejection channel
	// per class so replies never wait behind requests.
	NumClasses int
	// LocalLatency, GlobalLatency and InjectionLatency are the link
	// latencies in cycles, also used for credit return.
	LocalLatency, GlobalLatency, InjectionLatency int
	// BufferConfig returns the input-buffer configuration for a port of the
	// given kind with the given number of VCs.
	BufferConfig func(kind topology.PortKind, numVCs int) buffer.Config
	// Store is the packet store of the network this router belongs to; every
	// Ref the router handles resolves through it.
	Store *packet.Store
}

// LinkLatency returns the link latency for a port kind.
func (p Params) LinkLatency(kind topology.PortKind) int {
	switch kind {
	case topology.Global:
		return p.GlobalLatency
	case topology.Local:
		return p.LocalLatency
	default:
		return p.InjectionLatency
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.Speedup < 1 {
		return fmt.Errorf("router: speedup must be >= 1, got %d", p.Speedup)
	}
	if p.Pipeline < 0 {
		return fmt.Errorf("router: negative pipeline latency")
	}
	if p.OutputBufPhits <= 0 {
		return fmt.Errorf("router: output buffer capacity must be positive")
	}
	if p.InjectionQueues < 1 {
		return fmt.Errorf("router: need at least one injection queue")
	}
	if p.NumClasses < 1 || p.NumClasses > packet.NumClasses {
		return fmt.Errorf("router: invalid class count %d", p.NumClasses)
	}
	if p.BufferConfig == nil {
		return fmt.Errorf("router: missing buffer configuration function")
	}
	if p.Store == nil {
		return fmt.Errorf("router: missing packet store")
	}
	return nil
}

// Env is the interface the router uses to interact with the rest of the
// simulated network; it is implemented by internal/sim (directly for the
// serial cycle loop, and by per-shard wrappers that buffer the Schedule*
// calls for the parallel loop — see internal/sim/shard.go).
//
// Concurrency contract: Step calls Env methods only. When the network shards
// the stepping phase, routers of different shards call their own Env
// concurrently; everything else a Step touches is either private to the
// router (input queues, PRNG, allocation scratch, VC-plan caches), immutable
// during a run (topology, route tables, core.Manager, the wiring behind
// DownstreamInput), or owned by this router as the unique upstream writer
// and reader of its links' downstream credit counters (Reserve, FreeFor and
// the congestion probes all act on the prober's own output ports). Credit
// returns and arrivals mutate shared state only when the buffered events are
// replayed, which happens in the serial phases of the cycle.
type Env interface {
	// DownstreamInput returns the input buffer at the far end of output
	// port `port` of router r (nil for terminal ports).
	DownstreamInput(r packet.RouterID, port int) *buffer.InputBuffer
	// ScheduleArrival delivers the packet into VC vc of input port `port`
	// of router `to` after `delay` cycles; kind is the routing kind recorded
	// when the space was reserved.
	ScheduleArrival(delay int64, to packet.RouterID, port, vc int, ref packet.Ref, kind packet.RouteKind)
	// ScheduleCredit releases `size` phits of VC vc of buf after `delay`
	// cycles.
	ScheduleCredit(delay int64, buf *buffer.InputBuffer, vc, size int, kind packet.RouteKind)
	// ScheduleDelivery consumes the packet at its destination node after
	// `delay` cycles.
	ScheduleDelivery(delay int64, ref packet.Ref)
}

// Router is one switch of the simulated network.
type Router struct {
	id     packet.RouterID
	topo   topology.Topology
	scheme core.Scheme
	mgr    *core.Manager
	alg    routing.Algorithm
	params Params
	env    Env
	rng    *rand.Rand
	store  *packet.Store

	numPorts int
	inputs   []*buffer.InputBuffer
	outputs  []*buffer.OutputBuffer   // nil for terminal ports
	eject    [][]*buffer.OutputBuffer // [terminal port][class], nil otherwise
	linkBusy []int64
	ejBusy   [][]int64

	// Immutable per-port facts, resolved once at construction so the
	// allocation and transmit passes never re-query the topology interface.
	kinds    []topology.PortKind
	nbrs     []packet.RouterID // neighbor router per port (InvalidRouter for terminal)
	nbrPorts []int             // input port on the neighbor (-1 for terminal)
	linkLat  []int64           // link latency per port

	// down lazily caches Env.DownstreamInput per output port (the environment
	// is wired after construction, so the cache fills on first use).
	down    []*buffer.InputBuffer
	downSet []bool

	// Activity lists drive the batched allocator: instead of probing every
	// VC of every port each allocation iteration, the proposal pass visits
	// only ports that actually hold packets (liveIn, a dense ascending-sorted
	// list) and within each port only the occupied VCs (vcMask), and the
	// transmit pass only ports with staged output work (xmit). The lists are
	// pure occupancy bookkeeping, updated incrementally on enqueue and
	// dequeue — skipping an empty port or VC is exactly what the probing loop
	// would have concluded, and the sorted order reproduces the full scan's
	// ascending port order, so results are bit-identical. Ports with more
	// than 64 VCs (vcMaskOK false; unused in practice) scan all VCs of the
	// live port. AuditActivity cross-checks list state against a brute-force
	// scan in tests.
	liveIn   portList
	xmit     portList
	inCount  []int32  // resident input packets per port
	vcMask   []uint64 // per port: bit v set iff VC v holds >= 1 packet
	vcMaskOK []bool   // vcMask[p] maintained (port has <= 64 VCs)

	inVCRR []int // round-robin pointer over VCs, per input port
	outRR  []int // round-robin pointer over input ports, per output resource
	alloc  allocState

	// pending counts packets resident anywhere in the router (input VCs,
	// output staging buffers, ejection channels). The simulator skips the
	// Step of routers with no pending work.
	pending int

	// failStamp memoises failed proposals: failStamp[port*vcStride+vc]
	// records now+1 when no request could be built for the head of that VC
	// at cycle `now`. Within a cycle no buffer space is ever freed (credits
	// return through events between cycles, output/ejection buffers drain
	// after the last allocation iteration) and no new head can appear
	// (arrivals enqueue between cycles), so a failed request stays failed
	// for the remaining allocation iterations of the cycle and need not be
	// rebuilt. Heads with an unstable routing decision (uncommitted PAR/PB
	// packets) are never stamped: their decision re-senses occupancy, which
	// does change as the cycle's grants land.
	failStamp []int64
	// portFail is the port-level analogue: a port none of whose VCs could
	// propose (all of them stampable) is skipped for the rest of the cycle.
	portFail []int64
	// plans caches, per input VC (flat, port*vcStride+vc), the
	// routing-stable part of the head packet's request (output port, allowed
	// VC ranges, escape fallback). Occupancy-dependent checks are
	// re-evaluated every cycle.
	plans []vcPlan
	// vcStride is the row stride of failStamp and plans: the maximum VC
	// count over all input ports.
	vcStride int

	// vcCand is reusable scratch for selectVC's candidate list.
	vcCand []core.VCCandidate

	// grantCount counts switch allocations, for utilisation statistics.
	grantCount int64
}

// New builds a router. The environment may be set later with SetEnv (the
// simulator wires routers and the event system together after construction).
func New(id packet.RouterID, topo topology.Topology, scheme core.Scheme, alg routing.Algorithm, params Params, seed int64) (*Router, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	r := &Router{
		id:       id,
		topo:     topo,
		scheme:   scheme,
		mgr:      core.NewManager(scheme),
		alg:      alg,
		params:   params,
		store:    params.Store,
		numPorts: topo.Radix(),
		rng:      rand.New(rand.NewSource(seed ^ (int64(id)+1)*0x9E3779B9)),
	}
	r.inputs = make([]*buffer.InputBuffer, r.numPorts)
	r.outputs = make([]*buffer.OutputBuffer, r.numPorts)
	r.eject = make([][]*buffer.OutputBuffer, r.numPorts)
	r.linkBusy = make([]int64, r.numPorts)
	r.ejBusy = make([][]int64, r.numPorts)
	r.kinds = make([]topology.PortKind, r.numPorts)
	r.nbrs = make([]packet.RouterID, r.numPorts)
	r.nbrPorts = make([]int, r.numPorts)
	r.linkLat = make([]int64, r.numPorts)
	r.down = make([]*buffer.InputBuffer, r.numPorts)
	r.downSet = make([]bool, r.numPorts)
	r.inVCRR = make([]int, r.numPorts)
	r.outRR = make([]int, r.numPorts*(1+params.NumClasses))
	r.portFail = make([]int64, r.numPorts)
	r.liveIn = newPortList(r.numPorts)
	r.xmit = newPortList(r.numPorts)
	r.inCount = make([]int32, r.numPorts)
	r.vcMask = make([]uint64, r.numPorts)
	r.vcMaskOK = make([]bool, r.numPorts)
	for p := 0; p < r.numPorts; p++ {
		if n := r.portVCs(topo.PortKind(id, p)); n > r.vcStride {
			r.vcStride = n
		}
	}
	r.failStamp = make([]int64, r.numPorts*r.vcStride)
	r.plans = make([]vcPlan, r.numPorts*r.vcStride)
	for p := 0; p < r.numPorts; p++ {
		kind := topo.PortKind(id, p)
		numVCs := r.portVCs(kind)
		r.kinds[p] = kind
		r.linkLat[p] = int64(params.LinkLatency(kind))
		r.nbrs[p] = packet.InvalidRouter
		r.nbrPorts[p] = -1
		if kind != topology.Terminal {
			r.nbrs[p], r.nbrPorts[p] = topo.Neighbor(id, p)
		}
		r.vcMaskOK[p] = numVCs <= 64
		r.inputs[p] = buffer.NewInputBuffer(params.BufferConfig(kind, numVCs))
		if kind == topology.Terminal {
			r.eject[p] = make([]*buffer.OutputBuffer, params.NumClasses)
			r.ejBusy[p] = make([]int64, params.NumClasses)
			for c := range r.eject[p] {
				r.eject[p][c] = buffer.NewOutputBuffer(params.OutputBufPhits)
			}
		} else {
			r.outputs[p] = buffer.NewOutputBuffer(params.OutputBufPhits)
		}
	}
	return r, nil
}

// portVCs returns the number of VCs of an input port of the given kind.
func (r *Router) portVCs(kind topology.PortKind) int {
	if kind == topology.Terminal {
		return r.params.InjectionQueues
	}
	return r.scheme.VCs.TotalOf(kind)
}

// SetEnv wires the router to its environment and resets the downstream-input
// cache (tests re-wire routers to fresh environments).
func (r *Router) SetEnv(env Env) {
	r.env = env
	for p := range r.downSet {
		r.downSet[p] = false
		r.down[p] = nil
	}
}

// downstream returns the input buffer at the far end of an output port,
// resolving it through the environment once and caching the answer (the
// wiring is immutable for the lifetime of a network).
func (r *Router) downstream(port int) *buffer.InputBuffer {
	if r.downSet[port] {
		return r.down[port]
	}
	b := r.env.DownstreamInput(r.id, port)
	r.down[port] = b
	r.downSet[port] = true
	return b
}

// ID returns the router identifier.
func (r *Router) ID() packet.RouterID { return r.id }

// Input returns the input buffer of a port (injection buffers for terminal
// ports). The simulator uses it to probe occupancy; arrivals go through
// EnqueueArrival so the router's pending-work counter stays exact.
func (r *Router) Input(port int) *buffer.InputBuffer { return r.inputs[port] }

// EnqueueArrival places a packet into an input VC (space must already be
// reserved) and records the pending work, so Busy reports the router needs
// stepping.
func (r *Router) EnqueueArrival(port, vc int, ref packet.Ref, ready int64, kind packet.RouteKind) {
	r.inputs[port].Enqueue(vc, ref, ready, kind)
	r.pending++
	r.noteEnqueue(port, vc)
}

// noteEnqueue updates the activity lists for a packet entering an input VC.
func (r *Router) noteEnqueue(port, vc int) {
	if r.inCount[port]++; r.inCount[port] == 1 {
		r.liveIn.add(port)
	}
	if r.vcMaskOK[port] {
		r.vcMask[port] |= 1 << uint(vc)
	}
}

// noteDequeue updates the activity lists for a packet leaving an input VC.
// It must run after the buffer dequeue (it re-checks the queue length).
func (r *Router) noteDequeue(port, vc int) {
	if r.vcMaskOK[port] && r.inputs[port].QueueLen(vc) == 0 {
		r.vcMask[port] &^= 1 << uint(vc)
	}
	if r.inCount[port]--; r.inCount[port] == 0 {
		r.liveIn.remove(port)
	}
}

// Busy reports whether the router holds any packet (and therefore must be
// stepped). Idle routers can safely be skipped: an empty router's Step is a
// no-op that consumes no randomness and mutates no state.
func (r *Router) Busy() bool { return r.pending > 0 }

// Output returns the output staging buffer of a non-terminal port, or nil.
func (r *Router) Output(port int) *buffer.OutputBuffer { return r.outputs[port] }

// ResidentPackets returns the number of packets stored in the router (input
// VCs, output buffers and ejection buffers), used by the deadlock watchdog.
func (r *Router) ResidentPackets() int {
	n := 0
	for p := 0; p < r.numPorts; p++ {
		n += r.inputs[p].ResidentPackets()
		if r.outputs[p] != nil {
			n += r.outputs[p].Len()
		}
		for _, e := range r.eject[p] {
			n += e.Len()
		}
	}
	return n
}

// Grants returns the number of switch allocations performed so far.
func (r *Router) Grants() int64 { return r.grantCount }

// Step advances the router by one cycle: `speedup` allocation iterations
// followed by link transmission. Steps of distinct routers within one cycle
// are mutually conflict-free (see the Env concurrency contract), so the
// network may run them concurrently; cross-router effects are confined to
// the Env.Schedule* calls, whose replay order the network controls.
func (r *Router) Step(now int64) {
	for i := 0; i < r.params.Speedup; i++ {
		r.allocate(now)
	}
	r.transmit(now)
}

// request is one input port's proposal during an allocation iteration. It
// carries the packet's ref and size so the grant path never resolves the
// store until it must mutate route state.
type request struct {
	inPort, inVC int
	ref          packet.Ref
	size         int32
	outPort      int
	destVC       int
	terminal     bool
	class        int
	outKind      topology.PortKind
	// revert marks a request that follows the packet's escape (minimal)
	// path instead of its planned Valiant continuation; the Valiant detour
	// is abandoned only if this request is granted.
	revert bool
}

// outKey maps an output resource (a non-terminal port, or a terminal port's
// per-class ejection channel) to an arbitration slot.
func (r *Router) outKey(req request) int {
	if !req.terminal {
		return req.outPort
	}
	return r.numPorts + req.outPort*r.params.NumClasses + req.class
}

// allocate runs one iteration of the input-first separable allocator.
func (r *Router) allocate(now int64) {
	if r.alloc.proposals == nil {
		numKeys := r.numPorts * (1 + r.params.NumClasses)
		r.alloc.proposals = make([]request, 0, r.numPorts)
		r.alloc.keyWinner = make([]int, numKeys)
		r.alloc.keyGen = make([]uint64, numKeys)
		r.alloc.touched = make([]int, 0, r.numPorts)
	}
	st := &r.alloc
	st.gen++
	st.proposals = st.proposals[:0]
	st.touched = st.touched[:0]

	// Phase 1 (batched): every live input port contributes at most one
	// (VC, output) proposal built from its cached plan; ports holding no
	// packets are absent from the activity list — identical to what probing
	// them would conclude — and the list's sorted order reproduces the full
	// scan's ascending port order. Grants only land after this loop, so the
	// list is not mutated while it is being walked. Phase 2 (fused): each
	// output resource keeps the proposal closest to its round-robin pointer.
	live := r.liveIn.ports
	for i := 0; i < len(live); i++ {
		p := int(live[i])
		if r.portFail[p] == now+1 {
			continue
		}
		if req, ok := r.proposeFromPort(now, p); ok {
			r.propose(st, req)
		}
	}
	for _, key := range st.touched {
		winner := st.proposals[st.keyWinner[key]]
		r.outRR[key] = (winner.inPort + 1) % r.numPorts
		r.grant(now, winner)
	}
}

// propose files one input port's request into the arbitration state, keeping
// per output resource the proposal closest to its round-robin pointer.
func (r *Router) propose(st *allocState, req request) {
	idx := len(st.proposals)
	st.proposals = append(st.proposals, req)
	key := r.outKey(req)
	if st.keyGen[key] != st.gen {
		st.keyGen[key] = st.gen
		st.keyWinner[key] = idx
		st.touched = append(st.touched, key)
		return
	}
	cur := st.proposals[st.keyWinner[key]]
	if r.rrDistance(key, req.inPort) < r.rrDistance(key, cur.inPort) {
		st.keyWinner[key] = idx
	}
}

// allocState holds reusable allocator scratch space.
type allocState struct {
	proposals []request
	keyWinner []int
	keyGen    []uint64
	gen       uint64
	touched   []int
}

// rrDistance returns the round-robin distance of an input port from the
// output resource's pointer.
func (r *Router) rrDistance(key, inPort int) int {
	return (inPort - r.outRR[key] + r.numPorts) % r.numPorts
}

// vcPlan caches the routing-stable part of the request for an input VC's
// head packet: the routing decision, the allowed VC range of the planned
// continuation and, when the plan is opportunistic, the escape fallback's
// port and range. Those only depend on the packet's route state — which, for
// a packet waiting at the head of a VC, is mutated exclusively by this
// router's own Route/grant calls — so the plan stays valid until the head
// changes. Occupancy checks (output buffer space, downstream credits, VC
// selection) are re-evaluated every cycle from the plan.
//
// Plans are only reusable when the routing decision is provably stable:
// MIN routing, or an adaptive packet that has already committed its decision
// (Route degenerates to the pure routeToward). An uncommitted PAR/PB packet
// re-senses congestion every cycle, so its plan is rebuilt on every
// evaluation, which matches the pre-plan behaviour.
//
// Head identity is checked by Ref AND packet ID: the packet store can
// reissue the same ref for a different packet.
type vcPlan struct {
	ref    packet.Ref
	id     uint64
	stable bool

	deliver bool
	class   int // ejection class (deliver only)
	outPort int
	outKind topology.PortKind
	lo, hi  int // allowed downstream VC range; lo > hi when the plan has none

	// Escape fallback (opportunistic Valiant continuations only).
	escValid     bool
	escOutPort   int
	escOutKind   topology.PortKind
	escLo, escHi int
}

// proposeFromPort picks the first requestable VC of an input port, starting
// from its round-robin pointer. When it finds nothing, it records fail
// stamps so the rest of the cycle skips the re-evaluation — but only for
// heads whose routing decision is stable: an uncommitted adaptive (PAR/PB)
// packet re-senses congestion on every allocation iteration, and occupancy
// grows as the cycle's grants land, so its decision may legitimately change
// within the cycle.
func (r *Router) proposeFromPort(now int64, p int) (request, bool) {
	in := r.inputs[p]
	nvc := in.NumVCs()
	fails := r.failStamp[p*r.vcStride : p*r.vcStride+nvc]
	plans := r.plans[p*r.vcStride : p*r.vcStride+nvc]
	stampable := true

	if r.vcMaskOK[p] {
		// Visit only occupied VCs, in the same round-robin order the probing
		// loop used (start at the RR pointer, wrap around): first the set
		// bits at or above the pointer, then the set bits below it. Empty
		// VCs contribute nothing in either formulation.
		start := r.inVCRR[p]
		mask := r.vcMask[p]
		for _, span := range [2]uint64{mask &^ (1<<uint(start) - 1), mask & (1<<uint(start) - 1)} {
			for span != 0 {
				vc := bits.TrailingZeros64(span)
				span &^= 1 << uint(vc)
				if req, ok, st := r.tryVC(now, in, fails, plans, p, vc, nvc); ok {
					return req, true
				} else if !st {
					stampable = false
				}
			}
		}
	} else {
		for k := 0; k < nvc; k++ {
			vc := (r.inVCRR[p] + k) % nvc
			if req, ok, st := r.tryVC(now, in, fails, plans, p, vc, nvc); ok {
				return req, true
			} else if !st {
				stampable = false
			}
		}
	}
	if stampable {
		r.portFail[p] = now + 1
	}
	return request{}, false
}

// tryVC evaluates the head of one input VC against its cached plan. It
// returns the request and ok on success; stampable is false when the head's
// routing decision is adaptive-uncommitted and may legitimately change within
// the cycle (such heads block the port-level fail stamp).
func (r *Router) tryVC(now int64, in *buffer.InputBuffer, fails []int64, plans []vcPlan, p, vc, nvc int) (request, bool, bool) {
	if fails[vc] == now+1 {
		// This head already failed earlier this cycle and no space has
		// been freed since; skip the re-evaluation.
		return request{}, false, true
	}
	ref := in.Head(vc, now)
	if ref == packet.NilRef {
		// Empty or not-yet-ready heads cannot change within the cycle
		// (arrivals enqueue between cycles and ready times are fixed).
		return request{}, false, true
	}
	plan := &plans[vc]
	hdr := r.store.Hdr(ref)
	if plan.ref != ref || plan.id != hdr.ID || !plan.stable {
		r.buildPlan(p, ref, hdr, plan)
	}
	req, ok := r.requestFromPlan(plan, p, vc, ref, int(hdr.Size))
	if !ok {
		if plan.stable {
			fails[vc] = now + 1
			return request{}, false, true
		}
		return request{}, false, false
	}
	// Advance the pointer past the requesting VC so other VCs get served
	// in subsequent iterations even if this one keeps winning.
	r.inVCRR[p] = (vc + 1) % nvc
	return req, true, true
}

// buildPlan resolves routing and VC management for the head packet of an
// input VC. When the planned continuation of a Valiant detour is
// opportunistic (not classified safe), the packet's escape path (the minimal
// route to its destination) is planned as a fallback, as the paper's
// opportunistic-routing rule prescribes; the detour is only abandoned if the
// escape request wins allocation.
func (r *Router) buildPlan(p int, ref packet.Ref, hdr *packet.Header, plan *vcPlan) {
	rt := r.store.Route(ref)
	dec := r.alg.Route(r.id, hdr, rt, r.rng)
	*plan = vcPlan{
		ref:    ref,
		id:     hdr.ID,
		stable: rt.AdaptiveDecided || r.alg.Kind() == routing.MIN,
	}
	if dec.Deliver {
		class := int(hdr.Class)
		if class >= r.params.NumClasses {
			class = r.params.NumClasses - 1
		}
		plan.deliver = true
		plan.outPort = r.topo.TerminalPort(r.id, hdr.Dst)
		plan.class = class
		return
	}
	var safe bool
	plan.outPort = dec.OutPort
	plan.outKind, plan.lo, plan.hi, safe = r.planRange(p, hdr, rt, dec.OutPort, false)
	if !safe && rt.Kind == packet.Nonminimal && rt.Phase == packet.PhaseToIntermediate {
		escPort := r.topo.NextMinimalPort(r.id, hdr.DstRouter)
		if escPort >= 0 && escPort != dec.OutPort {
			plan.escOutKind, plan.escLo, plan.escHi, _ = r.planRange(p, hdr, rt, escPort, true)
			plan.escOutPort = escPort
			plan.escValid = plan.escLo <= plan.escHi
		}
	}
}

// planRange computes the allowed VC range at the downstream input port of
// one candidate output port. With revert set, the range is computed for the
// escape (minimal) continuation rather than the planned one. It returns
// lo > hi when the continuation is invalid or has no allowed VCs; safe
// reports whether the continuation was classified as a safe hop.
func (r *Router) planRange(p int, hdr *packet.Header, rt *packet.RouteState, outPort int, revert bool) (kind topology.PortKind, lo, hi int, safe bool) {
	if outPort < 0 {
		return topology.Terminal, 1, 0, false
	}
	kind = r.kinds[outPort]
	next := r.nbrs[outPort]
	escape := routing.EscapeRemaining(r.topo, next, hdr.DstRouter)
	planned := escape
	if !revert && rt.Kind == packet.Nonminimal && rt.Phase == packet.PhaseToIntermediate {
		// Only a Valiant detour still heading to its intermediate differs
		// from the escape path; every other plan IS the minimal path, which
		// PlannedRemaining would recompute identically.
		planned = routing.PlannedRemaining(r.topo, next, rt, hdr.DstRouter)
	}
	ctx := core.HopContext{
		Class:        hdr.Class,
		Kind:         kind,
		InputKind:    r.kinds[p],
		InputVC:      int(rt.InputVC),
		RefPosition:  routing.BaselinePosition(r.topo, rt),
		PlannedAfter: planned,
		EscapeAfter:  escape,
	}
	vcRange := r.mgr.AllowedVCs(ctx)
	if vcRange.Empty() {
		return kind, 1, 0, false
	}
	down := r.downstream(outPort)
	if down == nil {
		return kind, 1, 0, vcRange.Safe
	}
	hi = vcRange.Hi
	if hi >= down.NumVCs() {
		hi = down.NumVCs() - 1
	}
	return kind, vcRange.Lo, hi, vcRange.Safe
}

// requestFromPlan performs the per-cycle, occupancy-dependent half of
// request building: ejection/output buffer admission and VC selection over
// the plan's allowed range, falling back to the escape plan when the planned
// continuation has no room.
func (r *Router) requestFromPlan(plan *vcPlan, p, vc int, ref packet.Ref, size int) (request, bool) {
	if plan.deliver {
		if !r.eject[plan.outPort][plan.class].CanAccept(size) {
			return request{}, false
		}
		return request{inPort: p, inVC: vc, ref: ref, size: int32(size), outPort: plan.outPort, destVC: 0,
			terminal: true, class: plan.class, outKind: topology.Terminal}, true
	}
	if plan.lo <= plan.hi && r.outputs[plan.outPort].CanAccept(size) {
		if destVC, ok := r.selectVC(plan.outPort, plan.lo, plan.hi, size); ok {
			return request{inPort: p, inVC: vc, ref: ref, size: int32(size), outPort: plan.outPort,
				destVC: destVC, outKind: plan.outKind}, true
		}
	}
	if plan.escValid && r.outputs[plan.escOutPort].CanAccept(size) {
		if destVC, ok := r.selectVC(plan.escOutPort, plan.escLo, plan.escHi, size); ok {
			return request{inPort: p, inVC: vc, ref: ref, size: int32(size), outPort: plan.escOutPort,
				destVC: destVC, outKind: plan.escOutKind, revert: true}, true
		}
	}
	return request{}, false
}

// selectVC picks one downstream VC with room in [lo, hi] using the scheme's
// selection function.
func (r *Router) selectVC(outPort, lo, hi, size int) (int, bool) {
	down := r.downstream(outPort)
	if down == nil {
		return -1, false
	}
	candidates := r.vcCand[:0]
	for v := lo; v <= hi; v++ {
		candidates = append(candidates, core.VCCandidate{VC: v, Free: down.FreeFor(v)})
	}
	r.vcCand = candidates
	return r.scheme.Selection.Select(candidates, size, r.rng)
}

// grant moves a packet from its input VC into the chosen output buffer,
// consuming downstream credits and scheduling the credit return for the space
// it frees upstream.
func (r *Router) grant(now int64, req request) {
	in := r.inputs[req.inPort]
	ref, resKind := in.Dequeue(req.inVC)
	if ref != req.ref {
		panic(fmt.Sprintf("router %d: allocator granted VC %d of port %d but its head changed", r.id, req.inVC, req.inPort))
	}
	r.grantCount++
	r.noteDequeue(req.inPort, req.inVC)
	r.xmit.add(req.outPort)

	size := int(req.size)
	transfer := int64((size + r.params.Speedup - 1) / r.params.Speedup)
	creditDelay := transfer + r.linkLat[req.inPort]
	r.env.ScheduleCredit(creditDelay, in, req.inVC, size, resKind)

	rt := r.store.Route(ref)
	if req.terminal {
		r.eject[req.outPort][req.class].Push(ref, size, 0, rt.Kind, now+transfer)
		return
	}

	down := r.downstream(req.outPort)
	if !down.Reserve(req.destVC, size, rt.Kind) {
		panic(fmt.Sprintf("router %d: downstream VC %d of port %d lost its credits between check and grant", r.id, req.destVC, req.outPort))
	}
	if req.revert {
		// The escape request won: abandon the Valiant detour and head
		// straight to the destination from here on.
		rt.Phase = packet.PhaseToDestination
	}
	rt.InputVC = int32(req.destVC)
	switch req.outKind {
	case topology.Local:
		rt.LocalHops++
	case topology.Global:
		rt.GlobalHops++
	}
	rt.Hops++
	r.outputs[req.outPort].Push(ref, size, req.destVC, rt.Kind, now+transfer)
}

// transmit drains output buffers onto their links and ejection channels onto
// the terminal links, one packet at a time at one phit per cycle. Only ports
// with staged packets are visited (in ascending port order, matching the full
// scan); a port leaves the activity list once all its staging buffers drain.
// Removal shifts the remaining (higher) ports left, so not advancing the
// index after a removal preserves the ascending visit order.
func (r *Router) transmit(now int64) {
	l := &r.xmit
	for i := 0; i < len(l.ports); {
		p := int(l.ports[i])
		if r.transmitPort(now, p) {
			l.in[p] = false
			copy(l.ports[i:], l.ports[i+1:])
			l.ports = l.ports[:len(l.ports)-1]
		} else {
			i++
		}
	}
}

// transmitPort services one port's staging buffers and reports whether they
// are now empty.
func (r *Router) transmitPort(now int64, p int) bool {
	if r.outputs[p] != nil {
		r.transmitLink(now, p)
		return r.outputs[p].Len() == 0
	}
	empty := true
	for c := range r.eject[p] {
		r.transmitEject(now, p, c)
		if r.eject[p][c].Len() > 0 {
			empty = false
		}
	}
	return empty
}

func (r *Router) transmitLink(now int64, p int) {
	if r.linkBusy[p] > now {
		return
	}
	ref, size, destVC, kind := r.outputs[p].Head(now)
	if ref == packet.NilRef {
		return
	}
	r.outputs[p].Pop()
	r.pending--
	r.linkBusy[p] = now + int64(size)
	r.env.ScheduleArrival(r.linkLat[p]+int64(size), r.nbrs[p], r.nbrPorts[p], destVC, ref, kind)
}

func (r *Router) transmitEject(now int64, p, c int) {
	if r.ejBusy[p][c] > now {
		return
	}
	ref, size, _, _ := r.eject[p][c].Head(now)
	if ref == packet.NilRef {
		return
	}
	r.eject[p][c].Pop()
	r.pending--
	r.ejBusy[p][c] = now + int64(size)
	r.env.ScheduleDelivery(int64(r.params.InjectionLatency+size), ref)
}
