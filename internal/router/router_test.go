package router

import (
	"testing"

	"flexvc/internal/buffer"
	"flexvc/internal/core"
	"flexvc/internal/packet"
	"flexvc/internal/routing"
	"flexvc/internal/topology"
)

// fakeEnv is a minimal router environment: it wires a single router's output
// ports back to stand-alone input buffers and records scheduled events.
type fakeEnv struct {
	topo       topology.Topology
	downstream map[int]*buffer.InputBuffer // keyed by output port
	arrivals   []struct {
		delay int64
		port  int
		vc    int
		ref   packet.Ref
	}
	credits    int
	deliveries []packet.Ref
}

func (f *fakeEnv) DownstreamInput(r packet.RouterID, port int) *buffer.InputBuffer {
	return f.downstream[port]
}

func (f *fakeEnv) ScheduleArrival(delay int64, to packet.RouterID, port, vc int, ref packet.Ref, kind packet.RouteKind) {
	f.arrivals = append(f.arrivals, struct {
		delay int64
		port  int
		vc    int
		ref   packet.Ref
	}{delay, port, vc, ref})
}

func (f *fakeEnv) ScheduleCredit(delay int64, buf *buffer.InputBuffer, vc, size int, kind packet.RouteKind) {
	f.credits++
}

func (f *fakeEnv) ScheduleDelivery(delay int64, ref packet.Ref) {
	f.deliveries = append(f.deliveries, ref)
}

func testParams(numClasses int, store *packet.Store) Params {
	return Params{
		Store:            store,
		Speedup:          2,
		Pipeline:         2,
		OutputBufPhits:   32,
		InjectionQueues:  2,
		NumClasses:       numClasses,
		LocalLatency:     4,
		GlobalLatency:    10,
		InjectionLatency: 1,
		BufferConfig: func(kind topology.PortKind, numVCs int) buffer.Config {
			return buffer.StaticConfig(numVCs, 32)
		},
	}
}

func buildRouter(t testing.TB) (*Router, *fakeEnv, *topology.Dragonfly, *packet.Store) {
	t.Helper()
	topo, err := topology.NewDragonfly(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := packet.NewStore()
	scheme := core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(2, 1), Selection: core.JSQ}
	rt, err := New(0, topo, scheme, routing.NewMinimal(topo), testParams(1, store), 7)
	if err != nil {
		t.Fatal(err)
	}
	env := &fakeEnv{topo: topo, downstream: map[int]*buffer.InputBuffer{}}
	for p := 0; p < topo.Radix(); p++ {
		if topo.PortKind(0, p) == topology.Terminal {
			continue
		}
		numVCs := scheme.VCs.TotalOf(topo.PortKind(0, p))
		env.downstream[p] = buffer.NewInputBuffer(buffer.StaticConfig(numVCs, 64))
	}
	rt.SetEnv(env)
	return rt, env, topo, store
}

// TestParamsValidation checks the parameter guard rails.
func TestParamsValidation(t *testing.T) {
	store := packet.NewStore()
	good := testParams(1, store)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Store = nil },
		func(p *Params) { p.Speedup = 0 },
		func(p *Params) { p.Pipeline = -1 },
		func(p *Params) { p.OutputBufPhits = 0 },
		func(p *Params) { p.InjectionQueues = 0 },
		func(p *Params) { p.NumClasses = 0 },
		func(p *Params) { p.BufferConfig = nil },
	}
	for i, mut := range bad {
		p := testParams(1, store)
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if good.LinkLatency(topology.Global) != 10 || good.LinkLatency(topology.Local) != 4 || good.LinkLatency(topology.Terminal) != 1 {
		t.Error("LinkLatency broken")
	}
}

// TestForwardMinimalPacket injects a packet into a router's injection buffer
// and checks that it is allocated, consumes downstream credits and leaves on
// the right link.
func TestForwardMinimalPacket(t *testing.T) {
	rt, env, topo, store := buildRouter(t)

	// A packet from node 0 (attached to router 0) to a node of another
	// group, so its first hop is deterministic.
	dst := topo.NodeAt(topo.RouterInGroup(1, 0), 0)
	ref := store.Alloc(1, topo.NodeAt(0, 0), dst, 8, packet.Request, 0)
	hdr := store.Hdr(ref)
	hdr.SrcRouter = 0
	hdr.DstRouter = topo.RouterOfNode(dst)
	dstRouter := hdr.DstRouter

	inj := rt.Input(0)
	if !inj.Reserve(0, 8, packet.Minimal) {
		t.Fatal("injection buffer should have room")
	}
	rt.EnqueueArrival(0, 0, ref, 0, packet.Minimal)
	if err := rt.AuditActivity(); err != nil {
		t.Fatal(err)
	}

	wantPort := topo.NextMinimalPort(0, dstRouter)
	for cyc := int64(0); cyc < 40 && len(env.arrivals) == 0; cyc++ {
		rt.Step(cyc)
		if err := rt.AuditActivity(); err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
	}
	if len(env.arrivals) != 1 {
		t.Fatalf("expected one arrival, got %d", len(env.arrivals))
	}
	if rt.Grants() != 1 {
		t.Fatalf("expected one grant, got %d", rt.Grants())
	}
	arr := env.arrivals[0]
	_, wantInPort := topo.Neighbor(0, wantPort)
	if arr.port != wantInPort {
		t.Errorf("packet left through the wrong link (arrives at port %d, want %d)", arr.port, wantInPort)
	}
	if env.downstream[wantPort].CommittedOf(arr.vc) != 8 {
		t.Error("downstream credits were not consumed")
	}
	if env.credits == 0 {
		t.Error("the input buffer credit return was never scheduled")
	}
	rtState := store.Route(ref)
	if rtState.Hops != 1 || int(rtState.InputVC) != arr.vc {
		t.Errorf("route state not updated: %+v", *rtState)
	}
	if rt.ResidentPackets() != 0 {
		t.Error("packet should have left the router")
	}
}

// TestEjectionByClass checks that packets destined to local nodes are
// delivered through the per-class ejection channels.
func TestEjectionByClass(t *testing.T) {
	topo, err := topology.NewDragonfly(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	store := packet.NewStore()
	scheme := core.Scheme{Policy: core.Baseline, VCs: core.TwoClass(2, 1, 2, 1), Selection: core.JSQ}
	rt, err := New(0, topo, scheme, routing.NewMinimal(topo), testParams(2, store), 7)
	if err != nil {
		t.Fatal(err)
	}
	env := &fakeEnv{topo: topo, downstream: map[int]*buffer.InputBuffer{}}
	rt.SetEnv(env)

	// A reply arriving on a local input port, destined to node 1 of router 0.
	ref := store.Alloc(2, topo.NodeAt(5, 0), topo.NodeAt(0, 1), 8, packet.Reply, 0)
	hdr := store.Hdr(ref)
	hdr.SrcRouter = 5
	hdr.DstRouter = 0
	store.Route(ref).InputVC = 2
	localPort := topo.FirstLocalPort()
	rt.Input(localPort).Reserve(2, 8, packet.Minimal)
	rt.EnqueueArrival(localPort, 2, ref, 0, packet.Minimal)

	for cyc := int64(0); cyc < 40 && len(env.deliveries) == 0; cyc++ {
		rt.Step(cyc)
	}
	if len(env.deliveries) != 1 || env.deliveries[0] != ref {
		t.Fatalf("reply was not delivered (deliveries=%d)", len(env.deliveries))
	}
}

// TestVCMaskFallbackEquivalence pins the claim that the VC-occupancy-mask
// proposal pass is bit-identical to the full-VC-scan fallback (used when a
// port has more than 64 VCs, which no shipped configuration does): two
// routers built identically — one forced onto the fallback — must produce
// the same grant count and the same arrival, credit and delivery sequences
// for the same workload.
func TestVCMaskFallbackEquivalence(t *testing.T) {
	build := func() (*Router, *fakeEnv, *topology.Dragonfly, *packet.Store) {
		topo, err := topology.NewDragonfly(2, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		store := packet.NewStore()
		scheme := core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
		rt, err := New(0, topo, scheme, routing.NewValiant(topo), testParams(1, store), 7)
		if err != nil {
			t.Fatal(err)
		}
		env := &fakeEnv{topo: topo, downstream: map[int]*buffer.InputBuffer{}}
		for p := 0; p < topo.Radix(); p++ {
			if topo.PortKind(0, p) == topology.Terminal {
				continue
			}
			numVCs := scheme.VCs.TotalOf(topo.PortKind(0, p))
			env.downstream[p] = buffer.NewInputBuffer(buffer.StaticConfig(numVCs, 24))
		}
		rt.SetEnv(env)
		return rt, env, topo, store
	}
	masked, envA, topo, storeA := build()
	fallback, envB, _, storeB := build()
	for p := range fallback.vcMaskOK {
		fallback.vcMaskOK[p] = false
	}
	if !masked.vcMaskOK[0] {
		t.Fatal("test router unexpectedly non-maskable; the comparison is vacuous")
	}

	// Inject a mixed workload: several packets per injection VC toward
	// different destinations, so allocation contends across VCs and ports.
	feed := func(rt *Router, store *packet.Store) {
		id := uint64(1)
		for vc := 0; vc < testParams(1, store).InjectionQueues; vc++ {
			for i := 0; i < 3; i++ {
				dst := topo.NodeAt(topo.RouterInGroup(1+i%2, (i+vc)%4), 0)
				ref := store.Alloc(id, topo.NodeAt(0, 0), dst, 8, packet.Request, 0)
				id++
				hdr := store.Hdr(ref)
				hdr.SrcRouter = 0
				hdr.DstRouter = topo.RouterOfNode(dst)
				if rt.Input(0).Reserve(vc, 8, packet.Minimal) {
					rt.EnqueueArrival(0, vc, ref, 0, packet.Minimal)
				}
			}
		}
	}
	feed(masked, storeA)
	feed(fallback, storeB)

	for cyc := int64(0); cyc < 200; cyc++ {
		masked.Step(cyc)
		fallback.Step(cyc)
		if err := masked.AuditActivity(); err != nil {
			t.Fatalf("masked cycle %d: %v", cyc, err)
		}
		if err := fallback.AuditActivity(); err != nil {
			t.Fatalf("fallback cycle %d: %v", cyc, err)
		}
	}

	if masked.Grants() != fallback.Grants() {
		t.Fatalf("grant counts diverge: masked %d, fallback %d", masked.Grants(), fallback.Grants())
	}
	if envA.credits != envB.credits || len(envA.deliveries) != len(envB.deliveries) {
		t.Fatalf("credit/delivery sequences diverge: %d/%d vs %d/%d",
			envA.credits, len(envA.deliveries), envB.credits, len(envB.deliveries))
	}
	if len(envA.arrivals) == 0 || len(envA.arrivals) != len(envB.arrivals) {
		t.Fatalf("arrival counts diverge (or empty): %d vs %d", len(envA.arrivals), len(envB.arrivals))
	}
	for i := range envA.arrivals {
		a, b := envA.arrivals[i], envB.arrivals[i]
		if a.delay != b.delay || a.port != b.port || a.vc != b.vc || storeA.Hdr(a.ref).ID != storeB.Hdr(b.ref).ID {
			t.Fatalf("arrival %d diverges: masked %+v (pkt %d), fallback %+v (pkt %d)",
				i, a, storeA.Hdr(a.ref).ID, b, storeB.Hdr(b.ref).ID)
		}
	}
}
