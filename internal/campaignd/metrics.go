package campaignd

import "log/slog"

// Metric names the campaign service registers (see internal/obs and the
// DESIGN.md "Observability" section for the full inventory). Lease-protocol
// and checkpoint series (flexvc_results_*, flexvc_sweep_*) are produced by
// the layers below and flow up into the same registry: workers snapshot their
// whole registry into a terminal "metrics" event, and the coordinator merges
// those snapshots so `campaignd serve`'s /metrics shows the pooled totals.
const (
	// MetricWorkerRecordsPerSec is a per-worker static value (labeled
	// worker="w0"…) holding the worker's end-of-run fresh-simulation
	// throughput, taken from its summary progress event. Static values
	// survive obs.Registry.Merge, so each worker's rate remains visible
	// after coordinator aggregation.
	MetricWorkerRecordsPerSec = "flexvc_campaignd_worker_records_per_sec"
	// MetricWorkersSpawned counts worker processes the coordinator started.
	MetricWorkersSpawned = "flexvc_campaignd_workers_spawned_total"
	// MetricWorkersKilled counts chaos-hook SIGKILLs (KillAfterRecords).
	MetricWorkersKilled = "flexvc_campaignd_workers_killed_total"
	// MetricWorkerFailures counts workers that exited with an error the
	// coordinator did not cause itself.
	MetricWorkerFailures = "flexvc_campaignd_worker_failures_total"
	// MetricCampaignsDone / MetricCampaignsFailed count terminal campaign
	// outcomes on the server.
	MetricCampaignsDone   = "flexvc_campaignd_campaigns_done_total"
	MetricCampaignsFailed = "flexvc_campaignd_campaigns_failed_total"
)

// logger returns l, or a discard logger when nil, so the package's layers can
// log unconditionally while keeping structured logging strictly opt-in (the
// zero WorkerConfig/Coordinator/Server stays silent).
func logger(l *slog.Logger) *slog.Logger {
	if l == nil {
		return slog.New(slog.DiscardHandler)
	}
	return l
}
