package campaignd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Submit posts a campaign to a running campaignd server and returns the
// submission id. spec is the raw campaign JSON; builtinName, when non-empty,
// submits an embedded spec instead (spec must then be nil). The query values
// carry the run parameters (workers, scale, seeds, quick).
func Submit(server string, spec []byte, builtinName string, q url.Values) (string, error) {
	if q == nil {
		q = url.Values{}
	}
	if builtinName != "" {
		q.Set("spec", builtinName)
	}
	u := strings.TrimRight(server, "/") + "/api/campaigns?" + q.Encode()
	resp, err := http.Post(u, "application/json", strings.NewReader(string(spec)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("campaignd: submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		return "", fmt.Errorf("campaignd: submit: unparseable response %q", strings.TrimSpace(string(body)))
	}
	return st.ID, nil
}

// Follow streams a submission's NDJSON events to onEvent until the terminal
// event. It returns the export path on success and an error when the
// campaign failed (carrying the server-reported message).
func Follow(server, id string, onEvent func(Event)) (string, error) {
	u := strings.TrimRight(server, "/") + "/api/campaigns/" + url.PathEscape(id) + "/events"
	resp, err := http.Get(u)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return "", fmt.Errorf("campaignd: events: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var last Event
	for sc.Scan() {
		var ev Event
		if json.Unmarshal(sc.Bytes(), &ev) != nil {
			continue
		}
		if onEvent != nil {
			onEvent(ev)
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	switch {
	case last.Type == "done":
		return last.Export, nil
	case last.Type == "error":
		return "", fmt.Errorf("campaignd: campaign failed: %s", last.Error)
	}
	return "", fmt.Errorf("campaignd: event stream ended without a terminal event")
}
