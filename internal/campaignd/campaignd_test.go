package campaignd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/results"
	"flexvc/internal/sweep"
)

func strp(s string) *string { return &s }

// testCampaign is the reference job of this package's end-to-end tests: a
// tiny two-variant, three-load, two-seed campaign (12 replications) that a
// single process finishes in a couple of seconds.
func testCampaign() *campaign.Campaign {
	return &campaign.Campaign{
		Name:  "shard-test",
		Title: "shard-claim test campaign",
		Scale: "tiny",
		Seeds: 2,
		Loads: []float64{0.2, 0.6, 1.0},
		Sections: []campaign.SectionSpec{{
			Title: "tiny UN/MIN panel",
			Base:  &campaign.Settings{Traffic: strp("un"), Routing: strp("min")},
			Variants: []campaign.VariantSpec{
				{Label: "Baseline 2/1", Set: campaign.Settings{Policy: strp("baseline"), VCs: strp("2/1"), Select: strp("jsq")}},
				{Label: "FlexVC 4/2", Set: campaign.Settings{Policy: strp("flexvc"), VCs: strp("4/2"), Select: strp("jsq")}},
			},
		}},
	}
}

const testCampaignReplications = 2 * 3 * 2

// singleProcessExport runs the test campaign the way `figures run -campaign`
// does — one process, checkpointed, then exported — and returns the export
// bytes: the byte-identity reference for every sharded run.
func singleProcessExport(t *testing.T) []byte {
	t.Helper()
	spec := testCampaign()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(spec, sweep.Options{Results: store}); err != nil {
		t.Fatal(err)
	}
	path, err := store.WriteExport(spec.Name, spec.ReportTitle())
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCampaigndWorkerHelperProcess is not a test: it is the worker-process
// body the coordinator tests spawn (the same pattern as the sweep package's
// SIGKILL helper). It runs RunWorker against the env-named spec/directory,
// streaming events to stdout.
func TestCampaigndWorkerHelperProcess(t *testing.T) {
	dir := os.Getenv("FLEXVC_CAMPAIGND_DIR")
	if dir == "" {
		t.Skip("helper process for the campaignd coordinator tests")
	}
	ttl, _ := time.ParseDuration(os.Getenv("FLEXVC_CAMPAIGND_TTL"))
	err := RunWorker(WorkerConfig{
		SpecPath:   os.Getenv("FLEXVC_CAMPAIGND_SPEC"),
		ResultsDir: dir,
		Owner:      os.Getenv("FLEXVC_CAMPAIGND_OWNER"),
		LeaseTTL:   ttl,
		Poll:       5 * time.Millisecond,
		Events:     os.Stdout,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// helperWorkerCommand builds worker commands that re-exec this test binary's
// helper process instead of a campaignd binary.
func helperWorkerCommand(dir string, ttl time.Duration) func(i int, specPath string) (*exec.Cmd, error) {
	return func(i int, specPath string) (*exec.Cmd, error) {
		cmd := exec.Command(os.Args[0], "-test.run", "^TestCampaigndWorkerHelperProcess$")
		cmd.Env = append(os.Environ(),
			"FLEXVC_CAMPAIGND_DIR="+dir,
			"FLEXVC_CAMPAIGND_SPEC="+specPath,
			"FLEXVC_CAMPAIGND_OWNER="+fmt.Sprintf("w%d", i),
			"FLEXVC_CAMPAIGND_TTL="+ttl.String(),
		)
		return cmd, nil
	}
}

func countRecordFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "records"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// TestShardedRunExactlyOnceAndByteIdentical is the multi-process acceptance
// test: two worker processes run the same campaign concurrently against one
// results directory. Every key must be simulated by exactly one of them
// (summed fresh replications across workers equal the campaign size), the
// directory must hold exactly one record per key, and the export must be
// byte-identical to a single-process run's.
func TestShardedRunExactlyOnceAndByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	ref := singleProcessExport(t)

	dir := t.TempDir()
	var mu sync.Mutex
	fresh := map[string]int{} // worker -> replications it simulated itself
	co := &Coordinator{
		Spec:          testCampaign(),
		ResultsDir:    dir,
		Workers:       2,
		WorkerCommand: helperWorkerCommand(dir, time.Minute),
		OnEvent: func(ev Event) {
			if ev.Type == "progress" && ev.Worker != "final" {
				mu.Lock()
				fresh[ev.Worker] = ev.Done - ev.Skipped
				mu.Unlock()
			}
		},
	}
	path, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("sharded export is not byte-identical to the single-process run")
	}
	if n := countRecordFiles(t, dir); n != testCampaignReplications {
		t.Errorf("results dir holds %d record files, want %d (no duplicates, no losses)", n, testCampaignReplications)
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for w, n := range fresh {
		t.Logf("worker %s simulated %d replications", w, n)
		total += n
	}
	if total != testCampaignReplications {
		t.Errorf("workers simulated %d replications in total, want exactly %d (exactly-once)", total, testCampaignReplications)
	}
	if len(fresh) != 2 {
		t.Errorf("saw progress from %d workers, want 2", len(fresh))
	}
}

// TestShardedRunSurvivesSIGKILLedWorker extends the SIGKILL-resume harness
// to campaignd: of two workers, one is SIGKILLed mid-run; the survivor takes
// over its expired leases and the campaign must complete with no duplicated
// or lost records and a byte-identical export.
func TestShardedRunSurvivesSIGKILLedWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	ref := singleProcessExport(t)

	dir := t.TempDir()
	// The TTL bounds how long the survivor waits before taking over the
	// victim's leases, so keep it short — but not so short that a loaded CI
	// box can stall a *live* worker's heartbeat (TTL/4) past it and trigger a
	// spurious takeover. 1s gives a 750ms scheduling margin per beat.
	ttl := time.Second
	killSeen := false
	co := &Coordinator{
		Spec:             testCampaign(),
		ResultsDir:       dir,
		Workers:          2,
		LeaseTTL:         ttl,
		KillAfterRecords: 2,
		WorkerCommand:    helperWorkerCommand(dir, ttl),
		OnEvent: func(ev Event) {
			if ev.Type == "error" && strings.Contains(ev.Error, "chaos hook") {
				killSeen = true
			}
		},
	}
	path, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if killSeen {
		t.Log("worker 0 SIGKILLed mid-run (chaos hook fired)")
	} else {
		t.Log("campaign finished before the kill landed; resume path not exercised this run")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("post-SIGKILL export is not byte-identical to the single-process run")
	}
	if n := countRecordFiles(t, dir); n != testCampaignReplications {
		t.Errorf("results dir holds %d record files, want %d", n, testCampaignReplications)
	}
}

// TestServerSubmitFollowExport drives the HTTP layer end to end: submit the
// test campaign to a Server (workers backed by the helper process), follow
// its NDJSON event stream to completion, and verify the export.
func TestServerSubmitFollowExport(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	ref := singleProcessExport(t)

	dir := t.TempDir()
	s := &Server{
		ResultsRoot:    dir,
		DefaultWorkers: 2,
		WorkerCommand:  helperWorkerCommand(dir, time.Minute),
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	specJSON, err := json.Marshal(testCampaign())
	if err != nil {
		t.Fatal(err)
	}
	id, err := Submit(srv.URL, specJSON, "", url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if want := "shard-test-1"; id != want {
		t.Errorf("submission id %q, want %q", id, want)
	}
	var events []Event
	export, err := Follow(srv.URL, id, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(export)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("served export is not byte-identical to the single-process run")
	}
	sawProgress := false
	for _, ev := range events {
		if ev.Type == "progress" {
			sawProgress = true
			break
		}
	}
	if !sawProgress {
		t.Error("event stream carried no progress events")
	}

	// Status endpoint agrees.
	var st jobStatus
	resp, err := srv.Client().Get(srv.URL + "/api/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Export != export {
		t.Errorf("status %+v, want done with export %s", st, export)
	}

	// Unknown ids and invalid specs fail loudly.
	if resp, err := srv.Client().Get(srv.URL + "/api/campaigns/nope"); err == nil {
		if resp.StatusCode != 404 {
			t.Errorf("unknown id returned %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if _, err := Submit(srv.URL, []byte(`{"name":"BAD NAME"}`), "", nil); err == nil {
		t.Error("invalid spec was accepted")
	}
}
