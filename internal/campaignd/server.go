package campaignd

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/obs"
)

// Server is the HTTP front end of the campaign service: POST a campaign spec
// and the server runs it through a Coordinator against the shared results
// root, while any number of clients follow the run's progress as an NDJSON
// event stream. Submissions against the same results root share the
// checkpoint pool, so two users submitting overlapping campaigns dedupe each
// other's work through the same lease protocol the workers use.
//
// API:
//
//	POST /api/campaigns            body: campaign spec JSON (or empty with
//	                               ?spec=<embedded name>); query: workers,
//	                               scale, seeds, quick → {"id": ...}
//	GET  /api/campaigns            list of campaign statuses
//	GET  /api/campaigns/{id}       one campaign's status
//	GET  /api/campaigns/{id}/events  NDJSON event stream: full history, then
//	                               live events until the terminal done/error
type Server struct {
	// ResultsRoot is the shared results directory every campaign runs
	// against (the dedup'd checkpoint pool).
	ResultsRoot string
	// DefaultWorkers is the worker-process count when a submission does not
	// pass ?workers= (minimum 1).
	DefaultWorkers int
	// LeaseTTL, Poll, Revision and WorkerCommand are forwarded to each
	// campaign's Coordinator.
	LeaseTTL      time.Duration
	Poll          time.Duration
	Revision      string
	WorkerCommand func(i int, specPath string) (*exec.Cmd, error)
	// Metrics, when non-nil, is served as Prometheus text on GET /metrics
	// and passed to every campaign's Coordinator, so worker snapshots and
	// final-pass instrumentation pool across submissions.
	Metrics *obs.Registry
	// Logger receives structured diagnostics (nil: silent).
	Logger *slog.Logger

	mu   sync.Mutex
	seq  int
	jobs map[string]*jobState
}

// jobStatus is the JSON shape of a campaign's status.
type jobStatus struct {
	ID       string `json:"id"`
	Campaign string `json:"campaign"`
	Workers  int    `json:"workers"`
	State    string `json:"state"` // "running", "done", "failed"
	Export   string `json:"export,omitempty"`
	Error    string `json:"error,omitempty"`
	// Done/Total mirror the latest progress event.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// jobState is one submitted campaign: its coordinator run plus the event
// history and live subscribers.
type jobState struct {
	mu     sync.Mutex
	status jobStatus
	events []Event
	subs   map[chan Event]bool
	done   chan struct{}
}

func (j *jobState) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	if ev.Type == "progress" && ev.Total > 0 {
		j.status.Done, j.status.Total = ev.Done, ev.Total
	}
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // a stalled subscriber must not block the run
		}
	}
}

// finish records the terminal state and closes every subscriber stream.
func (j *jobState) finish(export string, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.status.State, j.status.Error = "failed", err.Error()
	} else {
		j.status.State, j.status.Export = "done", export
	}
	close(j.done)
}

func (j *jobState) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/campaigns", s.handleCampaigns)
	mux.HandleFunc("/api/campaigns/", s.handleCampaign)
	if s.Metrics != nil {
		mux.HandleFunc("/metrics", s.handleMetrics)
	}
	return mux
}

// handleMetrics serves the pooled registry as Prometheus exposition text.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.Metrics.WritePrometheus(w)
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		list := make([]jobStatus, 0, len(s.jobs))
		for _, j := range s.jobs {
			list = append(list, j.snapshot())
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, list)
	case http.MethodPost:
		s.submit(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var spec *campaign.Campaign
	var err error
	if name := q.Get("spec"); name != "" {
		spec, err = campaign.Builtin(name)
	} else {
		var body []byte
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
		if err == nil {
			if len(body) == 0 {
				err = fmt.Errorf("empty body (POST the campaign spec JSON, or use ?spec=<embedded name>)")
			} else {
				spec, err = campaign.Parse(body)
			}
		}
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	workers := s.DefaultWorkers
	if v := q.Get("workers"); v != "" {
		if workers, err = strconv.Atoi(v); err != nil || workers < 1 || workers > 64 {
			http.Error(w, "workers must be an integer in [1,64]", http.StatusBadRequest)
			return
		}
	}
	if workers < 1 {
		workers = 1
	}
	seeds := 0
	if v := q.Get("seeds"); v != "" {
		if seeds, err = strconv.Atoi(v); err != nil || seeds < 0 {
			http.Error(w, "seeds must be a non-negative integer", http.StatusBadRequest)
			return
		}
	}
	co := &Coordinator{
		Spec:          spec,
		ResultsDir:    s.ResultsRoot,
		Workers:       workers,
		Scale:         q.Get("scale"),
		Seeds:         seeds,
		Quick:         q.Get("quick") != "" && q.Get("quick") != "0",
		LeaseTTL:      s.LeaseTTL,
		Poll:          s.Poll,
		Revision:      s.Revision,
		WorkerCommand: s.WorkerCommand,
		Metrics:       s.Metrics,
		Logger:        s.Logger,
	}

	s.mu.Lock()
	if s.jobs == nil {
		s.jobs = make(map[string]*jobState)
	}
	s.seq++
	id := fmt.Sprintf("%s-%d", spec.Name, s.seq)
	job := &jobState{
		status: jobStatus{ID: id, Campaign: spec.Name, Workers: workers, State: "running"},
		subs:   make(map[chan Event]bool),
		done:   make(chan struct{}),
	}
	s.jobs[id] = job
	s.mu.Unlock()

	log := logger(s.Logger)
	log.Info("campaign submitted", "id", id, "campaign", spec.Name, "workers", workers)
	co.OnEvent = job.publish
	go func() {
		export, err := co.Run()
		if err != nil {
			s.Metrics.Counter(MetricCampaignsFailed).Inc()
			log.Error("campaign failed", "id", id, "err", err)
		} else {
			s.Metrics.Counter(MetricCampaignsDone).Inc()
			log.Info("campaign finished", "id", id, "export", export)
		}
		job.finish(export, err)
	}()
	writeJSON(w, http.StatusAccepted, job.snapshot())
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		http.Error(w, fmt.Sprintf("no campaign %q", id), http.StatusNotFound)
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, job.snapshot())
	case "events":
		s.streamEvents(w, r, job)
	default:
		http.Error(w, "unknown resource", http.StatusNotFound)
	}
}

// streamEvents replays the job's event history and then follows live events
// as NDJSON until the job finishes or the client goes away.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, job *jobState) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)

	ch := make(chan Event, 256)
	job.mu.Lock()
	history := append([]Event(nil), job.events...)
	job.subs[ch] = true
	job.mu.Unlock()
	defer func() {
		job.mu.Lock()
		delete(job.subs, ch)
		job.mu.Unlock()
	}()

	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, ev := range history {
		if enc.Encode(ev) != nil {
			return
		}
	}
	flush()
	for {
		select {
		case ev := <-ch:
			if enc.Encode(ev) != nil {
				return
			}
			flush()
		case <-job.done:
			// Drain anything published before the close, then emit a
			// terminal status line so clients need no separate poll.
			for {
				select {
				case ev := <-ch:
					if enc.Encode(ev) != nil {
						return
					}
				default:
					st := job.snapshot()
					ev := Event{Type: "done", Campaign: st.Campaign, Export: st.Export}
					if st.State == "failed" {
						ev = Event{Type: "error", Campaign: st.Campaign, Error: st.Error}
					}
					_ = enc.Encode(ev)
					flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
