// Package campaignd is the multi-process campaign execution service: it fans
// the replications of a declarative campaign (internal/campaign) out across N
// worker processes that share one results directory, using the results
// store's lease-based shard-claim protocol (internal/results) to divide the
// work with per-record exactly-once semantics and no coordinator state
// beyond the filesystem.
//
// The package has three layers, each usable on its own:
//
//   - Worker: one worker process's body. It runs the campaign through the
//     checkpointed sweep runner in claim mode (sweep.Options.Claims) and
//     streams progress events as NDJSON to its stdout.
//   - Coordinator: spawns N workers, multiplexes their event streams,
//     optionally SIGKILLs one mid-run (the chaos hook behind the
//     campaignd-smoke CI gate), and — after every worker has exited — runs a
//     final in-process restore pass that fills any holes a dead worker left
//     and writes the deterministic export. Because records are keyed and
//     sorted independently of which process produced them, the export is
//     byte-identical to a single-process `figures run -campaign` run.
//   - Server: an HTTP front end. Campaign specs are submitted over POST,
//     each submission runs through a Coordinator, and any number of
//     concurrent clients can follow live per-campaign progress as an NDJSON
//     event stream.
//
// Durability and exactly-once are argued in DESIGN.md ("Sharded campaign
// execution"): records are written atomically (fsynced temp file + rename +
// directory fsync) under key-derived names, leases are taken with
// O_CREATE|O_EXCL and taken over through atomic renames after mtime expiry,
// and a key simulated twice (a worker stalled past the lease TTL without
// dying) overwrites its record with byte-identical data because replications
// are deterministic in their key.
package campaignd

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"flexvc/internal/obs"
	"flexvc/internal/sweep"
)

// Event is one NDJSON message of a campaign's progress stream: worker
// progress lines while replications finish, one "summary" line per worker
// run, optionally a "metrics" line carrying the worker's registry snapshot,
// then exactly one terminal "done" or "error" line per stream.
type Event struct {
	// Type is "progress", "summary", "metrics", "done" or "error".
	Type string `json:"type"`
	// Campaign is the campaign (experiment) name.
	Campaign string `json:"campaign,omitempty"`
	// Worker identifies the emitting worker ("w0", "w1", …); empty on
	// coordinator-synthesized events.
	Worker string `json:"worker,omitempty"`
	// Progress payload (Type == "progress"); mirrors sweep.Progress. Done
	// counts the emitting worker's view of the whole campaign: replications
	// it simulated plus ones it restored, including records claimed and
	// written by its peers.
	Section   string `json:"section,omitempty"`
	Done      int    `json:"done,omitempty"`
	Skipped   int    `json:"skipped,omitempty"`
	Total     int    `json:"total,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	EtaMS     int64  `json:"eta_ms,omitempty"`
	// RecordsPerSec is the measured fresh-simulation throughput (progress
	// and summary events; zero until a fresh replication completes).
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
	// Metrics is the emitting worker's full registry snapshot (Type ==
	// "metrics"); the coordinator merges it into its own registry.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Export is the results file path (Type == "done", coordinator streams
	// only).
	Export string `json:"export,omitempty"`
	// Error is the failure message (Type == "error").
	Error string `json:"error,omitempty"`
}

// progressEvent converts one sweep progress callback into an event; the
// run's final Summary callback becomes a "summary" event.
func progressEvent(worker string, p sweep.Progress) Event {
	typ := "progress"
	if p.Summary {
		typ = "summary"
	}
	return Event{
		Type:          typ,
		Campaign:      p.Experiment,
		Worker:        worker,
		Section:       p.Section,
		Done:          p.Done,
		Skipped:       p.Skipped,
		Total:         p.Total,
		ElapsedMS:     p.Elapsed.Milliseconds(),
		EtaMS:         p.ETA.Milliseconds(),
		RecordsPerSec: p.RecordsPerSec,
	}
}

// eventWriter serializes NDJSON event emission onto one writer.
type eventWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newEventWriter(w io.Writer) *eventWriter {
	return &eventWriter{enc: json.NewEncoder(w)}
}

func (ew *eventWriter) emit(ev Event) {
	ew.mu.Lock()
	defer ew.mu.Unlock()
	_ = ew.enc.Encode(ev) // a broken pipe must not fail the simulation
}

// FormatEvent renders an event as the one-line human summary the CLIs print.
func FormatEvent(ev Event) string {
	switch ev.Type {
	case "progress":
		return fmt.Sprintf("%s %s [%s] %d/%d replications (%d restored) elapsed %s eta %s",
			ev.Campaign, ev.Worker, ev.Section, ev.Done, ev.Total, ev.Skipped,
			(time.Duration(ev.ElapsedMS) * time.Millisecond).Round(time.Second),
			(time.Duration(ev.EtaMS) * time.Millisecond).Round(time.Second))
	case "summary":
		return fmt.Sprintf("%s %s summary: %d replications (%d restored) in %s, %.1f records/s",
			ev.Campaign, ev.Worker, ev.Done, ev.Skipped,
			(time.Duration(ev.ElapsedMS) * time.Millisecond).Round(time.Second),
			ev.RecordsPerSec)
	case "metrics":
		n := 0
		if ev.Metrics != nil {
			n = len(ev.Metrics.Counters) + len(ev.Metrics.Gauges) + len(ev.Metrics.Values) + len(ev.Metrics.Histograms)
		}
		return fmt.Sprintf("%s %s metrics snapshot (%d series)", ev.Campaign, ev.Worker, n)
	case "done":
		if ev.Export != "" {
			return fmt.Sprintf("%s done -> %s", ev.Campaign, ev.Export)
		}
		return fmt.Sprintf("%s %s done", ev.Campaign, ev.Worker)
	case "error":
		return fmt.Sprintf("%s %s error: %s", ev.Campaign, ev.Worker, ev.Error)
	}
	return fmt.Sprintf("%s %s %s", ev.Campaign, ev.Worker, ev.Type)
}
