package campaignd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/obs"
	"flexvc/internal/results"
	"flexvc/internal/sweep"
)

// Coordinator runs one campaign across N worker processes sharing one
// results directory. It owns no work assignment — workers divide the
// replications among themselves through the store's lease protocol — so the
// coordinator's only jobs are process lifecycle (spawn, optionally kill,
// wait), event multiplexing, and writing the final export once the campaign
// is complete.
type Coordinator struct {
	// Spec is the validated campaign to run.
	Spec *campaign.Campaign
	// ResultsDir is the shared results directory (created if missing).
	ResultsDir string
	// Workers is the number of worker processes (>= 1).
	Workers int
	// Scale, Seeds, Quick override the spec's defaults (as the CLI flags
	// do); they are forwarded to every worker and used by the final restore
	// pass, so all passes resolve the identical job.
	Scale string
	Seeds int
	Quick bool
	// SimWorkersPerWorker bounds each worker process's simulation
	// concurrency; 0 divides GOMAXPROCS evenly so N local workers saturate
	// the machine without oversubscribing it.
	SimWorkersPerWorker int
	// LeaseTTL and Poll tune the shard-claim protocol (zero: defaults).
	// Chaos runs want a short TTL so survivors take over a killed worker's
	// leases quickly.
	LeaseTTL time.Duration
	Poll     time.Duration
	// Revision is stamped into the manifest and export (like `figures run
	// -revision`); it must match the single-process run's for byte-identical
	// exports.
	Revision string
	// KillAfterRecords, when positive, SIGKILLs the first worker as soon as
	// that many record files exist — the chaos hook behind the
	// campaignd-smoke gate, proving mid-run worker death loses nothing.
	KillAfterRecords int
	// WorkerCommand builds worker i's command; the spec path points into
	// <results>/jobs/. nil re-execs this binary's `work` subcommand (the
	// cmd/campaignd layout); tests substitute a helper-process command.
	WorkerCommand func(i int, specPath string) (*exec.Cmd, error)
	// OnEvent, when non-nil, receives every worker event plus the terminal
	// coordinator event, serialized.
	OnEvent func(Event)
	// Metrics, when non-nil, receives the run's observability: each worker's
	// terminal snapshot is merged in (counters add, gauges max — see
	// obs.Registry.Merge), and the final restore pass instruments into it
	// directly. The campaignd server passes its /metrics registry here.
	Metrics *obs.Registry
	// Logger receives structured diagnostics (nil: silent).
	Logger *slog.Logger

	emitMu sync.Mutex
}

// jobsSubdir is where submitted campaign specs land inside the results
// directory — the durable job queue of a shared pool: the spec a run
// executed stays next to the records it produced.
const jobsSubdir = "jobs"

func (co *Coordinator) emit(ev Event) {
	if co.OnEvent == nil {
		return
	}
	co.emitMu.Lock()
	defer co.emitMu.Unlock()
	co.OnEvent(ev)
}

func (co *Coordinator) simWorkers() int {
	if co.SimWorkersPerWorker > 0 {
		return co.SimWorkersPerWorker
	}
	n := runtime.GOMAXPROCS(0) / co.Workers
	if n < 1 {
		n = 1
	}
	return n
}

// defaultWorkerCommand re-execs the current binary's `work` subcommand.
func (co *Coordinator) defaultWorkerCommand(i int, specPath string) (*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("campaignd: cannot locate own binary to spawn workers: %w", err)
	}
	args := []string{
		"work",
		"-spec", specPath,
		"-results", co.ResultsDir,
		"-owner", fmt.Sprintf("w%d", i),
		"-sim-workers", fmt.Sprint(co.simWorkers()),
	}
	if co.Scale != "" {
		args = append(args, "-scale", co.Scale)
	}
	if co.Seeds > 0 {
		args = append(args, "-seeds", fmt.Sprint(co.Seeds))
	}
	if co.Quick {
		args = append(args, "-quick")
	}
	if co.LeaseTTL > 0 {
		args = append(args, "-lease-ttl", co.LeaseTTL.String())
	}
	if co.Poll > 0 {
		args = append(args, "-poll", co.Poll.String())
	}
	return exec.Command(self, args...), nil
}

// writeJobSpec persists the submitted spec under <results>/jobs/ and returns
// its path. Workers load the job from this file, so every process — and a
// later reader of the directory — sees exactly the spec that ran.
func (co *Coordinator) writeJobSpec() (string, error) {
	dir := filepath.Join(co.ResultsDir, jobsSubdir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(co.Spec, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, co.Spec.Name+".campaign.json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// countRecords counts record files on disk — the kill trigger's progress
// signal, read without a store so it observes exactly what a crashed-and-
// restarted process would.
func (co *Coordinator) countRecords() int {
	entries, err := os.ReadDir(filepath.Join(co.ResultsDir, "records"))
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// Run executes the campaign to completion and returns the export file path.
// The returned error reflects the campaign's final state, not individual
// worker fates: a killed (or crashed) worker merely shifts its replications
// to the survivors and, in the worst case, to the coordinator's final pass,
// which re-runs the campaign in-process against the store — restoring every
// recorded replication instantly and simulating only holes — before writing
// the deterministic export.
func (co *Coordinator) Run() (string, error) {
	if co.Spec == nil {
		return "", fmt.Errorf("campaignd: no campaign spec")
	}
	if co.Workers < 1 {
		co.Workers = 1
	}
	if err := co.Spec.Validate(); err != nil {
		return "", err
	}
	log := logger(co.Logger).With("campaign", co.Spec.Name)
	specPath, err := co.writeJobSpec()
	if err != nil {
		return "", err
	}
	log.Info("campaign starting", "workers", co.Workers, "results", co.ResultsDir, "spec", specPath)

	buildCmd := co.WorkerCommand
	if buildCmd == nil {
		buildCmd = co.defaultWorkerCommand
	}

	type workerProc struct {
		cmd    *exec.Cmd
		stderr bytes.Buffer
	}
	procs := make([]*workerProc, co.Workers)
	var readers sync.WaitGroup
	for i := 0; i < co.Workers; i++ {
		cmd, err := buildCmd(i, specPath)
		if err != nil {
			return "", err
		}
		wp := &workerProc{cmd: cmd}
		cmd.Stderr = &wp.stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return "", err
		}
		if err := cmd.Start(); err != nil {
			return "", fmt.Errorf("campaignd: starting worker %d: %w", i, err)
		}
		log.Info("worker spawned", "worker", fmt.Sprintf("w%d", i), "pid", cmd.Process.Pid)
		co.Metrics.Counter(MetricWorkersSpawned).Inc()
		procs[i] = wp
		readers.Add(1)
		go func() {
			defer readers.Done()
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			for sc.Scan() {
				var ev Event
				if json.Unmarshal(sc.Bytes(), &ev) != nil {
					continue // non-event noise on a worker's stdout
				}
				if ev.Type == "metrics" && ev.Metrics != nil {
					if err := co.Metrics.Merge(ev.Metrics); err != nil {
						log.Error("merging worker metrics", "worker", ev.Worker, "err", err)
					}
				}
				co.emit(ev)
			}
		}()
	}

	// The chaos hook: SIGKILL worker 0 the moment enough records exist that
	// the kill lands mid-run (never on a finished campaign).
	killerDone := make(chan struct{})
	stopKiller := make(chan struct{})
	killed := -1
	go func() {
		defer close(killerDone)
		if co.KillAfterRecords <= 0 {
			return
		}
		for {
			select {
			case <-stopKiller:
				return
			case <-time.After(10 * time.Millisecond):
			}
			if co.countRecords() >= co.KillAfterRecords {
				if err := procs[0].cmd.Process.Kill(); err == nil {
					killed = 0
					co.Metrics.Counter(MetricWorkersKilled).Inc()
					log.Warn("chaos hook fired", "worker", "w0", "after_records", co.KillAfterRecords)
					co.emit(Event{Type: "error", Campaign: co.Spec.Name, Worker: "w0",
						Error: fmt.Sprintf("SIGKILLed by coordinator after %d records (chaos hook)", co.KillAfterRecords)})
				}
				return
			}
		}
	}()

	readers.Wait() // stdout EOF implies the workers are exiting
	close(stopKiller)
	<-killerDone // settles `killed` before it is read below
	var workerErrs []string
	for i, wp := range procs {
		err := wp.cmd.Wait()
		if i == killed {
			continue // our own kill; the survivors finished the campaign
		}
		if err != nil {
			msg := fmt.Sprintf("worker %d: %v", i, err)
			if s := strings.TrimSpace(wp.stderr.String()); s != "" {
				msg += ": " + s
			}
			workerErrs = append(workerErrs, msg)
			co.Metrics.Counter(MetricWorkerFailures).Inc()
			log.Error("worker failed", "worker", fmt.Sprintf("w%d", i), "err", err)
			co.emit(Event{Type: "error", Campaign: co.Spec.Name, Worker: fmt.Sprintf("w%d", i), Error: msg})
		}
	}

	// Final pass: re-run the campaign in-process against the store. Every
	// recorded replication restores instantly; only work no worker completed
	// (all workers crashed mid-run) is simulated here. This is the same
	// resume machinery a restarted `figures run` uses — and it marks the
	// campaign's keys active, so the export contains exactly this campaign's
	// records even in a shared pool holding other experiments' checkpoints.
	store, err := results.Open(co.ResultsDir)
	if err != nil {
		return "", err
	}
	if co.Revision != "" {
		store.SetRevision(co.Revision)
	}
	if co.Metrics != nil {
		store.SetMetrics(co.Metrics)
	}
	opts := sweep.Options{
		Scale:   co.Scale,
		Seeds:   co.Seeds,
		Quick:   co.Quick,
		Results: store,
		Metrics: co.Metrics,
	}
	if co.OnEvent != nil {
		opts.Progress = func(p sweep.Progress) { co.emit(progressEvent("final", p)) }
	}
	if _, err := campaign.Run(co.Spec, opts); err != nil {
		if len(workerErrs) > 0 {
			return "", fmt.Errorf("campaignd: %w (worker failures: %s)", err, strings.Join(workerErrs, "; "))
		}
		return "", err
	}
	path, err := store.WriteExport(co.Spec.Name, co.Spec.ReportTitle())
	if err != nil {
		return "", err
	}
	log.Info("campaign done", "export", path, "worker_errors", len(workerErrs))
	co.emit(Event{Type: "done", Campaign: co.Spec.Name, Export: path})
	return path, nil
}
