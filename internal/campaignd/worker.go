package campaignd

import (
	"fmt"
	"io"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/results"
	"flexvc/internal/sim"
	"flexvc/internal/sweep"
)

// WorkerConfig parameterizes one worker process of a sharded campaign run.
type WorkerConfig struct {
	// SpecPath is the campaign spec JSON to execute (the coordinator writes
	// the submitted spec under <results>/jobs/ and points every worker at
	// the same file, so all workers compile the identical job).
	SpecPath string
	// ResultsDir is the shared results directory the workers shard over.
	ResultsDir string
	// Owner tags this worker's leases and progress events ("w0", "w1", …).
	Owner string
	// Scale, Seeds, Quick and Loads override the spec's defaults exactly as
	// the figures CLI flags do; they must be identical across the workers of
	// one run (the coordinator guarantees this).
	Scale string
	Seeds int
	Quick bool
	// SimWorkers bounds this process's simulation concurrency
	// (sim.SetWorkerBudget); 0 keeps the GOMAXPROCS default. Coordinators
	// divide the machine between worker processes through it.
	SimWorkers int
	// LeaseTTL and Poll tune the shard-claim protocol (zero: defaults).
	LeaseTTL time.Duration
	Poll     time.Duration
	// Events receives the worker's NDJSON event stream (nil: no events).
	Events io.Writer
}

// RunWorker executes one worker of a sharded campaign run: it compiles the
// spec, opens the shared store and runs the campaign in claim mode, so this
// process simulates exactly the replications it wins leases for, restores
// everything its peers record, and finishes only when every replication of
// the campaign is on disk. Progress is streamed as NDJSON events; the report
// the run produces is discarded (rendering happens from the export, which
// the coordinator writes once the campaign is complete).
func RunWorker(wc WorkerConfig) error {
	spec, err := campaign.Load(wc.SpecPath)
	if err != nil {
		return err
	}
	store, err := results.Open(wc.ResultsDir)
	if err != nil {
		return err
	}
	if wc.SimWorkers > 0 {
		sim.SetWorkerBudget(wc.SimWorkers)
	}
	var ew *eventWriter
	if wc.Events != nil {
		ew = newEventWriter(wc.Events)
	}
	opts := sweep.Options{
		Scale:   wc.Scale,
		Seeds:   wc.Seeds,
		Quick:   wc.Quick,
		Results: store,
		Claims: &sweep.ClaimConfig{
			Owner: wc.Owner,
			TTL:   wc.LeaseTTL,
			Poll:  wc.Poll,
		},
	}
	if ew != nil {
		opts.Progress = func(p sweep.Progress) { ew.emit(progressEvent(wc.Owner, p)) }
	}
	if _, err := campaign.Run(spec, opts); err != nil {
		if ew != nil {
			ew.emit(Event{Type: "error", Campaign: spec.Name, Worker: wc.Owner, Error: err.Error()})
		}
		return fmt.Errorf("campaignd worker %s: %w", wc.Owner, err)
	}
	if err := store.Flush(); err != nil {
		return err
	}
	if ew != nil {
		ew.emit(Event{Type: "done", Campaign: spec.Name, Worker: wc.Owner})
	}
	return nil
}
