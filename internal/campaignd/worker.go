package campaignd

import (
	"fmt"
	"io"
	"log/slog"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/obs"
	"flexvc/internal/results"
	"flexvc/internal/sim"
	"flexvc/internal/sweep"
)

// WorkerConfig parameterizes one worker process of a sharded campaign run.
type WorkerConfig struct {
	// SpecPath is the campaign spec JSON to execute (the coordinator writes
	// the submitted spec under <results>/jobs/ and points every worker at
	// the same file, so all workers compile the identical job).
	SpecPath string
	// ResultsDir is the shared results directory the workers shard over.
	ResultsDir string
	// Owner tags this worker's leases and progress events ("w0", "w1", …).
	Owner string
	// Scale, Seeds, Quick and Loads override the spec's defaults exactly as
	// the figures CLI flags do; they must be identical across the workers of
	// one run (the coordinator guarantees this).
	Scale string
	Seeds int
	Quick bool
	// SimWorkers bounds this process's simulation concurrency
	// (sim.SetWorkerBudget); 0 keeps the GOMAXPROCS default. Coordinators
	// divide the machine between worker processes through it.
	SimWorkers int
	// LeaseTTL and Poll tune the shard-claim protocol (zero: defaults).
	LeaseTTL time.Duration
	Poll     time.Duration
	// Events receives the worker's NDJSON event stream (nil: no events).
	Events io.Writer
	// MetricsOut, when non-empty, is a file path the worker writes its final
	// obs registry snapshot to (JSON; see obs.WriteSnapshotFile).
	MetricsOut string
	// Logger receives structured diagnostics (nil: silent). Workers log to
	// stderr — stdout is reserved for the NDJSON event stream.
	Logger *slog.Logger
}

// RunWorker executes one worker of a sharded campaign run: it compiles the
// spec, opens the shared store and runs the campaign in claim mode, so this
// process simulates exactly the replications it wins leases for, restores
// everything its peers record, and finishes only when every replication of
// the campaign is on disk. Progress is streamed as NDJSON events; the report
// the run produces is discarded (rendering happens from the export, which
// the coordinator writes once the campaign is complete).
func RunWorker(wc WorkerConfig) error {
	log := logger(wc.Logger).With("worker", wc.Owner)
	spec, err := campaign.Load(wc.SpecPath)
	if err != nil {
		return err
	}
	store, err := results.Open(wc.ResultsDir)
	if err != nil {
		return err
	}
	if wc.SimWorkers > 0 {
		sim.SetWorkerBudget(wc.SimWorkers)
	}
	// Every worker carries a registry: it instruments only wall-clock
	// accounting (never simulated state — see the obs zero-impact contract),
	// and its snapshot rides the event stream up to the coordinator.
	reg := obs.NewRegistry()
	store.SetMetrics(reg)
	var ew *eventWriter
	if wc.Events != nil {
		ew = newEventWriter(wc.Events)
	}
	opts := sweep.Options{
		Scale:   wc.Scale,
		Seeds:   wc.Seeds,
		Quick:   wc.Quick,
		Results: store,
		Metrics: reg,
		Claims: &sweep.ClaimConfig{
			Owner: wc.Owner,
			TTL:   wc.LeaseTTL,
			Poll:  wc.Poll,
		},
	}
	opts.Progress = func(p sweep.Progress) {
		if p.Summary {
			// The per-worker throughput series carries the worker label so
			// it survives the coordinator's max-merge alongside its peers'.
			reg.SetValue(fmt.Sprintf("%s{worker=%q}", MetricWorkerRecordsPerSec, wc.Owner), p.RecordsPerSec)
			log.Info("campaign summary", "campaign", p.Experiment,
				"records", p.Done, "restored", p.Skipped,
				"elapsed", p.Elapsed.Round(time.Millisecond), "records_per_sec", p.RecordsPerSec)
		}
		if ew != nil {
			ew.emit(progressEvent(wc.Owner, p))
		}
	}
	log.Info("worker starting", "campaign", spec.Name, "spec", wc.SpecPath,
		"results", wc.ResultsDir, "sim_workers", wc.SimWorkers)
	if _, err := campaign.Run(spec, opts); err != nil {
		log.Error("campaign run failed", "campaign", spec.Name, "err", err)
		if ew != nil {
			ew.emit(Event{Type: "error", Campaign: spec.Name, Worker: wc.Owner, Error: err.Error()})
		}
		return fmt.Errorf("campaignd worker %s: %w", wc.Owner, err)
	}
	if err := store.Flush(); err != nil {
		return err
	}
	snap := reg.Snapshot()
	if wc.MetricsOut != "" {
		if err := obs.WriteSnapshotFile(reg, wc.MetricsOut); err != nil {
			log.Error("writing metrics snapshot", "path", wc.MetricsOut, "err", err)
			return fmt.Errorf("campaignd worker %s: metrics snapshot: %w", wc.Owner, err)
		}
	}
	if ew != nil {
		ew.emit(Event{Type: "metrics", Campaign: spec.Name, Worker: wc.Owner, Metrics: snap})
		ew.emit(Event{Type: "done", Campaign: spec.Name, Worker: wc.Owner})
	}
	log.Info("worker done", "campaign", spec.Name)
	return nil
}
