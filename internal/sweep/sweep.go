// Package sweep is the experiment harness of the reproduction: it runs load
// sweeps and saturation-throughput searches over simulator configurations and
// regenerates every table and figure of the FlexVC paper's evaluation
// (Tables I-IV, Figures 5-11) as text reports.
//
// Experiments can run at three scales: "small" (the default, a 36-router
// Dragonfly that finishes in seconds to minutes), "medium" (264 routers) and
// "paper" (the full 2,064-router system of Table V, hours of CPU time). The
// shape of the results — which mechanism wins, by roughly what factor, where
// saturation sets in — is preserved across scales; see EXPERIMENTS.md.
package sweep

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"flexvc/internal/config"
	"flexvc/internal/sim"
	"flexvc/internal/stats"
)

// Point is the aggregated result of one configuration at one offered load.
type Point struct {
	Load   float64
	Result stats.Result
}

// Series is one labelled curve of a figure: a configuration swept over load.
type Series struct {
	Label  string
	Points []Point
}

// MaxAccepted returns the maximum accepted load over the series (the
// saturation throughput the paper's bar charts report).
func (s Series) MaxAccepted() float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Result.AcceptedLoad > best {
			best = p.Result.AcceptedLoad
		}
	}
	return best
}

// AcceptedAt returns the accepted load at the given offered load (or 0 when
// the point was not simulated).
func (s Series) AcceptedAt(load float64) float64 {
	for _, p := range s.Points {
		if p.Load == load {
			return p.Result.AcceptedLoad
		}
	}
	return 0
}

// Options controls how experiments are executed.
type Options struct {
	// Scale selects the system size: "small", "medium" or "paper".
	Scale string
	// Seeds is the number of independent replications per point (the paper
	// uses 5).
	Seeds int
	// Loads overrides the offered-load sweep points (phits/node/cycle).
	Loads []float64
	// Parallelism, when positive, caps how many sweep points may be in
	// flight at once (a memory guard for huge sweeps). CPU concurrency is
	// governed by the process-wide worker budget (sim.SetWorkerBudget)
	// either way; 0 leaves points unbounded.
	Parallelism int
	// Quick trims the sweep to fewer points and shorter measurement windows
	// for smoke runs and benchmarks.
	Quick bool
}

// DefaultOptions returns the options used by the command-line harness.
func DefaultOptions() Options {
	return Options{Scale: "small", Seeds: 1}
}

// BaseConfig returns the simulator configuration for the chosen scale.
func (o Options) BaseConfig() (config.Config, error) {
	var cfg config.Config
	switch o.Scale {
	case "", "small":
		cfg = config.Small()
	case "medium":
		cfg = config.Medium()
	case "paper", "full":
		cfg = config.Paper()
	default:
		return config.Config{}, fmt.Errorf("sweep: unknown scale %q (want small, medium or paper)", o.Scale)
	}
	if o.Quick {
		cfg.WarmupCycles /= 2
		cfg.MeasureCycles /= 2
	}
	return cfg, nil
}

// loads returns the offered-load sweep points.
func (o Options) loads(defaults []float64) []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	if o.Quick && len(defaults) > 3 {
		return []float64{defaults[0], defaults[len(defaults)/2], defaults[len(defaults)-1]}
	}
	return defaults
}

func (o Options) seeds() int {
	if o.Seeds < 1 {
		return 1
	}
	return o.Seeds
}

func (o Options) parallelism() int {
	if o.Parallelism < 0 {
		return 0
	}
	return o.Parallelism
}

// Variant names one configuration of an experiment and how to derive it from
// the base configuration.
type Variant struct {
	Label string
	Apply func(*config.Config)
}

// job is one (variant, load) simulation to run.
type job struct {
	series int
	point  int
	cfg    config.Config
	seeds  int
}

// LoadSweep runs every variant across the given offered loads, with the
// requested number of replications per point.
//
// Every point of every series is scheduled at once and all replications drain
// through the process-wide worker budget shared with sim.RunAveraged (see
// sim.SetWorkerBudget), so one global limit governs CPU use no matter how
// many series or sweeps are in flight — not a per-series fan-out. The
// optional parallelism argument (> 0) additionally caps how many points may
// be in flight at once, which bounds peak memory on huge sweeps; 0 or less
// leaves points unbounded, governed purely by the worker budget.
//
// Results are deterministic regardless of scheduling: each point writes only
// its own slot and every replication owns its configuration and RNG streams.
func LoadSweep(base config.Config, variants []Variant, loads []float64, seeds, parallelism int) ([]Series, error) {
	series := make([]Series, len(variants))
	jobs := make([]job, 0, len(variants)*len(loads))
	for si, v := range variants {
		series[si].Label = v.Label
		series[si].Points = make([]Point, len(loads))
		for pi, load := range loads {
			cfg := base
			v.Apply(&cfg)
			cfg.Load = load
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("sweep: variant %q at load %.2f: %w", v.Label, load, err)
			}
			series[si].Points[pi].Load = load
			jobs = append(jobs, job{series: si, point: pi, cfg: cfg, seeds: seeds})
		}
	}

	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	var sem chan struct{}
	if parallelism > 0 {
		sem = make(chan struct{}, parallelism)
	}
	for ji := range jobs {
		wg.Add(1)
		go func(ji int) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			j := jobs[ji]
			agg, _, err := sim.RunAveraged(j.cfg, j.seeds)
			if err != nil {
				errs[ji] = err
				return
			}
			series[j.series].Points[j.point].Result = agg
		}(ji)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return series, nil
}

// MaxThroughput runs every variant at full offered load and returns the
// accepted throughput per variant (the paper's Figures 6 and 11).
func MaxThroughput(base config.Config, variants []Variant, seeds, parallelism int) ([]Series, error) {
	return LoadSweep(base, variants, []float64{1.0}, seeds, parallelism)
}

// DefaultLoads is the standard offered-load sweep of the latency/throughput
// figures.
var DefaultLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// AdversarialLoads is the reduced sweep used for adversarial traffic, whose
// saturation point sits below 0.5.
var AdversarialLoads = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}

// RenderSeries renders a set of series as a fixed-width text table with one
// row per offered load and, per series, the accepted load and average latency.
func RenderSeries(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(series) == 0 {
		return b.String()
	}
	// Collect the union of loads, sorted.
	loadSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			loadSet[p.Load] = true
		}
	}
	loads := make([]float64, 0, len(loadSet))
	for l := range loadSet {
		loads = append(loads, l)
	}
	sort.Float64s(loads)

	fmt.Fprintf(&b, "%-8s", "offered")
	for _, s := range series {
		fmt.Fprintf(&b, " | %-28s", truncate(s.Label, 28))
	}
	fmt.Fprintf(&b, "\n%-8s", "")
	for range series {
		fmt.Fprintf(&b, " | %13s %14s", "accepted", "avg-lat")
	}
	b.WriteByte('\n')
	for _, load := range loads {
		fmt.Fprintf(&b, "%-8.2f", load)
		for _, s := range series {
			found := false
			for _, p := range s.Points {
				if p.Load == load {
					state := ""
					if p.Result.Deadlock {
						state = "*DL*"
					}
					fmt.Fprintf(&b, " | %9.3f%4s %14.1f", p.Result.AcceptedLoad, state, p.Result.AvgLatency)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, " | %13s %14s", "-", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderMaxThroughput renders saturation-throughput bars (one value per
// series) with the relative improvement over the first series, mirroring the
// layout of Figures 6 and 11.
func RenderMaxThroughput(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var baseline float64
	for i, s := range series {
		v := s.MaxAccepted()
		if i == 0 {
			baseline = v
		}
		rel := 1.0
		if baseline > 0 {
			rel = v / baseline
		}
		flag := ""
		if len(s.Points) > 0 && s.Points[len(s.Points)-1].Result.Deadlock {
			flag = " (deadlock)"
		}
		fmt.Fprintf(&b, "  %-34s %6.3f phits/node/cycle  %+6.1f%% vs %s%s\n",
			truncate(s.Label, 34), v, 100*(rel-1), series[0].Label, flag)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
