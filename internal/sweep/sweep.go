// Package sweep is the experiment harness of the reproduction: it runs load
// sweeps and saturation-throughput searches over simulator configurations and
// regenerates every table and figure of the FlexVC paper's evaluation
// (Tables I-IV, Figures 5-11) as text reports.
//
// Experiments can run at three scales: "small" (the default, a 36-router
// Dragonfly that finishes in seconds to minutes), "medium" (264 routers) and
// "paper" (the full 2,064-router system of Table V, hours of CPU time). The
// shape of the results — which mechanism wins, by roughly what factor, where
// saturation sets in — is preserved across scales; see EXPERIMENTS.md.
package sweep

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flexvc/internal/config"
	"flexvc/internal/obs"
	"flexvc/internal/results"
	"flexvc/internal/sim"
	"flexvc/internal/stats"
)

// Point is the aggregated result of one configuration at one offered load.
type Point struct {
	Load   float64
	Result stats.Result
}

// Series is one labelled curve of a figure: a configuration swept over load.
type Series struct {
	Label  string
	Points []Point
}

// MaxAccepted returns the maximum accepted load over the series (the
// saturation throughput the paper's bar charts report).
func (s Series) MaxAccepted() float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Result.AcceptedLoad > best {
			best = p.Result.AcceptedLoad
		}
	}
	return best
}

// AcceptedAt returns the accepted load at the given offered load (or 0 when
// the point was not simulated).
func (s Series) AcceptedAt(load float64) float64 {
	for _, p := range s.Points {
		if p.Load == load {
			return p.Result.AcceptedLoad
		}
	}
	return 0
}

// Options controls how experiments are executed.
type Options struct {
	// Scale selects the system size: "small", "medium" or "paper".
	Scale string
	// Seeds is the number of independent replications per point (the paper
	// uses 5).
	Seeds int
	// Loads overrides the offered-load sweep points (phits/node/cycle).
	Loads []float64
	// Parallelism, when positive, caps how many sweep points may be in
	// flight at once (a memory guard for huge sweeps). CPU concurrency is
	// governed by the process-wide worker budget (sim.SetWorkerBudget)
	// either way; 0 leaves points unbounded.
	Parallelism int
	// Quick trims the sweep to fewer points and shorter measurement windows
	// for smoke runs and benchmarks.
	Quick bool
	// Shards is the intra-replication shard count applied to every simulated
	// configuration (config.Config.Shards): 1 serial, 0 auto, N >= 2 explicit.
	// Sharding is an execution knob — results, checkpoints and exports are
	// bit-identical at any value — so it composes freely with restored
	// checkpoints recorded at a different count.
	Shards int
	// Results, when non-nil, turns the run into a checkpointed sweep: every
	// completed replication is persisted into the store as it finishes, and
	// replications already present (matched by key and config fingerprint)
	// are restored instead of re-simulated. A resumed sweep therefore skips
	// completed work and its exported results are bit-identical to an
	// uninterrupted run's.
	Results *results.Store
	// Claims, when non-nil (it requires Results), turns the checkpointed run
	// into one worker of a multi-process sharded execution: every missing
	// replication is first claimed through the results store's lease
	// protocol, keys claimed by other workers are polled until their record
	// lands (taking over the claim if its lease expires — a dead peer), and
	// only claim winners simulate. N workers sharing one results directory
	// therefore split the sweep's replications among themselves with
	// per-record exactly-once semantics and no coordinator.
	Claims *ClaimConfig
	// Progress, when non-nil, is invoked (serially) as replications finish
	// or are restored from the store.
	Progress func(Progress)
	// Metrics, when non-nil, receives the run's observability series: it is
	// stamped into every simulated configuration (config.Config.Metrics, the
	// sim-layer phase/shard series) and feeds the sweep-layer counters
	// (replications simulated vs restored, claim wins, poll waits). Like
	// Shards it is an execution knob with no effect on results — exports are
	// byte-identical with metrics on or off.
	Metrics *obs.Registry

	// experiment and state are stamped by Run so section sweeps know which
	// experiment they belong to and share progress accounting.
	experiment string
	state      *runState
}

// Progress is one progress event of a checkpointed experiment run.
// Replications are the unit of accounting: one (variant, load, seed)
// simulation. Total grows as the experiment's sections are discovered (an
// experiment runs its panels serially), so ETA is a lower bound until the
// last section has been scheduled.
type Progress struct {
	Experiment string
	Section    string
	// Done counts replications finished in this run; Skipped of them were
	// restored from the results store rather than simulated.
	Done, Skipped, Total int
	// Elapsed is the wall time since the run started, read from the
	// monotonic clock at event emission: it never decreases across the
	// events of one run, so consumers may difference consecutive events.
	Elapsed time.Duration
	// ETA extrapolates from the measured pace of fresh replications; it is
	// zero until one completes.
	ETA time.Duration
	// RecordsPerSec is the measured simulation throughput so far: fresh
	// (non-restored) replications per second of elapsed wall. Zero until the
	// first fresh replication completes.
	RecordsPerSec float64
	// Summary marks the final event of a run: emitted exactly once after the
	// last section settles, with the run totals (Done records, Skipped of
	// them restored, aggregate RecordsPerSec) and no Section/ETA.
	Summary bool
}

// ClaimConfig parameterizes shard-claim execution (Options.Claims). The
// zero value of every field is usable: claims work with an anonymous owner,
// the store's default lease TTL and the default poll interval.
type ClaimConfig struct {
	// Owner tags this worker's lease files (diagnostics only; the protocol
	// keys on file existence and mtime, not owner identity).
	Owner string
	// TTL is the lease expiry: a claim whose holder has not heartbeated for
	// this long counts as dead and is taken over. Holders heartbeat at TTL/4
	// while simulating, so TTL bounds takeover latency, not replication
	// length. Zero means results.DefaultLeaseTTL.
	TTL time.Duration
	// Poll is how often a worker re-checks a key another worker has claimed
	// (waiting for the record, or for the lease to expire). Zero means 50ms.
	Poll time.Duration
}

func (c *ClaimConfig) poll() time.Duration {
	if c == nil || c.Poll <= 0 {
		return 50 * time.Millisecond
	}
	return c.Poll
}

// runState is the per-Run accounting shared by every section of an
// experiment.
type runState struct {
	mu       sync.Mutex
	start    time.Time
	sections int
	total    int
	done     int
	skipped  int
}

func newRunState() *runState { return &runState{start: time.Now()} }

// nextSection assigns the next section ordinal and grows the replication
// total by the section's size.
func (st *runState) nextSection(count int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	idx := st.sections
	st.sections++
	st.total += count
	return idx
}

// note records one finished replication and emits a progress event. The
// callback runs under the state lock, so events are serialized; callbacks
// must be fast and must not re-enter the sweep.
func (st *runState) note(ck *ckpt, restored bool) {
	if restored {
		ck.metrics.restored.Inc()
	} else {
		ck.metrics.simulated.Inc()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.done++
	if restored {
		st.skipped++
	}
	if ck.progress == nil {
		return
	}
	elapsed := time.Since(st.start)
	ev := Progress{
		Experiment: ck.experiment,
		Section:    ck.section,
		Done:       st.done,
		Skipped:    st.skipped,
		Total:      st.total,
		Elapsed:    elapsed,
	}
	if fresh := st.done - st.skipped; fresh > 0 {
		ev.ETA = elapsed / time.Duration(fresh) * time.Duration(st.total-st.done)
		if elapsed > 0 {
			ev.RecordsPerSec = float64(fresh) / elapsed.Seconds()
		}
	}
	ck.progress(ev)
}

// finish emits the run's final summary event (Progress.Summary): the total
// record count, how many were restored rather than simulated, and the
// aggregate simulation throughput. Runs with no progress callback skip it.
func (st *runState) finish(experiment string, progress func(Progress)) {
	if progress == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	elapsed := time.Since(st.start)
	ev := Progress{
		Experiment: experiment,
		Done:       st.done,
		Skipped:    st.skipped,
		Total:      st.total,
		Elapsed:    elapsed,
		Summary:    true,
	}
	if fresh := st.done - st.skipped; fresh > 0 && elapsed > 0 {
		ev.RecordsPerSec = float64(fresh) / elapsed.Seconds()
	}
	progress(ev)
}

// DefaultOptions returns the options used by the command-line harness.
func DefaultOptions() Options {
	return Options{Scale: "small", Seeds: 1}
}

// BaseConfig returns the simulator configuration for the chosen scale.
func (o Options) BaseConfig() (config.Config, error) {
	cfg, err := config.AtScale(o.Scale)
	if err != nil {
		return config.Config{}, fmt.Errorf("sweep: %w", err)
	}
	if o.Quick {
		cfg.WarmupCycles /= 2
		cfg.MeasureCycles /= 2
	}
	cfg.Shards = o.Shards
	cfg.Metrics = o.Metrics
	return cfg, nil
}

// loads returns the offered-load sweep points.
func (o Options) loads(defaults []float64) []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	if o.Quick && len(defaults) > 3 {
		return []float64{defaults[0], defaults[len(defaults)/2], defaults[len(defaults)-1]}
	}
	return defaults
}

func (o Options) seeds() int {
	if o.Seeds < 1 {
		return 1
	}
	return o.Seeds
}

func (o Options) parallelism() int {
	if o.Parallelism < 0 {
		return 0
	}
	return o.Parallelism
}

// Variant names one configuration of an experiment and how to derive it from
// the base configuration.
//
// Label is the variant's stable identity: it keys checkpoints in the results
// store and replications in exported results files, so it must be an explicit
// literal (or assembled from the pinned results-key vocabulary, e.g.
// selectionKeyName) — never the output of an enum's fmt.Stringer, whose
// renaming would silently orphan every recorded checkpoint.
// TestResultsKeyStability locks the built-in experiments' labels down.
type Variant struct {
	Label string
	Apply func(*config.Config)
}

// job is one (variant, load) simulation to run.
type job struct {
	series int
	point  int
	label  string
	cfg    config.Config
	seeds  int
}

// ckpt is the checkpointing context of one section sweep: where records go,
// how they are keyed, who hears about progress, and — in sharded runs — how
// replications are claimed.
type ckpt struct {
	store        *results.Store // nil: progress reporting only
	claims       *ClaimConfig   // nil: plain checkpointed run
	experiment   string
	section      string
	sectionIndex int
	scale        string
	progress     func(Progress)
	state        *runState
	metrics      sweepMetrics
}

// Sweep-layer metric names (see DESIGN.md "Observability").
const (
	// MetricReplicationsSimulated / MetricReplicationsRestored split every
	// settled replication of a checkpointed run by provenance.
	MetricReplicationsSimulated = "flexvc_sweep_replications_simulated_total"
	MetricReplicationsRestored  = "flexvc_sweep_replications_restored_total"
	// MetricClaimsWon counts lease claims this worker won (and therefore
	// simulated); MetricClaimPolls and MetricClaimPollWall account the time
	// spent parked on keys other workers held.
	MetricClaimsWon     = "flexvc_sweep_claims_won_total"
	MetricClaimPolls    = "flexvc_sweep_claim_polls_total"
	MetricClaimPollWall = "flexvc_sweep_claim_poll_wait_ns_total"
)

// sweepMetrics carries the sweep-layer handles. The zero value (all-nil
// handles) is the disabled state — every method on a nil obs handle no-ops —
// so call sites never branch.
type sweepMetrics struct {
	simulated *obs.Counter
	restored  *obs.Counter
	claimsWon *obs.Counter
	polls     *obs.Counter
	pollWait  *obs.Counter
}

func newSweepMetrics(reg *obs.Registry) sweepMetrics {
	if reg == nil {
		return sweepMetrics{}
	}
	return sweepMetrics{
		simulated: reg.Counter(MetricReplicationsSimulated),
		restored:  reg.Counter(MetricReplicationsRestored),
		claimsWon: reg.Counter(MetricClaimsWon),
		polls:     reg.Counter(MetricClaimPolls),
		pollWait:  reg.Counter(MetricClaimPollWall),
	}
}

// LoadSweep runs every variant across the given offered loads, with the
// requested number of replications per point.
//
// Every point of every series is scheduled at once and all replications drain
// through the process-wide worker budget shared with sim.RunAveraged (see
// sim.SetWorkerBudget), so one global limit governs CPU use no matter how
// many series or sweeps are in flight — not a per-series fan-out. The
// optional parallelism argument (> 0) additionally caps how many points may
// be in flight at once, which bounds peak memory on huge sweeps; 0 or less
// leaves points unbounded, governed purely by the worker budget.
//
// Results are deterministic regardless of scheduling: each point writes only
// its own slot and every replication owns its configuration and RNG streams.
func LoadSweep(base config.Config, variants []Variant, loads []float64, seeds, parallelism int) ([]Series, error) {
	return runSweep(base, variants, loads, seeds, parallelism, nil)
}

// runSweep is the scheduling core behind LoadSweep and the checkpointed
// section runner. With ck == nil it behaves exactly like the plain sweep;
// with a checkpoint context it resolves every replication individually
// against the results store and persists fresh ones as they finish. Both
// paths aggregate per-replication results in replication order, so their
// outputs are bit-identical (sim.RunAveraged is defined as exactly that
// aggregation).
func runSweep(base config.Config, variants []Variant, loads []float64, seeds, parallelism int, ck *ckpt) ([]Series, error) {
	series := make([]Series, len(variants))
	jobs := make([]job, 0, len(variants)*len(loads))
	for si, v := range variants {
		series[si].Label = v.Label
		series[si].Points = make([]Point, len(loads))
		for pi, load := range loads {
			cfg := base
			v.Apply(&cfg)
			cfg.Load = load
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("sweep: variant %q at load %.2f: %w", v.Label, load, err)
			}
			series[si].Points[pi].Load = load
			jobs = append(jobs, job{series: si, point: pi, label: v.Label, cfg: cfg, seeds: seeds})
		}
	}

	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	var sem chan struct{}
	if parallelism > 0 {
		sem = make(chan struct{}, parallelism)
	}
	for ji := range jobs {
		wg.Add(1)
		go func(ji int) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			j := jobs[ji]
			var agg stats.Result
			var err error
			if ck == nil {
				agg, _, err = sim.RunAveraged(j.cfg, j.seeds)
			} else {
				agg, err = ck.runPoint(j)
			}
			if err != nil {
				errs[ji] = err
				return
			}
			series[j.series].Points[j.point].Result = agg
		}(ji)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return series, nil
}

// runPoint resolves one sweep point replication by replication: replications
// already in the store (same key, same config fingerprint) are restored;
// missing ones are simulated concurrently on the worker budget and
// checkpointed the moment they finish. The per-replication results are
// aggregated in replication order, exactly as sim.RunAveraged does, so a
// point assembled from any mix of restored and fresh replications is
// bit-identical to one simulated in a single pass.
func (ck *ckpt) runPoint(j job) (stats.Result, error) {
	fp := results.Fingerprint(j.cfg)
	per := make([]stats.Result, j.seeds)
	errs := make([]error, j.seeds)
	var wg sync.WaitGroup
	for s := 0; s < j.seeds; s++ {
		key := results.Key{Experiment: ck.experiment, Section: ck.section, Variant: j.label, Load: j.cfg.Load, Seed: s}
		if ck.store != nil {
			if rec, ok := ck.store.Get(key, fp); ok {
				per[s] = rec.Result
				ck.state.note(ck, true)
				continue
			}
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if ck.claims != nil {
				r, restored, err := ck.claimReplication(j, key, fp, s)
				if err != nil {
					errs[s] = err
					return
				}
				per[s] = r
				ck.state.note(ck, restored)
				return
			}
			r, err := ck.simulate(j, fp, s)
			if err != nil {
				errs[s] = err
				return
			}
			per[s] = r
			ck.state.note(ck, false)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats.Result{}, err
		}
	}
	return stats.Aggregate(per), nil
}

// simulate runs replication s of job j and, when a store is attached,
// checkpoints it before returning.
func (ck *ckpt) simulate(j job, fp string, s int) (stats.Result, error) {
	r, wall, err := sim.RunReplication(j.cfg, s)
	if err != nil {
		return stats.Result{}, err
	}
	if ck.store != nil {
		rec := results.Record{
			Schema:       results.SchemaVersion,
			Experiment:   ck.experiment,
			Section:      ck.section,
			SectionIndex: ck.sectionIndex,
			Variant:      j.label,
			VariantIndex: j.series,
			PointIndex:   j.point,
			Scale:        ck.scale,
			Load:         j.cfg.Load,
			Seed:         s,
			SimSeed:      sim.ReplicationSeed(j.cfg.Seed, s),
			Fingerprint:  fp,
			Result:       r,
		}
		if err := ck.store.Put(rec, wall); err != nil {
			return stats.Result{}, err
		}
	}
	return r, nil
}

// claimReplication resolves one missing replication under the shard-claim
// protocol. It loops until the key is settled one way or the other: a record
// with the right fingerprint on disk (written by any worker — restored), or
// a lease win followed by simulate-and-checkpoint (fresh). Losing the claim
// parks this goroutine on a poll loop — it holds no worker token, so a
// waiting worker costs CPU nothing while its peers simulate. The lease is
// released only after the record is durably on disk, so between any claim
// loss and the next poll the key is either still leased or already recorded;
// a lease that expires instead marks a dead worker and is taken over.
func (ck *ckpt) claimReplication(j job, key results.Key, fp string, s int) (stats.Result, bool, error) {
	for {
		if rec, ok := ck.store.RefreshKey(key, fp); ok {
			return rec.Result, true, nil
		}
		lease, err := ck.store.TryClaim(key, ck.claims.Owner, ck.claims.TTL)
		if err != nil {
			return stats.Result{}, false, err
		}
		if lease == nil {
			ck.metrics.polls.Inc()
			wait := ck.claims.poll()
			time.Sleep(wait)
			ck.metrics.pollWait.Add(wait.Nanoseconds())
			continue
		}
		ck.metrics.claimsWon.Inc()
		r, err := ck.simulate(j, fp, s)
		lease.Release()
		return r, false, err
	}
}

// runSection runs one section (panel) of the current experiment, wiring the
// checkpoint store and progress reporting in when the options carry them.
// Experiment runners must route every simulated sweep through this method so
// that each section receives a stable ordinal and checkpoint key space.
func (o Options) runSection(title string, base config.Config, variants []Variant, loads []float64) ([]Series, error) {
	if o.Results == nil && o.Progress == nil {
		return runSweep(base, variants, loads, o.seeds(), o.parallelism(), nil)
	}
	st := o.state
	if st == nil {
		st = newRunState()
	}
	claims := o.Claims
	if o.Results == nil {
		// Claims shard work through the store's lease files; without a store
		// there is nothing to claim against.
		claims = nil
	}
	ck := &ckpt{
		store:        o.Results,
		claims:       claims,
		experiment:   o.experiment,
		section:      title,
		sectionIndex: st.nextSection(len(variants) * len(loads) * o.seeds()),
		scale:        o.scaleName(),
		progress:     o.Progress,
		state:        st,
		metrics:      newSweepMetrics(o.Metrics),
	}
	return runSweep(base, variants, loads, o.seeds(), o.parallelism(), ck)
}

// runMaxSection is runSection at full offered load (the bar-chart figures).
func (o Options) runMaxSection(title string, base config.Config, variants []Variant) ([]Series, error) {
	return o.runSection(title, base, variants, []float64{1.0})
}

// SectionRunner runs the sections of one externally defined experiment (a
// campaign, see internal/campaign) through exactly the machinery the built-in
// experiments use: the same scheduling, the same checkpoint key space and the
// same progress accounting. Records land in the options' results store under
// the experiment id the runner was created with.
type SectionRunner struct{ opts Options }

// NewRunner returns a section runner for an externally defined experiment.
// The id plays the role a registry ID plays for built-in experiments: it keys
// every checkpoint and names the results export.
func (o Options) NewRunner(id string) *SectionRunner {
	o.experiment = id
	o.state = newRunState()
	return &SectionRunner{opts: o}
}

// RunSection sweeps the variants over the loads as the experiment's next
// section (panel). Sections must be run serially in a stable order: a
// section's ordinal in the results schema is its call position, which is what
// keeps exports deterministic across resumes.
func (r *SectionRunner) RunSection(title string, base config.Config, variants []Variant, loads []float64) ([]Series, error) {
	return r.opts.runSection(title, base, variants, loads)
}

// Finish emits the run's final summary Progress event (totals + aggregate
// records/s). Call it once, after the last RunSection.
func (r *SectionRunner) Finish() {
	if r.opts.state != nil {
		r.opts.state.finish(r.opts.experiment, r.opts.Progress)
	}
}

// EffectiveLoads applies the option-level load override and quick-mode
// trimming to a section's default loads, exactly as the built-in experiments
// do.
func (r *SectionRunner) EffectiveLoads(defaults []float64) []float64 {
	return r.opts.loads(defaults)
}

// scaleName returns the scale's canonical name ("" means small).
func (o Options) scaleName() string {
	if o.Scale == "" {
		return "small"
	}
	return o.Scale
}

// MaxThroughput runs every variant at full offered load and returns the
// accepted throughput per variant (the paper's Figures 6 and 11).
func MaxThroughput(base config.Config, variants []Variant, seeds, parallelism int) ([]Series, error) {
	return LoadSweep(base, variants, []float64{1.0}, seeds, parallelism)
}

// DefaultLoads is the standard offered-load sweep of the latency/throughput
// figures.
var DefaultLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// AdversarialLoads is the reduced sweep used for adversarial traffic, whose
// saturation point sits below 0.5.
var AdversarialLoads = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}

// RenderSeries renders a set of series as a fixed-width text table with one
// row per offered load and, per series, the accepted load and average latency.
func RenderSeries(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(series) == 0 {
		return b.String()
	}
	// Collect the union of loads, sorted.
	loadSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			loadSet[p.Load] = true
		}
	}
	loads := make([]float64, 0, len(loadSet))
	for l := range loadSet {
		loads = append(loads, l)
	}
	sort.Float64s(loads)

	fmt.Fprintf(&b, "%-8s", "offered")
	for _, s := range series {
		fmt.Fprintf(&b, " | %-28s", truncate(s.Label, 28))
	}
	fmt.Fprintf(&b, "\n%-8s", "")
	for range series {
		fmt.Fprintf(&b, " | %13s %14s", "accepted", "avg-lat")
	}
	b.WriteByte('\n')
	for _, load := range loads {
		fmt.Fprintf(&b, "%-8.2f", load)
		for _, s := range series {
			found := false
			for _, p := range s.Points {
				if p.Load == load {
					state := ""
					if p.Result.Deadlock {
						state = "*DL*"
					}
					fmt.Fprintf(&b, " | %9.3f%4s %14.1f", p.Result.AcceptedLoad, state, p.Result.AvgLatency)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, " | %13s %14s", "-", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderMaxThroughput renders saturation-throughput bars (one value per
// series) with the relative improvement over the first series, mirroring the
// layout of Figures 6 and 11.
func RenderMaxThroughput(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var baseline float64
	for i, s := range series {
		v := s.MaxAccepted()
		if i == 0 {
			baseline = v
		}
		rel := 1.0
		if baseline > 0 {
			rel = v / baseline
		}
		flag := ""
		if len(s.Points) > 0 && s.Points[len(s.Points)-1].Result.Deadlock {
			flag = " (deadlock)"
		}
		fmt.Fprintf(&b, "  %-34s %6.3f phits/node/cycle  %+6.1f%% vs %s%s\n",
			truncate(s.Label, 34), v, 100*(rel-1), series[0].Label, flag)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
