package sweep

import (
	"fmt"
	"math"
	"strings"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
	"flexvc/internal/scenario"
	"flexvc/internal/stats"
)

// The transient experiment family: instead of sweeping offered load at
// steady state, a phased scenario switches the traffic pattern mid-run and
// the windowed telemetry (stats.TimeSeries) shows how each routing mode
// reacts. The paper evaluates FlexVC only at steady state; this experiment
// measures what adaptive (PB) routing is actually for — how quickly it
// re-diverts traffic after a UN→ADV shift — against the static MIN and VAL
// references.

// transientLoad is the offered load of every phase of the canonical
// transient scenario: above MIN's ADV saturation (so the static minimal mode
// visibly collapses and PB must divert) yet within VAL's capacity under both
// UN and ADV (~0.33 at small scale with 4/2 VCs; see experiments/fig5-small),
// so the static references run unsaturated through every phase.
const transientLoad = 0.3

// transientScenario derives the canonical UN→ADV→UN scenario from the
// scale's measurement window: three equal phases of about MeasureCycles
// each, sixteen telemetry windows per phase. The phase length is re-aligned
// to the floored window so the derived scenario always validates (phase
// boundaries must land on window boundaries) no matter what MeasureCycles a
// scale or quick factor yields.
func transientScenario(base config.Config) *scenario.Scenario {
	seg := base.MeasureCycles
	window := seg / 16
	if window < 1 {
		window = 1
	}
	seg -= seg % window
	return scenario.UNToADV(transientLoad, seg, seg, seg, window)
}

// transientVariants compares the three routing modes on the same 4/2 VC set
// (the smallest that supports Valiant paths on the Dragonfly, so the
// comparison is iso-resource).
func transientVariants() []Variant {
	vcs := single(4, 2)
	mode := func(label string, alg routing.Kind) Variant {
		return Variant{Label: label, Apply: func(c *config.Config) {
			c.Routing = alg
			c.Sensing = routing.SensePerVC
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: vcs, Selection: core.JSQ}
		}}
	}
	return []Variant{
		mode("MIN 4/2", routing.MIN),
		mode("VAL 4/2", routing.VAL),
		mode("PB per-VC 4/2", routing.PB),
	}
}

func runTransient(opts Options) (*Report, error) {
	base, err := opts.BaseConfig()
	if err != nil {
		return nil, err
	}
	sc := transientScenario(base)
	base.Scenario = sc
	rep := &Report{ID: "transient", Title: "Transient response to a UN -> ADV -> UN traffic shift (windowed telemetry)"}
	title := "UN -> ADV -> UN transient"
	series, err := opts.runSection(title, base, transientVariants(), []float64{sc.MaxLoad()})
	if err != nil {
		return nil, err
	}
	rep.Sections = append(rep.Sections, Section{
		Title:  title,
		Body:   RenderSeries(title, series) + RenderTransientText(series),
		Series: series,
	})
	rep.Notes = append(rep.Notes,
		"scenario "+sc.Describe(),
		fmt.Sprintf("adaptation lag: cycles from a phase switch until the settled minimal-fraction midpoint is crossed (shift threshold %.2f); PB should collapse after UN->ADV while MIN and VAL stay flat", scenario.LagShiftThreshold),
		fmt.Sprintf("scale=%s (%s)", opts.scaleName(), base.Describe()))
	return rep, nil
}

// transientSeriesOf extracts the windowed telemetry of a rendered series:
// its single point's time series, or nil when the series is not a transient
// run (multi-point sweeps, legacy results).
func transientSeriesOf(s Series) *stats.TimeSeries {
	if len(s.Points) != 1 {
		return nil
	}
	return s.Points[0].Result.Series
}

// firstTransientSeries returns the first series' windowed telemetry, which
// the renderers use as the reference for window geometry and phase marks
// (every series of one section shares them); nil when none carries any.
func firstTransientSeries(series []Series) *stats.TimeSeries {
	for _, s := range series {
		if ts := transientSeriesOf(s); ts != nil {
			return ts
		}
	}
	return nil
}

// RenderTransientText renders the windowed telemetry of a transient section
// as a fixed-width table (one row per window; per series the accepted load,
// mean latency and minimally-routed percentage) followed by the phase marks
// and the adaptation-lag summary. Series without telemetry render as dashes.
func RenderTransientText(series []Series) string {
	ref := firstTransientSeries(series)
	if ref == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nwindowed telemetry (window %d cycles; acc = phits/node/cycle, min%% = minimally routed)\n", ref.Window)
	fmt.Fprintf(&b, "%-8s", "cycle")
	for _, s := range series {
		fmt.Fprintf(&b, " | %-24s", truncate(s.Label, 24))
	}
	fmt.Fprintf(&b, "\n%-8s", "")
	for range series {
		fmt.Fprintf(&b, " | %7s %9s %6s", "acc", "avg-lat", "min%")
	}
	b.WriteByte('\n')
	for w := 0; w < ref.Windows(); w++ {
		fmt.Fprintf(&b, "%-8d", ref.WindowStart(w))
		for _, s := range series {
			ts := transientSeriesOf(s)
			if ts == nil || w >= ts.Windows() {
				fmt.Fprintf(&b, " | %7s %9s %6s", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&b, " | %7.3f %9s %6s", ts.Accepted(w), fmtOr(ts.MeanLatency(w), "%9.1f", "-"), fmtOr(100*ts.MinimalFraction(w), "%6.1f", "-"))
		}
		b.WriteByte('\n')
	}
	if len(ref.Marks) > 0 {
		parts := make([]string, len(ref.Marks))
		for i, m := range ref.Marks {
			parts[i] = fmt.Sprintf("%d %s", m.Cycle, m.Label)
		}
		fmt.Fprintf(&b, "phases: %s\n", strings.Join(parts, " | "))
	}
	b.WriteString(renderLagsText(series))
	return b.String()
}

// renderLagsText renders the per-variant adaptation lags.
func renderLagsText(series []Series) string {
	var b strings.Builder
	wrote := false
	for _, s := range series {
		ts := transientSeriesOf(s)
		lags := scenario.AdaptationLags(ts)
		if len(lags) == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintf(&b, "adaptation lag (settled minimal-fraction midpoint crossing, shift threshold %.2f):\n", scenario.LagShiftThreshold)
			wrote = true
		}
		for _, l := range lags {
			fmt.Fprintf(&b, "  %-26s @%-7d -> %-18s %s\n", truncate(s.Label, 26), l.At, truncate(l.Label, 18), lagText(l))
		}
	}
	return b.String()
}

func lagText(l scenario.Lag) string {
	fracs := fmt.Sprintf("(min%% %s -> %s)", fmtOr(100*l.Pre, "%.1f", "-"), fmtOr(100*l.Post, "%.1f", "-"))
	switch {
	case !l.Shifted:
		return "no shift " + fracs
	case !l.Crossed:
		return fmt.Sprintf("lag > %d cycles %s", l.Cycles, fracs)
	default:
		return fmt.Sprintf("lag %d cycles %s", l.Cycles, fracs)
	}
}

// fmtOr formats v with format, or returns alt when v is NaN (empty window).
func fmtOr(v float64, format, alt string) string {
	if math.IsNaN(v) {
		return alt
	}
	return strings.TrimSpace(fmt.Sprintf(format, v))
}
