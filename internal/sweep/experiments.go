package sweep

import (
	"fmt"
	"sort"
	"strings"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
	"flexvc/internal/topology"
)

// Report is the rendered outcome of one experiment (one paper table or
// figure), possibly made of several sections (e.g. Figure 5 has UN,
// BURSTY-UN and ADV panels).
type Report struct {
	ID       string
	Title    string
	Sections []Section
	Notes    []string
}

// Section is one panel of a report.
type Section struct {
	Title  string
	Body   string
	Series []Series
}

// Render returns the full text report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n", r.ID, r.Title)
	for _, s := range r.Sections {
		fmt.Fprintf(&b, "\n-- %s --\n%s", s.Title, s.Body)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// Experiment is one reproducible artefact of the paper.
type Experiment struct {
	ID    string
	Title string
	// Analytic experiments are computed combinatorially (the paper's route
	// classification tables); everything else runs simulations and therefore
	// carries measured latencies subject to the histogram error bound.
	Analytic bool
	Run      func(Options) (*Report, error)
}

// Registry returns every experiment, keyed by ID.
func Registry() map[string]Experiment {
	exps := []Experiment{
		{"table1", "Allowed paths using FlexVC in a generic diameter-2 network", true, runTable("table1", core.TableI)},
		{"table2", "FlexVC with protocol deadlock in a generic diameter-2 network", true, runTable("table2", core.TableII)},
		{"table3", "FlexVC in a Dragonfly (local/global VCs)", true, runTable("table3", core.TableIII)},
		{"table4", "FlexVC with protocol deadlock in a Dragonfly", true, runTable("table4", core.TableIV)},
		{"fig5", "Latency and throughput under UN/BURSTY-UN/ADV, oblivious routing", false, runFig5},
		{"fig6", "Maximum throughput vs buffer capacity per port, oblivious routing", false, runFig6},
		{"fig7", "Latency and throughput with request-reply traffic, oblivious routing", false, runFig7},
		{"fig8", "Request-reply traffic with Piggyback source-adaptive routing", false, runFig8},
		{"fig9", "Throughput at full load vs VC selection function (UN request-reply)", false, runFig9},
		{"fig10", "DAMQ private-reservation sweep under UN traffic with MIN routing", false, runFig10},
		{"fig11", "Maximum throughput vs buffer capacity without router speedup", false, runFig11},
		{"transient", "Transient response to a UN -> ADV -> UN traffic shift (windowed telemetry)", false, runTransient},
	}
	m := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		m[e.ID] = e
	}
	return m
}

// IDs returns the experiment identifiers in a stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID. When opts.Results is set
// the run is checkpointed: every finished replication lands in the store
// immediately, already-recorded replications are skipped, and the rendered
// report is bit-identical either way.
func Run(id string, opts Options) (*Report, error) {
	exp, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("sweep: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	opts.experiment = id
	if opts.state == nil {
		opts.state = newRunState()
	}
	rep, err := exp.Run(opts)
	if err == nil && !exp.Analytic {
		// The run settled every replication: emit the final summary Progress
		// event (totals, simulated-vs-restored split, aggregate records/s).
		opts.state.finish(id, opts.Progress)
	}
	return rep, err
}

// --- analytic tables -------------------------------------------------------

func runTable(id string, build func() core.Table) func(Options) (*Report, error) {
	return func(Options) (*Report, error) {
		t := build()
		return &Report{
			ID:       id,
			Title:    t.Title,
			Sections: []Section{{Title: t.Title, Body: t.Render()}},
		}, nil
	}
}

// --- shared variant constructors -------------------------------------------

// baselineVariant is the statically partitioned fixed-order reference.
func baselineVariant(label string, vcs core.VCConfig) Variant {
	return Variant{Label: label, Apply: func(c *config.Config) {
		c.BufferOrg = buffer.Static
		c.Scheme = core.Scheme{Policy: core.Baseline, VCs: vcs, Selection: core.JSQ}
	}}
}

// damqVariant uses the same VC set over DAMQ buffers with 75% private space.
func damqVariant(label string, vcs core.VCConfig) Variant {
	return Variant{Label: label, Apply: func(c *config.Config) {
		c.BufferOrg = buffer.DAMQ
		c.DAMQPrivateFraction = 0.75
		c.Scheme = core.Scheme{Policy: core.Baseline, VCs: vcs, Selection: core.JSQ}
	}}
}

// flexVariant enables FlexVC over statically partitioned buffers.
func flexVariant(label string, vcs core.VCConfig) Variant {
	return Variant{Label: label, Apply: func(c *config.Config) {
		c.BufferOrg = buffer.Static
		c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: vcs, Selection: core.JSQ}
	}}
}

// withTraffic overlays the traffic pattern and routing algorithm.
func withTraffic(v Variant, traffic config.TrafficKind, alg routing.Kind, reactive bool) Variant {
	return Variant{Label: v.Label, Apply: func(c *config.Config) {
		c.Traffic = traffic
		c.Routing = alg
		c.Reactive = reactive
		v.Apply(c)
	}}
}

// scaledVCs scales the paper's VC arrangement strings to configurations.
func single(l, g int) core.VCConfig { return core.SingleClass(l, g) }

func twoClass(reqL, reqG, repL, repG int) core.VCConfig {
	return core.TwoClass(reqL, reqG, repL, repG)
}

// --- Figure 5: oblivious routing, single-class traffic ---------------------

func fig5Variants(adversarial bool) []Variant {
	if adversarial {
		return []Variant{
			baselineVariant("Baseline 4/2", single(4, 2)),
			damqVariant("DAMQ75 4/2", single(4, 2)),
			flexVariant("FlexVC 4/2", single(4, 2)),
			flexVariant("FlexVC 8/4", single(8, 4)),
		}
	}
	return []Variant{
		baselineVariant("Baseline 2/1", single(2, 1)),
		damqVariant("DAMQ75 2/1", single(2, 1)),
		flexVariant("FlexVC 2/1", single(2, 1)),
		flexVariant("FlexVC 4/2", single(4, 2)),
		flexVariant("FlexVC 8/4", single(8, 4)),
	}
}

func runFig5(opts Options) (*Report, error) {
	base, err := opts.BaseConfig()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig5", Title: "Latency and throughput, oblivious routing (MIN for UN/BURSTY-UN, VAL for ADV)"}
	panels := []struct {
		title   string
		traffic config.TrafficKind
		alg     routing.Kind
		loads   []float64
		adv     bool
	}{
		{"(a) UN with MIN routing", config.TrafficUniform, routing.MIN, DefaultLoads, false},
		{"(b) BURSTY-UN with MIN routing", config.TrafficBursty, routing.MIN, DefaultLoads, false},
		{"(c) ADV with VAL routing", config.TrafficAdversarial, routing.VAL, AdversarialLoads, true},
	}
	for _, p := range panels {
		variants := make([]Variant, 0, 5)
		for _, v := range fig5Variants(p.adv) {
			variants = append(variants, withTraffic(v, p.traffic, p.alg, false))
		}
		series, err := opts.runSection(p.title, base, variants, opts.loads(p.loads))
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, Section{Title: p.title, Body: RenderSeries(p.title, series), Series: series})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("scale=%s (%s)", opts.Scale, base.Describe()))
	return rep, nil
}

// --- Figures 6 and 11: max throughput vs buffer capacity -------------------

// bufferCapacities returns the per-port (local, global) capacities swept by
// Figures 6 and 11, scaled to the simulated system size.
func bufferCapacities(base config.Config) [][2]int {
	// The paper sweeps 64/256 .. 256/1024 phits per local/global port. The
	// scaled-down systems use shorter links (smaller round-trip times), so
	// the sweep is expressed as multiples of the base per-port capacity.
	baseLocal := base.LocalBufPerVC * 2
	baseGlobal := base.GlobalBufPerVC * 1
	caps := make([][2]int, 0, 4)
	for _, m := range []float64{1, 2, 3, 4} {
		caps = append(caps, [2]int{int(float64(baseLocal) * m), int(float64(baseGlobal) * m)})
	}
	return caps
}

func runMaxThroughputFigure(id, title string, speedup int, opts Options) (*Report, error) {
	base, err := opts.BaseConfig()
	if err != nil {
		return nil, err
	}
	base.Speedup = speedup
	rep := &Report{ID: id, Title: title}
	panels := []struct {
		title   string
		traffic config.TrafficKind
		alg     routing.Kind
		adv     bool
	}{
		{"(a) UN with MIN routing", config.TrafficUniform, routing.MIN, false},
		{"(b) BURSTY-UN with MIN routing", config.TrafficBursty, routing.MIN, false},
		{"(c) ADV with VAL routing", config.TrafficAdversarial, routing.VAL, true},
	}
	caps := bufferCapacities(base)
	if opts.Quick {
		caps = caps[:2]
	}
	for _, p := range panels {
		var body strings.Builder
		var all []Series
		for _, cap := range caps {
			variants := make([]Variant, 0, 5)
			for _, v := range fig5Variants(p.adv) {
				vv := withTraffic(v, p.traffic, p.alg, false)
				variants = append(variants, withBufferCapacity(vv, cap[0], cap[1]))
			}
			title := fmt.Sprintf("%d/%d phits per local/global port", cap[0], cap[1])
			series, err := opts.runMaxSection(fmt.Sprintf("%s @ %s", p.title, title), base, variants)
			if err != nil {
				return nil, err
			}
			body.WriteString(RenderMaxThroughput(title, series))
			all = append(all, series...)
		}
		rep.Sections = append(rep.Sections, Section{Title: p.title, Body: body.String(), Series: all})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("router speedup %dx, scale=%s", speedup, opts.Scale))
	return rep, nil
}

// withBufferCapacity fixes the total buffer capacity per port, dividing it
// evenly among however many VCs the variant configures (iso-memory
// comparison, as in the paper).
func withBufferCapacity(v Variant, localPerPort, globalPerPort int) Variant {
	label := fmt.Sprintf("%s @%d/%d", v.Label, localPerPort, globalPerPort)
	return Variant{Label: label, Apply: func(c *config.Config) {
		v.Apply(c)
		lv := c.Scheme.VCs.TotalOf(topology.Local)
		gv := c.Scheme.VCs.TotalOf(topology.Global)
		c.LocalBufPerVC = atLeast(localPerPort/lv, c.PacketSize)
		c.GlobalBufPerVC = atLeast(globalPerPort/gv, c.PacketSize)
	}}
}

func atLeast(v, floor int) int {
	if v < floor {
		return floor
	}
	return v
}

func runFig6(opts Options) (*Report, error) {
	return runMaxThroughputFigure("fig6", "Maximum throughput for constant buffer size per port (2x router speedup)", 2, opts)
}

func runFig11(opts Options) (*Report, error) {
	return runMaxThroughputFigure("fig11", "Maximum throughput for constant buffer size per port, no router speedup", 1, opts)
}

// --- Figure 7: request-reply traffic, oblivious routing --------------------

func fig7UniformVariants() []Variant {
	return []Variant{
		baselineVariant("Baseline 4/2 (2/1+2/1)", twoClass(2, 1, 2, 1)),
		damqVariant("DAMQ 4/2 (2/1+2/1)", twoClass(2, 1, 2, 1)),
		flexVariant("FlexVC 4/2 (2/1+2/1)", twoClass(2, 1, 2, 1)),
		flexVariant("FlexVC 5/3 (2/1+3/2)", twoClass(2, 1, 3, 2)),
		flexVariant("FlexVC 5/3 (3/2+2/1)", twoClass(3, 2, 2, 1)),
		flexVariant("FlexVC 6/4 (2/1+4/3)", twoClass(2, 1, 4, 3)),
		flexVariant("FlexVC 6/4 (3/2+3/2)", twoClass(3, 2, 3, 2)),
		flexVariant("FlexVC 6/4 (4/3+2/1)", twoClass(4, 3, 2, 1)),
	}
}

func fig7AdversarialVariants() []Variant {
	return []Variant{
		baselineVariant("Baseline 8/4 (4/2+4/2)", twoClass(4, 2, 4, 2)),
		damqVariant("DAMQ 8/4 (4/2+4/2)", twoClass(4, 2, 4, 2)),
		flexVariant("FlexVC 8/4 (4/2+4/2)", twoClass(4, 2, 4, 2)),
		flexVariant("FlexVC 10/6 (5/3+5/3)", twoClass(5, 3, 5, 3)),
		flexVariant("FlexVC 10/6 (6/4+4/2)", twoClass(6, 4, 4, 2)),
	}
}

func runFig7(opts Options) (*Report, error) {
	base, err := opts.BaseConfig()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig7", Title: "Request-reply traffic, oblivious routing"}
	panels := []struct {
		title    string
		traffic  config.TrafficKind
		alg      routing.Kind
		loads    []float64
		variants []Variant
	}{
		{"(a) UN with MIN routing", config.TrafficUniform, routing.MIN, DefaultLoads, fig7UniformVariants()},
		{"(b) BURSTY-UN with MIN routing", config.TrafficBursty, routing.MIN, DefaultLoads, fig7UniformVariants()},
		{"(c) ADV with VAL routing", config.TrafficAdversarial, routing.VAL, AdversarialLoads, fig7AdversarialVariants()},
	}
	for _, p := range panels {
		variants := make([]Variant, 0, len(p.variants))
		for _, v := range p.variants {
			variants = append(variants, withTraffic(v, p.traffic, p.alg, true))
		}
		if opts.Quick && len(variants) > 4 {
			variants = variants[:4]
		}
		series, err := opts.runSection(p.title, base, variants, opts.loads(p.loads))
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, Section{Title: p.title, Body: RenderSeries(p.title, series), Series: series})
	}
	return rep, nil
}

// --- Figure 8: Piggyback adaptive routing ----------------------------------

// pbVariant builds one Piggyback configuration.
func pbVariant(label string, policy core.Policy, vcs core.VCConfig, sensing routing.Sensing, minCred bool) Variant {
	return Variant{Label: label, Apply: func(c *config.Config) {
		c.Routing = routing.PB
		c.Sensing = sensing
		c.BufferOrg = buffer.Static
		c.Scheme = core.Scheme{Policy: policy, VCs: vcs, Selection: core.JSQ, MinCred: minCred}
	}}
}

func fig8Variants() []Variant {
	basePB := twoClass(4, 2, 4, 2) // 8/4 VCs for the baseline PB
	flexPB := twoClass(4, 2, 2, 1) // 6/3 VCs arranged 4/2+2/1 for FlexVC PB
	return []Variant{
		// Oblivious references.
		Variant{Label: "MIN 4/2 (reference)", Apply: func(c *config.Config) {
			c.Routing = routing.MIN
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: twoClass(2, 1, 2, 1), Selection: core.JSQ}
		}},
		Variant{Label: "VAL 8/4 (reference)", Apply: func(c *config.Config) {
			c.Routing = routing.VAL
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: basePB, Selection: core.JSQ}
		}},
		pbVariant("PB per-VC (8/4)", core.Baseline, basePB, routing.SensePerVC, false),
		pbVariant("PB per-port (8/4)", core.Baseline, basePB, routing.SensePerPort, false),
		pbVariant("PB FlexVC per-VC (6/3)", core.FlexVC, flexPB, routing.SensePerVC, false),
		pbVariant("PB FlexVC per-port (6/3)", core.FlexVC, flexPB, routing.SensePerPort, false),
		pbVariant("PB FlexVC per-VC minCred (6/3)", core.FlexVC, flexPB, routing.SensePerVC, true),
		pbVariant("PB FlexVC per-port minCred (6/3)", core.FlexVC, flexPB, routing.SensePerPort, true),
	}
}

func runFig8(opts Options) (*Report, error) {
	base, err := opts.BaseConfig()
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig8", Title: "Request-reply traffic with Piggyback source-adaptive routing"}
	panels := []struct {
		title   string
		traffic config.TrafficKind
		loads   []float64
	}{
		{"(a) Uniform (UN)", config.TrafficUniform, DefaultLoads},
		{"(b) Uniform with bursts (BURSTY-UN)", config.TrafficBursty, DefaultLoads},
		{"(c) Adversarial (ADV)", config.TrafficAdversarial, AdversarialLoads},
	}
	for _, p := range panels {
		variants := make([]Variant, 0, 8)
		for _, v := range fig8Variants() {
			variants = append(variants, withTraffic(v, p.traffic, routing.PB, true))
		}
		// withTraffic sets Routing=PB for every variant; re-apply the two
		// oblivious references on top.
		if opts.Quick && len(variants) > 5 {
			variants = append(variants[:2], variants[len(variants)-3:]...)
		}
		series, err := opts.runSection(p.title, base, variants, opts.loads(p.loads))
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, Section{Title: p.title, Body: RenderSeries(p.title, series), Series: series})
	}
	rep.Notes = append(rep.Notes,
		"baseline PB uses 4/2+4/2=8/4 VCs; FlexVC PB uses 4/2+2/1=6/3 VCs (25% fewer buffers)")
	return rep, nil
}

// --- Figure 9: VC selection functions at full load -------------------------

// selectionKeyName maps each VC selection function to the literal used in
// variant labels — and therefore in results keys. Deliberately NOT
// fn.String(): checkpoint and export keys must survive a renamed Stringer,
// so the results-key vocabulary is pinned here (and locked down by
// TestResultsKeyStability).
var selectionKeyName = map[core.SelectionFn]string{
	core.JSQ:       "jsq",
	core.HighestVC: "highest",
	core.LowestVC:  "lowest",
	core.RandomVC:  "random",
}

func runFig9(opts Options) (*Report, error) {
	base, err := opts.BaseConfig()
	if err != nil {
		return nil, err
	}
	base.Traffic = config.TrafficUniform
	base.Routing = routing.MIN
	base.Reactive = true

	splits := []struct {
		label string
		vcs   core.VCConfig
	}{
		{"4/2 (2/1+2/1)", twoClass(2, 1, 2, 1)},
		{"5/3 (2/1+3/2)", twoClass(2, 1, 3, 2)},
		{"5/3 (3/2+2/1)", twoClass(3, 2, 2, 1)},
		{"6/4 (2/1+4/3)", twoClass(2, 1, 4, 3)},
		{"6/4 (3/2+3/2)", twoClass(3, 2, 3, 2)},
		{"6/4 (4/3+2/1)", twoClass(4, 3, 2, 1)},
	}
	if opts.Quick {
		splits = splits[:2]
	}
	selections := core.SelectionFns

	rep := &Report{ID: "fig9", Title: "Throughput under UN request-reply traffic at 100% load vs VC selection function"}
	var body strings.Builder
	fmt.Fprintf(&body, "%-16s", "VC split")
	fmt.Fprintf(&body, " %10s %10s", "baseline", "damq75")
	for _, fn := range selections {
		fmt.Fprintf(&body, " %10s", "flex-"+selectionKeyName[fn])
	}
	body.WriteByte('\n')
	for _, sp := range splits {
		variants := []Variant{
			withTraffic(baselineVariant("baseline", sp.vcs), config.TrafficUniform, routing.MIN, true),
			withTraffic(damqVariant("damq", sp.vcs), config.TrafficUniform, routing.MIN, true),
		}
		for _, fn := range selections {
			fn := fn
			v := Variant{Label: "flexvc " + selectionKeyName[fn], Apply: func(c *config.Config) {
				c.BufferOrg = buffer.Static
				c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: sp.vcs, Selection: fn}
			}}
			variants = append(variants, withTraffic(v, config.TrafficUniform, routing.MIN, true))
		}
		series, err := opts.runMaxSection(sp.label, base, variants)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&body, "%-16s", sp.label)
		for _, s := range series {
			fmt.Fprintf(&body, " %10.3f", s.MaxAccepted())
		}
		body.WriteByte('\n')
		rep.Sections = append(rep.Sections, Section{Title: sp.label, Series: series})
	}
	rep.Sections = append([]Section{{Title: "throughput at 100% offered load (phits/node/cycle)", Body: body.String()}}, rep.Sections...)
	return rep, nil
}

// --- Figure 10: DAMQ private reservation sweep ------------------------------

func runFig10(opts Options) (*Report, error) {
	base, err := opts.BaseConfig()
	if err != nil {
		return nil, err
	}
	base.Traffic = config.TrafficUniform
	base.Routing = routing.MIN

	fractions := []float64{0, 0.25, 0.5, 0.75, 1.0}
	if opts.Quick {
		fractions = []float64{0, 0.75, 1.0}
	}
	variants := make([]Variant, 0, len(fractions))
	for _, f := range fractions {
		f := f
		label := fmt.Sprintf("DAMQ %d%% private", int(f*100))
		if f == 1 {
			label += " (= static)"
		}
		variants = append(variants, Variant{Label: label, Apply: func(c *config.Config) {
			c.BufferOrg = buffer.DAMQ
			c.DAMQPrivateFraction = f
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: single(2, 1), Selection: core.JSQ}
		}})
	}
	series, err := opts.runSection("DAMQ reservation sweep", base, variants, opts.loads(DefaultLoads))
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig10", Title: "Throughput under UN with MIN routing, DAMQ buffers with varying private reservation"}
	rep.Sections = append(rep.Sections, Section{Title: "accepted load vs offered load", Body: RenderSeries("DAMQ reservation sweep", series), Series: series})
	rep.Notes = append(rep.Notes,
		"with 0% private reservation the run is expected to deadlock (flagged *DL*) or collapse at saturation loads",
		"the best configuration is expected around 75% private, only slightly above fully static buffers")
	return rep, nil
}
