package sweep

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run go test ./internal/sweep -update to create it): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run go test ./internal/sweep -update after verifying the change):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenTable4 locks down the rendered report of Table IV, the analytic
// table combining FlexVC with protocol-deadlock avoidance in a Dragonfly.
func TestGoldenTable4(t *testing.T) {
	rep, err := Run("table4", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4.golden", rep.Render())
}

// TestGoldenQuickSweep locks down a complete simulated load sweep at the
// smallest scale: a Figure-5-style panel (baseline vs FlexVC under uniform
// traffic with MIN routing) on the Tiny Dragonfly with two replications per
// point. The parallel engine is deterministic, so the rendered table is
// stable run to run; it changes only when the simulator's behaviour changes,
// which is exactly what this test is meant to surface.
func TestGoldenQuickSweep(t *testing.T) {
	series, err := goldenSweepSeries()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "quick_sweep.golden", RenderSeries("tiny UN/MIN sweep (2 seeds)", series))
}

// TestQuickSweepDeterministic runs the same sweep twice through the parallel
// scheduler and requires identical results — the sweep-level counterpart of
// sim.TestRunAveragedMatchesSequential. With -race this doubles as the data
// race check on the shared worker budget.
func TestQuickSweepDeterministic(t *testing.T) {
	a, err := goldenSweepSeries()
	if err != nil {
		t.Fatal(err)
	}
	b, err := goldenSweepSeries()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of the same sweep through the parallel scheduler disagree")
	}
}

func goldenSweepSeries() ([]Series, error) {
	base := config.Tiny()
	base.WarmupCycles = 200
	base.MeasureCycles = 1000
	variants := []Variant{
		baselineVariant("baseline 2/1", core.SingleClass(2, 1)),
		flexVariant("flexvc 2/1", core.SingleClass(2, 1)),
	}
	return LoadSweep(base, variants, []float64{0.2, 0.5, 0.8}, 2, 0)
}
