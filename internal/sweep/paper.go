package sweep

import "strings"

// Paper reference values for the delta columns of `figures render`.
//
// The paper reports results as figures, not tables, so the reference values
// here are *approximate digitizations* of the published bar heights /
// saturation points, expressed as the relative saturation-throughput
// improvement of each variant over the baseline of its panel (the quantity
// least sensitive to reading values off a plot). They exist so rendered
// reports always show a measured-vs-paper delta; refine them as the
// reproduction campaign pins numbers down, and keep in mind that the paper
// simulates the full-scale system of Table V while small/medium runs preserve
// the ordering and rough magnitude of the mechanisms, not exact values.
const paperReferenceCaveat = "Paper columns are approximate digitizations of the published figures " +
	"(full-scale system, 5 seeds); expect the measured ordering to match and magnitudes to differ at reduced scales."

// paperRef keys are (experiment, section marker, variant prefix): the section
// marker is matched as a substring of the section title (so "(a)" hits
// "(a) UN with MIN routing") and the variant prefix as a prefix of the
// variant label (so "FlexVC 8/4" hits "FlexVC 8/4 @64/256" too).
type paperRefKey struct {
	experiment string
	section    string
	variant    string
}

var paperRelative = map[paperRefKey]float64{
	// Figure 5 — oblivious routing, single-class traffic. Improvements of
	// the saturation throughput over Baseline 2/1 (panels a, b) and Baseline
	// 4/2 (panel c).
	{"fig5", "(a)", "DAMQ75 2/1"}: 0.02,
	{"fig5", "(a)", "FlexVC 2/1"}: 0.03,
	{"fig5", "(a)", "FlexVC 4/2"}: 0.06,
	{"fig5", "(a)", "FlexVC 8/4"}: 0.08,
	{"fig5", "(b)", "DAMQ75 2/1"}: 0.03,
	{"fig5", "(b)", "FlexVC 2/1"}: 0.05,
	{"fig5", "(b)", "FlexVC 4/2"}: 0.08,
	{"fig5", "(b)", "FlexVC 8/4"}: 0.10,
	{"fig5", "(c)", "DAMQ75 4/2"}: 0.05,
	{"fig5", "(c)", "FlexVC 4/2"}: 0.10,
	{"fig5", "(c)", "FlexVC 8/4"}: 0.15,

	// Figure 7 — request-reply traffic, oblivious routing. Reply-favouring
	// FlexVC splits beat the symmetric baseline.
	{"fig7", "(a)", "FlexVC 4/2 (2/1+2/1)"}: 0.04,
	{"fig7", "(a)", "FlexVC 6/4 (2/1+4/3)"}: 0.08,
	{"fig7", "(c)", "FlexVC 8/4 (4/2+4/2)"}: 0.10,

	// Figure 8 — Piggyback adaptive routing: FlexVC PB with 25% fewer
	// buffers tracks the baseline PB (≈ 0) and per-port sensing with
	// minCred slightly beats it under adversarial traffic.
	{"fig8", "(c)", "PB FlexVC per-VC (6/3)"}:           0.0,
	{"fig8", "(c)", "PB FlexVC per-port minCred (6/3)"}: 0.03,
}

// PaperImprovement returns the paper's approximate relative
// saturation-throughput improvement for the variant in the given experiment
// section, if the reference table carries one.
func PaperImprovement(experiment, section, variant string) (float64, bool) {
	for k, v := range paperRelative {
		if k.experiment != experiment {
			continue
		}
		if !strings.Contains(section, k.section) {
			continue
		}
		if strings.HasPrefix(variant, k.variant) {
			return v, true
		}
	}
	return 0, false
}
