package sweep

import (
	"bytes"
	"os"
	"testing"

	"flexvc/internal/results"
)

// TestExportShardInvariant is the export-layer half of the shard bit-identity
// contract (the sim-layer matrix lives in internal/sim): the full fig5
// experiment — MIN, VAL and PB variants over both VC policies — run through
// the checkpointed store at shards 1, 2, 4 and auto must write byte-identical
// results exports. Exports embed the config fingerprint of every record, so
// this also pins that the shard knob stays out of the experiment identity
// (checkpoints recorded serial restore into sharded runs and vice versa).
func TestExportShardInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 4x14 small-scale points")
	}
	title := Registry()["fig5"].Title
	export := func(shards int) []byte {
		t.Helper()
		store, err := results.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Scale: "small", Seeds: 1, Quick: true, Loads: []float64{0.2}, Shards: shards, Results: store}
		if _, err := Run("fig5", o); err != nil {
			t.Fatal(err)
		}
		path, err := store.WriteExport("fig5", title)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	want := export(1)
	for _, shards := range []int{2, 4, 0} {
		if got := export(shards); !bytes.Equal(got, want) {
			t.Errorf("fig5 export at shards=%d differs from the serial export\n--- serial (%d bytes) ---\n%.2000s\n--- shards=%d (%d bytes) ---\n%.2000s",
				shards, len(want), want, shards, len(got), got)
		}
	}
}
