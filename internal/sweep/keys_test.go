package sweep

import (
	"testing"

	"flexvc/internal/core"
)

// TestResultsKeyStability pins the exact variant labels of every built-in
// experiment. Labels key checkpoints in the results store and replications in
// exported results files, so any change here silently orphans recorded data
// (nightly sweeps, experiments/*): renames must be deliberate and must
// regenerate the recorded artefacts. In particular, labels must never be
// derived from an enum's fmt.Stringer — this test is what catches a renamed
// String() method before it reaches the key space.
func TestResultsKeyStability(t *testing.T) {
	check := func(name string, got []Variant, want []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Errorf("%s: %d variants, want %d", name, len(got), len(want))
			return
		}
		for i := range got {
			if got[i].Label != want[i] {
				t.Errorf("%s[%d]: label %q, want %q (results keys must stay stable)", name, i, got[i].Label, want[i])
			}
		}
	}

	check("fig5Variants(non-adv)", fig5Variants(false), []string{
		"Baseline 2/1", "DAMQ75 2/1", "FlexVC 2/1", "FlexVC 4/2", "FlexVC 8/4",
	})
	check("fig5Variants(adv)", fig5Variants(true), []string{
		"Baseline 4/2", "DAMQ75 4/2", "FlexVC 4/2", "FlexVC 8/4",
	})
	check("fig7UniformVariants", fig7UniformVariants(), []string{
		"Baseline 4/2 (2/1+2/1)", "DAMQ 4/2 (2/1+2/1)", "FlexVC 4/2 (2/1+2/1)",
		"FlexVC 5/3 (2/1+3/2)", "FlexVC 5/3 (3/2+2/1)", "FlexVC 6/4 (2/1+4/3)",
		"FlexVC 6/4 (3/2+3/2)", "FlexVC 6/4 (4/3+2/1)",
	})
	check("fig7AdversarialVariants", fig7AdversarialVariants(), []string{
		"Baseline 8/4 (4/2+4/2)", "DAMQ 8/4 (4/2+4/2)", "FlexVC 8/4 (4/2+4/2)",
		"FlexVC 10/6 (5/3+5/3)", "FlexVC 10/6 (6/4+4/2)",
	})
	check("fig8Variants", fig8Variants(), []string{
		"MIN 4/2 (reference)", "VAL 8/4 (reference)",
		"PB per-VC (8/4)", "PB per-port (8/4)",
		"PB FlexVC per-VC (6/3)", "PB FlexVC per-port (6/3)",
		"PB FlexVC per-VC minCred (6/3)", "PB FlexVC per-port minCred (6/3)",
	})
	check("transientVariants", transientVariants(), []string{
		"MIN 4/2", "VAL 4/2", "PB per-VC 4/2",
	})

	// The buffer-capacity overlay of figs 6/11 derives labels from the inner
	// variant plus literal capacities.
	overlay := withBufferCapacity(baselineVariant("Baseline 2/1", single(2, 1)), 64, 256)
	if overlay.Label != "Baseline 2/1 @64/256" {
		t.Errorf("withBufferCapacity label %q, want %q", overlay.Label, "Baseline 2/1 @64/256")
	}

	// The fig9 selection vocabulary must stay literal, cover every selection
	// function, and never track a renamed Stringer.
	wantNames := map[core.SelectionFn]string{
		core.JSQ:       "jsq",
		core.HighestVC: "highest",
		core.LowestVC:  "lowest",
		core.RandomVC:  "random",
	}
	if len(selectionKeyName) != len(core.SelectionFns) {
		t.Errorf("selectionKeyName covers %d of %d selection functions", len(selectionKeyName), len(core.SelectionFns))
	}
	for _, fn := range core.SelectionFns {
		if selectionKeyName[fn] != wantNames[fn] {
			t.Errorf("selectionKeyName[%d] = %q, want %q", fn, selectionKeyName[fn], wantNames[fn])
		}
	}
}
