package sweep

import (
	"strings"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
)

func TestRegistryCoversEveryPaperArtefact(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"transient",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Error("IDs() incomplete")
	}
	if _, err := Run("nope", DefaultOptions()); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestTableExperiments(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4"} {
		rep, err := Run(id, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		text := rep.Render()
		if !strings.Contains(text, "MIN") || !strings.Contains(text, "VAL") {
			t.Errorf("%s report looks empty:\n%s", id, text)
		}
	}
}

func TestOptionsBaseConfig(t *testing.T) {
	for _, scale := range []string{"small", "medium", "paper", ""} {
		opts := Options{Scale: scale}
		cfg, err := opts.BaseConfig()
		if err != nil {
			t.Errorf("scale %q: %v", scale, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("scale %q produces invalid config: %v", scale, err)
		}
	}
	if _, err := (Options{Scale: "bogus"}).BaseConfig(); err == nil {
		t.Error("unknown scale should fail")
	}
	quick := Options{Quick: true}
	if got := quick.loads(DefaultLoads); len(got) != 3 {
		t.Errorf("quick load trimming broken: %v", got)
	}
	full := Options{Loads: []float64{0.5}}
	if got := full.loads(DefaultLoads); len(got) != 1 || got[0] != 0.5 {
		t.Errorf("load override broken: %v", got)
	}
}

// TestLoadSweepTiny runs a minimal sweep end to end on the tiny system.
func TestLoadSweepTiny(t *testing.T) {
	base := config.Tiny()
	base.WarmupCycles = 300
	base.MeasureCycles = 800
	variants := []Variant{
		{Label: "baseline", Apply: func(c *config.Config) {}},
		{Label: "flexvc", Apply: func(c *config.Config) { c.Scheme.Policy = core.FlexVC }},
	}
	series, err := LoadSweep(base, variants, []float64{0.2, 0.6}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || len(series[0].Points) != 2 {
		t.Fatalf("unexpected series shape: %+v", series)
	}
	for _, s := range series {
		for _, p := range s.Points {
			if p.Result.DeliveredPackets == 0 {
				t.Errorf("%s at load %.1f delivered nothing", s.Label, p.Load)
			}
		}
		if s.MaxAccepted() <= 0 || s.AcceptedAt(0.2) <= 0 {
			t.Errorf("%s accessors broken", s.Label)
		}
	}
	if out := RenderSeries("test", series); !strings.Contains(out, "baseline") {
		t.Error("series rendering broken")
	}
	if out := RenderMaxThroughput("test", series); !strings.Contains(out, "flexvc") {
		t.Error("max-throughput rendering broken")
	}
}

// TestLoadSweepRejectsInvalidVariant checks error propagation.
func TestLoadSweepRejectsInvalidVariant(t *testing.T) {
	base := config.Tiny()
	bad := []Variant{{Label: "broken", Apply: func(c *config.Config) { c.PacketSize = 0 }}}
	if _, err := LoadSweep(base, bad, []float64{0.5}, 1, 1); err == nil {
		t.Error("invalid variant should surface an error")
	}
}
