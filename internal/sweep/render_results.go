package sweep

import (
	"fmt"
	"sort"
	"strings"

	"flexvc/internal/results"
	"flexvc/internal/scenario"
	"flexvc/internal/stats"
)

// This file rebuilds reports from exported results files (internal/results)
// so `figures render` can regenerate every table — including the
// paper-vs-measured summaries in EXPERIMENTS.md — without re-simulating.

// rebuiltSection is one section of an experiment reassembled from records.
type rebuiltSection struct {
	index  int
	title  string
	series []Series
	// seeds is the replication count of the section's fullest point; points
	// with fewer are flagged incomplete.
	seeds int
	// incomplete lists human-readable descriptions of missing replications
	// (e.g. a sweep that was interrupted and never resumed).
	incomplete []string
}

// rebuildSections groups an exported results file back into ordered sections,
// variants and points, aggregating the per-seed records of every point in
// replication order — exactly the aggregation the live sweep performs, so a
// rendered report matches what the run itself printed.
func rebuildSections(f *results.File) ([]rebuiltSection, error) {
	type pointKey struct{ si, vi, pi int }
	points := map[pointKey][]results.Record{}
	secTitle := map[int]string{}
	varLabel := map[[2]int]string{}
	for _, r := range f.Records {
		k := pointKey{r.SectionIndex, r.VariantIndex, r.PointIndex}
		points[k] = append(points[k], r)
		if prev, ok := secTitle[r.SectionIndex]; ok && prev != r.Section {
			return nil, fmt.Errorf("sweep: results file %s: section %d named both %q and %q", f.Experiment, r.SectionIndex, prev, r.Section)
		}
		secTitle[r.SectionIndex] = r.Section
		vk := [2]int{r.SectionIndex, r.VariantIndex}
		if prev, ok := varLabel[vk]; ok && prev != r.Variant {
			return nil, fmt.Errorf("sweep: results file %s: variant %d of section %d labelled both %q and %q", f.Experiment, r.VariantIndex, r.SectionIndex, prev, r.Variant)
		}
		varLabel[vk] = r.Variant
	}

	secIdx := make([]int, 0, len(secTitle))
	for si := range secTitle {
		secIdx = append(secIdx, si)
	}
	sort.Ints(secIdx)

	var sections []rebuiltSection
	for _, si := range secIdx {
		sec := rebuiltSection{index: si, title: secTitle[si]}
		// A point is incomplete when its seeds are not 0..n-1 (interior gap)
		// or when it has fewer replications than the fullest point of its
		// section (trailing gap, e.g. an interrupted sweep never resumed).
		type pointMeta struct {
			label string
			load  float64
			seeds int
		}
		var metas []pointMeta
		varIdx := []int{}
		for vk := range varLabel {
			if vk[0] == si {
				varIdx = append(varIdx, vk[1])
			}
		}
		sort.Ints(varIdx)
		for _, vi := range varIdx {
			s := Series{Label: varLabel[[2]int{si, vi}]}
			pointIdx := []int{}
			for k := range points {
				if k.si == si && k.vi == vi {
					pointIdx = append(pointIdx, k.pi)
				}
			}
			sort.Ints(pointIdx)
			for _, pi := range pointIdx {
				recs := points[pointKey{si, vi, pi}]
				sort.Slice(recs, func(a, b int) bool { return recs[a].Seed < recs[b].Seed })
				present := map[int]bool{}
				maxSeed := 0
				per := make([]stats.Result, 0, len(recs))
				for _, r := range recs {
					if present[r.Seed] {
						sec.incomplete = append(sec.incomplete,
							fmt.Sprintf("%s / %s @ load %.2f: duplicate seed %d", sec.title, s.Label, r.Load, r.Seed))
					}
					present[r.Seed] = true
					if r.Seed > maxSeed {
						maxSeed = r.Seed
					}
					per = append(per, r.Result)
				}
				for i := 0; i <= maxSeed; i++ {
					if !present[i] {
						sec.incomplete = append(sec.incomplete,
							fmt.Sprintf("%s / %s @ load %.2f: missing seed %d", sec.title, s.Label, recs[0].Load, i))
					}
				}
				if len(present) > sec.seeds {
					sec.seeds = len(present)
				}
				metas = append(metas, pointMeta{label: s.Label, load: recs[0].Load, seeds: len(present)})
				s.Points = append(s.Points, Point{Load: recs[0].Load, Result: stats.Aggregate(per)})
			}
			sec.series = append(sec.series, s)
		}
		for _, m := range metas {
			if m.seeds < sec.seeds {
				sec.incomplete = append(sec.incomplete,
					fmt.Sprintf("%s / %s @ load %.2f: %d of %d replications recorded", sec.title, m.label, m.load, m.seeds, sec.seeds))
			}
		}
		sections = append(sections, sec)
	}
	return sections, nil
}

// ReportFromResults rebuilds the experiment's text Report from an exported
// results file, without simulating anything.
func ReportFromResults(f *results.File) (*Report, error) {
	sections, err := rebuildSections(f)
	if err != nil {
		return nil, err
	}
	title := f.Title
	if title == "" {
		if exp, ok := Registry()[f.Experiment]; ok {
			title = exp.Title
		}
	}
	rep := &Report{ID: f.Experiment, Title: title}
	for _, sec := range sections {
		// Transient sections carry windowed telemetry; render it exactly as
		// the live run does so rebuilt and live reports stay identical.
		rep.Sections = append(rep.Sections, Section{
			Title:  sec.title,
			Body:   RenderSeries(sec.title, sec.series) + RenderTransientText(sec.series),
			Series: sec.series,
		})
		for _, inc := range sec.incomplete {
			rep.Notes = append(rep.Notes, "INCOMPLETE: "+inc)
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("rendered from %d recorded replications (scale=%s, seeds=%d, revision=%s)",
		len(f.Records), f.Scale, f.Seeds, orUnknown(f.Revision)))
	return rep, nil
}

// RenderResultsMarkdown renders an exported results file as the markdown
// EXPERIMENTS.md embeds: per section, the full load/latency table plus a
// saturation-throughput summary with paper-vs-measured delta columns (where
// the paper reference table carries a value for the variant).
func RenderResultsMarkdown(f *results.File) (string, error) {
	sections, err := rebuildSections(f)
	if err != nil {
		return "", err
	}
	title := f.Title
	if title == "" {
		if exp, ok := Registry()[f.Experiment]; ok {
			title = exp.Title
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s: %s\n\n", f.Experiment, title)
	// The revision is deliberately omitted here (it lives in the results
	// file): the nightly drift gate diffs this rendering against a committed
	// report, and only simulation-output drift should trip it.
	fmt.Fprintf(&b, "Scale `%s`, %d seed(s) per point; rendered from `%s.results.json` by `figures render` — no re-simulation.\n",
		f.Scale, f.Seeds, f.Experiment)
	fmt.Fprintf(&b, "Latency percentiles carry at most %.2f%% relative error (see `stats.PercentileErrorBound`); means and throughput are exact.\n",
		100*stats.PercentileErrorBound)

	for _, sec := range sections {
		fmt.Fprintf(&b, "\n### %s\n\n", sec.title)
		for _, inc := range sec.incomplete {
			fmt.Fprintf(&b, "**INCOMPLETE:** %s\n\n", inc)
		}
		renderLoadTableMarkdown(&b, sec.series)
		renderSaturationMarkdown(&b, f.Experiment, sec)
		renderTransientMarkdown(&b, sec.series)
	}
	return b.String(), nil
}

// renderTransientMarkdown writes the windowed-telemetry table and the
// adaptation-lag summary of a transient section; sections without telemetry
// render nothing.
func renderTransientMarkdown(b *strings.Builder, series []Series) {
	ref := firstTransientSeries(series)
	if ref == nil {
		return
	}
	fmt.Fprintf(b, "#### Windowed telemetry (window %d cycles)\n\n", ref.Window)
	if len(ref.Marks) > 0 {
		parts := make([]string, len(ref.Marks))
		for i, m := range ref.Marks {
			parts[i] = fmt.Sprintf("`%s` @ %d", m.Label, m.Cycle)
		}
		fmt.Fprintf(b, "Phases: %s.\n\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(b, "| cycle |")
	for _, s := range series {
		fmt.Fprintf(b, " %s acc | lat | min%% |", s.Label)
	}
	fmt.Fprintf(b, "\n|---|")
	for range series {
		fmt.Fprintf(b, "---|---|---|")
	}
	fmt.Fprintln(b)
	for w := 0; w < ref.Windows(); w++ {
		fmt.Fprintf(b, "| %d |", ref.WindowStart(w))
		for _, s := range series {
			ts := transientSeriesOf(s)
			if ts == nil || w >= ts.Windows() {
				fmt.Fprintf(b, " - | - | - |")
				continue
			}
			fmt.Fprintf(b, " %.3f | %s | %s |", ts.Accepted(w),
				fmtOr(ts.MeanLatency(w), "%.1f", "-"), fmtOr(100*ts.MinimalFraction(w), "%.1f", "-"))
		}
		fmt.Fprintln(b)
	}
	fmt.Fprintln(b)

	var rows strings.Builder
	for _, s := range series {
		for _, l := range scenario.AdaptationLags(transientSeriesOf(s)) {
			lag := "no shift"
			switch {
			case l.Shifted && l.Crossed:
				lag = fmt.Sprintf("%d", l.Cycles)
			case l.Shifted:
				lag = fmt.Sprintf("> %d", l.Cycles)
			}
			fmt.Fprintf(&rows, "| %s | %s | %d | %s | %s | %s |\n", s.Label, l.Label, l.At,
				fmtOr(100*l.Pre, "%.1f", "-"), fmtOr(100*l.Post, "%.1f", "-"), lag)
		}
	}
	if rows.Len() == 0 {
		// Single-phase scenarios have no switches to analyse.
		return
	}
	fmt.Fprintf(b, "#### Adaptation lag\n\n")
	fmt.Fprintf(b, "Cycles from a phase switch until the settled minimal-fraction midpoint is crossed (shift threshold %.2f).\n\n", scenario.LagShiftThreshold)
	fmt.Fprintf(b, "| variant | switch | at cycle | min%% before | min%% after | lag (cycles) |\n|---|---|---|---|---|---|\n")
	b.WriteString(rows.String())
	fmt.Fprintln(b)
}

// renderLoadTableMarkdown writes the offered-load table: per variant, the
// accepted load and average latency at each offered load. Sections with a
// single load point (the bar-chart figures) skip it — the saturation summary
// carries all of their information.
func renderLoadTableMarkdown(b *strings.Builder, series []Series) {
	loadSet := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			loadSet[p.Load] = true
		}
	}
	if len(loadSet) <= 1 {
		return
	}
	loads := make([]float64, 0, len(loadSet))
	for l := range loadSet {
		loads = append(loads, l)
	}
	sort.Float64s(loads)

	fmt.Fprintf(b, "| offered |")
	for _, s := range series {
		fmt.Fprintf(b, " %s acc | lat |", s.Label)
	}
	fmt.Fprintf(b, "\n|---|")
	for range series {
		fmt.Fprintf(b, "---|---|")
	}
	fmt.Fprintln(b)
	for _, load := range loads {
		fmt.Fprintf(b, "| %.2f |", load)
		for _, s := range series {
			found := false
			for _, p := range s.Points {
				if p.Load == load {
					mark := ""
					if p.Result.Deadlock {
						mark = " *DL*"
					}
					fmt.Fprintf(b, " %.3f%s | %.1f |", p.Result.AcceptedLoad, mark, p.Result.AvgLatency)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(b, " - | - |")
			}
		}
		fmt.Fprintln(b)
	}
	fmt.Fprintln(b)
}

// renderSaturationMarkdown writes the saturation-throughput summary: measured
// max accepted load with the latency percentiles at that point (recomputed
// from the point's merged histogram where recorded), improvement relative to
// the section's first variant (the baseline), the paper's improvement for
// that variant where the reference table has one, and the measured-minus-
// paper delta in percentage points.
func renderSaturationMarkdown(b *strings.Builder, experiment string, sec rebuiltSection) {
	if len(sec.series) == 0 {
		return
	}
	baseline := sec.series[0].MaxAccepted()
	fmt.Fprintf(b, "| variant | max accepted | p50 | p95 | p99 | vs %s | paper (approx) | delta (pp) |\n|---|---|---|---|---|---|---|---|\n",
		sec.series[0].Label)
	anyRef := false
	for i, s := range sec.series {
		v := s.MaxAccepted()
		rel := 0.0
		if baseline > 0 {
			rel = v/baseline - 1
		}
		relCol := "—"
		if i > 0 {
			relCol = fmt.Sprintf("%+.1f%%", 100*rel)
		}
		paperCol, deltaCol := "-", "-"
		if ref, ok := PaperImprovement(experiment, sec.title, s.Label); ok && i > 0 {
			anyRef = true
			paperCol = fmt.Sprintf("%+.1f%%", 100*ref)
			deltaCol = fmt.Sprintf("%+.1f", 100*(rel-ref))
		}
		flag := ""
		if len(s.Points) > 0 && s.Points[len(s.Points)-1].Result.Deadlock {
			flag = " (deadlock)"
		}
		p50, p95, p99 := percentilesAtMax(s)
		fmt.Fprintf(b, "| %s | %.3f%s | %.1f | %.1f | %.1f | %s | %s | %s |\n",
			s.Label, v, flag, p50, p95, p99, relCol, paperCol, deltaCol)
	}
	if anyRef {
		fmt.Fprintf(b, "\n%s\n", paperReferenceCaveat)
	}
	fmt.Fprintln(b)
}

// percentilesAtMax returns the latency percentiles of the series' point with
// the highest accepted load: recomputed from the point's serialized histogram
// where one was recorded (the pooled percentiles of all merged replications,
// within stats.PercentileErrorBound), falling back to the averaged fields on
// legacy results.
func percentilesAtMax(s Series) (p50, p95, p99 float64) {
	var best *Point
	for i := range s.Points {
		if best == nil || s.Points[i].Result.AcceptedLoad > best.Result.AcceptedLoad {
			best = &s.Points[i]
		}
	}
	if best == nil {
		return 0, 0, 0
	}
	r := best.Result
	if r.Hist != nil && r.Hist.Total() > 0 {
		return r.Hist.Quantile(0.50), r.Hist.Quantile(0.95), r.Hist.Quantile(0.99)
	}
	return r.P50, r.P95, r.P99
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
