package sweep

import (
	"strings"
	"testing"

	"flexvc/internal/results"
)

// TestTransientExperimentCheckpointed runs the transient experiment through
// the checkpointed runner twice: the first run simulates and records, the
// second must restore every replication, and the rendered report — live,
// rebuilt from results, and markdown — must carry the windowed telemetry and
// the adaptation-lag summary.
func TestTransientExperimentCheckpointed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates three routing modes")
	}
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Scale: "small", Seeds: 1, Quick: true, Results: store}
	var last Progress
	opts.Progress = func(p Progress) { last = p }
	rep, err := Run("transient", opts)
	if err != nil {
		t.Fatal(err)
	}
	if last.Done != 3 || last.Skipped != 0 {
		t.Fatalf("first run: %d done (%d restored), want 3 fresh", last.Done, last.Skipped)
	}
	body := rep.Sections[0].Body
	for _, frag := range []string{"windowed telemetry", "adaptation lag", "PB per-VC 4/2", "phases:"} {
		if !strings.Contains(body, frag) {
			t.Errorf("live report missing %q:\n%s", frag, body)
		}
	}

	// Resume: everything must come from the store, bit-identically.
	opts.state = nil
	rep2, err := Run("transient", opts)
	if err != nil {
		t.Fatal(err)
	}
	if last.Skipped != 3 {
		t.Fatalf("resumed run restored %d of %d, want all 3", last.Skipped, last.Done)
	}
	if rep2.Sections[0].Body != body {
		t.Error("resumed report differs from the fresh one")
	}

	// Export and re-render without simulating.
	path, err := store.WriteExport("transient", "transient test")
	if err != nil {
		t.Fatal(err)
	}
	f, err := results.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ReportFromResults(f)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Sections[0].Body != body {
		t.Errorf("rebuilt body differs from live rendering:\n--- rebuilt ---\n%s\n--- live ---\n%s", rebuilt.Sections[0].Body, body)
	}
	md, err := RenderResultsMarkdown(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"#### Windowed telemetry", "#### Adaptation lag", "| p50 | p95 | p99 |", "min% before"} {
		if !strings.Contains(md, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, md)
		}
	}
}
