package sweep

import (
	"bytes"
	"os"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/obs"
	"flexvc/internal/results"
	"flexvc/internal/routing"
	"flexvc/internal/sim"
)

// TestMetricsExportInvariant locks the observability zero-impact contract at
// the export layer: a run with a metrics registry attached must write results
// exports byte-identical to an uninstrumented run, across both topologies and
// both the serial and sharded stepping paths. Exports embed every record's
// config fingerprint, so this also pins that Metrics — like Shards — stays
// out of the experiment identity.
func TestMetricsExportInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2x2x2 small-scale sweeps")
	}
	variants := []Variant{
		{Label: "MIN", Apply: func(c *config.Config) { c.Routing = routing.MIN }},
		{Label: "VAL", Apply: func(c *config.Config) {
			c.Routing = routing.VAL
			c.Scheme.VCs = core.SingleClass(4, 2)
		}},
	}
	export := func(topo config.TopologyKind, shards int, reg *obs.Registry) []byte {
		t.Helper()
		store, err := results.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Scale: "small", Seeds: 1, Quick: true, Shards: shards, Metrics: reg, Results: store}
		base, err := o.BaseConfig()
		if err != nil {
			t.Fatal(err)
		}
		base.Topology = topo
		runner := o.NewRunner("obs-invariant")
		if _, err := runner.RunSection("routing", base, variants, []float64{0.2}); err != nil {
			t.Fatal(err)
		}
		runner.Finish()
		path, err := store.WriteExport("obs-invariant", "metrics invariance probe")
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	for _, topo := range []config.TopologyKind{config.TopoDragonfly, config.TopoFlattenedButterfly} {
		for _, shards := range []int{1, 2} {
			want := export(topo, shards, nil)
			reg := obs.NewRegistry()
			got := export(topo, shards, reg)
			if !bytes.Equal(got, want) {
				t.Errorf("%s shards=%d: metrics-on export differs from metrics-off\n--- off (%d bytes) ---\n%.2000s\n--- on (%d bytes) ---\n%.2000s",
					topo, shards, len(want), want, len(got), got)
			}
			// The comparison only means something if instrumentation was live:
			// the registry must have seen the run it rode along with.
			snap := reg.Snapshot()
			if snap.Counters[MetricReplicationsSimulated] == 0 {
				t.Errorf("%s shards=%d: registry recorded no simulated replications — instrumentation was never enabled", topo, shards)
			}
			if snap.Counters[sim.MetricCycles] == 0 {
				t.Errorf("%s shards=%d: registry recorded no simulated cycles", topo, shards)
			}
		}
	}
}
