package sweep

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/results"
)

// checkpointTestSweep runs the reference checkpointed sweep of this test
// file into dir: 3 variants x 5 loads x 2 seeds on the tiny Dragonfly. Both
// the in-process tests and the SIGKILL helper process run exactly this, so
// their stores are comparable byte for byte.
func checkpointTestSweep(dir string, progress func(Progress)) ([]Series, *results.Store, error) {
	store, err := results.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	base := config.Tiny()
	base.WarmupCycles = 300
	base.MeasureCycles = 3000
	variants := []Variant{
		baselineVariant("baseline 2/1", core.SingleClass(2, 1)),
		flexVariant("flexvc 2/1", core.SingleClass(2, 1)),
		flexVariant("flexvc 4/2", core.SingleClass(4, 2)),
	}
	o := Options{
		Scale:      "tiny",
		Seeds:      2,
		Results:    store,
		Progress:   progress,
		experiment: "ckpt-test",
		state:      newRunState(),
	}
	series, err := o.runSection("tiny UN/MIN panel", base, variants, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
	return series, store, err
}

const ckptTestReplications = 3 * 5 * 2

// exportBytes writes the test experiment's export file and returns its bytes.
func exportBytes(t *testing.T, store *results.Store) []byte {
	t.Helper()
	path, err := store.WriteExport("ckpt-test", "checkpoint test sweep")
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckpointedMatchesPlainSweep requires the checkpointed engine to
// produce exactly the series the plain sweep produces: checkpointing is an
// observer, never a behaviour change.
func TestCheckpointedMatchesPlainSweep(t *testing.T) {
	ckSeries, _, err := checkpointTestSweep(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := config.Tiny()
	base.WarmupCycles = 300
	base.MeasureCycles = 3000
	variants := []Variant{
		baselineVariant("baseline 2/1", core.SingleClass(2, 1)),
		flexVariant("flexvc 2/1", core.SingleClass(2, 1)),
		flexVariant("flexvc 4/2", core.SingleClass(4, 2)),
	}
	plain, err := LoadSweep(base, variants, []float64{0.2, 0.4, 0.6, 0.8, 1.0}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ckSeries, plain) {
		t.Fatal("checkpointed sweep result differs from the plain sweep")
	}
}

// TestCheckpointResumeSkipsCompletedWork runs a partial sweep (a prefix of
// the load points), then the full sweep against the same directory, and
// requires (a) every already-done replication to be restored rather than
// re-simulated and (b) the final export to be bit-identical to an
// uninterrupted run's.
func TestCheckpointResumeSkipsCompletedWork(t *testing.T) {
	// Uninterrupted reference run.
	_, refStore, err := checkpointTestSweep(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := exportBytes(t, refStore)

	// Partial run: first two loads only.
	dir := t.TempDir()
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := config.Tiny()
	base.WarmupCycles = 300
	base.MeasureCycles = 3000
	variants := []Variant{
		baselineVariant("baseline 2/1", core.SingleClass(2, 1)),
		flexVariant("flexvc 2/1", core.SingleClass(2, 1)),
		flexVariant("flexvc 4/2", core.SingleClass(4, 2)),
	}
	o := Options{Scale: "tiny", Seeds: 2, Results: store, experiment: "ckpt-test", state: newRunState()}
	if _, err := o.runSection("tiny UN/MIN panel", base, variants, []float64{0.2, 0.4}); err != nil {
		t.Fatal(err)
	}
	partial := store.Len()
	if partial != 3*2*2 {
		t.Fatalf("partial run recorded %d replications, want %d", partial, 3*2*2)
	}

	// Resume with the full sweep against the same directory.
	var last Progress
	series, store2, err := checkpointTestSweep(dir, func(p Progress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if last.Skipped != partial {
		t.Errorf("resume skipped %d replications, want %d", last.Skipped, partial)
	}
	if last.Done != ckptTestReplications || last.Total != ckptTestReplications {
		t.Errorf("resume accounting wrong: %+v", last)
	}
	if got := exportBytes(t, store2); !bytes.Equal(got, ref) {
		t.Fatal("resumed export is not bit-identical to the uninterrupted run")
	}
	// And the rebuilt series must match too.
	full, _, err := checkpointTestSweep(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(series, full) {
		t.Fatal("resumed series differ from an uninterrupted run's")
	}
}

// TestCheckpointSweepHelperProcess is not a test: it is the body of the
// child process TestCheckpointSIGKILLResume kills. It runs the reference
// sweep into the directory named by FLEXVC_SWEEP_HELPER_DIR.
func TestCheckpointSweepHelperProcess(t *testing.T) {
	dir := os.Getenv("FLEXVC_SWEEP_HELPER_DIR")
	if dir == "" {
		t.Skip("helper process for TestCheckpointSIGKILLResume")
	}
	if _, _, err := checkpointTestSweep(dir, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointSIGKILLResume proves the acceptance criterion end to end: a
// sweep process killed with SIGKILL mid-run leaves a directory from which a
// restarted sweep skips the completed replications and exports results JSON
// bit-identical to an uninterrupted run's.
func TestCheckpointSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	recDir := filepath.Join(dir, "records")

	cmd := exec.Command(os.Args[0], "-test.run", "^TestCheckpointSweepHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "FLEXVC_SWEEP_HELPER_DIR="+dir)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill the child the moment at least two replications are on disk —
	// mid-run, with most of the sweep still to do.
	countRecords := func() int {
		entries, err := os.ReadDir(recDir)
		if err != nil {
			return 0
		}
		n := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") {
				n++
			}
		}
		return n
	}
	deadline := time.Now().Add(60 * time.Second)
	for countRecords() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoints appeared before the deadline; helper output:\n%s", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL on unix
		t.Fatal(err)
	}
	_ = cmd.Wait()
	killedAt := countRecords()
	t.Logf("killed helper with %d/%d replications recorded", killedAt, ckptTestReplications)
	if killedAt == ckptTestReplications {
		t.Log("helper finished before the kill landed; resume still exercised below")
	}

	// Restart against the same directory.
	var last Progress
	_, store, err := checkpointTestSweep(dir, func(p Progress) { last = p })
	if err != nil {
		t.Fatal(err)
	}
	if last.Skipped == 0 {
		t.Error("restarted sweep re-simulated everything; expected completed replications to be skipped")
	}
	if last.Done != ckptTestReplications {
		t.Errorf("restarted sweep completed %d replications, want %d", last.Done, ckptTestReplications)
	}

	// The resumed export must equal an uninterrupted run's, byte for byte.
	_, refStore, err := checkpointTestSweep(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exportBytes(t, store), exportBytes(t, refStore)) {
		t.Fatal("post-SIGKILL resumed export is not bit-identical to an uninterrupted run")
	}
}

// TestReportFromResults rebuilds a report from the exported results file and
// requires the rendered tables to match the live run's rendering exactly.
func TestReportFromResults(t *testing.T) {
	series, store, err := checkpointTestSweep(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	path, err := store.WriteExport("ckpt-test", "checkpoint test sweep")
	if err != nil {
		t.Fatal(err)
	}
	f, err := results.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReportFromResults(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sections) != 1 {
		t.Fatalf("rebuilt report has %d sections, want 1", len(rep.Sections))
	}
	want := RenderSeries("tiny UN/MIN panel", series)
	if rep.Sections[0].Body != want {
		t.Errorf("rebuilt section body differs from live rendering:\n--- got ---\n%s\n--- want ---\n%s", rep.Sections[0].Body, want)
	}
	md, err := RenderResultsMarkdown(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"### tiny UN/MIN panel", "| offered |", "max accepted", "baseline 2/1"} {
		if !strings.Contains(md, frag) {
			t.Errorf("markdown rendering missing %q:\n%s", frag, md)
		}
	}
	if strings.Contains(md, "INCOMPLETE") {
		t.Error("complete results rendered as incomplete")
	}
}

// TestReportFromResultsFlagsMissingSeeds requires both interior and trailing
// seed gaps to surface as INCOMPLETE markers instead of silently rendering
// aggregates over fewer replications.
func TestReportFromResultsFlagsMissingSeeds(t *testing.T) {
	series, store, err := checkpointTestSweep(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = series
	path, err := store.WriteExport("ckpt-test", "checkpoint test sweep")
	if err != nil {
		t.Fatal(err)
	}
	f, err := results.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	drop := func(pred func(r results.Record) bool) *results.File {
		out := *f
		out.Records = nil
		for _, r := range f.Records {
			if !pred(r) {
				out.Records = append(out.Records, r)
			}
		}
		return &out
	}
	// Trailing gap: the first point of the first variant loses seed 1.
	trailing := drop(func(r results.Record) bool {
		return r.VariantIndex == 0 && r.PointIndex == 0 && r.Seed == 1
	})
	rep, err := ReportFromResults(trailing)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Render(), "INCOMPLETE") {
		t.Error("trailing seed gap not flagged")
	}
	// Interior gap: the same point loses seed 0 instead. Only the absent
	// seed may be flagged — present seeds must not cascade into false notes.
	interior := drop(func(r results.Record) bool {
		return r.VariantIndex == 0 && r.PointIndex == 0 && r.Seed == 0
	})
	rep, err = ReportFromResults(interior)
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Render()
	if !strings.Contains(text, "missing seed 0") {
		t.Error("interior seed gap not flagged")
	}
	if strings.Contains(text, "missing seed 1") {
		t.Error("present seed falsely flagged as missing")
	}
}
