package verify

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/results"
	"flexvc/internal/sweep"
)

// recordSmokeTree records the embedded smoke campaign (quick mode, ~0.2s)
// into a fresh "experiments tree": <dir>/smoke-rec/{smoke.results.json,
// report.md} plus <dir>/manifest.json with pinned digests. It is the faithful
// baseline every corruption test perturbs.
func recordSmokeTree(t *testing.T) (dir string, m *Manifest) {
	t.Helper()
	dir = t.TempDir()
	rec := filepath.Join(dir, "smoke-rec")
	if err := os.MkdirAll(rec, 0o755); err != nil {
		t.Fatal(err)
	}
	store, err := results.Open(filepath.Join(dir, "scratch-recording"))
	if err != nil {
		t.Fatal(err)
	}
	store.SetRevision("testrev")
	spec, err := campaign.Builtin("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(spec, sweep.Options{Quick: true, Results: store}); err != nil {
		t.Fatal(err)
	}
	exportPath, err := store.WriteExport(spec.Name, spec.ReportTitle())
	if err != nil {
		t.Fatal(err)
	}
	export, err := os.ReadFile(exportPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(rec, "smoke.results.json"), export, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := results.LoadFile(exportPath)
	if err != nil {
		t.Fatal(err)
	}
	text, err := sweep.RenderResultsMarkdown(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(rec, "report.md"), []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	m = &Manifest{
		Schema: ManifestSchema,
		Entries: []Entry{{
			ID: "smoke", Kind: "campaign", Campaign: "smoke", Quick: true,
			Export:      FileRef{Path: "smoke-rec/smoke.results.json"},
			Report:      FileRef{Path: "smoke-rec/report.md"},
			ApproxWallS: 1,
		}},
	}
	m.SetDir(dir)
	if err := m.UpdateDigests(); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	// Loading it back exercises the file path tests rely on.
	m, err = LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	return dir, m
}

func checkOne(t *testing.T, m *Manifest, opts Options) Result {
	t.Helper()
	rs, err := Check(m, []string{"all"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("%d results, want 1", len(rs))
	}
	return rs[0]
}

// TestCheckPassesOnFaithfulRecording is the positive path: a just-recorded
// experiment verifies PASS, with the re-run actually simulating.
func TestCheckPassesOnFaithfulRecording(t *testing.T) {
	_, m := recordSmokeTree(t)
	r := checkOne(t, m, Options{})
	if r.Status != Pass {
		t.Fatalf("faithful recording: %s", r.Summary())
	}
	if r.Replications != 2 {
		t.Errorf("re-run simulated %d replications, want 2", r.Replications)
	}
	if r.Wall <= 0 {
		t.Error("result carries no wall time")
	}
}

// TestCheckCatchesExportByteCorruption flips one byte of the committed export
// and requires a FAIL naming the artefact — the integrity layer, no re-run
// needed.
func TestCheckCatchesExportByteCorruption(t *testing.T) {
	dir, m := recordSmokeTree(t)
	path := filepath.Join(dir, "smoke-rec", "smoke.results.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r := checkOne(t, m, Options{})
	if r.Status != Fail {
		t.Fatalf("corrupted export not caught: %s", r.Summary())
	}
	if len(r.Mismatches) != 1 || r.Mismatches[0].Artifact != "smoke-rec/smoke.results.json" ||
		!strings.Contains(r.Mismatches[0].Reason, "sha256") {
		t.Fatalf("wrong diagnostic: %s", r.Summary())
	}
	if r.Replications != 0 {
		t.Error("integrity failure should have skipped the re-run")
	}
}

// TestCheckCatchesStaleReport covers the drift scenario: the committed report
// was edited (or the renderer/simulator changed) and its digest deliberately
// re-pinned, so integrity passes — the re-run byte comparison must still FAIL
// with first-diverging-line context.
func TestCheckCatchesStaleReport(t *testing.T) {
	dir, m := recordSmokeTree(t)
	path := filepath.Join(dir, "smoke-rec", "report.md")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(b), "|", "!", 1)
	if stale == string(b) {
		t.Fatal("report has no table to stale")
	}
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateDigests(); err != nil { // digests match the stale bytes
		t.Fatal(err)
	}
	r := checkOne(t, m, Options{})
	if r.Status != Fail {
		t.Fatalf("stale report not caught: %s", r.Summary())
	}
	if len(r.Mismatches) != 1 {
		t.Fatalf("want exactly the report mismatch, got: %s", r.Summary())
	}
	mm := r.Mismatches[0]
	if mm.Artifact != "smoke-rec/report.md" || mm.Line == 0 || mm.Want == mm.Got {
		t.Fatalf("mismatch lacks line context: %+v", mm)
	}
}

// TestCheckNegativePathSelfTest proves the comparator is not vacuous: with
// CorruptFresh set, a faithful recording MUST fail on the named artefact.
func TestCheckNegativePathSelfTest(t *testing.T) {
	_, m := recordSmokeTree(t)
	for _, target := range []string{"export", "report"} {
		r := checkOne(t, m, Options{CorruptFresh: target})
		if r.Status != Fail {
			t.Errorf("CorruptFresh %s: comparator did not catch the corruption: %s", target, r.Summary())
		}
	}
	// And without the corruption the same tree still passes (the self-test
	// flag is the only difference).
	if r := checkOne(t, m, Options{}); r.Status != Pass {
		t.Errorf("tree no longer passes after self-tests: %s", r.Summary())
	}
}

// TestCheckMaxWallSkipsButStillChecksDigests: an entry above the -max-wall
// budget SKIPs its re-run, but corrupted artefacts still FAIL.
func TestCheckMaxWallSkipsButStillChecksDigests(t *testing.T) {
	dir, m := recordSmokeTree(t)
	r := checkOne(t, m, Options{MaxWall: time.Millisecond}) // entry claims ≈1s
	if r.Status != Skip || !strings.Contains(r.Detail, "skipped") {
		t.Fatalf("expensive entry not skipped: %s", r.Summary())
	}
	if r.Replications != 0 {
		t.Error("skip still simulated")
	}
	path := filepath.Join(dir, "smoke-rec", "report.md")
	if err := os.WriteFile(path, []byte("corrupted\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if r := checkOne(t, m, Options{MaxWall: time.Millisecond}); r.Status != Fail {
		t.Fatalf("digest corruption hidden behind SKIP: %s", r.Summary())
	}
}

// TestCheckMaxWallWorkersAware: the skip estimate divides the recorded
// (serial) wall by the worker count, so a budget that an entry blows serially
// no longer skips it when the parallel re-run would fit.
func TestCheckMaxWallWorkersAware(t *testing.T) {
	_, m := recordSmokeTree(t)
	budget := 600 * time.Millisecond // entry claims ≈1s serial
	if r := checkOne(t, m, Options{MaxWall: budget, Workers: 1}); r.Status != Skip {
		t.Fatalf("serial estimate should skip the 1s entry on a %s budget: %s", budget, r.Summary())
	}
	r := checkOne(t, m, Options{MaxWall: budget, Workers: 4})
	if r.Status != Pass {
		t.Fatalf("4-worker estimate (~0.25s) should re-run within the %s budget: %s", budget, r.Summary())
	}
	if r.Replications == 0 {
		t.Error("workers-aware pass did not actually re-simulate")
	}
}

// TestCheckMissingArtifactFails: a deleted recording is a FAIL with a
// readable reason, not a harness error.
func TestCheckMissingArtifactFails(t *testing.T) {
	dir, m := recordSmokeTree(t)
	if err := os.Remove(filepath.Join(dir, "smoke-rec", "report.md")); err != nil {
		t.Fatal(err)
	}
	r := checkOne(t, m, Options{})
	if r.Status != Fail || !strings.Contains(r.Summary(), "unreadable") {
		t.Fatalf("missing report: %s", r.Summary())
	}
}

// TestCheckUnpinnedDigestFails: an empty sha256 is an explicit FAIL telling
// the operator to run -update, never a silent pass.
func TestCheckUnpinnedDigestFails(t *testing.T) {
	_, m := recordSmokeTree(t)
	m.Entries[0].Export.SHA256 = ""
	r := checkOne(t, m, Options{})
	if r.Status != Fail || !strings.Contains(r.Summary(), "-update") {
		t.Fatalf("unpinned digest: %s", r.Summary())
	}
}

// TestCheckWorkDirKeepsScratchResults: with WorkDir set the re-run's results
// directory survives under <WorkDir>/<id> (what nightly CI uploads on
// failure).
func TestCheckWorkDirKeepsScratchResults(t *testing.T) {
	dir, m := recordSmokeTree(t)
	work := filepath.Join(dir, "check-work")
	r := checkOne(t, m, Options{WorkDir: work})
	if r.Status != Pass {
		t.Fatalf("%s", r.Summary())
	}
	if _, err := os.Stat(filepath.Join(work, "smoke", "smoke.results.json")); err != nil {
		t.Fatalf("scratch export not kept under WorkDir: %v", err)
	}
}

// TestCheckRerunErrorFails: an entry whose campaign spec cannot be resolved
// fails that entry (with the resolver's message) instead of aborting the
// whole check.
func TestCheckRerunErrorFails(t *testing.T) {
	_, m := recordSmokeTree(t)
	m.Entries[0].Campaign = "no-such-spec"
	r := checkOne(t, m, Options{})
	if r.Status != Fail || !strings.Contains(r.Summary(), "re-run failed") {
		t.Fatalf("unresolvable campaign: %s", r.Summary())
	}
}
