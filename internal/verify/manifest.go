// Package verify turns reproducibility itself into data: a manifest under
// experiments/ describes every recorded experiment or campaign — what to
// re-run, at which scale and seed count, and the exact sha256 digests of the
// committed export and rendered report — and Check re-runs each entry through
// the existing checkpointed runner into a scratch results directory and
// byte-compares what comes out against what is committed.
//
// The byte-identity contract this package enforces has two layers:
//
//  1. Integrity: the committed artefacts still hash to the digests pinned in
//     the manifest. A mismatch means the recorded files were corrupted or
//     edited without updating the manifest (`figures check -update` refreshes
//     the digests deliberately).
//  2. Reproducibility: a fresh simulation of the entry — same spec, same
//     scale, same seeds — exports byte-for-byte the committed results file,
//     and rendering those results reproduces the committed report. The
//     results layer is built for exactly this (deterministic exports, wall
//     times kept out of result files); the one legitimately run-dependent
//     header field, the source revision, is pinned from the recorded export
//     before comparing.
//
// Every entry yields a structured PASS/FAIL/SKIP Result; on mismatch the
// first diverging line of the artefact is reported so a drifted metric is
// identified from the failure message alone.
package verify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flexvc/internal/sweep"
)

// ManifestSchema is the version of the experiments-manifest JSON schema.
const ManifestSchema = 1

// Manifest is the experiments/manifest.json file: the complete list of
// recorded artefacts the repository promises to keep byte-reproducible.
type Manifest struct {
	Schema  int     `json:"schema"`
	Entries []Entry `json:"entries"`

	// dir is the directory the manifest was loaded from; every FileRef and
	// campaign spec path resolves relative to it.
	dir string
}

// Entry describes one recorded experiment or campaign.
type Entry struct {
	// ID is the entry's stable identity (by convention the directory name
	// under experiments/); `figures check <id>` selects it.
	ID string `json:"id"`
	// Kind is "experiment" (a built-in sweep-registry experiment) or
	// "campaign" (a declarative spec).
	Kind string `json:"kind"`
	// Experiment is the sweep-registry id to re-run (kind "experiment").
	Experiment string `json:"experiment,omitempty"`
	// Campaign locates the campaign spec (kind "campaign"): a path relative
	// to the manifest directory, or the name of an embedded spec.
	Campaign string `json:"campaign,omitempty"`
	// Scale and Seeds pin the run parameters. Experiment entries must set
	// both; campaign entries may leave them zero to use the spec's defaults.
	Scale string `json:"scale,omitempty"`
	Seeds int    `json:"seeds,omitempty"`
	// Quick records whether the artefacts were produced with quick-mode
	// sweep trimming (they rarely are; the verifier must match either way).
	Quick bool `json:"quick,omitempty"`
	// Export and Report pin the committed artefacts by path and digest.
	Export FileRef `json:"export"`
	Report FileRef `json:"report"`
	// ApproxWallS is the entry's approximate re-run wall cost in seconds on
	// one fast core — what `figures check -max-wall` budgets against.
	ApproxWallS float64 `json:"approx_wall_s,omitempty"`
	// Notes is free-form provenance for humans reading the manifest.
	Notes string `json:"notes,omitempty"`
}

// FileRef pins one committed artefact: a slash-separated path relative to the
// manifest's directory plus the full sha256 of its bytes.
type FileRef struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
}

// ParseManifest decodes and validates a manifest. Unknown fields are rejected
// so a typo in a hand-edited manifest fails loudly instead of silently
// weakening the check.
func ParseManifest(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("verify: manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadManifest reads and validates a manifest file; entry paths resolve
// relative to the file's directory.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseManifest(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m.dir = filepath.Dir(path)
	return m, nil
}

// Dir returns the directory entry paths resolve against.
func (m *Manifest) Dir() string { return m.dir }

// SetDir overrides the path-resolution directory (for manifests built or
// parsed in memory rather than loaded from a file).
func (m *Manifest) SetDir(dir string) { m.dir = dir }

// IDs returns the entry ids in manifest order.
func (m *Manifest) IDs() []string {
	ids := make([]string, len(m.Entries))
	for i, e := range m.Entries {
		ids[i] = e.ID
	}
	return ids
}

// Entry returns the entry with the given id.
func (m *Manifest) Entry(id string) (Entry, bool) {
	for _, e := range m.Entries {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// Validate checks the manifest for structural consistency: schema version,
// unique slug ids, a runnable target per entry, and well-formed artefact
// references. It is file-system independent — missing artefacts surface as
// FAIL results at check time, not here.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("verify: manifest schema v%d, this build reads v%d", m.Schema, ManifestSchema)
	}
	if len(m.Entries) == 0 {
		return fmt.Errorf("verify: manifest has no entries")
	}
	reg := sweep.Registry()
	seen := map[string]bool{}
	for i, e := range m.Entries {
		ctx := fmt.Sprintf("verify: manifest entry %d (%q)", i, e.ID)
		if !slugOK(e.ID) {
			return fmt.Errorf("verify: manifest entry %d: id %q must be a non-empty lowercase slug ([a-z0-9-])", i, e.ID)
		}
		if seen[e.ID] {
			return fmt.Errorf("%s: duplicate id", ctx)
		}
		seen[e.ID] = true
		switch e.Kind {
		case "experiment":
			if e.Experiment == "" || e.Campaign != "" {
				return fmt.Errorf("%s: kind experiment needs `experiment` set and `campaign` empty", ctx)
			}
			exp, ok := reg[e.Experiment]
			if !ok {
				return fmt.Errorf("%s: unknown experiment %q (see `figures list`)", ctx, e.Experiment)
			}
			if exp.Analytic {
				return fmt.Errorf("%s: experiment %q is analytic — nothing is recorded, so there is nothing to verify", ctx, e.Experiment)
			}
			if e.Scale == "" || e.Seeds < 1 {
				return fmt.Errorf("%s: experiment entries must pin scale and seeds (got scale=%q seeds=%d)", ctx, e.Scale, e.Seeds)
			}
		case "campaign":
			if e.Campaign == "" || e.Experiment != "" {
				return fmt.Errorf("%s: kind campaign needs `campaign` set and `experiment` empty", ctx)
			}
		default:
			return fmt.Errorf("%s: kind %q, want \"experiment\" or \"campaign\"", ctx, e.Kind)
		}
		if err := e.Export.validate(ctx + ": export"); err != nil {
			return err
		}
		if err := e.Report.validate(ctx + ": report"); err != nil {
			return err
		}
		if e.ApproxWallS < 0 {
			return fmt.Errorf("%s: approx_wall_s must be non-negative, got %g", ctx, e.ApproxWallS)
		}
	}
	return nil
}

func (f FileRef) validate(ctx string) error {
	if f.Path == "" {
		return fmt.Errorf("%s: missing path", ctx)
	}
	if filepath.IsAbs(f.Path) || f.Path != filepath.ToSlash(filepath.Clean(f.Path)) || strings.HasPrefix(f.Path, "..") {
		return fmt.Errorf("%s: path %q must be a clean slash-separated path relative to the manifest directory", ctx, f.Path)
	}
	if f.SHA256 != "" && !shaOK(f.SHA256) {
		return fmt.Errorf("%s: sha256 %q must be 64 lowercase hex digits (or empty until `figures check -update` pins it)", ctx, f.SHA256)
	}
	return nil
}

func slugOK(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return id[0] != '-' && id[len(id)-1] != '-'
}

func shaOK(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// path resolves an artefact reference against the manifest directory.
func (m *Manifest) path(f FileRef) string {
	return filepath.Join(m.dir, filepath.FromSlash(f.Path))
}

// Write atomically is not needed here — the manifest is a committed source
// file, not runtime state — but a trailing newline keeps it diff-friendly.
func (m *Manifest) Write(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
