package verify

import (
	"strings"
	"testing"
)

// mkManifest returns a structurally valid manifest for mutation tests.
func mkManifest() *Manifest {
	return &Manifest{
		Schema: ManifestSchema,
		Entries: []Entry{
			{
				ID: "fig5-small", Kind: "experiment", Experiment: "fig5", Scale: "small", Seeds: 2,
				Export: FileRef{Path: "fig5-small/fig5.results.json", SHA256: strings.Repeat("ab", 32)},
				Report: FileRef{Path: "fig5-small/report.md", SHA256: strings.Repeat("cd", 32)},
			},
			{
				ID: "pb", Kind: "campaign", Campaign: "pb/campaign.json",
				Export: FileRef{Path: "pb/pb.results.json", SHA256: strings.Repeat("ef", 32)},
				Report: FileRef{Path: "pb/report.md", SHA256: strings.Repeat("01", 32)},
			},
		},
	}
}

// TestManifestValidation locks the fail-fast rules: every malformed manifest
// must be rejected with a message naming the problem, and the valid baseline
// must pass.
func TestManifestValidation(t *testing.T) {
	if err := mkManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Manifest)
		wantErr string
	}{
		{"wrong schema", func(m *Manifest) { m.Schema = 99 }, "schema v99"},
		{"no entries", func(m *Manifest) { m.Entries = nil }, "no entries"},
		{"bad id", func(m *Manifest) { m.Entries[0].ID = "Fig5 Small" }, "lowercase slug"},
		{"duplicate id", func(m *Manifest) { m.Entries[1].ID = m.Entries[0].ID }, "duplicate id"},
		{"bad kind", func(m *Manifest) { m.Entries[0].Kind = "sweep" }, `kind "sweep"`},
		{"experiment entry without experiment", func(m *Manifest) { m.Entries[0].Experiment = "" }, "needs `experiment` set"},
		{"experiment entry with campaign too", func(m *Manifest) { m.Entries[0].Campaign = "x.json" }, "`campaign` empty"},
		{"unknown experiment", func(m *Manifest) { m.Entries[0].Experiment = "fig99" }, `unknown experiment "fig99"`},
		{"analytic experiment", func(m *Manifest) { m.Entries[0].Experiment = "table1" }, "analytic"},
		{"experiment without scale", func(m *Manifest) { m.Entries[0].Scale = "" }, "pin scale and seeds"},
		{"experiment without seeds", func(m *Manifest) { m.Entries[0].Seeds = 0 }, "pin scale and seeds"},
		{"campaign entry without campaign", func(m *Manifest) { m.Entries[1].Campaign = "" }, "needs `campaign` set"},
		{"missing artefact path", func(m *Manifest) { m.Entries[0].Export.Path = "" }, "missing path"},
		{"absolute artefact path", func(m *Manifest) { m.Entries[0].Report.Path = "/etc/passwd" }, "relative to the manifest"},
		{"escaping artefact path", func(m *Manifest) { m.Entries[0].Report.Path = "../outside.md" }, "relative to the manifest"},
		{"unclean artefact path", func(m *Manifest) { m.Entries[0].Report.Path = "a//b.md" }, "clean"},
		{"short digest", func(m *Manifest) { m.Entries[0].Export.SHA256 = "abc123" }, "64 lowercase hex"},
		{"uppercase digest", func(m *Manifest) { m.Entries[0].Export.SHA256 = strings.Repeat("AB", 32) }, "64 lowercase hex"},
		{"negative wall", func(m *Manifest) { m.Entries[0].ApproxWallS = -1 }, "approx_wall_s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := mkManifest()
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("mutation accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseManifestRejectsUnknownFields requires DisallowUnknownFields, so a
// typo in a hand-edited manifest cannot silently weaken the check.
func TestParseManifestRejectsUnknownFields(t *testing.T) {
	_, err := ParseManifest([]byte(`{"schema":1,"entries":[],"extra":true}`))
	if err == nil || !strings.Contains(err.Error(), "extra") {
		t.Fatalf("unknown field accepted (err=%v)", err)
	}
	if _, err := ParseManifest([]byte(`{"schema":1`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

// TestSelectEntries covers id selection: all, explicit subsets in manifest
// order, unknown ids and duplicates.
func TestSelectEntries(t *testing.T) {
	m := mkManifest()
	for _, ids := range [][]string{nil, {"all"}} {
		got, err := selectEntries(m, ids)
		if err != nil || len(got) != 2 {
			t.Fatalf("selectEntries(%v) = %d entries, err %v; want all 2", ids, len(got), err)
		}
	}
	got, err := selectEntries(m, []string{"pb"})
	if err != nil || len(got) != 1 || got[0].ID != "pb" {
		t.Fatalf("selectEntries(pb) = %+v, %v", got, err)
	}
	if _, err := selectEntries(m, []string{"nope"}); err == nil || !strings.Contains(err.Error(), "fig5-small, pb") {
		t.Fatalf("unknown id error %v should list the available ids", err)
	}
	if _, err := selectEntries(m, []string{"pb", "pb"}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate id accepted (err=%v)", err)
	}
}

// TestFirstDivergence pins the mismatch-context format: 1-based line numbers,
// end-of-file markers, long-line truncation.
func TestFirstDivergence(t *testing.T) {
	cases := []struct {
		name        string
		want, got   string
		line        int
		wantL, gotL string
	}{
		{"first line", "a\nb\n", "x\nb\n", 1, "a", "x"},
		{"middle line", "a\nb\nc\n", "a\nX\nc\n", 2, "b", "X"},
		{"got ends early", "a\nb\n", "a\n", 2, "b", "<end of file>"},
		{"want ends early", "a\n", "a\nb\n", 2, "<end of file>", "b"},
		{"long line truncated", "a\n" + strings.Repeat("y", 300), "a\n" + strings.Repeat("z", 300), 2,
			strings.Repeat("y", 159) + "…", strings.Repeat("z", 159) + "…"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			line, w, g := firstDivergence([]byte(tc.want), []byte(tc.got))
			if line != tc.line || w != tc.wantL || g != tc.gotL {
				t.Fatalf("firstDivergence = (%d, %q, %q), want (%d, %q, %q)", line, w, g, tc.line, tc.wantL, tc.gotL)
			}
		})
	}
}

// TestStatusStrings pins the status vocabulary CLI output and JSON share.
func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{Pass: "PASS", Fail: "FAIL", Skip: "SKIP"} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s, want)
		}
		if b, err := s.MarshalJSON(); err != nil || string(b) != `"`+want+`"` {
			t.Errorf("Status(%d).MarshalJSON() = %s, %v", int(s), b, err)
		}
	}
}

// TestFlipByteChangesExactlyOneByte guards the negative-path primitive: it
// must corrupt a copy, never the original, and change exactly one byte.
func TestFlipByteChangesExactlyOneByte(t *testing.T) {
	orig := []byte("hello world")
	keep := append([]byte(nil), orig...)
	flipped := flipByte(orig)
	if string(orig) != string(keep) {
		t.Fatal("flipByte mutated its input")
	}
	diff := 0
	for i := range orig {
		if flipped[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("flipByte changed %d bytes, want 1", diff)
	}
	if len(flipByte(nil)) != 0 {
		t.Fatal("flipByte(nil) should stay empty")
	}
}
