package verify

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"flexvc/internal/campaign"
	"flexvc/internal/obs"
	"flexvc/internal/results"
	"flexvc/internal/sweep"
)

// Status classifies one entry's verification outcome.
type Status int

const (
	// Pass: digests intact, re-run byte-identical.
	Pass Status = iota
	// Fail: a digest mismatch, a re-run error, or diverging bytes.
	Fail
	// Skip: integrity digests verified, but the re-run was skipped (entry
	// cost above Options.MaxWall).
	Skip
)

func (s Status) String() string {
	switch s {
	case Pass:
		return "PASS"
	case Fail:
		return "FAIL"
	case Skip:
		return "SKIP"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// MarshalJSON encodes the status as its string form, so structured check
// output reads "PASS"/"FAIL"/"SKIP" rather than bare integers.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Mismatch is one diverging artefact of a failed entry.
type Mismatch struct {
	// Artifact is the manifest-relative path of the artefact that diverged.
	Artifact string `json:"artifact"`
	// Reason says what kind of divergence this is (digest mismatch, re-run
	// divergence, missing file, …).
	Reason string `json:"reason"`
	// Line is the 1-based first diverging line for byte comparisons (0 when
	// the mismatch is not line-level, e.g. a digest failure).
	Line int `json:"line,omitempty"`
	// Want and Got hold the diverging line's committed and freshly-produced
	// text (truncated for readability).
	Want string `json:"want,omitempty"`
	Got  string `json:"got,omitempty"`
}

func (mm Mismatch) String() string {
	if mm.Line == 0 {
		return fmt.Sprintf("%s: %s", mm.Artifact, mm.Reason)
	}
	return fmt.Sprintf("%s: %s at line %d:\n    want: %s\n    got:  %s", mm.Artifact, mm.Reason, mm.Line, mm.Want, mm.Got)
}

// Result is the structured outcome of verifying one manifest entry.
type Result struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	// Detail carries the skip reason or the re-run error; empty on clean
	// passes and on pure byte mismatches (see Mismatches).
	Detail     string     `json:"detail,omitempty"`
	Mismatches []Mismatch `json:"mismatches,omitempty"`
	// Replications is how many replications the re-run simulated (0 when the
	// re-run was skipped or failed to start).
	Replications int `json:"replications,omitempty"`
	// Wall is the entry's total verification time, re-run included.
	Wall time.Duration `json:"wall_ns"`
}

// Summary renders the result as one status line.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %s (%s)", r.Status, r.ID, r.Wall.Round(10*time.Millisecond))
	if r.Detail != "" {
		fmt.Fprintf(&b, ": %s", r.Detail)
	}
	for _, mm := range r.Mismatches {
		fmt.Fprintf(&b, "\n  %s", mm.String())
	}
	return b.String()
}

// Options parameterizes a check run.
type Options struct {
	// WorkDir, when set, keeps each entry's scratch results directory at
	// <WorkDir>/<id> (CI uploads these on failure). Empty uses a private
	// temporary directory, removed afterwards.
	WorkDir string
	// MaxWall, when positive, skips the re-run of entries whose estimated
	// wall exceeds it; their digests are still verified. This is what lets PR
	// CI check the cheap entries end to end without paying for the big ones.
	MaxWall time.Duration
	// Workers is the concurrent replication-worker count the wall estimate
	// assumes: an entry's recorded ApproxWallS (measured serial) is divided
	// by Workers before the MaxWall comparison, so a budget that would be
	// blown serially no longer skips entries that fit when run parallel. The
	// estimate is an idealized linear-speedup bound, good enough for a skip
	// heuristic. 0 or 1 keeps the serial estimate.
	Workers int
	// CorruptFresh is the negative-path self-test: "export" or "report"
	// flips one byte of the named freshly-produced artefact before
	// comparing, so a run that still PASSes proves the comparator is broken.
	// Tests use it to show corruption is actually caught.
	CorruptFresh string
	// Progress, when non-nil, streams the re-run's sweep progress events.
	Progress func(sweep.Progress)
	// Shards is the intra-replication shard count the re-runs simulate with
	// (sweep.Options.Shards: 1 serial, 0 auto, N >= 2 explicit). Because
	// sharding is bit-identical by contract, a check run at any shard count
	// must still reproduce the recorded artefacts byte for byte — running
	// the checks with Shards > 1 is itself a verification of that contract.
	Shards int
	// Metrics, when non-nil, instruments the re-runs into this registry
	// (phase walls, checkpoint latencies, …). The byte-identity comparison
	// is unaffected — instrumentation never touches simulated state — so a
	// metered check doubles as a live test of the zero-impact contract.
	Metrics *obs.Registry
}

// Check verifies the given entry ids (nil or ["all"] means every entry) and
// returns one Result per entry, in manifest order. The error return is for
// harness problems only — unknown ids, an unusable scratch directory —
// never for entry failures, which land in the results.
func Check(m *Manifest, ids []string, opts Options) ([]Result, error) {
	entries, err := selectEntries(m, ids)
	if err != nil {
		return nil, err
	}
	workRoot := opts.WorkDir
	if workRoot == "" {
		tmp, err := os.MkdirTemp("", "flexvc-check-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		workRoot = tmp
	}
	rs := make([]Result, 0, len(entries))
	for _, e := range entries {
		rs = append(rs, checkEntry(m, e, filepath.Join(workRoot, e.ID), opts))
	}
	return rs, nil
}

// Failed reports whether any result is a FAIL.
func Failed(rs []Result) bool {
	for _, r := range rs {
		if r.Status == Fail {
			return true
		}
	}
	return false
}

func selectEntries(m *Manifest, ids []string) ([]Entry, error) {
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		return m.Entries, nil
	}
	seen := map[string]bool{}
	entries := make([]Entry, 0, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("verify: entry %q requested twice", id)
		}
		seen[id] = true
		e, ok := m.Entry(id)
		if !ok {
			return nil, fmt.Errorf("verify: no manifest entry %q (have: %s)", id, strings.Join(m.IDs(), ", "))
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// checkEntry runs both layers of the byte-identity contract for one entry.
func checkEntry(m *Manifest, e Entry, scratch string, opts Options) Result {
	start := time.Now()
	res := Result{ID: e.ID, Status: Pass}
	done := func() Result {
		res.Wall = time.Since(start)
		if len(res.Mismatches) > 0 {
			res.Status = Fail
		}
		return res
	}

	// Layer 1 — integrity: the committed artefacts hash to the manifest's
	// digests. A corrupted or silently-edited recording fails here without
	// any simulation.
	wantExport, ok := readPinned(m, e.Export, &res)
	wantReport, ok2 := readPinned(m, e.Report, &res)
	if !ok || !ok2 {
		return done()
	}
	expected, err := results.LoadFile(m.path(e.Export))
	if err != nil {
		res.Mismatches = append(res.Mismatches, Mismatch{Artifact: e.Export.Path, Reason: fmt.Sprintf("recorded export does not parse: %v", err)})
		return done()
	}

	// Layer 2 — reproducibility: re-simulate into a scratch results
	// directory and demand byte-identical artefacts.
	if opts.MaxWall > 0 {
		est := e.ApproxWallS
		if opts.Workers > 1 {
			est = e.ApproxWallS / float64(opts.Workers)
		}
		if est > opts.MaxWall.Seconds() {
			res.Status = Skip
			if opts.Workers > 1 {
				res.Detail = fmt.Sprintf("re-run skipped: approx wall %.0fs (~%.0fs at %d workers) exceeds -max-wall %s (recorded digests verified)",
					e.ApproxWallS, est, opts.Workers, opts.MaxWall)
			} else {
				res.Detail = fmt.Sprintf("re-run skipped: approx wall %.0fs exceeds -max-wall %s (recorded digests verified)", e.ApproxWallS, opts.MaxWall)
			}
			return done()
		}
	}
	gotExport, gotReport, reps, err := rerun(m, e, scratch, expected.Revision, opts)
	if err != nil {
		res.Mismatches = append(res.Mismatches, Mismatch{Artifact: e.Export.Path, Reason: fmt.Sprintf("re-run failed: %v", err)})
		return done()
	}
	res.Replications = reps
	switch opts.CorruptFresh {
	case "export":
		gotExport = flipByte(gotExport)
	case "report":
		gotReport = flipByte(gotReport)
	}
	compare(e.Export.Path, "re-run export diverges from the recorded results", wantExport, gotExport, &res)
	compare(e.Report.Path, "re-rendered report diverges from the recorded report", wantReport, gotReport, &res)
	return done()
}

// readPinned reads one committed artefact and checks it against its pinned
// digest, appending a mismatch on any problem.
func readPinned(m *Manifest, ref FileRef, res *Result) ([]byte, bool) {
	b, err := os.ReadFile(m.path(ref))
	if err != nil {
		res.Mismatches = append(res.Mismatches, Mismatch{Artifact: ref.Path, Reason: fmt.Sprintf("recorded file unreadable: %v", err)})
		return nil, false
	}
	if ref.SHA256 == "" {
		res.Mismatches = append(res.Mismatches, Mismatch{Artifact: ref.Path, Reason: "no digest pinned in the manifest (run `figures check -update` and commit the result)"})
		return nil, false
	}
	if got := results.DigestBytes(b); got != ref.SHA256 {
		res.Mismatches = append(res.Mismatches, Mismatch{
			Artifact: ref.Path,
			Reason:   fmt.Sprintf("sha256 %s.. does not match the manifest's %s.. (recorded file corrupted, or edited without `figures check -update`)", got[:12], ref.SHA256[:12]),
		})
		return nil, false
	}
	return b, true
}

// rerun re-simulates the entry into the scratch directory and returns the
// fresh export and rendered report bytes. The recorded export's revision is
// pinned into the scratch store first: the revision header is provenance of
// the recording, not a simulation outcome, and it is the only field that
// would legitimately differ between the recording machine and this one.
func rerun(m *Manifest, e Entry, scratch, revision string, ropts Options) (export, report []byte, reps int, err error) {
	progress := ropts.Progress
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		return nil, nil, 0, err
	}
	store, err := results.Open(scratch)
	if err != nil {
		return nil, nil, 0, err
	}
	if revision != "" {
		store.SetRevision(revision)
	}
	if ropts.Metrics != nil {
		store.SetMetrics(ropts.Metrics)
	}
	var final sweep.Progress
	opts := sweep.Options{
		Scale:   e.Scale,
		Seeds:   e.Seeds,
		Quick:   e.Quick,
		Shards:  ropts.Shards,
		Results: store,
		Metrics: ropts.Metrics,
		Progress: func(p sweep.Progress) {
			final = p
			if progress != nil {
				progress(p)
			}
		},
	}
	exportID, title := e.Experiment, ""
	if e.Kind == "campaign" {
		spec, cerr := m.resolveCampaign(e)
		if cerr != nil {
			return nil, nil, 0, cerr
		}
		exportID, title = spec.Name, spec.ReportTitle()
		_, err = campaign.Run(spec, opts)
	} else {
		title = sweep.Registry()[e.Experiment].Title
		_, err = sweep.Run(e.Experiment, opts)
	}
	if err != nil {
		return nil, nil, 0, err
	}
	path, err := store.WriteExport(exportID, title)
	if err != nil {
		return nil, nil, 0, err
	}
	export, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	f, err := results.LoadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("fresh export does not parse: %w", err)
	}
	text, err := sweep.RenderResultsMarkdown(f)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("rendering fresh export: %w", err)
	}
	return export, []byte(text), final.Done, nil
}

// resolveCampaign locates an entry's campaign spec: a path relative to the
// manifest directory when such a file exists, otherwise an embedded spec name
// (campaign.Resolve's usual fallback).
func (m *Manifest) resolveCampaign(e Entry) (*campaign.Campaign, error) {
	p := filepath.Join(m.dir, filepath.FromSlash(e.Campaign))
	if fi, err := os.Stat(p); err == nil && fi.Mode().IsRegular() {
		return campaign.Load(p)
	}
	return campaign.Resolve(e.Campaign)
}

// compare byte-compares one artefact and appends a line-level mismatch on
// divergence.
func compare(artifact, reason string, want, got []byte, res *Result) {
	if string(want) == string(got) {
		return
	}
	line, w, g := firstDivergence(want, got)
	res.Mismatches = append(res.Mismatches, Mismatch{Artifact: artifact, Reason: reason, Line: line, Want: w, Got: g})
}

// firstDivergence returns the 1-based number and (truncated) text of the
// first line where want and got differ. A side that ends early contributes
// "<end of file>".
func firstDivergence(want, got []byte) (int, string, string) {
	wl := splitLines(want)
	gl := splitLines(got)
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		w, g := "<end of file>", "<end of file>"
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return i + 1, truncateLine(w), truncateLine(g)
		}
	}
	// Byte-unequal but line-equal can only mean a trailing-newline
	// difference; point at the last line.
	return n, "<trailing bytes differ>", "<trailing bytes differ>"
}

// splitLines splits on "\n" without a phantom empty line after a trailing
// newline, so a file that simply ends early reports "<end of file>" rather
// than an empty-string diff.
func splitLines(b []byte) []string {
	s := strings.TrimSuffix(string(b), "\n")
	return strings.Split(s, "\n")
}

func truncateLine(s string) string {
	const max = 160
	if len(s) <= max {
		return s
	}
	return s[:max-1] + "…"
}

// flipByte inverts one byte of a copy of data (the negative-path self-test's
// corruption primitive).
func flipByte(data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) > 0 {
		out[len(out)/2] ^= 0xff
	}
	return out
}

// UpdateDigests recomputes every entry's pinned digests from the committed
// artefacts on disk — the deliberate half of the integrity layer, used after
// regenerating a recorded experiment (`figures check -update`).
func (m *Manifest) UpdateDigests() error {
	for i := range m.Entries {
		e := &m.Entries[i]
		for _, ref := range []*FileRef{&e.Export, &e.Report} {
			d, err := results.DigestFile(m.path(*ref))
			if err != nil {
				return fmt.Errorf("verify: %s: %s: %w", e.ID, ref.Path, err)
			}
			ref.SHA256 = d
		}
	}
	return nil
}
