package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"flexvc/internal/packet"
)

func marks() []PhaseMark {
	return []PhaseMark{{Cycle: 0, Label: "un@0.40"}, {Cycle: 200, Label: "adv@0.40"}}
}

func TestTimeSeriesBounds(t *testing.T) {
	if _, err := NewTimeSeries(0, 100, 4, nil); err == nil {
		t.Error("accepted a zero window")
	}
	if _, err := NewTimeSeries(30, 100, 4, nil); err == nil {
		t.Error("accepted a window that does not divide the span")
	}
	_, err := NewTimeSeries(1, MaxTimeSeriesWindows+1, 4, nil)
	if err == nil || !strings.Contains(err.Error(), "at least") {
		t.Errorf("window bound violation not rejected with sizing hint: %v", err)
	}
	ts, err := NewTimeSeries(100, 800, 4, marks())
	if err != nil {
		t.Fatal(err)
	}
	if ts.Windows() != 8 || ts.WindowStart(3) != 300 {
		t.Errorf("windows=%d start(3)=%d, want 8 and 300", ts.Windows(), ts.WindowStart(3))
	}
}

func TestTimeSeriesRecordAndDerived(t *testing.T) {
	ts, err := NewTimeSeries(100, 400, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts.Record(0, 8, true, 20)
	ts.Record(99, 8, false, 40)
	ts.Record(250, 8, true, 10)
	ts.Record(9999, 8, true, 10) // past the span: clamps into the last window
	if got := ts.Accepted(0); got != 16.0/(100*2) {
		t.Errorf("Accepted(0) = %v", got)
	}
	if got := ts.MeanLatency(0); got != 30 {
		t.Errorf("MeanLatency(0) = %v, want 30", got)
	}
	if got := ts.MinimalFraction(0); got != 0.5 {
		t.Errorf("MinimalFraction(0) = %v, want 0.5", got)
	}
	if !math.IsNaN(ts.MeanLatency(1)) || !math.IsNaN(ts.MinimalFraction(1)) {
		t.Error("empty window should report NaN latency and minimal fraction")
	}
	if ts.Packets[3] != 1 {
		t.Error("out-of-span delivery did not clamp into the last window")
	}
}

func TestTimeSeriesMerge(t *testing.T) {
	a, _ := NewTimeSeries(100, 400, 2, marks())
	b, _ := NewTimeSeries(100, 400, 2, marks())
	a.Record(50, 8, true, 20)
	b.Record(50, 8, false, 40)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Runs != 2 || a.Packets[0] != 2 || a.MinRouted[0] != 1 {
		t.Errorf("merge sums wrong: %+v", a)
	}
	// Throughput is per replication: two runs each delivering 8 phits in a
	// 100-cycle window over 2 nodes average to the single-run value.
	if got := a.Accepted(0); got != 8.0/(100*2) {
		t.Errorf("merged Accepted(0) = %v", got)
	}
	for _, bad := range []*TimeSeries{
		{Window: 50, Nodes: 2, Runs: 1, Packets: make([]int64, 8), Phits: make([]int64, 8), LatencySum: make([]float64, 8), MinRouted: make([]int64, 8)},
		{Window: 100, Nodes: 3, Runs: 1, Packets: make([]int64, 4), Phits: make([]int64, 4), LatencySum: make([]float64, 4), MinRouted: make([]int64, 4)},
	} {
		if err := a.Merge(bad); err == nil {
			t.Errorf("merge accepted mismatched series %+v", bad)
		}
	}
	c, _ := NewTimeSeries(100, 400, 2, []PhaseMark{{Cycle: 0, Label: "other"}})
	if err := a.Merge(c); err == nil {
		t.Error("merge accepted diverging phase marks")
	}
}

// TestTimeSeriesValidate covers the load-time structural checks guarding
// deserialized results records against ragged or corrupt series.
func TestTimeSeriesValidate(t *testing.T) {
	good, _ := NewTimeSeries(100, 800, 2, marks())
	if err := good.Validate(); err != nil {
		t.Fatalf("fresh series invalid: %v", err)
	}
	bad := func(f func(*TimeSeries)) *TimeSeries {
		c := good.Clone()
		f(c)
		return c
	}
	cases := map[string]*TimeSeries{
		"zero window":    bad(func(c *TimeSeries) { c.Window = 0 }),
		"zero nodes":     bad(func(c *TimeSeries) { c.Nodes = 0 }),
		"zero runs":      bad(func(c *TimeSeries) { c.Runs = 0 }),
		"ragged phits":   bad(func(c *TimeSeries) { c.Phits = c.Phits[:1] }),
		"ragged latency": bad(func(c *TimeSeries) { c.LatencySum = append(c.LatencySum, 0) }),
		"empty arrays":   bad(func(c *TimeSeries) { c.Phits, c.Packets, c.LatencySum, c.MinRouted = nil, nil, nil, nil }),
		"mark disorder":  bad(func(c *TimeSeries) { c.Marks = []PhaseMark{{Cycle: 300}, {Cycle: 100}} }),
		"mark past span": bad(func(c *TimeSeries) { c.Marks = []PhaseMark{{Cycle: 0}, {Cycle: 800}} }),
	}
	for name, ts := range cases {
		if err := ts.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestTimeSeriesJSONRoundTrip(t *testing.T) {
	ts, _ := NewTimeSeries(100, 400, 2, marks())
	ts.Record(10, 8, true, 25)
	ts.Record(350, 8, false, 75)
	b1, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	var back TimeSeries
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ts, &back) {
		t.Fatalf("round trip changed the series:\n%+v\n%+v", ts, &back)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("re-encoding is not byte-identical")
	}
}

func TestCollectorTimeSeries(t *testing.T) {
	c := NewCollector(2, 0, 400)
	if err := c.EnableTimeSeries(100, 400, marks()); err != nil {
		t.Fatal(err)
	}
	st := packet.NewStore()
	p := st.Alloc(1, 0, 1, 8, packet.Request, 10)
	st.Times(p).Inject = 12
	st.Times(p).Recv = 50
	c.Delivered(st, p, 50)
	q := st.Alloc(2, 1, 0, 8, packet.Request, 200)
	st.Times(q).Inject = 202
	st.Times(q).Recv = 260
	st.Route(q).Kind = packet.Nonminimal
	c.Delivered(st, q, 260)
	res := c.Summarize(0.5, 400, false)
	if res.Series == nil {
		t.Fatal("summary lost the time series")
	}
	if res.Series.Packets[0] != 1 || res.Series.Packets[2] != 1 {
		t.Errorf("windows misrecorded: %+v", res.Series.Packets)
	}
	if res.Series.MinRouted[2] != 0 || res.Series.MinRouted[0] != 1 {
		t.Errorf("minimal counts misrecorded: %+v", res.Series.MinRouted)
	}
	// The attached series is a clone: further deliveries must not mutate it.
	r := st.Alloc(3, 0, 1, 8, packet.Request, 300)
	st.Times(r).Recv = 399
	c.Delivered(st, r, 399)
	if res.Series.Packets[3] != 0 {
		t.Error("summary series aliases the live collector")
	}

	// Aggregating results merges their series; mismatched series are dropped.
	res2 := c.Summarize(0.5, 400, false)
	agg := Aggregate([]Result{res, res2})
	if agg.Series == nil || agg.Series.Runs != 2 {
		t.Fatalf("aggregate series missing or wrong run count: %+v", agg.Series)
	}
	other, _ := NewTimeSeries(50, 400, 2, nil)
	bad := res2
	bad.Series = other
	if agg := Aggregate([]Result{res, bad, res2}); agg.Series != nil {
		t.Error("aggregate over mismatched series should drop the series")
	}
}
