package stats

import (
	"fmt"
	"math"
)

// MaxTimeSeriesWindows bounds the number of windows a time series may hold,
// so the collector's memory stays bounded no matter how long a scenario runs
// (the steady-state collector has the same property via the fixed-size
// histogram). Spec layers (internal/scenario) validate window sizing against
// this bound before a simulation is assembled.
const MaxTimeSeriesWindows = 4096

// PhaseMark annotates the cycle at which the workload changed (a scenario
// phase boundary). Marks ride with the series into the results files so
// transient analysis — adaptation lag after a traffic shift — can be redone
// offline without access to the scenario definition.
type PhaseMark struct {
	// Cycle is the first cycle of the phase.
	Cycle int64 `json:"cycle"`
	// Label names the phase (e.g. "adv@0.40").
	Label string `json:"label"`
}

// TimeSeries is a bounded windowed view of a run: deliveries are bucketed
// into fixed-width windows of simulated cycles, accumulating exact sums from
// which per-window throughput, mean latency and minimal-routed fraction are
// derived. Sums (not means) are stored so merging the series of independent
// replications is exact, mirroring Histogram.Merge.
//
// The JSON encoding is deterministic (plain arrays in window order), which
// the results pipeline relies on for bit-identical resumed sweeps.
type TimeSeries struct {
	// Window is the window width in cycles.
	Window int64 `json:"window"`
	// Nodes is the simulated node count (throughput normalization).
	Nodes int `json:"nodes"`
	// Runs counts the merged replications; derived per-window throughput
	// divides by it so a merged series reads as a per-replication average.
	Runs int `json:"runs"`
	// Phits, Packets, LatencySum and MinRouted accumulate per window over
	// deliveries: phits delivered, packets delivered, summed end-to-end
	// latency and minimally-routed packet count.
	Phits      []int64   `json:"phits"`
	Packets    []int64   `json:"packets"`
	LatencySum []float64 `json:"latency_sum"`
	MinRouted  []int64   `json:"min_routed"`
	// Marks are the workload phase boundaries, ascending by cycle.
	Marks []PhaseMark `json:"marks,omitempty"`
}

// NewTimeSeries builds an empty series covering [0, total) cycles. It
// enforces the MaxTimeSeriesWindows bound and rejects windows that do not
// divide the total (ragged final windows would skew the derived throughput).
func NewTimeSeries(window, total int64, nodes int, marks []PhaseMark) (*TimeSeries, error) {
	return NewTimeSeriesIn(nil, window, total, nodes, marks)
}

// NewTimeSeriesIn is NewTimeSeries with the window arrays carved from an
// Arena (heap-allocated when arena is nil). An arena-backed series is only
// valid until the arena's next Reset; Clone detaches it onto the heap.
func NewTimeSeriesIn(arena *Arena, window, total int64, nodes int, marks []PhaseMark) (*TimeSeries, error) {
	if window <= 0 {
		return nil, fmt.Errorf("stats: time-series window must be positive, got %d", window)
	}
	if total <= 0 || total%window != 0 {
		return nil, fmt.Errorf("stats: time-series span %d is not a positive multiple of window %d", total, window)
	}
	n := total / window
	if n > MaxTimeSeriesWindows {
		return nil, fmt.Errorf("stats: %d windows of %d cycles exceed the bound of %d; use a window of at least %d cycles",
			n, window, MaxTimeSeriesWindows, (total+MaxTimeSeriesWindows-1)/MaxTimeSeriesWindows)
	}
	ts := &TimeSeries{
		Window: window,
		Nodes:  nodes,
		Runs:   1,
		Marks:  append([]PhaseMark(nil), marks...),
	}
	if arena != nil {
		ts.Phits = arena.Int64(int(n))
		ts.Packets = arena.Int64(int(n))
		ts.LatencySum = arena.Float64(int(n))
		ts.MinRouted = arena.Int64(int(n))
	} else {
		ts.Phits = make([]int64, n)
		ts.Packets = make([]int64, n)
		ts.LatencySum = make([]float64, n)
		ts.MinRouted = make([]int64, n)
	}
	return ts, nil
}

// Windows returns the number of windows.
func (t *TimeSeries) Windows() int { return len(t.Packets) }

// WindowStart returns the first cycle of window i.
func (t *TimeSeries) WindowStart(i int) int64 { return int64(i) * t.Window }

// Record accumulates one delivery at cycle `now`. Deliveries past the end of
// the covered span clamp into the last window (they can only come from a
// caller running longer than the series was sized for).
func (t *TimeSeries) Record(now int64, phits int, minimal bool, latency int64) {
	i := int(now / t.Window)
	if i < 0 {
		i = 0
	}
	if i >= len(t.Packets) {
		i = len(t.Packets) - 1
	}
	t.Phits[i] += int64(phits)
	t.Packets[i]++
	t.LatencySum[i] += float64(latency)
	if minimal {
		t.MinRouted[i]++
	}
}

// Accepted returns the per-replication throughput of window i in
// phits/node/cycle.
func (t *TimeSeries) Accepted(i int) float64 {
	return float64(t.Phits[i]) / (float64(t.Window) * float64(t.Nodes) * float64(t.Runs))
}

// MeanLatency returns the mean delivered-packet latency of window i in
// cycles, or NaN when the window delivered nothing.
func (t *TimeSeries) MeanLatency(i int) float64 {
	if t.Packets[i] == 0 {
		return math.NaN()
	}
	return t.LatencySum[i] / float64(t.Packets[i])
}

// MinimalFraction returns the minimally-routed fraction of window i, or NaN
// when the window delivered nothing.
func (t *TimeSeries) MinimalFraction(i int) float64 {
	if t.Packets[i] == 0 {
		return math.NaN()
	}
	return float64(t.MinRouted[i]) / float64(t.Packets[i])
}

// Validate checks a deserialized series for structural consistency (ragged
// arrays, nonsensical window geometry, unordered marks), so corrupt results
// records are rejected at load time instead of panicking during rendering or
// aggregation — the same contract Histogram enforces in its UnmarshalJSON.
func (t *TimeSeries) Validate() error {
	if t.Window <= 0 || t.Nodes <= 0 || t.Runs < 1 {
		return fmt.Errorf("stats: time series has invalid geometry (window %d, nodes %d, runs %d)", t.Window, t.Nodes, t.Runs)
	}
	n := len(t.Packets)
	if n == 0 || len(t.Phits) != n || len(t.LatencySum) != n || len(t.MinRouted) != n {
		return fmt.Errorf("stats: time series arrays are ragged (phits %d, packets %d, latency %d, min-routed %d)",
			len(t.Phits), n, len(t.LatencySum), len(t.MinRouted))
	}
	span := t.Window * int64(n)
	prev := int64(-1)
	for i, m := range t.Marks {
		if m.Cycle <= prev || m.Cycle >= span {
			return fmt.Errorf("stats: time series mark %d at cycle %d is out of order or outside [0,%d)", i, m.Cycle, span)
		}
		prev = m.Cycle
	}
	return nil
}

// Clone returns an independent copy of the series.
func (t *TimeSeries) Clone() *TimeSeries {
	if t == nil {
		return nil
	}
	c := *t
	c.Phits = append([]int64(nil), t.Phits...)
	c.Packets = append([]int64(nil), t.Packets...)
	c.LatencySum = append([]float64(nil), t.LatencySum...)
	c.MinRouted = append([]int64(nil), t.MinRouted...)
	c.Marks = append([]PhaseMark(nil), t.Marks...)
	return &c
}

// Merge adds every window of o into t and bumps Runs, exactly pooling the
// samples of independent replications of the same scenario. It fails when the
// two series do not describe the same windowing (different scenario, node
// count or phase marks).
func (t *TimeSeries) Merge(o *TimeSeries) error {
	if o == nil {
		return nil
	}
	if t.Window != o.Window || t.Nodes != o.Nodes || len(t.Packets) != len(o.Packets) {
		return fmt.Errorf("stats: merging mismatched time series (window %d/%d, nodes %d/%d, windows %d/%d)",
			t.Window, o.Window, t.Nodes, o.Nodes, len(t.Packets), len(o.Packets))
	}
	if len(t.Marks) != len(o.Marks) {
		return fmt.Errorf("stats: merging time series with %d vs %d phase marks", len(t.Marks), len(o.Marks))
	}
	for i, m := range t.Marks {
		if m != o.Marks[i] {
			return fmt.Errorf("stats: merging time series with diverging phase mark %d (%+v vs %+v)", i, m, o.Marks[i])
		}
	}
	for i := range t.Packets {
		t.Phits[i] += o.Phits[i]
		t.Packets[i] += o.Packets[i]
		t.LatencySum[i] += o.LatencySum[i]
		t.MinRouted[i] += o.MinRouted[i]
	}
	t.Runs += o.Runs
	return nil
}
