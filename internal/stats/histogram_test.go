package stats

import (
	"math"
	"math/rand"
	"testing"

	"flexvc/internal/packet"
)

// checkQuantiles records samples into a histogram and requires every checked
// quantile to sit within PercentileErrorBound (relative) of the exact-sample
// quantile. An absolute slack of half a cycle covers the interpolation
// convention in the exact region.
func checkQuantiles(t *testing.T, name string, samples []int64) {
	t.Helper()
	var h Histogram
	exact := make([]float64, len(samples))
	for i, s := range samples {
		h.Record(s)
		exact[i] = float64(s)
	}
	if h.Total() != int64(len(samples)) {
		t.Fatalf("%s: recorded %d of %d samples", name, h.Total(), len(samples))
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		want := percentile(exact, q)
		tol := want*PercentileErrorBound + 0.5
		if math.Abs(got-want) > tol {
			t.Errorf("%s: q%.3f = %.2f, exact %.2f (tolerance %.2f)", name, q, got, want, tol)
		}
	}
}

// TestHistogramAccuracyAdversarial drives the documented error bound on the
// distributions most likely to break a bucketed quantile estimator: constant
// (all mass in one bucket), bimodal (both modes far apart, one crossing a
// bucket boundary), heavy-tailed (Pareto-like, long upper tail), uniform, and
// exponential-ish latencies spanning several octaves.
func TestHistogramAccuracyAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	constant := make([]int64, 10000)
	for i := range constant {
		constant[i] = 977 // sits inside a wide bucket, not on its edge
	}
	checkQuantiles(t, "constant", constant)

	bimodal := make([]int64, 20000)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 40 + rng.Int63n(20) // short mode, exact region
		} else {
			bimodal[i] = 90000 + rng.Int63n(5000) // long mode, wide buckets
		}
	}
	checkQuantiles(t, "bimodal", bimodal)

	heavyTail := make([]int64, 30000)
	for i := range heavyTail {
		// Pareto(alpha≈1.2) scaled to start near 60 cycles: a tail that
		// spans many octaves, so the high quantiles land in coarse buckets.
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		heavyTail[i] = int64(60 / math.Pow(u, 1/1.2))
	}
	checkQuantiles(t, "heavy-tail", heavyTail)

	uniform := make([]int64, 25000)
	for i := range uniform {
		uniform[i] = rng.Int63n(1 << 20)
	}
	checkQuantiles(t, "uniform", uniform)

	expo := make([]int64, 25000)
	for i := range expo {
		expo[i] = int64(120 * rng.ExpFloat64())
	}
	checkQuantiles(t, "exponential", expo)
}

// TestHistogramExactRegion pins the exactness guarantee: for integer samples
// below 128 cycles the histogram quantiles equal the exact-sample quantiles
// bit for bit (same fractional-rank interpolation).
func TestHistogramExactRegion(t *testing.T) {
	var h Histogram
	exact := make([]float64, 0, 100)
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
		exact = append(exact, float64(i))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.947, 0.99, 1} {
		if got, want := h.Quantile(q), percentile(exact, q); got != want {
			t.Errorf("q%.3f = %v, want exactly %v", q, got, want)
		}
	}
}

// TestHistogramEdgeCases covers empty, single-sample, negative (clamped to
// zero) and beyond-range (clamped into the top bucket) inputs.
func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
	h.Record(7)
	if h.Quantile(0) != 7 || h.Quantile(1) != 7 {
		t.Error("single-sample quantiles should be the sample")
	}
	h.Reset()
	if h.Total() != 0 || h.Quantile(0.99) != 0 {
		t.Error("reset did not clear the histogram")
	}
	h.Record(-5) // clamps to 0
	if h.Quantile(0.5) != 0 {
		t.Error("negative samples should clamp to zero")
	}
	h.Reset()
	huge := int64(1) << 60 // beyond the last octave: clamps into the top bucket
	h.Record(huge)
	if got := h.Quantile(1); got <= 0 || got > float64(huge) {
		t.Errorf("out-of-range sample mapped to %v", got)
	}
}

// TestHistogramBucketInvariants checks the indexing arithmetic across octave
// boundaries: indexes are monotonic, within range, and the midpoint of a
// bucket maps back to the same bucket.
func TestHistogramBucketInvariants(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 126, 127, 128, 129, 191, 255, 256, 257,
		511, 512, 1023, 1024, 65535, 65536, 1 << 20, 1<<41 - 1, 1 << 41, 1 << 50} {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotonic at %d: %d < %d", v, i, prev)
		}
		prev = i
		if i < histBuckets-1 {
			mid := int64(bucketMid(i))
			if got := bucketIndex(mid); got != i {
				t.Errorf("midpoint of bucket %d (value %d) maps to bucket %d", i, mid, got)
			}
		}
	}
}

// TestCollectorMemoryBounded is the bounded-collector guarantee: recording a
// delivery inside the measurement window allocates nothing, no matter how
// many samples have been recorded, so a long measurement window cannot grow
// the collector.
func TestCollectorMemoryBounded(t *testing.T) {
	c := NewCollector(16, 0, 1<<40)
	st := packet.NewStore()
	p := st.Alloc(1, 0, 1, 8, packet.Request, 0)
	st.Times(p).Inject = 1
	now := int64(10)
	// Warm up, then require zero allocations per delivery.
	for i := 0; i < 1000; i++ {
		st.Times(p).Recv = now
		c.Delivered(st, p, now)
		now += 13
	}
	allocs := testing.AllocsPerRun(10000, func() {
		st.Times(p).Recv = now
		c.Delivered(st, p, now)
		now += 7919 // drift the latency so many buckets are exercised
	})
	if allocs != 0 {
		t.Fatalf("Delivered allocates %.1f times per call; collector memory is not bounded", allocs)
	}
	res := c.Summarize(1, now, false)
	if res.DeliveredPackets == 0 || res.P99 == 0 {
		t.Fatal("summary lost the recorded samples")
	}
}
