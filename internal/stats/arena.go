package stats

// arenaBlockWords is the default block size of an Arena, in 8-byte words:
// 16384 words = 128 KiB per block, several times the telemetry footprint of a
// typical replication, so almost every run uses exactly one block per type.
const arenaBlockWords = 16384

// Arena is a typed bump allocator for the collector's per-replication
// telemetry buffers (time-series windows and any other numeric scratch). It
// exists so a long campaign does not heap-allocate fresh telemetry arrays for
// every replication: the sim layer keeps one Arena per recycled scratch set,
// calls Reset between replications, and the backing blocks are reused.
//
// Allocation is a bump pointer into the active block; when a request does not
// fit, a new block is appended (existing blocks are never reallocated, so
// slices handed out earlier stay valid until Reset). Reset invalidates every
// outstanding slice — callers must not retain arena-backed slices across a
// Reset, which the collector guarantees by deep-copying (Clone) everything it
// exports in Summarize.
//
// An Arena is not safe for concurrent use; like the packet store, each
// replication owns its own.
type Arena struct {
	i64    [][]int64
	f64    [][]float64
	i64Blk int // index of the active int64 block
	f64Blk int
	i64Off int // bump offset into the active block
	f64Off int
}

// NewArena returns an empty arena; blocks are allocated on first use.
func NewArena() *Arena { return &Arena{} }

// Int64 returns a zeroed []int64 of length n carved from the arena. The slice
// is capacity-clamped so appends cannot silently bleed into later allocations.
func (a *Arena) Int64(n int) []int64 {
	if n == 0 {
		return nil
	}
	for {
		if a.i64Blk < len(a.i64) {
			blk := a.i64[a.i64Blk]
			if a.i64Off+n <= len(blk) {
				s := blk[a.i64Off : a.i64Off+n : a.i64Off+n]
				a.i64Off += n
				clear(s)
				return s
			}
			a.i64Blk++
			a.i64Off = 0
			continue
		}
		size := arenaBlockWords
		if n > size {
			size = n
		}
		a.i64 = append(a.i64, make([]int64, size))
	}
}

// Float64 returns a zeroed []float64 of length n carved from the arena.
func (a *Arena) Float64(n int) []float64 {
	if n == 0 {
		return nil
	}
	for {
		if a.f64Blk < len(a.f64) {
			blk := a.f64[a.f64Blk]
			if a.f64Off+n <= len(blk) {
				s := blk[a.f64Off : a.f64Off+n : a.f64Off+n]
				a.f64Off += n
				clear(s)
				return s
			}
			a.f64Blk++
			a.f64Off = 0
			continue
		}
		size := arenaBlockWords
		if n > size {
			size = n
		}
		a.f64 = append(a.f64, make([]float64, size))
	}
}

// Reset rewinds the arena to empty, invalidating every outstanding slice but
// keeping the blocks, so the next replication's allocations are carve-outs
// from already-owned memory.
func (a *Arena) Reset() {
	a.i64Blk, a.i64Off = 0, 0
	a.f64Blk, a.f64Off = 0, 0
}

// Footprint returns the bytes of backing memory the arena retains.
func (a *Arena) Footprint() int {
	total := 0
	for _, b := range a.i64 {
		total += 8 * len(b)
	}
	for _, b := range a.f64 {
		total += 8 * len(b)
	}
	return total
}
