package stats

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"flexvc/internal/packet"
)

// TestHistogramJSONRoundTrip serializes histograms of several shapes and
// requires the decoded histogram to be identical — same counts, same total,
// same quantiles — and the encoding itself to be deterministic.
func TestHistogramJSONRoundTrip(t *testing.T) {
	cases := map[string]func(*Histogram){
		"empty": func(*Histogram) {},
		"exact-region": func(h *Histogram) {
			for v := int64(0); v < 100; v++ {
				h.Record(v)
			}
		},
		"heavy-tail": func(h *Histogram) {
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 20000; i++ {
				h.Record(int64(rng.ExpFloat64() * 900))
			}
		},
		"extremes": func(h *Histogram) {
			h.Record(0)
			h.Record(1 << 50) // clamps into the final bucket
		},
	}
	for name, fill := range cases {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			fill(&h)
			enc, err := json.Marshal(&h)
			if err != nil {
				t.Fatal(err)
			}
			enc2, err := json.Marshal(&h)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("histogram encoding is not deterministic")
			}
			var back Histogram
			if err := json.Unmarshal(enc, &back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&h, &back) {
				t.Fatal("histogram does not round-trip bit-identically")
			}
			for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
				if got, want := back.Quantile(q), h.Quantile(q); got != want {
					t.Errorf("q%.2f changed across round-trip: %v vs %v", q, got, want)
				}
			}
		})
	}
}

// TestHistogramJSONRejectsCorruption exercises the decoder's validation.
func TestHistogramJSONRejectsCorruption(t *testing.T) {
	bad := []string{
		`{"v":99,"sub_bits":7,"total":0}`,                        // unknown version
		`{"v":1,"sub_bits":8,"total":0}`,                         // wrong layout
		`{"v":1,"sub_bits":7,"total":1,"buckets":[[-1,1]]}`,      // index underflow
		`{"v":1,"sub_bits":7,"total":1,"buckets":[[999999,1]]}`,  // index overflow
		`{"v":1,"sub_bits":7,"total":1,"buckets":[[3,0]]}`,       // zero count
		`{"v":1,"sub_bits":7,"total":2,"buckets":[[3,1],[3,1]]}`, // duplicate bucket
		`{"v":1,"sub_bits":7,"total":5,"buckets":[[3,1]]}`,       // total mismatch
		`not json`,
	}
	for _, s := range bad {
		var h Histogram
		if err := json.Unmarshal([]byte(s), &h); err == nil {
			t.Errorf("corrupt histogram %q decoded without error", s)
		}
	}
}

// TestHistogramMerge checks that merging equals recording the pooled samples.
func TestHistogramMerge(t *testing.T) {
	var a, b, pooled Histogram
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(4000))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		pooled.Record(v)
	}
	merged := a.Clone()
	merged.Merge(&b)
	merged.Merge(nil) // no-op
	if !reflect.DeepEqual(merged, &pooled) {
		t.Fatal("merge does not equal pooling the samples")
	}
}

// TestResultJSONRoundTrip round-trips a full Result, including the attached
// histogram, and requires exact equality — the property the checkpointed
// sweep pipeline depends on for bit-identical resumes.
func TestResultJSONRoundTrip(t *testing.T) {
	c := NewCollector(16, 100, 10000)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		recv := 100 + int64(rng.Intn(9000))
		delivered(c, uint64(i), recv-int64(rng.Intn(800)), recv-5, recv, 8, packet.Request, packet.Minimal)
	}
	res := c.Summarize(0.73, 12345, false)
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("Result does not round-trip:\n got %+v\nwant %+v", back, res)
	}
	enc2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("Result re-encoding is not byte-identical")
	}
}

// TestAggregateMergesHistograms checks the aggregate of several runs carries
// the pooled histogram (and tolerates legacy results without one).
func TestAggregateMergesHistograms(t *testing.T) {
	mk := func(vals ...int64) Result {
		var h Histogram
		for _, v := range vals {
			h.Record(v)
		}
		return Result{DeliveredPackets: int64(len(vals)), Hist: &h}
	}
	agg := Aggregate([]Result{mk(1, 2, 3), mk(10, 20), {DeliveredPackets: 1}})
	if agg.Hist == nil || agg.Hist.Total() != 5 {
		t.Fatalf("aggregate histogram wrong: %+v", agg.Hist)
	}
	if legacy := Aggregate([]Result{{DeliveredPackets: 1}}); legacy.Hist != nil {
		t.Fatal("aggregate of legacy results should not invent a histogram")
	}
}
