package stats

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// Histogram is a fixed-size log-linear latency histogram, replacing the
// unbounded per-sample buffer the collector used to keep: recording a sample
// is O(1), memory is constant (histBuckets counters) no matter how long the
// measurement window runs, and quantiles are recovered from the bucket counts
// within a documented error bound.
//
// Bucket layout (the HDR-histogram scheme): values below histSubCount (128)
// get one bucket each, so small latencies are represented exactly. Above
// that, each power-of-two octave is split into histSubCount/2 linear
// sub-buckets, so the bucket width never exceeds 1/64 of the bucket's lower
// bound. Quantiles report the bucket midpoint, which bounds the relative
// error by half a bucket width: see PercentileErrorBound. Values beyond the
// last octave (≈ 2^41 cycles, far past any plausible simulated latency) clamp
// into the final bucket.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
}

const (
	histSubBits  = 7
	histSubCount = 1 << histSubBits // 128: exact region, one bucket per value
	histHalf     = histSubCount / 2 // sub-buckets per octave above the exact region
	histOctaves  = 34               // octaves above the exact region
	histBuckets  = histSubCount + histOctaves*histHalf
)

// PercentileErrorBound is the worst-case relative error of a quantile
// reported by the Histogram against the exact-sample quantile: half of the
// maximum bucket width (1/64 of the bucket's lower bound) relative to the
// value, i.e. 1/128 ≈ 0.8%. Latencies below 128 cycles are represented
// exactly (zero error). The accuracy tests in histogram_test.go verify the
// bound on adversarial distributions.
const PercentileErrorBound = 1.0 / 128

// bucketIndex maps a sample to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubCount {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - histSubBits // >= 1
	if shift > histOctaves {
		return histBuckets - 1
	}
	return histSubCount + (shift-1)*histHalf + int(v>>uint(shift)) - histHalf
}

// bucketMid returns the representative value of a bucket: the midpoint of the
// value range mapping to it (the exact value in the exact region).
func bucketMid(i int) float64 {
	if i < histSubCount {
		return float64(i)
	}
	shift := (i-histSubCount)/histHalf + 1
	sub := (i-histSubCount)%histHalf + histHalf
	lo := int64(sub) << uint(shift)
	width := int64(1) << uint(shift)
	return float64(lo) + float64(width-1)/2
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.counts[bucketIndex(v)]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns the q-quantile (q in [0,1]) of the recorded samples,
// matching the convention of the exact-sample computation it replaces: the
// value at fractional rank q*(n-1), linearly interpolated between the two
// neighbouring ranks. Each rank's value is the midpoint of its bucket, which
// is what bounds the error (see PercentileErrorBound). It returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.total
	if n == 0 {
		return 0
	}
	idx := q * float64(n-1)
	lo := int64(idx)
	frac := idx - float64(lo)
	vlo, bkt, cum := h.valueAtRank(lo, 0, 0)
	if frac == 0 {
		return vlo
	}
	vhi, _, _ := h.valueAtRank(lo+1, bkt, cum)
	return vlo*(1-frac) + vhi*frac
}

// valueAtRank returns the representative value of the sample at the given
// 0-based rank, resuming the cumulative walk from (startBucket, startCum) so
// consecutive ranks don't rescan the array. It also returns the bucket and
// the cumulative count before it, for resumption.
func (h *Histogram) valueAtRank(rank int64, startBucket int, startCum int64) (float64, int, int64) {
	cum := startCum
	for i := startBucket; i < histBuckets; i++ {
		if cum+h.counts[i] > rank {
			return bucketMid(i), i, cum
		}
		cum += h.counts[i]
	}
	// Unreachable for rank < total; be defensive.
	return bucketMid(histBuckets - 1), histBuckets - 1, cum
}

// Reset clears all counts.
func (h *Histogram) Reset() {
	h.counts = [histBuckets]int64{}
	h.total = 0
}

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Merge adds every count of o into h. Merging the histograms of independent
// runs yields exactly the histogram of the pooled samples, which is what lets
// checkpointed sweep results be re-aggregated offline without re-simulating.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
}

// histogramSchemaVersion guards the serialized bucket layout: decoding fails
// loudly if the layout constants ever change instead of silently misreading
// old results files.
const histogramSchemaVersion = 1

// histogramJSON is the serialized form of a Histogram: a sparse, ascending
// list of (bucket index, count) pairs. The encoding is deterministic (same
// counts always produce the same bytes), which the results pipeline relies on
// for bit-identical resumed sweeps.
type histogramJSON struct {
	Version int        `json:"v"`
	SubBits int        `json:"sub_bits"`
	Total   int64      `json:"total"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	enc := histogramJSON{Version: histogramSchemaVersion, SubBits: histSubBits, Total: h.total}
	for i, c := range h.counts {
		if c != 0 {
			enc.Buckets = append(enc.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON implements json.Unmarshaler, validating the version, bucket
// layout, index ranges and the total against the bucket counts.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var dec histogramJSON
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	if dec.Version != histogramSchemaVersion {
		return fmt.Errorf("stats: histogram schema v%d, this build reads v%d", dec.Version, histogramSchemaVersion)
	}
	if dec.SubBits != histSubBits {
		return fmt.Errorf("stats: histogram bucket layout sub_bits=%d, this build uses %d", dec.SubBits, histSubBits)
	}
	h.Reset()
	var sum int64
	for _, b := range dec.Buckets {
		i, c := b[0], b[1]
		if i < 0 || i >= histBuckets {
			return fmt.Errorf("stats: histogram bucket index %d outside [0,%d)", i, histBuckets)
		}
		if c <= 0 {
			return fmt.Errorf("stats: histogram bucket %d has non-positive count %d", i, c)
		}
		if h.counts[i] != 0 {
			return fmt.Errorf("stats: histogram bucket %d appears twice", i)
		}
		h.counts[i] = c
		sum += c
	}
	if sum != dec.Total {
		return fmt.Errorf("stats: histogram total %d does not match bucket sum %d", dec.Total, sum)
	}
	h.total = dec.Total
	return nil
}
