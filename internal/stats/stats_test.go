package stats

import (
	"math"
	"testing"

	"flexvc/internal/packet"
)

func delivered(c *Collector, id uint64, gen, inject, recv int64, size int, class packet.Class, kind packet.RouteKind) {
	st := packet.NewStore()
	ref := st.Alloc(id, 0, 1, size, class, gen)
	st.Times(ref).Inject = inject
	rt := st.Route(ref)
	rt.Kind = kind
	rt.Hops = 3
	c.Generated()
	c.Injected()
	st.Times(ref).Recv = recv
	c.Delivered(st, ref, recv)
}

func TestCollectorWindowing(t *testing.T) {
	c := NewCollector(10, 100, 200)
	// Before the window: counted as delivered but not measured.
	delivered(c, 1, 0, 5, 50, 8, packet.Request, packet.Minimal)
	// Inside the window.
	delivered(c, 2, 60, 70, 120, 8, packet.Request, packet.Minimal)
	delivered(c, 3, 80, 90, 180, 8, packet.Reply, packet.Nonminimal)
	// After the window.
	delivered(c, 4, 150, 160, 250, 8, packet.Request, packet.Minimal)

	if c.TotalDelivered() != 4 || c.TotalGenerated() != 4 {
		t.Fatal("total counters broken")
	}
	if c.LastDeliveryCycle() != 250 {
		t.Fatal("last delivery cycle broken")
	}
	res := c.Summarize(0.5, 200, false)
	if res.DeliveredPackets != 2 {
		t.Fatalf("measured %d packets, want 2", res.DeliveredPackets)
	}
	// 16 phits over 100 cycles and 10 nodes.
	if math.Abs(res.AcceptedLoad-16.0/(100*10)) > 1e-9 {
		t.Fatalf("accepted load %.4f", res.AcceptedLoad)
	}
	wantLat := float64((120-60)+(180-80)) / 2
	if math.Abs(res.AvgLatency-wantLat) > 1e-9 {
		t.Fatalf("avg latency %.1f, want %.1f", res.AvgLatency, wantLat)
	}
	if res.RequestPackets != 1 || res.ReplyPackets != 1 {
		t.Fatal("class split broken")
	}
	if math.Abs(res.MinimalFraction-0.5) > 1e-9 {
		t.Fatal("minimal fraction broken")
	}
	if res.MaxLatency != 100 || res.AvgHops != 3 {
		t.Fatal("max latency or hops broken")
	}
	if res.OfferedLoad != 0.5 || res.SimulatedCycles != 200 || res.Deadlock {
		t.Fatal("summary metadata broken")
	}
	if res.String() == "" {
		t.Fatal("empty string rendering")
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector(1, 0, 1000)
	for i := 1; i <= 100; i++ {
		delivered(c, uint64(i), 0, 0, int64(i), 1, packet.Request, packet.Minimal)
	}
	res := c.Summarize(1, 1000, false)
	if math.Abs(res.P50-50.5) > 1 {
		t.Errorf("P50 = %.1f", res.P50)
	}
	if res.P95 < 94 || res.P95 > 97 {
		t.Errorf("P95 = %.1f", res.P95)
	}
	if res.P99 < 98 || res.P99 > 100 {
		t.Errorf("P99 = %.1f", res.P99)
	}
	if percentile(nil, 0.5) != 0 {
		t.Error("percentile of no samples should be 0")
	}
	if percentile([]float64{7}, 0.99) != 7 {
		t.Error("percentile of one sample")
	}
}

func TestAggregate(t *testing.T) {
	a := Result{OfferedLoad: 0.5, AcceptedLoad: 0.4, AvgLatency: 100, P99: 200, DeliveredPackets: 10, MaxLatency: 300}
	b := Result{OfferedLoad: 0.5, AcceptedLoad: 0.6, AvgLatency: 200, P99: 400, DeliveredPackets: 20, MaxLatency: 500, Deadlock: true}
	agg := Aggregate([]Result{a, b})
	if math.Abs(agg.AcceptedLoad-0.5) > 1e-9 || math.Abs(agg.AvgLatency-150) > 1e-9 {
		t.Fatalf("aggregate means broken: %+v", agg)
	}
	if agg.DeliveredPackets != 30 || agg.MaxLatency != 500 || !agg.Deadlock {
		t.Fatalf("aggregate extrema broken: %+v", agg)
	}
	if empty := Aggregate(nil); empty.DeliveredPackets != 0 {
		t.Fatal("aggregate of nothing should be zero")
	}
}

func TestZeroTrafficSummary(t *testing.T) {
	c := NewCollector(10, 0, 100)
	res := c.Summarize(0, 100, false)
	if res.AcceptedLoad != 0 || res.AvgLatency != 0 || res.P99 != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	start, end := c.MeasureWindow()
	if start != 0 || end != 100 {
		t.Fatal("measurement window accessor broken")
	}
}
