package sim

import (
	"reflect"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
)

// TestTableBackedRoutingEquivalence is the end-to-end half of the route-table
// equivalence property: for every topology, scale and routing algorithm
// combination, a full simulation with the precomputed tables enabled must
// produce a bit-identical result to the same simulation with the tables
// disabled (cfg.RouteTableBytes < 0 forces every routing query onto the
// on-the-fly path). Because every output port and VC decision feeds back into
// the packet flow, a single diverging (src, dst, hop) decision anywhere in
// the run would diverge the aggregate result.
func TestTableBackedRoutingEquivalence(t *testing.T) {
	type variant struct {
		name string
		cfg  config.Config
	}
	variants := []variant{}

	add := func(name string, cfg config.Config) {
		cfg.WarmupCycles = 300
		cfg.MeasureCycles = 1200
		variants = append(variants, variant{name, cfg})
	}

	// Dragonfly at two scales, all four routing algorithms.
	for _, scale := range []struct {
		name string
		cfg  func() config.Config
	}{
		{"tiny", config.Tiny},
		{"small", config.Small},
	} {
		min := scale.cfg()
		min.Routing = routing.MIN
		add("dragonfly-"+scale.name+"-min", min)

		val := scale.cfg()
		val.Routing = routing.VAL
		val.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
		val.Traffic = config.TrafficAdversarial
		add("dragonfly-"+scale.name+"-val", val)

		par := scale.cfg()
		par.Routing = routing.PAR
		par.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(5, 2), Selection: core.JSQ}
		add("dragonfly-"+scale.name+"-par", par)

		pb := scale.cfg()
		pb.Routing = routing.PB
		pb.Reactive = true
		pb.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(4, 2, 2, 1), Selection: core.JSQ}
		add("dragonfly-"+scale.name+"-pb", pb)
	}

	// Flattened butterfly, oblivious routing.
	fb := config.Small()
	fb.Topology = config.TopoFlattenedButterfly
	fb.K, fb.P = 4, 2
	fb.Routing = routing.MIN
	add("fbfly-min", fb)

	fbv := fb
	fbv.Routing = routing.VAL
	fbv.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 0), Selection: core.JSQ}
	add("fbfly-val", fbv)

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			tabled := v.cfg
			tabled.RouteTableBytes = 0 // default budget: tables on
			plain := v.cfg
			plain.RouteTableBytes = -1 // disabled: on-the-fly

			rt, err := RunOne(tabled)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := RunOne(plain)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rt, rp) {
				t.Fatalf("table-backed and on-the-fly runs diverge:\n tables: %+v\n fly:    %+v", rt, rp)
			}
			if rt.DeliveredPackets == 0 {
				t.Fatal("run moved no traffic; equivalence check is vacuous")
			}
		})
	}
}
