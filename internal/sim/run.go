package sim

import (
	"fmt"
	"sync"
	"time"

	"flexvc/internal/config"
	"flexvc/internal/stats"
)

// Run simulates warm-up plus measurement cycles (or until the deadlock
// watchdog fires) and returns the run summary. When the network is sharded it
// borrows extra worker-budget tokens for the duration of the run (see
// acquireShardSlots), so shard parallelism and the replication-level worker
// budget share one core accounting.
func (n *Network) Run() stats.Result {
	release := n.acquireShardSlots()
	defer release()
	total := n.cfg.WarmupCycles + n.cfg.MeasureCycles
	if n.cfg.Scenario != nil {
		total = n.cfg.Scenario.TotalCycles()
	}
	if n.cfg.MaxCycles > 0 && n.cfg.MaxCycles < total {
		total = n.cfg.MaxCycles
	}
	for n.now < total {
		n.Step()
		if n.watchdog() {
			break
		}
	}
	return n.collector.Summarize(n.cfg.Load, n.now, n.deadlock)
}

// RunCycles advances the simulation by exactly `cycles` cycles (useful for
// tests that inspect intermediate state), on the same shard-slot accounting
// as Run.
func (n *Network) RunCycles(cycles int64) {
	release := n.acquireShardSlots()
	defer release()
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// watchdog flags a deadlock when packets are in flight but none has been
// delivered for the configured window. It returns true when the run should be
// aborted.
func (n *Network) watchdog() bool {
	if n.cfg.DeadlockCycles <= 0 || n.inFlight == 0 {
		return false
	}
	last := n.collector.LastDeliveryCycle()
	if n.collector.TotalDelivered() == 0 {
		last = 0
	}
	if n.now-last > n.cfg.DeadlockCycles {
		n.deadlock = true
		return true
	}
	return false
}

// RunOne builds a network for cfg, runs it and returns its summary. With a
// metrics registry attached it also accounts the replication (count + wall
// histogram) — this is the single funnel every execution path (RunReplication,
// RunAveraged, tests) goes through. The network's packet store, telemetry
// arena and shard buffers come from the process-wide scratch pool and are
// recycled when the run finishes: the summary is a deep copy, so nothing it
// holds aliases the recycled memory.
func RunOne(cfg config.Config) (stats.Result, error) {
	sc := acquireScratch()
	n, err := newNetwork(cfg, sc)
	if err != nil {
		sc.reclaim(nil)
		return stats.Result{}, err
	}
	var r stats.Result
	if reg := cfg.Metrics; reg != nil {
		start := time.Now()
		r = n.Run()
		reg.Histogram(MetricReplicationWall).Observe(time.Since(start).Nanoseconds())
		reg.Counter(MetricReplications).Inc()
	} else {
		r = n.Run()
	}
	sc.reclaim(n)
	return r, nil
}

// ReplicationSeed derives the PRNG seed of replication s from the base
// configuration seed. Every replication owns its configuration, network and
// PRNG streams, so replications are independent of each other and of the
// order (or concurrency) in which they execute. It is exported so the
// checkpointed sweep runner (internal/sweep + internal/results) can run and
// record single replications that are bit-identical to RunAveraged's.
func ReplicationSeed(base int64, s int) int64 { return base + int64(s)*7919 }

// RunReplication runs replication s of cfg — deriving its seed with
// ReplicationSeed — on the process-wide worker budget, and returns its
// summary together with the wall-clock time spent simulating (measured after
// the worker token is acquired, so queueing for a busy budget is excluded).
// RunAveraged(cfg, n) is exactly the aggregation of
// RunReplication(cfg, 0..n-1) in replication order.
func RunReplication(cfg config.Config, s int) (stats.Result, time.Duration, error) {
	release := acquireWorker()
	defer release()
	c := cfg
	c.Seed = ReplicationSeed(cfg.Seed, s)
	start := time.Now()
	r, err := RunOne(c)
	return r, time.Since(start), err
}

// RunAveraged runs `seeds` independent replications (the paper averages 5)
// and returns the aggregated result together with the individual runs, in
// replication order.
//
// Replications execute concurrently on the process-wide worker budget (see
// SetWorkerBudget). Each replication is fully self-contained and results are
// aggregated in replication order, so the output is bit-identical to running
// the same replications sequentially.
func RunAveraged(cfg config.Config, seeds int) (stats.Result, []stats.Result, error) {
	if seeds < 1 {
		return stats.Result{}, nil, fmt.Errorf("sim: need at least one replication")
	}
	results := make([]stats.Result, seeds)
	if seeds == 1 {
		// Run in place (still bounded by the worker budget so concurrent
		// sweep points cannot oversubscribe the machine).
		release := acquireWorker()
		defer release()
		c := cfg
		c.Seed = ReplicationSeed(cfg.Seed, 0)
		r, err := RunOne(c)
		if err != nil {
			return stats.Result{}, nil, err
		}
		results[0] = r
		return stats.Aggregate(results), results, nil
	}
	errs := make([]error, seeds)
	var wg sync.WaitGroup
	for s := 0; s < seeds; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			release := acquireWorker()
			defer release()
			c := cfg
			c.Seed = ReplicationSeed(cfg.Seed, s)
			results[s], errs[s] = RunOne(c)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats.Result{}, nil, err
		}
	}
	return stats.Aggregate(results), results, nil
}
