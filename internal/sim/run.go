package sim

import (
	"fmt"

	"flexvc/internal/config"
	"flexvc/internal/stats"
)

// Run simulates warm-up plus measurement cycles (or until the deadlock
// watchdog fires) and returns the run summary.
func (n *Network) Run() stats.Result {
	total := n.cfg.WarmupCycles + n.cfg.MeasureCycles
	if n.cfg.MaxCycles > 0 && n.cfg.MaxCycles < total {
		total = n.cfg.MaxCycles
	}
	for n.now < total {
		n.Step()
		if n.watchdog() {
			break
		}
	}
	return n.collector.Summarize(n.cfg.Load, n.now, n.deadlock)
}

// RunCycles advances the simulation by exactly `cycles` cycles (useful for
// tests that inspect intermediate state).
func (n *Network) RunCycles(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// watchdog flags a deadlock when packets are in flight but none has been
// delivered for the configured window. It returns true when the run should be
// aborted.
func (n *Network) watchdog() bool {
	if n.cfg.DeadlockCycles <= 0 || n.inFlight == 0 {
		return false
	}
	last := n.collector.LastDeliveryCycle()
	if n.collector.TotalDelivered() == 0 {
		last = 0
	}
	if n.now-last > n.cfg.DeadlockCycles {
		n.deadlock = true
		return true
	}
	return false
}

// RunOne builds a network for cfg, runs it and returns its summary.
func RunOne(cfg config.Config) (stats.Result, error) {
	n, err := New(cfg)
	if err != nil {
		return stats.Result{}, err
	}
	return n.Run(), nil
}

// RunAveraged runs `seeds` independent replications (the paper averages 5)
// and returns the aggregated result together with the individual runs.
func RunAveraged(cfg config.Config, seeds int) (stats.Result, []stats.Result, error) {
	if seeds < 1 {
		return stats.Result{}, nil, fmt.Errorf("sim: need at least one replication")
	}
	results := make([]stats.Result, 0, seeds)
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = cfg.Seed + int64(s)*7919
		r, err := RunOne(c)
		if err != nil {
			return stats.Result{}, nil, err
		}
		results = append(results, r)
	}
	return stats.Aggregate(results), results, nil
}
