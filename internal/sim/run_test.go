package sim

import (
	"reflect"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/packet"
	"flexvc/internal/stats"
)

// shortConfig returns a Small configuration with a shortened window so
// multi-replication tests stay fast.
func shortConfig() config.Config {
	cfg := config.Small()
	cfg.Load = 0.5
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 1200
	cfg.DeadlockCycles = 3000
	return cfg
}

// TestRunAveragedMatchesSequential checks the parallel replication engine's
// core guarantee: RunAveraged with concurrent workers produces results
// byte-identical to running the same replications sequentially, because each
// replication owns its configuration, network and PRNG streams and results
// are aggregated in replication order.
func TestRunAveragedMatchesSequential(t *testing.T) {
	cfg := shortConfig()
	const seeds = 4

	// Sequential reference: the exact per-replication seed derivation.
	want := make([]stats.Result, 0, seeds)
	for s := 0; s < seeds; s++ {
		c := cfg
		c.Seed = ReplicationSeed(cfg.Seed, s)
		r, err := RunOne(c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	wantAgg := stats.Aggregate(want)

	agg, runs, err := RunAveraged(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != seeds {
		t.Fatalf("want %d runs, got %d", seeds, len(runs))
	}
	for s := range runs {
		if !reflect.DeepEqual(runs[s], want[s]) {
			t.Errorf("replication %d differs from sequential run:\nparallel:   %+v\nsequential: %+v", s, runs[s], want[s])
		}
	}
	if !reflect.DeepEqual(agg, wantAgg) {
		t.Errorf("aggregate differs:\nparallel:   %+v\nsequential: %+v", agg, wantAgg)
	}
}

// TestRunAveragedRepeatable checks that two parallel invocations agree with
// each other (scheduling must not leak into results).
func TestRunAveragedRepeatable(t *testing.T) {
	cfg := shortConfig()
	aggA, runsA, err := RunAveraged(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	aggB, runsB, err := RunAveraged(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runsA, runsB) || !reflect.DeepEqual(aggA, aggB) {
		t.Fatal("two RunAveraged invocations of the same configuration disagree")
	}
}

// TestRunAveragedRejectsZeroSeeds checks the argument guard.
func TestRunAveragedRejectsZeroSeeds(t *testing.T) {
	if _, _, err := RunAveraged(shortConfig(), 0); err == nil {
		t.Fatal("RunAveraged accepted zero replications")
	}
}

// TestWorkerBudget checks the budget accessors.
func TestWorkerBudget(t *testing.T) {
	old := WorkerBudget()
	defer SetWorkerBudget(old)
	SetWorkerBudget(3)
	if WorkerBudget() != 3 {
		t.Fatalf("budget = %d, want 3", WorkerBudget())
	}
	SetWorkerBudget(0) // clamps to 1
	if WorkerBudget() != 1 {
		t.Fatalf("budget = %d, want 1 after clamping", WorkerBudget())
	}
}

// TestWatchdog drives the deadlock watchdog through its decision table by
// crafting the network state it inspects: in-flight packets, delivery
// history and the current cycle.
func TestWatchdog(t *testing.T) {
	build := func(deadlockCycles int64) *Network {
		cfg := config.Tiny()
		cfg.Load = 0
		cfg.DeadlockCycles = deadlockCycles
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	deliverAt := func(n *Network, cycle int64) {
		// Feed the collector a delivery so LastDeliveryCycle advances.
		ref := n.store.Alloc(1, 0, 1, 8, packet.Request, cycle-10)
		n.store.Times(ref).Inject = cycle - 8
		save := n.now
		n.now = cycle
		n.inFlight++ // deliver decrements it
		n.deliver(ref)
		n.now = save
	}

	cases := []struct {
		name string
		prep func(n *Network)
		want bool
	}{
		{"disabled watchdog never fires", func(n *Network) {
			n.cfg.DeadlockCycles = 0
			n.inFlight = 5
			n.now = 100000
		}, false},
		{"no in-flight packets never fires", func(n *Network) {
			n.inFlight = 0
			n.now = 100000
		}, false},
		{"zero deliveries since start fires after the window", func(n *Network) {
			n.inFlight = 3
			n.now = 2001 // window is 2000 and no delivery ever happened
		}, true},
		{"zero deliveries within the window holds", func(n *Network) {
			n.inFlight = 3
			n.now = 1999
		}, false},
		{"stalled after earlier deliveries fires", func(n *Network) {
			deliverAt(n, 500)
			n.inFlight = 2
			n.now = 2600 // 2100 > 2000 cycles since the last delivery
		}, true},
		{"recent delivery holds the watchdog off", func(n *Network) {
			deliverAt(n, 500)
			deliverAt(n, 2400)
			n.inFlight = 2
			n.now = 2600
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := build(2000)
			tc.prep(n)
			if got := n.watchdog(); got != tc.want {
				t.Fatalf("watchdog() = %v, want %v (now=%d inFlight=%d)", got, tc.want, n.now, n.inFlight)
			}
			if tc.want && !n.Deadlocked() {
				t.Fatal("watchdog fired but the deadlock flag was not set")
			}
		})
	}
}

// TestWatchdogRecovery checks end to end that a healthy full-load run is
// never flagged while a watchdog window shorter than the first delivery
// latency aborts the run.
func TestWatchdogRecovery(t *testing.T) {
	cfg := shortConfig()
	cfg.Load = 0.8
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock {
		t.Fatalf("healthy run flagged as deadlocked: %+v", res)
	}
	// A pathologically short window must abort: the first packets need the
	// injection + pipeline + link latency before anything is delivered.
	cfg.DeadlockCycles = 1
	res, err = RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlock {
		t.Fatal("one-cycle watchdog window did not abort the run")
	}
}
