package sim

import (
	"fmt"

	"flexvc/internal/buffer"
	"flexvc/internal/packet"
)

// eventKind tags the entries of the event wheel.
type eventKind uint8

const (
	evArrival eventKind = iota
	evCredit
	evDelivery
)

// event is one scheduled action: a packet arriving at an input VC, a credit
// returning to an input buffer, or a packet being consumed at its destination
// node. Packets travel as store refs (arrival + delivery).
type event struct {
	kind eventKind

	// arrival
	router packet.RouterID
	port   int
	vc     int
	ref    packet.Ref

	// credit
	buf  *buffer.InputBuffer
	size int

	// routing kind recorded when the space was reserved (arrival + credit).
	rkind packet.RouteKind
}

// eventWheel is a calendar queue for constant-bounded delays: slot i holds the
// events due at cycle i (mod the wheel size).
type eventWheel struct {
	slots   [][]event
	horizon int64
	// count tracks the queued events incrementally (schedule adds, take
	// subtracts), so the metrics layer can sample the wheel depth without the
	// O(horizon) scan of pending(). All wheel mutation happens in serial
	// phases (the sharded loop buffers and flushes serially), so a plain
	// int64 suffices.
	count int64
}

// init sizes the wheel for delays up to maxDelay cycles.
func (w *eventWheel) init(maxDelay int64) {
	if maxDelay < 1 {
		maxDelay = 1
	}
	w.horizon = maxDelay + 2
	w.slots = make([][]event, w.horizon)
}

// schedule inserts an event `delay` cycles after `now`. Delays must be in
// (0, horizon).
func (w *eventWheel) schedule(now, delay int64, ev event) {
	if delay <= 0 || delay >= w.horizon {
		panic(fmt.Sprintf("sim: event delay %d outside wheel horizon %d", delay, w.horizon))
	}
	slot := (now + delay) % w.horizon
	w.slots[slot] = append(w.slots[slot], ev)
	w.count++
}

// take removes and returns the events due at cycle `now`.
func (w *eventWheel) take(now int64) []event {
	slot := now % w.horizon
	evs := w.slots[slot]
	w.slots[slot] = w.slots[slot][:0]
	w.count -= int64(len(evs))
	return evs
}

// pending returns the total number of queued events (used by tests).
func (w *eventWheel) pending() int {
	n := 0
	for _, s := range w.slots {
		n += len(s)
	}
	return n
}

// --- router.Env implementation -------------------------------------------

// DownstreamInput implements router.Env. The per-(router, port) resolution is
// cached at construction (nil for terminal ports).
func (n *Network) DownstreamInput(r packet.RouterID, port int) *buffer.InputBuffer {
	return n.downInput[r][port]
}

// ScheduleArrival implements router.Env.
func (n *Network) ScheduleArrival(delay int64, to packet.RouterID, port, vc int, ref packet.Ref, kind packet.RouteKind) {
	n.wheel.schedule(n.now, delay, event{kind: evArrival, router: to, port: port, vc: vc, ref: ref, rkind: kind})
}

// ScheduleCredit implements router.Env.
func (n *Network) ScheduleCredit(delay int64, buf *buffer.InputBuffer, vc, size int, kind packet.RouteKind) {
	n.wheel.schedule(n.now, delay, event{kind: evCredit, buf: buf, vc: vc, size: size, rkind: kind})
}

// ScheduleDelivery implements router.Env.
func (n *Network) ScheduleDelivery(delay int64, ref packet.Ref) {
	n.wheel.schedule(n.now, delay, event{kind: evDelivery, ref: ref})
}

// --- routing.Probe implementation -----------------------------------------

// OutputOccupancy implements routing.Probe: the committed occupancy of the
// downstream input buffer reached through an output port, as the sending
// router's credit counters see it.
func (n *Network) OutputOccupancy(r packet.RouterID, port int, vc int, minOnly bool) int {
	buf := n.DownstreamInput(r, port)
	if buf == nil {
		return 0
	}
	if vc >= 0 && vc < buf.NumVCs() {
		if minOnly {
			return buf.MinCommittedOf(vc)
		}
		return buf.CommittedOf(vc)
	}
	if minOnly {
		return buf.TotalMinCommitted()
	}
	return buf.TotalCommitted()
}

// OutputCapacity implements routing.Probe.
func (n *Network) OutputCapacity(r packet.RouterID, port int, vc int) int {
	buf := n.DownstreamInput(r, port)
	if buf == nil {
		return 0
	}
	if vc >= 0 && vc < buf.NumVCs() {
		return buf.CapacityFor(vc)
	}
	return buf.TotalCapacity()
}
