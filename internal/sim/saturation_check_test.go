package sim

import (
	"testing"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
)

// TestSaturationOrdering is a coarse check of the paper's headline ordering at
// full offered load under uniform traffic with MIN routing: FlexVC with a
// larger VC set should not perform worse than FlexVC with the minimal set,
// which should not perform worse than the baseline, and DAMQ should land in
// the same neighbourhood as the baseline. It runs the small configuration, so
// thresholds are deliberately loose; the precise comparisons live in the
// figure harness.
func TestSaturationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	base := config.Small()
	base.Load = 1.0
	base.WarmupCycles = 2000
	base.MeasureCycles = 6000

	run := func(name string, mut func(*config.Config)) float64 {
		cfg := base
		mut(&cfg)
		res, err := RunOne(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%-22s accepted=%.3f latency=%.0f", name, res.AcceptedLoad, res.AvgLatency)
		if res.Deadlock {
			t.Fatalf("%s deadlocked", name)
		}
		return res.AcceptedLoad
	}

	baseline := run("baseline 2/1", func(c *config.Config) {})
	damq := run("damq75 2/1", func(c *config.Config) {
		c.BufferOrg = buffer.DAMQ
	})
	flex21 := run("flexvc 2/1", func(c *config.Config) {
		c.Scheme.Policy = core.FlexVC
	})
	flex42 := run("flexvc 4/2", func(c *config.Config) {
		c.Scheme.Policy = core.FlexVC
		c.Scheme.VCs = core.SingleClass(4, 2)
	})
	flex84 := run("flexvc 8/4", func(c *config.Config) {
		c.Scheme.Policy = core.FlexVC
		c.Scheme.VCs = core.SingleClass(8, 4)
	})

	if baseline < 0.3 {
		t.Errorf("baseline throughput %.3f implausibly low", baseline)
	}
	if flex42 < baseline*0.95 {
		t.Errorf("FlexVC 4/2 (%.3f) should be at least on par with baseline (%.3f)", flex42, baseline)
	}
	if flex84 < flex21*0.95 {
		t.Errorf("FlexVC 8/4 (%.3f) should be at least on par with FlexVC 2/1 (%.3f)", flex84, flex21)
	}
	if damq < baseline*0.8 || damq > baseline*1.3 {
		t.Logf("note: DAMQ throughput %.3f vs baseline %.3f", damq, baseline)
	}
	_ = flex21
}
