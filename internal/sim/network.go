// Package sim assembles the simulated network (topology, routers, traffic
// generators, routing algorithm and VC management scheme) and drives the
// cycle-level simulation: packet injection, the event system for link
// traversal and credit return, packet consumption, statistics collection and
// deadlock watchdog.
package sim

import (
	"fmt"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/packet"
	"flexvc/internal/router"
	"flexvc/internal/routing"
	"flexvc/internal/stats"
	"flexvc/internal/topology"
	"flexvc/internal/traffic"
)

// nodeState is the per-node NIC model: an unbounded source queue for new
// requests, a queue for the replies the node owes (the consumption
// assumption: nodes always sink requests and buffer the replies they owe),
// and the pacing of the injection link at one phit per cycle. When both
// queues hold packets the classes alternate so neither starves the other.
type nodeState struct {
	requests   pktFIFO
	replies    pktFIFO
	nextInject int64
	// lastWasReply records the class of the last injected packet, for the
	// round-robin tie-break between the two queues.
	lastWasReply bool
	// queued marks membership in Network.pendingNodes.
	queued bool
}

// Network is one simulated network instance.
type Network struct {
	cfg  config.Config
	topo topology.Topology

	scheme  core.Scheme
	alg     routing.Algorithm
	pb      *routing.PBManager
	gen     traffic.Generator
	routers []*router.Router
	nodes   []nodeState
	// store is the SoA packet arena every packet of the replication lives in;
	// routers, buffers and generators exchange packet.Refs into it.
	store *packet.Store

	// activeRouter flags routers holding packets; Step skips the others.
	activeRouter []bool
	// downInput caches, per (router, output port), the input buffer at the
	// far end of the link (nil for terminal ports). DownstreamInput sits on
	// the congestion-probe hot path — Piggyback polls every global port of
	// every router each cycle — so the neighbor resolution is done once.
	downInput [][]*buffer.InputBuffer
	// pendingNodes lists nodes with queued NIC work, so the injection pass
	// does not arbitrate at every node every cycle. Order is irrelevant:
	// injection at a node only touches that node's own terminal port.
	pendingNodes []packet.NodeID
	// shards, when longer than 1, holds the contiguous router-ID blocks the
	// stepping phase runs in parallel (see shard.go); empty means the serial
	// loop. shardSlots bounds the goroutines one Step may use — Run lowers
	// it to 1 + the extra worker-budget tokens it could borrow.
	shards     []*shardState
	shardSlots int

	wheel     eventWheel
	collector *stats.Collector
	// metrics holds the pre-resolved observability handles (nil when
	// cfg.Metrics is nil — the fully disabled state; see metrics.go).
	metrics *simMetrics

	now       int64
	inFlight  int64
	deadlock  bool
	generated int64
}

// New builds a network from a configuration. The configuration is validated
// first.
func New(cfg config.Config) (*Network, error) { return newNetwork(cfg, nil) }

// newNetwork builds a network, optionally drawing its packet store, telemetry
// arena and shard event buffers from a recycled scratch set (see scratch.go).
// RunOne is the pooled path; New passes nil and allocates fresh.
func newNetwork(cfg config.Config, sc *scratch) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := cfg.BuildTopology()
	if err != nil {
		return nil, err
	}
	// Precompute the route tables. PrecomputeTables follows the
	// cfg.RouteTableBytes convention (negative disables, 0 selects
	// topology.DefaultTableBudget): the per-pair tables are memory-gated, so
	// above the budget the topology transparently falls back to on-the-fly
	// computation — "paper"-scale networks stay within memory while small
	// and medium instances answer every routing query from flat arrays.
	if pc, ok := topo.(topology.Precomputer); ok {
		pc.PrecomputeTables(cfg.RouteTableBytes)
	}
	n := &Network{cfg: cfg, topo: topo, scheme: cfg.Scheme}
	if sc != nil {
		n.store = sc.store
	} else {
		n.store = packet.NewStore()
	}

	// Traffic: a single open-loop pattern, or — when the configuration
	// carries a scenario — a phased Switchable generator that swaps pattern
	// and load at the scenario's cycle boundaries.
	tp := traffic.Params{
		Topo:            topo,
		Load:            cfg.Load,
		PacketSize:      cfg.PacketSize,
		Seed:            cfg.Seed,
		AvgBurstLength:  cfg.AvgBurstLength,
		HotspotFraction: cfg.HotspotFraction,
		HotspotGroup:    cfg.HotspotGroup,
		Store:           n.store,
	}
	var gen traffic.Generator
	if cfg.Scenario != nil {
		gen, err = traffic.NewSwitchable(tp, cfg.Scenario.TrafficPhases())
		if err == nil && cfg.Reactive {
			gen = traffic.NewReactive(gen, tp)
		}
	} else {
		gen, err = traffic.New(string(cfg.Traffic), tp, cfg.Reactive)
	}
	if err != nil {
		return nil, err
	}
	n.gen = gen

	// Routing.
	if err := n.buildRouting(); err != nil {
		return nil, err
	}

	// Routers.
	params := router.Params{
		Store:            n.store,
		Speedup:          cfg.Speedup,
		Pipeline:         cfg.RouterPipeline,
		OutputBufPhits:   cfg.OutputBuf,
		InjectionQueues:  cfg.InjectionQueues,
		NumClasses:       cfg.NumClasses(),
		LocalLatency:     cfg.LocalLatency,
		GlobalLatency:    cfg.GlobalLatency,
		InjectionLatency: cfg.InjectionLatency,
		BufferConfig: func(kind topology.PortKind, numVCs int) buffer.Config {
			return cfg.PortBufferConfig(kind, numVCs)
		},
	}
	n.routers = make([]*router.Router, topo.NumRouters())
	for r := range n.routers {
		rt, err := router.New(packet.RouterID(r), topo, cfg.Scheme, n.alg, params, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rt.SetEnv(n)
		n.routers[r] = rt
	}

	n.downInput = make([][]*buffer.InputBuffer, topo.NumRouters())
	for r := range n.downInput {
		row := make([]*buffer.InputBuffer, topo.Radix())
		for p := range row {
			if topo.PortKind(packet.RouterID(r), p) == topology.Terminal {
				continue
			}
			nbr, nport := topo.Neighbor(packet.RouterID(r), p)
			row[p] = n.routers[nbr].Input(nport)
		}
		n.downInput[r] = row
	}

	// Sharded stepping (config.Shards): repartition the routers into
	// contiguous blocks and point their environments at per-shard event
	// buffers. Must come after the downInput wiring above — shard
	// environments delegate downstream lookups to it.
	count, align := shardPlan(cfg, topo)
	n.buildShards(count, align, sc)
	n.metrics = newSimMetrics(cfg.Metrics, n.Shards())

	n.nodes = make([]nodeState, topo.NumNodes())
	n.activeRouter = make([]bool, topo.NumRouters())
	n.pendingNodes = make([]packet.NodeID, 0, topo.NumNodes())
	maxDelay := int64(cfg.GlobalLatency + cfg.PacketSize + cfg.RouterPipeline + cfg.LocalLatency + 8)
	n.wheel.init(maxDelay)

	measureStart := cfg.WarmupCycles
	measureEnd := cfg.WarmupCycles + cfg.MeasureCycles
	if cfg.Scenario != nil {
		// Transient runs measure from cycle 0: the non-steady state around
		// phase switches is the signal, not something to warm past.
		measureStart, measureEnd = 0, cfg.Scenario.TotalCycles()
	}
	var arena *stats.Arena
	if sc != nil {
		arena = sc.arena
	}
	n.collector = stats.NewCollectorIn(arena, topo.NumNodes(), measureStart, measureEnd)
	if cfg.Scenario != nil {
		if err := n.collector.EnableTimeSeries(cfg.Scenario.Window, measureEnd, cfg.Scenario.Marks()); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// buildRouting instantiates the routing algorithm (and the PB saturation
// manager when needed).
func (n *Network) buildRouting() error {
	cfg := n.cfg
	switch cfg.Routing {
	case routing.MIN:
		n.alg = routing.NewMinimal(n.topo)
	case routing.VAL:
		n.alg = routing.NewValiant(n.topo)
	case routing.PAR:
		parCfg := routing.PARConfig{
			ThresholdPhits: cfg.RoutingThreshold,
			Sensing:        cfg.Sensing,
			MinCredOnly:    cfg.Scheme.MinCred,
		}
		for c := 0; c < packet.NumClasses; c++ {
			parCfg.ClassVC[c] = cfg.Scheme.VCs.ClassOffset(packet.Class(c), topology.Global)
		}
		n.alg = routing.NewProgressive(n.topo, n, parCfg)
	case routing.PB:
		df, ok := n.topo.(*topology.Dragonfly)
		if !ok {
			return fmt.Errorf("sim: Piggyback routing requires a Dragonfly topology, got %s", n.topo.Name())
		}
		pbCfg := routing.DefaultPBConfig(cfg.PacketSize, int64(cfg.LocalLatency))
		pbCfg.Sensing = cfg.Sensing
		pbCfg.MinCredOnly = cfg.Scheme.MinCred
		pbCfg.ThresholdPhits = cfg.RoutingThreshold
		for c := 0; c < packet.NumClasses; c++ {
			pbCfg.ClassVC[c] = cfg.Scheme.VCs.ClassOffset(packet.Class(c), topology.Global)
		}
		n.pb = routing.NewPBManager(df, n, pbCfg, cfg.NumClasses())
		n.alg = routing.NewPiggyback(df, n, n.pb, pbCfg)
	default:
		return fmt.Errorf("sim: unknown routing algorithm %v", cfg.Routing)
	}
	return nil
}

// Topology returns the simulated topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Config returns the simulation configuration.
func (n *Network) Config() config.Config { return n.cfg }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Router returns one router, for tests and probes.
func (n *Network) Router(id packet.RouterID) *router.Router { return n.routers[id] }

// InFlight returns the number of packets injected but not yet delivered.
func (n *Network) InFlight() int64 { return n.inFlight }

// Deadlocked reports whether the watchdog detected a deadlock.
func (n *Network) Deadlocked() bool { return n.deadlock }

// Collector exposes the statistics collector.
func (n *Network) Collector() *stats.Collector { return n.collector }

// Store exposes the packet arena, for tests and probes.
func (n *Network) Store() *packet.Store { return n.store }
