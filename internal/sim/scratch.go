package sim

import (
	"sync"

	"flexvc/internal/packet"
	"flexvc/internal/stats"
)

// scratch is the recyclable per-replication memory of one network instance:
// the SoA packet store, the telemetry arena and the shard event buffers. A
// campaign runs thousands of replications, each of which used to grow these
// structures from nothing; the scratch pool keeps them across replications so
// steady-state sweeps allocate per-run memory once per worker, not once per
// replication.
//
// The pool is an explicit mutex-guarded free-list rather than a sync.Pool on
// purpose: sync.Pool drops entries at GC, which would make the allocation
// profile of a benchmarked sweep depend on GC timing — the bench gate pins
// allocs/op exactly.
type scratch struct {
	store *packet.Store
	arena *stats.Arena
	pend  [][]pendEvent
}

var (
	scratchMu   sync.Mutex
	scratchFree []*scratch
)

// acquireScratch pops a recycled scratch set (or builds a fresh one). The
// returned store and arena are empty.
func acquireScratch() *scratch {
	scratchMu.Lock()
	if n := len(scratchFree); n > 0 {
		sc := scratchFree[n-1]
		scratchFree[n-1] = nil
		scratchFree = scratchFree[:n-1]
		scratchMu.Unlock()
		return sc
	}
	scratchMu.Unlock()
	return &scratch{store: packet.NewStore(), arena: stats.NewArena()}
}

// takePend hands out a recycled shard event buffer (empty, capacity kept), or
// nil when none is available.
func (sc *scratch) takePend() []pendEvent {
	if n := len(sc.pend); n > 0 {
		p := sc.pend[n-1]
		sc.pend[n-1] = nil
		sc.pend = sc.pend[:n-1]
		return p
	}
	return nil
}

// reclaim harvests the network's recyclable buffers back into the scratch,
// resets the store and arena, and returns the set to the pool. The caller
// must be completely done with the network: every Ref, arena-backed slice and
// shard buffer it handed out is invalidated here.
func (sc *scratch) reclaim(n *Network) {
	if n != nil {
		for _, sh := range n.shards {
			if cap(sh.pend) > 0 {
				p := sh.pend[:cap(sh.pend)]
				clear(p) // drop buffer pointers so the dead network is collectable
				sc.pend = append(sc.pend, p[:0])
				sh.pend = nil
			}
		}
	}
	sc.store.Reset()
	sc.arena.Reset()
	scratchMu.Lock()
	scratchFree = append(scratchFree, sc)
	scratchMu.Unlock()
}
