package sim

import (
	"runtime"
	"sync/atomic"
)

// The replication worker budget is a global token pool bounding how many
// simulations run concurrently across the whole process, regardless of how
// many sweeps, points or RunAveraged calls fan work out. Sharing one budget
// (instead of per-call semaphores) lets a sweep saturate every core without
// oversubscribing: each leaf worker builds its network only after acquiring a
// token, so peak memory is bounded by the budget too.
//
// The pool is held behind an atomic pointer so a serving process can resize
// it while simulations are in flight (campaignd reconfigures workers per
// job): acquirers snapshot the current channel and release into the same one
// they acquired from, so a swap never loses or duplicates tokens — in-flight
// sims drain on the old pool while new acquisitions use the new size.
var workerBudget atomic.Pointer[chan struct{}]

func init() {
	ch := make(chan struct{}, defaultWorkers())
	workerBudget.Store(&ch)
}

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// SetWorkerBudget resizes the global worker budget (default: GOMAXPROCS).
// It is safe to call concurrently with running simulations: sims already
// holding (or queueing for) a token finish against the old pool, and new
// acquisitions see the new size. Total in-flight work can therefore briefly
// exceed the smaller of the two sizes while the old pool drains.
func SetWorkerBudget(n int) {
	if n < 1 {
		n = 1
	}
	ch := make(chan struct{}, n)
	workerBudget.Store(&ch)
}

// WorkerBudget returns the current budget size.
func WorkerBudget() int { return cap(*workerBudget.Load()) }

// acquireWorker blocks until a worker token is free and returns the release
// function.
func acquireWorker() func() {
	budget := *workerBudget.Load()
	budget <- struct{}{}
	return func() { <-budget }
}

// tryAcquireWorker takes a worker token only if one is immediately free,
// returning the release function and whether a token was taken. The sharded
// cycle loop uses it to borrow extra cores for intra-replication parallelism
// without ever blocking: a replication already holds one budget token, so
// waiting here for a second one could deadlock a fully subscribed budget (and
// shard parallelism is an opportunistic speedup, never a correctness need —
// results are bit-identical at any worker count).
func tryAcquireWorker() (func(), bool) {
	budget := *workerBudget.Load()
	select {
	case budget <- struct{}{}:
		return func() { <-budget }, true
	default:
		return nil, false
	}
}
