package sim

import "runtime"

// The replication worker budget is a global token pool bounding how many
// simulations run concurrently across the whole process, regardless of how
// many sweeps, points or RunAveraged calls fan work out. Sharing one budget
// (instead of per-call semaphores) lets a sweep saturate every core without
// oversubscribing: each leaf worker builds its network only after acquiring a
// token, so peak memory is bounded by the budget too.
var workerBudget = make(chan struct{}, defaultWorkers())

func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// SetWorkerBudget resizes the global worker budget (default: GOMAXPROCS).
// It must be called before any simulations are launched; it is not safe to
// call concurrently with running sweeps.
func SetWorkerBudget(n int) {
	if n < 1 {
		n = 1
	}
	workerBudget = make(chan struct{}, n)
}

// WorkerBudget returns the current budget size.
func WorkerBudget() int { return cap(workerBudget) }

// acquireWorker blocks until a worker token is free and returns the release
// function.
func acquireWorker() func() {
	budget := workerBudget
	budget <- struct{}{}
	return func() { <-budget }
}
