package sim

import (
	"testing"

	"flexvc/internal/config"
)

// warmNetwork builds a Small network at the given load and advances it past
// the initial transient so benchmarks observe steady-state behaviour.
func warmNetwork(b *testing.B, load float64) *Network {
	b.Helper()
	cfg := config.Small()
	cfg.Load = load
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.RunCycles(500)
	return n
}

// BenchmarkNetworkStepModerate measures one full simulator cycle (events,
// injection, router steps) at moderate load on the Small Dragonfly.
func BenchmarkNetworkStepModerate(b *testing.B) {
	n := warmNetwork(b, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkStepSaturated measures one full simulator cycle at full
// offered load, the regime the saturation-throughput experiments live in.
func BenchmarkNetworkStepSaturated(b *testing.B) {
	n := warmNetwork(b, 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkStepIdle measures one simulator cycle with zero offered
// load and an empty network: the fixed per-cycle overhead of scanning nodes
// and routers that have nothing to do.
func BenchmarkNetworkStepIdle(b *testing.B) {
	n := warmNetwork(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkInject isolates the NIC model: per-cycle traffic generation plus
// the injection attempts at every node, without the router and event layers.
func BenchmarkInject(b *testing.B) {
	n := warmNetwork(b, 1.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.inject()
		n.now++
	}
}

// BenchmarkRunAveraged measures a full multi-replication point (the unit of
// work of every sweep): build, warm up, measure and summarise, for several
// independent seeds.
func BenchmarkRunAveraged(b *testing.B) {
	cfg := config.Small()
	cfg.Load = 0.6
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 1200
	cfg.DeadlockCycles = 3000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		agg, _, err := RunAveraged(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		if agg.DeliveredPackets == 0 {
			b.Fatal("no traffic delivered")
		}
	}
}
