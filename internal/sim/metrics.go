package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexvc/internal/obs"
)

// Metric names exported by the sim layer (the full inventory is documented in
// DESIGN.md "Observability"). Names are Prometheus families; per-shard series
// carry a `shard` label baked into the name at registration time.
const (
	// MetricPhaseWall is the cycle loop's wall-time breakdown, labeled
	// phase="events"|"inject"|"pb_update"|"step"|"flush" (flush only exists on
	// the sharded path).
	MetricPhaseWall = "flexvc_sim_phase_wall_ns_total"
	// MetricCycles counts simulated cycles.
	MetricCycles = "flexvc_sim_cycles_total"
	// MetricReplications counts completed replications.
	MetricReplications = "flexvc_sim_replications_total"
	// MetricReplicationWall is the per-replication wall-time histogram.
	MetricReplicationWall = "flexvc_sim_replication_wall_ns"
	// MetricWheelDepthHWM is the event-wheel depth high-water mark.
	MetricWheelDepthHWM = "flexvc_sim_event_wheel_depth_hwm"
	// MetricShardBusy is per-shard stepping wall time, labeled shard="i".
	MetricShardBusy = "flexvc_sim_shard_busy_ns_total"
	// MetricShardEvents is per-shard buffered-event count, labeled shard="i".
	MetricShardEvents = "flexvc_sim_shard_events_total"
	// MetricShardImbalance is the derived busy-time imbalance ratio
	// max(shard busy)/mean(shard busy); 1.0 is a perfectly balanced plan.
	MetricShardImbalance = "flexvc_sim_shard_imbalance_ratio"
)

// simMetrics holds the pre-resolved metric handles the cycle loop updates, so
// the instrumented path never formats a name or takes the registry lock. It
// is nil when the configuration carries no registry: the hot path's only cost
// in that state is one pointer comparison in Step.
type simMetrics struct {
	phaseEvents *obs.Counter
	phaseInject *obs.Counter
	phasePB     *obs.Counter
	phaseStep   *obs.Counter
	phaseFlush  *obs.Counter
	cycles      *obs.Counter
	wheelHWM    *obs.Gauge
	shardBusy   []*obs.Counter
	shardEvents []*obs.Counter
}

// newSimMetrics resolves the cycle-loop metric handles against reg, returning
// nil (instrumentation fully disabled) when reg is nil. Counters are shared
// by name, so concurrent replications reporting into one registry aggregate
// naturally; the imbalance Func gauge is (re-)registered over the per-shard
// counters, last shard plan wins.
func newSimMetrics(reg *obs.Registry, shards int) *simMetrics {
	if reg == nil {
		return nil
	}
	m := &simMetrics{
		phaseEvents: reg.Counter(MetricPhaseWall + `{phase="events"}`),
		phaseInject: reg.Counter(MetricPhaseWall + `{phase="inject"}`),
		phasePB:     reg.Counter(MetricPhaseWall + `{phase="pb_update"}`),
		phaseStep:   reg.Counter(MetricPhaseWall + `{phase="step"}`),
		phaseFlush:  reg.Counter(MetricPhaseWall + `{phase="flush"}`),
		cycles:      reg.Counter(MetricCycles),
		wheelHWM:    reg.Gauge(MetricWheelDepthHWM),
	}
	if shards > 1 {
		m.shardBusy = make([]*obs.Counter, shards)
		m.shardEvents = make([]*obs.Counter, shards)
		for i := 0; i < shards; i++ {
			m.shardBusy[i] = reg.Counter(fmt.Sprintf(`%s{shard="%d"}`, MetricShardBusy, i))
			m.shardEvents[i] = reg.Counter(fmt.Sprintf(`%s{shard="%d"}`, MetricShardEvents, i))
		}
		busy := m.shardBusy
		reg.Func(MetricShardImbalance, func() float64 {
			var max, sum int64
			for _, c := range busy {
				v := c.Value()
				sum += v
				if v > max {
					max = v
				}
			}
			if sum == 0 {
				return 0
			}
			return float64(max) * float64(len(busy)) / float64(sum)
		})
	}
	return m
}

// stepTimed is Step's instrumented twin: the same phase sequence with the
// wall-clock read between phases and the wheel-depth high-water mark sampled
// once per cycle. It exists as a separate body so the metrics-off path keeps
// its exact pre-observability instruction stream.
func (n *Network) stepTimed() {
	m := n.metrics
	t0 := time.Now()
	n.processEvents()
	t1 := time.Now()
	m.phaseEvents.Add(t1.Sub(t0).Nanoseconds())
	n.inject()
	t2 := time.Now()
	m.phaseInject.Add(t2.Sub(t1).Nanoseconds())
	if n.pb != nil {
		n.pb.Update(n.now)
	}
	t3 := time.Now()
	m.phasePB.Add(t3.Sub(t2).Nanoseconds())
	if len(n.shards) > 1 {
		n.stepShardedTimed(m)
	} else {
		n.stepBlock(0, len(n.routers))
		m.phaseStep.Add(time.Since(t3).Nanoseconds())
	}
	m.cycles.Inc()
	m.wheelHWM.SetMax(n.wheel.count)
	n.now++
}

// stepShardedTimed is stepSharded's instrumented twin: the same claim-counter
// fan-out and ascending-order flush, plus per-shard stepping wall time and
// buffered-event counts recorded from the goroutine that stepped each shard
// (the per-shard counters are atomic, so concurrent shards never contend on
// shared mutable state), and the stepping and flush phases reported
// separately into the phase breakdown.
func (n *Network) stepShardedTimed(m *simMetrics) {
	workers := n.shardSlots
	if workers > len(n.shards) {
		workers = len(n.shards)
	}
	stepStart := time.Now()
	runShard := func(i int) {
		sh := n.shards[i]
		start := time.Now()
		n.stepBlock(sh.lo, sh.hi)
		m.shardBusy[i].Add(time.Since(start).Nanoseconds())
		m.shardEvents[i].Add(int64(len(sh.pend)))
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(n.shards) {
					return
				}
				runShard(i)
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= len(n.shards) {
			break
		}
		runShard(i)
	}
	wg.Wait()
	flushStart := time.Now()
	m.phaseStep.Add(flushStart.Sub(stepStart).Nanoseconds())
	for _, sh := range n.shards {
		sh.flush()
	}
	m.phaseFlush.Add(time.Since(flushStart).Nanoseconds())
}
