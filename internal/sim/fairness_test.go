package sim

import (
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/packet"
)

// TestInjectFairness is the regression test for the NIC starvation bug: the
// reply queue used to have absolute priority, so a node whose reply queue
// never drained (replies keep arriving from delivered requests) would never
// inject a locally generated request. The fixed NIC alternates between the
// two classes whenever both queues hold packets.
func TestInjectFairness(t *testing.T) {
	cfg := config.Small()
	cfg.Load = 0 // no generated traffic; the test drives the queues directly
	cfg.Reactive = true
	cfg.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.TwoClass(2, 1, 2, 1), Selection: core.JSQ}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const node = packet.NodeID(0)
	dst := packet.NodeID(5)
	ns := &n.nodes[node]
	var id uint64

	mkpkt := func(class packet.Class) packet.Ref {
		id++
		ref := n.store.Alloc(id, node, dst, cfg.PacketSize, class, n.now)
		hdr := n.store.Hdr(ref)
		hdr.SrcRouter = n.topo.RouterOfNode(node)
		hdr.DstRouter = n.topo.RouterOfNode(dst)
		return ref
	}

	// Seed a deep backlog of requests and keep the reply queue non-empty
	// forever (the starvation scenario).
	for i := 0; i < 4; i++ {
		ns.requests.push(mkpkt(packet.Request))
	}
	n.queueNode(node)

	injected := make([]packet.Class, 0, 8)
	seen := n.collector.TotalGenerated() // unused; keeps the collector warm
	_ = seen
	for cycle := 0; len(injected) < 8 && cycle < 10000; cycle++ {
		if ns.replies.len() < 2 {
			ns.replies.push(mkpkt(packet.Reply))
		}
		before := ns.requests.len() + ns.replies.len()
		n.Step()
		if after := ns.requests.len() + ns.replies.len(); after < before {
			// Exactly one packet left the NIC this cycle; record its class
			// from the per-class delta.
			injected = append(injected, lastInjectedClass(before-after, ns, before))
		}
		// Refill requests so both queues stay busy.
		if ns.requests.len() < 2 {
			ns.requests.push(mkpkt(packet.Request))
		}
	}

	var requests, replies int
	for _, c := range injected {
		if c == packet.Request {
			requests++
		} else {
			replies++
		}
	}
	if requests == 0 {
		t.Fatalf("requests starved: %d replies injected, 0 requests (round-robin broken)", replies)
	}
	if replies == 0 {
		t.Fatalf("replies starved: %d requests injected, 0 replies", requests)
	}
	// With both queues continuously backlogged, alternation should keep the
	// split even.
	if requests < 3 || replies < 3 {
		t.Fatalf("unbalanced injection under dual backlog: %d requests vs %d replies", requests, replies)
	}
}

// lastInjectedClass infers which class was injected from queue deltas.
func lastInjectedClass(delta int, ns *nodeState, _ int) packet.Class {
	// Injection moves exactly one packet per cycle; the NIC alternates, so
	// the class is whichever the node recorded last.
	if delta != 1 {
		panic("expected exactly one injection")
	}
	if ns.lastWasReply {
		return packet.Reply
	}
	return packet.Request
}
