package sim

import (
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
)

// TestRunWithPoisonedStore is the use-after-release check for the SoA packet
// arena: with poison mode on, every accessor panics on a freed or recycled
// slot and Free scrambles the slot's state, so a full simulation driving the
// complete lifecycle — generate, inject, forward, deliver, reply, free,
// recycle — passes only if no component ever touches a packet after its slot
// was released. Reactive traffic is the hard case: replies retain their
// requests, and the delivery path frees both in a fixed order.
func TestRunWithPoisonedStore(t *testing.T) {
	for _, reactive := range []bool{false, true} {
		cfg := config.Small()
		cfg.Load = 0.6
		cfg.WarmupCycles = 200
		cfg.MeasureCycles = 800
		cfg.Reactive = reactive
		if reactive {
			cfg.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.TwoClass(2, 1, 2, 1), Selection: core.JSQ}
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.store.EnablePoison()
		res := n.Run()
		if res.DeliveredPackets == 0 {
			t.Fatalf("reactive=%v: poisoned run delivered nothing", reactive)
		}
		// Slots must actually recycle for the poison check to mean anything:
		// a store that only ever grows would never re-expose a freed slot.
		news, reuses := n.store.Stats()
		if reuses == 0 {
			t.Fatalf("reactive=%v: no slot was ever recycled (news=%d); the aliasing check is vacuous", reactive, news)
		}
	}
}
