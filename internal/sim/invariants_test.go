package sim

import (
	"testing"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
)

// TestDeadlockFreedomStress drives every VC-management / routing combination
// the paper evaluates at full offered load on a small system and checks that
// the deadlock watchdog never fires and that packets keep flowing. This is
// the simulation counterpart of Theorems 1 and 2.
func TestDeadlockFreedomStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test is slow")
	}
	type tc struct {
		name string
		mut  func(*config.Config)
	}
	cases := []tc{
		{"baseline MIN 2/1 UN", func(c *config.Config) {}},
		{"flexvc MIN 2/1 UN", func(c *config.Config) { c.Scheme.Policy = core.FlexVC }},
		{"flexvc MIN 8/4 UN", func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(8, 4), Selection: core.JSQ}
		}},
		{"baseline VAL 4/2 ADV", func(c *config.Config) {
			c.Traffic = config.TrafficAdversarial
			c.Routing = routing.VAL
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
		}},
		{"flexvc VAL 3/2 ADV (opportunistic)", func(c *config.Config) {
			c.Traffic = config.TrafficAdversarial
			c.Routing = routing.VAL
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(3, 2), Selection: core.JSQ}
		}},
		{"flexvc PAR 5/2 UN", func(c *config.Config) {
			c.Routing = routing.PAR
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(5, 2), Selection: core.JSQ}
		}},
		{"baseline PB 8/4 reactive ADV", func(c *config.Config) {
			c.Traffic = config.TrafficAdversarial
			c.Routing = routing.PB
			c.Reactive = true
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.TwoClass(4, 2, 4, 2), Selection: core.JSQ}
		}},
		{"flexvc-minCred PB 6/3 reactive ADV", func(c *config.Config) {
			c.Traffic = config.TrafficAdversarial
			c.Routing = routing.PB
			c.Reactive = true
			c.Sensing = routing.SensePerPort
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(4, 2, 2, 1), Selection: core.JSQ, MinCred: true}
		}},
		{"flexvc reactive UN 5/3 (3/2+2/1)", func(c *config.Config) {
			c.Reactive = true
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(3, 2, 2, 1), Selection: core.JSQ}
		}},
		{"damq75 MIN 2/1 BURSTY", func(c *config.Config) {
			c.Traffic = config.TrafficBursty
			c.BufferOrg = buffer.DAMQ
		}},
		{"flexvc lowest-vc MIN 4/2 UN", func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.LowestVC}
		}},
		{"flexvc random-vc MIN 4/2 UN", func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.RandomVC}
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := config.Small()
			cfg.Load = 1.0
			cfg.WarmupCycles = 1000
			cfg.MeasureCycles = 4000
			c.mut(&cfg)
			res, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Deadlock {
				t.Fatalf("deadlock detected: %+v", res)
			}
			if res.DeliveredPackets == 0 {
				t.Fatal("no packets delivered at full load")
			}
			t.Logf("%v", res)
		})
	}
}

// TestDeterminism checks that two runs with the same seed produce identical
// results, and that a different seed produces (at least slightly) different
// results.
func TestDeterminism(t *testing.T) {
	cfg := config.Small()
	cfg.Load = 0.5
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 1500
	cfg.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.RandomVC}

	a, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AcceptedLoad != b.AcceptedLoad || a.AvgLatency != b.AvgLatency || a.DeliveredPackets != b.DeliveredPackets {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 99
	c, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.DeliveredPackets == a.DeliveredPackets && c.AvgLatency == a.AvgLatency {
		t.Log("note: different seed produced identical statistics (possible but unlikely)")
	}
}

// TestConservation checks packet conservation: everything injected is either
// delivered or still resident in the network when the run stops.
func TestConservation(t *testing.T) {
	cfg := config.Small()
	cfg.Load = 0.6
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.RunCycles(3000)
	resident := int64(n.ResidentPackets())
	inFlight := n.InFlight()
	// In-flight packets are resident in router buffers, in flight on a link
	// or inside the event wheel; resident is a lower bound and can never
	// exceed the in-flight count.
	if resident > inFlight {
		t.Fatalf("resident packets (%d) exceed in-flight count (%d)", resident, inFlight)
	}
	if n.Collector().TotalDelivered()+inFlight != n.Collector().TotalGenerated()-pendingAtSources(n) {
		t.Logf("generated=%d delivered=%d inflight=%d (difference is NIC-queued traffic)",
			n.Collector().TotalGenerated(), n.Collector().TotalDelivered(), inFlight)
	}
	if inFlight < 0 {
		t.Fatal("negative in-flight count")
	}
}

// pendingAtSources counts packets generated but not yet injected.
func pendingAtSources(n *Network) int64 {
	var total int64
	for i := range n.nodes {
		total += int64(n.nodes[i].requests.len() + n.nodes[i].replies.len())
	}
	return total
}

// TestDrainAfterLoadStops checks that the network drains completely once
// sources stop: no packet is ever lost or stuck under moderate load.
func TestDrainAfterLoadStops(t *testing.T) {
	cfg := config.Small()
	cfg.Load = 0.4
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.RunCycles(2000)
	// Silence the sources by swapping in a zero-load generator.
	cfg0 := cfg
	cfg0.Load = 0
	silent, err := New(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	n.gen = silent.gen
	for i := range n.nodes {
		n.nodes[i].requests.reset()
		n.nodes[i].replies.reset()
	}
	n.RunCycles(4000)
	if n.InFlight() != 0 {
		t.Fatalf("%d packets still in flight after drain", n.InFlight())
	}
	if n.ResidentPackets() != 0 {
		t.Fatalf("%d packets still resident after drain", n.ResidentPackets())
	}
	if n.wheel.pending() != 0 {
		t.Fatalf("%d events still pending after drain", n.wheel.pending())
	}
}

// TestFlattenedButterflySimulation checks that the generic diameter-2
// topology runs end to end with FlexVC.
func TestFlattenedButterflySimulation(t *testing.T) {
	cfg := config.Small()
	cfg.Topology = config.TopoFlattenedButterfly
	cfg.K = 4
	cfg.Load = 0.4
	cfg.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 0), Selection: core.JSQ}
	cfg.Routing = routing.VAL
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlock || res.DeliveredPackets == 0 {
		t.Fatalf("flattened butterfly run failed: %+v", res)
	}
	if res.AcceptedLoad < 0.3 {
		t.Errorf("accepted %.3f too low for offered 0.4 on a flattened butterfly", res.AcceptedLoad)
	}
}

// TestSpeedupImprovesThroughput checks the Section VI-D premise: removing the
// router speedup lowers the baseline saturation throughput.
func TestSpeedupImprovesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	base := config.Small()
	base.Load = 1.0
	base.WarmupCycles = 1000
	base.MeasureCycles = 3000

	with := base
	with.Speedup = 2
	without := base
	without.Speedup = 1
	rWith, err := RunOne(with)
	if err != nil {
		t.Fatal(err)
	}
	rWithout, err := RunOne(without)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("speedup 2x: %.3f, speedup 1x: %.3f", rWith.AcceptedLoad, rWithout.AcceptedLoad)
	if rWithout.AcceptedLoad > rWith.AcceptedLoad*1.02 {
		t.Errorf("removing the router speedup should not increase throughput (%.3f vs %.3f)",
			rWithout.AcceptedLoad, rWith.AcceptedLoad)
	}
}

// TestDAMQZeroPrivateCollapses reproduces the premise of Figure 10: with no
// private reservation a DAMQ either deadlocks or collapses at saturation,
// while 75% private reservation keeps working.
func TestDAMQZeroPrivateCollapses(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	base := config.Small()
	base.Load = 1.0
	base.WarmupCycles = 1000
	base.MeasureCycles = 4000
	base.BufferOrg = buffer.DAMQ

	zero := base
	zero.DAMQPrivateFraction = 0
	seventyFive := base
	seventyFive.DAMQPrivateFraction = 0.75

	rZero, err := RunOne(zero)
	if err != nil {
		t.Fatal(err)
	}
	rSeventyFive, err := RunOne(seventyFive)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("0%% private: %v", rZero)
	t.Logf("75%% private: %v", rSeventyFive)
	if rSeventyFive.Deadlock {
		t.Fatal("75% private DAMQ must not deadlock")
	}
	if !rZero.Deadlock && rZero.AcceptedLoad > 0.6*rSeventyFive.AcceptedLoad {
		t.Errorf("0%% private DAMQ should deadlock or collapse (got %.3f vs %.3f)",
			rZero.AcceptedLoad, rSeventyFive.AcceptedLoad)
	}
}
