package sim

import (
	"math"
	"reflect"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
	"flexvc/internal/scenario"
)

// scenarioConfig is a Small-scale configuration driven by a short UN→ADV→UN
// scenario, with the 4/2 VC set every routing mode of the transient
// experiment family can run on.
func scenarioConfig(alg routing.Kind) config.Config {
	cfg := config.Small()
	cfg.Routing = alg
	cfg.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
	cfg.Scenario = scenario.UNToADV(0.3, 3000, 4000, 3000, 500)
	cfg.Load = cfg.Scenario.MaxLoad()
	return cfg
}

// TestScenarioRunDeterministic locks the scenario determinism contract at
// the whole-simulation level: two runs of the same scenario configuration
// produce identical results, including the windowed series.
func TestScenarioRunDeterministic(t *testing.T) {
	cfg := scenarioConfig(routing.MIN)
	a, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of the same scenario disagree")
	}
	if a.Series == nil {
		t.Fatal("scenario run carried no time series")
	}
	if a.Series.Windows() != 20 {
		t.Fatalf("got %d windows, want 20", a.Series.Windows())
	}
	if len(a.Series.Marks) != 3 {
		t.Fatalf("got %d phase marks, want 3", len(a.Series.Marks))
	}
	if a.SimulatedCycles != cfg.Scenario.TotalCycles() {
		t.Errorf("simulated %d cycles, want the scenario's %d", a.SimulatedCycles, cfg.Scenario.TotalCycles())
	}
}

// settled returns the mean minimal fraction over the second half of the
// window range [from, to).
func settled(t *testing.T, r interface {
	MinimalFraction(int) float64
}, from, to int) float64 {
	t.Helper()
	sum, n := 0.0, 0
	for w := from + (to-from)/2; w < to; w++ {
		f := r.MinimalFraction(w)
		if math.IsNaN(f) {
			continue
		}
		sum += f
		n++
	}
	if n == 0 {
		t.Fatal("no populated windows in range")
	}
	return sum / float64(n)
}

// TestScenarioTransientAdaptation is the end-to-end transient check behind
// the transient experiment: across a UN→ADV switch, Piggyback's
// minimally-routed fraction collapses (it re-diverts traffic onto Valiant
// paths) while static MIN and VAL stay flat, and the measured adaptation lag
// is positive and bounded by the ADV phase.
func TestScenarioTransientAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode scenario simulation")
	}
	// Windows 0..5 are the UN phase, 6..13 ADV, 14..19 UN again.
	run := func(alg routing.Kind) (unFrac, advFrac float64, lags []scenario.Lag) {
		r, err := RunOne(scenarioConfig(alg))
		if err != nil {
			t.Fatal(err)
		}
		if r.Series == nil {
			t.Fatal("no series")
		}
		return settled(t, r.Series, 0, 6), settled(t, r.Series, 6, 14), scenario.AdaptationLags(r.Series)
	}

	minUN, minADV, minLags := run(routing.MIN)
	if minUN < 0.999 || minADV < 0.999 {
		t.Errorf("MIN should stay fully minimal (un %.3f adv %.3f)", minUN, minADV)
	}
	for _, l := range minLags {
		if l.Shifted {
			t.Errorf("MIN reported an adaptation shift: %+v", l)
		}
	}

	valUN, valADV, valLags := run(routing.VAL)
	if math.Abs(valUN-valADV) >= 0.1 {
		t.Errorf("VAL minimal fraction moved across the switch (un %.3f adv %.3f)", valUN, valADV)
	}
	_ = valLags

	pbUN, pbADV, pbLags := run(routing.PB)
	if pbUN < 0.8 {
		t.Errorf("PB under UN should route mostly minimally, got %.3f", pbUN)
	}
	if pbADV > pbUN-0.3 {
		t.Errorf("PB minimal fraction did not collapse after UN→ADV (un %.3f adv %.3f)", pbUN, pbADV)
	}
	if len(pbLags) != 2 {
		t.Fatalf("got %d PB lags, want 2", len(pbLags))
	}
	onset := pbLags[0]
	if !onset.Shifted {
		t.Fatalf("PB UN→ADV switch not detected as a shift: %+v", onset)
	}
	if onset.Cycles <= 0 || onset.Cycles > 4000 {
		t.Errorf("PB adaptation lag %d cycles outside (0, 4000]", onset.Cycles)
	}
}
