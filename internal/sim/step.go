package sim

import (
	"flexvc/internal/packet"
)

// pktFIFO is an unbounded NIC queue of packet refs with an explicit head
// index, so popping the front neither reallocates nor abandons backing
// storage: once drained, the slice is rewound and its capacity reused.
type pktFIFO struct {
	items []packet.Ref
	head  int
}

func (q *pktFIFO) len() int    { return len(q.items) - q.head }
func (q *pktFIFO) empty() bool { return q.head >= len(q.items) }

func (q *pktFIFO) push(p packet.Ref) {
	if q.head > 0 && q.head >= len(q.items)-q.head {
		// The dead prefix is at least as large as the live tail: compact so
		// a queue that never fully drains cannot grow its backing array
		// beyond twice its live depth. Amortised O(1) per push.
		live := copy(q.items, q.items[q.head:])
		q.items = q.items[:live]
		q.head = 0
	}
	q.items = append(q.items, p)
}

func (q *pktFIFO) peek() packet.Ref { return q.items[q.head] }

func (q *pktFIFO) pop() packet.Ref {
	p := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return p
}

func (q *pktFIFO) reset() { q.items = q.items[:0]; q.head = 0 }

// Step advances the network by one cycle:
//
//  1. process due events (arrivals into input VCs, credit returns, deliveries)
//  2. inject traffic at the NICs
//  3. refresh the piggybacked congestion state (PB routing only)
//  4. step every router that holds work (allocation iterations + link
//     transmission); idle routers are skipped — an empty router's Step is a
//     no-op that consumes no randomness, so skipping it cannot change results
//
// Phases 1–3 are serial. Phase 4 steps routers in ascending identifier order;
// with sharding enabled (config.Shards, see shard.go) contiguous router-ID
// blocks step concurrently. Router steps are mutually conflict-free within a
// cycle — a router's grants consume credits of the downstream buffers that
// only it writes and probes, queue state is owner-only, and credit returns
// ride the event wheel into the next serial phase — so the router order
// influences results solely through the order events are appended to the
// wheel (a slot's append order is the order processEvents replays it).
// The serial loop appends in ascending router-ID order; the sharded loop
// buffers each shard's events and flushes them in ascending shard order,
// reproducing the identical wheel order. Sharded and serial runs are
// therefore bit-identical.
//
// With a metrics registry attached (config.Metrics) the instrumented twin
// stepTimed runs instead: identical phase sequence, plus wall-clock reads
// between phases. Metrics only observe — they never feed back into simulated
// state — so instrumented and plain runs are bit-identical too (locked by
// TestMetricsExportInvariant).
func (n *Network) Step() {
	if n.metrics != nil {
		n.stepTimed()
		return
	}
	n.processEvents()
	n.inject()
	if n.pb != nil {
		n.pb.Update(n.now)
	}
	if len(n.shards) > 1 {
		n.stepSharded()
	} else {
		n.stepBlock(0, len(n.routers))
	}
	n.now++
}

// stepBlock steps the busy routers of the ID range [lo, hi) in ascending
// order. It is the phase-4 body for both the serial loop (the full range) and
// one shard of the parallel loop.
func (n *Network) stepBlock(lo, hi int) {
	for id := lo; id < hi; id++ {
		if !n.activeRouter[id] {
			continue
		}
		r := n.routers[id]
		r.Step(n.now)
		if !r.Busy() {
			n.activeRouter[id] = false
		}
	}
}

// markRouterActive flags a router for stepping; it stays flagged until a Step
// leaves it with no resident packets.
func (n *Network) markRouterActive(r packet.RouterID) { n.activeRouter[r] = true }

// queueNode flags a node as holding NIC work (queued requests or replies), so
// the injection pass visits it. The flag is cleared once both queues drain.
func (n *Network) queueNode(node packet.NodeID) {
	if !n.nodes[node].queued {
		n.nodes[node].queued = true
		n.pendingNodes = append(n.pendingNodes, node)
	}
}

// processEvents drains the events due this cycle.
func (n *Network) processEvents() {
	for _, ev := range n.wheel.take(n.now) {
		switch ev.kind {
		case evArrival:
			// The packet becomes visible to the allocator once the router
			// pipeline latency has elapsed.
			ready := n.now + int64(n.cfg.RouterPipeline)
			n.routers[ev.router].EnqueueArrival(ev.port, ev.vc, ev.ref, ready, ev.rkind)
			n.markRouterActive(ev.router)
		case evCredit:
			ev.buf.ReleaseCredit(ev.vc, ev.size, ev.rkind)
		case evDelivery:
			n.deliver(ev.ref)
		}
	}
}

// deliver consumes a packet at its destination node, collects the reply the
// destination now owes (reactive traffic), and recycles store slots that can
// no longer be referenced.
func (n *Network) deliver(ref packet.Ref) {
	n.store.Times(ref).Recv = n.now
	n.inFlight--
	n.collector.Delivered(n.store, ref, n.now)
	// Copy the fields needed after the generator callback: a reactive
	// generator allocates the reply there, which may grow the store and
	// invalidate header pointers.
	hdr := n.store.Hdr(ref)
	class, dst := hdr.Class, hdr.Dst
	n.gen.Delivered(n.now, ref)
	if !n.cfg.Reactive {
		n.store.Free(ref)
		return
	}
	if class == packet.Request {
		// Move the owed reply to the NIC immediately instead of polling every
		// node every cycle. The delivered request stays alive: its reply
		// references it through ReplyTo until the reply itself is delivered.
		if reply := n.gen.PendingReplies(dst); reply != packet.NilRef {
			n.nodes[dst].replies.push(reply)
			n.queueNode(dst)
		}
		return
	}
	// A delivered reply closes its transaction: both the reply and the
	// request it retained are unreachable now.
	if req := n.store.ReplyTo(ref); req != packet.NilRef {
		n.store.Free(req)
	}
	n.store.Free(ref)
}

// inject runs the NIC model: every node's generator is polled each cycle (the
// per-node PRNG streams must advance deterministically), but the injection
// attempt — queue arbitration, JSQ over the injection VCs, credit
// reservation — only runs for nodes that actually hold queued work.
func (n *Network) inject() {
	for node := range n.nodes {
		if ref := n.gen.Generate(n.now, packet.NodeID(node)); ref != packet.NilRef {
			n.generated++
			n.collector.Generated()
			n.nodes[node].requests.push(ref)
			n.queueNode(packet.NodeID(node))
		}
	}
	live := n.pendingNodes[:0]
	for _, node := range n.pendingNodes {
		ns := &n.nodes[node]
		if ns.requests.empty() && ns.replies.empty() {
			ns.queued = false
			continue
		}
		live = append(live, node)
		if ns.nextInject > n.now {
			continue
		}
		n.tryInject(node, ns)
	}
	n.pendingNodes = live
}

// tryInject moves at most one packet from a node's NIC queues into the source
// router's injection buffers. When both requests and replies are queued the
// classes alternate (round-robin): replies must keep draining (the
// consumption assumption that breaks protocol deadlock needs the NIC to
// absorb them), but a continuous reply stream must not starve locally
// generated requests forever either.
func (n *Network) tryInject(node packet.NodeID, ns *nodeState) {
	var queue *pktFIFO
	switch {
	case !ns.replies.empty() && !ns.requests.empty():
		if ns.lastWasReply {
			queue = &ns.requests
		} else {
			queue = &ns.replies
		}
	case !ns.replies.empty():
		queue = &ns.replies
	default:
		queue = &ns.requests
	}
	ref := queue.peek()
	hdr := n.store.Hdr(ref)
	size := int(hdr.Size)
	kind := n.store.Route(ref).Kind
	rtr := n.topo.RouterOfNode(node)
	port := n.topo.TerminalPort(rtr, node)
	buf := n.routers[rtr].Input(port)
	// Pick the injection VC with the most free space (JSQ over the
	// injection queues); skip this cycle if none fits.
	bestVC, bestFree := -1, -1
	for vc := 0; vc < buf.NumVCs(); vc++ {
		if free := buf.FreeFor(vc); free >= size && free > bestFree {
			bestVC, bestFree = vc, free
		}
	}
	if bestVC < 0 {
		return
	}
	if !buf.Reserve(bestVC, size, kind) {
		return
	}
	ready := n.now + int64(n.cfg.InjectionLatency+n.cfg.RouterPipeline)
	n.routers[rtr].EnqueueArrival(port, bestVC, ref, ready, kind)
	n.markRouterActive(rtr)
	n.store.Times(ref).Inject = n.now
	n.collector.Injected()
	n.inFlight++
	ns.nextInject = n.now + int64(size)
	ns.lastWasReply = hdr.Class == packet.Reply
	queue.pop()
}

// ResidentPackets returns the number of packets currently stored in router
// buffers across the network.
func (n *Network) ResidentPackets() int {
	total := 0
	for _, r := range n.routers {
		total += r.ResidentPackets()
	}
	return total
}
