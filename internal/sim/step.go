package sim

import (
	"flexvc/internal/packet"
)

// Step advances the network by one cycle:
//
//  1. process due events (arrivals into input VCs, credit returns, deliveries)
//  2. inject traffic at the NICs
//  3. refresh the piggybacked congestion state (PB routing only)
//  4. step every router (allocation iterations + link transmission)
func (n *Network) Step() {
	n.processEvents()
	n.inject()
	if n.pb != nil {
		n.pb.Update(n.now)
	}
	for _, r := range n.routers {
		r.Step(n.now)
	}
	n.now++
}

// processEvents drains the events due this cycle.
func (n *Network) processEvents() {
	for _, ev := range n.wheel.take(n.now) {
		switch ev.kind {
		case evArrival:
			// The packet becomes visible to the allocator once the router
			// pipeline latency has elapsed.
			ready := n.now + int64(n.cfg.RouterPipeline)
			n.routers[ev.router].Input(ev.port).Enqueue(ev.vc, ev.pkt, ready, ev.rkind)
		case evCredit:
			ev.buf.ReleaseCredit(ev.vc, ev.size, ev.rkind)
		case evDelivery:
			n.deliver(ev.pkt)
		}
	}
}

// deliver consumes a packet at its destination node.
func (n *Network) deliver(pkt *packet.Packet) {
	pkt.RecvTime = n.now
	n.inFlight--
	n.collector.Delivered(pkt, n.now)
	n.gen.Delivered(n.now, pkt)
}

// inject runs the NIC model of every node: generate new requests, collect
// owed replies, and move at most one packet per injection-link transmission
// time into the source router's injection buffers.
func (n *Network) inject() {
	for node := range n.nodes {
		ns := &n.nodes[node]
		nid := packet.NodeID(node)

		if pkt := n.gen.Generate(n.now, nid); pkt != nil {
			n.generated++
			n.collector.Generated(pkt)
			ns.requests = append(ns.requests, pkt)
		}
		if reply := n.gen.PendingReplies(nid); reply != nil {
			ns.replies = append(ns.replies, reply)
		}

		if ns.nextInject > n.now {
			continue
		}
		var queue *[]*packet.Packet
		switch {
		case len(ns.replies) > 0:
			queue = &ns.replies
		case len(ns.requests) > 0:
			queue = &ns.requests
		default:
			continue
		}
		pkt := (*queue)[0]
		rtr := n.topo.RouterOfNode(nid)
		port := n.topo.TerminalPort(rtr, nid)
		buf := n.routers[rtr].Input(port)
		// Pick the injection VC with the most free space (JSQ over the
		// injection queues); skip this cycle if none fits.
		bestVC, bestFree := -1, -1
		for vc := 0; vc < buf.NumVCs(); vc++ {
			if free := buf.FreeFor(vc); free >= pkt.Size && free > bestFree {
				bestVC, bestFree = vc, free
			}
		}
		if bestVC < 0 {
			continue
		}
		if !buf.Reserve(bestVC, pkt.Size, pkt.Route.Kind) {
			continue
		}
		ready := n.now + int64(n.cfg.InjectionLatency+n.cfg.RouterPipeline)
		buf.Enqueue(bestVC, pkt, ready, pkt.Route.Kind)
		pkt.InjectTime = n.now
		n.collector.Injected(pkt)
		n.inFlight++
		ns.nextInject = n.now + int64(pkt.Size)
		*queue = (*queue)[1:]
	}
}

// ResidentPackets returns the number of packets currently stored in router
// buffers across the network.
func (n *Network) ResidentPackets() int {
	total := 0
	for _, r := range n.routers {
		total += r.ResidentPackets()
	}
	return total
}
