package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
)

// shardVariant is one entry of the shard-equivalence matrix.
type shardVariant struct {
	name string
	cfg  config.Config
}

// shardVariants builds the topology x routing matrix the shard-equivalence
// properties run over: Dragonfly at two scales with all four routing
// algorithms (PB is Dragonfly-only) and the flattened butterfly with the
// oblivious pair. Mirrors the route-table equivalence matrix.
func shardVariants() []shardVariant {
	variants := []shardVariant{}
	add := func(name string, cfg config.Config) {
		cfg.WarmupCycles = 300
		cfg.MeasureCycles = 1200
		variants = append(variants, shardVariant{name, cfg})
	}

	for _, scale := range []struct {
		name string
		cfg  func() config.Config
	}{
		{"tiny", config.Tiny},
		{"small", config.Small},
	} {
		min := scale.cfg()
		min.Routing = routing.MIN
		add("dragonfly-"+scale.name+"-min", min)

		val := scale.cfg()
		val.Routing = routing.VAL
		val.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
		val.Traffic = config.TrafficAdversarial
		add("dragonfly-"+scale.name+"-val", val)

		par := scale.cfg()
		par.Routing = routing.PAR
		par.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(5, 2), Selection: core.JSQ}
		add("dragonfly-"+scale.name+"-par", par)

		pb := scale.cfg()
		pb.Routing = routing.PB
		pb.Reactive = true
		pb.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(4, 2, 2, 1), Selection: core.JSQ}
		add("dragonfly-"+scale.name+"-pb", pb)
	}

	fb := config.Small()
	fb.Topology = config.TopoFlattenedButterfly
	fb.K, fb.P = 4, 2
	fb.Routing = routing.MIN
	add("fbfly-min", fb)

	fbv := fb
	fbv.Routing = routing.VAL
	fbv.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 0), Selection: core.JSQ}
	add("fbfly-val", fbv)

	return variants
}

// TestShardEquivalence is the core bit-identity property of the parallel
// cycle loop: for every topology x routing variant, a run sharded 2, 4 or
// auto ways must produce a result bit-identical to the serial run. A single
// reordered event anywhere — a credit returning one append earlier, an
// arrival enqueued after instead of before a rival — would cascade into a
// diverging aggregate, so DeepEqual on the full summary is a sharp check.
func TestShardEquivalence(t *testing.T) {
	for _, v := range shardVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			serial := v.cfg
			serial.Shards = 1
			want, err := RunOne(serial)
			if err != nil {
				t.Fatal(err)
			}
			if want.DeliveredPackets == 0 {
				t.Fatal("serial run moved no traffic; equivalence check is vacuous")
			}
			for _, shards := range []int{2, 4, 0} {
				sharded := v.cfg
				sharded.Shards = shards
				got, err := RunOne(sharded)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverges from serial:\n sharded: %+v\n serial:  %+v", shards, got, want)
				}
			}
		})
	}
}

// TestShardPlanPartition checks the shard construction invariants: the blocks
// cover every router exactly once, in ascending contiguous order, and on the
// Dragonfly every block boundary falls on a group boundary (router IDs are
// group-major, so local all-to-all traffic stays shard-internal).
func TestShardPlanPartition(t *testing.T) {
	for _, tc := range []struct {
		name   string
		cfg    config.Config
		shards int
	}{
		{"small-2", config.Small(), 2},
		{"small-4", config.Small(), 4},
		{"small-9", config.Small(), 9},
		{"small-overask", config.Small(), 64}, // capped at 9 groups
		{"medium-8", config.Medium(), 8},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Shards = tc.shards
			n, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(n.shards) == 0 {
				t.Fatalf("shards=%d built the serial path", tc.shards)
			}
			topo := n.Topology()
			prev := 0
			for i, sh := range n.shards {
				if sh.lo != prev {
					t.Fatalf("shard %d starts at %d, want %d (gap or overlap)", i, sh.lo, prev)
				}
				if sh.hi <= sh.lo {
					t.Fatalf("shard %d empty: [%d, %d)", i, sh.lo, sh.hi)
				}
				if sh.lo%tc.cfg.A != 0 {
					t.Fatalf("shard %d starts mid-group at router %d (A=%d)", i, sh.lo, tc.cfg.A)
				}
				prev = sh.hi
			}
			if prev != topo.NumRouters() {
				t.Fatalf("shards cover %d routers, topology has %d", prev, topo.NumRouters())
			}
			if groups := topo.NumRouters() / tc.cfg.A; len(n.shards) > groups {
				t.Fatalf("%d shards exceed the %d groups", len(n.shards), groups)
			}
		})
	}
}

// TestShardsExcludedFromIdentity pins the contract that the shard knob is an
// execution detail, not part of the experiment identity: the JSON form of a
// configuration — the input of results.Fingerprint, checkpoint keys and
// recorded exports — must not change with the shard count, or re-running a
// recorded experiment on a different machine would orphan its checkpoints.
func TestShardsExcludedFromIdentity(t *testing.T) {
	serial := config.Small()
	serial.Shards = 1
	sharded := config.Small()
	sharded.Shards = 8
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("Shards leaks into the config JSON identity:\n shards=1: %s\n shards=8: %s", a, b)
	}
}

// TestShardedRunUnderBudgetChurn runs sharded replications concurrently while
// another goroutine churns the process-wide worker budget, and demands
// bit-identical results throughout. Under -race this doubles as the data-race
// proof for the fork/join stepping phase composed with SetWorkerBudget's
// atomic pool swap (acquirers must release into the channel they acquired
// from, whatever the current pool is).
func TestShardedRunUnderBudgetChurn(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	defer SetWorkerBudget(WorkerBudget())

	cfg := config.Small()
	cfg.Routing = routing.PAR
	cfg.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(5, 2), Selection: core.JSQ}
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 800
	cfg.Shards = 1
	want, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		size := 1
		for {
			select {
			case <-stop:
				return
			default:
				SetWorkerBudget(size%4 + 1)
				size++
			}
		}
	}()

	const runs = 6
	results := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Shards = i%3 + 2 // 2, 3, 4 shards
			got, err := RunOne(c)
			if err != nil {
				results[i] = err
				return
			}
			if !reflect.DeepEqual(got, want) {
				results[i] = fmt.Errorf("sharded run diverged from serial under budget churn (shards=%d)", c.Shards)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	for _, err := range results {
		if err != nil {
			t.Fatal(err)
		}
	}
}
