package sim

import (
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
)

// pbConfig returns a small-system Piggyback configuration matching the
// paper's adaptive-routing setup (baseline VC management, 4/2 VCs).
func pbConfig() config.Config {
	cfg := config.Small()
	cfg.Routing = routing.PB
	cfg.Sensing = routing.SensePerVC
	cfg.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
	cfg.WarmupCycles = 1500
	cfg.MeasureCycles = 4000
	return cfg
}

// TestPiggybackIdentifiesUniform checks that PB routes mostly minimally under
// uniform traffic at moderate load.
func TestPiggybackIdentifiesUniform(t *testing.T) {
	cfg := pbConfig()
	cfg.Traffic = config.TrafficUniform
	cfg.Load = 0.4
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("UN: %v", res)
	if res.Deadlock {
		t.Fatal("deadlock under UN with PB")
	}
	if res.MinimalFraction < 0.7 {
		t.Errorf("PB should route mostly minimally under UN; got %.2f minimal fraction", res.MinimalFraction)
	}
	if res.AcceptedLoad < 0.3 {
		t.Errorf("PB under UN accepted %.3f, expected close to offered 0.4", res.AcceptedLoad)
	}
}

// TestPiggybackIdentifiesAdversarial checks that PB diverts most traffic onto
// Valiant paths under adversarial traffic, sustaining throughput well above
// the minimal-routing collapse point.
func TestPiggybackIdentifiesAdversarial(t *testing.T) {
	cfg := pbConfig()
	cfg.Traffic = config.TrafficAdversarial
	cfg.Load = 0.35
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ADV: %v", res)
	if res.Deadlock {
		t.Fatal("deadlock under ADV with PB")
	}
	if res.MinimalFraction > 0.6 {
		t.Errorf("PB should divert most traffic under ADV; got %.2f minimal fraction", res.MinimalFraction)
	}
	// Under ADV+1 all minimal traffic of a group shares the single global
	// link to the next group, capping MIN routing at 1/(a*p) phits/node/
	// cycle. PB must clearly beat that collapse point by diverting traffic.
	minCollapse := 1.0 / float64(cfg.A*cfg.P)
	if res.AcceptedLoad < 1.5*minCollapse {
		t.Errorf("PB under ADV accepted %.3f, not clearly above the MIN collapse point %.3f", res.AcceptedLoad, minCollapse)
	}
}
