package sim

import (
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
)

// TestReactiveRequestReply checks that request-reply traffic flows without
// protocol deadlock for both the baseline and FlexVC VC managements.
func TestReactiveRequestReply(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"baseline 2/1+2/1", core.Scheme{Policy: core.Baseline, VCs: core.TwoClass(2, 1, 2, 1), Selection: core.JSQ}},
		{"flexvc 2/1+2/1", core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(2, 1, 2, 1), Selection: core.JSQ}},
		{"flexvc 4/3+2/1", core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(4, 3, 2, 1), Selection: core.JSQ}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.Small()
			cfg.Reactive = true
			cfg.Scheme = tc.scheme
			cfg.Load = 0.3
			cfg.WarmupCycles = 1000
			cfg.MeasureCycles = 3000
			res, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v", res)
			if res.Deadlock {
				t.Fatal("deadlock")
			}
			if res.ReplyPackets == 0 {
				t.Fatal("no replies delivered")
			}
			// Replies mirror requests, so accepted load should be roughly
			// twice the offered request load (ratio depends on saturation).
			if res.AcceptedLoad < 0.35 {
				t.Errorf("accepted %.3f too low for offered 0.3 requests + replies", res.AcceptedLoad)
			}
		})
	}
}
