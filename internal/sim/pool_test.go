package sim

import (
	"sync"
	"testing"

	"flexvc/internal/config"
)

// TestSetWorkerBudgetDuringRun resizes the worker budget while simulations
// are in flight. Before the budget moved behind an atomic pointer this was a
// data race (a serving daemon reconfiguring workers against running sweeps);
// the test fails under -race on the old implementation and also checks that
// every release pairs with its own pool (no token is lost or duplicated, so
// later acquisitions cannot deadlock).
func TestSetWorkerBudgetDuringRun(t *testing.T) {
	old := WorkerBudget()
	defer SetWorkerBudget(old)

	cfg := config.Tiny()
	cfg.Load = 0.2
	cfg.WarmupCycles = 50
	cfg.MeasureCycles = 200

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				if _, _, err := RunReplication(cfg, r); err != nil {
					t.Errorf("sim %d/%d: %v", i, r, err)
					return
				}
			}
		}(i)
	}
	for _, n := range []int{1, 3, 2, 4, 1, 2} {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			SetWorkerBudget(n)
			if got := WorkerBudget(); got < 1 {
				t.Errorf("budget %d after SetWorkerBudget(%d)", got, n)
			}
		}(n)
	}
	wg.Wait()

	// The final pool must still hand out exactly its capacity of tokens.
	SetWorkerBudget(2)
	r1 := acquireWorker()
	r2 := acquireWorker()
	r1()
	r2()
}
