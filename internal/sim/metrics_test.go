package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/obs"
	"flexvc/internal/routing"
)

// TestMetricsExcludedFromIdentity pins that the Metrics registry — like the
// shard knob — is an execution detail, not part of the experiment identity:
// the JSON form of a configuration (the input of results.Fingerprint,
// checkpoint keys and recorded exports) must not change when a registry is
// attached, or metered runs would orphan the checkpoints of unmetered ones.
func TestMetricsExcludedFromIdentity(t *testing.T) {
	plain := config.Small()
	metered := config.Small()
	metered.Metrics = obs.NewRegistry()
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(metered)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("Metrics leaks into the config JSON identity:\n plain:   %s\n metered: %s", a, b)
	}
}

// TestMeteredRunMatchesSerial is the result-level half of the zero-impact
// contract: a metered, sharded replication must produce exactly the result of
// an unmetered serial one — the instrumented stepping path (stepTimed) may
// add clock reads, never behaviour.
func TestMeteredRunMatchesSerial(t *testing.T) {
	cfg := config.Small()
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 800
	cfg.Shards = 1
	want, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2} {
		c := cfg
		c.Shards = shards
		c.Metrics = obs.NewRegistry()
		got, err := RunOne(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("metered run diverged from unmetered serial (shards=%d)", shards)
		}
		snap := c.Metrics.Snapshot()
		if snap.Counters[MetricCycles] == 0 {
			t.Errorf("shards=%d: no cycles recorded — instrumentation never ran", shards)
		}
		if snap.Histograms[MetricReplicationWall].Count != 1 {
			t.Errorf("shards=%d: replication wall histogram count = %d, want 1",
				shards, snap.Histograms[MetricReplicationWall].Count)
		}
		if shards > 1 {
			if _, ok := snap.Counters[fmt.Sprintf("%s{shard=%q}", MetricShardBusy, "0")]; !ok {
				t.Errorf("shards=%d: no per-shard busy series in snapshot", shards)
			}
			if _, ok := snap.Values[MetricShardImbalance]; !ok {
				t.Errorf("shards=%d: no imbalance ratio in snapshot", shards)
			}
		}
	}
}

// TestMetricsUnderShardedBudgetChurn is the -race proof for the metrics hot
// path: sharded metered replications hammer one shared registry from every
// stepping goroutine while the process-wide worker budget churns and scraper
// goroutines concurrently snapshot and render the registry — and every
// replication must still be bit-identical to the unmetered serial run.
func TestMetricsUnderShardedBudgetChurn(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	defer SetWorkerBudget(WorkerBudget())

	cfg := config.Small()
	cfg.Routing = routing.PAR
	cfg.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(5, 2), Selection: core.JSQ}
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 800
	cfg.Shards = 1
	want, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // budget churn
		defer aux.Done()
		size := 1
		for {
			select {
			case <-stop:
				return
			default:
				SetWorkerBudget(size%4 + 1)
				size++
			}
		}
	}()
	go func() { // concurrent scraper
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				_ = reg.WritePrometheus(&buf)
				_ = reg.Snapshot()
			}
		}
	}()

	const runs = 6
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cfg
			c.Shards = i%3 + 2 // 2, 3, 4 shards
			c.Metrics = reg
			got, err := RunOne(c)
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs[i] = fmt.Errorf("metered sharded run diverged from serial under budget churn (shards=%d)", c.Shards)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if n := reg.Counter(MetricReplications).Value(); n != runs {
		t.Errorf("registry counted %d replications, want %d", n, runs)
	}
}
