package sim

import (
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
)

// TestSmokeUniformMIN checks that the simulator moves traffic end to end with
// the baseline configuration on a small dragonfly.
func TestSmokeUniformMIN(t *testing.T) {
	cfg := config.Small()
	cfg.Load = 0.2
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatalf("RunOne: %v", err)
	}
	t.Logf("result: %v", res)
	if res.Deadlock {
		t.Fatalf("unexpected deadlock: %+v", res)
	}
	if res.DeliveredPackets == 0 {
		t.Fatalf("no packets delivered: %+v", res)
	}
	if res.AcceptedLoad < 0.15 {
		t.Errorf("accepted load %.3f far below offered 0.2", res.AcceptedLoad)
	}
	if res.AvgLatency <= 0 {
		t.Errorf("non-positive average latency %.1f", res.AvgLatency)
	}
}

// TestSmokeFlexVCValiantADV exercises FlexVC with Valiant routing under
// adversarial traffic.
func TestSmokeFlexVCValiantADV(t *testing.T) {
	cfg := config.Small()
	cfg.Traffic = config.TrafficAdversarial
	cfg.Routing = routing.VAL
	cfg.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
	cfg.Load = 0.2
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2000
	res, err := RunOne(cfg)
	if err != nil {
		t.Fatalf("RunOne: %v", err)
	}
	t.Logf("result: %v", res)
	if res.Deadlock || res.DeliveredPackets == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.AcceptedLoad < 0.1 {
		t.Errorf("accepted load %.3f too low for offered 0.2", res.AcceptedLoad)
	}
}
