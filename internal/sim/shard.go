package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

// This file implements intra-replication parallelism: the router-stepping
// phase of Network.Step runs across several goroutines, each owning a
// contiguous block ("shard") of router IDs, with bit-identical results.
//
// Why the stepping phase parallelizes exactly
//
// Within one cycle, Step is a sequence of phases: processEvents, inject and
// pb.Update run serially; only the router-stepping pass is sharded. During
// that pass the mutable state a router touches is disjoint per router except
// for one structure:
//
//   - Input-queue state (Head/Dequeue) of a router's own input buffers is
//     touched only by that router; Enqueue happens in the serial phases.
//   - Credit counters of an input buffer are written (Reserve, at grant time)
//     and read (FreeFor, congestion probes) only by the unique upstream
//     neighbor router of that buffer's link — links are point-to-point, so
//     writer and reader are the same router. Credit returns (ReleaseCredit)
//     happen in the serial event phase.
//   - PAR/PB congestion probes read only the prober's own output ports'
//     downstream buffers, i.e. exactly the counters that router alone writes.
//     The PB saturation table is published in pb.Update, which is serial.
//   - The per-router PRNG, allocation scratch and VC-plan caches are private;
//     the routing algorithms, topology tables and core.Manager are immutable
//     during a run (verified: routing is stateless per packet, route tables
//     are precomputed before stepping begins).
//
// The single shared structure is the event wheel: routers schedule arrivals,
// credit returns and deliveries, and a wheel slot's append order determines
// the order processEvents later replays them, which in turn fixes FIFO
// enqueue order and therefore results. The serial loop appends in ascending
// router-ID order. Sharding preserves that order without locks by buffering:
// each shard's Schedule* calls append to a private pending list (routers
// inside a shard are stepped in ascending ID order, so the list is ordered),
// and after all shards join, the lists are flushed into the wheel in
// ascending shard order — shards are contiguous ascending ID blocks, so the
// wheel sees exactly the serial append order. Hence sharded and serial runs
// are bit-identical by construction, not just in expectation; the
// equivalence tests in shard_test.go and the recorded-experiment
// verification (`figures check`) hold that line.

// shardState is one contiguous block of routers plus its private buffer of
// events scheduled while stepping the block. It implements router.Env for the
// routers of its block: downstream lookups delegate to the network's
// immutable wiring cache, Schedule* calls are buffered until the flush phase.
type shardState struct {
	n      *Network
	lo, hi int // router ID range [lo, hi)
	pend   []pendEvent
}

// pendEvent is one buffered wheel insertion: the event plus the delay it was
// scheduled with. The absolute due cycle is resolved at flush time (Network.now
// is frozen during the stepping phase, so buffering does not shift timing).
type pendEvent struct {
	delay int64
	ev    event
}

// DownstreamInput implements router.Env (immutable wiring, safe to share).
func (s *shardState) DownstreamInput(r packet.RouterID, port int) *buffer.InputBuffer {
	return s.n.downInput[r][port]
}

// ScheduleArrival implements router.Env, buffering into the shard.
func (s *shardState) ScheduleArrival(delay int64, to packet.RouterID, port, vc int, ref packet.Ref, kind packet.RouteKind) {
	s.pend = append(s.pend, pendEvent{delay, event{kind: evArrival, router: to, port: port, vc: vc, ref: ref, rkind: kind}})
}

// ScheduleCredit implements router.Env, buffering into the shard.
func (s *shardState) ScheduleCredit(delay int64, buf *buffer.InputBuffer, vc, size int, kind packet.RouteKind) {
	s.pend = append(s.pend, pendEvent{delay, event{kind: evCredit, buf: buf, vc: vc, size: size, rkind: kind}})
}

// ScheduleDelivery implements router.Env, buffering into the shard.
func (s *shardState) ScheduleDelivery(delay int64, ref packet.Ref) {
	s.pend = append(s.pend, pendEvent{delay, event{kind: evDelivery, ref: ref}})
}

// flush replays the shard's buffered events into the wheel, preserving their
// order. Called serially, in ascending shard order, after every shard joined.
func (s *shardState) flush() {
	for i := range s.pend {
		s.n.wheel.schedule(s.n.now, s.pend[i].delay, s.pend[i].ev)
	}
	s.pend = s.pend[:0]
}

// autoShardMinRouters is the minimum number of routers per shard the auto
// heuristic (Shards = 0) aims for: below ~32 routers of work per goroutine
// the per-cycle fork/join overhead outweighs the parallelism, so small
// networks stay serial and medium/paper scales fan out.
const autoShardMinRouters = 32

// shardPlan resolves the configured shard count against a topology: the
// effective count and the router-block alignment. Shards are contiguous
// ascending router-ID blocks; on the Dragonfly the blocks align to whole
// groups (router IDs are group-major), which keeps the all-to-all local
// traffic of a group inside one shard. An explicit Shards >= 2 is honoured up
// to the number of alignment units; Shards == 0 derives a count from
// GOMAXPROCS, capped so every shard keeps at least autoShardMinRouters
// routers of work.
func shardPlan(cfg config.Config, topo topology.Topology) (count, align int) {
	align = 1
	if df, ok := topo.(*topology.Dragonfly); ok {
		align = topo.NumRouters() / df.NumGroups() // A routers per group
	}
	units := topo.NumRouters() / align
	s := cfg.Shards
	if s == 0 {
		s = runtime.GOMAXPROCS(0)
		if limit := topo.NumRouters() / autoShardMinRouters; s > limit {
			s = limit
		}
	}
	if s > units {
		s = units
	}
	if s < 1 {
		s = 1
	}
	return s, align
}

// buildShards wires the sharded stepping path: it partitions the routers into
// `count` contiguous blocks of whole alignment units (sizes differ by at most
// one unit) and re-points each router's environment at its shard so Schedule*
// calls are buffered per shard. With count <= 1 it leaves the serial path
// untouched: routers keep the Network itself as their environment and Step
// takes the exact pre-sharding code path.
func (n *Network) buildShards(count, align int, sc *scratch) {
	if count <= 1 {
		return
	}
	units := len(n.routers) / align
	n.shards = make([]*shardState, count)
	lo := 0
	for i := 0; i < count; i++ {
		u := units / count
		if i < units%count {
			u++
		}
		hi := lo + u*align
		if i == count-1 {
			hi = len(n.routers)
		}
		sh := &shardState{n: n, lo: lo, hi: hi}
		if sc != nil {
			sh.pend = sc.takePend()
		}
		n.shards[i] = sh
		for r := lo; r < hi; r++ {
			n.routers[r].SetEnv(sh)
		}
		lo = hi
	}
	n.shardSlots = count
}

// Shards reports how many shards the network's cycle loop uses (1 = serial).
func (n *Network) Shards() int {
	if len(n.shards) == 0 {
		return 1
	}
	return len(n.shards)
}

// acquireShardSlots borrows up to shards-1 extra tokens from the process-wide
// worker budget (non-blocking — the replication already holds one token, so
// blocking here could deadlock a fully subscribed budget) and sets the number
// of goroutines the stepping phase may use to 1 + the extras obtained. It
// returns the release function. Results do not depend on how many slots were
// obtained: fewer slots only means one goroutine steps several shards in
// sequence, and the flush order is fixed by shard index either way.
func (n *Network) acquireShardSlots() func() {
	if len(n.shards) <= 1 {
		return func() {}
	}
	releases := make([]func(), 0, len(n.shards)-1)
	for i := 1; i < len(n.shards); i++ {
		rel, ok := tryAcquireWorker()
		if !ok {
			break
		}
		releases = append(releases, rel)
	}
	n.shardSlots = 1 + len(releases)
	return func() {
		n.shardSlots = len(n.shards)
		for _, rel := range releases {
			rel()
		}
	}
}

// stepSharded runs the router-stepping phase across the shards and merges the
// buffered events back into the wheel in ascending shard order. Shard indexes
// are claimed from an atomic counter: the caller's goroutine participates, and
// up to shardSlots-1 helpers join, so a starved worker budget degrades to the
// caller stepping every shard itself — same results, less parallelism.
//
// With a metrics registry attached the cycle loop runs stepShardedTimed (in
// metrics.go) instead; this body stays closure-free so the metrics-off path
// keeps its exact pre-observability instruction stream and allocation count
// (gated by BenchmarkSmokeSweepSharded).
func (n *Network) stepSharded() {
	workers := n.shardSlots
	if workers > len(n.shards) {
		workers = len(n.shards)
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(n.shards) {
					return
				}
				sh := n.shards[i]
				n.stepBlock(sh.lo, sh.hi)
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= len(n.shards) {
			break
		}
		sh := n.shards[i]
		n.stepBlock(sh.lo, sh.hi)
	}
	wg.Wait()
	for _, sh := range n.shards {
		sh.flush()
	}
}
