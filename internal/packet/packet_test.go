package packet

import "testing"

func TestPacketBasics(t *testing.T) {
	p := New(42, 3, 9, 8, Request, 100)
	if p.ID != 42 || p.Src != 3 || p.Dst != 9 || p.Size != 8 || p.Class != Request || p.GenTime != 100 {
		t.Fatal("constructor fields broken")
	}
	if p.Route.Kind != Minimal || p.Route.Phase != PhaseToDestination || p.Route.InputVC != -1 {
		t.Fatal("route state defaults broken")
	}
	if p.Route.Intermediate != InvalidRouter {
		t.Fatal("intermediate default broken")
	}
	p.InjectTime = 110
	p.RecvTime = 250
	if p.Latency() != 150 || p.NetworkLatency() != 140 {
		t.Fatal("latency helpers broken")
	}
	if p.String() == "" {
		t.Fatal("empty string form")
	}
}

func TestRouteStateReset(t *testing.T) {
	p := New(1, 0, 1, 8, Reply, 0)
	p.Route.Kind = Nonminimal
	p.Route.Phase = PhaseToIntermediate
	p.Route.Intermediate = 7
	p.Route.LocalHops = 3
	p.Route.GlobalHops = 2
	p.Route.InputVC = 4
	p.Route.AdaptiveDecided = true
	p.Route.Reset()
	if p.Route.Kind != Minimal || p.Route.Phase != PhaseToDestination ||
		p.Route.Intermediate != InvalidRouter || p.Route.LocalHops != 0 ||
		p.Route.GlobalHops != 0 || p.Route.InputVC != -1 || p.Route.AdaptiveDecided {
		t.Fatalf("Reset left state behind: %+v", p.Route)
	}
}

func TestStringers(t *testing.T) {
	if Request.String() != "request" || Reply.String() != "reply" {
		t.Error("Class.String broken")
	}
	if Class(9).String() == "" {
		t.Error("unknown class should still stringify")
	}
	if Minimal.String() != "minimal" || Nonminimal.String() != "nonminimal" {
		t.Error("RouteKind.String broken")
	}
	if NumClasses != 2 {
		t.Error("NumClasses should be 2")
	}
}
