package packet

import (
	"strings"
	"testing"
)

func TestStoreAllocBasics(t *testing.T) {
	s := NewStore()
	ref := s.Alloc(42, 3, 9, 8, Request, 100)
	h := s.Hdr(ref)
	if h.ID != 42 || h.Src != 3 || h.Dst != 9 || h.Size != 8 || h.Class != Request {
		t.Fatal("header fields broken")
	}
	if h.SrcRouter != InvalidRouter || h.DstRouter != InvalidRouter {
		t.Fatal("endpoint routers should start invalid")
	}
	if s.Times(ref).Gen != 100 {
		t.Fatal("gen time broken")
	}
	r := s.Route(ref)
	if r.Kind != Minimal || r.Phase != PhaseToDestination || r.InputVC != -1 {
		t.Fatal("route state defaults broken")
	}
	if r.Intermediate != InvalidRouter {
		t.Fatal("intermediate default broken")
	}
	s.Times(ref).Inject = 110
	s.Times(ref).Recv = 250
	if s.Latency(ref) != 150 || s.NetworkLatency(ref) != 140 {
		t.Fatal("latency helpers broken")
	}
	if !strings.Contains(s.Describe(ref), "id=42") {
		t.Fatalf("Describe broken: %s", s.Describe(ref))
	}
}

func TestStoreRecycling(t *testing.T) {
	s := NewStore()
	a := s.Alloc(1, 0, 1, 8, Request, 0)
	b := s.Alloc(2, 1, 2, 8, Request, 0)
	if a == b {
		t.Fatal("distinct live packets share a ref")
	}
	if s.Slots() != 2 || s.InUse() != 2 {
		t.Fatalf("Slots/InUse broken: %d/%d", s.Slots(), s.InUse())
	}
	s.Free(b)
	if s.InUse() != 1 {
		t.Fatalf("InUse after free: %d", s.InUse())
	}
	c := s.Alloc(3, 2, 3, 8, Reply, 7)
	if c != b {
		t.Fatalf("free-list should recycle the last freed index: got %d want %d", c, b)
	}
	// The recycled slot must be fully re-initialised.
	h, r := s.Hdr(c), s.Route(c)
	if h.ID != 3 || h.Class != Reply || r.Kind != Minimal || r.InputVC != -1 || s.ReplyTo(c) != NilRef {
		t.Fatal("recycled slot not reset")
	}
	news, reuses := s.Stats()
	if news != 2 || reuses != 1 {
		t.Fatalf("stats: news=%d reuses=%d", news, reuses)
	}
}

func TestStoreReplyLink(t *testing.T) {
	s := NewStore()
	req := s.Alloc(1, 0, 1, 8, Request, 0)
	rep := s.Alloc(2, 1, 0, 8, Reply, 5)
	s.SetReplyTo(rep, req)
	if s.ReplyTo(rep) != req {
		t.Fatal("reply link broken")
	}
	s.Free(rep)
	// Free must clear the link so a recycled slot carries no stale retain.
	rep2 := s.Alloc(3, 1, 0, 8, Reply, 6)
	if rep2 != rep || s.ReplyTo(rep2) != NilRef {
		t.Fatal("reply link survived recycling")
	}
	_ = req
}

func TestStoreReset(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Alloc(uint64(i), 0, 1, 8, Request, 0)
	}
	s.Free(3)
	s.Reset()
	if s.Slots() != 0 || s.InUse() != 0 {
		t.Fatal("Reset left slots behind")
	}
	news, reuses := s.Stats()
	if news != 0 || reuses != 0 {
		t.Fatal("Reset left counters behind")
	}
	ref := s.Alloc(1, 0, 1, 8, Request, 0)
	if ref != 0 {
		t.Fatalf("post-Reset alloc should restart at slot 0, got %d", ref)
	}
}

func TestRouteStateReset(t *testing.T) {
	s := NewStore()
	ref := s.Alloc(1, 0, 1, 8, Reply, 0)
	r := s.Route(ref)
	r.Kind = Nonminimal
	r.Phase = PhaseToIntermediate
	r.Intermediate = 7
	r.LocalHops = 3
	r.GlobalHops = 2
	r.InputVC = 4
	r.AdaptiveDecided = true
	r.Reset()
	if r.Kind != Minimal || r.Phase != PhaseToDestination ||
		r.Intermediate != InvalidRouter || r.LocalHops != 0 ||
		r.GlobalHops != 0 || r.InputVC != -1 || r.AdaptiveDecided {
		t.Fatalf("Reset left state behind: %+v", *r)
	}
}

func TestStringers(t *testing.T) {
	if Request.String() != "request" || Reply.String() != "reply" {
		t.Error("Class.String broken")
	}
	if Class(9).String() == "" {
		t.Error("unknown class should still stringify")
	}
	if Minimal.String() != "minimal" || Nonminimal.String() != "nonminimal" {
		t.Error("RouteKind.String broken")
	}
	if NumClasses != 2 {
		t.Error("NumClasses should be 2")
	}
	if s := (&Store{}).Describe(NilRef); s != "pkt{nil}" {
		t.Errorf("NilRef describe: %s", s)
	}
}
