package packet

import "testing"

// BenchmarkPacketStore measures the steady-state packet lifecycle on the SoA
// store: free one slot, recycle it through Alloc, and touch the header, route
// and timestamp arrays the way the simulator's hot path does. At steady state
// (the in-flight ring is warmed before the timer starts) every allocation is
// an index recycle, so the gate pins allocs/op at zero — the whole point of
// the arena layout.
func BenchmarkPacketStore(b *testing.B) {
	st := NewStore()
	var ring [64]Ref
	for i := range ring {
		ring[i] = st.Alloc(uint64(i), 0, 1, 8, Request, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 63
		st.Free(ring[j])
		ref := st.Alloc(uint64(i), 0, 1, 8, Request, int64(i))
		hdr := st.Hdr(ref)
		hdr.SrcRouter = 0
		hdr.DstRouter = 1
		st.Times(ref).Inject = int64(i)
		st.Route(ref).Hops++
		ring[j] = ref
	}
}
