package packet

import "fmt"

// Ref is a dense index into a Store — the simulator's 4-byte handle to a
// packet. Queues, rings, event buffers and allocator plans hold Refs instead
// of pointers: entries shrink, the packet graph holds no GC-visible pointers,
// and resolving a Ref is one bounds-checked array index into flat storage.
type Ref uint32

// NilRef is the "no packet" sentinel.
const NilRef Ref = ^Ref(0)

// Store is the structure-of-arrays packet arena of one simulated network. A
// packet is a slot shared by four parallel flat arrays, split by access
// pattern:
//
//   - hdr: the immutable header (endpoints, size, class, ID) — hot reads in
//     the router stepping phase;
//   - route: the mutable routing state — the hottest array, updated at every
//     hop;
//   - times: lifecycle timestamps — written thrice, read at delivery;
//   - replyTo: the request a reply retains (reactive traffic only).
//
// Freed slots recycle through an index free-list (LIFO), so a run at steady
// state allocates nothing per packet and the arrays grow to the peak
// in-flight population once (amortised doubling), instead of one heap object
// per packet. A Store is NOT safe for concurrent mutation — each network
// instance (one replication) owns exactly one; the sharded cycle loop only
// reads and writes disjoint slots from different shards (each resident
// packet belongs to exactly one router).
//
// Refs are only valid between Alloc and Free of their slot. The store can
// reissue a Ref immediately after Free; long-lived caches must therefore key
// on (Ref, ID) — see router's plan cache. Pointers returned by Hdr, Route
// and Times are invalidated by the next Alloc (the arrays may grow); they
// must not be retained across allocation points.
type Store struct {
	hdr     []Header
	route   []RouteState
	times   []Times
	replyTo []Ref

	free []Ref

	// news and reuses count fresh slots and recycled ones, for tests and
	// capacity diagnostics.
	news, reuses int64

	// live, when non-nil (poison mode), tracks slot liveness so every
	// accessor can detect a use-after-free instead of silently reading
	// recycled state. Enabled only by tests — the nil check is the hot
	// path's whole cost when disabled.
	live []bool
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Alloc takes a slot (recycling a freed index when available), initialises
// the header and timestamps, and resets the routing state. The endpoint
// routers are left at InvalidRouter; traffic generation fills them via Hdr
// right after.
func (s *Store) Alloc(id uint64, src, dst NodeID, size int, class Class, genTime int64) Ref {
	var ref Ref
	if n := len(s.free); n > 0 {
		ref = s.free[n-1]
		s.free = s.free[:n-1]
		s.reuses++
	} else {
		ref = Ref(len(s.hdr))
		s.hdr = append(s.hdr, Header{})
		s.route = append(s.route, RouteState{})
		s.times = append(s.times, Times{})
		s.replyTo = append(s.replyTo, NilRef)
		if s.live != nil {
			s.live = append(s.live, false)
		}
		s.news++
	}
	s.hdr[ref] = Header{
		ID: id, Src: src, Dst: dst,
		SrcRouter: InvalidRouter, DstRouter: InvalidRouter,
		Size: int32(size), Class: class,
	}
	s.times[ref] = Times{Gen: genTime}
	s.route[ref].Reset()
	s.replyTo[ref] = NilRef
	if s.live != nil {
		s.live[ref] = true
	}
	return ref
}

// Free recycles a slot. The caller must guarantee no live Ref remains (the
// packet has been delivered and any retaining reply has been delivered too).
// In poison mode the slot's state is scrambled so a stale read through a
// leaked pointer is loud too.
func (s *Store) Free(ref Ref) {
	if ref == NilRef {
		return
	}
	if s.live != nil {
		s.check(ref)
		s.live[ref] = false
		// Poison the slot: impossible values that fail fast if consumed.
		s.hdr[ref] = Header{ID: ^uint64(0), Src: InvalidNode, Dst: InvalidNode,
			SrcRouter: InvalidRouter, DstRouter: InvalidRouter, Size: -1}
		s.route[ref] = RouteState{Intermediate: InvalidRouter, InputVC: -2, Hops: -1}
		s.times[ref] = Times{Gen: -1, Inject: -1, Recv: -1}
	}
	s.replyTo[ref] = NilRef
	s.free = append(s.free, ref)
}

// Hdr returns the header of a live packet. The pointer is invalidated by the
// next Alloc.
func (s *Store) Hdr(ref Ref) *Header {
	if s.live != nil {
		s.check(ref)
	}
	return &s.hdr[ref]
}

// Route returns the mutable routing state of a live packet. The pointer is
// invalidated by the next Alloc.
func (s *Store) Route(ref Ref) *RouteState {
	if s.live != nil {
		s.check(ref)
	}
	return &s.route[ref]
}

// Times returns the lifecycle timestamps of a live packet. The pointer is
// invalidated by the next Alloc.
func (s *Store) Times(ref Ref) *Times {
	if s.live != nil {
		s.check(ref)
	}
	return &s.times[ref]
}

// ReplyTo returns the request this reply retains, or NilRef.
func (s *Store) ReplyTo(ref Ref) Ref {
	if s.live != nil {
		s.check(ref)
	}
	return s.replyTo[ref]
}

// SetReplyTo links a reply to the request it retains.
func (s *Store) SetReplyTo(ref, req Ref) {
	if s.live != nil {
		s.check(ref)
	}
	s.replyTo[ref] = req
}

// Latency returns the end-to-end packet latency in cycles, valid once the
// packet has been delivered.
func (s *Store) Latency(ref Ref) int64 {
	t := s.Times(ref)
	return t.Recv - t.Gen
}

// NetworkLatency returns the latency excluding source queueing, valid once
// the packet has been delivered.
func (s *Store) NetworkLatency(ref Ref) int64 {
	t := s.Times(ref)
	return t.Recv - t.Inject
}

// Slots returns the number of slots the store has ever grown to (live +
// free), i.e. the peak in-flight population so far.
func (s *Store) Slots() int { return len(s.hdr) }

// InUse returns the number of live (allocated, unfreed) slots.
func (s *Store) InUse() int { return len(s.hdr) - len(s.free) }

// Stats reports (fresh slots, recycled allocations) since the store was
// created or last Reset.
func (s *Store) Stats() (news, reuses int64) { return s.news, s.reuses }

// Reset forgets every packet but keeps the arrays' capacity, so a recycled
// store (see sim's per-replication scratch pool) starts its next replication
// with zero per-packet allocations. Counters restart too.
func (s *Store) Reset() {
	s.hdr = s.hdr[:0]
	s.route = s.route[:0]
	s.times = s.times[:0]
	s.replyTo = s.replyTo[:0]
	s.free = s.free[:0]
	s.news, s.reuses = 0, 0
	if s.live != nil {
		s.live = s.live[:0]
	}
}

// EnablePoison turns on use-after-free detection: every accessor panics on a
// freed or out-of-range Ref, and Free scrambles the slot. Meant for tests;
// it must be called before the first Alloc.
func (s *Store) EnablePoison() {
	if len(s.hdr) != 0 {
		panic("packet: EnablePoison after Alloc")
	}
	s.live = make([]bool, 0, 64)
}

// check panics on a dangling Ref (poison mode only).
func (s *Store) check(ref Ref) {
	if int(ref) >= len(s.live) || !s.live[ref] {
		panic(fmt.Sprintf("packet: use of dead ref %d (slots=%d)", ref, len(s.hdr)))
	}
}

// Describe formats a packet for debugging.
func (s *Store) Describe(ref Ref) string {
	if ref == NilRef {
		return "pkt{nil}"
	}
	h, r := &s.hdr[ref], &s.route[ref]
	return fmt.Sprintf("pkt{ref=%d id=%d %s %s %d->%d size=%d hops=%d}",
		ref, h.ID, h.Class, r.Kind, h.Src, h.Dst, h.Size, r.Hops)
}
