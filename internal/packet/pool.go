package packet

// Pool is a free-list of packets owned by one simulated network. A cycle-level
// run at saturation creates and destroys millions of short-lived packets;
// recycling them through a free-list removes the dominant steady-state
// allocation of the simulator. A Pool is NOT safe for concurrent use — each
// network instance (one replication) owns exactly one and runs on a single
// goroutine.
//
// A nil *Pool is valid and falls back to plain allocation, so components that
// may run without a simulator (tests, stand-alone generators) need no special
// casing.
type Pool struct {
	free []*Packet
	// news and reuses count allocations and recycled packets, for tests and
	// capacity diagnostics.
	news, reuses int64
}

// Get returns an initialised packet, reusing a recycled one when available.
// It is the pooled equivalent of New.
func (p *Pool) Get(id uint64, src, dst NodeID, size int, class Class, genTime int64) *Packet {
	if p == nil || len(p.free) == 0 {
		if p != nil {
			p.news++
		}
		return New(id, src, dst, size, class, genTime)
	}
	n := len(p.free) - 1
	pkt := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	p.reuses++
	*pkt = Packet{ID: id, Src: src, Dst: dst, Size: size, Class: class, GenTime: genTime}
	pkt.Route.Reset()
	return pkt
}

// Put recycles a packet the simulator has finished with. The caller must
// guarantee no live reference remains (the packet has been delivered and any
// retaining reply has been delivered too).
func (p *Pool) Put(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	pkt.ReplyTo = nil
	p.free = append(p.free, pkt)
}

// Stats reports (allocated, reused) counts since the pool was created.
func (p *Pool) Stats() (news, reuses int64) {
	if p == nil {
		return 0, 0
	}
	return p.news, p.reuses
}
