package buffer

import (
	"testing"

	"flexvc/internal/packet"
)

// BenchmarkInputBufferCycle measures the steady-state cost of the credit-flow
// hot path on a statically partitioned port: reserve, enqueue, head, dequeue
// and credit release for one packet.
func BenchmarkInputBufferCycle(b *testing.B) {
	buf := NewInputBuffer(StaticConfig(4, 64))
	st := packet.NewStore()
	ref := st.Alloc(1, 0, 1, 8, packet.Request, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vc := i & 3
		if !buf.Reserve(vc, 8, packet.Minimal) {
			b.Fatal("reserve failed")
		}
		buf.Enqueue(vc, ref, 0, packet.Minimal)
		if buf.Head(vc, 0) == packet.NilRef {
			b.Fatal("head not ready")
		}
		buf.Dequeue(vc)
		buf.ReleaseCredit(vc, 8, packet.Minimal)
	}
}

// BenchmarkInputBufferDAMQCycle is the same loop over a DAMQ port, which
// additionally exercises the shared-pool accounting.
func BenchmarkInputBufferDAMQCycle(b *testing.B) {
	buf := NewInputBuffer(DAMQConfig(4, 256, 0.75))
	st := packet.NewStore()
	ref := st.Alloc(1, 0, 1, 8, packet.Request, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vc := i & 3
		if !buf.Reserve(vc, 8, packet.Nonminimal) {
			b.Fatal("reserve failed")
		}
		buf.Enqueue(vc, ref, 0, packet.Nonminimal)
		buf.Dequeue(vc)
		buf.ReleaseCredit(vc, 8, packet.Nonminimal)
	}
}

// BenchmarkInputBufferDeepQueue interleaves enqueues and dequeues with several
// resident packets per VC, the regime where FIFO reslicing used to reallocate.
func BenchmarkInputBufferDeepQueue(b *testing.B) {
	buf := NewInputBuffer(StaticConfig(2, 256))
	st := packet.NewStore()
	ref := st.Alloc(1, 0, 1, 8, packet.Request, 0)
	for i := 0; i < 8; i++ {
		buf.Reserve(i&1, 8, packet.Minimal)
		buf.Enqueue(i&1, ref, 0, packet.Minimal)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vc := i & 1
		buf.Reserve(vc, 8, packet.Minimal)
		buf.Enqueue(vc, ref, 0, packet.Minimal)
		buf.Dequeue(vc)
		buf.ReleaseCredit(vc, 8, packet.Minimal)
	}
}

// BenchmarkOutputBufferCycle measures the staging-buffer push/head/pop path.
func BenchmarkOutputBufferCycle(b *testing.B) {
	out := NewOutputBuffer(64)
	st := packet.NewStore()
	ref := st.Alloc(1, 0, 1, 8, packet.Request, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Push(ref, 8, 0, packet.Minimal, 0)
		if p, _, _, _ := out.Head(0); p == packet.NilRef {
			b.Fatal("head not ready")
		}
		out.Pop()
	}
}
