package buffer

import (
	"fmt"

	"flexvc/internal/packet"
)

// outEntry is a packet staged in an output buffer together with the
// downstream VC it has already been assigned and the routing kind recorded at
// reservation time (needed to release the matching credit class later). The
// packet size is copied in so occupancy accounting never resolves the ref.
type outEntry struct {
	ready  int64
	ref    packet.Ref
	size   int32
	destVC int32
	kind   packet.RouteKind
}

// OutputBuffer models the small per-output-port staging buffer of a combined
// input-output buffered router. Packets are moved into it by the crossbar
// (possibly faster than link rate when the router has internal speedup) and
// drained onto the link at one phit per cycle.
type OutputBuffer struct {
	capacity  int // phits
	committed int
	queue     ring[outEntry]
	peak      int
}

// NewOutputBuffer builds an output buffer with the given capacity in phits.
func NewOutputBuffer(capacity int) *OutputBuffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: output buffer capacity must be positive, got %d", capacity))
	}
	return &OutputBuffer{capacity: capacity}
}

// Capacity returns the buffer capacity in phits.
func (o *OutputBuffer) Capacity() int { return o.capacity }

// Free returns the free space in phits.
func (o *OutputBuffer) Free() int { return o.capacity - o.committed }

// CanAccept reports whether a packet of the given size fits.
func (o *OutputBuffer) CanAccept(size int) bool { return o.Free() >= size }

// Push stages a packet of `size` phits heading to destVC of the downstream
// port. ready is the cycle at which the packet may start leaving on the link.
func (o *OutputBuffer) Push(ref packet.Ref, size, destVC int, kind packet.RouteKind, ready int64) {
	if !o.CanAccept(size) {
		panic(fmt.Sprintf("buffer: output buffer overflow pushing %d phits into %d free", size, o.Free()))
	}
	o.committed += size
	if o.committed > o.peak {
		o.peak = o.committed
	}
	o.queue.push(outEntry{ref: ref, size: int32(size), destVC: int32(destVC), kind: kind, ready: ready})
}

// Head returns the head packet, its size, its assigned downstream VC and
// routing kind, if it is ready at the given cycle. It returns NilRef when the
// buffer is empty or the head is not ready yet.
func (o *OutputBuffer) Head(now int64) (ref packet.Ref, size, destVC int, kind packet.RouteKind) {
	if o.queue.len() == 0 {
		return packet.NilRef, 0, -1, packet.Minimal
	}
	e := o.queue.front()
	if e.ready > now {
		return packet.NilRef, 0, -1, packet.Minimal
	}
	return e.ref, int(e.size), int(e.destVC), e.kind
}

// Pop removes the head packet and frees its space.
func (o *OutputBuffer) Pop() packet.Ref {
	if o.queue.len() == 0 {
		panic("buffer: pop from empty output buffer")
	}
	e := o.queue.pop()
	o.committed -= int(e.size)
	return e.ref
}

// Len returns the number of staged packets.
func (o *OutputBuffer) Len() int { return o.queue.len() }

// Committed returns the occupied space in phits.
func (o *OutputBuffer) Committed() int { return o.committed }

// Peak returns the highest occupancy observed in phits.
func (o *OutputBuffer) Peak() int { return o.peak }
