package buffer

import (
	"strings"
	"testing"
)

// TestOrganizationRoundTrip exhaustively round-trips every buffer
// organisation through its textual form, so campaign specs can name either
// and a renamed String() cannot silently diverge from the parser.
func TestOrganizationRoundTrip(t *testing.T) {
	if len(Organizations) != 2 {
		t.Fatalf("Organizations has %d entries; update this test alongside new organisations", len(Organizations))
	}
	for _, o := range Organizations {
		got, err := ParseOrganization(o.String())
		if err != nil || got != o {
			t.Errorf("ParseOrganization(%q) = %v, %v; want %v", o.String(), got, err, o)
		}
	}
	if _, err := ParseOrganization("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("ParseOrganization(bogus) err = %v, want an error naming the input", err)
	}
}
