package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexvc/internal/packet"
)

func TestConfigValidation(t *testing.T) {
	if err := StaticConfig(2, 16).Validate(); err != nil {
		t.Errorf("valid static config rejected: %v", err)
	}
	if err := DAMQConfig(2, 32, 0.75).Validate(); err != nil {
		t.Errorf("valid DAMQ config rejected: %v", err)
	}
	bad := []Config{
		{Org: Static, NumVCs: 0, CapacityPerVC: 16},
		{Org: Static, NumVCs: 2, CapacityPerVC: -1},
		{Org: Static, NumVCs: 2, CapacityPerVC: 16, Shared: 8},
		{Org: DAMQ, NumVCs: 2, CapacityPerVC: 0, Shared: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %v", i, c)
		}
	}
	if got := DAMQConfig(2, 32, 0.75).TotalCapacity(); got != 32 {
		t.Errorf("DAMQ total capacity %d, want 32 (iso-memory with static)", got)
	}
	if got := DAMQConfig(2, 32, 0).CapacityPerVC; got != 0 {
		t.Errorf("0%% private DAMQ should have no private space, got %d", got)
	}
	if got := DAMQConfig(2, 32, 1.5).Shared; got != 0 {
		t.Errorf("clamped private fraction should leave no shared space, got %d", got)
	}
}

func TestStaticReserveRelease(t *testing.T) {
	b := NewInputBuffer(StaticConfig(2, 16))
	if b.FreeFor(0) != 16 || b.FreeFor(1) != 16 {
		t.Fatal("fresh buffer should be empty")
	}
	if !b.Reserve(0, 8, packet.Minimal) || !b.Reserve(0, 8, packet.Nonminimal) {
		t.Fatal("two packets of 8 phits must fit in a 16-phit VC")
	}
	if b.Reserve(0, 8, packet.Minimal) {
		t.Fatal("third packet must not fit")
	}
	if b.FreeFor(1) != 16 {
		t.Fatal("static VCs must not share space")
	}
	if b.CommittedOf(0) != 16 || b.MinCommittedOf(0) != 8 {
		t.Fatalf("committed=%d minCommitted=%d", b.CommittedOf(0), b.MinCommittedOf(0))
	}
	b.ReleaseCredit(0, 8, packet.Minimal)
	if b.CommittedOf(0) != 8 || b.MinCommittedOf(0) != 0 {
		t.Fatalf("after release: committed=%d minCommitted=%d", b.CommittedOf(0), b.MinCommittedOf(0))
	}
	b.ReleaseCredit(0, 8, packet.Nonminimal)
	if !b.Empty() {
		t.Fatal("buffer should be empty after releasing everything")
	}
}

func TestDAMQSharedPool(t *testing.T) {
	// 2 VCs, 8 phits private each, 16 shared.
	b := NewInputBuffer(Config{Org: DAMQ, NumVCs: 2, CapacityPerVC: 8, Shared: 16})
	if b.FreeFor(0) != 24 {
		t.Fatalf("VC0 should see private+shared = 24 free, got %d", b.FreeFor(0))
	}
	// Fill VC0 with three packets: 8 private + 16 shared.
	for i := 0; i < 3; i++ {
		if !b.Reserve(0, 8, packet.Minimal) {
			t.Fatalf("packet %d should fit in VC0", i)
		}
	}
	if b.FreeFor(0) != 0 {
		t.Fatalf("VC0 should be exhausted, free=%d", b.FreeFor(0))
	}
	// VC1 still has its private reservation even though the pool is gone.
	if b.FreeFor(1) != 8 {
		t.Fatalf("VC1 should keep its 8 private phits, got %d", b.FreeFor(1))
	}
	if !b.Reserve(1, 8, packet.Nonminimal) {
		t.Fatal("VC1's private space must still accept a packet")
	}
	if b.Reserve(1, 8, packet.Nonminimal) {
		t.Fatal("nothing left anywhere")
	}
	// Releasing from VC0 returns shared space first.
	b.ReleaseCredit(0, 8, packet.Minimal)
	if b.FreeFor(1) != 8 {
		t.Fatalf("released shared space should be visible to VC1, got %d", b.FreeFor(1))
	}
	if b.TotalCommitted() != 24 || b.TotalMinCommitted() != 16 {
		t.Fatalf("totals: committed=%d min=%d", b.TotalCommitted(), b.TotalMinCommitted())
	}
	if b.PeakCommitted() != 32 {
		t.Fatalf("peak should be 32, got %d", b.PeakCommitted())
	}
}

func TestQueueFIFO(t *testing.T) {
	b := NewInputBuffer(StaticConfig(1, 64))
	st := packet.NewStore()
	p1 := st.Alloc(1, 0, 1, 8, packet.Request, 0)
	p2 := st.Alloc(2, 0, 1, 8, packet.Request, 0)
	b.Reserve(0, 8, packet.Minimal)
	b.Enqueue(0, p1, 10, packet.Minimal)
	b.Reserve(0, 8, packet.Nonminimal)
	b.Enqueue(0, p2, 12, packet.Nonminimal)

	if b.Head(0, 5) != packet.NilRef {
		t.Fatal("head must not be visible before its ready cycle")
	}
	if b.Head(0, 10) != p1 {
		t.Fatal("head should be p1 at cycle 10")
	}
	if b.QueueLen(0) != 2 || b.ResidentPackets() != 2 {
		t.Fatal("queue length broken")
	}
	got, kind := b.Dequeue(0)
	if got != p1 || kind != packet.Minimal {
		t.Fatal("dequeue should return p1 with its reservation kind")
	}
	got, kind = b.Dequeue(0)
	if got != p2 || kind != packet.Nonminimal {
		t.Fatal("dequeue should return p2 with its reservation kind")
	}
}

func TestBufferPanics(t *testing.T) {
	b := NewInputBuffer(StaticConfig(1, 16))
	assertPanics(t, "dequeue empty", func() { b.Dequeue(0) })
	assertPanics(t, "over-release", func() { b.ReleaseCredit(0, 8, packet.Minimal) })
	b.Reserve(0, 8, packet.Nonminimal)
	assertPanics(t, "release wrong kind", func() { b.ReleaseCredit(0, 8, packet.Minimal) })
	assertPanics(t, "invalid config", func() { NewInputBuffer(Config{Org: Static}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestBufferInvariantsQuick drives a random reserve/release workload against
// both organisations and checks the occupancy invariants after every step.
func TestBufferInvariantsQuick(t *testing.T) {
	type op struct {
		vc   int
		size int
		kind packet.RouteKind
	}
	run := func(cfg Config, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewInputBuffer(cfg)
		var outstanding []op
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 || len(outstanding) == 0 {
				o := op{vc: rng.Intn(cfg.NumVCs), size: 1 + rng.Intn(12), kind: packet.RouteKind(rng.Intn(2))}
				free := b.FreeFor(o.vc)
				ok := b.Reserve(o.vc, o.size, o.kind)
				if ok != (free >= o.size) {
					t.Errorf("Reserve(%d,%d) = %v with free %d", o.vc, o.size, ok, free)
					return false
				}
				if ok {
					outstanding = append(outstanding, o)
				}
			} else {
				i := rng.Intn(len(outstanding))
				o := outstanding[i]
				b.ReleaseCredit(o.vc, o.size, o.kind)
				outstanding = append(outstanding[:i], outstanding[i+1:]...)
			}
			// Invariants.
			total := 0
			for vc := 0; vc < cfg.NumVCs; vc++ {
				c := b.CommittedOf(vc)
				if c < 0 || b.MinCommittedOf(vc) < 0 || b.MinCommittedOf(vc) > c {
					t.Errorf("per-VC accounting broken: committed=%d min=%d", c, b.MinCommittedOf(vc))
					return false
				}
				if b.FreeFor(vc) < 0 {
					t.Errorf("negative free space on VC %d", vc)
					return false
				}
				total += c
			}
			if total > cfg.TotalCapacity() {
				t.Errorf("total committed %d exceeds capacity %d", total, cfg.TotalCapacity())
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		return run(StaticConfig(3, 24), seed) &&
			run(Config{Org: DAMQ, NumVCs: 3, CapacityPerVC: 8, Shared: 24}, seed) &&
			run(Config{Org: DAMQ, NumVCs: 2, CapacityPerVC: 0, Shared: 32}, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOutputBuffer(t *testing.T) {
	o := NewOutputBuffer(16)
	st := packet.NewStore()
	p1 := st.Alloc(1, 0, 1, 8, packet.Request, 0)
	p2 := st.Alloc(2, 0, 1, 8, packet.Reply, 0)
	if !o.CanAccept(8) {
		t.Fatal("empty output buffer should accept a packet")
	}
	o.Push(p1, 8, 2, packet.Minimal, 5)
	o.Push(p2, 8, 0, packet.Nonminimal, 7)
	if o.CanAccept(8) {
		t.Fatal("full output buffer should reject")
	}
	if ref, _, _, _ := o.Head(4); ref != packet.NilRef {
		t.Fatal("head not ready yet")
	}
	ref, size, vc, kind := o.Head(5)
	if ref != p1 || size != 8 || vc != 2 || kind != packet.Minimal {
		t.Fatal("wrong head")
	}
	if o.Pop() != p1 || o.Len() != 1 || o.Committed() != 8 || o.Peak() != 16 {
		t.Fatal("pop bookkeeping broken")
	}
	o.Pop()
	assertPanics(t, "pop empty", func() { o.Pop() })
	assertPanics(t, "overflow", func() {
		small := NewOutputBuffer(4)
		small.Push(p1, 8, 0, packet.Minimal, 0)
	})
	assertPanics(t, "zero capacity", func() { NewOutputBuffer(0) })
}

func TestOrganizationString(t *testing.T) {
	if Static.String() != "static" || DAMQ.String() != "damq" {
		t.Error("Organization.String broken")
	}
	if StaticConfig(2, 16).String() == "" || DAMQConfig(2, 32, 0.5).String() == "" {
		t.Error("Config.String broken")
	}
}
