package buffer

// ring is a growable FIFO over a circular slice. The simulator's queues
// (input VC FIFOs, output staging buffers) previously popped by reslicing,
// which abandons the backing array's head and forces a reallocation once the
// append pointer reaches the end; at steady state that is one allocation per
// handful of packets on every queue in the network. The ring reuses its
// storage, so steady-state enqueue/dequeue traffic allocates nothing.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// len returns the number of queued elements.
func (r *ring[T]) len() int { return r.n }

// push appends e at the tail, growing the storage when full.
func (r *ring[T]) push(e T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	tail := r.head + r.n
	if tail >= len(r.buf) {
		tail -= len(r.buf)
	}
	r.buf[tail] = e
	r.n++
}

// front returns a pointer to the head element; it panics on an empty ring.
func (r *ring[T]) front() *T {
	if r.n == 0 {
		panic("buffer: front of empty ring")
	}
	return &r.buf[r.head]
}

// pop removes and returns the head element; it panics on an empty ring.
func (r *ring[T]) pop() T {
	if r.n == 0 {
		panic("buffer: pop from empty ring")
	}
	e := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // drop references so packets can be collected/reused
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return e
}

// grow doubles the storage, linearising the queue at the front.
func (r *ring[T]) grow() {
	cap := len(r.buf) * 2
	if cap == 0 {
		cap = 4
	}
	nb := make([]T, cap)
	for i := 0; i < r.n; i++ {
		idx := r.head + i
		if idx >= len(r.buf) {
			idx -= len(r.buf)
		}
		nb[i] = r.buf[idx]
	}
	r.buf = nb
	r.head = 0
}
