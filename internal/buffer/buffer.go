// Package buffer models router buffer organisations at phit granularity:
// statically partitioned per-VC FIFOs and Dynamically Allocated Multi-Queues
// (DAMQs) with a per-VC private reservation plus a shared pool, as compared
// in the FlexVC paper.
//
// Space accounting follows credit-based flow control: the upstream consumer
// of an InputBuffer reserves space at allocation time (consuming credits) and
// the space only becomes available again after the packet has left the buffer
// and the credit has travelled back across the link. All of that state is
// kept inside the InputBuffer; the simulator schedules the delayed
// ReleaseCredit calls.
//
// The package also keeps the split credit counters used by FlexVC-minCred:
// committed space is tracked separately for minimally and non-minimally
// routed packets so adaptive routing can sense congestion from minimal
// credits only.
package buffer

import (
	"fmt"

	"flexvc/internal/packet"
)

// Organization selects the buffer organisation of a port.
type Organization uint8

const (
	// Static statically partitions the port memory: each VC owns a fixed
	// private FIFO.
	Static Organization = iota
	// DAMQ shares a pool of memory between the VCs of the port, with an
	// optional private reservation per VC.
	DAMQ
)

// Organizations lists every buffer organisation, in a stable order, for
// sweeps and exhaustive round-trip tests.
var Organizations = []Organization{Static, DAMQ}

// String implements fmt.Stringer.
func (o Organization) String() string {
	if o == Static {
		return "static"
	}
	return "damq"
}

// ParseOrganization parses the textual form produced by String ("static" or
// "damq"). Unknown names error instead of defaulting, so spec files fail
// loudly.
func ParseOrganization(s string) (Organization, error) {
	switch s {
	case "static":
		return Static, nil
	case "damq":
		return DAMQ, nil
	}
	return Static, fmt.Errorf("unknown buffer organisation %q (want static or damq)", s)
}

// Config describes the buffer organisation of one input port.
type Config struct {
	// Org is the organisation (Static or DAMQ).
	Org Organization
	// NumVCs is the number of virtual channels of the port.
	NumVCs int
	// CapacityPerVC is the private capacity of each VC in phits. For DAMQ
	// ports this is the per-VC private reservation.
	CapacityPerVC int
	// Shared is the capacity of the shared pool in phits (DAMQ only).
	Shared int
}

// StaticConfig builds a statically partitioned configuration.
func StaticConfig(numVCs, capacityPerVC int) Config {
	return Config{Org: Static, NumVCs: numVCs, CapacityPerVC: capacityPerVC}
}

// DAMQConfig builds a DAMQ configuration from the total port capacity and the
// fraction of it reserved privately per VC (the paper's default is 75%
// private). The private fraction is divided evenly among VCs (rounded down to
// whole phits) and the remainder forms the shared pool.
func DAMQConfig(numVCs, totalCapacity int, privateFraction float64) Config {
	if privateFraction < 0 {
		privateFraction = 0
	}
	if privateFraction > 1 {
		privateFraction = 1
	}
	perVC := 0
	if numVCs > 0 {
		perVC = int(float64(totalCapacity)*privateFraction) / numVCs
	}
	return Config{
		Org:           DAMQ,
		NumVCs:        numVCs,
		CapacityPerVC: perVC,
		Shared:        totalCapacity - perVC*numVCs,
	}
}

// TotalCapacity returns the total port capacity in phits.
func (c Config) TotalCapacity() int { return c.NumVCs*c.CapacityPerVC + c.Shared }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumVCs <= 0 {
		return fmt.Errorf("buffer: NumVCs must be positive, got %d", c.NumVCs)
	}
	if c.CapacityPerVC < 0 || c.Shared < 0 {
		return fmt.Errorf("buffer: negative capacity (perVC=%d shared=%d)", c.CapacityPerVC, c.Shared)
	}
	if c.Org == Static && c.Shared != 0 {
		return fmt.Errorf("buffer: static organisation cannot have a shared pool (%d phits)", c.Shared)
	}
	if c.TotalCapacity() == 0 {
		return fmt.Errorf("buffer: zero total capacity")
	}
	return nil
}

// String implements fmt.Stringer.
func (c Config) String() string {
	if c.Org == Static {
		return fmt.Sprintf("static %dx%d phits", c.NumVCs, c.CapacityPerVC)
	}
	return fmt.Sprintf("damq %dx%d+%d phits", c.NumVCs, c.CapacityPerVC, c.Shared)
}

// entry is one resident packet of a VC queue. It holds a 4-byte Ref into the
// network's packet store rather than a pointer, so VC rings stay small and
// pointer-free.
type entry struct {
	// ready is the cycle at which the packet's head becomes visible to the
	// allocator (arrival + router pipeline latency).
	ready int64
	ref   packet.Ref
	// kind is the routing kind recorded when the space was reserved; the
	// matching credit release must use the same kind so the minCred split
	// counters stay balanced even if the packet is re-routed later.
	kind packet.RouteKind
}

// vcState is the per-VC bookkeeping of an input buffer.
type vcState struct {
	// committed is the space consumed in this VC in phits, including
	// in-flight reservations and space whose credit has not yet returned.
	committed int
	// fromShared is the part of committed drawn from the shared pool.
	fromShared int
	// minCommitted is the part of committed that belongs to minimally
	// routed packets (FlexVC-minCred accounting).
	minCommitted int
	// queue holds resident packets in FIFO order.
	queue ring[entry]
}

// InputBuffer models one input port: NumVCs virtual channels over a static or
// DAMQ organisation, with credit accounting split by routing kind.
type InputBuffer struct {
	cfg             Config
	vcs             []vcState
	sharedCommitted int

	// peak occupancy statistics (phits), for reporting.
	peakCommitted int
}

// NewInputBuffer builds an input buffer; it panics on an invalid
// configuration (configurations are validated when building the network).
func NewInputBuffer(cfg Config) *InputBuffer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &InputBuffer{cfg: cfg, vcs: make([]vcState, cfg.NumVCs)}
}

// Config returns the buffer configuration.
func (b *InputBuffer) Config() Config { return b.cfg }

// NumVCs returns the number of virtual channels.
func (b *InputBuffer) NumVCs() int { return b.cfg.NumVCs }

// FreeFor returns the number of phits that can still be reserved in the given
// VC (its private space plus, for DAMQs, whatever remains of the shared
// pool).
func (b *InputBuffer) FreeFor(vc int) int {
	s := &b.vcs[vc]
	privateFree := b.cfg.CapacityPerVC - (s.committed - s.fromShared)
	if privateFree < 0 {
		privateFree = 0
	}
	if b.cfg.Org == Static {
		return privateFree
	}
	return privateFree + (b.cfg.Shared - b.sharedCommitted)
}

// Reserve consumes `size` phits of space in the given VC for a packet routed
// with the given kind. It returns false (and reserves nothing) when the VC
// cannot hold the packet.
func (b *InputBuffer) Reserve(vc, size int, kind packet.RouteKind) bool {
	if size <= 0 {
		return false
	}
	if b.FreeFor(vc) < size {
		return false
	}
	s := &b.vcs[vc]
	privateFree := b.cfg.CapacityPerVC - (s.committed - s.fromShared)
	if privateFree < 0 {
		privateFree = 0
	}
	fromPrivate := size
	if fromPrivate > privateFree {
		fromPrivate = privateFree
	}
	fromShared := size - fromPrivate
	s.committed += size
	s.fromShared += fromShared
	b.sharedCommitted += fromShared
	if kind == packet.Minimal {
		s.minCommitted += size
	}
	if t := b.TotalCommitted(); t > b.peakCommitted {
		b.peakCommitted = t
	}
	return true
}

// ReleaseCredit returns `size` phits of space to the given VC. The simulator
// calls it once the packet has left the buffer and the credit has travelled
// back to the sender (i.e. after the credit round-trip), so FreeFor reflects
// what an upstream credit counter would see.
func (b *InputBuffer) ReleaseCredit(vc, size int, kind packet.RouteKind) {
	s := &b.vcs[vc]
	if size > s.committed {
		panic(fmt.Sprintf("buffer: releasing %d phits from VC %d holding only %d", size, vc, s.committed))
	}
	// Shared space is released first so private reservations refill, which
	// matches DAMQ implementations with per-VC reserved space.
	fromShared := size
	if fromShared > s.fromShared {
		fromShared = s.fromShared
	}
	s.committed -= size
	s.fromShared -= fromShared
	b.sharedCommitted -= fromShared
	if kind == packet.Minimal {
		s.minCommitted -= size
		if s.minCommitted < 0 {
			panic(fmt.Sprintf("buffer: negative minimal committed space on VC %d", vc))
		}
	}
}

// Enqueue places a packet into the given VC. Space must already have been
// reserved with the given routing kind; ready is the cycle at which the
// packet becomes visible to the allocator.
func (b *InputBuffer) Enqueue(vc int, ref packet.Ref, ready int64, kind packet.RouteKind) {
	b.vcs[vc].queue.push(entry{ref: ref, ready: ready, kind: kind})
}

// Head returns the head packet of the given VC if it is ready at the given
// cycle, or NilRef.
func (b *InputBuffer) Head(vc int, now int64) packet.Ref {
	s := &b.vcs[vc]
	if s.queue.len() == 0 {
		return packet.NilRef
	}
	if e := s.queue.front(); e.ready <= now {
		return e.ref
	}
	return packet.NilRef
}

// Dequeue removes and returns the head packet of the given VC together with
// the routing kind recorded at reservation time. Note that the space it
// occupied is only returned through ReleaseCredit (with that same kind).
func (b *InputBuffer) Dequeue(vc int) (packet.Ref, packet.RouteKind) {
	s := &b.vcs[vc]
	if s.queue.len() == 0 {
		panic(fmt.Sprintf("buffer: dequeue from empty VC %d", vc))
	}
	e := s.queue.pop()
	return e.ref, e.kind
}

// CapacityFor returns the maximum space a single VC could ever hold: its
// private capacity plus, for DAMQs, the whole shared pool.
func (b *InputBuffer) CapacityFor(vc int) int {
	if b.cfg.Org == Static {
		return b.cfg.CapacityPerVC
	}
	return b.cfg.CapacityPerVC + b.cfg.Shared
}

// TotalCapacity returns the total capacity of the port in phits.
func (b *InputBuffer) TotalCapacity() int { return b.cfg.TotalCapacity() }

// QueueLen returns the number of resident packets in a VC.
func (b *InputBuffer) QueueLen(vc int) int { return b.vcs[vc].queue.len() }

// CommittedOf returns the committed phits of one VC (what an upstream credit
// counter reports as occupied).
func (b *InputBuffer) CommittedOf(vc int) int { return b.vcs[vc].committed }

// MinCommittedOf returns the committed phits of one VC that belong to
// minimally routed packets.
func (b *InputBuffer) MinCommittedOf(vc int) int { return b.vcs[vc].minCommitted }

// TotalCommitted returns the committed phits across all VCs of the port.
func (b *InputBuffer) TotalCommitted() int {
	t := 0
	for i := range b.vcs {
		t += b.vcs[i].committed
	}
	return t
}

// TotalMinCommitted returns the committed phits of minimally routed packets
// across all VCs of the port.
func (b *InputBuffer) TotalMinCommitted() int {
	t := 0
	for i := range b.vcs {
		t += b.vcs[i].minCommitted
	}
	return t
}

// PeakCommitted returns the highest total committed occupancy observed.
func (b *InputBuffer) PeakCommitted() int { return b.peakCommitted }

// Empty reports whether no packets are resident and no space is committed.
func (b *InputBuffer) Empty() bool {
	for i := range b.vcs {
		if b.vcs[i].queue.len() > 0 || b.vcs[i].committed > 0 {
			return false
		}
	}
	return true
}

// ResidentPackets returns the number of packets currently stored across all
// VCs (used by the deadlock watchdog).
func (b *InputBuffer) ResidentPackets() int {
	n := 0
	for i := range b.vcs {
		n += b.vcs[i].queue.len()
	}
	return n
}
