package scenario

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"flexvc/internal/stats"
	"flexvc/internal/traffic"
)

func valid() *Scenario {
	return UNToADV(0.4, 2000, 3000, 2000, 500)
}

func ptr(v float64) *float64 { return &v }

// TestLoadRampPhases checks the ramp-specific surface of the scenario layer:
// labels, MaxLoad over ramp endpoints, JSON round-trip of load_end and the
// pass-through into traffic.PhaseSpec.
func TestLoadRampPhases(t *testing.T) {
	s := &Scenario{
		Name:   "ramp-up",
		Window: 500,
		Phases: []Phase{
			{Pattern: "uniform", Load: 0.1, Cycles: 2000},
			{Pattern: "uniform", Load: 0.1, LoadEnd: ptr(0.7), Cycles: 4000},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxLoad(); got != 0.7 {
		t.Errorf("MaxLoad = %v, want the ramp endpoint 0.7", got)
	}
	if l := s.Phases[1].Label(); !strings.Contains(l, "0.10") || !strings.Contains(l, "0.70") {
		t.Errorf("ramp label %q should show both endpoints", l)
	}
	phases := s.TrafficPhases()
	if phases[1].LoadEnd == nil || *phases[1].LoadEnd != 0.7 {
		t.Errorf("traffic phase 1 LoadEnd = %v, want 0.7", phases[1].LoadEnd)
	}
	if phases[0].LoadEnd != nil {
		t.Errorf("constant phase leaked a LoadEnd: %v", *phases[0].LoadEnd)
	}

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"load_end":0.7`) {
		t.Errorf("marshalled scenario should carry load_end: %s", b)
	}
	back, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Phases[1].LoadEnd == nil || *back.Phases[1].LoadEnd != 0.7 {
		t.Errorf("parsed ramp lost load_end: %+v", back.Phases[1])
	}
}

func TestValidScenario(t *testing.T) {
	s := valid()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalCycles() != 7000 {
		t.Errorf("TotalCycles = %d, want 7000", s.TotalCycles())
	}
	if s.MaxLoad() != 0.4 {
		t.Errorf("MaxLoad = %v, want 0.4", s.MaxLoad())
	}
	marks := s.Marks()
	if len(marks) != 3 || marks[1].Cycle != 2000 || marks[2].Cycle != 5000 {
		t.Errorf("marks = %+v", marks)
	}
	if !strings.Contains(marks[1].Label, "adversarial") {
		t.Errorf("mark label %q should name the pattern", marks[1].Label)
	}
	phases := s.TrafficPhases()
	if len(phases) != 3 || phases[1].Pattern != traffic.NameAdversarial || phases[1].Cycles != 3000 {
		t.Errorf("traffic phases = %+v", phases)
	}
	if d := s.Describe(); !strings.Contains(d, "un-adv-un") || !strings.Contains(d, "window 500") {
		t.Errorf("Describe() = %q", d)
	}
}

// TestValidationMessages checks that every malformed spec is rejected with a
// message naming the offending phase and constraint.
func TestValidationMessages(t *testing.T) {
	mod := func(f func(*Scenario)) *Scenario {
		s := valid()
		f(s)
		return s
	}
	cases := []struct {
		name string
		s    *Scenario
		want []string
	}{
		{"no phases", mod(func(s *Scenario) { s.Phases = nil }), []string{"at least one phase"}},
		{"zero window", mod(func(s *Scenario) { s.Window = 0 }), []string{"window"}},
		{"unknown pattern", mod(func(s *Scenario) { s.Phases[1].Pattern = "adversarial2" }), []string{"phase 1", "unknown pattern", "adversarial2"}},
		{"bad load", mod(func(s *Scenario) { s.Phases[0].Load = 1.2 }), []string{"phase 0", "load", "[0,1]"}},
		{"zero cycles", mod(func(s *Scenario) { s.Phases[2].Cycles = 0 }), []string{"phase 2", "cycles"}},
		{"ragged window", mod(func(s *Scenario) { s.Phases[0].Cycles = 2300 }), []string{"phase 0", "multiple of the 500-cycle window"}},
		{"short burst", mod(func(s *Scenario) {
			s.Phases[0].Pattern = "bursty-un"
			s.Phases[0].AvgBurstLength = 0.3
		}), []string{"avg_burst_length"}},
		{"burst on non-bursty", mod(func(s *Scenario) { s.Phases[0].AvgBurstLength = 5 }), []string{"only applies to bursty"}},
		{"hotspot params elsewhere", mod(func(s *Scenario) { s.Phases[0].HotspotFraction = 0.5 }), []string{"group-hotspot"}},
		{"bad hotspot fraction", mod(func(s *Scenario) {
			s.Phases[0].Pattern = "group-hotspot"
			s.Phases[0].HotspotFraction = -0.5
		}), []string{"hotspot_fraction"}},
		{"too many windows", mod(func(s *Scenario) { s.Window = 500; s.Phases[0].Cycles = 500 * (stats.MaxTimeSeriesWindows + 5) }), []string{"window of at least"}},
		{"non-finite load", mod(func(s *Scenario) { s.Phases[0].Load = math.NaN() }), []string{"phase 0", "load must be finite"}},
		{"infinite load", mod(func(s *Scenario) { s.Phases[1].Load = math.Inf(1) }), []string{"phase 1", "load must be finite"}},
		{"non-finite load_end", mod(func(s *Scenario) { s.Phases[0].LoadEnd = ptr(math.NaN()) }), []string{"phase 0", "load_end must be finite"}},
		{"infinite load_end", mod(func(s *Scenario) { s.Phases[2].LoadEnd = ptr(math.Inf(-1)) }), []string{"phase 2", "load_end must be finite"}},
		{"load_end out of range", mod(func(s *Scenario) { s.Phases[0].LoadEnd = ptr(1.3) }), []string{"phase 0", "load_end", "[0,1]"}},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q should mention %q", tc.name, err, w)
			}
		}
	}
}

func TestLoadAndParse(t *testing.T) {
	s, err := Load(filepath.Join("testdata", "un-adv-small.json"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "un-adv-un" || len(s.Phases) != 3 || s.TotalCycles() != 24000 {
		t.Errorf("loaded scenario = %+v", s)
	}
	if _, err := Load(filepath.Join("testdata", "bad-unknown-field.json")); err == nil || !strings.Contains(err.Error(), "laod") {
		t.Errorf("unknown field not rejected with the field name: %v", err)
	}
	if _, err := Load(filepath.Join("testdata", "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
	if _, err := Parse([]byte(`{"window": 100, "phases": []}`)); err == nil {
		t.Error("empty phase list parsed")
	}
}

// TestJSONRoundTrip pins the wire format: marshal -> Parse -> marshal is
// stable, so scenarios embedded in config fingerprints are deterministic.
func TestJSONRoundTrip(t *testing.T) {
	s := valid()
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("round trip not stable:\n%s\n%s", b1, b2)
	}
}

// synthSeries builds a series with a prescribed per-window minimal fraction.
func synthSeries(t *testing.T, window int64, marks []stats.PhaseMark, minFrac []float64) *stats.TimeSeries {
	t.Helper()
	ts, err := stats.NewTimeSeries(window, window*int64(len(minFrac)), 4, marks)
	if err != nil {
		t.Fatal(err)
	}
	const per = 1000
	for w, f := range minFrac {
		if f < 0 { // empty window
			continue
		}
		now := int64(w) * window
		minimal := int(f * per)
		for i := 0; i < per; i++ {
			ts.Record(now, 8, i < minimal, 100)
		}
	}
	return ts
}

func TestAdaptationLags(t *testing.T) {
	window := int64(100)
	marks := []stats.PhaseMark{{Cycle: 0, Label: "un"}, {Cycle: 500, Label: "adv"}, {Cycle: 1000, Label: "un"}}
	// Phase 1 (windows 0-4): settled high. Phase 2 (5-9): drops to ~0.1
	// with the midpoint crossed in window 7. Phase 3 (10-13): returns to
	// ~1.0, crossing immediately.
	frac := []float64{1, 1, 1, 1, 1 /**/, 0.9, 0.8, 0.3, 0.1, 0.1 /**/, 0.95, 1, 1, 1}
	ts := synthSeries(t, window, marks, frac)
	lags := AdaptationLags(ts)
	if len(lags) != 2 {
		t.Fatalf("got %d lags, want 2", len(lags))
	}
	l := lags[0]
	if !l.Shifted || !l.Crossed || l.At != 500 {
		t.Fatalf("first switch: %+v", l)
	}
	// Settled pre = 1.0 (windows 2-4), post = 0.1 (windows 7-9 -> (0.3+0.1+0.1)/3=0.1667),
	// midpoint ~0.58: first crossing is window 7 -> lag = 800-500 = 300.
	if l.Cycles != 300 {
		t.Errorf("first lag = %d cycles, want 300 (pre %.2f post %.2f)", l.Cycles, l.Pre, l.Post)
	}
	if lags[1].Cycles != 100 || !lags[1].Shifted {
		t.Errorf("second lag = %+v, want immediate 100-cycle crossing", lags[1])
	}

	// A flat series never shifts.
	flat := synthSeries(t, window, marks, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	for _, l := range AdaptationLags(flat) {
		if l.Shifted || l.Cycles != 0 {
			t.Errorf("flat series reported a shift: %+v", l)
		}
	}

	if AdaptationLags(nil) != nil {
		t.Error("nil series should yield no lags")
	}
	noMarks := synthSeries(t, window, nil, []float64{1, 1})
	if AdaptationLags(noMarks) != nil {
		t.Error("mark-less series should yield no lags")
	}
}
