// Package scenario defines declarative, deterministic phased workloads: a
// Scenario is a timed sequence of traffic phases (pattern, load, duration)
// plus a telemetry window width, loadable from JSON. It is the spec layer of
// the transient-experiment family — the simulator (internal/sim) turns a
// scenario into a traffic.Switchable generator and a windowed
// stats.TimeSeries, and the analysis half of this package turns the recorded
// series back into adaptation-lag numbers.
//
// # Determinism contract
//
// A scenario run is a pure function of (config, scenario, seed): phase
// boundaries are cycle counts (never wall clock or RNG draws), each phase
// owns per-node PRNG streams derived from (seed, phase index), and the
// telemetry windows are fixed-width cycle buckets. Two runs of the same
// scenario with the same seed are byte-identical, which is what lets
// scenario replications flow through the checkpointed results store
// unchanged: the scenario is part of config.Config, so it is covered by the
// config fingerprint that keys checkpoint reuse.
//
// # Phase semantics
//
// Phase k covers cycles [sum(cycles[0:k]), sum(cycles[0:k+1])). The
// simulation runs exactly TotalCycles() cycles and measures from cycle 0 —
// warm-up is meaningless for transient experiments, where the interesting
// signal IS the non-steady state. Every phase duration must be a positive
// multiple of Window so phase boundaries land exactly on window boundaries;
// together with the stats.MaxTimeSeriesWindows bound this is checked by
// Validate with actionable messages.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"flexvc/internal/stats"
	"flexvc/internal/traffic"
)

// Phase is one timed segment of a scenario.
type Phase struct {
	// Name labels the phase in reports; it defaults to "pattern@load".
	Name string `json:"name,omitempty"`
	// Pattern is the traffic pattern (any name traffic.CanonicalPattern
	// accepts: uniform, adversarial, bursty-uniform, transpose, bit-reverse,
	// shuffle, group-hotspot, and their aliases).
	Pattern string `json:"pattern"`
	// Load is the offered load in phits/node/cycle (the load at the phase's
	// first cycle when LoadEnd is set).
	Load float64 `json:"load"`
	// LoadEnd, when non-nil, turns the phase into a load ramp: the offered
	// load is linearly interpolated from Load at the phase's first cycle to
	// LoadEnd at its last. Nil keeps the load constant at Load.
	LoadEnd *float64 `json:"load_end,omitempty"`
	// Cycles is the phase duration; it must be a positive multiple of the
	// scenario window.
	Cycles int64 `json:"cycles"`
	// AvgBurstLength overrides the configuration's burst length for bursty
	// phases (0 inherits).
	AvgBurstLength float64 `json:"avg_burst_length,omitempty"`
	// HotspotFraction overrides the configuration's hotspot fraction for
	// group-hotspot phases (0 inherits).
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`
	// HotspotGroup selects the hot group of group-hotspot phases.
	HotspotGroup int `json:"hotspot_group,omitempty"`
}

// Label returns the phase's display name.
func (p Phase) Label() string {
	if p.Name != "" {
		return p.Name
	}
	if p.LoadEnd != nil {
		return fmt.Sprintf("%s@%.2f-%.2f", p.Pattern, p.Load, *p.LoadEnd)
	}
	return fmt.Sprintf("%s@%.2f", p.Pattern, p.Load)
}

// Scenario is a complete phased-workload description.
type Scenario struct {
	// Name identifies the scenario in reports and file names.
	Name string `json:"name,omitempty"`
	// Window is the transient-telemetry window width in cycles.
	Window int64 `json:"window"`
	// Phases run back to back, starting at cycle 0.
	Phases []Phase `json:"phases"`
}

// Parse decodes and validates a scenario from JSON. Unknown fields are
// rejected so typos in hand-written scenario files fail loudly instead of
// silently falling back to defaults.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the scenario for consistency and returns the first problem
// found, phrased so a hand-written JSON file can be fixed from the message
// alone.
func (s *Scenario) Validate() error {
	if s == nil {
		return fmt.Errorf("scenario: nil scenario")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: needs at least one phase", s.Name)
	}
	if s.Window <= 0 {
		return fmt.Errorf("scenario %q: window must be a positive cycle count, got %d", s.Name, s.Window)
	}
	for i, p := range s.Phases {
		canonical, ok := traffic.CanonicalPattern(p.Pattern)
		if !ok {
			return fmt.Errorf("scenario %q: phase %d: unknown pattern %q (want uniform, adversarial, bursty-uniform, transpose, bit-reverse, shuffle or group-hotspot)", s.Name, i, p.Pattern)
		}
		if math.IsNaN(p.Load) || math.IsInf(p.Load, 0) {
			return fmt.Errorf("scenario %q: phase %d: load must be finite, got %v", s.Name, i, p.Load)
		}
		if p.Load < 0 || p.Load > 1 {
			return fmt.Errorf("scenario %q: phase %d (%s): load %.3f outside [0,1] phits/node/cycle", s.Name, i, p.Label(), p.Load)
		}
		if p.LoadEnd != nil {
			if math.IsNaN(*p.LoadEnd) || math.IsInf(*p.LoadEnd, 0) {
				return fmt.Errorf("scenario %q: phase %d: load_end must be finite, got %v", s.Name, i, *p.LoadEnd)
			}
			if *p.LoadEnd < 0 || *p.LoadEnd > 1 {
				return fmt.Errorf("scenario %q: phase %d (%s): load_end %.3f outside [0,1] phits/node/cycle", s.Name, i, p.Label(), *p.LoadEnd)
			}
		}
		if p.Cycles <= 0 {
			return fmt.Errorf("scenario %q: phase %d (%s): cycles must be positive, got %d", s.Name, i, p.Label(), p.Cycles)
		}
		if p.Cycles%s.Window != 0 {
			return fmt.Errorf("scenario %q: phase %d (%s): %d cycles is not a multiple of the %d-cycle window (phase boundaries must land on window boundaries)", s.Name, i, p.Label(), p.Cycles, s.Window)
		}
		if p.AvgBurstLength != 0 && p.AvgBurstLength < 1 {
			return fmt.Errorf("scenario %q: phase %d (%s): avg_burst_length must be >= 1 packet, got %g", s.Name, i, p.Label(), p.AvgBurstLength)
		}
		if p.AvgBurstLength != 0 && canonical != traffic.NameBursty {
			return fmt.Errorf("scenario %q: phase %d (%s): avg_burst_length only applies to bursty-uniform phases", s.Name, i, p.Label())
		}
		if p.HotspotFraction != 0 && (p.HotspotFraction < 0 || p.HotspotFraction > 1) {
			return fmt.Errorf("scenario %q: phase %d (%s): hotspot_fraction %.3f outside [0,1]", s.Name, i, p.Label(), p.HotspotFraction)
		}
		if (p.HotspotFraction != 0 || p.HotspotGroup != 0) && canonical != traffic.NameGroupHotspot {
			return fmt.Errorf("scenario %q: phase %d (%s): hotspot parameters only apply to group-hotspot phases", s.Name, i, p.Label())
		}
		if p.HotspotGroup < 0 {
			return fmt.Errorf("scenario %q: phase %d (%s): hotspot_group must be non-negative, got %d", s.Name, i, p.Label(), p.HotspotGroup)
		}
	}
	total := s.TotalCycles()
	if windows := total / s.Window; windows > stats.MaxTimeSeriesWindows {
		return fmt.Errorf("scenario %q: %d cycles at window %d yield %d telemetry windows, above the bound of %d; use a window of at least %d cycles",
			s.Name, total, s.Window, windows, stats.MaxTimeSeriesWindows, (total+stats.MaxTimeSeriesWindows-1)/stats.MaxTimeSeriesWindows)
	}
	return nil
}

// TotalCycles returns the scenario duration: the sum of all phase durations.
func (s *Scenario) TotalCycles() int64 {
	var total int64
	for _, p := range s.Phases {
		total += p.Cycles
	}
	return total
}

// MaxLoad returns the highest per-phase offered load (including ramp
// endpoints), the natural single number to report as the scenario's offered
// load.
func (s *Scenario) MaxLoad() float64 {
	m := 0.0
	for _, p := range s.Phases {
		if p.Load > m {
			m = p.Load
		}
		if p.LoadEnd != nil && *p.LoadEnd > m {
			m = *p.LoadEnd
		}
	}
	return m
}

// Marks returns the phase boundaries as stats marks (one per phase, at its
// first cycle).
func (s *Scenario) Marks() []stats.PhaseMark {
	marks := make([]stats.PhaseMark, len(s.Phases))
	var at int64
	for i, p := range s.Phases {
		marks[i] = stats.PhaseMark{Cycle: at, Label: p.Label()}
		at += p.Cycles
	}
	return marks
}

// TrafficPhases converts the scenario into the traffic layer's phase specs
// (the input of traffic.NewSwitchable).
func (s *Scenario) TrafficPhases() []traffic.PhaseSpec {
	specs := make([]traffic.PhaseSpec, len(s.Phases))
	for i, p := range s.Phases {
		specs[i] = traffic.PhaseSpec{
			Pattern:         p.Pattern,
			Load:            p.Load,
			LoadEnd:         p.LoadEnd,
			Cycles:          p.Cycles,
			AvgBurstLength:  p.AvgBurstLength,
			HotspotFraction: p.HotspotFraction,
			HotspotGroup:    p.HotspotGroup,
		}
	}
	return specs
}

// Describe returns a compact human-readable summary, e.g.
// "un-adv-un: uniform@0.40 x8000 → adversarial@0.40 x8000 (window 500)".
func (s *Scenario) Describe() string {
	var b bytes.Buffer
	if s.Name != "" {
		fmt.Fprintf(&b, "%s: ", s.Name)
	}
	for i, p := range s.Phases {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%sx%d", p.Label(), p.Cycles)
	}
	fmt.Fprintf(&b, " (window %d)", s.Window)
	return b.String()
}

// UNToADV builds the canonical transient scenario: uniform traffic, a sudden
// switch to adversarial, and a switch back, all at the same offered load.
// Adaptive routing should re-divert traffic shortly after each switch; the
// measured delay is the adaptation lag (see AdaptationLags).
func UNToADV(load float64, pre, adv, post, window int64) *Scenario {
	return &Scenario{
		Name:   "un-adv-un",
		Window: window,
		Phases: []Phase{
			{Pattern: traffic.NameUniform, Load: load, Cycles: pre},
			{Pattern: traffic.NameAdversarial, Load: load, Cycles: adv},
			{Pattern: traffic.NameUniform, Load: load, Cycles: post},
		},
	}
}
