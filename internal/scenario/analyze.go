package scenario

import (
	"math"

	"flexvc/internal/stats"
)

// LagShiftThreshold is the minimal settled-value shift of the
// minimally-routed fraction that counts as an adaptation (smaller changes
// are noise: a routing mode that ignores the traffic switch, like MIN or
// VAL, moves less than this).
const LagShiftThreshold = 0.05

// Lag is the transient analysis of one phase switch: how long the routing
// mode took to move its minimally-routed fraction from the pre-switch
// settled value to the post-switch settled value.
type Lag struct {
	// MarkIndex is the index of the phase mark analysed (>= 1).
	MarkIndex int
	// At is the cycle of the switch and Label the phase switched to.
	At    int64
	Label string
	// Pre and Post are the settled minimally-routed fractions: the mean over
	// the second half of the previous and of the new phase.
	Pre, Post float64
	// Shifted reports whether |Post-Pre| reached LagShiftThreshold.
	Shifted bool
	// Crossed reports whether the midpoint between Pre and Post was actually
	// crossed within the phase. When Shifted is true but Crossed is false
	// (possible only when empty windows hide the crossing), Cycles is the
	// full phase length and must be read as a lower bound.
	Crossed bool
	// Cycles is the adaptation lag: cycles from the switch until the end of
	// the first window whose minimal fraction crossed the midpoint between
	// Pre and Post. It is 0 when the mode never shifted, and the full phase
	// length when the midpoint was never crossed (see Crossed).
	Cycles int64
}

// AdaptationLags analyses every phase switch of a recorded series. The
// series must carry phase marks (scenario runs always do); without marks, or
// with fewer than two phases, it returns nil.
//
// The lag definition is conservative and windowing-robust: "settled" values
// are means over the second half of a phase (skipping empty windows), the
// crossing test uses the midpoint (Pre+Post)/2, and the reported lag is
// measured to the END of the crossing window, since sub-window timing is not
// recorded.
func AdaptationLags(ts *stats.TimeSeries) []Lag {
	if ts == nil || len(ts.Marks) < 2 {
		return nil
	}
	bounds := make([]int, len(ts.Marks)+1) // window index of each phase start
	for i, m := range ts.Marks {
		bounds[i] = int(m.Cycle / ts.Window)
	}
	bounds[len(ts.Marks)] = ts.Windows()

	lags := make([]Lag, 0, len(ts.Marks)-1)
	for k := 1; k < len(ts.Marks); k++ {
		m := ts.Marks[k]
		lag := Lag{
			MarkIndex: k,
			At:        m.Cycle,
			Label:     m.Label,
			Pre:       settledMinimalFraction(ts, bounds[k-1], bounds[k]),
			Post:      settledMinimalFraction(ts, bounds[k], bounds[k+1]),
		}
		if !math.IsNaN(lag.Pre) && !math.IsNaN(lag.Post) && math.Abs(lag.Post-lag.Pre) >= LagShiftThreshold {
			lag.Shifted = true
			lag.Cycles = int64(bounds[k+1]-bounds[k]) * ts.Window // never crossed
			mid := (lag.Pre + lag.Post) / 2
			for w := bounds[k]; w < bounds[k+1]; w++ {
				f := ts.MinimalFraction(w)
				if math.IsNaN(f) {
					continue
				}
				if (lag.Post > lag.Pre && f >= mid) || (lag.Post < lag.Pre && f <= mid) {
					lag.Crossed = true
					lag.Cycles = int64(w+1)*ts.Window - m.Cycle
					break
				}
			}
		}
		lags = append(lags, lag)
	}
	return lags
}

// settledMinimalFraction is the mean minimally-routed fraction over the
// second half of the window range [from, to), skipping empty windows. NaN
// when every window in the half is empty.
func settledMinimalFraction(ts *stats.TimeSeries, from, to int) float64 {
	half := from + (to-from)/2
	if half >= to {
		half = from
	}
	sum, n := 0.0, 0
	for w := half; w < to; w++ {
		f := ts.MinimalFraction(w)
		if math.IsNaN(f) {
			continue
		}
		sum += f
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
