package scenario

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
)

// FuzzScenarioParse fuzzes the scenario JSON loader with two invariants: Parse
// never panics on arbitrary input, and every input it accepts survives a
// marshal → re-parse round trip with an equivalent compiled form (same
// struct, same total cycles, same phase labels). The round trip is what the
// campaign layer relies on when it re-embeds scenarios in spec files.
func FuzzScenarioParse(f *testing.F) {
	// The recorded transient experiment's scenario is the canonical real-world
	// seed; inline seeds cover the tricky corners (ramps, overrides, rejects).
	if b, err := os.ReadFile("../../experiments/transient-small/scenario.json"); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"name":"t","window":100,"phases":[{"pattern":"uniform","load":0.4,"cycles":200}]}`))
	f.Add([]byte(`{"window":50,"phases":[
		{"pattern":"uniform","load":0.1,"load_end":0.9,"cycles":100},
		{"pattern":"bursty-uniform","load":0.5,"cycles":50,"avg_burst_length":8},
		{"pattern":"group-hotspot","load":0.3,"cycles":50,"hotspot_fraction":0.2,"hotspot_group":1}]}`))
	f.Add([]byte(`{"window":0,"phases":[]}`))
	f.Add([]byte(`{"window":100,"phases":[{"pattern":"nope","load":0.4,"cycles":200}]}`))
	f.Add([]byte(`{"window":100,"phases":[{"pattern":"uniform","load":0.4,"cycles":150}]}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		s2, err := Parse(b)
		if err != nil {
			t.Fatalf("re-marshalled scenario rejected: %v\n%s", err, b)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the scenario:\n was: %+v\n now: %+v", s, s2)
		}
		if s.TotalCycles() != s2.TotalCycles() {
			t.Fatalf("round trip changed TotalCycles: %d vs %d", s.TotalCycles(), s2.TotalCycles())
		}
		for i := range s.Phases {
			if s.Phases[i].Label() != s2.Phases[i].Label() {
				t.Fatalf("round trip changed phase %d label: %q vs %q", i, s.Phases[i].Label(), s2.Phases[i].Label())
			}
		}
	})
}
