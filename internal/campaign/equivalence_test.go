package campaign

import (
	"bytes"
	"os"
	"testing"

	"flexvc/internal/results"
	"flexvc/internal/sweep"
)

// TestFig5CampaignByteIdentical is the campaign engine's ground truth: the
// embedded fig5 spec, run through the checkpointed runner, must produce a
// results export byte-identical to the Go-coded fig5 experiment's. This pins
// every layer the spec crosses — section order and titles, variant labels and
// order, loads, and (via the config fingerprints embedded in each record) the
// exact config.Config every variant compiles to.
//
// Quick mode and a single trimmed load point keep the runtime down; the
// fingerprints still cover the full configuration space because every variant
// of every section is simulated.
func TestFig5CampaignByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 2x14 small-scale points")
	}
	opts := sweep.Options{Scale: "small", Seeds: 1, Quick: true, Loads: []float64{0.2}}
	title := sweep.Registry()["fig5"].Title

	export := func(dir string, run func(o sweep.Options) error) []byte {
		t.Helper()
		store, err := results.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Results = store
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		path, err := store.WriteExport("fig5", title)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	goCoded := export(t.TempDir(), func(o sweep.Options) error {
		_, err := sweep.Run("fig5", o)
		return err
	})
	spec, err := Builtin("fig5")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Title != title {
		t.Errorf("embedded fig5 spec title %q must match the registry title %q for identical exports", spec.Title, title)
	}
	fromSpec := export(t.TempDir(), func(o sweep.Options) error {
		_, err := Run(spec, o)
		return err
	})

	if !bytes.Equal(goCoded, fromSpec) {
		t.Errorf("campaign fig5 export differs from the Go-coded fig5 export\n--- go-coded (%d bytes) ---\n%.2000s\n--- campaign (%d bytes) ---\n%.2000s",
			len(goCoded), goCoded, len(fromSpec), fromSpec)
	}
}

// TestFig5CampaignSharesCheckpoints proves the practical consequence of key
// equivalence: a campaign run against a store already populated by the
// Go-coded runner restores every replication instead of re-simulating.
func TestFig5CampaignSharesCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 14 small-scale points")
	}
	opts := sweep.Options{Scale: "small", Seeds: 1, Quick: true, Loads: []float64{0.2}}
	dir := t.TempDir()
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Results = store
	if _, err := sweep.Run("fig5", o); err != nil {
		t.Fatal(err)
	}

	store2, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Builtin("fig5")
	if err != nil {
		t.Fatal(err)
	}
	o2 := opts
	o2.Results = store2
	var last sweep.Progress
	o2.Progress = func(p sweep.Progress) { last = p }
	if _, err := Run(spec, o2); err != nil {
		t.Fatal(err)
	}
	if last.Done == 0 || last.Skipped != last.Done {
		t.Errorf("campaign run restored %d of %d replications; want all restored from the Go-coded run's checkpoints", last.Skipped, last.Done)
	}
}
