package campaign

import (
	"fmt"

	"flexvc/internal/sweep"
)

// Run executes the campaign through the sweep layer: sections run serially
// through the checkpointed section runner (so campaign runs resume from a
// results store exactly like built-in experiments) and the rendered report
// has the same shape as a built-in figure's, including windowed-telemetry and
// adaptation-lag tables for scenario sections.
//
// The options' scale and seed count win over the spec's defaults when set, so
// command-line overrides behave the same for campaigns as for built-in
// experiments.
func Run(c *Campaign, opts sweep.Options) (*sweep.Report, error) {
	sections, err := c.Compile()
	if err != nil {
		return nil, err
	}
	if opts.Scale == "" && c.Scale != "" {
		opts.Scale = c.Scale
	}
	if opts.Seeds <= 0 && c.Seeds > 0 {
		opts.Seeds = c.Seeds
	}
	base, err := opts.BaseConfig()
	if err != nil {
		return nil, err
	}

	runner := opts.NewRunner(c.Name)
	rep := &sweep.Report{ID: c.Name, Title: c.ReportTitle()}
	for _, sec := range sections {
		b := base
		b.Scenario = sec.Scenario
		series, err := runner.RunSection(sec.Title, b, sec.Variants, runner.EffectiveLoads(sec.Loads))
		if err != nil {
			return nil, fmt.Errorf("campaign %s: section %q: %w", c.Name, sec.Title, err)
		}
		rep.Sections = append(rep.Sections, sweep.Section{
			Title:  sec.Title,
			Body:   sweep.RenderSeries(sec.Title, series) + sweep.RenderTransientText(series),
			Series: series,
		})
	}
	runner.Finish()
	rep.Notes = append(rep.Notes, c.Notes...)
	scale := opts.Scale
	if scale == "" {
		scale = "small"
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("campaign %s, scale=%s (%s)", c.Name, scale, base.Describe()))
	return rep, nil
}
