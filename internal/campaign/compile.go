package campaign

import (
	"fmt"
	"math"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
	"flexvc/internal/scenario"
	"flexvc/internal/sweep"
)

// Settings is one bundle of configuration overrides. Every field is optional
// (nil leaves the base configuration's value in place) and uses the same
// textual vocabulary as the CLI flags; values are parsed and range-checked at
// compile time, never at simulation time.
type Settings struct {
	// Traffic is the pattern name or alias (un, adv, bursty-un, transpose,
	// bit-reverse, shuffle, group-hotspot).
	Traffic *string `json:"traffic,omitempty"`
	// Routing is the routing algorithm (min, val, par, pb).
	Routing *string `json:"routing,omitempty"`
	// Sensing is PB's congestion sensing (per-port, per-vc).
	Sensing *string `json:"sensing,omitempty"`
	// Reactive enables request-reply traffic.
	Reactive *bool `json:"reactive,omitempty"`
	// RoutingThreshold is the UGAL/PB local-comparison offset in phits.
	RoutingThreshold *int `json:"routing_threshold,omitempty"`
	// Policy is the VC management policy (baseline, flexvc).
	Policy *string `json:"policy,omitempty"`
	// VCs is the VC arrangement ("4/2" single-class, "4/2+2/1" two-class).
	VCs *string `json:"vcs,omitempty"`
	// Select is FlexVC's VC selection function (jsq, highest, lowest,
	// random).
	Select *string `json:"select,omitempty"`
	// MinCred enables FlexVC-minCred credit accounting.
	MinCred *bool `json:"mincred,omitempty"`
	// Buffers is the buffer organisation (static, damq).
	Buffers *string `json:"buffers,omitempty"`
	// DAMQPrivate is the DAMQ private fraction per VC, in [0,1].
	DAMQPrivate *float64 `json:"damq_private,omitempty"`
	// Speedup is the router-crossbar speedup (>= 1).
	Speedup *int `json:"speedup,omitempty"`
	// LocalBufPerVC / GlobalBufPerVC override the per-VC buffer capacities
	// in phits.
	LocalBufPerVC  *int `json:"local_buf_per_vc,omitempty"`
	GlobalBufPerVC *int `json:"global_buf_per_vc,omitempty"`
	// AvgBurstLength is the mean burst length in packets (bursty-un, >= 1).
	AvgBurstLength *float64 `json:"avg_burst_length,omitempty"`
	// HotspotFraction / HotspotGroup parameterize group-hotspot traffic.
	HotspotFraction *float64 `json:"hotspot_fraction,omitempty"`
	HotspotGroup    *int     `json:"hotspot_group,omitempty"`
}

// compile parses every present setting into a single application closure.
// ctx names the settings' position in the spec for error messages.
func (s *Settings) compile(ctx string) (func(*config.Config), error) {
	if s == nil {
		return func(*config.Config) {}, nil
	}
	bad := func(field string, err error) error {
		return fmt.Errorf("campaign: %s: %s: %w", ctx, field, err)
	}
	var setters []func(*config.Config)
	if s.Traffic != nil {
		k, err := config.ParseTrafficKind(*s.Traffic)
		if err != nil {
			return nil, bad("traffic", err)
		}
		setters = append(setters, func(c *config.Config) { c.Traffic = k })
	}
	if s.Routing != nil {
		k, err := routing.ParseKind(*s.Routing)
		if err != nil {
			return nil, bad("routing", err)
		}
		setters = append(setters, func(c *config.Config) { c.Routing = k })
	}
	if s.Sensing != nil {
		m, err := routing.ParseSensing(*s.Sensing)
		if err != nil {
			return nil, bad("sensing", err)
		}
		setters = append(setters, func(c *config.Config) { c.Sensing = m })
	}
	if s.Reactive != nil {
		v := *s.Reactive
		setters = append(setters, func(c *config.Config) { c.Reactive = v })
	}
	if s.RoutingThreshold != nil {
		v := *s.RoutingThreshold
		if v < 0 {
			return nil, bad("routing_threshold", fmt.Errorf("must be non-negative, got %d", v))
		}
		setters = append(setters, func(c *config.Config) { c.RoutingThreshold = v })
	}
	if s.Policy != nil {
		p, err := core.ParsePolicy(*s.Policy)
		if err != nil {
			return nil, bad("policy", err)
		}
		setters = append(setters, func(c *config.Config) { c.Scheme.Policy = p })
	}
	if s.VCs != nil {
		vcs, err := core.ParseVCConfig(*s.VCs)
		if err != nil {
			return nil, bad("vcs", err)
		}
		setters = append(setters, func(c *config.Config) { c.Scheme.VCs = vcs })
	}
	if s.Select != nil {
		fn, err := core.ParseSelectionFn(*s.Select)
		if err != nil {
			return nil, bad("select", err)
		}
		setters = append(setters, func(c *config.Config) { c.Scheme.Selection = fn })
	}
	if s.MinCred != nil {
		v := *s.MinCred
		setters = append(setters, func(c *config.Config) { c.Scheme.MinCred = v })
	}
	if s.Buffers != nil {
		org, err := buffer.ParseOrganization(*s.Buffers)
		if err != nil {
			return nil, bad("buffers", err)
		}
		setters = append(setters, func(c *config.Config) { c.BufferOrg = org })
	}
	if s.DAMQPrivate != nil {
		v := *s.DAMQPrivate
		if math.IsNaN(v) || v < 0 || v > 1 {
			return nil, bad("damq_private", fmt.Errorf("fraction %v outside [0,1]", v))
		}
		setters = append(setters, func(c *config.Config) { c.DAMQPrivateFraction = v })
	}
	if s.Speedup != nil {
		v := *s.Speedup
		if v < 1 {
			return nil, bad("speedup", fmt.Errorf("must be >= 1, got %d", v))
		}
		setters = append(setters, func(c *config.Config) { c.Speedup = v })
	}
	if s.LocalBufPerVC != nil {
		v := *s.LocalBufPerVC
		if v < 1 {
			return nil, bad("local_buf_per_vc", fmt.Errorf("must be positive, got %d", v))
		}
		setters = append(setters, func(c *config.Config) { c.LocalBufPerVC = v })
	}
	if s.GlobalBufPerVC != nil {
		v := *s.GlobalBufPerVC
		if v < 1 {
			return nil, bad("global_buf_per_vc", fmt.Errorf("must be positive, got %d", v))
		}
		setters = append(setters, func(c *config.Config) { c.GlobalBufPerVC = v })
	}
	if s.AvgBurstLength != nil {
		v := *s.AvgBurstLength
		if math.IsNaN(v) || v < 1 {
			return nil, bad("avg_burst_length", fmt.Errorf("must be >= 1 packet, got %v", v))
		}
		setters = append(setters, func(c *config.Config) { c.AvgBurstLength = v })
	}
	if s.HotspotFraction != nil {
		v := *s.HotspotFraction
		if math.IsNaN(v) || v < 0 || v > 1 {
			return nil, bad("hotspot_fraction", fmt.Errorf("fraction %v outside [0,1]", v))
		}
		setters = append(setters, func(c *config.Config) { c.HotspotFraction = v })
	}
	if s.HotspotGroup != nil {
		v := *s.HotspotGroup
		if v < 0 {
			return nil, bad("hotspot_group", fmt.Errorf("must be non-negative, got %d", v))
		}
		setters = append(setters, func(c *config.Config) { c.HotspotGroup = v })
	}
	return func(c *config.Config) {
		for _, set := range setters {
			set(c)
		}
	}, nil
}

// CompiledSection is one section of a campaign, ready to run: the resolved
// loads, the optional scenario and the sweep-layer variants.
type CompiledSection struct {
	Title    string
	Loads    []float64
	Scenario *scenario.Scenario
	Variants []sweep.Variant
}

// Compile resolves the spec into runnable sections: settings parsed, axes
// cross-producted, loads and variant definitions inherited from the campaign
// level, every structural rule checked. The result is deterministic: same
// spec, same sections, same variant order and labels.
func (c *Campaign) Compile() ([]CompiledSection, error) {
	if !nameOK(c.Name) {
		return nil, fmt.Errorf("campaign: name %q must be a non-empty lowercase slug ([a-z0-9-], no leading/trailing dash): it names checkpoints and the results export", c.Name)
	}
	if c.Scale != "" {
		if _, err := config.AtScale(c.Scale); err != nil {
			return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
	}
	if c.Seeds < 0 {
		return nil, fmt.Errorf("campaign %s: seeds must be non-negative, got %d", c.Name, c.Seeds)
	}
	if len(c.Sections) == 0 {
		return nil, fmt.Errorf("campaign %s: needs at least one section", c.Name)
	}
	if len(c.Axes) > 0 && len(c.Variants) > 0 {
		return nil, fmt.Errorf("campaign %s: define either default axes or default variants, not both", c.Name)
	}
	baseApply, err := c.Base.compile(fmt.Sprintf("campaign %s: base", c.Name))
	if err != nil {
		return nil, err
	}
	if err := checkLoads(c.Loads, fmt.Sprintf("campaign %s", c.Name)); err != nil {
		return nil, err
	}

	sections := make([]CompiledSection, 0, len(c.Sections))
	titles := map[string]bool{}
	for i := range c.Sections {
		sec := &c.Sections[i]
		ctx := fmt.Sprintf("campaign %s: section %d", c.Name, i)
		if sec.Title == "" {
			return nil, fmt.Errorf("campaign: %s: title is required (it keys the section's results)", ctx)
		}
		if titles[sec.Title] {
			return nil, fmt.Errorf("campaign: %s: duplicate section title %q (titles key results and must be unique)", ctx, sec.Title)
		}
		titles[sec.Title] = true
		secApply, err := sec.Base.compile(ctx + ": base")
		if err != nil {
			return nil, err
		}

		variants, err := compileVariants(sec, c, baseApply, secApply, ctx)
		if err != nil {
			return nil, err
		}

		loads := sec.Loads
		if sec.Scenario != nil {
			// Scenario phases carry their own loads; the section's single
			// load is only the reported offered load. Campaign-level default
			// loads deliberately do NOT apply here — they would sweep the
			// identical scenario several times and render a fake load axis.
			if err := sec.Scenario.Validate(); err != nil {
				return nil, fmt.Errorf("campaign: %s: %w", ctx, err)
			}
			if len(loads) > 1 {
				return nil, fmt.Errorf("campaign: %s: a scenario section takes at most one load (the reported offered load; phases carry their own), got %d", ctx, len(loads))
			}
			if len(loads) == 0 {
				loads = []float64{sec.Scenario.MaxLoad()}
			}
		} else if len(loads) == 0 {
			loads = c.Loads
		}
		if len(loads) == 0 {
			return nil, fmt.Errorf("campaign: %s: no loads (set section or campaign loads, or a scenario)", ctx)
		}
		if err := checkLoads(loads, ctx); err != nil {
			return nil, err
		}
		sections = append(sections, CompiledSection{
			Title:    sec.Title,
			Loads:    loads,
			Scenario: sec.Scenario,
			Variants: variants,
		})
	}
	return sections, nil
}

// compileVariants resolves a section's variant definition (its own axes or
// explicit variants, falling back to the campaign-level definition) into
// sweep variants whose Apply chains campaign base, section base and variant
// settings in that order.
func compileVariants(sec *SectionSpec, c *Campaign, baseApply, secApply func(*config.Config), ctx string) ([]sweep.Variant, error) {
	axes, explicit := sec.Axes, sec.Variants
	if len(axes) > 0 && len(explicit) > 0 {
		return nil, fmt.Errorf("campaign: %s: define either axes or variants, not both", ctx)
	}
	if len(axes) == 0 && len(explicit) == 0 {
		axes, explicit = c.Axes, c.Variants
	}

	var specs []VariantSpec
	var applies []func(*config.Config)
	switch {
	case len(explicit) > 0:
		for vi := range explicit {
			v := &explicit[vi]
			apply, err := v.Set.compile(fmt.Sprintf("%s: variant %q", ctx, v.Label))
			if err != nil {
				return nil, err
			}
			specs = append(specs, VariantSpec{Label: v.Label})
			applies = append(applies, apply)
		}
	case len(axes) > 0:
		// Cross-product: one compiled closure per axis value, combined
		// row-major with the first axis varying slowest.
		type compiledValue struct {
			label string
			apply func(*config.Config)
		}
		compiled := make([][]compiledValue, len(axes))
		for ai := range axes {
			ax := &axes[ai]
			if len(ax.Values) == 0 {
				return nil, fmt.Errorf("campaign: %s: axis %q needs at least one value", ctx, ax.Name)
			}
			for _, v := range ax.Values {
				if v.Label == "" {
					return nil, fmt.Errorf("campaign: %s: axis %q: every value needs a label (labels key results)", ctx, ax.Name)
				}
				apply, err := v.Set.compile(fmt.Sprintf("%s: axis %q value %q", ctx, ax.Name, v.Label))
				if err != nil {
					return nil, err
				}
				compiled[ai] = append(compiled[ai], compiledValue{label: v.Label, apply: apply})
			}
		}
		idx := make([]int, len(axes))
		for {
			parts := make([]string, len(axes))
			chain := make([]func(*config.Config), len(axes))
			for ai, vi := range idx {
				parts[ai] = compiled[ai][vi].label
				chain[ai] = compiled[ai][vi].apply
			}
			specs = append(specs, VariantSpec{Label: joinLabels(parts)})
			applies = append(applies, func(c *config.Config) {
				for _, apply := range chain {
					apply(c)
				}
			})
			// Advance the last axis fastest.
			ai := len(idx) - 1
			for ; ai >= 0; ai-- {
				idx[ai]++
				if idx[ai] < len(compiled[ai]) {
					break
				}
				idx[ai] = 0
			}
			if ai < 0 {
				break
			}
		}
	default:
		return nil, fmt.Errorf("campaign: %s: no variants (define axes or variants on the section or the campaign)", ctx)
	}

	variants := make([]sweep.Variant, 0, len(specs))
	seen := map[string]bool{}
	for i := range specs {
		label := specs[i].Label
		if label == "" {
			return nil, fmt.Errorf("campaign: %s: variant %d needs a label (labels key results)", ctx, i)
		}
		if seen[label] {
			return nil, fmt.Errorf("campaign: %s: duplicate variant label %q (labels key results and must be unique)", ctx, label)
		}
		seen[label] = true
		apply := applies[i]
		variants = append(variants, sweep.Variant{Label: label, Apply: func(cfg *config.Config) {
			baseApply(cfg)
			secApply(cfg)
			apply(cfg)
		}})
	}
	return variants, nil
}

// joinLabels joins axis-value labels into one variant label.
func joinLabels(parts []string) string {
	out := ""
	for _, p := range parts {
		if p == "" {
			continue
		}
		if out != "" {
			out += " "
		}
		out += p
	}
	return out
}

// checkLoads rejects out-of-range or non-finite offered loads at compile
// time, before any simulation is assembled.
func checkLoads(loads []float64, ctx string) error {
	for _, l := range loads {
		if math.IsNaN(l) || l < 0 || l > 1 {
			return fmt.Errorf("campaign: %s: load %v outside [0,1] phits/node/cycle", ctx, l)
		}
	}
	return nil
}
