package campaign

import (
	"path/filepath"
	"strings"
	"testing"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
)

// TestBadSpecCorpus runs every malformed spec under testdata through Parse
// and checks that each is rejected with a message specific enough to fix the
// JSON: DisallowUnknownFields catches typos, and every validation rule names
// the offending section, axis or field.
func TestBadSpecCorpus(t *testing.T) {
	cases := map[string][]string{
		"bad-unknown-field.json":     {"sectoins"},
		"bad-missing-name.json":      {"name", "slug"},
		"bad-name-chars.json":        {"My Campaign!", "slug"},
		"bad-no-sections.json":       {"at least one section"},
		"bad-scale.json":             {"humongous", "unknown scale"},
		"bad-traffic.json":           {"section 0", "traffic", "warp"},
		"bad-routing.json":           {"variant \"v\"", "routing", "teleport"},
		"bad-policy.json":            {"policy", "rigidvc"},
		"bad-vcs.json":               {"vcs", "four/two"},
		"bad-selection.json":         {"select", "coinflip"},
		"bad-buffers.json":           {"buffers", "elastic"},
		"bad-damq-fraction.json":     {"damq_private", "[0,1]"},
		"bad-load.json":              {"load", "1.7", "[0,1]"},
		"bad-no-loads.json":          {"no loads"},
		"bad-axes-and-variants.json": {"either axes or variants"},
		"bad-empty-axis.json":        {"axis \"x\"", "at least one value"},
		"bad-dup-variant.json":       {"duplicate variant label", "same"},
		"bad-dup-section.json":       {"duplicate section title", "a"},
		"bad-no-variants.json":       {"no variants"},
		"bad-scenario.json":          {"1234", "window"},
		"bad-scenario-loads.json":    {"scenario section", "at most one load"},
		"bad-speedup.json":           {"speedup", ">= 1"},
		"bad-burst.json":             {"avg_burst_length", ">= 1"},
	}
	for file, wants := range cases {
		_, err := Load(filepath.Join("testdata", file))
		if err == nil {
			t.Errorf("%s: parsed without error", file)
			continue
		}
		for _, w := range wants {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("%s: error %q should mention %q", file, err, w)
			}
		}
	}
}

func ptr[T any](v T) *T { return &v }

// TestCrossProduct checks axis cross-producting: order (first axis slowest),
// label joining, and settings layering (campaign base, then section base,
// then axis values in axis order).
func TestCrossProduct(t *testing.T) {
	c := &Campaign{
		Name: "xp",
		Base: &Settings{Traffic: ptr("un")},
		Sections: []SectionSpec{{
			Title: "panel",
			Base:  &Settings{Routing: ptr("min")},
			Loads: []float64{0.2},
			Axes: []Axis{
				{Name: "policy", Values: []VariantSpec{
					{Label: "Baseline", Set: Settings{Policy: ptr("baseline")}},
					{Label: "FlexVC", Set: Settings{Policy: ptr("flexvc")}},
				}},
				{Name: "vcs", Values: []VariantSpec{
					{Label: "2/1", Set: Settings{VCs: ptr("2/1")}},
					{Label: "4/2", Set: Settings{VCs: ptr("4/2")}},
					{Label: "8/4", Set: Settings{VCs: ptr("8/4")}},
				}},
			},
		}},
	}
	sections, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(sections) != 1 {
		t.Fatalf("got %d sections", len(sections))
	}
	wantLabels := []string{
		"Baseline 2/1", "Baseline 4/2", "Baseline 8/4",
		"FlexVC 2/1", "FlexVC 4/2", "FlexVC 8/4",
	}
	sec := sections[0]
	if len(sec.Variants) != len(wantLabels) {
		t.Fatalf("cross product yielded %d variants, want %d", len(sec.Variants), len(wantLabels))
	}
	for i, v := range sec.Variants {
		if v.Label != wantLabels[i] {
			t.Errorf("variant %d label %q, want %q", i, v.Label, wantLabels[i])
		}
	}
	cfg := config.Small()
	sec.Variants[5].Apply(&cfg)
	if cfg.Traffic != config.TrafficUniform || cfg.Routing != routing.MIN {
		t.Errorf("base settings not applied: traffic=%v routing=%v", cfg.Traffic, cfg.Routing)
	}
	if cfg.Scheme.Policy != core.FlexVC || cfg.Scheme.VCs != core.SingleClass(8, 4) {
		t.Errorf("axis settings not applied: %+v", cfg.Scheme)
	}
}

// TestSettingsLayering checks that later layers override earlier ones and
// untouched fields keep the base configuration's values.
func TestSettingsLayering(t *testing.T) {
	c := &Campaign{
		Name: "layer",
		Base: &Settings{Buffers: ptr("damq"), DAMQPrivate: ptr(0.5)},
		Sections: []SectionSpec{{
			Title: "panel",
			Base:  &Settings{DAMQPrivate: ptr(0.25)},
			Loads: []float64{0.2},
			Variants: []VariantSpec{
				{Label: "inherit", Set: Settings{}},
				{Label: "override", Set: Settings{Buffers: ptr("static"), MinCred: ptr(true)}},
			},
		}},
	}
	sections, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	base := config.Small()
	inherit, override := base, base
	sections[0].Variants[0].Apply(&inherit)
	sections[0].Variants[1].Apply(&override)
	if inherit.BufferOrg != buffer.DAMQ || inherit.DAMQPrivateFraction != 0.25 {
		t.Errorf("inherit variant: %v %v, want damq 0.25 (section base over campaign base)", inherit.BufferOrg, inherit.DAMQPrivateFraction)
	}
	if override.BufferOrg != buffer.Static || !override.Scheme.MinCred {
		t.Errorf("override variant: %v mincred=%v, want static buffers with minCred", override.BufferOrg, override.Scheme.MinCred)
	}
	if inherit.PacketSize != base.PacketSize || inherit.Scheme.Selection != base.Scheme.Selection {
		t.Error("untouched fields must keep the base configuration's values")
	}
}

// TestScenarioSectionDefaults checks that a scenario section defaults its
// loads to the scenario's peak load (ramp endpoints included) and never
// inherits campaign-level default loads, which would sweep the identical
// scenario once per load.
func TestScenarioSectionDefaults(t *testing.T) {
	spec := `{
	  "name": "ramped",
	  "loads": [0.1, 0.2, 0.3],
	  "sections": [{
	    "title": "ramp panel",
	    "variants": [{"label": "v", "set": {}}],
	    "scenario": {
	      "name": "ramp", "window": 500,
	      "phases": [
	        {"pattern": "uniform", "load": 0.1, "cycles": 2000},
	        {"pattern": "uniform", "load": 0.1, "load_end": 0.45, "cycles": 2000}
	      ]
	    }
	  }]
	}`
	c, err := Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	sections, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(sections[0].Loads) != 1 || sections[0].Loads[0] != 0.45 {
		t.Errorf("scenario section loads = %v, want [0.45] (the ramp peak)", sections[0].Loads)
	}
	if sections[0].Scenario == nil || len(sections[0].Scenario.Phases) != 2 {
		t.Errorf("scenario not carried through compilation: %+v", sections[0].Scenario)
	}
}

// TestBuiltinSpecs ensures every embedded spec parses, validates and has a
// self-consistent name.
func TestBuiltinSpecs(t *testing.T) {
	names := BuiltinNames()
	if len(names) == 0 {
		t.Fatal("no embedded specs")
	}
	for _, name := range names {
		c, err := Builtin(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if c.Name != name {
			t.Errorf("embedded spec %s declares name %q; file name and spec name must agree", name, c.Name)
		}
	}
	if _, err := Builtin("no-such-spec"); err == nil {
		t.Error("unknown embedded spec did not error")
	}
}

// TestResolve exercises the path-vs-embedded dispatch.
func TestResolve(t *testing.T) {
	if c, err := Resolve("smoke"); err != nil || c.Name != "smoke" {
		t.Errorf("Resolve(smoke) = %v, %v", c, err)
	}
	if c, err := Resolve(filepath.Join("specs", "smoke.json")); err != nil || c.Name != "smoke" {
		t.Errorf("Resolve(specs/smoke.json) = %v, %v", c, err)
	}
	if _, err := Resolve("no/such/file.json"); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("Resolve(missing path) err = %v", err)
	}
}
