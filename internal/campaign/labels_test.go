package campaign

import (
	"encoding/json"
	"testing"
)

// TestCampaignKeyStability extends TestResultsKeyStability's contract to the
// spec layer: it pins the exact section titles and variant labels of every
// embedded campaign spec and of every campaign the experiments manifest
// records. These strings key checkpoints and replications in recorded results
// (experiments/*), so a change here orphans recorded data — renames must be
// deliberate and must regenerate the artefacts (`figures check -update` after
// re-running). Each spec is also pushed through a marshal → re-parse round
// trip, proving a mechanical reformat of the JSON cannot shift the key space.
func TestCampaignKeyStability(t *testing.T) {
	cases := []struct {
		src      string // embedded name or repo-relative spec path
		name     string
		sections map[string][]string // pinned title -> variant labels
	}{
		{
			src: "fig5", name: "fig5",
			sections: map[string][]string{
				"(a) UN with MIN routing":        {"Baseline 2/1", "DAMQ75 2/1", "FlexVC 2/1", "FlexVC 4/2", "FlexVC 8/4"},
				"(b) BURSTY-UN with MIN routing": {"Baseline 2/1", "DAMQ75 2/1", "FlexVC 2/1", "FlexVC 4/2", "FlexVC 8/4"},
				"(c) ADV with VAL routing":       {"Baseline 4/2", "DAMQ75 4/2", "FlexVC 4/2", "FlexVC 8/4"},
			},
		},
		{
			src: "smoke", name: "smoke",
			sections: map[string][]string{
				"UN with MIN routing": {"Baseline 2/1", "FlexVC 4/2"},
			},
		},
		{
			// The manifest-recorded campaign (experiments/manifest.json entry
			// pb-policies-transient): its keys guard committed artefacts.
			src: "../../experiments/pb-policies-transient/campaign.json", name: "pb-policies-transient",
			sections: map[string][]string{
				"UN -> ADV -> UN under PB": {"Baseline 4/2", "FlexVC 4/2", "FlexVC-minCred 4/2"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Resolve(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if c.Name != tc.name {
				t.Fatalf("campaign name %q, want %q (it keys the results export)", c.Name, tc.name)
			}
			verifySections(t, c, tc.sections)

			// Round trip: reformatting or regenerating the JSON must not move
			// a single key.
			b, err := json.Marshal(c)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := Parse(b)
			if err != nil {
				t.Fatalf("re-marshalled spec rejected: %v", err)
			}
			verifySections(t, c2, tc.sections)
		})
	}
}

func verifySections(t *testing.T, c *Campaign, want map[string][]string) {
	t.Helper()
	secs, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(secs) != len(want) {
		t.Errorf("%s: %d sections, want %d", c.Name, len(secs), len(want))
	}
	for _, sec := range secs {
		labels, ok := want[sec.Title]
		if !ok {
			t.Errorf("%s: unexpected section title %q (results keys must stay stable)", c.Name, sec.Title)
			continue
		}
		if len(sec.Variants) != len(labels) {
			t.Errorf("%s/%s: %d variants, want %d", c.Name, sec.Title, len(sec.Variants), len(labels))
			continue
		}
		for i, v := range sec.Variants {
			if v.Label != labels[i] {
				t.Errorf("%s/%s[%d]: label %q, want %q (results keys must stay stable)", c.Name, sec.Title, i, v.Label, labels[i])
			}
		}
	}
}
