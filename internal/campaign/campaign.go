// Package campaign turns experiments into data: a Campaign is a declarative
// JSON description of a complete experiment — a base configuration, named
// variant axes over the simulator's enumerable knobs (VC-management policy,
// VC arrangement, selection function, routing, traffic, buffer organisation,
// …), offered-load sweep points, seeds, a scale, and optionally a phased
// scenario — that compiles into the sweep layer's variant lists and runs
// through the existing checkpointed runner. A campaign therefore resumes,
// exports results JSON and renders exactly like the built-in figures; a new
// workload comparison is a spec file, not a new Go runner.
//
// # Spec layout
//
// A campaign has a name (the experiment id in results keys and export file
// names), optional defaults (scale, seeds, loads, base settings, axes) and a
// list of sections — the panels of the rendered figure. Each section names
// its title, optional setting overrides, its loads (or a scenario whose peak
// load is used) and its variants, given either explicitly or as the
// cross-product of named axes. Every enumerable value is written in the same
// textual vocabulary the CLIs use ("flexvc", "4/2+2/1", "pb", "damq", …) and
// is parsed fail-fast at load time: unknown fields, unknown enum values and
// out-of-range parameters are rejected with messages naming the offending
// section, axis and field.
//
// # Determinism contract
//
// Compilation is pure: the same spec always yields the same section order,
// variant order and labels, and every setting maps onto config.Config fields
// that are covered by the results store's config fingerprint. Campaign runs
// therefore checkpoint, resume and export bit-identically to an equivalent
// hand-coded experiment — TestFig5CampaignByteIdentical proves this for the
// embedded fig5 spec against the Go-coded fig5 runner.
package campaign

import (
	"bytes"
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flexvc/internal/scenario"
)

// Campaign is the top level of a spec file. Fields set here are defaults for
// every section.
type Campaign struct {
	// Name is the experiment id: it keys every checkpoint and names the
	// results export (<name>.results.json), so it must be a lowercase slug.
	Name string `json:"name"`
	// Title is the human-readable experiment title, stamped into exports and
	// rendered report headers.
	Title string `json:"title,omitempty"`
	// Scale is the default system scale ("tiny", "small", "medium", "paper");
	// the run options' scale, when set, wins.
	Scale string `json:"scale,omitempty"`
	// Seeds is the default number of replications per point; the run
	// options' seed count, when set, wins.
	Seeds int `json:"seeds,omitempty"`
	// Base settings apply to every variant of every section, before section
	// and variant settings.
	Base *Settings `json:"base,omitempty"`
	// Loads is the default offered-load sweep for sections without their own.
	Loads []float64 `json:"loads,omitempty"`
	// Axes and Variants are the default variant definition for sections
	// without their own (exactly one of the two may be set).
	Axes     []Axis        `json:"axes,omitempty"`
	Variants []VariantSpec `json:"variants,omitempty"`
	// Sections are the experiment's panels, run serially in order.
	Sections []SectionSpec `json:"sections"`
	// Notes are appended verbatim to the rendered report.
	Notes []string `json:"notes,omitempty"`
}

// SectionSpec is one panel of a campaign.
type SectionSpec struct {
	// Title names the section; it is part of every results key of the panel.
	Title string `json:"title"`
	// Base settings apply to every variant of this section, after the
	// campaign base and before variant settings.
	Base *Settings `json:"base,omitempty"`
	// Loads is the section's offered-load sweep. Defaults to the campaign
	// loads, or to the scenario's peak load when a scenario is set.
	Loads []float64 `json:"loads,omitempty"`
	// Axes and Variants define the panel's variants (exactly one of the two;
	// defaults to the campaign-level definition when both are absent). Axes
	// cross-product: one variant per combination of one value from each axis,
	// the first axis varying slowest, labels joined with a space.
	Axes     []Axis        `json:"axes,omitempty"`
	Variants []VariantSpec `json:"variants,omitempty"`
	// Scenario, when set, runs the panel as a phased transient workload
	// (windowed telemetry, adaptation lags) instead of a steady-state sweep.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
}

// Axis is one named dimension of a cross-product variant definition.
type Axis struct {
	// Name labels the axis in error messages.
	Name string `json:"name"`
	// Values are the axis' points.
	Values []VariantSpec `json:"values"`
}

// VariantSpec is one named settings bundle: a full variant when listed under
// "variants", one axis value when listed under an axis.
type VariantSpec struct {
	// Label is the variant's stable identity in results keys (axis values
	// contribute a space-joined fragment of it). Renaming a label orphans
	// recorded checkpoints, exactly like renaming a Go variant label.
	Label string `json:"label"`
	// Set holds the settings the variant applies.
	Set Settings `json:"set"`
}

// Parse decodes and validates a campaign spec from JSON. Unknown fields are
// rejected so typos in hand-written specs fail loudly instead of silently
// falling back to defaults.
func Parse(data []byte) (*Campaign, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Campaign
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads and validates a campaign spec file.
func Load(path string) (*Campaign, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// nameOK reports whether a campaign name is a usable experiment slug: the
// export file is <name>.results.json, so the name must survive the results
// layer's sanitizer unchanged.
func nameOK(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return name[0] != '-' && name[len(name)-1] != '-'
}

// Validate checks the spec for structural consistency and parses every
// setting, returning the first problem found with enough context to fix the
// JSON from the message alone. It is called by Parse; Compile revalidates, so
// programmatically built campaigns fail just as loudly.
func (c *Campaign) Validate() error {
	_, err := c.Compile()
	return err
}

// ReportTitle returns the campaign's display title (falling back to the
// name).
func (c *Campaign) ReportTitle() string {
	if c.Title != "" {
		return c.Title
	}
	return c.Name
}

// --- embedded specs ---------------------------------------------------------

//go:embed specs/*.json
var specFS embed.FS

// BuiltinNames lists the embedded campaign specs in sorted order.
func BuiltinNames() []string {
	entries, err := fs.ReadDir(specFS, "specs")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// Builtin returns the embedded campaign spec with the given name.
func Builtin(name string) (*Campaign, error) {
	b, err := specFS.ReadFile("specs/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("campaign: no embedded spec %q (have: %s)", name, strings.Join(BuiltinNames(), ", "))
	}
	c, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("embedded spec %s: %w", name, err)
	}
	return c, nil
}

// Resolve loads a campaign spec from a file path, or — when the argument
// names no existing file — from the embedded specs. This is what lets the
// CLIs accept both `-campaign fig5` and `-campaign my/spec.json`.
func Resolve(arg string) (*Campaign, error) {
	if _, err := os.Stat(arg); err == nil {
		return Load(arg)
	}
	if strings.ContainsAny(arg, "/\\.") {
		// Looks like a path: report the missing file, not a bogus
		// embedded-spec miss.
		return nil, fmt.Errorf("campaign: spec file %s does not exist", filepath.Clean(arg))
	}
	return Builtin(arg)
}
