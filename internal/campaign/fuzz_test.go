package campaign

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"flexvc/internal/config"
	"flexvc/internal/results"
)

// compiledShape reduces a compiled campaign to its comparable essence: section
// titles, loads, scenarios, variant labels, and — because Apply is a closure —
// the config fingerprint each variant produces from a fixed base. Two specs
// with equal shapes run the same simulations under the same results keys.
func compiledShape(t *testing.T, c *Campaign) []map[string]any {
	t.Helper()
	sections, err := c.Compile()
	if err != nil {
		t.Fatalf("validated campaign does not compile: %v", err)
	}
	base, err := config.AtScale("small")
	if err != nil {
		t.Fatal(err)
	}
	shape := make([]map[string]any, 0, len(sections))
	for _, sec := range sections {
		labels := make([]string, 0, len(sec.Variants))
		prints := make([]string, 0, len(sec.Variants))
		for _, v := range sec.Variants {
			labels = append(labels, v.Label)
			cfg := base
			v.Apply(&cfg)
			prints = append(prints, results.Fingerprint(cfg))
		}
		shape = append(shape, map[string]any{
			"title":    sec.Title,
			"loads":    sec.Loads,
			"scenario": sec.Scenario,
			"labels":   labels,
			"prints":   prints,
		})
	}
	return shape
}

// FuzzCampaignParse fuzzes the campaign spec loader: Parse must never panic,
// and any spec it accepts must survive marshal → re-parse with an equivalent
// compiled form — identical section titles, loads, scenarios, variant labels
// and per-variant config fingerprints. That is the invariant that makes specs
// safe to reformat or regenerate without orphaning recorded checkpoints.
func FuzzCampaignParse(f *testing.F) {
	for _, name := range BuiltinNames() {
		if b, err := specFS.ReadFile("specs/" + name + ".json"); err == nil {
			f.Add(b)
		}
	}
	if b, err := os.ReadFile("../../experiments/pb-policies-transient/campaign.json"); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"name":"t","loads":[0.4],"sections":[
		{"title":"one","variants":[{"label":"a","set":{}}]}]}`))
	f.Add([]byte(`{"name":"t","loads":[0.2,0.4],"sections":[{"title":"axes","axes":[
		{"name":"policy","values":[{"label":"pb","set":{"policy":"pb"}},{"label":"abr","set":{"policy":"abr"}}]},
		{"name":"vc","values":[{"label":"4/2+2/1","set":{"vcs":"4/2+2/1"}}]}]}]}`))
	f.Add([]byte(`{"name":"Bad Name","sections":[]}`))
	f.Add([]byte(`{"name":"t","sections":[{"title":"dup"},{"title":"dup"}]}`))
	f.Add([]byte(`{"unknown":true}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted campaign does not marshal: %v", err)
		}
		c2, err := Parse(b)
		if err != nil {
			t.Fatalf("re-marshalled campaign rejected: %v\n%s", err, b)
		}
		if c.Name != c2.Name || c.ReportTitle() != c2.ReportTitle() {
			t.Fatalf("round trip changed identity: %q/%q vs %q/%q", c.Name, c.ReportTitle(), c2.Name, c2.ReportTitle())
		}
		if !reflect.DeepEqual(compiledShape(t, c), compiledShape(t, c2)) {
			t.Fatalf("round trip changed the compiled form:\n%s", b)
		}
	})
}
