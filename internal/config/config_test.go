package config

import (
	"testing"

	"flexvc/internal/buffer"
	"flexvc/internal/core"
	"flexvc/internal/routing"
	"flexvc/internal/topology"
)

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"paper": Paper(), "medium": Medium(), "small": Small(), "tiny": Tiny(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
		topo, err := cfg.BuildTopology()
		if err != nil {
			t.Errorf("%s preset topology: %v", name, err)
			continue
		}
		if err := topology.Validate(topo); err != nil {
			t.Errorf("%s preset topology inconsistent: %v", name, err)
		}
	}
	paper := Paper()
	topo, _ := paper.BuildTopology()
	if topo.NumRouters() != 2064 || topo.NumNodes() != 16512 {
		t.Errorf("paper preset should be the full-scale system, got %d routers / %d nodes",
			topo.NumRouters(), topo.NumNodes())
	}
}

func TestValidationRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero packet size", func(c *Config) { c.PacketSize = 0 }},
		{"negative load", func(c *Config) { c.Load = -0.1 }},
		{"excess load", func(c *Config) { c.Load = 1.5 }},
		{"zero speedup", func(c *Config) { c.Speedup = 0 }},
		{"no injection queues", func(c *Config) { c.InjectionQueues = 0 }},
		{"no measurement window", func(c *Config) { c.MeasureCycles = 0 }},
		{"unknown topology", func(c *Config) { c.Topology = "torus" }},
		{"VCs too small for MIN", func(c *Config) { c.Scheme.VCs = core.SingleClass(1, 1) }},
		{"baseline VAL without VCs", func(c *Config) {
			c.Routing = routing.VAL
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.SingleClass(2, 1), Selection: core.JSQ}
		}},
		{"FlexVC VAL with forbidden VCs", func(c *Config) {
			c.Routing = routing.VAL
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(2, 2), Selection: core.JSQ}
		}},
		{"reply VCs without reactive", func(c *Config) { c.Scheme.VCs = core.TwoClass(2, 1, 2, 1) }},
	}
	for _, tc := range cases {
		cfg := Small()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	// FlexVC with 3/2 supports opportunistic Valiant and must be accepted.
	cfg := Small()
	cfg.Routing = routing.VAL
	cfg.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(3, 2), Selection: core.JSQ}
	if err := cfg.Validate(); err != nil {
		t.Errorf("FlexVC 3/2 with VAL should validate: %v", err)
	}
}

func TestPortBufferConfig(t *testing.T) {
	cfg := Small()
	cfg.BufferOrg = buffer.Static
	b := cfg.PortBufferConfig(topology.Local, 2)
	if b.Org != buffer.Static || b.NumVCs != 2 || b.CapacityPerVC != cfg.LocalBufPerVC {
		t.Errorf("static local port config broken: %+v", b)
	}
	cfg.BufferOrg = buffer.DAMQ
	d := cfg.PortBufferConfig(topology.Global, 2)
	if d.Org != buffer.DAMQ || d.TotalCapacity() != 2*cfg.GlobalBufPerVC {
		t.Errorf("DAMQ global port should be iso-memory with static: %+v", d)
	}
	// Injection ports stay statically partitioned regardless of the
	// organisation (they are per-node queues).
	inj := cfg.PortBufferConfig(topology.Terminal, 3)
	if inj.Org != buffer.Static || inj.CapacityPerVC != cfg.InjBufPerVC {
		t.Errorf("terminal port config broken: %+v", inj)
	}
}

func TestLinkLatencyAndClasses(t *testing.T) {
	cfg := Small()
	if cfg.LinkLatency(topology.Global) != cfg.GlobalLatency ||
		cfg.LinkLatency(topology.Local) != cfg.LocalLatency ||
		cfg.LinkLatency(topology.Terminal) != cfg.InjectionLatency {
		t.Error("LinkLatency broken")
	}
	if cfg.NumClasses() != 1 {
		t.Error("single-class by default")
	}
	cfg.Reactive = true
	if cfg.NumClasses() != 2 {
		t.Error("reactive means two classes")
	}
	if cfg.Describe() == "" {
		t.Error("empty description")
	}
}

func TestFlattenedButterflyConfig(t *testing.T) {
	cfg := Small()
	cfg.Topology = TopoFlattenedButterfly
	cfg.K = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("flattened butterfly config invalid: %v", err)
	}
	topo, err := cfg.BuildTopology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumRouters() != 16 {
		t.Errorf("4x4 flattened butterfly should have 16 routers, got %d", topo.NumRouters())
	}
}
