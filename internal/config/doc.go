// Package config defines the simulation parameters of the FlexVC evaluation
// and provides presets: the paper's full-scale Dragonfly (Table V) and
// scaled-down instances usable for tests and continuous benchmarking.
//
// # Traffic parameters and their defaults
//
// Traffic selects the synthetic pattern; Load is the offered load in
// phits/node/cycle and PacketSize the packet length in phits. The presets
// (Default/Paper, Medium, Small, Tiny) share the paper's traffic defaults:
//
//   - Load 0.5, PacketSize 8 phits.
//   - AvgBurstLength 5 packets — the mean ON-burst length of the BURSTY-UN
//     two-state Markov model (Table V). It must be at least 1 packet;
//     Validate rejects smaller values up front instead of letting the
//     generator clamp them silently.
//   - HotspotFraction 0.25 — the fraction of group-hotspot traffic aimed at
//     the hot group (the remainder is uniform). HotspotGroup 0 selects the
//     hot group (a router index on single-group topologies). Validate
//     requires the fraction to stay within [0,1]; the group index is checked
//     against the topology when the generator is built.
//
// # Phased scenarios
//
// Scenario, when non-nil, replaces the single (Traffic, Load) pair with a
// timed sequence of phases (see internal/scenario): the run simulates
// exactly Scenario.TotalCycles() cycles, measures from cycle 0, and reports
// windowed transient telemetry alongside the steady-state summary.
// WarmupCycles and MeasureCycles are ignored for scenario runs. The scenario
// is part of the configuration value, so config fingerprints (and therefore
// checkpoint reuse in internal/results) distinguish scenario runs exactly
// like any other parameter change.
package config
