package config

import (
	"strings"
	"testing"

	"flexvc/internal/scenario"
)

// TestValidateTrafficParams covers the traffic-parameter validation added
// alongside the scenario engine: bursty burst lengths and hotspot parameters
// fail Validate with actionable messages instead of being clamped later.
func TestValidateTrafficParams(t *testing.T) {
	c := Small()
	c.Traffic = TrafficBursty
	c.AvgBurstLength = 0.5
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "AvgBurstLength") {
		t.Errorf("short burst length not rejected: %v", err)
	}
	c.AvgBurstLength = 0
	if err := c.Validate(); err == nil {
		t.Error("zero burst length accepted for bursty traffic")
	}
	c.AvgBurstLength = 1
	if err := c.Validate(); err != nil {
		t.Errorf("burst length 1 should be valid: %v", err)
	}

	c = Small()
	c.Traffic = TrafficGroupHotspot
	c.HotspotFraction = 1.5
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "hotspot") {
		t.Errorf("hotspot fraction 1.5 not rejected: %v", err)
	}
	c.HotspotFraction = 0.25
	c.HotspotGroup = -1
	if err := c.Validate(); err == nil {
		t.Error("negative hotspot group accepted")
	}
	c.HotspotGroup = 0
	if err := c.Validate(); err != nil {
		t.Errorf("valid hotspot config rejected: %v", err)
	}

	// The permutation patterns need no extra parameters.
	for _, k := range []TrafficKind{TrafficTranspose, TrafficBitReverse, TrafficShuffle} {
		c := Small()
		c.Traffic = k
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

// TestValidateScenario checks that scenario validation runs through
// config.Validate, including the burst-length inheritance rule.
func TestValidateScenario(t *testing.T) {
	c := Small()
	c.Scenario = scenario.UNToADV(0.4, 2000, 2000, 2000, 500)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	c.Scenario.Phases[1].Load = 2
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "load") {
		t.Errorf("bad scenario load not rejected: %v", err)
	}
	c.Scenario = &scenario.Scenario{
		Window: 500,
		Phases: []scenario.Phase{{Pattern: "bursty-un", Load: 0.3, Cycles: 2000}},
	}
	c.AvgBurstLength = 0
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "inherits") {
		t.Errorf("bursty phase inheriting an invalid burst length not rejected: %v", err)
	}
	c.AvgBurstLength = 5
	if err := c.Validate(); err != nil {
		t.Errorf("bursty scenario with inherited burst length rejected: %v", err)
	}
}
