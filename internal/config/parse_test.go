package config

import (
	"strings"
	"testing"
)

// TestTrafficKindRoundTrip exhaustively round-trips every traffic pattern
// through its textual form, so campaign specs can name any pattern and a
// renamed constant cannot silently diverge from the parser.
func TestTrafficKindRoundTrip(t *testing.T) {
	if len(TrafficKinds) != 7 {
		t.Fatalf("TrafficKinds has %d entries; update this test alongside new patterns", len(TrafficKinds))
	}
	for _, k := range TrafficKinds {
		got, err := ParseTrafficKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseTrafficKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	for alias, want := range map[string]TrafficKind{
		"uniform": TrafficUniform, "adversarial": TrafficAdversarial,
		"bursty": TrafficBursty, "bursty-uniform": TrafficBursty,
		"bitrev": TrafficBitReverse, "hotspot": TrafficGroupHotspot,
	} {
		if got, err := ParseTrafficKind(alias); err != nil || got != want {
			t.Errorf("ParseTrafficKind(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
	if _, err := ParseTrafficKind("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("ParseTrafficKind(bogus) err = %v, want an error naming the input", err)
	}
}

// TestAtScaleRoundTrip checks that every canonical scale name resolves and
// that the resolved configurations are the ones the named constructors build.
func TestAtScaleRoundTrip(t *testing.T) {
	want := map[string]Config{
		"tiny":   Tiny(),
		"small":  Small(),
		"medium": Medium(),
		"paper":  Paper(),
	}
	names := ScaleNames()
	if len(names) != len(want) {
		t.Fatalf("ScaleNames() = %v; update this test alongside new scales", names)
	}
	for _, name := range names {
		got, err := AtScale(name)
		if err != nil {
			t.Fatalf("AtScale(%q): %v", name, err)
		}
		if got != want[name] {
			t.Errorf("AtScale(%q) differs from its constructor", name)
		}
	}
	if got, err := AtScale(""); err != nil || got != Small() {
		t.Errorf("AtScale(\"\") = %v, want Small()", err)
	}
	if got, err := AtScale("full"); err != nil || got != Paper() {
		t.Errorf("AtScale(full) = %v, want Paper()", err)
	}
	if _, err := AtScale("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("AtScale(bogus) err = %v, want an error naming the input", err)
	}
}
