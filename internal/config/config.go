package config

import (
	"fmt"
	"strings"

	"flexvc/internal/buffer"
	"flexvc/internal/core"
	"flexvc/internal/obs"
	"flexvc/internal/routing"
	"flexvc/internal/scenario"
	"flexvc/internal/topology"
	"flexvc/internal/traffic"
)

// TopologyKind selects the simulated network.
type TopologyKind string

const (
	// TopoDragonfly is the paper's evaluation topology.
	TopoDragonfly TopologyKind = "dragonfly"
	// TopoFlattenedButterfly is the generic diameter-2 network used for
	// additional examples.
	TopoFlattenedButterfly TopologyKind = "fbfly"
)

// TrafficKind selects the synthetic traffic pattern.
type TrafficKind string

const (
	// TrafficUniform draws a fresh uniformly random destination per packet.
	TrafficUniform TrafficKind = "un"
	// TrafficAdversarial sends every packet to a random node of the
	// following group (ADV+1).
	TrafficAdversarial TrafficKind = "adv"
	// TrafficBursty is the Markov ON/OFF bursty-uniform model.
	TrafficBursty TrafficKind = "bursty-un"
	// TrafficTranspose, TrafficBitReverse and TrafficShuffle are the classic
	// bit-permutation patterns (defined on the largest power-of-two node
	// subset; the remainder falls back to uniform).
	TrafficTranspose  TrafficKind = "transpose"
	TrafficBitReverse TrafficKind = "bit-reverse"
	TrafficShuffle    TrafficKind = "shuffle"
	// TrafficGroupHotspot concentrates HotspotFraction of the traffic on the
	// nodes of group HotspotGroup.
	TrafficGroupHotspot TrafficKind = "group-hotspot"
)

// TrafficKinds lists every traffic pattern, in a stable order, for sweeps and
// exhaustive round-trip tests.
var TrafficKinds = []TrafficKind{
	TrafficUniform, TrafficAdversarial, TrafficBursty,
	TrafficTranspose, TrafficBitReverse, TrafficShuffle, TrafficGroupHotspot,
}

// String implements fmt.Stringer (a TrafficKind is its own wire form).
func (t TrafficKind) String() string { return string(t) }

// ParseTrafficKind parses a traffic pattern name or alias into its canonical
// TrafficKind, failing fast on unknown names. Parse(String(t)) round-trips
// losslessly for every kind in TrafficKinds.
func ParseTrafficKind(s string) (TrafficKind, error) {
	switch s {
	case "un", "uniform":
		return TrafficUniform, nil
	case "adv", "adversarial":
		return TrafficAdversarial, nil
	case "bursty-un", "bursty", "bursty-uniform":
		return TrafficBursty, nil
	case "transpose":
		return TrafficTranspose, nil
	case "bit-reverse", "bitrev":
		return TrafficBitReverse, nil
	case "shuffle":
		return TrafficShuffle, nil
	case "group-hotspot", "hotspot":
		return TrafficGroupHotspot, nil
	}
	return TrafficUniform, fmt.Errorf("unknown traffic pattern %q (want un, adv, bursty-un, transpose, bit-reverse, shuffle or group-hotspot)", s)
}

// Config is the complete parameter set of one simulation.
type Config struct {
	// --- Topology ---
	Topology TopologyKind
	// Dragonfly parameters: P nodes per router, A routers per group, H
	// global links per router.
	P, A, H int
	// Flattened-butterfly parameter: K routers per dimension.
	K int

	// --- Link and router timing (cycles) ---
	LocalLatency     int
	GlobalLatency    int
	InjectionLatency int
	RouterPipeline   int
	// Speedup is the internal frequency speedup of the router crossbar
	// relative to the links (the paper uses 2; Section VI-D uses 1).
	Speedup int

	// --- Buffers (phits) ---
	LocalBufPerVC  int
	GlobalBufPerVC int
	InjBufPerVC    int
	OutputBuf      int
	// InjectionQueues is the number of injection buffers per node port.
	InjectionQueues int
	// BufferOrg selects statically partitioned buffers or DAMQs.
	BufferOrg buffer.Organization
	// DAMQPrivateFraction is the fraction of port memory reserved privately
	// per VC when BufferOrg is DAMQ (the paper settles on 0.75).
	DAMQPrivateFraction float64

	// --- VC management ---
	Scheme core.Scheme

	// --- Routing ---
	Routing          routing.Kind
	Sensing          routing.Sensing
	RoutingThreshold int // phits, UGAL/PB local-comparison offset

	// --- Traffic ---
	Traffic TrafficKind
	// Load is the offered load in phits/node/cycle.
	Load float64
	// PacketSize is the packet length in phits.
	PacketSize int
	// AvgBurstLength is the mean burst length in packets for BURSTY-UN
	// (>= 1; see doc.go for the defaults).
	AvgBurstLength float64
	// HotspotFraction is the fraction of group-hotspot traffic aimed at the
	// hot group; the rest is uniform.
	HotspotFraction float64
	// HotspotGroup is the hot group of group-hotspot traffic (a router index
	// on single-group topologies).
	HotspotGroup int
	// Reactive enables request-reply traffic: destinations answer every
	// request with a reply to the source.
	Reactive bool

	// --- Phased scenario ---
	// Scenario, when non-nil, replaces Traffic/Load with a timed phase
	// sequence and enables windowed transient telemetry. The run simulates
	// Scenario.TotalCycles() cycles measured from cycle 0; WarmupCycles and
	// MeasureCycles are ignored.
	Scenario *scenario.Scenario

	// --- Precomputed route tables ---
	// RouteTableBytes is the memory gate for the precomputed per-pair route
	// tables (see topology.Precomputer): 0 selects
	// topology.DefaultTableBudget, a positive value sets the budget in bytes,
	// and a negative value disables precomputation entirely (every routing
	// query is computed on the fly). Table-backed and on-the-fly routing are
	// bit-identical; the gate only trades memory for speed.
	RouteTableBytes int

	// --- Execution (not part of the experiment identity) ---
	// Shards is the number of spatial network shards the cycle loop of a
	// single replication may step in parallel: 1 runs the serial loop, 0
	// picks an automatic count from GOMAXPROCS and the network size, and
	// N >= 2 requests N shards (capped at the number of shardable router
	// blocks). Sharded and serial runs are bit-identical by construction
	// (see internal/sim), so this knob only trades cores for latency. It is
	// excluded from the JSON form on purpose: result fingerprints,
	// checkpoint identities and exports must not depend on how many cores
	// executed the run.
	Shards int `json:"-"`

	// Metrics is the observability registry the run reports into (nil
	// disables instrumentation entirely; see internal/obs). Like Shards it
	// is an execution knob, not part of the experiment identity: metrics
	// only observe the run, they never influence simulated state, and the
	// field is excluded from the JSON form so fingerprints, checkpoint
	// identities and exports are byte-identical with metrics on or off
	// (locked by TestMetricsExportInvariant).
	Metrics *obs.Registry `json:"-"`

	// --- Simulation control ---
	WarmupCycles  int64
	MeasureCycles int64
	Seed          int64
	// DeadlockCycles is the watchdog window: if no packet is delivered for
	// this many cycles while packets are in flight, the run is declared
	// deadlocked.
	DeadlockCycles int64
	// MaxCycles caps the total simulated cycles as a safety net.
	MaxCycles int64
}

// Default returns the paper's simulation parameters (Table V) on the
// full-scale Dragonfly. It is expensive to simulate; prefer Small or Medium
// for interactive use.
func Default() Config {
	return Config{
		Topology: TopoDragonfly,
		P:        8, A: 16, H: 8,
		K:                   8,
		LocalLatency:        10,
		GlobalLatency:       100,
		InjectionLatency:    1,
		RouterPipeline:      5,
		Speedup:             2,
		LocalBufPerVC:       32,
		GlobalBufPerVC:      256,
		InjBufPerVC:         256,
		OutputBuf:           32,
		InjectionQueues:     3,
		BufferOrg:           buffer.Static,
		DAMQPrivateFraction: 0.75,
		Scheme: core.Scheme{
			Policy:    core.Baseline,
			VCs:       core.SingleClass(2, 1),
			Selection: core.JSQ,
		},
		Routing:          routing.MIN,
		Sensing:          routing.SensePerVC,
		RoutingThreshold: 24,
		Traffic:          TrafficUniform,
		Load:             0.5,
		PacketSize:       8,
		AvgBurstLength:   5,
		HotspotFraction:  0.25,
		WarmupCycles:     10000,
		MeasureCycles:    60000,
		Seed:             1,
		DeadlockCycles:   20000,
	}
}

// Paper is an alias of Default: the full-scale configuration of Table V.
func Paper() Config { return Default() }

// Small returns a scaled-down Dragonfly (h=2: 9 groups, 36 routers, 72
// nodes) with shortened link latencies, buffers and measurement windows,
// suitable for unit tests and quick sweeps. The qualitative behaviour of the
// mechanisms is preserved.
func Small() Config {
	c := Default()
	c.P, c.A, c.H = 2, 4, 2
	c.LocalLatency = 4
	c.GlobalLatency = 20
	c.LocalBufPerVC = 16
	c.GlobalBufPerVC = 64
	c.InjBufPerVC = 64
	c.OutputBuf = 16
	c.WarmupCycles = 2000
	c.MeasureCycles = 8000
	c.DeadlockCycles = 6000
	return c
}

// Medium returns an intermediate Dragonfly (h=4: 33 groups, 264 routers,
// 1,056 nodes) used by the figure-regeneration harness when more fidelity is
// wanted than Small provides.
func Medium() Config {
	c := Default()
	c.P, c.A, c.H = 4, 8, 4
	c.LocalLatency = 10
	c.GlobalLatency = 50
	c.LocalBufPerVC = 32
	c.GlobalBufPerVC = 128
	c.InjBufPerVC = 128
	c.OutputBuf = 32
	c.WarmupCycles = 5000
	c.MeasureCycles = 20000
	c.DeadlockCycles = 10000
	return c
}

// Tiny returns the smallest non-degenerate Dragonfly (h=1: 3 groups, 6
// routers, 6 nodes), useful for exhaustive invariant tests.
func Tiny() Config {
	c := Small()
	c.P, c.A, c.H = 1, 2, 1
	c.WarmupCycles = 500
	c.MeasureCycles = 2000
	c.DeadlockCycles = 3000
	return c
}

// ScaleNames lists the canonical scale names AtScale accepts, in increasing
// system size, for help text and exhaustive round-trip tests.
func ScaleNames() []string { return []string{"tiny", "small", "medium", "paper"} }

// AtScale returns the configuration for a scale name. The empty string means
// "small" (the interactive default) and "full" is accepted as an alias of
// "paper"; anything else errors, so spec files and flags fail loudly.
func AtScale(name string) (Config, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "", "small":
		return Small(), nil
	case "medium":
		return Medium(), nil
	case "paper", "full":
		return Paper(), nil
	}
	return Config{}, fmt.Errorf("unknown scale %q (want %s)", name, strings.Join(ScaleNames(), ", "))
}

// BuildTopology instantiates the configured topology.
func (c Config) BuildTopology() (topology.Topology, error) {
	switch c.Topology {
	case TopoDragonfly:
		return topology.NewDragonfly(c.P, c.A, c.H)
	case TopoFlattenedButterfly:
		return topology.NewFlattenedButterfly2D(c.K, c.P)
	default:
		return nil, fmt.Errorf("config: unknown topology %q", c.Topology)
	}
}

// NumClasses returns the number of message classes of the workload.
func (c Config) NumClasses() int {
	if c.Reactive {
		return 2
	}
	return 1
}

// LinkLatency returns the latency of a link of the given kind.
func (c Config) LinkLatency(k topology.PortKind) int {
	switch k {
	case topology.Global:
		return c.GlobalLatency
	case topology.Local:
		return c.LocalLatency
	default:
		return c.InjectionLatency
	}
}

// BufferCapacityPerVC returns the per-VC buffer capacity of an input port of
// the given kind.
func (c Config) BufferCapacityPerVC(k topology.PortKind) int {
	switch k {
	case topology.Global:
		return c.GlobalBufPerVC
	case topology.Local:
		return c.LocalBufPerVC
	default:
		return c.InjBufPerVC
	}
}

// PortBufferConfig returns the buffer configuration of an input port of the
// given kind, honouring the buffer organisation. The total port memory equals
// VCs x per-VC capacity in both organisations so comparisons are iso-memory,
// as in the paper.
func (c Config) PortBufferConfig(k topology.PortKind, numVCs int) buffer.Config {
	per := c.BufferCapacityPerVC(k)
	if k == topology.Terminal || c.BufferOrg == buffer.Static {
		return buffer.StaticConfig(numVCs, per)
	}
	return buffer.DAMQConfig(numVCs, numVCs*per, c.DAMQPrivateFraction)
}

// Validate checks the configuration for consistency and returns the first
// problem found.
func (c Config) Validate() error {
	if c.PacketSize <= 0 {
		return fmt.Errorf("config: packet size must be positive")
	}
	if c.Load < 0 || c.Load > 1.0001 {
		return fmt.Errorf("config: load %.3f outside [0,1]", c.Load)
	}
	if c.Speedup < 1 {
		return fmt.Errorf("config: speedup must be >= 1")
	}
	if c.InjectionQueues < 1 {
		return fmt.Errorf("config: need at least one injection queue")
	}
	if c.WarmupCycles < 0 || c.MeasureCycles <= 0 {
		return fmt.Errorf("config: invalid warmup/measurement windows")
	}
	if c.Shards < 0 {
		return fmt.Errorf("config: shard count must be >= 0 (0 = auto), got %d", c.Shards)
	}
	if c.Traffic == TrafficBursty && c.AvgBurstLength < 1 {
		return fmt.Errorf("config: bursty-un traffic needs AvgBurstLength >= 1 packet, got %g (the paper's Table V uses 5)", c.AvgBurstLength)
	}
	if c.HotspotFraction < 0 || c.HotspotFraction > 1 {
		return fmt.Errorf("config: hotspot fraction %.3f outside [0,1]", c.HotspotFraction)
	}
	if c.Traffic == TrafficGroupHotspot && c.HotspotGroup < 0 {
		return fmt.Errorf("config: hotspot group must be non-negative, got %d", c.HotspotGroup)
	}
	if c.Scenario != nil {
		if err := c.Scenario.Validate(); err != nil {
			return err
		}
		for i, p := range c.Scenario.Phases {
			if name, _ := traffic.CanonicalPattern(p.Pattern); name == traffic.NameBursty && p.AvgBurstLength == 0 && c.AvgBurstLength < 1 {
				return fmt.Errorf("config: scenario phase %d inherits AvgBurstLength %g; bursty phases need >= 1 packet", i, c.AvgBurstLength)
			}
		}
	}
	topo, err := c.BuildTopology()
	if err != nil {
		return err
	}
	if err := c.Scheme.VCs.Validate(topo.Diameter(), c.Reactive); err != nil {
		return err
	}
	if c.Routing.Nonminimal() && c.Scheme.Policy == core.Baseline {
		// The baseline must hold the full Valiant reference path in its
		// fixed-order VCs.
		need := core.FromHopCount(topo.MaxValiantHops())
		if c.Routing == routing.PAR {
			need.Local++
		}
		if !c.Scheme.VCs.Request.AtLeast(need) {
			return fmt.Errorf("config: baseline VC set %s cannot support %s routing (needs %s per class)",
				c.Scheme.VCs, c.Routing, need)
		}
	}
	if c.Routing.Nonminimal() && c.Scheme.Policy == core.FlexVC {
		// FlexVC needs at least an opportunistic Valiant path.
		mode := core.ModeVAL
		if c.Routing == routing.PAR {
			mode = core.ModePAR
		}
		ref := core.Reference(topo, mode)
		if core.Classify(c.Scheme.VCs, 0, ref) == core.Forbidden {
			return fmt.Errorf("config: FlexVC set %s forbids %s routing on %s", c.Scheme.VCs, c.Routing, topo.Name())
		}
	}
	if c.BufferOrg == buffer.DAMQ && (c.DAMQPrivateFraction < 0 || c.DAMQPrivateFraction > 1) {
		return fmt.Errorf("config: DAMQ private fraction %.2f outside [0,1]", c.DAMQPrivateFraction)
	}
	return nil
}

// Describe returns a short human-readable summary of the configuration.
func (c Config) Describe() string {
	if c.Scenario != nil {
		return fmt.Sprintf("%s %s routing=%s sensing=%s scenario=%s reactive=%v buffers=%s speedup=%dx",
			c.Topology, c.Scheme, c.Routing, c.Sensing, c.Scenario.Describe(), c.Reactive, c.BufferOrg, c.Speedup)
	}
	return fmt.Sprintf("%s %s routing=%s sensing=%s traffic=%s load=%.2f reactive=%v buffers=%s speedup=%dx",
		c.Topology, c.Scheme, c.Routing, c.Sensing, c.Traffic, c.Load, c.Reactive, c.BufferOrg, c.Speedup)
}
