package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is a results directory: one atomically-written JSON file per
// completed replication under records/, plus manifest.json summarizing what
// is present. The directory is the source of truth — Open rebuilds the
// in-memory index (and the manifest) by scanning records/, so a crash between
// a record write and a manifest write self-heals, and a deleted manifest is
// merely regenerated.
type Store struct {
	dir      string
	revision string

	mu   sync.Mutex
	recs map[Key]storedRecord
	// active marks the keys the current process has actually produced or
	// restored (see MarkActive). Exports restrict to active keys so records
	// left over from earlier runs with different parameters (more seeds, a
	// changed configuration at loads that were not overwritten) never leak
	// into a freshly exported results file — they stay on disk, though,
	// since they remain valid checkpoints for a future run that wants them.
	active map[Key]bool
	// manifestDirty tracks records added since the last manifest write (the
	// manifest is advisory — Open regenerates it from records/ — so it is
	// rewritten at most once per manifestEvery puts plus on Flush).
	manifestDirty int
	// metrics holds the observability handles (zero value: disabled). See
	// SetMetrics in metrics.go.
	metrics storeMetrics
}

type storedRecord struct {
	rec    Record
	file   string
	wallMS float64
}

// manifest is the on-disk summary. It exists for cheap inspection (what is
// done, how long it took) — resuming never trusts it over the record files.
type manifest struct {
	Schema   int             `json:"schema"`
	Revision string          `json:"revision,omitempty"`
	Entries  []manifestEntry `json:"entries"`
}

type manifestEntry struct {
	File        string  `json:"file"`
	Experiment  string  `json:"experiment"`
	Section     string  `json:"section"`
	Variant     string  `json:"variant"`
	Load        float64 `json:"load"`
	Seed        int     `json:"seed"`
	Fingerprint string  `json:"fingerprint"`
	WallMS      float64 `json:"wall_ms"`
}

const (
	recordsSubdir = "records"
	manifestName  = "manifest.json"
)

// Open opens (creating if necessary) a results directory and indexes every
// readable record in it. Unreadable or torn files — crash leftovers — are
// skipped: their keys simply count as not done and will be re-simulated.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, recordsSubdir), 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, recs: make(map[Key]storedRecord), active: make(map[Key]bool)}

	// Wall times live only in the manifest; carry them over where the entry
	// still matches an on-disk record.
	wall := map[string]float64{}
	if b, err := os.ReadFile(filepath.Join(dir, manifestName)); err == nil {
		var m manifest
		if json.Unmarshal(b, &m) == nil && m.Schema == SchemaVersion {
			s.revision = m.Revision
			for _, e := range m.Entries {
				wall[e.File] = e.WallMS
			}
		}
	}

	entries, err := os.ReadDir(filepath.Join(dir, recordsSubdir))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, recordsSubdir, name))
		if err != nil {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil || rec.Validate() != nil {
			continue
		}
		s.recs[rec.Key()] = storedRecord{rec: rec, file: name, wallMS: wall[name]}
	}
	if err := s.writeManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// SetRevision records the source revision the results were produced from; it
// is stamped into the manifest and every export.
func (s *Store) SetRevision(rev string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revision = rev
	_ = s.writeManifest()
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// WallTotal returns the summed wall-clock time of every recorded replication
// (across all resumes — the cumulative compute invested in this directory).
func (s *Store) WallTotal() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ms float64
	for _, sr := range s.recs {
		ms += sr.wallMS
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// Get returns the stored record for key if present with a matching config
// fingerprint. A fingerprint mismatch means the configuration behind the key
// changed since the record was written; the record is stale and Get misses.
// A hit marks the key active (it is part of the current run).
func (s *Store) Get(key Key, fingerprint string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.recs[key]
	if !ok || sr.rec.Fingerprint != fingerprint {
		return Record{}, false
	}
	s.active[key] = true
	return sr.rec, true
}

// Put checkpoints one completed replication: the record file is written
// atomically (same key always maps to the same file name, so stale records
// are overwritten in place), then the manifest is refreshed. After Put
// returns, a crash cannot lose the replication.
func (s *Store) Put(rec Record, wall time.Duration) error {
	if h := s.metrics.putLatency; h != nil {
		defer h.Since(time.Now())
	}
	rec.Schema = SchemaVersion
	if err := rec.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	name := recordFileName(rec.Key())
	if err := writeFileAtomic(filepath.Join(s.dir, recordsSubdir, name), append(b, '\n')); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[rec.Key()] = storedRecord{rec: rec, file: name, wallMS: float64(wall) / float64(time.Millisecond)}
	s.active[rec.Key()] = true
	s.metrics.records.Set(int64(len(s.recs)))
	// The record file above is the durable checkpoint; the manifest is a
	// regenerable summary, so amortize its O(records) rewrite instead of
	// paying it (under the lock) for every replication of a large sweep.
	s.manifestDirty++
	if s.manifestDirty < manifestEvery {
		return nil
	}
	return s.writeManifest()
}

// manifestEvery bounds how many Puts may pass between manifest rewrites.
const manifestEvery = 25

// Flush rewrites the manifest if Puts have accumulated since the last write.
// Callers that want the manifest exactly current (end of a run, before
// inspecting the directory) call it; a crash beforehand loses nothing but
// the wall-time annotations of the unflushed records, since Open rebuilds
// the manifest from the record files.
func (s *Store) Flush() error {
	if h := s.metrics.flushLatency; h != nil {
		defer h.Since(time.Now())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.manifestDirty == 0 {
		return nil
	}
	return s.writeManifest()
}

// recordFileName derives the record's file name from its key alone — stable
// across runs and across processes, so re-running a point overwrites rather
// than accumulates, and any worker can locate any key's record (or lease)
// without an index.
func recordFileName(k Key) string {
	slug := sanitize(k.Experiment)
	if slug == "" {
		slug = "exp"
	}
	return fmt.Sprintf("%s-%s.json", slug, keyHash(k))
}

// RefreshKey returns the record for key with a matching fingerprint, looking
// past the in-memory index to the directory itself: records written by other
// processes after this store was opened are picked up, indexed and marked
// active. It is the read side of the shard-claim protocol — a worker that
// lost the claim on a key polls RefreshKey until the claim winner's record
// lands.
func (s *Store) RefreshKey(key Key, fingerprint string) (Record, bool) {
	if rec, ok := s.Get(key, fingerprint); ok {
		return rec, true
	}
	name := recordFileName(key)
	b, err := os.ReadFile(filepath.Join(s.dir, recordsSubdir, name))
	if err != nil {
		return Record{}, false
	}
	var rec Record
	if json.Unmarshal(b, &rec) != nil || rec.Validate() != nil {
		return Record{}, false
	}
	if rec.Key() != key || rec.Fingerprint != fingerprint {
		return Record{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[key] = storedRecord{rec: rec, file: name}
	s.active[key] = true
	s.metrics.records.Set(int64(len(s.recs)))
	s.manifestDirty++
	return rec, true
}

// writeManifest rewrites manifest.json atomically. Callers hold s.mu.
func (s *Store) writeManifest() error {
	m := manifest{Schema: SchemaVersion, Revision: s.revision}
	for _, sr := range s.recs {
		m.Entries = append(m.Entries, manifestEntry{
			File:        sr.file,
			Experiment:  sr.rec.Experiment,
			Section:     sr.rec.Section,
			Variant:     sr.rec.Variant,
			Load:        sr.rec.Load,
			Seed:        sr.rec.Seed,
			Fingerprint: sr.rec.Fingerprint,
			WallMS:      sr.wallMS,
		})
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].File < m.Entries[j].File })
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(s.dir, manifestName), append(b, '\n')); err != nil {
		return err
	}
	s.manifestDirty = 0
	return nil
}

// Export collects the experiment's records into a deterministic File: sorted
// by the original (section, variant, point, seed) ordinals, with labels as
// tie-breakers so the order is total even across schema misuse.
//
// When the current process has run (or restored) any replication of the
// experiment, only those active keys are exported: records left on disk by
// earlier runs with different parameters never leak into the results file.
// Exporting from a directory this process has not simulated into (no active
// keys, e.g. a standalone re-export) includes everything.
func (s *Store) Export(experiment, title string) *File {
	s.mu.Lock()
	defer s.mu.Unlock()
	anyActive := false
	for key := range s.active {
		if key.Experiment == experiment {
			anyActive = true
			break
		}
	}
	f := &File{Schema: SchemaVersion, Experiment: experiment, Title: title, Revision: s.revision}
	for key, sr := range s.recs {
		if sr.rec.Experiment != experiment {
			continue
		}
		if anyActive && !s.active[key] {
			continue
		}
		f.Records = append(f.Records, sr.rec)
	}
	sort.Slice(f.Records, func(i, j int) bool {
		a, b := f.Records[i], f.Records[j]
		if a.SectionIndex != b.SectionIndex {
			return a.SectionIndex < b.SectionIndex
		}
		if a.Section != b.Section {
			return a.Section < b.Section
		}
		if a.VariantIndex != b.VariantIndex {
			return a.VariantIndex < b.VariantIndex
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		if a.PointIndex != b.PointIndex {
			return a.PointIndex < b.PointIndex
		}
		if a.Load != b.Load {
			return a.Load < b.Load
		}
		return a.Seed < b.Seed
	})
	for _, r := range f.Records {
		if f.Scale == "" {
			f.Scale = r.Scale
		}
		if r.Seed+1 > f.Seeds {
			f.Seeds = r.Seed + 1
		}
	}
	return f
}

// WriteExport writes the experiment's export file atomically and returns its
// path: <dir>/<experiment>.results.json. Records are one line each — compact
// enough to check reference runs into the repository, with line-oriented
// diffs per replication.
func (s *Store) WriteExport(experiment, title string) (string, error) {
	f := s.Export(experiment, title)
	head, err := json.Marshal(struct {
		Schema     int    `json:"schema"`
		Experiment string `json:"experiment"`
		Title      string `json:"title,omitempty"`
		Scale      string `json:"scale,omitempty"`
		Seeds      int    `json:"seeds,omitempty"`
		Revision   string `json:"revision,omitempty"`
	}{f.Schema, f.Experiment, f.Title, f.Scale, f.Seeds, f.Revision})
	if err != nil {
		return "", err
	}
	var buf []byte
	buf = append(buf, head[:len(head)-1]...) // strip the closing brace
	buf = append(buf, []byte(",\"records\":[\n")...)
	for i, r := range f.Records {
		line, err := json.Marshal(r)
		if err != nil {
			return "", err
		}
		if i > 0 {
			buf = append(buf, ',', '\n')
		}
		buf = append(buf, line...)
	}
	buf = append(buf, []byte("\n]}\n")...)
	path := filepath.Join(s.dir, sanitize(experiment)+".results.json")
	if err := writeFileAtomic(path, buf); err != nil {
		return "", err
	}
	// An export marks the end of a run; bring the manifest current too.
	return path, s.Flush()
}

// Merge imports every record of other that this store does not already hold
// (matched by key; an existing record wins regardless of fingerprint, so
// merge never silently replaces data). It returns how many were added.
func (s *Store) Merge(other *Store) (int, error) {
	other.mu.Lock()
	incoming := make([]storedRecord, 0, len(other.recs))
	for _, sr := range other.recs {
		incoming = append(incoming, sr)
	}
	other.mu.Unlock()
	sort.Slice(incoming, func(i, j int) bool { return incoming[i].file < incoming[j].file })

	added := 0
	for _, sr := range incoming {
		s.mu.Lock()
		_, exists := s.recs[sr.rec.Key()]
		s.mu.Unlock()
		if exists {
			continue
		}
		if err := s.Put(sr.rec, time.Duration(sr.wallMS*float64(time.Millisecond))); err != nil {
			return added, err
		}
		added++
	}
	return added, s.Flush()
}
