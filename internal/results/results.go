// Package results is the durable, machine-readable output layer of the
// experiment harness: a versioned JSON schema for sweep results, an on-disk
// checkpoint store with a self-healing manifest, and deterministic export
// files that cmd/figures renders into EXPERIMENTS.md without re-simulating.
//
// The unit of persistence is the Record: one completed replication of one
// (experiment, section, variant, offered load, seed). Records are written
// atomically as they finish, so a sweep killed mid-run loses at most the
// replications that were still in flight; re-running against the same
// directory skips everything already recorded (matched by key and config
// fingerprint) and the exported results file is bit-identical to the one an
// uninterrupted run produces. Wall-clock timings are deliberately kept out of
// Record and export files — they live only in the manifest — because they are
// the one quantity that legitimately differs between a resumed and an
// uninterrupted run.
package results

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"

	"flexvc/internal/config"
	"flexvc/internal/stats"
)

// SchemaVersion is the version of the on-disk JSON schema. Writers always
// stamp the current version; readers accept [MinReadSchema, SchemaVersion]
// and reject anything else instead of guessing.
//
// History:
//
//	v1 — initial schema (PR 3).
//	v2 — additive: stats.Result gained the optional windowed time series
//	     (`time_series`) of scenario-driven transient runs. v1 files decode
//	     cleanly (the field is simply absent), so MinReadSchema stays 1.
const SchemaVersion = 2

// MinReadSchema is the oldest schema version this build still reads.
const MinReadSchema = 1

// Key identifies one replication of one sweep point. Seed is the replication
// index (0-based); the PRNG seed actually used is derived from it (see
// sim.ReplicationSeed) and recorded alongside.
type Key struct {
	Experiment string  `json:"experiment"`
	Section    string  `json:"section"`
	Variant    string  `json:"variant"`
	Load       float64 `json:"load"`
	Seed       int     `json:"seed"`
}

// Record is one completed replication: the key, enough provenance to detect
// staleness (config fingerprint, scale, derived PRNG seed), the ordinals that
// reproduce the original section/variant/point ordering at render time, and
// the full measured result including the serialized latency histogram (whose
// percentiles carry stats.PercentileErrorBound relative error).
type Record struct {
	Schema       int          `json:"schema"`
	Experiment   string       `json:"experiment"`
	Section      string       `json:"section"`
	SectionIndex int          `json:"section_index"`
	Variant      string       `json:"variant"`
	VariantIndex int          `json:"variant_index"`
	PointIndex   int          `json:"point_index"`
	Scale        string       `json:"scale"`
	Load         float64      `json:"load"`
	Seed         int          `json:"seed"`
	SimSeed      int64        `json:"sim_seed"`
	Fingerprint  string       `json:"fingerprint"`
	Result       stats.Result `json:"result"`
}

// Key returns the record's identity.
func (r Record) Key() Key {
	return Key{Experiment: r.Experiment, Section: r.Section, Variant: r.Variant, Load: r.Load, Seed: r.Seed}
}

// Validate checks a record for schema and internal consistency.
func (r Record) Validate() error {
	if r.Schema < MinReadSchema || r.Schema > SchemaVersion {
		return fmt.Errorf("results: record schema v%d, this build reads v%d..v%d", r.Schema, MinReadSchema, SchemaVersion)
	}
	if r.Experiment == "" || r.Variant == "" {
		return fmt.Errorf("results: record missing experiment or variant")
	}
	if r.Fingerprint == "" {
		return fmt.Errorf("results: record missing config fingerprint")
	}
	if r.Seed < 0 || r.SectionIndex < 0 || r.VariantIndex < 0 || r.PointIndex < 0 {
		return fmt.Errorf("results: record has negative ordinal")
	}
	if r.Result.Series != nil {
		if err := r.Result.Series.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint returns a short stable hash of the complete simulator
// configuration. Two records with equal keys but different fingerprints come
// from different configurations (changed scale parameters, VC arrangement,
// …); the store treats such records as stale and re-runs them.
func Fingerprint(cfg config.Config) string {
	// config.Config is plain data; JSON field order follows the struct
	// declaration, so the encoding — and the hash — is deterministic.
	b, err := json.Marshal(cfg)
	if err != nil {
		// Unreachable for a plain-data struct; fail loudly rather than
		// silently producing colliding fingerprints.
		panic(fmt.Sprintf("results: config not serializable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// File is the deterministic export of one experiment's records: what
// `figures run` writes next to the checkpoint store and `figures render`
// consumes. Records are sorted by (SectionIndex, VariantIndex, PointIndex,
// Seed), so the bytes depend only on the simulation outcomes — not on
// completion order, parallelism, or how many times the sweep was resumed.
type File struct {
	Schema     int      `json:"schema"`
	Experiment string   `json:"experiment"`
	Title      string   `json:"title,omitempty"`
	Scale      string   `json:"scale,omitempty"`
	Seeds      int      `json:"seeds,omitempty"`
	Revision   string   `json:"revision,omitempty"`
	Records    []Record `json:"records"`
}

// LoadFile reads and validates an exported results file.
func LoadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("results: %s: %w", path, err)
	}
	if f.Schema < MinReadSchema || f.Schema > SchemaVersion {
		return nil, fmt.Errorf("results: %s: schema v%d, this build reads v%d..v%d", path, f.Schema, MinReadSchema, SchemaVersion)
	}
	for i, r := range f.Records {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("results: %s: record %d: %w", path, i, err)
		}
	}
	return &f, nil
}

// SinglePoint is the JSON written by `flexvcsim -out`: one configuration at
// one load, with the per-replication results and their aggregate.
type SinglePoint struct {
	Schema      int            `json:"schema"`
	Description string         `json:"description"`
	Scale       string         `json:"scale,omitempty"`
	Fingerprint string         `json:"fingerprint"`
	Load        float64        `json:"load"`
	Seeds       int            `json:"seeds"`
	Aggregate   stats.Result   `json:"aggregate"`
	Runs        []stats.Result `json:"runs"`
}

// WriteSinglePoint writes a single-point result file atomically.
func WriteSinglePoint(path string, cfg config.Config, scale string, agg stats.Result, runs []stats.Result) error {
	sp := SinglePoint{
		Schema:      SchemaVersion,
		Description: cfg.Describe(),
		Scale:       scale,
		Fingerprint: Fingerprint(cfg),
		Load:        cfg.Load,
		Seeds:       len(runs),
		Aggregate:   agg,
		Runs:        runs,
	}
	b, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(b, '\n'))
}

// tmpSeq disambiguates temporary file names created by concurrent writers in
// the same process; the pid in the name separates processes.
var tmpSeq atomic.Uint64

// createTempFile creates a uniquely-named temporary file next to path with
// mode 0644 (before umask). os.CreateTemp is deliberately not used: it hard-
// codes mode 0600, which would make records written by one user's worker
// unreadable to other processes sharing the results directory.
func createTempFile(path string) (*os.File, error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	for {
		name := filepath.Join(dir, fmt.Sprintf(".tmp-%s-%d-%d", base, os.Getpid(), tmpSeq.Add(1)))
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		return f, err
	}
}

// writeFileAtomic writes data to path via a temporary file and rename, so a
// crash mid-write never leaves a torn file under the final name. The
// temporary file is fsynced before the rename and the directory after it:
// rename alone orders nothing on most filesystems, so without the syncs a
// power loss shortly after could surface a zero-length or torn file under
// the *final* name — exactly the durability Put promises callers.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := createTempFile(path)
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Filesystems that reject directory fsync (some network mounts) degrade to
// the old rename-only behaviour instead of failing the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// sanitize maps an arbitrary label to a filesystem-safe slug.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// keyHash returns a short collision-resistant hash of a key.
func keyHash(k Key) string {
	b, err := json.Marshal(k)
	if err != nil {
		panic(fmt.Sprintf("results: key not serializable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
