package results

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testKey(seed int) Key {
	return Key{Experiment: "lease-test", Section: "(a)", Variant: "FlexVC 4/2", Load: 0.5, Seed: seed}
}

// TestLeaseExclusive requires that of many concurrent claimers exactly one
// wins, and that releasing frees the key for the next claimer.
func TestLeaseExclusive(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)

	const claimers = 16
	var mu sync.Mutex
	var won []*Lease
	var wg sync.WaitGroup
	for i := 0; i < claimers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := store.TryClaim(key, "w", time.Minute)
			if err != nil {
				t.Error(err)
				return
			}
			if l != nil {
				mu.Lock()
				won = append(won, l)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(won) != 1 {
		t.Fatalf("%d claimers won the lease, want exactly 1", len(won))
	}

	// Held: further claims fail without error.
	if l, err := store.TryClaim(key, "w2", time.Minute); err != nil || l != nil {
		t.Fatalf("claim on a held lease: lease=%v err=%v, want nil,nil", l, err)
	}
	// A different key is independent.
	if l, err := store.TryClaim(testKey(1), "w2", time.Minute); err != nil || l == nil {
		t.Fatalf("claim on a free key: lease=%v err=%v, want success", l, err)
	}

	won[0].Release()
	l, err := store.TryClaim(key, "w3", time.Minute)
	if err != nil || l == nil {
		t.Fatalf("claim after release: lease=%v err=%v, want success", l, err)
	}
	l.Release()
}

// TestLeaseStaleTakeover backdates a lease past its TTL and requires the
// next claimer to take it over — the path that lets a surviving worker
// finish the keys of a SIGKILLed peer.
func TestLeaseStaleTakeover(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	ttl := time.Minute
	l, err := store.TryClaim(key, "dead", ttl)
	if err != nil || l == nil {
		t.Fatalf("initial claim: %v %v", l, err)
	}
	// Simulate the holder's death: stop the heartbeat without removing the
	// file, then backdate the mtime past the TTL.
	close(l.stop)
	l.wg.Wait()
	old := time.Now().Add(-2 * ttl)
	if err := os.Chtimes(l.Path(), old, old); err != nil {
		t.Fatal(err)
	}

	l2, err := store.TryClaim(key, "heir", ttl)
	if err != nil || l2 == nil {
		t.Fatalf("takeover of an expired lease: lease=%v err=%v, want success", l2, err)
	}
	// No tombstones may linger after a takeover.
	matches, _ := filepath.Glob(filepath.Join(store.Dir(), leasesSubdir, "*.expired-*"))
	if len(matches) != 0 {
		t.Errorf("takeover left tombstones behind: %v", matches)
	}
	l2.Release()
}

// TestLeaseRefreshRestoresLiveness is the deterministic half of the
// keep-alive property: a lease backdated past its TTL is stealable, one
// refresh beat makes it unstealable again. No sleeps, no ticker races —
// this is what the heartbeat goroutine does, minus the wall clock.
func TestLeaseRefreshRestoresLiveness(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	ttl := time.Minute
	l, err := store.TryClaim(key, "slow", ttl)
	if err != nil || l == nil {
		t.Fatalf("initial claim: %v %v", l, err)
	}
	defer l.Release()

	// Backdate past the TTL, then beat once: the claim must be safe again.
	old := time.Now().Add(-2 * ttl)
	if err := os.Chtimes(l.Path(), old, old); err != nil {
		t.Fatal(err)
	}
	l.refresh()
	rival, err := store.TryClaim(key, "rival", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if rival != nil {
		t.Fatal("rival stole a lease that was refreshed after backdating")
	}

	// Control: without the refresh the same backdating loses the lease, so
	// the assertion above cannot pass vacuously.
	if err := os.Chtimes(l.Path(), old, old); err != nil {
		t.Fatal(err)
	}
	heir, err := store.TryClaim(key, "heir", ttl)
	if err != nil || heir == nil {
		t.Fatalf("stale lease not taken over: lease=%v err=%v", heir, err)
	}
	heir.Release()
}

// TestLeaseHeartbeatKeepsClaimAlive is the real-time half: hold a lease for
// several TTLs of wall clock and require rivals to keep losing, proving the
// ticker actually drives refresh. The TTL is generous (the heartbeat fires at
// TTL/4, so it would take a 400ms goroutine stall to flake) and the test is
// skipped under -short; the deterministic refresh test above covers the
// protocol itself.
func TestLeaseHeartbeatKeepsClaimAlive(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time heartbeat test (covered deterministically by TestLeaseRefreshRestoresLiveness)")
	}
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	ttl := 400 * time.Millisecond
	l, err := store.TryClaim(key, "slow", ttl)
	if err != nil || l == nil {
		t.Fatalf("initial claim: %v %v", l, err)
	}
	defer l.Release()
	deadline := time.Now().Add(3 * ttl)
	for time.Now().Before(deadline) {
		rival, err := store.TryClaim(key, "rival", ttl)
		if err != nil {
			t.Fatal(err)
		}
		if rival != nil {
			t.Fatal("rival stole a heartbeating lease")
		}
		time.Sleep(ttl / 4)
	}
}

// TestRefreshKeySeesForeignRecords writes a record through one store handle
// and requires a second, already-open handle on the same directory to pick
// it up via RefreshKey — the cross-process record visibility workers rely
// on (two handles in one process exercise the same disk path).
func TestRefreshKeySeesForeignRecords(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRecord("(a) UN", 0, 0, 0, 0, 0.5)

	// Not on disk yet: RefreshKey must miss without inventing records.
	if _, ok := b.RefreshKey(rec.Key(), rec.Fingerprint); ok {
		t.Fatal("RefreshKey hit before any record was written")
	}
	if err := a.Put(rec, time.Second); err != nil {
		t.Fatal(err)
	}
	// Plain Get on the second handle misses (index built at Open)...
	if _, ok := b.Get(rec.Key(), rec.Fingerprint); ok {
		t.Fatal("Get unexpectedly saw a record written after Open")
	}
	// ...but RefreshKey re-reads the directory and finds it.
	got, ok := b.RefreshKey(rec.Key(), rec.Fingerprint)
	if !ok {
		t.Fatal("RefreshKey missed a record present on disk")
	}
	if got.Key() != rec.Key() {
		t.Fatalf("RefreshKey returned key %+v, want %+v", got.Key(), rec.Key())
	}
	// Fingerprint mismatches stay misses (stale config).
	if _, ok := b.RefreshKey(rec.Key(), "deadbeef"); ok {
		t.Fatal("RefreshKey hit despite a fingerprint mismatch")
	}
}

// TestPutRecordWorldReadable asserts the satellite bugfix: records land with
// umask-respecting 0644 permissions, so checkpoints written by one user's
// worker are readable by every process sharing the results directory. (The
// old os.CreateTemp path hard-coded 0600.)
func TestPutRecordWorldReadable(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRecord("(a) UN", 0, 0, 0, 0, 0.5)
	if err := store.Put(rec, time.Second); err != nil {
		t.Fatal(err)
	}
	// The process umask also applies to a plain 0644 create; compare against
	// that reference so the test is exact under any umask.
	refPath := filepath.Join(dir, "umask-ref")
	ref, err := os.OpenFile(refPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ref.Close()
	refInfo, err := os.Stat(refPath)
	if err != nil {
		t.Fatal(err)
	}
	want := refInfo.Mode().Perm()

	recPath := filepath.Join(dir, recordsSubdir, recordFileName(rec.Key()))
	info, err := os.Stat(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != want {
		t.Errorf("record mode %v, want %v", got, want)
	}
	if want&0o044 == 0 {
		t.Skipf("umask strips group/other read bits (mode %v); cannot assert shared readability", want)
	}
	if info.Mode().Perm()&0o044 == 0 {
		t.Errorf("record mode %v not group/other readable", info.Mode().Perm())
	}
	// Manifest and exports follow the same path and must match too.
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	manInfo, err := os.Stat(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if got := manInfo.Mode().Perm(); got != want {
		t.Errorf("manifest mode %v, want %v", got, want)
	}
}
