package results

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexvc/internal/stats"
)

// TestSchemaV1StillReads pins the read compatibility promise of the v2 bump:
// v1 records (no time series) validate and load, and a v1 export file renders
// through LoadFile, so checked-in v1 experiment results stay usable.
func TestSchemaV1StillReads(t *testing.T) {
	rec := Record{
		Schema:      1,
		Experiment:  "fig5",
		Section:     "(a)",
		Variant:     "Baseline 2/1",
		Scale:       "small",
		Load:        0.5,
		Fingerprint: "abcd",
		Result:      stats.Result{OfferedLoad: 0.5, AcceptedLoad: 0.49},
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("v1 record rejected: %v", err)
	}
	if err := (Record{Schema: 0}).Validate(); err == nil {
		t.Error("schema 0 accepted")
	}
	if err := (Record{Schema: SchemaVersion + 1, Experiment: "x", Variant: "y", Fingerprint: "z"}).Validate(); err == nil {
		t.Error("future schema accepted")
	}
	// A corrupt (ragged) time series must fail record validation instead of
	// panicking later in rendering or aggregation.
	ragged := rec
	ragged.Schema = SchemaVersion
	ragged.Result.Series = &stats.TimeSeries{Window: 100, Nodes: 2, Runs: 1, Packets: make([]int64, 4), Phits: make([]int64, 1)}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged time series accepted")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "fig5.results.json")
	v1 := `{"schema":1,"experiment":"fig5","scale":"small","seeds":1,"records":[
{"schema":1,"experiment":"fig5","section":"(a)","section_index":0,"variant":"Baseline 2/1","variant_index":0,"point_index":0,"scale":"small","load":0.5,"seed":0,"sim_seed":1,"fingerprint":"abcd","result":{"offered_load":0.5,"accepted_load":0.49,"avg_latency":30,"avg_net_latency":25,"p50":28,"p95":60,"p99":80,"max_latency":120,"delivered_packets":100,"avg_hops":2,"minimal_fraction":1,"request_packets":100,"reply_packets":0,"deadlock":false,"simulated_cycles":1000}}
]}` + "\n"
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if len(f.Records) != 1 || f.Records[0].Result.AcceptedLoad != 0.49 {
		t.Fatalf("v1 file misread: %+v", f)
	}
	if f.Records[0].Result.Series != nil {
		t.Error("v1 record grew a time series out of nowhere")
	}

	bad := strings.Replace(v1, `{"schema":1,"experiment":"fig5","scale"`, `{"schema":99,"experiment":"fig5","scale"`, 1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Error("future-schema file accepted")
	}
}
