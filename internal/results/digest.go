package results

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
)

// This file is the digest side of the byte-identity contract (see
// internal/verify): recorded exports and rendered reports are pinned by full
// sha256 digests in experiments/manifest.json, and `figures check` compares
// both the recorded bytes and a fresh re-run against them.

// DigestBytes returns the full lowercase-hex sha256 of data — the digest
// vocabulary of experiment manifests. (Fingerprint deliberately truncates for
// readable config hashes; artefact digests do not.)
func DigestBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// DigestFile returns the sha256 digest of a file's contents.
func DigestFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return DigestBytes(b), nil
}
