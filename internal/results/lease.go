package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"flexvc/internal/obs"
)

// This file is the shard-claim protocol that turns a results directory into
// a unit of distributed work: several worker processes sharing one directory
// divide a sweep's replications among themselves by claiming per-key leases,
// with no coordinator and no state beyond the filesystem.
//
// A claim is a lease file under leases/, named exactly like the record file
// it shadows. The protocol relies only on two POSIX guarantees:
//
//   - O_CREATE|O_EXCL is atomic: exactly one contender creates the file.
//   - rename(2) is atomic and destroys its source: exactly one contender
//     wins a takeover of an expired lease (the losers' renames fail with
//     ENOENT and they re-enter the claim loop).
//
// Liveness comes from mtime: a holder refreshes the lease's mtime on a
// heartbeat while it simulates, so a lease whose mtime is older than the TTL
// belongs to a dead process and may be taken over. Exactly-once *recording*
// does not depend on the lease at all — records are written atomically under
// a key-derived name, so even a double simulation (possible only if a worker
// stalls past the TTL without dying) overwrites byte-identical data.
type Lease struct {
	path string
	stop chan struct{}
	wg   sync.WaitGroup
	// hb times each mtime refresh (nil when the store has no metrics
	// registry attached).
	hb *obs.Histogram
}

const leasesSubdir = "leases"

// DefaultLeaseTTL is the claim expiry used when callers pass no TTL. It must
// comfortably exceed one heartbeat interval (TTL/4) under load; replication
// wall time is irrelevant because the holder heartbeats while simulating.
const DefaultLeaseTTL = 60 * time.Second

// leaseInfo is the lease file's contents — diagnostics for humans inspecting
// a shared directory. The protocol itself depends only on the file's
// existence and mtime, never on what is inside it.
type leaseInfo struct {
	Owner string `json:"owner"`
	PID   int    `json:"pid"`
}

// leaseFileName mirrors recordFileName so a lease and the record it shadows
// are adjacent in directory listings.
func leaseFileName(k Key) string {
	slug := sanitize(k.Experiment)
	if slug == "" {
		slug = "exp"
	}
	return fmt.Sprintf("%s-%s.lease", slug, keyHash(k))
}

// TryClaim attempts to take the exclusive lease on key. It returns a live
// Lease on success, (nil, nil) when another worker holds an unexpired claim,
// and an error only for filesystem failures. A lease whose mtime is older
// than ttl is treated as abandoned and taken over. The returned lease
// refreshes its own mtime every ttl/4 until Release, so a claim stays valid
// for as long as the simulation behind it actually runs.
func (s *Store) TryClaim(key Key, owner string, ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	dir := filepath.Join(s.dir, leasesSubdir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, leaseFileName(key))
	for {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			b, merr := json.Marshal(leaseInfo{Owner: owner, PID: os.Getpid()})
			if merr == nil {
				_, _ = f.Write(append(b, '\n'))
			}
			f.Close()
			s.metrics.claims.Inc()
			l := &Lease{path: path, stop: make(chan struct{}), hb: s.metrics.heartbeat}
			l.heartbeat(ttl)
			return l, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		st, serr := os.Stat(path)
		if serr != nil {
			if os.IsNotExist(serr) {
				// Released between the failed create and the stat; retry.
				continue
			}
			return nil, serr
		}
		if time.Since(st.ModTime()) < ttl {
			return nil, nil
		}
		// Expired: take it over. Renaming to a unique tombstone first makes
		// the takeover race-free — rename is atomic and consumes its source,
		// so of N contenders exactly one wins and the rest fall back into the
		// claim loop (where they will see either our fresh lease or a free
		// slot).
		tomb := path + fmt.Sprintf(".expired-%d-%d", os.Getpid(), tmpSeq.Add(1))
		if rerr := os.Rename(path, tomb); rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			return nil, rerr
		}
		_ = os.Remove(tomb)
		s.metrics.takeovers.Inc()
	}
}

// refresh stamps the lease mtime to now — one beat of the liveness protocol.
// The heartbeat goroutine calls it on a ticker; tests call it directly to
// prove a beat revives an almost-expired lease without racing wall clock
// against a ticker.
func (l *Lease) refresh() {
	if l.hb != nil {
		defer l.hb.Since(time.Now())
	}
	now := time.Now()
	_ = os.Chtimes(l.path, now, now)
}

// heartbeat refreshes the lease mtime every ttl/4 until Release so live
// claims never expire under long simulations.
func (l *Lease) heartbeat(ttl time.Duration) {
	interval := ttl / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				l.refresh()
			}
		}
	}()
}

// Release stops the heartbeat and removes the lease file, freeing the key
// for other claimers. Releasing after the corresponding record was Put is
// the normal completion path; releasing without a record (an error mid-
// simulation) simply returns the key to the pool.
func (l *Lease) Release() {
	close(l.stop)
	l.wg.Wait()
	_ = os.Remove(l.path)
}

// Path returns the lease file's location (for tests and diagnostics).
func (l *Lease) Path() string { return l.path }
