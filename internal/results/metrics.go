package results

import (
	"flexvc/internal/obs"
)

// Results-layer metric names (see DESIGN.md "Observability").
const (
	// MetricPutLatency / MetricFlushLatency time the durable checkpoint write
	// (record file + amortized manifest) and the explicit manifest flush.
	MetricPutLatency   = "flexvc_results_put_latency_ns"
	MetricFlushLatency = "flexvc_results_flush_latency_ns"
	// MetricRecords gauges the store's indexed record count (its size).
	MetricRecords = "flexvc_results_records"
	// MetricLeaseClaims counts leases acquired through TryClaim;
	// MetricLeaseTakeovers the subset won by expiring a dead worker's lease.
	MetricLeaseClaims    = "flexvc_results_lease_claims_total"
	MetricLeaseTakeovers = "flexvc_results_lease_takeovers_total"
	// MetricLeaseHeartbeat times each lease mtime refresh — on a shared
	// filesystem this is the observable cost of the liveness protocol.
	MetricLeaseHeartbeat = "flexvc_results_lease_heartbeat_ns"
)

// storeMetrics carries the store's pre-resolved handles. The zero value is
// the disabled state: nil obs handles no-op, and the latency paths guard with
// a nil check before reading the clock.
type storeMetrics struct {
	putLatency   *obs.Histogram
	flushLatency *obs.Histogram
	records      *obs.Gauge
	claims       *obs.Counter
	takeovers    *obs.Counter
	heartbeat    *obs.Histogram
}

// SetMetrics attaches an observability registry to the store: checkpoint
// Put/Flush latencies, the record-count gauge and the lease protocol's
// claim/takeover/heartbeat series report into it. A nil registry detaches.
// Metrics never influence what the store reads or writes — exports are
// byte-identical with metrics on or off.
func (s *Store) SetMetrics(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		s.metrics = storeMetrics{}
		return
	}
	s.metrics = storeMetrics{
		putLatency:   reg.Histogram(MetricPutLatency),
		flushLatency: reg.Histogram(MetricFlushLatency),
		records:      reg.Gauge(MetricRecords),
		claims:       reg.Counter(MetricLeaseClaims),
		takeovers:    reg.Counter(MetricLeaseTakeovers),
		heartbeat:    reg.Histogram(MetricLeaseHeartbeat),
	}
	s.metrics.records.Set(int64(len(s.recs)))
}
