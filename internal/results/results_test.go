package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"flexvc/internal/config"
	"flexvc/internal/stats"
)

// mkRecord builds a record with a small but non-trivial result (including a
// populated histogram) so round-trips exercise the full schema.
func mkRecord(section string, si, vi, pi, seed int, load float64) Record {
	var h stats.Histogram
	for v := int64(0); v < 500; v += 7 {
		h.Record(v)
	}
	cfg := config.Tiny()
	cfg.Load = load
	return Record{
		Schema:       SchemaVersion,
		Experiment:   "fig5",
		Section:      section,
		SectionIndex: si,
		Variant:      fmt.Sprintf("FlexVC 4/2 v%d", vi),
		VariantIndex: vi,
		PointIndex:   pi,
		Scale:        "tiny",
		Load:         load,
		Seed:         seed,
		SimSeed:      1 + int64(seed)*7919,
		Fingerprint:  Fingerprint(cfg),
		Result: stats.Result{
			OfferedLoad:      load,
			AcceptedLoad:     load * 0.93,
			AvgLatency:       123.456,
			P99:              512.5,
			DeliveredPackets: 71,
			Hist:             &h,
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := mkRecord("(a) UN", 0, 1, 2, 3, 0.7)
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("record does not round-trip:\n got %+v\nwant %+v", back, rec)
	}
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	a, b := config.Tiny(), config.Tiny()
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("equal configs produced different fingerprints")
	}
	b.Load = a.Load + 0.1
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("different configs collided")
	}
}

func TestStorePutGetResume(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRecord("(a) UN", 0, 0, 0, 0, 0.5)
	if _, ok := s.Get(rec.Key(), rec.Fingerprint); ok {
		t.Fatal("empty store claims to hold a record")
	}
	if err := s.Put(rec, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(rec.Key(), rec.Fingerprint)
	if !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("stored record not returned intact")
	}
	// A changed fingerprint (same key, different config) must miss.
	if _, ok := s.Get(rec.Key(), "deadbeefdeadbeef"); ok {
		t.Fatal("stale record returned despite fingerprint mismatch")
	}

	// Reopen: the directory is the source of truth. The record itself must
	// survive even without a Flush (the manifest is only advisory)…
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get(rec.Key(), rec.Fingerprint)
	if !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("record lost across reopen")
	}
	// …while the wall-time annotation survives once the manifest is flushed.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.WallTotal() != 1500*time.Millisecond {
		t.Fatalf("wall time lost across flush+reopen: %v", s3.WallTotal())
	}
}

func TestStoreSurvivesTornFilesAndMissingManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRecord("(a) UN", 0, 0, 0, 0, 0.5)
	if err := s.Put(rec, time.Second); err != nil {
		t.Fatal(err)
	}
	// Simulate a SIGKILL mid-write: a torn temp file and a truncated record.
	recDir := filepath.Join(dir, recordsSubdir)
	if err := os.WriteFile(filepath.Join(recDir, ".tmp-partial-xyz"), []byte(`{"schema":1,"exper`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(recDir, "fig5-ffffffffffffffff.json"), []byte(`{"schema":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a deleted manifest.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("store indexed %d records, want 1 (torn files must be ignored)", s2.Len())
	}
	if _, ok := s2.Get(rec.Key(), rec.Fingerprint); !ok {
		t.Fatal("intact record lost during crash recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal("manifest not regenerated on open")
	}
}

func TestExportDeterministicAndOrderIndependent(t *testing.T) {
	recs := []Record{
		mkRecord("(b) ADV", 1, 0, 0, 0, 0.2),
		mkRecord("(a) UN", 0, 1, 0, 0, 0.5),
		mkRecord("(a) UN", 0, 0, 1, 1, 0.8),
		mkRecord("(a) UN", 0, 0, 1, 0, 0.8),
		mkRecord("(a) UN", 0, 0, 0, 0, 0.5),
	}
	export := func(order []int) []byte {
		t.Helper()
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if err := s.Put(recs[i], time.Duration(i)*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		path, err := s.WriteExport("fig5", "Figure 5")
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := export([]int{0, 1, 2, 3, 4})
	b := export([]int{4, 3, 2, 1, 0})
	if !bytes.Equal(a, b) {
		t.Fatal("export bytes depend on insertion order")
	}
	f, err := LoadFile(filepath.Join(t.TempDir(), "missing.json"))
	if err == nil {
		t.Fatalf("loading a missing file succeeded: %+v", f)
	}
}

func TestLoadFileValidates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.results.json")
	if err := os.WriteFile(path, []byte(`{"schema":99,"experiment":"fig5","records":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("wrong-schema export accepted")
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mkRecord("(a) UN", 0, 0, 0, 0, 0.5), time.Second); err != nil {
		t.Fatal(err)
	}
	p, err := s.WriteExport("fig5", "Figure 5")
	if err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.Experiment != "fig5" || len(f.Records) != 1 || f.Seeds != 1 || f.Scale != "tiny" {
		t.Fatalf("export header wrong: %+v", f)
	}
}

// TestExportRestrictsToActiveKeys: once a process has produced or restored
// any replication of an experiment, its exports must contain exactly those
// replications — records left over from an earlier run with different
// parameters (here: more seeds) stay out of the results file.
func TestExportRestrictsToActiveKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 3; seed++ {
		if err := s.Put(mkRecord("(a) UN", 0, 0, 0, seed, 0.5), time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// A later 1-seed run against the same directory restores only seed 0.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRecord("(a) UN", 0, 0, 0, 0, 0.5)
	if _, ok := s2.Get(rec.Key(), rec.Fingerprint); !ok {
		t.Fatal("seed 0 not restorable")
	}
	f := s2.Export("fig5", "t")
	if len(f.Records) != 1 || f.Seeds != 1 {
		t.Fatalf("export leaked stale records: %d records, seeds=%d (want 1, 1)", len(f.Records), f.Seeds)
	}

	// A store that has not simulated anything exports the full directory.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if f := s3.Export("fig5", "t"); len(f.Records) != 3 {
		t.Fatalf("passive export should include everything: %d records", len(f.Records))
	}
}

func TestMerge(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared := mkRecord("(a) UN", 0, 0, 0, 0, 0.5)
	onlyB := mkRecord("(a) UN", 0, 0, 1, 0, 0.8)
	for _, put := range []struct {
		s   *Store
		rec Record
	}{{a, shared}, {b, shared}, {b, onlyB}} {
		if err := put.s.Put(put.rec, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	added, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || a.Len() != 2 {
		t.Fatalf("merge added %d records (store holds %d), want 1 (holding 2)", added, a.Len())
	}
}

func TestRecordValidate(t *testing.T) {
	good := mkRecord("(a) UN", 0, 0, 0, 0, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Record){
		func(r *Record) { r.Schema = 99 },
		func(r *Record) { r.Experiment = "" },
		func(r *Record) { r.Variant = "" },
		func(r *Record) { r.Fingerprint = "" },
		func(r *Record) { r.Seed = -1 },
		func(r *Record) { r.SectionIndex = -1 },
		func(r *Record) { r.PointIndex = -1 },
	}
	for i, mutate := range bad {
		r := good
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStoreRevisionAndDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	s.SetRevision("abc1234")
	if err := s.Put(mkRecord("(a) UN", 0, 0, 0, 0, 0.5), time.Second); err != nil {
		t.Fatal(err)
	}
	// The revision survives a reopen (it is carried by the manifest) and is
	// stamped into exports.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s2.WriteExport("fig5", "Figure 5")
	if err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.Revision != "abc1234" {
		t.Fatalf("revision lost: %+v", f)
	}
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"fig5":             "fig5",
		"Fig 5 (a) UN/MIN": "fig-5--a--un-min",
		"--weird--":        "weird",
	} {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPutRejectsInvalidRecord(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRecord("(a) UN", 0, 0, 0, 0, 0.5)
	rec.Experiment = ""
	if err := s.Put(rec, time.Second); err == nil {
		t.Fatal("invalid record stored")
	}
}

func TestWriteSinglePoint(t *testing.T) {
	cfg := config.Tiny()
	cfg.Load = 0.4
	path := filepath.Join(t.TempDir(), "point.json")
	runs := []stats.Result{{AcceptedLoad: 0.39}, {AcceptedLoad: 0.41}}
	if err := WriteSinglePoint(path, cfg, "tiny", stats.Aggregate(runs), runs); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sp SinglePoint
	if err := json.Unmarshal(b, &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Schema != SchemaVersion || sp.Seeds != 2 || sp.Fingerprint != Fingerprint(cfg) {
		t.Fatalf("single-point file wrong: %+v", sp)
	}
}
