# Development and CI entry points. CI (.github/workflows) calls these same
# targets so a green `make ci` locally predicts a green PR.

GO ?= go

# Benchmarks gated by the regression gate (cmd/benchgate): the end-to-end
# smoke sweep plus the cheapest hot-path microbenchmarks. ns/op is compared
# against BENCH_baseline.json with the tolerance recorded there, taking the
# best of BENCH_COUNT repetitions; any allocs/op increase fails outright
# (allocation counts are deterministic and machine-independent). The
# committed tolerance is 40%: wide enough to absorb the per-core speed
# spread between the machine that recorded the baseline and shared CI
# runners, tight enough to catch a real hot-path slowdown.
BENCH_GATE_PAT  := SmokeSweep|AllowedVCs|RouterStep|VCActivity|PacketStore|InputBufferCycle|Obs
BENCH_GATE_PKGS := . ./internal/router ./internal/buffer ./internal/obs ./internal/packet
BENCH_COUNT     ?= 3

.PHONY: build test race lint bench-check bench-baseline bench-profile ci check-smoke check-full scenario-smoke campaign-smoke campaignd-smoke campaignd-metrics-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt -w needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (CI runs it)"; fi

# Fail on benchmark regressions against the committed baseline. The bench
# output goes through a file, not a pipe, so a go-test failure fails the
# target even after the gated result lines were printed (sh has no pipefail).
# Caveat: ns/op baselines are hardware-specific — after a runner-class change
# (or when the gate flags every benchmark at once on an untouched tree),
# refresh the baseline on the hardware CI actually uses.
bench-check:
	$(GO) test -run xxx -bench '$(BENCH_GATE_PAT)' -benchmem -count $(BENCH_COUNT) $(BENCH_GATE_PKGS) > bench-gate.out
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json < bench-gate.out
	@rm -f bench-gate.out

# CPU and heap profiles of the end-to-end smoke sweeps (the benchmarks the
# gate pins). CI runs this on the bench job and uploads $(PROFILE_DIR) as an
# artifact, so when the gate flags a layout regression the profile that
# explains it is already attached to the failing run — no local reproduction
# needed. The test binary is kept next to the profiles because `go tool
# pprof` resolves symbols against it.
PROFILE_DIR ?= bench-profiles
bench-profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -run xxx -bench 'SmokeSweep' -benchmem \
		-cpuprofile $(PROFILE_DIR)/smoke-cpu.pprof \
		-memprofile $(PROFILE_DIR)/smoke-mem.pprof \
		-o $(PROFILE_DIR)/flexvc.test . | tee $(PROFILE_DIR)/smoke-bench.txt

# Intentionally refresh the baseline (commit the result together with the
# change that justifies it). Uses more repetitions for a steadier floor.
bench-baseline:
	$(GO) test -run xxx -bench '$(BENCH_GATE_PAT)' -benchmem -count 5 $(BENCH_GATE_PKGS) > bench-gate.out
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -update -tolerance 40 < bench-gate.out
	@rm -f bench-gate.out

ci: lint test race bench-check check-smoke

# The PR-time reproducibility gate: verify every recorded experiment in
# experiments/manifest.json. Digests of the committed exports and reports are
# always checked; entries cheap enough to finish under -max-wall are also
# re-simulated and byte-compared (transient-small and pb-policies-transient
# today — fig5-small's ~50s re-run is nightly-only, see check-full). The
# second pass re-runs the same entries with the network sharded 2 ways:
# sharded and serial simulation are bit-identical by contract, so the sharded
# re-run must reproduce the recorded artefacts byte for byte too.
check-smoke:
	$(GO) run ./cmd/figures check -max-wall 10s all
	$(GO) run ./cmd/figures check -shards 2 -max-wall 10s all

# The full reproducibility verification (nightly): re-run every manifest
# entry, however expensive, and byte-compare exports and rendered reports
# against the committed artefacts. Scratch results stay under
# $(RESULTS_DIR_CHECK) so CI can upload the diverging exports on failure.
# The metered re-runs double as a live zero-impact check (byte-compare with a
# registry attached), and the snapshot is uploaded as a nightly artifact so
# phase/checkpoint profiles are trackable across runs without re-simulating.
RESULTS_DIR_CHECK ?= results/check
check-full:
	$(GO) run ./cmd/figures check -work $(RESULTS_DIR_CHECK) \
		-metrics-out $(RESULTS_DIR_CHECK)/metrics.json -v all

# A quick end-to-end scenario run through flexvcsim -scenario: loads the
# checked-in scenario JSON, simulates one PB replication and prints the
# windowed telemetry. Fails if the scenario file, the engine or the renderer
# break.
scenario-smoke:
	$(GO) run ./cmd/flexvcsim -scale small -routing pb -policy baseline -vcs 4/2 \
		-scenario experiments/transient-small/scenario.json -seeds 1

# A tiny end-to-end campaign through the declarative engine (CI gate): parse
# the embedded smoke spec, run it through the checkpointed runner, render the
# recorded results. Fails if the spec layer, the campaign compiler, the
# runner or the renderer break.
RESULTS_DIR_CAMPAIGN ?= results/campaign-smoke
campaign-smoke:
	$(GO) run ./cmd/figures run -campaign smoke -quick -results $(RESULTS_DIR_CAMPAIGN)
	$(GO) run ./cmd/figures render -campaign smoke -results $(RESULTS_DIR_CAMPAIGN) -out $(RESULTS_DIR_CAMPAIGN)/smoke.md

# The sharded-campaign gate: run the embedded smoke spec once single-process
# and once across two campaignd worker processes with the chaos hook armed
# (one worker is SIGKILLed as soon as the first record lands; its leases
# expire after 2s and the survivor takes the work over). The two exports must
# be byte-identical — proving the shard-claim protocol's exactly-once and
# crash-resume properties end to end on a real binary, not just in tests.
RESULTS_DIR_CAMPAIGND ?= results/campaignd-smoke
CAMPAIGND_SMOKE_ADDR  ?= 127.0.0.1:8737
campaignd-smoke:
	$(GO) run ./cmd/figures run -campaign smoke -quick -seeds 4 \
		-results $(RESULTS_DIR_CAMPAIGND)/single
	$(GO) run ./cmd/campaignd run -campaign smoke -quick -seeds 4 \
		-workers 2 -kill-after 1 -lease-ttl 2s \
		-results $(RESULTS_DIR_CAMPAIGND)/sharded
	diff $(RESULTS_DIR_CAMPAIGND)/single/smoke.results.json \
		$(RESULTS_DIR_CAMPAIGND)/sharded/smoke.results.json
	$(MAKE) campaignd-metrics-smoke

# The service-metrics gate: start `campaignd serve`, run the smoke campaign
# through the HTTP API, then scrape GET /metrics and assert the key series are
# non-zero — proving the worker -> coordinator -> server metrics flow (worker
# registry snapshots pooled over the NDJSON event stream) end to end on a real
# binary. Asserted families cover each layer: process management
# (workers_spawned), the lease protocol (lease_claims), the sweep scheduler
# (replications_simulated), the checkpoint store (put_latency histogram) and
# the cycle loop's phase profile (phase_wall step).
campaignd-metrics-smoke:
	$(GO) build -o $(RESULTS_DIR_CAMPAIGND)/campaignd ./cmd/campaignd
	set -e; \
	$(RESULTS_DIR_CAMPAIGND)/campaignd serve -addr $(CAMPAIGND_SMOKE_ADDR) \
		-results $(RESULTS_DIR_CAMPAIGND)/serve -log-level warn & \
	pid=$$!; trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://$(CAMPAIGND_SMOKE_ADDR)/metrics >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	$(RESULTS_DIR_CAMPAIGND)/campaignd submit -server http://$(CAMPAIGND_SMOKE_ADDR) \
		-campaign smoke -quick -workers 2 -quiet; \
	curl -fsS http://$(CAMPAIGND_SMOKE_ADDR)/metrics > $(RESULTS_DIR_CAMPAIGND)/metrics.prom; \
	for series in \
		'flexvc_campaignd_workers_spawned_total' \
		'flexvc_results_lease_claims_total' \
		'flexvc_sweep_replications_simulated_total' \
		'flexvc_results_put_latency_ns_count' \
		'flexvc_sim_phase_wall_ns_total\{phase="step"\}'; do \
		grep -E "^$$series [1-9][0-9]*" $(RESULTS_DIR_CAMPAIGND)/metrics.prom >/dev/null || { \
			echo "campaignd-metrics-smoke: series $$series missing or zero in /metrics:"; \
			cat $(RESULTS_DIR_CAMPAIGND)/metrics.prom; exit 1; }; \
	done; \
	echo "campaignd-metrics-smoke: all key series non-zero"
