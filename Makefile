# Development and CI entry points. CI (.github/workflows) calls these same
# targets so a green `make ci` locally predicts a green PR.

GO ?= go

# Benchmarks gated by the regression gate (cmd/benchgate): the end-to-end
# smoke sweep plus the cheapest hot-path microbenchmarks. ns/op is compared
# against BENCH_baseline.json with the tolerance recorded there, taking the
# best of BENCH_COUNT repetitions; any allocs/op increase fails outright
# (allocation counts are deterministic and machine-independent). The
# committed tolerance is 40%: wide enough to absorb the per-core speed
# spread between the machine that recorded the baseline and shared CI
# runners, tight enough to catch a real hot-path slowdown.
BENCH_GATE_PAT  := SmokeSweep|AllowedVCs|RouterStep|InputBufferCycle
BENCH_GATE_PKGS := . ./internal/router ./internal/buffer
BENCH_COUNT     ?= 3

.PHONY: build test race lint bench-check bench-baseline ci nightly-sweep nightly-transient scenario-smoke campaign-smoke campaignd-smoke nightly-campaign

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

lint:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt -w needed on:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping (CI runs it)"; fi

# Fail on benchmark regressions against the committed baseline. The bench
# output goes through a file, not a pipe, so a go-test failure fails the
# target even after the gated result lines were printed (sh has no pipefail).
# Caveat: ns/op baselines are hardware-specific — after a runner-class change
# (or when the gate flags every benchmark at once on an untouched tree),
# refresh the baseline on the hardware CI actually uses.
bench-check:
	$(GO) test -run xxx -bench '$(BENCH_GATE_PAT)' -benchmem -count $(BENCH_COUNT) $(BENCH_GATE_PKGS) > bench-gate.out
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json < bench-gate.out
	@rm -f bench-gate.out

# Intentionally refresh the baseline (commit the result together with the
# change that justifies it). Uses more repetitions for a steadier floor.
bench-baseline:
	$(GO) test -run xxx -bench '$(BENCH_GATE_PAT)' -benchmem -count 5 $(BENCH_GATE_PKGS) > bench-gate.out
	$(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -update -tolerance 40 < bench-gate.out
	@rm -f bench-gate.out

ci: lint test race bench-check

# The nightly sweep: a small-scale fig5 run through the checkpointed runner
# (resumable; results land in $(RESULTS_DIR)), rendered and diffed against
# the committed report so result drift fails loudly.
RESULTS_DIR ?= results/nightly
nightly-sweep:
	$(GO) run ./cmd/figures run -exp fig5 -scale small -seeds 2 -results $(RESULTS_DIR)
	$(GO) run ./cmd/figures render -exp fig5 -results $(RESULTS_DIR) -out $(RESULTS_DIR)/fig5.md
	diff experiments/fig5-small/report.md $(RESULTS_DIR)/fig5.md

# The nightly transient sweep: the small-scale UN->ADV->UN scenario through
# the checkpointed runner, rendered (windowed telemetry + adaptation lags)
# and diffed against the committed report so transient-behaviour drift fails
# loudly.
RESULTS_DIR_TRANSIENT ?= results/nightly-transient
nightly-transient:
	$(GO) run ./cmd/figures run -exp transient -scale small -seeds 2 -results $(RESULTS_DIR_TRANSIENT)
	$(GO) run ./cmd/figures render -exp transient -results $(RESULTS_DIR_TRANSIENT) -out $(RESULTS_DIR_TRANSIENT)/transient.md
	diff experiments/transient-small/report.md $(RESULTS_DIR_TRANSIENT)/transient.md

# A quick end-to-end scenario run through flexvcsim -scenario: loads the
# checked-in scenario JSON, simulates one PB replication and prints the
# windowed telemetry. Fails if the scenario file, the engine or the renderer
# break.
scenario-smoke:
	$(GO) run ./cmd/flexvcsim -scale small -routing pb -policy baseline -vcs 4/2 \
		-scenario experiments/transient-small/scenario.json -seeds 1

# A tiny end-to-end campaign through the declarative engine (CI gate): parse
# the embedded smoke spec, run it through the checkpointed runner, render the
# recorded results. Fails if the spec layer, the campaign compiler, the
# runner or the renderer break.
RESULTS_DIR_CAMPAIGN ?= results/campaign-smoke
campaign-smoke:
	$(GO) run ./cmd/figures run -campaign smoke -quick -results $(RESULTS_DIR_CAMPAIGN)
	$(GO) run ./cmd/figures render -campaign smoke -results $(RESULTS_DIR_CAMPAIGN) -out $(RESULTS_DIR_CAMPAIGN)/smoke.md

# The sharded-campaign gate: run the embedded smoke spec once single-process
# and once across two campaignd worker processes with the chaos hook armed
# (one worker is SIGKILLed as soon as the first record lands; its leases
# expire after 2s and the survivor takes the work over). The two exports must
# be byte-identical — proving the shard-claim protocol's exactly-once and
# crash-resume properties end to end on a real binary, not just in tests.
RESULTS_DIR_CAMPAIGND ?= results/campaignd-smoke
campaignd-smoke:
	$(GO) run ./cmd/figures run -campaign smoke -quick -seeds 4 \
		-results $(RESULTS_DIR_CAMPAIGND)/single
	$(GO) run ./cmd/campaignd run -campaign smoke -quick -seeds 4 \
		-workers 2 -kill-after 1 -lease-ttl 2s \
		-results $(RESULTS_DIR_CAMPAIGND)/sharded
	diff $(RESULTS_DIR_CAMPAIGND)/single/smoke.results.json \
		$(RESULTS_DIR_CAMPAIGND)/sharded/smoke.results.json

# The nightly campaign sweep: re-run the recorded pb-policies-transient
# campaign from its checked-in spec and diff the rendered report against the
# committed golden, so campaign-engine or simulator drift fails loudly.
RESULTS_DIR_NIGHTLY_CAMPAIGN ?= results/nightly-campaign
nightly-campaign:
	$(GO) run ./cmd/figures run -campaign experiments/pb-policies-transient/campaign.json \
		-results $(RESULTS_DIR_NIGHTLY_CAMPAIGN)
	$(GO) run ./cmd/figures render -campaign experiments/pb-policies-transient/campaign.json \
		-results $(RESULTS_DIR_NIGHTLY_CAMPAIGN) -out $(RESULTS_DIR_NIGHTLY_CAMPAIGN)/pb-policies-transient.md
	diff experiments/pb-policies-transient/report.md $(RESULTS_DIR_NIGHTLY_CAMPAIGN)/pb-policies-transient.md
