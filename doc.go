// Package flexvc is a from-scratch Go reproduction of "FlexVC: Flexible
// Virtual Channel Management in Low-Diameter Networks" (Fuentes, Vallejo,
// Beivide, Minkenberg, Valero — IPDPS 2017).
//
// The repository contains a cycle-level Dragonfly/Flattened-Butterfly network
// simulator (internal/sim, internal/router, internal/topology, ...), the
// FlexVC and FlexVC-minCred buffer-management mechanisms together with the
// classic distance-based baseline (internal/core), the routing algorithms and
// traffic patterns of the paper's evaluation (internal/routing,
// internal/traffic — extended with permutation/hotspot destinations and
// phased workloads), a declarative scenario engine for transient experiments
// (internal/scenario: JSON-loadable phase sequences, windowed telemetry,
// adaptation-lag analysis) and an experiment harness that regenerates every
// table and figure of the evaluation section plus the transient family
// (internal/sweep, cmd/figures).
//
// # Execution model
//
// Parallelism exists at three nested layers, each bit-identical to serial
// execution:
//
//   - Shards within a replication: the router-stepping phase of the cycle
//     loop runs across goroutines, each owning a contiguous block of router
//     IDs (config.Shards: 1 serial, 0 auto from GOMAXPROCS, N explicit).
//     Cross-shard effects are buffered per shard and merged in shard order,
//     reproducing the serial event order exactly. Reach for this when a
//     single simulation must go faster — few replications of a big network.
//   - Replications within a process: sim.RunAveraged runs replications
//     concurrently and sweep.LoadSweep schedules every point of every series
//     at once, with all work — shard helpers included — draining through one
//     process-wide worker budget (sim.SetWorkerBudget, default GOMAXPROCS).
//     Each replication is fully self-contained and results aggregate in
//     replication order. This is the default: sweeps with many points and
//     seeds saturate the machine without any knobs.
//   - Worker processes across a campaign: cmd/campaignd divides one campaign
//     across N processes (or machines sharing a filesystem) through
//     lease-based claims on the results directory, crash-tolerant with
//     byte-identical exports. Reach for this when one process — or one
//     machine — is not enough.
//
// The per-cycle hot path avoids both scans and steady-state allocation:
// routers holding no packets are skipped (active-router list), injection
// arbitration only visits nodes with queued NIC work (pending-node queue),
// buffer FIFOs are rings, packets are recycled through a per-network
// free-list, and the allocator caches the routing-stable part of each head
// packet's request (output port, allowed VC range, escape fallback) so only
// occupancy checks are re-evaluated every cycle. Routing queries are
// answered from precomputed flat tables (internal/topology/routetable.go,
// memory-gated so paper-scale networks fall back to on-the-fly arithmetic),
// the allocator batches proposals over occupancy bitmasks instead of probing
// every VC, and the statistics collector records latencies into a fixed-size
// histogram (internal/stats) so its memory never grows with the measurement
// window. BENCHMARKS.md records the per-layer and end-to-end numbers and how
// to reproduce them.
//
// Experiments run at three scales — "small" (36-router Dragonfly, seconds),
// "medium" (264 routers) and "paper" (the full 2,064-router system of
// Table V, hours) — selected via sweep.Options.Scale or the -scale flag of
// cmd/figures and cmd/flexvcsim.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go exercise one experiment per paper table/figure plus the
// ablations called out in DESIGN.md.
package flexvc
