// Package flexvc is a from-scratch Go reproduction of "FlexVC: Flexible
// Virtual Channel Management in Low-Diameter Networks" (Fuentes, Vallejo,
// Beivide, Minkenberg, Valero — IPDPS 2017).
//
// The repository contains a cycle-level Dragonfly/Flattened-Butterfly network
// simulator (internal/sim, internal/router, internal/topology, ...), the
// FlexVC and FlexVC-minCred buffer-management mechanisms together with the
// classic distance-based baseline (internal/core), the routing algorithms and
// traffic patterns of the paper's evaluation (internal/routing,
// internal/traffic) and an experiment harness that regenerates every table
// and figure of the evaluation section (internal/sweep, cmd/figures).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go exercise one experiment per paper table/figure plus the
// ablations called out in DESIGN.md.
package flexvc
