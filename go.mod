module flexvc

go 1.24
