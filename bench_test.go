// Benchmarks: one per table and figure of the paper's evaluation, plus the
// ablations called out in DESIGN.md. Each benchmark runs a reduced version of
// the corresponding experiment (scaled-down Dragonfly, shortened measurement
// window) and reports the headline metric (accepted load in phits/node/cycle,
// or average latency) via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the shape of every result. cmd/figures produces the full
// reports.
package flexvc_test

import (
	"testing"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/obs"
	"flexvc/internal/packet"
	"flexvc/internal/routing"
	"flexvc/internal/sim"
	"flexvc/internal/sweep"
	"flexvc/internal/topology"
)

// benchConfig is the shared scaled-down configuration used by the simulation
// benchmarks: the Small preset with a shortened measurement window so a
// single iteration stays around a hundred milliseconds.
func benchConfig() config.Config {
	cfg := config.Small()
	cfg.WarmupCycles = 800
	cfg.MeasureCycles = 2000
	cfg.DeadlockCycles = 4000
	return cfg
}

// runSim runs one simulation per benchmark iteration and reports throughput
// and latency.
func runSim(b *testing.B, cfg config.Config) {
	b.Helper()
	var last interface {
		String() string
	}
	var accepted, latency float64
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = int64(i + 1)
		res, err := sim.RunOne(c)
		if err != nil {
			b.Fatal(err)
		}
		if res.Deadlock {
			b.Fatalf("deadlock: %v", res)
		}
		accepted = res.AcceptedLoad
		latency = res.AvgLatency
		last = res
	}
	_ = last
	b.ReportMetric(accepted, "accepted-load")
	b.ReportMetric(latency, "avg-latency-cycles")
}

// --- Tables I-IV ------------------------------------------------------------

// BenchmarkTables regenerates the four analytic tables (no simulation).
func BenchmarkTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, t := range []core.Table{core.TableI(), core.TableII(), core.TableIII(), core.TableIV()} {
			if len(t.Render()) == 0 {
				b.Fatal("empty table")
			}
		}
	}
}

// --- Figure 5: oblivious routing --------------------------------------------

func fig5Config(policy core.Policy, vcs core.VCConfig, org buffer.Organization,
	traffic config.TrafficKind, alg routing.Kind, load float64) config.Config {
	cfg := benchConfig()
	cfg.Traffic = traffic
	cfg.Routing = alg
	cfg.Load = load
	cfg.BufferOrg = org
	cfg.Scheme = core.Scheme{Policy: policy, VCs: vcs, Selection: core.JSQ}
	return cfg
}

func BenchmarkFig5UniformMINBaseline(b *testing.B) {
	runSim(b, fig5Config(core.Baseline, core.SingleClass(2, 1), buffer.Static, config.TrafficUniform, routing.MIN, 1.0))
}

func BenchmarkFig5UniformMINDAMQ(b *testing.B) {
	runSim(b, fig5Config(core.Baseline, core.SingleClass(2, 1), buffer.DAMQ, config.TrafficUniform, routing.MIN, 1.0))
}

func BenchmarkFig5UniformMINFlexVC21(b *testing.B) {
	runSim(b, fig5Config(core.FlexVC, core.SingleClass(2, 1), buffer.Static, config.TrafficUniform, routing.MIN, 1.0))
}

func BenchmarkFig5UniformMINFlexVC42(b *testing.B) {
	runSim(b, fig5Config(core.FlexVC, core.SingleClass(4, 2), buffer.Static, config.TrafficUniform, routing.MIN, 1.0))
}

func BenchmarkFig5UniformMINFlexVC84(b *testing.B) {
	runSim(b, fig5Config(core.FlexVC, core.SingleClass(8, 4), buffer.Static, config.TrafficUniform, routing.MIN, 1.0))
}

func BenchmarkFig5BurstyMINBaseline(b *testing.B) {
	runSim(b, fig5Config(core.Baseline, core.SingleClass(2, 1), buffer.Static, config.TrafficBursty, routing.MIN, 1.0))
}

func BenchmarkFig5BurstyMINFlexVC84(b *testing.B) {
	runSim(b, fig5Config(core.FlexVC, core.SingleClass(8, 4), buffer.Static, config.TrafficBursty, routing.MIN, 1.0))
}

func BenchmarkFig5AdversarialVALBaseline(b *testing.B) {
	runSim(b, fig5Config(core.Baseline, core.SingleClass(4, 2), buffer.Static, config.TrafficAdversarial, routing.VAL, 0.5))
}

func BenchmarkFig5AdversarialVALFlexVC84(b *testing.B) {
	runSim(b, fig5Config(core.FlexVC, core.SingleClass(8, 4), buffer.Static, config.TrafficAdversarial, routing.VAL, 0.5))
}

// --- Figure 6 / Figure 11: throughput vs buffer size, with and without
// router speedup (the speedup ablation of Section VI-D) ----------------------

func bufferSweepConfig(speedup, localPerPort, globalPerPort int, policy core.Policy, vcs core.VCConfig) config.Config {
	cfg := benchConfig()
	cfg.Load = 1.0
	cfg.Speedup = speedup
	cfg.Scheme = core.Scheme{Policy: policy, VCs: vcs, Selection: core.JSQ}
	lv, gv := vcs.Total().Local, vcs.Total().Global
	cfg.LocalBufPerVC = max(localPerPort/lv, cfg.PacketSize)
	cfg.GlobalBufPerVC = max(globalPerPort/gv, cfg.PacketSize)
	return cfg
}

func BenchmarkFig6SmallBuffersBaseline(b *testing.B) {
	runSim(b, bufferSweepConfig(2, 32, 128, core.Baseline, core.SingleClass(2, 1)))
}

func BenchmarkFig6SmallBuffersFlexVC84(b *testing.B) {
	runSim(b, bufferSweepConfig(2, 32, 128, core.FlexVC, core.SingleClass(8, 4)))
}

func BenchmarkFig6LargeBuffersBaseline(b *testing.B) {
	runSim(b, bufferSweepConfig(2, 128, 512, core.Baseline, core.SingleClass(2, 1)))
}

func BenchmarkFig6LargeBuffersFlexVC84(b *testing.B) {
	runSim(b, bufferSweepConfig(2, 128, 512, core.FlexVC, core.SingleClass(8, 4)))
}

func BenchmarkFig11NoSpeedupBaseline(b *testing.B) {
	runSim(b, bufferSweepConfig(1, 32, 128, core.Baseline, core.SingleClass(2, 1)))
}

func BenchmarkFig11NoSpeedupFlexVC84(b *testing.B) {
	runSim(b, bufferSweepConfig(1, 32, 128, core.FlexVC, core.SingleClass(8, 4)))
}

// --- Figure 7: request-reply traffic ----------------------------------------

func fig7Config(policy core.Policy, vcs core.VCConfig) config.Config {
	cfg := benchConfig()
	cfg.Reactive = true
	cfg.Load = 0.9
	cfg.Scheme = core.Scheme{Policy: policy, VCs: vcs, Selection: core.JSQ}
	return cfg
}

func BenchmarkFig7RequestReplyBaseline(b *testing.B) {
	runSim(b, fig7Config(core.Baseline, core.TwoClass(2, 1, 2, 1)))
}

func BenchmarkFig7RequestReplyFlexVC2121(b *testing.B) {
	runSim(b, fig7Config(core.FlexVC, core.TwoClass(2, 1, 2, 1)))
}

func BenchmarkFig7RequestReplyFlexVC4321(b *testing.B) {
	runSim(b, fig7Config(core.FlexVC, core.TwoClass(4, 3, 2, 1)))
}

// --- Figure 8: Piggyback adaptive routing (and the minCred ablation) --------

func fig8Config(policy core.Policy, vcs core.VCConfig, sensing routing.Sensing, minCred bool,
	traffic config.TrafficKind) config.Config {
	cfg := benchConfig()
	cfg.Reactive = true
	cfg.Traffic = traffic
	cfg.Routing = routing.PB
	cfg.Sensing = sensing
	cfg.Load = 0.35
	if traffic == config.TrafficUniform {
		cfg.Load = 0.9
	}
	cfg.Scheme = core.Scheme{Policy: policy, VCs: vcs, Selection: core.JSQ, MinCred: minCred}
	return cfg
}

func BenchmarkFig8AdversarialPBBaselinePerVC(b *testing.B) {
	runSim(b, fig8Config(core.Baseline, core.TwoClass(4, 2, 4, 2), routing.SensePerVC, false, config.TrafficAdversarial))
}

func BenchmarkFig8AdversarialPBFlexVCPerVC(b *testing.B) {
	runSim(b, fig8Config(core.FlexVC, core.TwoClass(4, 2, 2, 1), routing.SensePerVC, false, config.TrafficAdversarial))
}

func BenchmarkFig8AdversarialPBFlexVCMinCredPerPort(b *testing.B) {
	runSim(b, fig8Config(core.FlexVC, core.TwoClass(4, 2, 2, 1), routing.SensePerPort, true, config.TrafficAdversarial))
}

func BenchmarkFig8UniformPBFlexVCMinCredPerPort(b *testing.B) {
	runSim(b, fig8Config(core.FlexVC, core.TwoClass(4, 2, 2, 1), routing.SensePerPort, true, config.TrafficUniform))
}

// --- Figure 9: VC selection function ablation -------------------------------

func fig9Config(sel core.SelectionFn) config.Config {
	cfg := benchConfig()
	cfg.Reactive = true
	cfg.Load = 1.0
	cfg.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(4, 3, 2, 1), Selection: sel}
	return cfg
}

func BenchmarkFig9SelectionJSQ(b *testing.B)     { runSim(b, fig9Config(core.JSQ)) }
func BenchmarkFig9SelectionHighest(b *testing.B) { runSim(b, fig9Config(core.HighestVC)) }
func BenchmarkFig9SelectionLowest(b *testing.B)  { runSim(b, fig9Config(core.LowestVC)) }
func BenchmarkFig9SelectionRandom(b *testing.B)  { runSim(b, fig9Config(core.RandomVC)) }

// --- Figure 10: DAMQ private-reservation ablation ---------------------------

func fig10Config(privateFraction float64) config.Config {
	cfg := benchConfig()
	cfg.Load = 1.0
	cfg.BufferOrg = buffer.DAMQ
	cfg.DAMQPrivateFraction = privateFraction
	// A zero-private DAMQ is expected to deadlock; keep the watchdog tight
	// so the benchmark terminates quickly and report whatever was measured.
	cfg.DeadlockCycles = 1500
	return cfg
}

func runSimAllowDeadlock(b *testing.B, cfg config.Config) {
	b.Helper()
	var accepted float64
	deadlocks := 0
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = int64(i + 1)
		res, err := sim.RunOne(c)
		if err != nil {
			b.Fatal(err)
		}
		accepted = res.AcceptedLoad
		if res.Deadlock {
			deadlocks++
		}
	}
	b.ReportMetric(accepted, "accepted-load")
	b.ReportMetric(float64(deadlocks)/float64(b.N), "deadlock-fraction")
}

func BenchmarkFig10DAMQ0Private(b *testing.B)   { runSimAllowDeadlock(b, fig10Config(0)) }
func BenchmarkFig10DAMQ25Private(b *testing.B)  { runSimAllowDeadlock(b, fig10Config(0.25)) }
func BenchmarkFig10DAMQ75Private(b *testing.B)  { runSimAllowDeadlock(b, fig10Config(0.75)) }
func BenchmarkFig10DAMQ100Private(b *testing.B) { runSimAllowDeadlock(b, fig10Config(1.0)) }

// --- Harness micro-benchmarks ------------------------------------------------

// BenchmarkSimulatorCyclesPerSecond measures the raw simulation speed of the
// small Dragonfly at moderate load (cycles simulated per wall-clock second).
func BenchmarkSimulatorCyclesPerSecond(b *testing.B) {
	cfg := config.Small()
	cfg.Load = 0.5
	n, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
	b.ReportMetric(float64(n.Topology().NumRouters()), "routers")
}

// BenchmarkAllowedVCs measures the per-hop cost of the FlexVC decision, the
// function on the router critical path.
func BenchmarkAllowedVCs(b *testing.B) {
	mgr := core.NewManager(core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(4, 2, 2, 1), Selection: core.JSQ})
	ctx := core.HopContext{
		Class:        packet.Request,
		Kind:         topology.Local,
		InputKind:    topology.Global,
		InputVC:      0,
		PlannedAfter: topology.SeqOf(topology.Global, topology.Local),
		EscapeAfter:  topology.SeqOf(topology.Global, topology.Local),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := mgr.AllowedVCs(ctx)
		if r.Empty() {
			b.Fatal("unexpected empty range")
		}
	}
}

// BenchmarkQuickTableExperiment runs a full analytic experiment through the
// sweep registry (no simulation), checking the harness overhead.
func BenchmarkQuickTableExperiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := sweep.Run("table4", sweep.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Render()) == 0 {
			b.Fatal("empty report")
		}
	}
}

// --- End-to-end sweep benchmarks ---------------------------------------------
//
// These exercise the whole harness stack (sweep scheduler -> RunAveraged ->
// simulator) and are the headline numbers tracked in BENCHMARKS.md.

// quickSweepBase is the configuration behind the end-to-end sweep benchmarks:
// the Small Dragonfly with a shortened window, three variants and three loads
// with several replications each, so both the point scheduler and the
// replication engine are exercised.
func quickSweepBase() (config.Config, []sweep.Variant, []float64, int) {
	cfg := config.Small()
	cfg.WarmupCycles = 400
	cfg.MeasureCycles = 1600
	cfg.DeadlockCycles = 4000
	variants := []sweep.Variant{
		{Label: "baseline 2/1", Apply: func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.SingleClass(2, 1), Selection: core.JSQ}
		}},
		{Label: "flexvc 4/2", Apply: func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
		}},
		{Label: "flexvc 8/4", Apply: func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(8, 4), Selection: core.JSQ}
		}},
	}
	loads := []float64{0.2, 0.6, 1.0}
	seeds := 3
	return cfg, variants, loads, seeds
}

// BenchmarkSweepQuickE2E runs a complete small load sweep per iteration:
// 3 variants x 3 loads x 3 replications = 27 simulations. This is the
// benchmark the >=2x wall-clock target of the parallel engine is measured on.
func BenchmarkSweepQuickE2E(b *testing.B) {
	base, variants, loads, seeds := quickSweepBase()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := sweep.LoadSweep(base, variants, loads, seeds, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.MaxAccepted() == 0 {
				b.Fatalf("series %q moved no traffic", s.Label)
			}
		}
	}
}

// BenchmarkSmokeSweep is the CI smoke benchmark (go test -bench=Smoke
// -benchtime=1x): one tiny sweep end to end, cheap enough for every push.
func BenchmarkSmokeSweep(b *testing.B) {
	base := config.Tiny()
	base.WarmupCycles = 200
	base.MeasureCycles = 800
	variants := []sweep.Variant{
		{Label: "baseline", Apply: func(c *config.Config) {}},
		{Label: "flexvc", Apply: func(c *config.Config) { c.Scheme.Policy = core.FlexVC }},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := sweep.LoadSweep(base, variants, []float64{0.3, 0.7}, 2, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 2 {
			b.Fatalf("want 2 series, got %d", len(series))
		}
	}
}

// BenchmarkSmokeSweepSharded is the smoke sweep with the cycle loop sharded
// two ways (config.Shards = 2). On a 6-router network sharding cannot win —
// the per-cycle fork/join is pure overhead here — which is exactly what the
// regression gate pins: the cost of the sharded path (event buffering,
// ordered merge, slot accounting) must not creep. The worker budget is pinned
// to 1 so the gated allocation count stays machine-independent: with spare
// budget tokens the sharded loop opportunistically spawns per-cycle helper
// goroutines, and how often it wins those tokens depends on core count and
// scheduling. Results stay bit-identical to the serial sweep either way;
// TestShardEquivalence holds that line, and BenchmarkShardScaling (ungated)
// measures the parallel speedup itself.
func BenchmarkSmokeSweepSharded(b *testing.B) {
	defer sim.SetWorkerBudget(sim.WorkerBudget())
	sim.SetWorkerBudget(1)
	base := config.Tiny()
	base.WarmupCycles = 200
	base.MeasureCycles = 800
	base.Shards = 2
	variants := []sweep.Variant{
		{Label: "baseline", Apply: func(c *config.Config) {}},
		{Label: "flexvc", Apply: func(c *config.Config) { c.Scheme.Policy = core.FlexVC }},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := sweep.LoadSweep(base, variants, []float64{0.3, 0.7}, 2, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 2 {
			b.Fatalf("want 2 series, got %d", len(series))
		}
	}
}

// BenchmarkShardScaling measures one small-scale PAR replication at shard
// counts 1, 2 and 4 (not part of the regression gate — the speedup is
// hardware-dependent; BENCHMARKS.md records measured runs). The serial and
// sharded runs produce bit-identical results, so the only thing varying
// across sub-benchmarks is wall-clock. Each sub-benchmark runs metered (a
// metrics registry rides along — TestMeteredRunMatchesSerial pins that this
// cannot change results) and reports the phase breakdown of the cycle loop
// plus, when sharded, the busy-time imbalance ratio, so a single run shows
// where the wall went and whether the shard plan is balanced.
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "serial", 2: "shards2", 4: "shards4"}[shards], func(b *testing.B) {
			cfg := benchConfig()
			cfg.Routing = routing.PAR
			cfg.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(5, 2), Selection: core.JSQ}
			cfg.Load = 0.7
			cfg.Shards = shards
			cfg.Metrics = obs.NewRegistry()
			runSim(b, cfg)
			snap := cfg.Metrics.Snapshot()
			for _, phase := range []string{"events", "inject", "pb_update", "step", "flush"} {
				ns := snap.Counters[sim.MetricPhaseWall+`{phase="`+phase+`"}`]
				b.ReportMetric(float64(ns)/float64(b.N), phase+"-ns/op")
			}
			if shards > 1 {
				b.ReportMetric(snap.Values[sim.MetricShardImbalance], "shard-imbalance")
			}
		})
	}
}
