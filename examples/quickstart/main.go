// Quickstart: simulate a small Dragonfly network under uniform traffic with
// minimal routing, once with the classic fixed-order VC assignment and once
// with FlexVC, and compare the throughput and latency the two deliver with
// exactly the same buffers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/sim"
)

func main() {
	// Start from the scaled-down preset (a 9-group, 36-router Dragonfly) and
	// push it close to saturation, where buffer management matters most.
	cfg := config.Small()
	cfg.Traffic = config.TrafficUniform
	cfg.Load = 0.9

	fmt.Printf("simulating %d routers / %d nodes at offered load %.2f\n\n",
		mustTopo(cfg).NumRouters(), mustTopo(cfg).NumNodes(), cfg.Load)

	for _, scheme := range []core.Scheme{
		{Policy: core.Baseline, VCs: core.SingleClass(2, 1), Selection: core.JSQ},
		{Policy: core.FlexVC, VCs: core.SingleClass(2, 1), Selection: core.JSQ},
		{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.JSQ},
	} {
		cfg.Scheme = scheme
		result, err := sim.RunOne(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s accepted %.3f phits/node/cycle, avg latency %.0f cycles\n",
			scheme.Policy.String()+" "+scheme.VCs.String(), result.AcceptedLoad, result.AvgLatency)
	}
	fmt.Println("\nFlexVC lifts the saturation throughput with the same buffers, and")
	fmt.Println("exploits the extra VCs a Valiant-capable router would already have.")
}

func mustTopo(cfg config.Config) interface {
	NumRouters() int
	NumNodes() int
} {
	t, err := cfg.BuildTopology()
	if err != nil {
		log.Fatal(err)
	}
	return t
}
