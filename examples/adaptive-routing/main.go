// Adaptive routing under adversarial traffic: the scenario that motivates
// FlexVC-minCred. Every node sends to the next Dragonfly group, so minimal
// routing collapses onto a single global link per group and the Piggyback
// source-adaptive mechanism must detect the congestion and divert traffic
// onto Valiant paths.
//
// The example compares, with request-reply traffic:
//
//   - baseline PB (fixed-order VCs, 8/4) with per-VC congestion sensing,
//   - FlexVC PB (6/3 VCs, 25% less buffering) with plain per-VC sensing,
//     which loses the ability to identify the traffic pattern, and
//   - FlexVC-minCred PB (6/3 VCs) with per-port sensing over minimal credits
//     only, which restores it.
//
// Run with:
//
//	go run ./examples/adaptive-routing
package main

import (
	"fmt"
	"log"

	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/routing"
	"flexvc/internal/sim"
)

type variant struct {
	name    string
	scheme  core.Scheme
	sensing routing.Sensing
}

func main() {
	cfg := config.Small()
	cfg.Traffic = config.TrafficAdversarial
	cfg.Routing = routing.PB
	cfg.Reactive = true
	cfg.Load = 0.3

	variants := []variant{
		{
			name:    "PB baseline 8/4, per-VC sensing",
			scheme:  core.Scheme{Policy: core.Baseline, VCs: core.TwoClass(4, 2, 4, 2), Selection: core.JSQ},
			sensing: routing.SensePerVC,
		},
		{
			name:    "PB FlexVC 6/3, per-VC sensing",
			scheme:  core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(4, 2, 2, 1), Selection: core.JSQ},
			sensing: routing.SensePerVC,
		},
		{
			name:    "PB FlexVC-minCred 6/3, per-port sensing",
			scheme:  core.Scheme{Policy: core.FlexVC, VCs: core.TwoClass(4, 2, 2, 1), Selection: core.JSQ, MinCred: true},
			sensing: routing.SensePerPort,
		},
	}

	fmt.Printf("adversarial (+1 group) request-reply traffic at offered load %.2f\n\n", cfg.Load)
	for _, v := range variants {
		run := cfg
		run.Scheme = v.scheme
		run.Sensing = v.sensing
		res, err := sim.RunOne(run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s accepted %.3f  latency %6.0f  minimally-routed %4.1f%%\n",
			v.name, res.AcceptedLoad, res.AvgLatency, 100*res.MinimalFraction)
	}
	fmt.Println("\nFlexVC merges minimal and Valiant traffic in the same buffers, which")
	fmt.Println("blurs per-VC congestion sensing; tracking credits of minimally routed")
	fmt.Println("packets separately (minCred) restores the pattern identification with")
	fmt.Println("25% fewer VCs than the baseline.")
}
