// VC planner: a purely analytic use of the library (no simulation). Given a
// topology and a set of candidate VC arrangements, it reports which routing
// mechanisms each arrangement supports under FlexVC — safe, opportunistic or
// forbidden — and the buffer savings relative to the classic fixed-order
// requirement. This reproduces the reasoning behind Tables I-IV for arbitrary
// configurations.
//
// Run with:
//
//	go run ./examples/vcplanner
package main

import (
	"fmt"
	"log"

	"flexvc/internal/core"
	"flexvc/internal/packet"
	"flexvc/internal/topology"
)

func main() {
	df, err := topology.NewBalancedDragonfly(8) // the paper's h=8 system
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s (%d routers, %d nodes)\n\n", df.Name(), df.NumRouters(), df.NumNodes())

	// Candidate VC arrangements for request-reply traffic, from the minimum
	// upward. The classic distance-based requirement for safe VAL+PAR paths
	// in both virtual networks is 10/4 (2 x 5/2).
	candidates := []core.VCConfig{
		core.TwoClass(2, 1, 2, 1),
		core.TwoClass(3, 2, 2, 1),
		core.TwoClass(4, 2, 2, 1),
		core.TwoClass(4, 2, 4, 2),
		core.TwoClass(5, 2, 5, 2),
	}
	baselineLocal, baselineGlobal := 10, 4 // fixed-order requirement for safe VAL+PAR request+reply

	fmt.Printf("%-16s %-24s %-24s %-10s\n", "VCs (req+rep)", "VAL (request/reply)", "PAR (request/reply)", "buffer vs 10/4")
	for _, cfg := range candidates {
		valRef := core.Reference(df, core.ModeVAL)
		parRef := core.Reference(df, core.ModePAR)
		val := fmt.Sprintf("%s / %s",
			core.Classify(cfg, packet.Request, valRef), core.Classify(cfg, packet.Reply, valRef))
		par := fmt.Sprintf("%s / %s",
			core.Classify(cfg, packet.Request, parRef), core.Classify(cfg, packet.Reply, parRef))
		total := cfg.Total()
		saving := 1 - float64(total.Local+total.Global)/float64(baselineLocal+baselineGlobal)
		fmt.Printf("%-16s %-24s %-24s %8.0f%%\n", cfg, val, par, 100*saving)
	}

	fmt.Println("\nA 5/3 arrangement (3/2 requests + 2/1 replies) keeps Valiant and PAR")
	fmt.Println("usable opportunistically with half the buffers of the classic scheme;")
	fmt.Println("4/2+2/1 is the arrangement the paper uses for adaptive routing (Fig. 8).")
}
