// Bursty data-centre style traffic: the BURSTY-UN pattern (a two-state Markov
// ON/OFF source with uniform destinations, found representative of data-centre
// workloads) stresses buffer management because whole bursts pile into a
// single VC. The example measures latency below saturation and the saturation
// throughput for the baseline, DAMQ and FlexVC organisations.
//
// Run with:
//
//	go run ./examples/bursty-datacenter
package main

import (
	"fmt"
	"log"

	"flexvc/internal/buffer"
	"flexvc/internal/config"
	"flexvc/internal/core"
	"flexvc/internal/sim"
)

func main() {
	base := config.Small()
	base.Traffic = config.TrafficBursty
	base.AvgBurstLength = 5

	type variant struct {
		name  string
		apply func(*config.Config)
	}
	variants := []variant{
		{"Baseline 2/1 (static)", func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.SingleClass(2, 1), Selection: core.JSQ}
		}},
		{"DAMQ 2/1 (75% private)", func(c *config.Config) {
			c.BufferOrg = buffer.DAMQ
			c.Scheme = core.Scheme{Policy: core.Baseline, VCs: core.SingleClass(2, 1), Selection: core.JSQ}
		}},
		{"FlexVC 2/1", func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(2, 1), Selection: core.JSQ}
		}},
		{"FlexVC 4/2", func(c *config.Config) {
			c.Scheme = core.Scheme{Policy: core.FlexVC, VCs: core.SingleClass(4, 2), Selection: core.JSQ}
		}},
	}

	fmt.Println("BURSTY-UN traffic (average burst: 5 packets), MIN routing")
	fmt.Printf("%-26s %18s %22s\n", "configuration", "latency @ load 0.4", "saturation throughput")
	for _, v := range variants {
		midCfg := base
		midCfg.Load = 0.4
		v.apply(&midCfg)
		mid, err := sim.RunOne(midCfg)
		if err != nil {
			log.Fatal(err)
		}

		satCfg := base
		satCfg.Load = 1.0
		v.apply(&satCfg)
		sat, err := sim.RunOne(satCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %15.1f cy %18.3f ph/n/cy\n", v.name, mid.AvgLatency, sat.AcceptedLoad)
	}
	fmt.Println("\nBursts congest individual VCs; FlexVC absorbs them by letting packets")
	fmt.Println("use any VC that still preserves a safe escape path.")
}
